(* The standalone plan analyzer: it must accept every plan the
   compiler emits (gallery, fused seismic, random in-budget stencils)
   and reject every mutant in the built-in set — the N-version
   assurance story of lib/analysis. *)

module Q = QCheck2
module Gen = QCheck2.Gen
module Finding = Ccc_analysis.Finding
module Verify = Ccc_analysis.Verify
module Mutate = Ccc_analysis.Mutate
module Compile = Ccc_compiler.Compile
module Plan = Ccc_microcode.Plan
module Offset = Ccc_stencil.Offset
module Tap = Ccc_stencil.Tap
module Coeff = Ccc_stencil.Coeff
module Pattern = Ccc_stencil.Pattern
module Boundary = Ccc_stencil.Boundary

let config = Ccc.Config.default

let pp_findings fs =
  String.concat "; " (List.map Finding.to_string fs)

let plans_of pattern =
  match Compile.compile config pattern with
  | Ok c -> c.Compile.plans
  | Error e -> Alcotest.failf "compile failed: %s" (Compile.no_workable e)

let fused_seismic_plans () =
  match Compile.compile_fused config (Ccc.Seismic.fused_kernel ()) with
  | Ok f -> f.Compile.fused_plans
  | Error e -> Alcotest.failf "fused compile failed: %s" (Compile.no_workable e)

(* ------------------------------------------------------------------ *)
(* Finding rendering *)

let test_finding_pp () =
  let f =
    Finding.make ~phase:1 ~cycle:7 Finding.Hazard "r3 overwritten in flight"
  in
  Alcotest.(check string)
    "full location" "error[hazard] phase 1, cycle 7: r3 overwritten in flight"
    (Finding.to_string f);
  let w =
    Finding.make ~severity:Finding.Warning Finding.Dead_code "unused load"
  in
  Alcotest.(check string)
    "bare warning" "warning[dead-code]: unused load" (Finding.to_string w)

(* ------------------------------------------------------------------ *)
(* The analyzer accepts every plan the compiler emits *)

let test_gallery_clean () =
  List.iter
    (fun (name, p) ->
      List.iter
        (fun plan ->
          match Verify.verify config plan with
          | [] -> ()
          | fs ->
              Alcotest.failf "%s width %d: %s" name plan.Plan.width
                (pp_findings fs))
        (plans_of p))
    (Pattern.gallery ())

let test_fused_seismic_clean () =
  List.iter
    (fun plan ->
      match Verify.verify config plan with
      | [] -> ()
      | fs ->
          Alcotest.failf "fused seismic width %d: %s" plan.Plan.width
            (pp_findings fs))
    (fused_seismic_plans ())

(* Width rejections surface as structured resource findings. *)
let test_rejections_structured () =
  match Compile.compile config (Pattern.cross9 ()) with
  | Error e -> Alcotest.failf "cross9 should compile at some width: %s" (Compile.no_workable e)
  | Ok c ->
      Alcotest.(check bool) "cross9 rejects width 8" true (c.rejected <> []);
      List.iter
        (fun (_, (f : Finding.t)) ->
          match f.Finding.check with
          | Finding.Register_pressure | Finding.Scratch_pressure
          | Finding.Infeasible ->
              ()
          | _ ->
              Alcotest.failf "unexpected rejection class: %s"
                (Finding.to_string f))
        c.rejected

(* ------------------------------------------------------------------ *)
(* The analyzer rejects hand-broken plans it has never seen built *)

let with_phase plan p f =
  {
    plan with
    Plan.phases =
      Array.mapi (fun i ph -> if i = p then f ph else ph) plan.Plan.phases;
  }

let cross5_w8 () =
  match Compile.plan_for_width (Option.get (Result.to_option
    (Compile.compile config (Pattern.cross5 ())))) 8 with
  | Some plan -> plan
  | None -> Alcotest.fail "cross5 has no width-8 plan"

let has_check c fs = List.exists (fun (f : Finding.t) -> f.Finding.check = c) fs

let test_dropped_store_found () =
  let plan = cross5_w8 () in
  let broken =
    with_phase plan 0 (fun ph ->
        { ph with Plan.stores = List.tl ph.Plan.stores })
  in
  let fs = Verify.verify config broken in
  Alcotest.(check bool) "coverage finding" true (has_check Finding.Coverage fs);
  Alcotest.(check bool)
    "dead accumulation warning" true
    (has_check Finding.Dead_code fs)

let test_dishonest_words_found () =
  let plan = cross5_w8 () in
  let broken = { plan with Plan.dynamic_words = plan.Plan.dynamic_words + 1 } in
  Alcotest.(check bool)
    "budget finding" true
    (has_check Finding.Budget (Verify.verify config broken))

let test_scratch_overflow_found () =
  let plan = cross5_w8 () in
  let tight =
    { config with Ccc.Config.scratch_memory_words = plan.Plan.dynamic_words - 1 }
  in
  Alcotest.(check bool)
    "scratch finding" true
    (has_check Finding.Scratch_pressure (Verify.verify tight plan))

let test_pinned_write_found () =
  let plan = cross5_w8 () in
  let broken =
    with_phase plan 0 (fun ph ->
        {
          ph with
          Plan.loads =
            (match ph.Plan.loads with
            | Ccc_microcode.Instr.Load l :: rest ->
                Ccc_microcode.Instr.Load { l with reg = plan.Plan.zero_reg }
                :: rest
            | _ -> Alcotest.fail "no load to sabotage");
        })
  in
  Alcotest.(check bool)
    "pinned-write finding" true
    (has_check Finding.Pinned_write (Verify.verify config broken))

(* ------------------------------------------------------------------ *)
(* The mutation harness: kill rate must be 100% *)

let mutant_targets () =
  let named name plan = (name, plan) in
  List.filter_map Fun.id
    [
      Some (named "cross5 w8" (cross5_w8 ()));
      (match Compile.compile config (Pattern.square9 ()) with
      | Ok c -> Option.map (named "square9 w8") (Compile.plan_for_width c 8)
      | Error _ -> None);
      (match Compile.compile config (Pattern.diamond13 ()) with
      | Ok c -> Option.map (named "diamond13 w4") (Compile.plan_for_width c 4)
      | Error _ -> None);
      (match Compile.compile config (Pattern.cross9 ()) with
      | Ok c -> Option.map (named "cross9 w4") (Compile.plan_for_width c 4)
      | Error _ -> None);
      (match fused_seismic_plans () with
      | p :: _ -> Some (named "fused seismic" p)
      | [] -> None);
    ]

let test_mutants_killed () =
  let seen_classes = Hashtbl.create 8 in
  List.iter
    (fun (name, plan) ->
      Alcotest.(check (list string))
        (name ^ " unmutated plan is clean") []
        (List.map Finding.to_string (Verify.verify config plan));
      let mutants = Mutate.mutants plan in
      Alcotest.(check bool) (name ^ " has mutants") true (mutants <> []);
      List.iter
        (fun (m : Mutate.mutant) ->
          Hashtbl.replace seen_classes m.Mutate.mclass ();
          let fs = Verify.verify config m.Mutate.plan in
          if fs = [] then
            Alcotest.failf "%s: mutant not rejected: %s" name
              m.Mutate.description;
          if
            not
              (List.exists
                 (fun (f : Finding.t) ->
                   f.Finding.phase <> None && f.Finding.cycle <> None)
                 fs)
          then
            Alcotest.failf "%s: mutant %s rejected without phase and cycle: %s"
              name m.Mutate.description (pp_findings fs))
        mutants)
    (mutant_targets ());
  List.iter
    (fun c ->
      if not (Hashtbl.mem seen_classes c) then
        Alcotest.failf "mutant class %s never exercised" (Mutate.class_name c))
    Mutate.all_classes

(* ------------------------------------------------------------------ *)
(* Properties: random in-budget stencils are always analyzer-clean *)

let gen_offset =
  Gen.map2
    (fun drow dcol -> Offset.make ~drow ~dcol)
    (Gen.int_range (-2) 2) (Gen.int_range (-2) 2)

let gen_coeff index =
  Gen.oneof
    [
      Gen.return (Coeff.Array (Printf.sprintf "C%d" (index + 1)));
      Gen.map
        (fun v -> Coeff.Scalar (float_of_int v /. 4.0))
        (Gen.int_range (-8) 8);
      Gen.return Coeff.One;
    ]

let gen_pattern =
  let open Gen in
  Gen.map (List.sort_uniq Offset.compare)
    (Gen.list_size (Gen.int_range 1 7) gen_offset)
  >>= fun offsets ->
  Gen.flatten_l (List.mapi (fun i _ -> gen_coeff i) offsets) >>= fun coeffs ->
  Gen.bool >>= fun with_bias ->
  let taps = List.map2 Tap.make offsets coeffs in
  let bias = if with_bias then Some (Coeff.Array "BB") else None in
  return (Pattern.create ?bias taps)

let print_pattern p = Format.asprintf "%a" Pattern.pp p

let prop_compiled_plans_clean =
  Q.Test.make ~name:"every compiled plan is analyzer-clean" ~count:120
    ~print:print_pattern gen_pattern (fun p ->
      match Compile.compile config p with
      | Error _ -> Q.assume_fail ()
      | Ok c ->
          List.for_all (fun plan -> Verify.verify config plan = []) c.plans)

let prop_mutants_killed =
  Q.Test.make ~name:"every mutant of a compiled plan is rejected" ~count:60
    ~print:print_pattern gen_pattern (fun p ->
      match Compile.compile config p with
      | Error _ -> Q.assume_fail ()
      | Ok c ->
          let plan = Compile.widest c in
          List.for_all
            (fun (m : Mutate.mutant) -> Verify.verify config m.Mutate.plan <> [])
            (Mutate.mutants plan))

let () =
  Alcotest.run "analysis"
    [
      ( "findings",
        [
          Alcotest.test_case "rendering" `Quick test_finding_pp;
          Alcotest.test_case "structured rejections" `Quick
            test_rejections_structured;
        ] );
      ( "verifier accepts",
        [
          Alcotest.test_case "gallery plans" `Quick test_gallery_clean;
          Alcotest.test_case "fused seismic plans" `Quick
            test_fused_seismic_clean;
        ] );
      ( "verifier rejects",
        [
          Alcotest.test_case "dropped store" `Quick test_dropped_store_found;
          Alcotest.test_case "dishonest word count" `Quick
            test_dishonest_words_found;
          Alcotest.test_case "scratch overflow" `Quick
            test_scratch_overflow_found;
          Alcotest.test_case "write to pinned register" `Quick
            test_pinned_write_found;
        ] );
      ( "mutation harness",
        [ Alcotest.test_case "kill rate 100%" `Quick test_mutants_killed ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_compiled_plans_clean; prop_mutants_killed ] );
    ]
