(* Unit tests for the microcode layer: dynamic-part pricing, the
   cycle-accurate interpreter, its agreement with the closed-form cost
   model, and hazard detection. *)

module Config = Ccc_cm2.Config
module Machine = Ccc_cm2.Machine
module Memory = Ccc_cm2.Memory
module Instr = Ccc_microcode.Instr
module Plan = Ccc_microcode.Plan
module Interp = Ccc_microcode.Interp
module Cost = Ccc_microcode.Cost
module Pattern = Ccc_stencil.Pattern
module Multistencil = Ccc_stencil.Multistencil

let check_int = Alcotest.(check int)
let config = Config.default

let compile_plan pattern width =
  let ms = Multistencil.make pattern ~width in
  let pinned = Multistencil.pinned_registers ms in
  match
    Ccc_compiler.Regalloc.allocate ms
      ~available:(config.Config.fpu_registers - pinned)
  with
  | Ok alloc -> Ccc_compiler.Schedule.build config ms alloc
  | Error _ -> Alcotest.fail "allocation failed"

(* A one-node sandbox with a padded source, destination, and constant
   coefficient streams. *)
let sandbox pattern width ~rows ~cols =
  let machine =
    Machine.create ~memory_words:(1 lsl 16)
      (Config.with_nodes ~rows:1 ~cols:1 config)
  in
  let mem = Machine.memory machine 0 in
  let plan = compile_plan pattern width in
  let pad = Pattern.max_border pattern in
  let pcols = cols + (2 * pad) in
  let padded = Memory.alloc mem ~words:((rows + (2 * pad)) * pcols) in
  (* Fill the padded source with a position-dependent value. *)
  for r = 0 to rows + (2 * pad) - 1 do
    for c = 0 to pcols - 1 do
      Memory.write mem
        (padded.Memory.base + (r * pcols) + c)
        (float_of_int (((r - pad) * 100) + (c - pad)))
    done
  done;
  let dst = Memory.alloc mem ~words:(rows * cols) in
  let streams = plan.Plan.coeff_streams in
  let coeffs =
    Array.map
      (fun _ ->
        let region = Memory.alloc mem ~words:(rows * cols) in
        for i = 0 to (rows * cols) - 1 do
          Memory.write mem (region.Memory.base + i) 1.0
        done;
        region)
      streams
  in
  let bindings =
    {
      Interp.memory = mem;
      sources = [| { Interp.padded; padded_cols = pcols; pad } |];
      dst;
      dst_cols = cols;
      coeffs;
    }
  in
  (plan, bindings, mem, dst)

let sweep_rows rows = Array.init rows (fun t -> rows - 1 - t)

let test_instr_cycles () =
  check_int "load" config.Config.memory_op_cycles
    (Instr.cycles config (Instr.Load { reg = 2; src = 0; drow = 0; dcol = 0 }));
  check_int "store" config.Config.memory_op_cycles
    (Instr.cycles config (Instr.Store { reg = 2; dcol = 0 }));
  check_int "madd" config.Config.madd_issue_cycles
    (Instr.cycles config
       (Instr.Madd { dst = 2; data = 3; coeff_index = 0; coeff_dcol = 0; acc = 0 }));
  check_int "nop" 1 (Instr.cycles config Instr.Nop)

let test_interp_matches_cost_model () =
  (* The central consistency property: interpreter cycles equal the
     closed-form model, for several patterns, widths and heights. *)
  List.iter
    (fun (pattern, width, rows) ->
      let plan, bindings, _, _ =
        sandbox pattern width ~rows:(max rows 8) ~cols:width
      in
      let outcome =
        Interp.run_halfstrip config plan bindings ~col0:0
          ~rows:(sweep_rows rows)
      in
      check_int
        (Printf.sprintf "cycles (width %d, rows %d)" width rows)
        (Cost.halfstrip_cycles config plan ~lines:rows)
        outcome.Interp.cycles;
      check_int "madds"
        (Cost.halfstrip_madds_total config plan ~lines:rows)
        outcome.Interp.madds;
      check_int "flop slots are 2 per madd" (2 * outcome.Interp.madds)
        outcome.Interp.flop_slots)
    [
      (Pattern.cross5 (), 8, 6);
      (Pattern.cross5 (), 1, 5);
      (Pattern.square9 (), 8, 4);
      (Pattern.cross9 (), 4, 8);
      (Pattern.diamond13 (), 4, 7);
      (Pattern.asymmetric5 (), 2, 6);
    ]

let test_interp_computes_correct_values () =
  (* With all coefficients 1.0 the result is the sum of the tapped
     source elements; check one full half-strip against arithmetic. *)
  let pattern = Pattern.cross5 () in
  let rows = 6 and width = 4 in
  let plan, bindings, mem, dst = sandbox pattern width ~rows ~cols:width in
  ignore
    (Interp.run_halfstrip config plan bindings ~col0:0 ~rows:(sweep_rows rows));
  let src r c = float_of_int ((r * 100) + c) in
  for r = 0 to rows - 1 do
    for c = 0 to width - 1 do
      let expected =
        src (r - 1) c +. src r (c - 1) +. src r c +. src r (c + 1)
        +. src (r + 1) c
      in
      let actual = Memory.read mem (dst.Memory.base + (r * width) + c) in
      Alcotest.(check (float 1e-9))
        (Printf.sprintf "dst(%d,%d)" r c)
        expected actual
    done
  done

let test_interp_zero_lines_costs_startup () =
  let pattern = Pattern.cross5 () in
  let plan, bindings, _, _ = sandbox pattern 2 ~rows:4 ~cols:2 in
  let outcome = Interp.run_halfstrip config plan bindings ~col0:0 ~rows:[||] in
  check_int "startup only" (Cost.startup_cycles config) outcome.Interp.cycles

let test_interp_detects_store_hazard () =
  (* Corrupt a plan so a store happens while the accumulation is in
     flight: the interpreter must refuse. *)
  let pattern = Pattern.cross5 () in
  let plan, bindings, _, _ = sandbox pattern 2 ~rows:4 ~cols:2 in
  let sabotage (phase : Plan.phase) =
    (* Fold the stores into the multiply-add section: they then issue
       immediately after the final accumulations, without the reversal
       and drain cycles, while the writes are still in flight. *)
    { phase with Plan.madds = phase.Plan.madds @ phase.Plan.stores; stores = [] }
  in
  let bad =
    { plan with Plan.phases = Array.map sabotage plan.Plan.phases }
  in
  match
    Interp.run_halfstrip config bad bindings ~col0:0 ~rows:(sweep_rows 4)
  with
  | _ -> Alcotest.fail "expected a hazard"
  | exception Interp.Hazard _ -> ()

let test_interp_detects_out_of_range () =
  let pattern = Pattern.cross5 () in
  let plan, bindings, _, _ = sandbox pattern 2 ~rows:4 ~cols:2 in
  (* Ask for a column origin beyond the padded region. *)
  match
    Interp.run_halfstrip config plan bindings ~col0:1000 ~rows:(sweep_rows 4)
  with
  | _ -> Alcotest.fail "expected a hazard"
  | exception Interp.Hazard _ -> ()

let test_trace_structure () =
  (* The trace of two width-2 lines: per line 3 loads (columns -1..2
     of cross5 at width 2 span 4 columns), 10 madds, 2 stores, with
     cycles strictly increasing. *)
  let compiled =
    match Ccc_compiler.Compile.compile config (Pattern.cross5 ()) with
    | Ok c -> c
    | Error e -> Alcotest.fail (Ccc_compiler.Compile.no_workable e)
  in
  let lines = Ccc_runtime.Exec.trace ~width:2 ~lines:2 config compiled in
  let count needle =
    List.length
      (List.filter
         (fun l ->
           let rec contains i =
             i + String.length needle <= String.length l
             && (String.sub l i (String.length needle) = needle
                || contains (i + 1))
           in
           contains 0)
         lines)
  in
  (* Prologue fills the size-3 rings (2 warmup loads for the two
     spanning columns... cross5 w2 columns: -1,0,1,2 with spans
     1,3,3,1: warmup = 2 lines x 2 loads), then 2 real lines x 4
     loads. *)
  check_int "loads" ((2 * 2) + (2 * 4)) (count "load ");
  check_int "madds" (2 * 10) (count "madd ");
  check_int "stores" (2 * 2) (count "store");
  (* Cycles non-decreasing. *)
  let cycles =
    List.filter_map
      (fun l -> int_of_string_opt (String.trim (String.sub l 6 5)))
      lines
  in
  let rec ascending = function
    | a :: (b :: _ as rest) -> a <= b && ascending rest
    | [ _ ] | [] -> true
  in
  Alcotest.(check bool) "cycles ascend" true (ascending cycles)

let test_listing_is_stable () =
  (* A small golden listing pins the scheduler's output shape: any
     change to tap ordering, ring rotation or interleaving shows up
     here first. *)
  let compiled =
    match
      Ccc_compiler.Compile.compile config
        (Tutil.pattern_of_offsets [ (0, -1); (0, 0) ])
    with
    | Ok c -> c
    | Error e -> Alcotest.fail (Ccc_compiler.Compile.no_workable e)
  in
  let plan = Option.get (Ccc_compiler.Compile.plan_for_width compiled 2) in
  let listing = Format.asprintf "%a" Plan.pp_listing plan in
  let expected =
    "phase 0 of 1:\n\
    \  loads:\n\
    \    load  r1  <- src0(+0,-1)\n\
    \    load  r2  <- src0(+0,+0)\n\
    \    load  r3  <- src0(+0,+1)\n\
    \  multiply-adds:\n\
    \    madd  r1  <- r1 * coeff[0](+0) + r0\n\
    \    madd  r2  <- r2 * coeff[0](+1) + r0\n\
    \    madd  r1  <- r2 * coeff[1](+0) + r1\n\
    \    madd  r2  <- r3 * coeff[1](+1) + r2\n\
    \  stores:\n\
    \    store dst(+0,+0) <- r1 \n\
    \    store dst(+0,+1) <- r2 \n"
  in
  Alcotest.(check string) "golden listing" expected listing

let test_cost_line_formula_components () =
  (* line cycles = overhead + loads + reversal + madds + reversal +
     drain + stores + branch, with the default constants. *)
  let plan = compile_plan (Pattern.cross5 ()) 8 in
  let loads = 10 * config.Config.memory_op_cycles in
  let madds = 40 * config.Config.madd_issue_cycles in
  let stores = 8 * config.Config.memory_op_cycles in
  let drain =
    max 0 (config.Config.madd_writeback_latency - config.Config.pipe_reversal_cycles)
  in
  let expected =
    config.Config.line_overhead_cycles + loads
    + (2 * config.Config.pipe_reversal_cycles)
    + madds + drain + stores + config.Config.loop_branch_cycles
  in
  check_int "line formula" expected (Cost.line_cycles config plan)

let test_cost_scratch_words_match_plan () =
  let plan = compile_plan (Pattern.diamond13 ()) 4 in
  let per_phase = 8 + 52 + 4 in
  let prologue =
    Array.fold_left (fun a l -> a + List.length l) 0 plan.Plan.prologue
  in
  check_int "dynamic words" ((15 * per_phase) + prologue)
    plan.Plan.dynamic_words

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "microcode"
    [
      ( "instr",
        [ tc "cycle pricing" test_instr_cycles ] );
      ( "interp",
        [
          tc "matches the cost model" test_interp_matches_cost_model;
          tc "computes correct values" test_interp_computes_correct_values;
          tc "zero lines costs startup" test_interp_zero_lines_costs_startup;
          tc "detects store hazards" test_interp_detects_store_hazard;
          tc "detects out-of-range accesses" test_interp_detects_out_of_range;
        ] );
      ( "cost",
        [
          tc "line formula components" test_cost_line_formula_components;
          tc "scratch words match the plan" test_cost_scratch_words_match_plan;
        ] );
      ( "trace",
        [
          tc "trace structure" test_trace_structure;
          tc "golden listing" test_listing_is_stable;
        ] );
    ]
