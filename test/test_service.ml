(* The persistent execution engine (lib/service): cache-key
   canonicalization, plan-cache hit/miss/eviction accounting,
   engine-vs-one-shot equivalence (bit-identical outputs, identical
   statistics), structured Too_small errors, and batched execution
   behind a single halo exchange.

   This suite is self-contained (it runs under the @service alias as
   its own executable), so the few helpers it shares with the main
   suite are duplicated from tutil.ml. *)

module Q = QCheck2
module Gen = QCheck2.Gen
module Pattern = Ccc.Pattern
module Offset = Ccc.Offset
module Coeff = Ccc.Coeff
module Tap = Ccc.Tap
module Boundary = Ccc.Boundary
module Grid = Ccc.Grid
module Exec = Ccc.Exec
module Stats = Ccc.Stats
module Engine = Ccc.Engine
module Fingerprint = Ccc.Fingerprint

let config = Ccc.Config.default

(* --- helpers (mirrors tutil.ml) ----------------------------------- *)

let mixed_grid ~seed ~rows ~cols =
  Grid.init ~rows ~cols (fun r c ->
      let h = (seed * 0x9e3779b1) lxor (r * 31) lxor (c * 131) in
      let h = h lxor (h lsr 13) in
      float_of_int (h land 0xffff) /. 65536.0 -. 0.5)

let env_for ?(seed = 0x5eed) ~rows ~cols pattern =
  let names =
    Pattern.source_var pattern
    :: List.filter_map
         (fun t -> Coeff.array_name t.Tap.coeff)
         (Pattern.taps pattern)
    @ (match Pattern.bias pattern with
      | Some c -> Option.to_list (Coeff.array_name c)
      | None -> [])
  in
  List.mapi (fun i n -> (n, mixed_grid ~seed:(seed + i) ~rows ~cols)) names

let pattern_of_offsets ?bias ?boundary ?source ?result offs =
  Pattern.create ?bias ?boundary ?source ?result
    (List.mapi
       (fun i (drow, dcol) ->
         Tap.make (Offset.make ~drow ~dcol)
           (Coeff.Array (Printf.sprintf "C%d" (i + 1))))
       offs)

let cross5 ?source ?result () =
  pattern_of_offsets ?source ?result
    [ (-1, 0); (0, -1); (0, 0); (0, 1); (1, 0) ]

let ok_exn = function
  | Ok v -> v
  | Error e -> Alcotest.failf "engine error: %s" (Engine.error_to_string e)

let compile_exn p =
  match Ccc.compile_pattern config p with
  | Ok c -> c
  | Error e -> Alcotest.failf "compile: %s" (Ccc.error_to_string e)

let check_bit_identical what a b =
  let diff = Grid.max_abs_diff a b in
  if diff <> 0.0 then
    Alcotest.failf "%s: outputs differ by %g (must be bit-identical)" what diff

(* --- fingerprint canonicalization (unit) --------------------------- *)

let test_fp_renaming () =
  let original = cross5 () in
  let renamed =
    Pattern.create ~source:"P" ~result:"Q"
      (List.mapi
         (fun i (drow, dcol) ->
           Tap.make (Offset.make ~drow ~dcol)
             (Coeff.Array (Printf.sprintf "K%d" (i + 1))))
         [ (-1, 0); (0, -1); (0, 0); (0, 1); (1, 0) ])
  in
  Alcotest.(check string)
    "renamed coefficients and variables share a fingerprint"
    (Fingerprint.pattern original)
    (Fingerprint.pattern renamed)

let test_fp_sharing () =
  let mk names =
    Pattern.create
      (List.mapi
         (fun i name ->
           Tap.make (Offset.make ~drow:0 ~dcol:(i - 1)) (Coeff.Array name))
         names)
  in
  let shared = mk [ "A"; "A"; "B" ] and distinct = mk [ "A"; "B"; "C" ] in
  if Fingerprint.pattern shared = Fingerprint.pattern distinct then
    Alcotest.fail "a repeated coefficient array must not alias distinct ones"

let test_fp_distinctions () =
  let base = cross5 () in
  let differs what p =
    if Fingerprint.pattern base = Fingerprint.pattern p then
      Alcotest.failf "%s must change the fingerprint" what
  in
  differs "different offsets"
    (pattern_of_offsets [ (-1, 0); (0, -1); (0, 0); (0, 1); (2, 0) ]);
  differs "end-off boundary"
    (pattern_of_offsets ~boundary:(Boundary.End_off 0.0)
       [ (-1, 0); (0, -1); (0, 0); (0, 1); (1, 0) ]);
  differs "a bias term"
    (pattern_of_offsets ~bias:(Coeff.Array "BB")
       [ (-1, 0); (0, -1); (0, 0); (0, 1); (1, 0) ]);
  differs "a scalar coefficient"
    (Pattern.create
       (Tap.make (Offset.make ~drow:(-1) ~dcol:0) (Coeff.Scalar 0.25)
       :: List.mapi
            (fun i (drow, dcol) ->
              Tap.make (Offset.make ~drow ~dcol)
                (Coeff.Array (Printf.sprintf "C%d" (i + 2))))
            [ (0, -1); (0, 0); (0, 1); (1, 0) ]));
  let s1 =
    Pattern.create [ Tap.make Offset.zero (Coeff.Scalar 0.5) ]
  and s2 = Pattern.create [ Tap.make Offset.zero (Coeff.Scalar 0.25) ] in
  if Fingerprint.pattern s1 = Fingerprint.pattern s2 then
    Alcotest.fail "different scalar values must change the fingerprint"

let test_fp_config () =
  let p = cross5 () in
  let tuned = Ccc.Config.tuned_runtime config in
  let small = Ccc.Config.with_nodes ~rows:2 ~cols:2 config in
  if Fingerprint.key config p = Fingerprint.key tuned p then
    Alcotest.fail "tuned runtime constants must change the cache key";
  if Fingerprint.key config p = Fingerprint.key small p then
    Alcotest.fail "the node grid must change the cache key";
  Alcotest.(check string)
    "the key is pattern and config fingerprints joined"
    (Fingerprint.pattern p ^ "|" ^ Fingerprint.config config)
    (Fingerprint.key config p)

(* --- fingerprint canonicalization (qcheck) ------------------------- *)

let gen_offsets =
  Gen.map
    (fun offs -> List.sort_uniq Offset.compare offs)
    (Gen.list_size (Gen.int_range 1 7)
       (Gen.map2
          (fun drow dcol -> Offset.make ~drow ~dcol)
          (Gen.int_range (-2) 2) (Gen.int_range (-2) 2)))

let gen_coeff index =
  Gen.oneof
    [
      Gen.return (Coeff.Array (Printf.sprintf "C%d" (index + 1)));
      (* Repeat an array name to exercise stream sharing. *)
      Gen.return (Coeff.Array "C1");
      Gen.map
        (fun i -> Coeff.Scalar (float_of_int i /. 4.0))
        (Gen.int_range (-8) 8);
      Gen.return Coeff.One;
    ]

let gen_boundary =
  Gen.oneof
    [
      Gen.return Boundary.Circular;
      Gen.map
        (fun i -> Boundary.End_off (float_of_int i /. 2.0))
        (Gen.int_range (-2) 2);
    ]

let gen_pattern =
  let open Gen in
  gen_offsets >>= fun offsets ->
  gen_boundary >>= fun boundary ->
  flatten_l (List.mapi (fun i _ -> gen_coeff i) offsets) >>= fun coeffs ->
  bool >>= fun with_bias ->
  let taps = List.map2 Tap.make offsets coeffs in
  let bias = if with_bias then Some (Coeff.Array "BB") else None in
  return (Pattern.create ?bias ~boundary taps)

let print_pattern p = Format.asprintf "%a" Pattern.pp p

(* A consistent (injective) renaming of every array and variable. *)
let rename_pattern p =
  let rename = function
    | Coeff.Array name -> Coeff.Array ("Z" ^ name)
    | c -> c
  in
  Pattern.create
    ?bias:(Option.map rename (Pattern.bias p))
    ~boundary:(Pattern.boundary p)
    ~source:("Z" ^ Pattern.source_var p)
    ~result:("Z" ^ Pattern.result_var p)
    (List.map
       (fun (t : Tap.t) -> Tap.make t.Tap.offset (rename t.Tap.coeff))
       (Pattern.taps p))

let prop_fp_permutation_invariant =
  Q.Test.make ~name:"fingerprint ignores tap order" ~count:200
    ~print:print_pattern gen_pattern (fun p ->
      let reversed =
        Pattern.create
          ?bias:(Pattern.bias p)
          ~boundary:(Pattern.boundary p)
          ~source:(Pattern.source_var p)
          ~result:(Pattern.result_var p)
          (List.rev (Pattern.taps p))
      in
      Fingerprint.pattern p = Fingerprint.pattern reversed)

let prop_fp_renaming_invariant =
  Q.Test.make ~name:"fingerprint ignores consistent renaming" ~count:200
    ~print:print_pattern gen_pattern (fun p ->
      Fingerprint.pattern p = Fingerprint.pattern (rename_pattern p))

let prop_fp_offsets_injective =
  Q.Test.make ~name:"fingerprints of different geometries differ" ~count:200
    ~print:(fun (a, b) -> print_pattern a ^ " / " ^ print_pattern b)
    (Gen.pair gen_pattern gen_pattern)
    (fun (a, b) ->
      Pattern.offsets a = Pattern.offsets b
      || Fingerprint.pattern a <> Fingerprint.pattern b)

(* --- engine vs one-shot -------------------------------------------- *)

let prop_engine_matches_one_shot =
  Q.Test.make
    ~name:"Engine.run = Ccc.apply (bit-identical output, equal stats)"
    ~count:60 ~print:print_pattern gen_pattern (fun p ->
      let rows = 8 and cols = 8 in
      let env = env_for ~rows ~cols p in
      let engine = Engine.create config in
      match Engine.run engine p env with
      | Error (Engine.Resource_error _) -> true (* nothing compiles *)
      | Error e -> Q.Test.fail_report (Engine.error_to_string e)
      | Ok { Exec.output; stats } ->
          let one = Ccc.apply config (compile_exn p) env in
          Grid.max_abs_diff one.Exec.output output = 0.0
          && one.Exec.stats = stats)

let test_engine_warm_counters () =
  let engine = Engine.create config in
  let rows = 16 and cols = 16 in
  let outputs =
    List.map
      (fun source ->
        let p = cross5 ~source () in
        let env = env_for ~rows ~cols p in
        let { Exec.output; _ } = ok_exn (Engine.run engine p env) in
        check_bit_identical "warm engine run vs one-shot"
          (Ccc.apply config (compile_exn p) env).Exec.output output;
        output)
      [ "X"; "Y"; "Z" ]
  in
  ignore outputs;
  let s = Engine.stats engine in
  Alcotest.(check int) "one compile" 1 s.Engine.compiles;
  Alcotest.(check int) "two cache hits" 2 s.Engine.hits;
  Alcotest.(check int) "one miss" 1 s.Engine.misses;
  Alcotest.(check int) "one live entry" 1 s.Engine.entries;
  Alcotest.(check int) "arena reused twice" 2 s.Engine.arena_reuses;
  Alcotest.(check int) "arena built once" 1 s.Engine.arena_rebuilds;
  Alcotest.(check int) "three runs" 3 s.Engine.runs

let test_rebound_plans_verify_clean () =
  (* A cache hit rebinds the cached plans to new names; the rebound
     plans must stay clean under the standalone analyzer, and the
     simulate path (cost model = interpreter, verify_exn on every
     plan) must accept them. *)
  let engine = Engine.create config in
  let first = cross5 () in
  ignore (ok_exn (Engine.run engine first (env_for ~rows:16 ~cols:16 first)));
  let renamed = cross5 ~source:"P" ~result:"Q" () in
  let compiled = ok_exn (Engine.compile engine renamed) in
  List.iter
    (fun plan ->
      match Ccc.Verify.verify config plan with
      | [] -> ()
      | findings ->
          Alcotest.failf "rebound width-%d plan: %s" plan.Ccc.Plan.width
            (String.concat "; " (List.map Ccc.Finding.to_string findings)))
    compiled.Ccc.Compile.plans;
  let env = env_for ~rows:16 ~cols:16 renamed in
  let { Exec.output; _ } =
    ok_exn (Engine.run ~mode:Exec.Simulate engine renamed env)
  in
  check_bit_identical "simulated warm run"
    (Ccc.apply ~mode:Exec.Simulate config compiled env).Exec.output output;
  let s = Engine.stats engine in
  Alcotest.(check int) "still one compile" 1 s.Engine.compiles

let test_eviction () =
  let engine = Engine.create ~capacity:2 config in
  let p1 = cross5 () in
  let p2 = pattern_of_offsets [ (0, -1); (0, 0); (0, 1) ] in
  let p3 = pattern_of_offsets [ (-1, 0); (0, 0); (1, 0) ] in
  ignore (ok_exn (Engine.compile engine p1));
  ignore (ok_exn (Engine.compile engine p2));
  (* Touch p1 so p2 is the least recently used entry. *)
  ignore (ok_exn (Engine.compile engine p1));
  ignore (ok_exn (Engine.compile engine p3));
  let s = Engine.stats engine in
  Alcotest.(check int) "capacity bounds the cache" 2 s.Engine.entries;
  Alcotest.(check int) "one eviction" 1 s.Engine.evictions;
  (* p1 survived (recently used), p2 was evicted. *)
  ignore (ok_exn (Engine.compile engine p1));
  Alcotest.(check int) "p1 still cached" 2 (Engine.stats engine).Engine.hits;
  ignore (ok_exn (Engine.compile engine p2));
  let s = Engine.stats engine in
  Alcotest.(check int) "evicted entry recompiles" 4 s.Engine.compiles;
  Alcotest.(check int) "a second eviction makes room" 2 s.Engine.evictions

let test_eviction_rebind_verifies () =
  (* Under cache pressure an evicted entry that returns is a fresh
     miss: its kernel must be rebuilt and re-proved in the sandbox,
     never served stale.  A rebind hit, by contrast, reuses the cached
     kernel without a re-proof (renames never move tap offsets).
     Pinned via the engine.kernel.verifies counter. *)
  let engine = Engine.create ~capacity:2 config in
  let verifies () =
    Ccc.Metrics.Counter.value
      (Ccc.Metrics.counter (Engine.metrics engine) "engine.kernel.verifies")
  in
  let p1 = cross5 () in
  let p2 = pattern_of_offsets [ (0, -1); (0, 0); (0, 1) ] in
  let p3 = pattern_of_offsets [ (-1, 0); (0, 0); (1, 0) ] in
  ignore (ok_exn (Engine.compile engine p1));
  ignore (ok_exn (Engine.compile engine p2));
  Alcotest.(check int) "each miss proves its kernel once" 2 (verifies ());
  (* A renamed stencil is a rebind hit on p1's entry (and makes p2 the
     least recently used). *)
  ignore (ok_exn (Engine.compile engine (cross5 ~source:"P" ~result:"Q" ())));
  Alcotest.(check int) "a rebind hit is not re-proved" 2 (verifies ());
  (* p3 evicts p2; p2's return is a miss that re-verifies. *)
  ignore (ok_exn (Engine.compile engine p3));
  ignore (ok_exn (Engine.compile engine p2));
  Alcotest.(check int) "evicted entries re-prove on return" 4 (verifies ());
  let s = Engine.stats engine in
  Alcotest.(check int) "two evictions under pressure" 2 s.Engine.evictions;
  Alcotest.(check int) "one hit (the rebind)" 1 s.Engine.hits;
  (* The refilled entry's kernel is live, not a dangling reference:
     a run through the cache still matches the one-shot path. *)
  let env = env_for ~rows:16 ~cols:16 p2 in
  let { Exec.output; _ } = ok_exn (Engine.run engine p2 env) in
  check_bit_identical "refilled entry serves a sound kernel"
    (Ccc.apply config (compile_exn p2) env).Exec.output output

let test_too_small_is_error () =
  (* 8x8 over a 4x4 node grid leaves 2x2 subgrids; a radius-4 stencil
     cannot fit, and the engine reports it as a value, not a crash. *)
  let wide = pattern_of_offsets [ (0, -4); (0, 0); (0, 4) ] in
  let env = env_for ~rows:8 ~cols:8 wide in
  let engine = Engine.create config in
  (match Engine.run engine wide env with
  | Error (Engine.Too_small _) -> ()
  | Ok _ -> Alcotest.fail "expected Too_small, got a result"
  | Error e -> Alcotest.failf "expected Too_small, got %s"
                 (Engine.error_to_string e));
  match Ccc.run config (compile_exn wide) env with
  | Error (Ccc.Too_small _) -> ()
  | Ok _ -> Alcotest.fail "Ccc.run: expected Too_small, got a result"
  | Error e ->
      Alcotest.failf "Ccc.run: expected Too_small, got %s"
        (Ccc.error_to_string e)

(* --- batched execution --------------------------------------------- *)

let batch_patterns () =
  (* Three statements over the same source P: a 5-point cross, the
     same geometry under other names, and a 9-point box (pad 1, needs
     corners). *)
  let p1 = cross5 ~source:"P" ~result:"R1" () in
  let p2 =
    Pattern.create ~source:"P" ~result:"R2"
      (List.mapi
         (fun i (drow, dcol) ->
           Tap.make (Offset.make ~drow ~dcol)
             (Coeff.Array (Printf.sprintf "K%d" (i + 1))))
         [ (-1, 0); (0, -1); (0, 0); (0, 1); (1, 0) ])
  in
  let p3 =
    Pattern.create ~source:"P" ~result:"R3"
      (List.mapi
         (fun i (drow, dcol) ->
           Tap.make (Offset.make ~drow ~dcol)
             (Coeff.Array (Printf.sprintf "D%d" (i + 1))))
         [ (-1, -1); (-1, 0); (-1, 1); (0, -1); (0, 0); (0, 1); (1, -1);
           (1, 0); (1, 1) ])
  in
  [ p1; p2; p3 ]

let batch_env ~rows ~cols patterns =
  List.concat (List.mapi (fun i p -> env_for ~seed:(0x5eed + (100 * i)) ~rows ~cols p) patterns)
  |> List.fold_left
       (fun acc (n, g) -> if List.mem_assoc n acc then acc else (n, g) :: acc)
       []
  |> List.rev

let test_batch_matches_reference () =
  let rows = 16 and cols = 16 in
  let patterns = batch_patterns () in
  let env = batch_env ~rows ~cols patterns in
  let engine = Engine.create config in
  let batch = ok_exn (Engine.run_batch engine patterns env) in
  List.iter2
    (fun p (r : Exec.result) ->
      check_bit_identical
        (Printf.sprintf "batched %s vs one-shot" (Pattern.result_var p))
        (Ccc.apply config (compile_exn p) env).Exec.output
        r.Exec.output;
      Alcotest.(check int)
        "statement stats carry no communication" 0
        r.Exec.stats.Stats.comm_cycles)
    patterns batch.Exec.batch_results;
  (* Also under the checking mode: the analytic model must equal the
     interpreter even with the halo padded to the widest statement. *)
  ignore (ok_exn (Engine.run_batch ~mode:Exec.Simulate engine patterns env))

let test_batch_amortizes () =
  let rows = 16 and cols = 16 in
  let patterns = batch_patterns () in
  let env = batch_env ~rows ~cols patterns in
  let engine = Engine.create config in
  let batch = ok_exn (Engine.run_batch engine patterns env) in
  let bs = batch.Exec.batch_stats in
  let one_shot =
    List.map (fun p -> Ccc.apply config (compile_exn p) env) patterns
  in
  let sum f = List.fold_left (fun acc r -> acc + f r.Exec.stats) 0 one_shot in
  let sumf f =
    List.fold_left (fun acc r -> acc +. f r.Exec.stats) 0.0 one_shot
  in
  Alcotest.(check int)
    "identical compute cycles"
    (sum (fun s -> s.Stats.compute_cycles))
    bs.Stats.compute_cycles;
  if bs.Stats.comm_cycles >= sum (fun s -> s.Stats.comm_cycles) then
    Alcotest.fail "a batch must pay less communication than N one-shots";
  if bs.Stats.frontend_s >= sumf (fun s -> s.Stats.frontend_s) then
    Alcotest.fail "a batch must pay less front-end time than N one-shots";
  if Stats.elapsed_s bs >= List.fold_left (fun acc r -> acc +. Stats.elapsed_s r.Exec.stats) 0.0 one_shot
  then Alcotest.fail "a batch must be faster end to end than N one-shots"

let test_batch_validation () =
  let engine = Engine.create config in
  let env = env_for ~rows:16 ~cols:16 (cross5 ()) in
  (match Engine.run_batch engine [] env with
  | Error (Engine.Invalid_batch _) -> ()
  | _ -> Alcotest.fail "empty batch must be Invalid_batch");
  let mixed = [ cross5 ~source:"X" (); cross5 ~source:"Y" () ] in
  (match Engine.run_batch engine mixed env with
  | Error (Engine.Invalid_batch _) -> ()
  | _ -> Alcotest.fail "mixed sources must be Invalid_batch");
  let boundaries =
    [
      cross5 ();
      pattern_of_offsets ~boundary:(Boundary.End_off 0.0)
        [ (-1, 0); (0, -1); (0, 0); (0, 1); (1, 0) ];
    ]
  in
  match Engine.run_batch engine boundaries env with
  | Error (Engine.Invalid_batch _) -> ()
  | _ -> Alcotest.fail "mixed boundaries must be Invalid_batch"

(* ------------------------------------------------------------------ *)

let qcheck tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "ccc_service"
    [
      ( "fingerprint",
        [
          Alcotest.test_case "renaming is canonicalized" `Quick
            test_fp_renaming;
          Alcotest.test_case "array sharing is preserved" `Quick
            test_fp_sharing;
          Alcotest.test_case "distinct patterns differ" `Quick
            test_fp_distinctions;
          Alcotest.test_case "config is part of the key" `Quick test_fp_config;
        ]
        @ qcheck
            [
              prop_fp_permutation_invariant;
              prop_fp_renaming_invariant;
              prop_fp_offsets_injective;
            ] );
      ( "engine",
        qcheck [ prop_engine_matches_one_shot ]
        @ [
            Alcotest.test_case "warm counters pinned" `Quick
              test_engine_warm_counters;
            Alcotest.test_case "rebound plans verify clean" `Quick
              test_rebound_plans_verify_clean;
            Alcotest.test_case "LRU eviction at capacity" `Quick test_eviction;
            Alcotest.test_case "eviction rebuilds and re-proves kernels"
              `Quick test_eviction_rebind_verifies;
            Alcotest.test_case "Too_small is an error value" `Quick
              test_too_small_is_error;
          ] );
      ( "batch",
        [
          Alcotest.test_case "batched outputs match one-shot" `Quick
            test_batch_matches_reference;
          Alcotest.test_case "batch amortizes setup" `Quick
            test_batch_amortizes;
          Alcotest.test_case "batch validation" `Quick test_batch_validation;
        ] );
    ]
