! three statements over the same source
R1 = C1 * CSHIFT(X, 1, -1) + C2 * CSHIFT(X, 2, -1) + C3 * X &
   + C4 * CSHIFT(X, 2, +1) + C5 * CSHIFT(X, 1, +1)
R2 = K1 * CSHIFT(X, 1, -1) + K2 * CSHIFT(X, 2, -1) + K3 * X &
   + K4 * CSHIFT(X, 2, +1) + K5 * CSHIFT(X, 1, +1)
R3 = D1 * CSHIFT(CSHIFT(X, 1, -1), 2, -1) + D2 * X + D3 * CSHIFT(CSHIFT(X, 1, 1), 2, 1)
