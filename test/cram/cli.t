The compilation report for the paper's 5-point cross: width 8 gives the
26-position multistencil, width selection runs 8/4/2/1.

  $ ../../bin/ccc_cli.exe compile cross5.f
  stencil R: 5 taps, flops/point 9
  R = C1*X(-1,+0)
  + C2*X(+0,-1)
  + C3*X(+0,+0)
  + C4*X(+0,+1)
  + C5*X(+1,+0)  [circular (CSHIFT)]
    width 8: 26 positions, 27 registers (zero=r0), rings [1 3 3 3 3 3 3 3 3 1], unroll 3, 190 scratch words
    width 4: 14 positions, 15 registers (zero=r0), rings [1 3 3 3 3 1], unroll 3, 98 scratch words
    width 2: 8 positions, 9 registers (zero=r0), rings [1 3 3 1], unroll 3, 52 scratch words
    width 1: 5 positions, 6 registers (zero=r0), rings [1 3 1], unroll 3, 41 scratch words
  


A statement that shifts two different variables is rejected with the
paper's diagnostic (all shiftings must shift the same variable name),
and the exit code reports failure.

  $ ../../bin/ccc_cli.exe compile bad.f
  not a recognizable stencil assignment:
  line 3: [multiple-shifted-variables] all shiftings must shift the same variable name, found: X, Y
  [1]

The same statement is fine for the fused (multi-source) compiler, the
future-work generalization.

  $ echo 'R = C1 * CSHIFT(X, 1, -1) + C2 * CSHIFT(Y, 1, +1)' | ../../bin/ccc_cli.exe compile - --fused
  fused stencil over sources X, Y: 2 taps
  R = C1*X(-1,+0)
  + C2*Y(+1,+0)  [circular (CSHIFT)]
    width 8: 16 positions over 2 sources, 17 registers (zero=r0), rings [1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1], unroll 1, 40 scratch words
    width 4: 8 positions over 2 sources, 9 registers (zero=r0), rings [1 1 1 1 1 1 1 1], unroll 1, 20 scratch words
    width 2: 4 positions over 2 sources, 5 registers (zero=r0), rings [1 1 1 1], unroll 1, 10 scratch words
    width 1: 2 positions over 2 sources, 3 registers (zero=r0), rings [1 1], unroll 1, 6 scratch words
  


The gallery lists the reconstructed benchmark patterns.

  $ ../../bin/ccc_cli.exe gallery | grep taps
  cross5: 5 taps, 9 flops/point, borders North=1 South=1 East=1 West=1
  square9: 9 taps, 17 flops/point, borders North=1 South=1 East=1 West=1
  cross9: 9 taps, 17 flops/point, borders North=2 South=2 East=2 West=2
  diamond13: 13 taps, 25 flops/point, borders North=2 South=2 East=2 West=2
  asymmetric5: 5 taps, 9 flops/point, borders North=0 South=1 East=2 West=1

The standalone plan analyzer re-proves every compiled plan from
scratch; a clean verdict summarizes the plan's footprint.

  $ ../../bin/ccc_cli.exe lint --pattern cross5 --width 8
  cross5 width 8: clean (27 registers, unroll 3, 190 scratch words)

Width rejections come back as structured findings (the section-6
feedback loop), but they are not lint failures — the exit code stays
zero.

  $ ../../bin/ccc_cli.exe lint --pattern cross9 --width 8
  cross9 width 8: error[register-pressure]: register pressure: 44 data registers needed, 31 available
