The compilation report for the paper's 5-point cross: width 8 gives the
26-position multistencil, width selection runs 8/4/2/1.

  $ ../../bin/ccc_cli.exe compile cross5.f
  stencil R: 5 taps, flops/point 9
  R = C1*X(-1,+0)
  + C2*X(+0,-1)
  + C3*X(+0,+0)
  + C4*X(+0,+1)
  + C5*X(+1,+0)  [circular (CSHIFT)]
    width 8: 26 positions, 27 registers (zero=r0), rings [1 3 3 3 3 3 3 3 3 1], unroll 3, 190 scratch words
    width 4: 14 positions, 15 registers (zero=r0), rings [1 3 3 3 3 1], unroll 3, 98 scratch words
    width 2: 8 positions, 9 registers (zero=r0), rings [1 3 3 1], unroll 3, 52 scratch words
    width 1: 5 positions, 6 registers (zero=r0), rings [1 3 1], unroll 3, 41 scratch words
  


A statement that shifts two different variables is rejected with the
paper's diagnostic (all shiftings must shift the same variable name),
and the exit code reports failure.

  $ ../../bin/ccc_cli.exe compile bad.f
  not a recognizable stencil assignment:
  line 3: [multiple-shifted-variables] all shiftings must shift the same variable name, found: X, Y
  [1]

The same statement is fine for the fused (multi-source) compiler, the
future-work generalization.

  $ echo 'R = C1 * CSHIFT(X, 1, -1) + C2 * CSHIFT(Y, 1, +1)' | ../../bin/ccc_cli.exe compile - --fused
  fused stencil over sources X, Y: 2 taps
  R = C1*X(-1,+0)
  + C2*Y(+1,+0)  [circular (CSHIFT)]
    width 8: 16 positions over 2 sources, 17 registers (zero=r0), rings [1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1], unroll 1, 40 scratch words
    width 4: 8 positions over 2 sources, 9 registers (zero=r0), rings [1 1 1 1 1 1 1 1], unroll 1, 20 scratch words
    width 2: 4 positions over 2 sources, 5 registers (zero=r0), rings [1 1 1 1], unroll 1, 10 scratch words
    width 1: 2 positions over 2 sources, 3 registers (zero=r0), rings [1 1], unroll 1, 6 scratch words
  


The gallery lists the reconstructed benchmark patterns.

  $ ../../bin/ccc_cli.exe gallery | grep taps
  cross5: 5 taps, 9 flops/point, borders North=1 South=1 East=1 West=1
  square9: 9 taps, 17 flops/point, borders North=1 South=1 East=1 West=1
  cross9: 9 taps, 17 flops/point, borders North=2 South=2 East=2 West=2
  diamond13: 13 taps, 25 flops/point, borders North=2 South=2 East=2 West=2
  asymmetric5: 5 taps, 9 flops/point, borders North=0 South=1 East=2 West=1

The standalone plan analyzer re-proves every compiled plan from
scratch; a clean verdict summarizes the plan's footprint.

  $ ../../bin/ccc_cli.exe lint --pattern cross5 --width 8
  cross5 width 8: clean (27 registers, unroll 3, 190 scratch words)

Width rejections come back as structured findings (the section-6
feedback loop), but they are not lint failures — the exit code stays
zero.

  $ ../../bin/ccc_cli.exe lint --pattern cross9 --width 8
  cross9 width 8: error[register-pressure]: register pressure: 44 data registers needed, 31 available

The persistent engine runs several statements over one source array
behind a single halo exchange (the section-7 host loop, strength
reduced); repeated batches are served from the plan cache and the
standing arena, and --stats prints the engine counters.

  $ ../../bin/ccc_cli.exe batch batch.f --rows 32 --cols 32 --repeat 3 --stats
  R1: 5 taps, 740 compute cycles, max |machine - reference| = 0.000e+00
  R2: 5 taps, 740 compute cycles, max |machine - reference| = 0.000e+00
  R3: 3 taps, 608 compute cycles, max |machine - reference| = 0.000e+00
  batch of 3 statements:
  1 iteration(s) on 16 nodes @ 7.0 MHz
  comm 80 + compute 2088 cycles/iter, front end 2150 us/iter
  elapsed 0.0025 s, 9.6 Mflops (0.01 Gflops; 1.23 Gflops on 2048 nodes)
  strips 8+8+8
  amortization: comm 80 cycles (vs 208 one-shot), front end 0.002150 s (vs 0.005150 s one-shot)
  engine: 1 jobs, queue depth 64, 16 tenants
  plan cache: 7 hits, 2 misses, 0 evictions (2/32 entries)
  compiles: 2  runs: 0  batches: 3
  fft: 0 runs, 0 builds, 0 rebinds
  arena: 2 reuses, 1 rebuilds
  accumulated: comm 240 cycles, compute 6264 cycles, front end 0.006451 s
  per call: compute min 2088, mean 2088, max 2088 cycles
  per call: compute p50 2088, p95 2088, p99 2088 cycles

Under --simulate every cached plan is re-verified and the interpreter
must agree with the analytic cycle model.

  $ ../../bin/ccc_cli.exe batch batch.f --rows 32 --cols 32 --simulate
  R1: 5 taps, 740 compute cycles, max |machine - reference| = 8.882e-16
  R2: 5 taps, 740 compute cycles, max |machine - reference| = 8.882e-16
  R3: 3 taps, 608 compute cycles, max |machine - reference| = 4.441e-16
  batch of 3 statements:
  1 iteration(s) on 16 nodes @ 7.0 MHz
  comm 80 + compute 2088 cycles/iter, front end 2150 us/iter
  elapsed 0.0025 s, 9.6 Mflops (0.01 Gflops; 1.23 Gflops on 2048 nodes)
  strips 8+8+8
  amortization: comm 80 cycles (vs 208 one-shot), front end 0.002150 s (vs 0.005150 s one-shot)

A batch must share one source array.

  $ printf 'R1 = C1 * X + C2 * CSHIFT(X, 1, 1)\nR2 = K1 * CSHIFT(Y, 1, 1)\n' > mixed.f
  $ ../../bin/ccc_cli.exe batch mixed.f --rows 32 --cols 32
  invalid batch: statements read X and Y; a batch shares one source array behind one halo exchange
  [1]

--jobs runs the host-side per-node loops across a domain pool; the
output, the statistics and the oracle distance are identical to the
sequential run, bit for bit.

  $ ../../bin/ccc_cli.exe run cross5.f --rows 32 --cols 32 --jobs 1
  1 iteration(s) on 16 nodes @ 7.0 MHz
  comm 64 + compute 740 cycles/iter, front end 1722 us/iter
  elapsed 0.0018 s, 5.0 Mflops (0.01 Gflops; 0.64 Gflops on 2048 nodes)
  strips 8, corner exchange skipped
  max |machine - reference| = 0.000e+00

  $ ../../bin/ccc_cli.exe run cross5.f --rows 32 --cols 32 --jobs 2
  1 iteration(s) on 16 nodes @ 7.0 MHz
  comm 64 + compute 740 cycles/iter, front end 1722 us/iter
  elapsed 0.0018 s, 5.0 Mflops (0.01 Gflops; 0.64 Gflops on 2048 nodes)
  strips 8, corner exchange skipped
  max |machine - reference| = 0.000e+00

The transform-domain backend: --backend fft forces the FFT path (its
synthetic coefficient arrays are held spatially uniform — a per-point
coefficient field is not a convolution), and the result stays within
transform rounding of the reference oracle.

  $ ../../bin/ccc_cli.exe run cross5.f --rows 32 --cols 32 --backend fft
  backend: fft (forced)
  1 iteration(s) on 16 nodes @ 7.0 MHz
  comm 130 + compute 4716 cycles/iter, front end 1500 us/iter
  elapsed 0.0022 s, 4.2 Mflops (0.00 Gflops; 0.54 Gflops on 2048 nodes)
  strips -, corner exchange skipped
  max |machine - reference| = 1.332e-15

A dense kernel no width can register-allocate is still a compile-time
resource rejection (the section-6 feedback loop)...

  $ ../../bin/ccc_cli.exe compile gauss7.f
  resource limits: no workable multistencil width: width 8: register pressure: 98 data registers needed, 31 available; width 4: register pressure: 70 data registers needed, 31 available; width 2: register pressure: 56 data registers needed, 31 available; width 1: register pressure: 49 data registers needed, 31 available
  [1]

...and --backend compiled keeps it one at run time, but the default
auto policy notices the rejection and falls through to the transform
path instead of saying no.

  $ ../../bin/ccc_cli.exe run gauss7.f --rows 32 --cols 32 --backend compiled
  resource limits: no workable multistencil width: width 8: register pressure: 98 data registers needed, 31 available; width 4: register pressure: 70 data registers needed, 31 available; width 2: register pressure: 56 data registers needed, 31 available; width 1: register pressure: 49 data registers needed, 31 available
  [1]

  $ ../../bin/ccc_cli.exe run gauss7.f --rows 32 --cols 32
  backend: fft (auto: no workable compiled width)
  1 iteration(s) on 16 nodes @ 7.0 MHz
  comm 402 + compute 4764 cycles/iter, front end 1500 us/iter
  elapsed 0.0022 s, 44.4 Mflops (0.04 Gflops; 5.68 Gflops on 2048 nodes)
  strips -
  max |machine - reference| = 1.066e-14

The issue trace's header names the plan width it actually selected —
the widest available when none is requested, or the requested one.

  $ ../../bin/ccc_cli.exe trace cross5.f --lines 1 | head -3
  half-strip: width 8 (widest available), 1 lines
  cycle   42  row  3  load  r3  <- src0(-1,+0)
  cycle   43  row  3  load  r6  <- src0(-1,+1)

  $ ../../bin/ccc_cli.exe trace cross5.f --width 2 --lines 1 | head -1
  half-strip: width 2 (requested), 1 lines

The profile command replays one compile-and-simulate through the
unified telemetry layer: the span tree of every pipeline and runtime
phase, the paper's Table-1 comm/compute/front-end attribution opened
up per microcode phase, and an exact cross-check of the attribution
against the cycle-accurate interpreter.

  $ ../../bin/ccc_cli.exe profile cross5.f --rows 32 --cols 32
  spans:
  parse
  recognize
  compile  (taps=5)
    compile.width  (width=8, registers=27)
      compile.multistencil
      compile.regalloc
      compile.schedule
      compile.lint
    compile.width  (width=4, registers=15)
      compile.multistencil
      compile.regalloc
      compile.schedule
      compile.lint
    compile.width  (width=2, registers=9)
      compile.multistencil
      compile.regalloc
      compile.schedule
      compile.lint
    compile.width  (width=1, registers=6)
      compile.multistencil
      compile.regalloc
      compile.schedule
      compile.lint
  run
    run.scatter
    run.streams
    run.halo  (cycles=64)
    run.compute  (cycles=740, madds=496)
      run.halfstrip  (width=8, col0=0, lines=4, cycles=370)
      run.halfstrip  (width=8, col0=0, lines=4, cycles=370)
    run.gather
    run.frontend  (seconds=0.00172183)
  
  attribution (8x8 subgrid per node):
  comm 64 + compute 740 cycles, front end 1722 us
    startup              84   11.4%
    prologue             32    4.3%
    line overhead        96   13.0%
    loads                80   10.8%
    pipe reversal        32    4.3%
    madds               320   43.2%
    drain                16    2.2%
    stores               64    8.6%
    loop branch          16    2.2%
    total               740  100.0%
  
  cross-check: per-phase attribution matches the simulated run

--trace on run and batch records the same spans wall-clocked and
writes Chrome trace_event JSON for chrome://tracing or Perfetto.

  $ ../../bin/ccc_cli.exe run cross5.f --rows 32 --cols 32 --trace trace.json | tail -1
  trace: 32 spans written to trace.json

  $ head -c 9 trace.json; echo
  [{"name":

  $ ../../bin/ccc_cli.exe batch batch.f --rows 32 --cols 32 --trace batch-trace.json | tail -1
  trace: 60 spans written to batch-trace.json

  $ head -c 9 batch-trace.json; echo
  [{"name":

The conformance matrix: every gallery stencil at every compiled width
down all four execution paths at jobs 1/2/7, clean and under
seed-driven fault injection.  Deterministic for a fixed seed.

  $ ../../bin/ccc_cli.exe conform --seed 42
  conformance: seed 42, guarded, jobs {1,2,7}
  clean: 270/270 cells ok (5 patterns, 18 compiled widths, 5 paths)
  fault kills, lowered path (killed/injected):
                      jobs=1  jobs=2  jobs=7
    bit-flip             5/5     5/5     5/5
    halo-drop            5/5     5/5     5/5
    halo-duplicate       5/5     5/5     5/5
    phase-skip           5/5     5/5     5/5
    kernel-poison        5/5     5/5     5/5
    pool-death           5/5     5/5     5/5
  fault kills, fft path (killed/injected):
                      jobs=1  jobs=2  jobs=7
    bit-flip             5/5     5/5     5/5
    halo-drop            5/5     5/5     5/5
    halo-duplicate       5/5     5/5     5/5
    phase-skip           5/5     5/5     5/5
    fft-poison           5/5     5/5     5/5
    pool-death           5/5     5/5     5/5
  injected 180: detected 180, recovered 180, missed 0
  conformance: PASS

With the guards disabled (the negative control) every
silent-corruption fault escapes undetected — only the worker-domain
death, which is a contained crash, is still caught — and the command
exits nonzero.

  $ ../../bin/ccc_cli.exe conform --seed 42 --unguarded
  conformance: seed 42, unguarded, jobs {1,2,7}
  clean: 270/270 cells ok (5 patterns, 18 compiled widths, 5 paths)
  fault kills, lowered path (killed/injected):
                      jobs=1  jobs=2  jobs=7
    bit-flip             0/5     0/5     0/5
    halo-drop            0/5     0/5     0/5
    halo-duplicate       0/5     0/5     0/5
    phase-skip           0/5     0/5     0/5
    kernel-poison        0/5     0/5     0/5
    pool-death           5/5     5/5     5/5
  fault kills, fft path (killed/injected):
                      jobs=1  jobs=2  jobs=7
    bit-flip             0/5     0/5     0/5
    halo-drop            0/5     0/5     0/5
    halo-duplicate       0/5     0/5     0/5
    phase-skip           0/5     0/5     0/5
    fft-poison           0/5     0/5     0/5
    pool-death           5/5     5/5     5/5
  injected 180: detected 30, recovered 30, missed 150
  conformance: FAIL (150 injected faults escaped undetected)
  [1]

The domain-safety analyzer: the instrumented clean sweep replays the
conformance clean matrix with the shared-state probes live and must
come back finding-free.

  $ ../../bin/ccc_cli.exe race --seed 42 --jobs 2
  domain-safety: 93616 access events from 180 clean cells (jobs 1,2) and a 4-request serve session
  race: PASS (0 findings)

Every seeded concurrency mutation must be killed with a
phase-attributed finding.

  $ ../../bin/ccc_cli.exe race --mutate all
  seeded kill matrix (seed 42, jobs 2):
    dropped-metrics-lock   KILLED (data-race during metrics, 2 findings)
    overlapping-chunks     KILLED (data-race during compute, 4 findings)
    deatomized-counter     KILLED (data-race during compute, 2 findings)
    arena-alias            KILLED (data-race during batch, 4 findings)
    lost-signal            KILLED (data-race during gather, 4 findings)
    cache-write-bypass     KILLED (ownership during compute, 2 findings)
  6/6 mutations killed

A single mutation prints the full findings, naming both accesses, the
domains and the execution phase.

  $ ../../bin/ccc_cli.exe race --mutate lost-signal --seed 7 --jobs 4
  mutation lost-signal (seed 7, jobs 4): one worker's completion signal is lost, so the coordinator passes the barrier without the worker's happens-before edge
  error[data-race] during gather: write-read race on exec.dst[2]: domain 1 (compute phase) vs domain 0 (gather phase) with no happens-before edge
  error[data-race] during gather: write-read race on exec.dst[3]: domain 1 (compute phase) vs domain 0 (gather phase) with no happens-before edge
  race: KILLED (2 findings)

The multi-tenant service: a canned trace through the sharded
scheduler.  Four fingerprint-identical cross5 requests (one arriving
by catalog key) coalesce into a single engine call; a second stencil
over the same source array joins them in one two-pattern batch
window; an unparsable request is refused and an expired deadline is
shed at admission, both with structured outcomes.

  $ ../../bin/ccc_cli.exe serve --demo
  alice  cross5     [shard 1 window 0 batched 2 coalesced 4] completed: compute 740 cycles, comm 0 cycles
  bob    square9    [shard 1 window 0 batched 1 coalesced 1] completed: compute 1004 cycles, comm 80 cycles
  alice  cross9     [shard 0 window 0 batched 1 coalesced 1] completed: compute 1320 cycles, comm 128 cycles
  bob    diamond13  [shard 0 window 0 batched 1 coalesced 1] completed: compute 1592 cycles, comm 192 cycles
  carol  cross5     [shard 1 window 0 batched 2 coalesced 4] completed: compute 740 cycles, comm 0 cycles
  carol  cross5     [shard 1 window 0 batched 2 coalesced 4] completed: compute 740 cycles, comm 0 cycles
  carol  cross5.key [shard 1 window 0 batched 2 coalesced 4] completed: compute 740 cycles, comm 0 cycles
  alice  tilt       [shard 1 window 0 batched 2 coalesced 1] completed: compute 522 cycles, comm 0 cycles
  dave   garbage    [at admission] parse error: line 1: trailing tokens after assignment: identifier A
  eve    too-late   [at admission] deadline exceeded: tenant eve asked for -1 us, clock read 17 us
  serve: 2 shards, window 16, queue depth 64, 16 tenants max
  admission: 8 admitted, 3 coalesced, 1 shed
  served: 8 completed, 0 degraded, 1 refused in 2 windows
  latency queued: p50 12, p95 19, p99 19 us
  latency service: p50 0, p95 0, p99 0 us
  tenant alice: 3 served
  tenant bob: 2 served
  tenant carol: 3 served
  shard 0:
    engine: 1 jobs, queue depth 64, 16 tenants
    plan cache: 0 hits, 2 misses, 0 evictions (2/32 entries)
    compiles: 2  runs: 2  batches: 0
    fft: 0 runs, 0 builds, 0 rebinds
    arena: 0 reuses, 2 rebuilds
    accumulated: comm 320 cycles, compute 2912 cycles, front end 0.003882 s
    per call: compute min 1320, mean 1456, max 1592 cycles
    per call: compute p50 1536, p95 1592, p99 1592 cycles
  shard 1:
    engine: 1 jobs, queue depth 64, 16 tenants
    plan cache: 0 hits, 3 misses, 0 evictions (3/32 entries)
    compiles: 3  runs: 1  batches: 1
    fft: 0 runs, 0 builds, 0 rebinds
    arena: 0 reuses, 2 rebuilds
    accumulated: comm 160 cycles, compute 2266 cycles, front end 0.003671 s
    per call: compute min 1004, mean 1133, max 1262 cycles
    per call: compute p50 1024, p95 1262, p99 1262 cycles

Without --demo the subcommand refuses (there is no network front
end to point it at).

  $ ../../bin/ccc_cli.exe serve
  ccc serve: pass --demo (the scheduler has no network front end)
  [2]

With --trace the demo also exports its merged cross-domain trace as
Chrome trace_event JSON (load it in Perfetto): one named lane for the
scheduler's admission spans plus one lane per shard, where queue-wait
sits visibly apart from the windowed compute.

  $ ../../bin/ccc_cli.exe serve --demo --trace trace.json | tail -1
  trace: 164 spans in 3 lanes written to trace.json
  $ head -1 trace.json
  [{"name":"thread_name","ph":"M","pid":1,"tid":0,"args":{"name":"scheduler"}},
  $ grep -c '"ph":"M"' trace.json
  3
  $ grep -o '"tid":[0-9]*' trace.json | sort -u
  "tid":0
  "tid":1
  "tid":2
  $ grep -o '"name":"serve\.[a-z_]*"' trace.json | sort | uniq -c
        4 "name":"serve.execute"
        8 "name":"serve.queue_wait"
        8 "name":"serve.submit"
        2 "name":"serve.window"

The scrape surface: the same demo session rendered as Prometheus-style
text exposition — scheduler counters and latency histograms, one
family per per-tenant field with a tenant label, and every shard
engine's registry under its shard label.

  $ ../../bin/ccc_cli.exe stats --demo
  # TYPE ccc_engine_arena_rebuilds gauge
  ccc_engine_arena_rebuilds{shard="0"} 2
  ccc_engine_arena_rebuilds{shard="1"} 2
  # TYPE ccc_engine_arena_reuses gauge
  ccc_engine_arena_reuses{shard="0"} 0
  ccc_engine_arena_reuses{shard="1"} 0
  # TYPE ccc_engine_batches counter
  ccc_engine_batches{shard="0"} 0
  ccc_engine_batches{shard="1"} 1
  # TYPE ccc_engine_cache_evictions counter
  ccc_engine_cache_evictions{shard="0"} 0
  ccc_engine_cache_evictions{shard="1"} 0
  # TYPE ccc_engine_cache_hits counter
  ccc_engine_cache_hits{shard="0"} 0
  ccc_engine_cache_hits{shard="1"} 0
  # TYPE ccc_engine_cache_misses counter
  ccc_engine_cache_misses{shard="0"} 2
  ccc_engine_cache_misses{shard="1"} 3
  # TYPE ccc_engine_compiles counter
  ccc_engine_compiles{shard="0"} 2
  ccc_engine_compiles{shard="1"} 3
  # TYPE ccc_engine_compute_cycles_per_call histogram
  ccc_engine_compute_cycles_per_call_bucket{shard="0",le="2048"} 2
  ccc_engine_compute_cycles_per_call_bucket{shard="0",le="+Inf"} 2
  ccc_engine_compute_cycles_per_call_sum{shard="0"} 2912
  ccc_engine_compute_cycles_per_call_count{shard="0"} 2
  ccc_engine_compute_cycles_per_call_p50{shard="0"} 1536
  ccc_engine_compute_cycles_per_call_p95{shard="0"} 1592
  ccc_engine_compute_cycles_per_call_p99{shard="0"} 1592
  ccc_engine_compute_cycles_per_call_bucket{shard="1",le="1024"} 1
  ccc_engine_compute_cycles_per_call_bucket{shard="1",le="2048"} 2
  ccc_engine_compute_cycles_per_call_bucket{shard="1",le="+Inf"} 2
  ccc_engine_compute_cycles_per_call_sum{shard="1"} 2266
  ccc_engine_compute_cycles_per_call_count{shard="1"} 2
  ccc_engine_compute_cycles_per_call_p50{shard="1"} 1024
  ccc_engine_compute_cycles_per_call_p95{shard="1"} 1262
  ccc_engine_compute_cycles_per_call_p99{shard="1"} 1262
  # TYPE ccc_engine_cycles_comm counter
  ccc_engine_cycles_comm{shard="0"} 320
  ccc_engine_cycles_comm{shard="1"} 160
  # TYPE ccc_engine_cycles_compute counter
  ccc_engine_cycles_compute{shard="0"} 2912
  ccc_engine_cycles_compute{shard="1"} 2266
  # TYPE ccc_engine_fft_builds counter
  ccc_engine_fft_builds{shard="0"} 0
  ccc_engine_fft_builds{shard="1"} 0
  # TYPE ccc_engine_fft_compute_cycles_per_call histogram
  ccc_engine_fft_compute_cycles_per_call_bucket{shard="0",le="+Inf"} 0
  ccc_engine_fft_compute_cycles_per_call_sum{shard="0"} 0
  ccc_engine_fft_compute_cycles_per_call_count{shard="0"} 0
  ccc_engine_fft_compute_cycles_per_call_p50{shard="0"} 0
  ccc_engine_fft_compute_cycles_per_call_p95{shard="0"} 0
  ccc_engine_fft_compute_cycles_per_call_p99{shard="0"} 0
  ccc_engine_fft_compute_cycles_per_call_bucket{shard="1",le="+Inf"} 0
  ccc_engine_fft_compute_cycles_per_call_sum{shard="1"} 0
  ccc_engine_fft_compute_cycles_per_call_count{shard="1"} 0
  ccc_engine_fft_compute_cycles_per_call_p50{shard="1"} 0
  ccc_engine_fft_compute_cycles_per_call_p95{shard="1"} 0
  ccc_engine_fft_compute_cycles_per_call_p99{shard="1"} 0
  # TYPE ccc_engine_fft_rebinds counter
  ccc_engine_fft_rebinds{shard="0"} 0
  ccc_engine_fft_rebinds{shard="1"} 0
  # TYPE ccc_engine_fft_runs counter
  ccc_engine_fft_runs{shard="0"} 0
  ccc_engine_fft_runs{shard="1"} 0
  # TYPE ccc_engine_frontend_s gauge
  ccc_engine_frontend_s{shard="0"} 0.00388183
  ccc_engine_frontend_s{shard="1"} 0.00367074
  # TYPE ccc_engine_guard_degraded counter
  ccc_engine_guard_degraded{shard="0"} 0
  ccc_engine_guard_degraded{shard="1"} 0
  # TYPE ccc_engine_guard_detections counter
  ccc_engine_guard_detections{shard="0"} 0
  ccc_engine_guard_detections{shard="1"} 0
  # TYPE ccc_engine_guard_recompiles counter
  ccc_engine_guard_recompiles{shard="0"} 0
  ccc_engine_guard_recompiles{shard="1"} 0
  # TYPE ccc_engine_guard_retries counter
  ccc_engine_guard_retries{shard="0"} 0
  ccc_engine_guard_retries{shard="1"} 0
  # TYPE ccc_engine_kernel_verifies counter
  ccc_engine_kernel_verifies{shard="0"} 2
  ccc_engine_kernel_verifies{shard="1"} 3
  # TYPE ccc_engine_runs counter
  ccc_engine_runs{shard="0"} 2
  ccc_engine_runs{shard="1"} 1
  # TYPE ccc_run_calls counter
  ccc_run_calls{shard="0"} 2
  ccc_run_calls{shard="1"} 2
  # TYPE ccc_run_compute_cycles_per_call histogram
  ccc_run_compute_cycles_per_call_bucket{shard="0",le="2048"} 2
  ccc_run_compute_cycles_per_call_bucket{shard="0",le="+Inf"} 2
  ccc_run_compute_cycles_per_call_sum{shard="0"} 2912
  ccc_run_compute_cycles_per_call_count{shard="0"} 2
  ccc_run_compute_cycles_per_call_p50{shard="0"} 1536
  ccc_run_compute_cycles_per_call_p95{shard="0"} 1592
  ccc_run_compute_cycles_per_call_p99{shard="0"} 1592
  ccc_run_compute_cycles_per_call_bucket{shard="1",le="1024"} 1
  ccc_run_compute_cycles_per_call_bucket{shard="1",le="2048"} 2
  ccc_run_compute_cycles_per_call_bucket{shard="1",le="+Inf"} 2
  ccc_run_compute_cycles_per_call_sum{shard="1"} 2266
  ccc_run_compute_cycles_per_call_count{shard="1"} 2
  ccc_run_compute_cycles_per_call_p50{shard="1"} 1024
  ccc_run_compute_cycles_per_call_p95{shard="1"} 1262
  ccc_run_compute_cycles_per_call_p99{shard="1"} 1262
  # TYPE ccc_run_cycles_comm counter
  ccc_run_cycles_comm{shard="0"} 320
  ccc_run_cycles_comm{shard="1"} 160
  # TYPE ccc_run_cycles_compute counter
  ccc_run_cycles_compute{shard="0"} 2912
  ccc_run_cycles_compute{shard="1"} 2266
  # TYPE ccc_run_flops_useful counter
  ccc_run_flops_useful{shard="0"} 43008
  ccc_run_flops_useful{shard="1"} 29696
  # TYPE ccc_run_frontend_s gauge
  ccc_run_frontend_s{shard="0"} 0.00388183
  ccc_run_frontend_s{shard="1"} 0.00367074
  # TYPE ccc_run_iterations counter
  ccc_run_iterations{shard="0"} 2
  ccc_run_iterations{shard="1"} 2
  # TYPE ccc_run_madds_issued counter
  ccc_run_madds_issued{shard="0"} 1936
  ccc_run_madds_issued{shard="1"} 1534
  # TYPE ccc_serve_admitted counter
  ccc_serve_admitted 8
  # TYPE ccc_serve_coalesced counter
  ccc_serve_coalesced 3
  # TYPE ccc_serve_completed counter
  ccc_serve_completed 8
  # TYPE ccc_serve_degraded counter
  ccc_serve_degraded 0
  # TYPE ccc_serve_queued_us histogram
  ccc_serve_queued_us_bucket{le="8"} 2
  ccc_serve_queued_us_bucket{le="16"} 6
  ccc_serve_queued_us_bucket{le="32"} 8
  ccc_serve_queued_us_bucket{le="+Inf"} 8
  ccc_serve_queued_us_sum 96
  ccc_serve_queued_us_count 8
  ccc_serve_queued_us_p50 12
  ccc_serve_queued_us_p95 19
  ccc_serve_queued_us_p99 19
  # TYPE ccc_serve_refused counter
  ccc_serve_refused 1
  # TYPE ccc_serve_service_us histogram
  ccc_serve_service_us_bucket{le="1"} 8
  ccc_serve_service_us_bucket{le="+Inf"} 8
  ccc_serve_service_us_sum 0
  ccc_serve_service_us_count 8
  ccc_serve_service_us_p50 0
  ccc_serve_service_us_p95 0
  ccc_serve_service_us_p99 0
  # TYPE ccc_serve_shed counter
  ccc_serve_shed 1
  # TYPE ccc_serve_tenant_admitted counter
  ccc_serve_tenant_admitted{tenant="alice"} 3
  ccc_serve_tenant_admitted{tenant="bob"} 2
  ccc_serve_tenant_admitted{tenant="carol"} 3
  # TYPE ccc_serve_tenant_coalesced counter
  ccc_serve_tenant_coalesced{tenant="alice"} 1
  ccc_serve_tenant_coalesced{tenant="bob"} 0
  ccc_serve_tenant_coalesced{tenant="carol"} 3
  # TYPE ccc_serve_tenant_deadline_missed counter
  ccc_serve_tenant_deadline_missed{tenant="alice"} 0
  ccc_serve_tenant_deadline_missed{tenant="bob"} 0
  ccc_serve_tenant_deadline_missed{tenant="carol"} 0
  # TYPE ccc_serve_tenant_degraded counter
  ccc_serve_tenant_degraded{tenant="alice"} 0
  ccc_serve_tenant_degraded{tenant="bob"} 0
  ccc_serve_tenant_degraded{tenant="carol"} 0
  # TYPE ccc_serve_tenant_queue_depth gauge
  ccc_serve_tenant_queue_depth{tenant="alice"} 0
  ccc_serve_tenant_queue_depth{tenant="bob"} 0
  ccc_serve_tenant_queue_depth{tenant="carol"} 0
  # TYPE ccc_serve_tenant_served counter
  ccc_serve_tenant_served{tenant="alice"} 3
  ccc_serve_tenant_served{tenant="bob"} 2
  ccc_serve_tenant_served{tenant="carol"} 3
  # TYPE ccc_serve_tenant_shed counter
  ccc_serve_tenant_shed{tenant="alice"} 0
  ccc_serve_tenant_shed{tenant="bob"} 0
  ccc_serve_tenant_shed{tenant="carol"} 0
  # TYPE ccc_serve_windows counter
  ccc_serve_windows 2

  $ ../../bin/ccc_cli.exe stats
  ccc stats: pass --demo (there is no live scheduler to scrape)
  [2]

And the operator's one-page view over the same session.

  $ ../../bin/ccc_cli.exe top --once
  serve top — 2 shards, window 16, queue depth 64
  outcomes   8 completed  0 degraded  1 refused  1 shed  (2 windows)
  latency    queued  p50 12  p95 19  p99 19 us
  latency    service p50 0  p95 0  p99 0 us
  TENANT    ADMITTED   SERVED   COAL   SHED   DLMISS   DEPTH
  alice            3        3      1      0        0       0
  bob              2        2      0      0        0       0
  carol            3        3      3      0        0       0

  $ ../../bin/ccc_cli.exe top
  ccc top: pass --once (there is no live scheduler to watch)
  [2]
