SUBROUTINE GAUSS7 (R, X)
REAL, ARRAY(:,:) :: R, X
R = 0.029729 * CSHIFT(CSHIFT(X, 1, -3), 2, -3) &
  + 0.078940 * CSHIFT(CSHIFT(X, 1, -3), 2, -2) &
  + 0.141830 * CSHIFT(CSHIFT(X, 1, -3), 2, -1) &
  + 0.172422 * CSHIFT(X, 1, -3) &
  + 0.141830 * CSHIFT(CSHIFT(X, 1, -3), 2, +1) &
  + 0.078940 * CSHIFT(CSHIFT(X, 1, -3), 2, +2) &
  + 0.029729 * CSHIFT(CSHIFT(X, 1, -3), 2, +3) &
  + 0.078940 * CSHIFT(CSHIFT(X, 1, -2), 2, -3) &
  + 0.209611 * CSHIFT(CSHIFT(X, 1, -2), 2, -2) &
  + 0.376603 * CSHIFT(CSHIFT(X, 1, -2), 2, -1) &
  + 0.457833 * CSHIFT(X, 1, -2) &
  + 0.376603 * CSHIFT(CSHIFT(X, 1, -2), 2, +1) &
  + 0.209611 * CSHIFT(CSHIFT(X, 1, -2), 2, +2) &
  + 0.078940 * CSHIFT(CSHIFT(X, 1, -2), 2, +3) &
  + 0.141830 * CSHIFT(CSHIFT(X, 1, -1), 2, -3) &
  + 0.376603 * CSHIFT(CSHIFT(X, 1, -1), 2, -2) &
  + 0.676634 * CSHIFT(CSHIFT(X, 1, -1), 2, -1) &
  + 0.822578 * CSHIFT(X, 1, -1) &
  + 0.676634 * CSHIFT(CSHIFT(X, 1, -1), 2, +1) &
  + 0.376603 * CSHIFT(CSHIFT(X, 1, -1), 2, +2) &
  + 0.141830 * CSHIFT(CSHIFT(X, 1, -1), 2, +3) &
  + 0.172422 * CSHIFT(X, 2, -3) &
  + 0.457833 * CSHIFT(X, 2, -2) &
  + 0.822578 * CSHIFT(X, 2, -1) &
  + 1.000000 * X &
  + 0.822578 * CSHIFT(X, 2, +1) &
  + 0.457833 * CSHIFT(X, 2, +2) &
  + 0.172422 * CSHIFT(X, 2, +3) &
  + 0.141830 * CSHIFT(CSHIFT(X, 1, +1), 2, -3) &
  + 0.376603 * CSHIFT(CSHIFT(X, 1, +1), 2, -2) &
  + 0.676634 * CSHIFT(CSHIFT(X, 1, +1), 2, -1) &
  + 0.822578 * CSHIFT(X, 1, +1) &
  + 0.676634 * CSHIFT(CSHIFT(X, 1, +1), 2, +1) &
  + 0.376603 * CSHIFT(CSHIFT(X, 1, +1), 2, +2) &
  + 0.141830 * CSHIFT(CSHIFT(X, 1, +1), 2, +3) &
  + 0.078940 * CSHIFT(CSHIFT(X, 1, +2), 2, -3) &
  + 0.209611 * CSHIFT(CSHIFT(X, 1, +2), 2, -2) &
  + 0.376603 * CSHIFT(CSHIFT(X, 1, +2), 2, -1) &
  + 0.457833 * CSHIFT(X, 1, +2) &
  + 0.376603 * CSHIFT(CSHIFT(X, 1, +2), 2, +1) &
  + 0.209611 * CSHIFT(CSHIFT(X, 1, +2), 2, +2) &
  + 0.078940 * CSHIFT(CSHIFT(X, 1, +2), 2, +3) &
  + 0.029729 * CSHIFT(CSHIFT(X, 1, +3), 2, -3) &
  + 0.078940 * CSHIFT(CSHIFT(X, 1, +3), 2, -2) &
  + 0.141830 * CSHIFT(CSHIFT(X, 1, +3), 2, -1) &
  + 0.172422 * CSHIFT(X, 1, +3) &
  + 0.141830 * CSHIFT(CSHIFT(X, 1, +3), 2, +1) &
  + 0.078940 * CSHIFT(CSHIFT(X, 1, +3), 2, +2) &
  + 0.029729 * CSHIFT(CSHIFT(X, 1, +3), 2, +3)
END
