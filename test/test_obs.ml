(* The unified telemetry layer: span tracer, metrics registry, and the
   cycle-attribution profiler.

   The load-bearing property is the last one: the profiler's per-phase
   attribution must sum to the analytic cycle model *and* to the
   cycle-accurate interpreter, instruction for instruction, on random
   patterns — that is what lets the paper's Table-1 split be read off
   live telemetry instead of a hand calculation.  (The interpreter leg
   is transitive: Exec.run in Simulate mode asserts Cost = Interp on
   every half-strip, and we pin the attribution to the simulated
   stats.) *)

module Q = QCheck2
module Gen = QCheck2.Gen
module Trace = Ccc.Trace
module Metrics = Ccc.Metrics
module Profiler = Ccc.Profiler
module Obs = Ccc.Obs

let config = Ccc.Config.default

(* A counter clock: each reading advances by one microsecond, so
   durations are deterministic and strictly positive. *)
let counter_clock () =
  let t = ref 0.0 in
  fun () ->
    t := !t +. 1.0;
    !t

(* ------------------------------------------------------------------ *)
(* Span tracer *)

let test_span_nesting () =
  let tr = Trace.create ~clock:(counter_clock ()) () in
  let result =
    Trace.with_span tr ~attrs:[ ("phase", Trace.Str "outer") ] "a" (fun () ->
        Trace.with_span tr "b" (fun () -> ());
        Trace.with_span tr "c" (fun () ->
            Trace.add_attr tr "cycles" (Trace.Int 42);
            17))
  in
  Alcotest.(check int) "with_span returns the body's value" 17 result;
  (match Trace.roots tr with
  | [ a ] ->
      Alcotest.(check string) "root name" "a" (Trace.span_name a);
      Alcotest.(check (list string))
        "children in start order" [ "b"; "c" ]
        (List.map Trace.span_name (Trace.span_children a));
      (match Trace.find_attr a "phase" with
      | Some (Trace.Str s) -> Alcotest.(check string) "root attr" "outer" s
      | _ -> Alcotest.fail "missing phase attr");
      let c = List.nth (Trace.span_children a) 1 in
      (match Trace.find_attr c "cycles" with
      | Some (Trace.Int n) -> Alcotest.(check int) "add_attr lands" 42 n
      | _ -> Alcotest.fail "missing cycles attr");
      Alcotest.(check bool)
        "durations nest" true
        (Trace.span_dur a >= Trace.span_dur c)
  | roots -> Alcotest.failf "expected one root, got %d" (List.length roots));
  Alcotest.(check int) "event count" 3 (Trace.event_count tr)

let test_span_exception () =
  let tr = Trace.create ~clock:(counter_clock ()) () in
  (match
     Trace.with_span tr "outer" (fun () ->
         Trace.with_span tr "inner" (fun () -> failwith "boom"))
   with
  | (_ : unit) -> Alcotest.fail "exception swallowed"
  | exception Failure m -> Alcotest.(check string) "re-raised" "boom" m);
  match Trace.roots tr with
  | [ outer ] ->
      Alcotest.(check (list string))
        "inner span closed and attached" [ "inner" ]
        (List.map Trace.span_name (Trace.span_children outer))
  | _ -> Alcotest.fail "outer span not closed on exception"

let test_disabled_noop () =
  let tr = Trace.disabled in
  Alcotest.(check bool) "disabled" false (Trace.enabled tr);
  let r =
    Trace.with_span tr ~attrs:[ ("k", Trace.Int 1) ] "x" (fun () -> 5)
  in
  Alcotest.(check int) "body still runs" 5 r;
  Trace.emit tr ~attrs:[ ("k", Trace.Int 1) ] "e";
  Trace.add_attr tr "k" (Trace.Bool true);
  Alcotest.(check int) "nothing recorded" 0 (Trace.event_count tr);
  Alcotest.(check (list string)) "no roots" []
    (List.map Trace.span_name (Trace.roots tr));
  Alcotest.(check bool) "Obs.disabled is not tracing" false
    (Obs.tracing Obs.disabled)

let test_emit_explicit_times () =
  let tr = Trace.create ~clock:(fun () -> 0.0) () in
  Trace.with_span tr "parent" (fun () ->
      Trace.emit tr ~ts:100.0 ~dur:7.0 "child");
  match Trace.roots tr with
  | [ p ] -> (
      match Trace.span_children p with
      | [ c ] ->
          Alcotest.(check (float 0.0)) "ts" 100.0 (Trace.span_ts c);
          Alcotest.(check (float 0.0)) "dur" 7.0 (Trace.span_dur c)
      | _ -> Alcotest.fail "one child expected")
  | _ -> Alcotest.fail "one root expected"

(* Chrome JSON well-formedness without a JSON parser: balanced
   delimiters outside strings, correct escaping, one complete event
   per recorded span. *)
let check_balanced what s =
  let depth_obj = ref 0 and depth_arr = ref 0 in
  let in_string = ref false and escaped = ref false in
  String.iter
    (fun c ->
      if !in_string then
        if !escaped then escaped := false
        else if c = '\\' then escaped := true
        else if c = '"' then in_string := false
        else if Char.code c < 0x20 then
          Alcotest.failf "%s: raw control character in string" what
      else
        match c with
        | '"' -> in_string := true
        | '{' -> incr depth_obj
        | '}' -> decr depth_obj
        | '[' -> incr depth_arr
        | ']' -> decr depth_arr
        | _ -> ())
    s;
  Alcotest.(check bool) (what ^ ": string closed") false !in_string;
  Alcotest.(check int) (what ^ ": braces balanced") 0 !depth_obj;
  Alcotest.(check int) (what ^ ": brackets balanced") 0 !depth_arr

let count_substring needle hay =
  let n = String.length needle and h = String.length hay in
  let rec go i acc =
    if i + n > h then acc
    else if String.sub hay i n = needle then go (i + 1) (acc + 1)
    else go (i + 1) acc
  in
  go 0 0

let test_chrome_json () =
  let tr = Trace.create ~clock:(counter_clock ()) () in
  Trace.with_span tr "run" (fun () ->
      Trace.emit tr
        ~attrs:
          [
            ("note", Trace.Str "quote \" backslash \\ newline \n tab \t");
            ("n", Trace.Int (-3));
            ("x", Trace.Float 1.5);
            ("flag", Trace.Bool true);
          ]
        "weird";
      Trace.with_span tr "inner" (fun () -> ()));
  let json = Trace.to_chrome_json tr in
  check_balanced "chrome json" json;
  Alcotest.(check char) "array open" '[' json.[0];
  Alcotest.(check int) "one complete event per span"
    (Trace.event_count tr)
    (count_substring "\"ph\":\"X\"" json);
  Alcotest.(check bool) "quote escaped" true
    (count_substring "quote \\\"" json = 1);
  Alcotest.(check bool) "newline escaped" true
    (count_substring "\\n tab" json = 1);
  Alcotest.(check bool) "bool attr" true
    (count_substring "\"flag\":true" json = 1);
  Alcotest.(check bool) "int attr" true
    (count_substring "\"n\":-3" json = 1)

(* ------------------------------------------------------------------ *)
(* Metrics registry *)

let test_metrics_basic () =
  let m = Metrics.create () in
  let c = Metrics.counter m "runs" in
  Metrics.Counter.incr c;
  Metrics.Counter.incr ~by:4 c;
  Alcotest.(check int) "counter" 5 (Metrics.Counter.value c);
  Alcotest.(check int) "same handle by name" 5
    (Metrics.Counter.value (Metrics.counter m "runs"));
  let g = Metrics.gauge m "temp" in
  Metrics.Gauge.set g 2.0;
  Metrics.Gauge.add g 0.5;
  Alcotest.(check (float 1e-12)) "gauge" 2.5 (Metrics.Gauge.value g);
  let h = Metrics.histogram m "lat" in
  Alcotest.(check bool) "empty histogram mean is nan" true
    (Float.is_nan (Metrics.Histogram.mean h));
  List.iter (fun v -> Metrics.Histogram.observe h v) [ 3.0; 1.0; 2.0 ];
  Alcotest.(check int) "count" 3 (Metrics.Histogram.count h);
  Alcotest.(check (float 1e-12)) "min" 1.0 (Metrics.Histogram.min h);
  Alcotest.(check (float 1e-12)) "max" 3.0 (Metrics.Histogram.max h);
  Alcotest.(check (float 1e-12)) "mean" 2.0 (Metrics.Histogram.mean h);
  (match Metrics.gauge m "runs" with
  | (_ : Metrics.Gauge.t) -> Alcotest.fail "kind mismatch accepted"
  | exception Invalid_argument _ -> ());
  Metrics.reset m;
  Alcotest.(check int) "counter reset" 0 (Metrics.Counter.value c);
  Alcotest.(check int) "histogram reset" 0 (Metrics.Histogram.count h)

let test_metrics_export () =
  let m = Metrics.create () in
  Metrics.Counter.incr ~by:7 (Metrics.counter m "b.count");
  Metrics.Gauge.set (Metrics.gauge m "a.gauge") 1.25;
  Metrics.Histogram.observe (Metrics.histogram m "c.hist") 2.0;
  let table = Format.asprintf "%a" Metrics.pp m in
  (* Name-sorted: a.gauge before b.count before c.hist. *)
  let index_of needle =
    let n = String.length needle and h = String.length table in
    let rec go i =
      if i + n > h then Alcotest.failf "%s not printed" needle
      else if String.sub table i n = needle then i
      else go (i + 1)
    in
    go 0
  in
  Alcotest.(check bool) "sorted by name" true
    (index_of "a.gauge" < index_of "b.count"
    && index_of "b.count" < index_of "c.hist");
  let json = Metrics.to_json m in
  check_balanced "metrics json" json;
  Alcotest.(check bool) "counter as integer" true
    (count_substring "\"b.count\":7" json = 1);
  Alcotest.(check bool) "histogram summarized" true
    (count_substring "\"count\":1" json = 1)

(* ------------------------------------------------------------------ *)
(* Bucketed histogram quantiles *)

let rec increasing = function
  | a :: (b :: _ as rest) -> a < b && increasing rest
  | _ -> true

let test_histogram_quantiles () =
  let h = Metrics.Histogram.create () in
  (* empty reports 0, not nan: quantiles feed pinned text renderers
     (stats tables, Expo lines) where a "nan" would poison output *)
  Alcotest.(check (float 0.0)) "empty quantile is 0" 0.0
    (Metrics.Histogram.quantile h 0.5);
  Alcotest.(check (float 0.0)) "empty p50 is 0" 0.0 (Metrics.Histogram.p50 h);
  Alcotest.(check (float 0.0)) "empty p99 is 0" 0.0 (Metrics.Histogram.p99 h);
  for v = 1 to 100 do
    Metrics.Histogram.observe h (float_of_int v)
  done;
  let p50 = Metrics.Histogram.p50 h
  and p95 = Metrics.Histogram.p95 h
  and p99 = Metrics.Histogram.p99 h in
  Alcotest.(check bool) "quantiles monotone" true (p50 <= p95 && p95 <= p99);
  Alcotest.(check bool) "clamped to observed range" true
    (p50 >= 1.0 && p99 <= 100.0);
  (* Uniform 1..100: the true p50 is 50, inside the (32, 64] bucket;
     the tail quantiles must sit in the overflow-side (64, 128]
     bucket, clamped at the observed max. *)
  Alcotest.(check bool) "p50 lands in its bucket" true
    (p50 > 32.0 && p50 <= 64.0);
  Alcotest.(check bool) "p95 above the median bucket" true (p95 > 64.0);
  Alcotest.(check (float 1e-9)) "q=0 clamps to min" 1.0
    (Metrics.Histogram.quantile h 0.0);
  Alcotest.(check (float 1e-9)) "q=1 clamps to max" 100.0
    (Metrics.Histogram.quantile h 1.0);
  let bs = Metrics.Histogram.buckets h in
  Alcotest.(check int) "bucket counts sum to count" 100
    (List.fold_left (fun a (_, c) -> a + c) 0 bs);
  Alcotest.(check bool) "bucket bounds increasing" true
    (increasing (List.map fst bs));
  (* A single sample answers every quantile with itself. *)
  let h1 = Metrics.Histogram.create () in
  Metrics.Histogram.observe h1 7.0;
  Alcotest.(check (float 1e-9)) "single sample p50" 7.0
    (Metrics.Histogram.p50 h1);
  Alcotest.(check (float 1e-9)) "single sample p99" 7.0
    (Metrics.Histogram.p99 h1)

(* A histogram's bucketed quantile estimate can never leave the bucket
   the exact quantile lives in: for any sample set, the estimate and
   the true order statistic share a power-of-two bucket (and both are
   clamped to the observed range). *)
let prop_histogram_quantile_bucket =
  Q.Test.make ~count:200
    ~name:"histogram quantile shares the exact quantile's bucket"
    Gen.(
      pair
        (list_size (int_range 1 60) (float_range 0.1 100_000.0))
        (float_range 0.0 1.0))
    (fun (samples, q) ->
      let h = Metrics.Histogram.create () in
      List.iter (Metrics.Histogram.observe h) samples;
      let est = Metrics.Histogram.quantile h q in
      let sorted = List.sort compare samples in
      let n = List.length sorted in
      (* Same rank convention as the estimator: 1-indexed ceil. *)
      let rank =
        max 1 (int_of_float (Float.ceil (q *. float_of_int n)))
      in
      let exact = List.nth sorted (rank - 1) in
      let bucket v =
        if v <= 1.0 then 0
        else int_of_float (Float.ceil (Float.log2 v))
      in
      let lo = List.hd sorted and hi = List.nth sorted (n - 1) in
      est >= lo && est <= hi
      && (bucket est = bucket exact
         || (* interpolation may clamp into the neighbouring bucket at
               the observed min/max *)
         est = lo || est = hi))

(* ------------------------------------------------------------------ *)
(* Flight recorder *)

module Flight = Ccc.Flight

let test_flight_ring () =
  let ring = Flight.create ~capacity:4 ~clock:(counter_clock ()) () in
  Alcotest.(check int) "capacity" 4 (Flight.capacity ring);
  Alcotest.(check int) "fresh ring empty" 0 (Flight.recorded ring);
  List.iteri
    (fun i kind -> Flight.record ring kind (Printf.sprintf "event %d" i))
    [
      Flight.Admission;
      Flight.Window_open;
      Flight.Guard_trip;
      Flight.Cache_evict;
      Flight.Shed;
      Flight.Degraded;
    ];
  Alcotest.(check int) "true total survives wrap" 6 (Flight.recorded ring);
  let evs = Flight.events ring in
  Alcotest.(check int) "ring holds capacity" 4 (List.length evs);
  Alcotest.(check (list int)) "oldest two overwritten, order kept"
    [ 2; 3; 4; 5 ]
    (List.map (fun e -> e.Flight.seq) evs);
  Alcotest.(check bool) "timestamps monotone" true
    (increasing (List.map (fun e -> e.Flight.ts) evs));
  let dump = Flight.dump ring in
  List.iter
    (fun needle ->
      Alcotest.(check bool) (needle ^ " in dump") true
        (count_substring needle dump >= 1))
    [ "guard-trip"; "cache-evict"; "shed"; "degraded"; "(2 dropped)"; "event 5" ];
  Alcotest.(check bool) "overwritten event gone" true
    (count_substring "event 0" dump = 0);
  (match Flight.create ~capacity:0 () with
  | (_ : Flight.t) -> Alcotest.fail "zero capacity accepted"
  | exception Invalid_argument _ -> ())

let test_flight_two_domains () =
  (* The serve-plane write pattern: coordinator and worker hammer one
     ring concurrently; no record may be lost and the ring must stay
     well-formed (the mutex is the whole point). *)
  let ring = Flight.create ~capacity:32 () in
  let n = 2_000 in
  let writer kind () =
    for i = 1 to n do
      Flight.record ring kind (string_of_int i)
    done
  in
  let d = Domain.spawn (writer Flight.Admission) in
  writer Flight.Window_open ();
  Domain.join d;
  Alcotest.(check int) "no record lost" (2 * n) (Flight.recorded ring);
  let evs = Flight.events ring in
  Alcotest.(check int) "full ring" 32 (List.length evs);
  Alcotest.(check bool) "seqs strictly increasing" true
    (increasing (List.map (fun e -> e.Flight.seq) evs))

(* ------------------------------------------------------------------ *)
(* Prometheus-style exposition *)

module Expo = Ccc.Expo

let test_expo_render () =
  let m = Metrics.create () in
  Metrics.Counter.incr ~by:7 (Metrics.counter m "engine.runs");
  Metrics.Gauge.set (Metrics.gauge m "serve.queue.depth") 3.0;
  Metrics.Counter.incr ~by:2 (Metrics.counter m "serve.tenant.alice.shed");
  Metrics.Counter.incr ~by:5 (Metrics.counter m "serve.tenant.bob.shed");
  let h = Metrics.histogram m "serve.queued_us" in
  List.iter (Metrics.Histogram.observe h) [ 3.0; 40.0; 500.0 ];
  let text = Expo.render [ ([], m) ] in
  Alcotest.(check string) "deterministic" text (Expo.render [ ([], m) ]);
  List.iter
    (fun needle ->
      Alcotest.(check bool) (needle ^ " rendered") true
        (count_substring needle text >= 1))
    [
      "# TYPE ccc_engine_runs counter";
      "ccc_engine_runs 7";
      "ccc_serve_queue_depth 3";
      (* tenant fold: one family, a label per tenant *)
      "# TYPE ccc_serve_tenant_shed counter";
      "ccc_serve_tenant_shed{tenant=\"alice\"} 2";
      "ccc_serve_tenant_shed{tenant=\"bob\"} 5";
      (* histogram: cumulative buckets, mandatory +Inf, sum, count *)
      "ccc_serve_queued_us_bucket{le=\"+Inf\"} 3";
      "ccc_serve_queued_us_sum 543";
      "ccc_serve_queued_us_count 3";
    ]
    ;
  Alcotest.(check int) "TYPE header once per family" 1
    (count_substring "# TYPE ccc_serve_tenant_shed " text);
  (* Cumulative bucket series: 3.0 -> (2,4], 40.0 -> (32,64],
     500.0 -> (256,512]; cumulative counts 1, 2, 3. *)
  Alcotest.(check bool) "cumulative buckets" true
    (count_substring "ccc_serve_queued_us_bucket{le=\"4\"} 1" text = 1
    && count_substring "ccc_serve_queued_us_bucket{le=\"64\"} 2" text = 1
    && count_substring "ccc_serve_queued_us_bucket{le=\"512\"} 3" text = 1);
  (* Extra label sets keep registries apart and sort deterministically. *)
  let m0 = Metrics.create () and m1 = Metrics.create () in
  Metrics.Counter.incr (Metrics.counter m0 "engine.runs");
  Metrics.Counter.incr ~by:2 (Metrics.counter m1 "engine.runs");
  let sharded =
    Expo.render [ ([ ("shard", "0") ], m0); ([ ("shard", "1") ], m1) ]
  in
  let i0 = count_substring "ccc_engine_runs{shard=\"0\"} 1" sharded
  and i1 = count_substring "ccc_engine_runs{shard=\"1\"} 2" sharded in
  Alcotest.(check (pair int int)) "shard labels" (1, 1) (i0, i1)

(* ------------------------------------------------------------------ *)
(* Trace lanes *)

let test_chrome_json_lanes () =
  let mk label =
    let tr = Trace.create ~clock:(counter_clock ()) () in
    Trace.with_span tr label (fun () ->
        Trace.with_span tr (label ^ ".inner") (fun () -> ()));
    tr
  in
  let t0 = mk "submit" and t1 = mk "window" in
  let lanes =
    [
      Trace.lane ~tid:0 ~label:"scheduler" t0;
      Trace.lane ~tid:1 ~label:"shard 0" t1;
    ]
  in
  Alcotest.(check (list int)) "lane tids" [ 0; 1 ]
    (List.map Trace.lane_tid lanes);
  Alcotest.(check int) "lane span count" 2
    (Trace.lane_span_count (List.hd lanes));
  let json = Trace.to_chrome_json_lanes lanes in
  check_balanced "lanes json" json;
  Alcotest.(check int) "one thread_name metadata event per lane" 2
    (count_substring "\"name\":\"thread_name\"" json);
  Alcotest.(check bool) "lane labels in metadata" true
    (count_substring "\"name\":\"scheduler\"" json = 1
    && count_substring "\"name\":\"shard 0\"" json = 1);
  Alcotest.(check int) "four complete span events" 4
    (count_substring "\"ph\":\"X\"" json);
  Alcotest.(check int) "spans carry lane 1's tid" 2
    (count_substring "\"ph\":\"X\",\"pid\":1,\"tid\":1," json);
  (* A single ~tid:1 lane renders the same span events the flat
     exporter does, plus one metadata record. *)
  let flat = Trace.to_chrome_json t0 in
  let single = Trace.to_chrome_json_lanes [ Trace.lane ~tid:1 ~label:"x" t0 ] in
  Alcotest.(check int) "single lane = flat + metadata"
    (count_substring "\"ph\":\"X\"" flat)
    (count_substring "\"ph\":\"X\"" single);
  (* lane_of_spans lets a merger rebundle spans under a new lane. *)
  let rebundled =
    Trace.lane_of_spans ~tid:7 ~label:"merged" (Trace.roots t0)
  in
  Alcotest.(check int) "rebundled keeps the spans" 2
    (Trace.lane_span_count rebundled)

(* ------------------------------------------------------------------ *)
(* Profiler = Cost, on every gallery plan *)

let test_profiler_matches_cost () =
  List.iter
    (fun (name, p) ->
      match Ccc.compile_pattern config p with
      | Error _ -> ()
      | Ok compiled ->
          List.iter
            (fun plan ->
              for lines = 0 to 5 do
                let c = Profiler.halfstrip config plan ~lines in
                Alcotest.(check int)
                  (Printf.sprintf "%s width %d lines %d" name
                     plan.Ccc.Plan.width lines)
                  (Ccc.Cost.halfstrip_cycles config plan ~lines)
                  (Profiler.total c)
              done)
            compiled.Ccc.Compile.plans)
    (Ccc.Pattern.gallery ())

let test_attribute_matches_estimate () =
  List.iter
    (fun (name, p) ->
      match Ccc.compile_pattern config p with
      | Error _ -> ()
      | Ok compiled ->
          let stats =
            Ccc.Exec.estimate ~sub_rows:16 ~sub_cols:16 config compiled
          in
          let b = Ccc.Exec.attribute ~sub_rows:16 ~sub_cols:16 config compiled in
          Alcotest.(check int)
            (name ^ ": attributed compute = estimate")
            stats.Ccc.Stats.compute_cycles
            (Profiler.total b.Profiler.compute);
          Alcotest.(check int)
            (name ^ ": attributed comm = estimate")
            stats.Ccc.Stats.comm_cycles b.Profiler.comm_cycles;
          Alcotest.(check (float 1e-12))
            (name ^ ": attributed front end = estimate")
            stats.Ccc.Stats.frontend_s b.Profiler.frontend_s)
    (Ccc.Pattern.gallery ())

(* ------------------------------------------------------------------ *)
(* Instrumented execution *)

let grid_for ~seed ~rows ~cols =
  Ccc.Grid.init ~rows ~cols (fun r c ->
      let h = (seed * 0x9e3779b1) lxor (r * 31) lxor (c * 131) in
      let h = h lxor (h lsr 13) in
      float_of_int (h land 0xffff) /. 65536.0 -. 0.5)

let env_for ~rows ~cols pattern =
  let names =
    Ccc.Pattern.source_var pattern
    :: List.filter_map
         (fun t -> Ccc.Coeff.array_name t.Ccc.Tap.coeff)
         (Ccc.Pattern.taps pattern)
    @ (match Ccc.Pattern.bias pattern with
      | Some c -> Option.to_list (Ccc.Coeff.array_name c)
      | None -> [])
  in
  List.mapi (fun i n -> (n, grid_for ~seed:(0x5eed + i) ~rows ~cols)) names

let rec sum_halfstrip_cycles span =
  let own =
    if Trace.span_name span = "run.halfstrip" then
      match Trace.find_attr span "cycles" with
      | Some (Trace.Int n) -> n
      | _ -> 0
    else 0
  in
  own
  + List.fold_left
      (fun acc c -> acc + sum_halfstrip_cycles c)
      0 (Trace.span_children span)

let test_run_spans_and_metrics () =
  let p = List.assoc "cross5" (Ccc.Pattern.gallery ()) in
  let compiled =
    match Ccc.compile_pattern config p with
    | Ok c -> c
    | Error e -> Alcotest.failf "compile: %s" (Ccc.error_to_string e)
  in
  let obs = Obs.create ~clock:(fun () -> 0.0) () in
  let env = env_for ~rows:32 ~cols:32 p in
  let { Ccc.Exec.output = _; stats } =
    Ccc.apply ~obs ~mode:Ccc.Exec.Simulate config compiled env
  in
  (match Trace.roots obs.Obs.trace with
  | [ run ] ->
      Alcotest.(check string) "root is the run span" "run"
        (Trace.span_name run);
      let names = List.map Trace.span_name (Trace.span_children run) in
      List.iter
        (fun n ->
          Alcotest.(check bool) ("run has " ^ n) true (List.mem n names))
        [ "run.scatter"; "run.streams"; "run.halo"; "run.compute";
          "run.gather"; "run.frontend" ];
      Alcotest.(check int) "half-strip cycle attrs sum to the stats"
        stats.Ccc.Stats.compute_cycles (sum_halfstrip_cycles run)
  | _ -> Alcotest.fail "expected exactly one run root span");
  Alcotest.(check int) "metrics absorbed the run"
    stats.Ccc.Stats.compute_cycles
    (Metrics.Counter.value (Metrics.counter obs.Obs.metrics "run.cycles.compute"))

let test_trace_header_names_width () =
  let p = List.assoc "cross5" (Ccc.Pattern.gallery ()) in
  let compiled =
    match Ccc.compile_pattern config p with
    | Ok c -> c
    | Error e -> Alcotest.failf "compile: %s" (Ccc.error_to_string e)
  in
  (match Ccc.Exec.trace ~lines:1 config compiled with
  | header :: _ ->
      Alcotest.(check string) "fallback reports the selected width"
        "half-strip: width 8 (widest available), 1 lines" header
  | [] -> Alcotest.fail "empty trace");
  match Ccc.Exec.trace ~width:2 ~lines:1 config compiled with
  | header :: _ ->
      Alcotest.(check string) "requested width reported"
        "half-strip: width 2 (requested), 1 lines" header
  | [] -> Alcotest.fail "empty trace"

let test_engine_metrics () =
  let engine = Ccc.Engine.create config in
  let p = List.assoc "cross5" (Ccc.Pattern.gallery ()) in
  let env = env_for ~rows:32 ~cols:32 p in
  (match Ccc.Engine.run engine p env with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "engine run: %s" (Ccc.Engine.error_to_string e));
  (match Ccc.Engine.run engine p env with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "engine run: %s" (Ccc.Engine.error_to_string e));
  let s = Ccc.Engine.stats engine in
  Alcotest.(check int) "two runs" 2 s.Ccc.Engine.runs;
  Alcotest.(check int) "one miss, one hit" 1 s.Ccc.Engine.hits;
  (match s.Ccc.Engine.per_call_compute with
  | Some (min, mean, max) ->
      Alcotest.(check int) "per-call min = max on identical calls" min max;
      Alcotest.(check (float 1e-9)) "mean agrees" (float_of_int min) mean
  | None -> Alcotest.fail "per-call histogram empty after two runs");
  (* The public registry view carries the same numbers. *)
  let m = Ccc.Engine.metrics engine in
  Alcotest.(check int) "registry runs counter" 2
    (Metrics.Counter.value (Metrics.counter m "engine.runs"));
  Ccc.Engine.reset engine;
  let s = Ccc.Engine.stats engine in
  Alcotest.(check int) "reset zeroes runs" 0 s.Ccc.Engine.runs;
  Alcotest.(check bool) "reset empties histogram" true
    (s.Ccc.Engine.per_call_compute = None)

(* ------------------------------------------------------------------ *)
(* Property: attribution = Cost = Interp on random patterns *)

let gen_offset =
  Gen.map2
    (fun drow dcol -> Ccc.Offset.make ~drow ~dcol)
    (Gen.int_range (-2) 2) (Gen.int_range (-2) 2)

let gen_pattern =
  let open Gen in
  map
    (fun offs ->
      List.sort_uniq Ccc.Offset.compare offs)
    (list_size (int_range 1 7) gen_offset)
  >>= fun offsets ->
  oneofl [ Ccc.Boundary.Circular; Ccc.Boundary.End_off 0.0 ]
  >>= fun boundary ->
  return
    (Ccc.Pattern.create ~boundary
       (List.mapi
          (fun i off ->
            Ccc.Tap.make off (Ccc.Coeff.Array (Printf.sprintf "C%d" (i + 1))))
          offsets))

let print_pattern p = Format.asprintf "%a" Ccc.Pattern.pp p

let prop_attribution_sums_to_interp_and_cost =
  Q.Test.make
    ~name:"per-phase attribution = analytic cost = interpreter cycles"
    ~count:40 ~print:print_pattern gen_pattern (fun p ->
      match Ccc.compile_pattern config p with
      | Error _ -> Q.assume_fail ()
      | Ok compiled ->
          (* Leg 1: every plan, several line counts — the profiler's
             nine phases sum to the closed-form model. *)
          List.iter
            (fun plan ->
              for lines = 0 to 4 do
                if
                  Profiler.total (Profiler.halfstrip config plan ~lines)
                  <> Ccc.Cost.halfstrip_cycles config plan ~lines
                then Q.Test.fail_report "phase sum <> Cost.halfstrip_cycles"
              done)
            compiled.Ccc.Compile.plans;
          (* Leg 2: a cycle-accurate run (Exec asserts Cost = Interp on
             every half-strip) must equal the statement-level
             attribution, and the traced half-strip spans must carry
             exactly the simulated compute cycles. *)
          let obs = Obs.create ~clock:(fun () -> 0.0) () in
          let env = env_for ~rows:20 ~cols:20 p in
          let { Ccc.Exec.output = _; stats } =
            Ccc.apply ~obs ~mode:Ccc.Exec.Simulate config compiled env
          in
          let b = Ccc.Exec.attribute ~sub_rows:5 ~sub_cols:5 config compiled in
          let traced =
            List.fold_left
              (fun acc s -> acc + sum_halfstrip_cycles s)
              0
              (Trace.roots obs.Obs.trace)
          in
          Profiler.total b.Profiler.compute = stats.Ccc.Stats.compute_cycles
          && b.Profiler.comm_cycles = stats.Ccc.Stats.comm_cycles
          && traced = stats.Ccc.Stats.compute_cycles)

(* ------------------------------------------------------------------ *)

let () =
  let to_alcotest = QCheck_alcotest.to_alcotest in
  Alcotest.run "obs"
    [
      ( "tracer",
        [
          Alcotest.test_case "span nesting" `Quick test_span_nesting;
          Alcotest.test_case "exception safety" `Quick test_span_exception;
          Alcotest.test_case "disabled is a no-op" `Quick test_disabled_noop;
          Alcotest.test_case "explicit timestamps" `Quick
            test_emit_explicit_times;
          Alcotest.test_case "chrome trace_event export" `Quick
            test_chrome_json;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "counters, gauges, histograms" `Quick
            test_metrics_basic;
          Alcotest.test_case "pp and json export" `Quick test_metrics_export;
          Alcotest.test_case "bucketed quantiles" `Quick
            test_histogram_quantiles;
        ] );
      ( "flight",
        [
          Alcotest.test_case "ring wrap and dump" `Quick test_flight_ring;
          Alcotest.test_case "two writer domains" `Quick
            test_flight_two_domains;
        ] );
      ( "expo",
        [ Alcotest.test_case "prometheus rendering" `Quick test_expo_render ] );
      ( "lanes",
        [
          Alcotest.test_case "chrome export with named lanes" `Quick
            test_chrome_json_lanes;
        ] );
      ( "profiler",
        [
          Alcotest.test_case "per-phase sum = Cost on gallery plans" `Quick
            test_profiler_matches_cost;
          Alcotest.test_case "attribute = estimate on gallery" `Quick
            test_attribute_matches_estimate;
        ] );
      ( "integration",
        [
          Alcotest.test_case "run spans and metrics fold" `Quick
            test_run_spans_and_metrics;
          Alcotest.test_case "trace header names the width" `Quick
            test_trace_header_names_width;
          Alcotest.test_case "engine registry" `Quick test_engine_metrics;
        ] );
      ( "properties",
        [
          to_alcotest prop_attribution_sums_to_interp_and_cost;
          to_alcotest prop_histogram_quantile_bucket;
        ] );
    ]
