(* Domain-safety analyzer (lib/analysis: Access/Hb/Race/Discipline)
   and the seeded-race kill matrix (Race_mutate):

   - vector-clock algebra (tick/join/leq/epoch) behaves as a partial
     order with per-component maxima;
   - the FastTrack core finds write-write / read-write / write-read
     pairs with no happens-before edge, and stays silent when a lock,
     fork/join edge, or atomic RMW orders them;
   - the Discipline pass enforces the DESIGN.md section-8 ownership
     table structurally (coordinator-only, guarded, per-index locked,
     atomic, node-indexed);
   - the protocol model analyzes clean at jobs {2, 3, 7}, and every
     one of the six seeded concurrency mutations is killed with a
     phase-attributed finding of the expected check, across seeds.

   Runs under the @race alias as its own executable. *)

module Access = Ccc.Access
module Hb = Ccc.Hb
module Race = Ccc.Race
module Discipline = Ccc.Discipline
module Rm = Ccc.Race_mutate
module Finding = Ccc.Finding

let ev dom phase op = { Access.dom; phase; op }

let has_check c fs = List.exists (fun (f : Finding.t) -> f.Finding.check = c) fs

let ctx_of (f : Finding.t) = f.Finding.ctx

let pp_findings fs =
  String.concat "; " (List.map Finding.to_string fs)

(* --- Hb ------------------------------------------------------------ *)

let test_hb_basics () =
  let a = Hb.tick (Hb.tick Hb.empty 0) 0 in
  Alcotest.(check int) "own component" 2 (Hb.get a 0);
  Alcotest.(check int) "absent component" 0 (Hb.get a 7);
  let b = Hb.tick Hb.empty 3 in
  let j = Hb.join a b in
  Alcotest.(check int) "join keeps left" 2 (Hb.get j 0);
  Alcotest.(check int) "join keeps right" 1 (Hb.get j 3);
  Alcotest.(check bool) "a <= join" true (Hb.leq a j);
  Alcotest.(check bool) "b <= join" true (Hb.leq b j);
  Alcotest.(check bool) "a || b unordered" false (Hb.leq a b || Hb.leq b a);
  Alcotest.(check bool) "epoch in" true (Hb.epoch_leq ~dom:0 ~clock:2 j);
  Alcotest.(check bool) "epoch out" false (Hb.epoch_leq ~dom:0 ~clock:3 j)

(* --- Race core ----------------------------------------------------- *)

let test_race_unsynced () =
  (* Two domains write the same slot with no sync at all. *)
  let log =
    [ ev 0 "compute" (Access.Write ("exec.dst", 4));
      ev 1 "compute" (Access.Write ("exec.dst", 4)) ]
  in
  match Race.analyze log with
  | [ f ] ->
      Alcotest.(check bool) "data-race" true (f.Finding.check = Finding.Data_race);
      Alcotest.(check (option string)) "ctx" (Some "compute") (ctx_of f)
  | fs -> Alcotest.failf "expected one race, got: %s" (pp_findings fs)

let test_race_lock_orders () =
  (* The same pair, ordered by a release->acquire edge: clean. *)
  let log =
    [ ev 0 "compute" (Access.Acquire "m");
      ev 0 "compute" (Access.Write ("exec.dst", 4));
      ev 0 "compute" (Access.Release "m");
      ev 1 "compute" (Access.Acquire "m");
      ev 1 "compute" (Access.Write ("exec.dst", 4));
      ev 1 "compute" (Access.Release "m") ]
  in
  Alcotest.(check int) "no race" 0 (List.length (Race.analyze log))

let test_race_write_read () =
  let log =
    [ ev 1 "compute" (Access.Write ("exec.dst", 0));
      ev 0 "gather" (Access.Read ("exec.dst", 0)) ]
  in
  match Race.analyze log with
  | [ f ] -> Alcotest.(check (option string)) "ctx" (Some "gather") (ctx_of f)
  | fs -> Alcotest.failf "expected one race, got: %s" (pp_findings fs)

let test_race_read_write () =
  let log =
    [ ev 0 "gather" (Access.Read ("exec.dst", 0));
      ev 1 "batch" (Access.Write ("exec.dst", 0)) ]
  in
  match Race.analyze log with
  | [ f ] -> Alcotest.(check (option string)) "ctx" (Some "batch") (ctx_of f)
  | fs -> Alcotest.failf "expected one race, got: %s" (pp_findings fs)

let test_race_reads_dont_race () =
  let log =
    [ ev 0 "halo" (Access.Read ("dist.node", 2));
      ev 1 "halo" (Access.Read ("dist.node", 2)) ]
  in
  Alcotest.(check int) "read-read clean" 0 (List.length (Race.analyze log))

let test_race_fork_join () =
  let log =
    [ ev 0 "compute" (Access.Write ("exec.dst", 1));
      ev 0 "compute" (Access.Spawn 1);
      ev 1 "compute" (Access.Write ("exec.dst", 1));
      ev 0 "gather" (Access.Join 1);
      ev 0 "gather" (Access.Read ("exec.dst", 1)) ]
  in
  Alcotest.(check int) "fork/join clean" 0 (List.length (Race.analyze log))

let test_race_rmw () =
  (* Concurrent atomics are ordered; a plain write racing them is not. *)
  let atomics =
    [ ev 0 "compute" (Access.Rmw ("pool.counter", 0));
      ev 1 "compute" (Access.Rmw ("pool.counter", 0));
      ev 2 "compute" (Access.Rmw ("pool.counter", 0)) ]
  in
  Alcotest.(check int) "atomics clean" 0 (List.length (Race.analyze atomics));
  let mixed =
    [ ev 0 "compute" (Access.Rmw ("pool.counter", 0));
      ev 1 "compute" (Access.Write ("pool.counter", 0)) ]
  in
  Alcotest.(check bool) "plain vs atomic races" true
    (has_check Finding.Data_race (Race.analyze mixed))

let test_race_one_per_slot () =
  (* Three domains pile onto one slot: one finding, not a flood. *)
  let log =
    [ ev 0 "compute" (Access.Write ("exec.dst", 9));
      ev 1 "compute" (Access.Write ("exec.dst", 9));
      ev 2 "compute" (Access.Write ("exec.dst", 9));
      ev 1 "gather" (Access.Read ("exec.dst", 9)) ]
  in
  Alcotest.(check int) "deduped" 1 (List.length (Race.analyze log))

(* --- Discipline ---------------------------------------------------- *)

let test_disc_coordinator_only () =
  let second_dom = [ ev 1 "compute" (Access.Write ("engine.cache", 0)) ] in
  let in_section =
    [ ev 0 "compute" (Access.Section_begin 3);
      ev 0 "compute" (Access.Write ("engine.cache", 0));
      ev 0 "compute" (Access.Section_end 3) ]
  in
  let clean =
    [ ev 0 "compile" (Access.Write ("engine.cache", 0));
      ev 0 "compile" (Access.Read ("engine.cache", 0)) ]
  in
  Alcotest.(check bool) "second domain flagged" true
    (has_check Finding.Ownership
       (Discipline.check
          (ev 0 "compile" (Access.Write ("engine.cache", 0)) :: second_dom)));
  Alcotest.(check bool) "inside chunk flagged" true
    (has_check Finding.Ownership (Discipline.check in_section));
  Alcotest.(check int) "owner clean" 0 (List.length (Discipline.check clean))

let test_disc_guarded () =
  let bad = [ ev 0 "scatter" (Access.Write ("pool.task", 0)) ] in
  let good =
    [ ev 0 "scatter" (Access.Acquire "pool.m");
      ev 0 "scatter" (Access.Write ("pool.task", 0));
      ev 0 "scatter" (Access.Release "pool.m") ]
  in
  Alcotest.(check bool) "unlocked flagged" true
    (has_check Finding.Lock_discipline (Discipline.check bad));
  Alcotest.(check int) "locked clean" 0 (List.length (Discipline.check good))

let test_disc_atomic () =
  let bad = [ ev 0 "compute" (Access.Read ("pool.counter", 0)) ] in
  let good = [ ev 0 "compute" (Access.Rmw ("pool.counter", 0)) ] in
  Alcotest.(check bool) "plain access flagged" true
    (has_check Finding.Lock_discipline (Discipline.check bad));
  Alcotest.(check int) "rmw clean" 0 (List.length (Discipline.check good))

let test_disc_partition () =
  let bad =
    [ ev 0 "compute" (Access.Section_begin 5);
      ev 0 "compute" (Access.Write ("exec.dst", 3));
      ev 0 "compute" (Access.Section_end 5);
      ev 1 "compute" (Access.Section_begin 5);
      ev 1 "compute" (Access.Write ("exec.dst", 3));
      ev 1 "compute" (Access.Section_end 5) ]
  in
  let next_gen =
    [ ev 0 "compute" (Access.Section_begin 5);
      ev 0 "compute" (Access.Write ("exec.dst", 3));
      ev 0 "compute" (Access.Section_end 5);
      ev 1 "compute" (Access.Section_begin 6);
      ev 1 "compute" (Access.Write ("exec.dst", 3));
      ev 1 "compute" (Access.Section_end 6) ]
  in
  (* Neighbor reads across slots are legal inside a chunk: the halo
     exchange reads other nodes' subgrids. *)
  let halo_reads =
    [ ev 0 "halo" (Access.Section_begin 5);
      ev 0 "halo" (Access.Write ("halo.node", 0));
      ev 0 "halo" (Access.Read ("dist.node", 1));
      ev 0 "halo" (Access.Section_end 5);
      ev 1 "halo" (Access.Section_begin 5);
      ev 1 "halo" (Access.Write ("halo.node", 1));
      ev 1 "halo" (Access.Read ("dist.node", 0));
      ev 1 "halo" (Access.Section_end 5) ]
  in
  Alcotest.(check bool) "same generation flagged" true
    (has_check Finding.Partition (Discipline.check bad));
  Alcotest.(check int) "next generation clean" 0
    (List.length (Discipline.check next_gen));
  Alcotest.(check int) "neighbor reads clean" 0
    (List.length (Discipline.check halo_reads))

(* --- kill matrix --------------------------------------------------- *)

let analyze_both log = Race.analyze log @ Discipline.check log

let test_clean_model () =
  List.iter
    (fun jobs ->
      let log = Rm.clean ~jobs in
      let fs = analyze_both log in
      if fs <> [] then
        Alcotest.failf "clean model, jobs %d: %s" jobs (pp_findings fs))
    [ 2; 3; 7 ]

(* mutation -> (checks that must appear, ctx values allowed) *)
let expectations =
  [
    (Rm.Dropped_metrics_lock,
     [ Finding.Data_race; Finding.Lock_discipline ],
     [ "metrics" ]);
    (Rm.Overlapping_chunks,
     [ Finding.Data_race; Finding.Partition ],
     [ "scatter"; "compute" ]);
    (Rm.Deatomized_counter,
     [ Finding.Data_race; Finding.Lock_discipline ],
     [ "compute" ]);
    (Rm.Arena_alias, [ Finding.Data_race ], [ "batch" ]);
    (Rm.Lost_signal, [ Finding.Data_race ], [ "gather" ]);
    (Rm.Cache_write_bypass, [ Finding.Ownership ], [ "compute" ]);
  ]

let test_kill_matrix () =
  List.iter
    (fun (m, expected, ctxs) ->
      List.iter
        (fun seed ->
          List.iter
            (fun jobs ->
              let log = Rm.mutated ~seed ~jobs m in
              let fs = analyze_both log in
              if fs = [] then
                Alcotest.failf "%s seed %d jobs %d survived" (Rm.name m) seed
                  jobs;
              List.iter
                (fun c ->
                  if not (has_check c fs) then
                    Alcotest.failf "%s seed %d jobs %d: missing %s in %s"
                      (Rm.name m) seed jobs (Finding.check_name c)
                      (pp_findings fs))
                expected;
              List.iter
                (fun (f : Finding.t) ->
                  match f.Finding.ctx with
                  | Some c when List.mem c ctxs -> ()
                  | Some c ->
                      Alcotest.failf "%s seed %d jobs %d: unexpected phase %s"
                        (Rm.name m) seed jobs c
                  | None ->
                      Alcotest.failf "%s seed %d jobs %d: unattributed finding"
                        (Rm.name m) seed jobs)
                fs)
            [ 2; 3; 7 ])
        [ 1; 42; 1991 ])
    expectations

let test_kill_matrix_complete () =
  (* Every mutation appears exactly once in the expectation table. *)
  Alcotest.(check int) "all mutations covered" (List.length Rm.all)
    (List.length expectations);
  List.iter
    (fun m ->
      Alcotest.(check bool) "covered" true
        (List.exists (fun (m', _, _) -> m' = m) expectations);
      Alcotest.(check (option string)) "name round-trip" (Some (Rm.name m))
        (Option.map Rm.name (Rm.of_name (Rm.name m))))
    Rm.all

let test_cache_bypass_needs_discipline () =
  (* The guard-bypassed cache write is happens-before ordered (the
     publish edge covers it), so Race alone must NOT kill it — only
     the ownership pass does.  This pins why Discipline exists. *)
  let log = Rm.mutated ~seed:7 ~jobs:3 Rm.Cache_write_bypass in
  Alcotest.(check int) "race is silent" 0 (List.length (Race.analyze log));
  Alcotest.(check bool) "discipline kills" true
    (has_check Finding.Ownership (Discipline.check log))

(* ================================================================== *)
(* Live runtime under instrumentation: the probes wired through Pool, *)
(* Dist, Halo, Exec, Metrics and Engine must (a) change no result,    *)
(* (b) keep the Simulate-mode Cost = Interp assertion alive, and (c)  *)
(* produce an access log both analyzers pass clean.                   *)
(* ================================================================== *)

let config = Ccc.Config.default

(* A reproducible pseudo-random grid (the tutil recipe; tutil itself
   belongs to the main test stanza). *)
let mixed_grid ~seed ~rows ~cols =
  Ccc.Grid.init ~rows ~cols (fun r c ->
      let h = (seed * 0x9e3779b1) lxor (r * 31) lxor (c * 131) in
      let h = h lxor (h lsr 13) in
      float_of_int (h land 0xffff) /. 65536.0 -. 0.5)

let env_for ?(seed = 0x5eed) ~rows ~cols pattern =
  let names =
    Ccc.Pattern.source_var pattern
    :: List.filter_map
         (fun t -> Ccc.Coeff.array_name t.Ccc.Tap.coeff)
         (Ccc.Pattern.taps pattern)
  in
  List.mapi (fun i n -> (n, mixed_grid ~seed:(seed + i) ~rows ~cols)) names

let compile_exn pattern =
  match Ccc.compile_pattern config pattern with
  | Ok compiled -> compiled
  | Error e -> Alcotest.failf "compile failed: %s" (Ccc.error_to_string e)

let assert_clean what log =
  match analyze_both log with
  | [] -> ()
  | fs -> Alcotest.failf "%s: %s" what (pp_findings fs)

let test_live_exec_clean () =
  let pattern = Ccc.Pattern.cross5 () in
  let compiled = compile_exn pattern in
  let env = env_for ~rows:16 ~cols:16 pattern in
  let baseline = (Ccc.apply config compiled env).Ccc.Exec.output in
  Access.enable ();
  (* Simulate asserts the analytic cycle model against the
     cycle-accurate interpreter on every run; getting a result back
     proves the assertion still holds with the probes live. *)
  let result =
    Ccc.apply ~mode:Ccc.Exec.Simulate ~jobs:3 config compiled env
  in
  Access.disable ();
  Alcotest.(check bool) "instrumentation recorded" true
    (Access.event_count () > 0);
  assert_clean "instrumented Exec.run" (Access.events ());
  Alcotest.(check (float 0.0))
    "bit-identical to the uninstrumented jobs-1 run" 0.0
    (Ccc.Grid.max_abs_diff baseline result.Ccc.Exec.output)

let batch_patterns () =
  (* Two 5-point crosses over the same source P under different
     coefficient names: a legal batch. *)
  let mk result prefix =
    Ccc.Pattern.create ~source:"P" ~result
      (List.mapi
         (fun i (drow, dcol) ->
           Ccc.Tap.make
             (Ccc.Offset.make ~drow ~dcol)
             (Ccc.Coeff.Array (Printf.sprintf "%s%d" prefix (i + 1))))
         [ (-1, 0); (0, -1); (0, 0); (0, 1); (1, 0) ])
  in
  [ mk "R1" "C"; mk "R2" "K" ]

let test_live_engine_batch_clean () =
  let patterns = batch_patterns () in
  let env =
    List.concat
      (List.mapi
         (fun i p -> env_for ~seed:(0x5eed + (100 * i)) ~rows:16 ~cols:16 p)
         patterns)
    |> List.fold_left
         (fun acc (n, g) ->
           if List.mem_assoc n acc then acc else (n, g) :: acc)
         []
    |> List.rev
  in
  (* The resident workers predate enabling: they inherit their edges
     through the instrumented pool mutex (see Access's doc). *)
  let engine = Ccc.Engine.create ~jobs:3 config in
  Fun.protect ~finally:(fun () -> Ccc.Engine.shutdown engine) @@ fun () ->
  Access.enable ();
  (match Ccc.Engine.run_batch ~mode:Ccc.Exec.Simulate engine patterns env with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "engine batch: %s" (Ccc.Engine.error_to_string e));
  Access.disable ();
  Alcotest.(check bool) "instrumentation recorded" true
    (Access.event_count () > 0);
  assert_clean "instrumented engine batch" (Access.events ())

let test_pool_lifecycle () =
  let pool = Ccc.Pool.create ~jobs:3 in
  let hits = Array.make 8 0 in
  Ccc.Pool.iter pool 8 (fun i -> hits.(i) <- hits.(i) + 1);
  Array.iteri
    (fun i n -> Alcotest.(check int) (Printf.sprintf "item %d once" i) 1 n)
    hits;
  (* One claim per item: overshooting claims give their increment
     back, so the counter records exactly the items run. *)
  Alcotest.(check int) "one claim per item" 8 (Ccc.Pool.chunks_run pool);
  Ccc.Pool.shutdown pool;
  Ccc.Pool.shutdown pool;
  (* idempotent: the second call must neither hang nor raise *)
  (match Ccc.Pool.iter pool 4 (fun _ -> ()) with
  | () -> Alcotest.fail "Pool.iter after shutdown must raise"
  | exception Finding.Failed fs ->
      Alcotest.(check bool) "lifecycle finding" true
        (has_check Finding.Lifecycle fs));
  (* the sequential pool has no domains to join and stays usable *)
  Ccc.Pool.shutdown Ccc.Pool.sequential;
  Ccc.Pool.iter Ccc.Pool.sequential 4 ignore

(* Surplus domains: with more jobs than queue items, each extra domain
   makes exactly one overshooting claim, gives the increment back and
   parks — the iter must return promptly with every item run once and
   the counter netting to the item count, and the pool must stay
   reusable (a leaked give-back would shift the next generation's
   base). *)
let test_pool_more_jobs_than_items () =
  let items = 4 in
  let pool = Ccc.Pool.create ~jobs:(items + 3) in
  Fun.protect ~finally:(fun () -> Ccc.Pool.shutdown pool) @@ fun () ->
  let hits = Array.make items 0 in
  Ccc.Pool.iter pool items (fun i -> hits.(i) <- hits.(i) + 1);
  Array.iteri
    (fun i n -> Alcotest.(check int) (Printf.sprintf "item %d once" i) 1 n)
    hits;
  Alcotest.(check int) "counter nets to the item count" items
    (Ccc.Pool.chunks_run pool);
  (* Second generation on the same pool: base capture still exact. *)
  let again = Array.make items 0 in
  Ccc.Pool.iter pool items (fun i -> again.(i) <- again.(i) + 1);
  Array.iteri
    (fun i n ->
      Alcotest.(check int) (Printf.sprintf "gen 2 item %d once" i) 1 n)
    again;
  Alcotest.(check int) "counter still nets per item" (2 * items)
    (Ccc.Pool.chunks_run pool);
  (* The lowest failing item wins even when idle domains park early. *)
  match
    Ccc.Pool.iter pool items (fun i ->
        if i >= 1 then failwith (Printf.sprintf "item %d" i))
  with
  | () -> Alcotest.fail "expected a re-raised item failure"
  | exception Failure m -> Alcotest.(check string) "lowest item wins" "item 1" m

let test_engine_owner_check () =
  let engine = Ccc.Engine.create config in
  Fun.protect ~finally:(fun () -> Ccc.Engine.shutdown engine) @@ fun () ->
  let pattern = Ccc.Pattern.cross5 () in
  let env = env_for ~rows:16 ~cols:16 pattern in
  (match Ccc.Engine.run engine pattern env with
  | Ok _ -> ()
  | Error e ->
      Alcotest.failf "owner run failed: %s" (Ccc.Engine.error_to_string e));
  let outcome =
    Domain.join
      (Domain.spawn (fun () ->
           match Ccc.Engine.run engine pattern env with
           | exception Finding.Failed fs when has_check Finding.Ownership fs ->
               `Refused
           | _ -> `Allowed
           | exception _ -> `Other))
  in
  Alcotest.(check bool) "foreign domain refused with an ownership finding"
    true
    (outcome = `Refused)

let test_metrics_stress () =
  let registry = Ccc.Metrics.create () in
  let c = Ccc.Metrics.counter registry "stress.counter" in
  let g = Ccc.Metrics.gauge registry "stress.gauge" in
  let h = Ccc.Metrics.histogram registry "stress.histogram" in
  let domains = 4 and per_domain = 5_000 in
  Access.enable ();
  let workers =
    List.init domains (fun _ ->
        Domain.spawn (fun () ->
            for i = 1 to per_domain do
              Ccc.Metrics.Counter.incr c;
              Ccc.Metrics.Gauge.add g 1.0;
              Ccc.Metrics.Histogram.observe h (float_of_int (i land 7))
            done))
  in
  List.iter Domain.join workers;
  Access.disable ();
  let n = domains * per_domain in
  Alcotest.(check int) "no lost counter increments" n
    (Ccc.Metrics.Counter.value c);
  Alcotest.(check (float 0.0)) "no lost gauge adds" (float_of_int n)
    (Ccc.Metrics.Gauge.value g);
  Alcotest.(check int) "no lost observations" n
    (Ccc.Metrics.Histogram.count h);
  assert_clean "metrics under real contention" (Access.events ())

let test_conformance_clean_instrumented () =
  (* The whole clean conformance matrix — every gallery stencil at
     every compiled width down all five paths at jobs {1, 2, 7} —
     under instrumentation, finding-free. *)
  Access.enable ();
  let matrix = Ccc.Conformance.run ~with_faults:false config in
  Access.disable ();
  Alcotest.(check int) "no failed cells" 0
    (Ccc.Conformance.clean_failures matrix);
  Alcotest.(check int) "270 clean cells" 270
    (List.length matrix.Ccc.Conformance.cells);
  assert_clean "instrumented conformance clean matrix" (Access.events ())

let live_suite =
  [
    Alcotest.test_case "exec instrumented" `Quick test_live_exec_clean;
    Alcotest.test_case "engine batch instrumented" `Quick
      test_live_engine_batch_clean;
    Alcotest.test_case "pool lifecycle" `Quick test_pool_lifecycle;
    Alcotest.test_case "pool jobs > items" `Quick
      test_pool_more_jobs_than_items;
    Alcotest.test_case "engine owner check" `Quick test_engine_owner_check;
    Alcotest.test_case "metrics stress" `Quick test_metrics_stress;
    Alcotest.test_case "conformance clean matrix" `Quick
      test_conformance_clean_instrumented;
  ]

let model_suite =
  [
    Alcotest.test_case "hb basics" `Quick test_hb_basics;
    Alcotest.test_case "unsynced write-write" `Quick test_race_unsynced;
    Alcotest.test_case "lock orders" `Quick test_race_lock_orders;
    Alcotest.test_case "write-read" `Quick test_race_write_read;
    Alcotest.test_case "read-write" `Quick test_race_read_write;
    Alcotest.test_case "read-read clean" `Quick test_race_reads_dont_race;
    Alcotest.test_case "fork-join" `Quick test_race_fork_join;
    Alcotest.test_case "rmw pseudo-lock" `Quick test_race_rmw;
    Alcotest.test_case "one finding per slot" `Quick test_race_one_per_slot;
    Alcotest.test_case "coordinator-only" `Quick test_disc_coordinator_only;
    Alcotest.test_case "guarded" `Quick test_disc_guarded;
    Alcotest.test_case "atomic" `Quick test_disc_atomic;
    Alcotest.test_case "partition" `Quick test_disc_partition;
    Alcotest.test_case "clean model" `Quick test_clean_model;
    Alcotest.test_case "kill matrix" `Quick test_kill_matrix;
    Alcotest.test_case "kill matrix complete" `Quick test_kill_matrix_complete;
    Alcotest.test_case "cache bypass needs discipline" `Quick
      test_cache_bypass_needs_discipline;
  ]

let () =
  Alcotest.run "ccc_race" [ ("model", model_suite); ("live", live_suite) ]
