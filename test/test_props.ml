(* Property-based tests (qcheck, registered as alcotest cases).

   The generators build random stencil patterns within the machine's
   register budget and random array data; the properties pin the
   system's core invariants:

   - compiled execution (both modes) agrees with the reference
     evaluator for arbitrary patterns, shapes and boundary semantics;
   - the analytic cycle model agrees with the cycle-accurate
     interpreter (asserted inside Exec.run's simulate path);
   - the halo exchange reproduces global circular indexing;
   - register allocation respects the budget and the LCM law;
   - strip mining tiles the axis exactly;
   - a pattern rendered to Fortran and recognized again is unchanged. *)

module Q = QCheck2
module Gen = QCheck2.Gen
module Pattern = Ccc.Pattern
module Offset = Ccc.Offset
module Coeff = Ccc.Coeff
module Tap = Ccc.Tap
module Boundary = Ccc.Boundary
module Grid = Ccc.Grid
module Stats = Ccc.Stats
module Exec = Ccc.Exec

let config = Ccc.Config.default

(* ------------------------------------------------------------------ *)
(* Generators *)

let gen_offset =
  Gen.map2 (fun drow dcol -> Offset.make ~drow ~dcol)
    (Gen.int_range (-2) 2) (Gen.int_range (-2) 2)

let gen_offsets =
  (* 1..7 distinct offsets. *)
  Gen.map
    (fun offs ->
      List.sort_uniq Offset.compare offs)
    (Gen.list_size (Gen.int_range 1 7) gen_offset)

let gen_coeff index =
  Gen.oneof
    [
      Gen.return (Coeff.Array (Printf.sprintf "C%d" (index + 1)));
      Gen.map (fun v -> Coeff.Scalar v)
        (Gen.map (fun i -> float_of_int i /. 4.0) (Gen.int_range (-8) 8));
      Gen.return Coeff.One;
    ]

let gen_boundary =
  Gen.oneof
    [
      Gen.return Boundary.Circular;
      Gen.map (fun i -> Boundary.End_off (float_of_int i /. 2.0))
        (Gen.int_range (-2) 2);
    ]

let gen_pattern =
  let open Gen in
  gen_offsets >>= fun offsets ->
  gen_boundary >>= fun boundary ->
  Gen.flatten_l (List.mapi (fun i _ -> gen_coeff i) offsets) >>= fun coeffs ->
  Gen.bool >>= fun with_bias ->
  let taps = List.map2 Tap.make offsets coeffs in
  let bias = if with_bias then Some (Coeff.Array "BB") else None in
  return (Pattern.create ?bias ~boundary taps)

let print_pattern p = Format.asprintf "%a" Pattern.pp p

(* Deterministic data environment for a generated pattern. *)
let env_of_pattern ~rows ~cols p = Tutil.env_for ~rows ~cols p

(* ------------------------------------------------------------------ *)
(* Properties *)

let prop_fast_matches_reference =
  Q.Test.make ~name:"fast execution = reference evaluation" ~count:120
    ~print:print_pattern gen_pattern (fun p ->
      match Ccc.compile_pattern config p with
      | Error _ -> Q.assume_fail ()
      | Ok compiled ->
          let env = env_of_pattern ~rows:(4 * 6) ~cols:(4 * 6) p in
          let expected = Ccc.Reference.apply p env in
          let { Exec.output; _ } = Ccc.apply ~mode:Exec.Fast config compiled env in
          Grid.max_abs_diff expected output < 1e-9)

let prop_simulate_matches_reference =
  Q.Test.make ~name:"simulated execution = reference evaluation" ~count:40
    ~print:print_pattern gen_pattern (fun p ->
      match Ccc.compile_pattern config p with
      | Error _ -> Q.assume_fail ()
      | Ok compiled ->
          let env = env_of_pattern ~rows:(4 * 5) ~cols:(4 * 5) p in
          let expected = Ccc.Reference.apply p env in
          let { Exec.output; _ } =
            Ccc.apply ~mode:Exec.Simulate config compiled env
          in
          Grid.max_abs_diff expected output < 1e-9)

let prop_modes_agree_on_cycles =
  Q.Test.make ~name:"simulate and fast report identical cycles" ~count:40
    ~print:print_pattern gen_pattern (fun p ->
      match Ccc.compile_pattern config p with
      | Error _ -> Q.assume_fail ()
      | Ok compiled ->
          let env = env_of_pattern ~rows:(4 * 5) ~cols:(4 * 5) p in
          let s, f = Tutil.run_both_modes ~config compiled env in
          s.Exec.stats.Stats.compute_cycles = f.Exec.stats.Stats.compute_cycles
          && s.Exec.stats.Stats.madds_issued = f.Exec.stats.Stats.madds_issued)

let prop_halo_is_global_circular =
  let gen =
    Gen.tup3 (Gen.int_range 2 7) (Gen.int_range 2 7) (Gen.int_range 0 2)
  in
  Q.Test.make ~name:"halo exchange = global circular indexing" ~count:60
    ~print:(fun (r, c, p) -> Printf.sprintf "sub %dx%d pad %d" r c p)
    gen
    (fun (sub_rows, sub_cols, pad) ->
      Q.assume (pad <= sub_rows && pad <= sub_cols);
      let machine = Ccc.machine config in
      let g =
        Tutil.mixed_grid ~seed:42 ~rows:(4 * sub_rows) ~cols:(4 * sub_cols)
      in
      let d = Ccc.Dist.scatter machine g in
      let x =
        Ccc.Halo.exchange ~source:d ~pad ~boundary:Boundary.Circular
          ~needs_corners:true ()
      in
      let ok = ref true in
      for node = 0 to 15 do
        let nr, nc =
          Ccc.Geometry.coord_of_node (Ccc.Machine.geometry machine) node
        in
        for r = -pad to sub_rows + pad - 1 do
          for c = -pad to sub_cols + pad - 1 do
            let expected =
              Grid.get_circular g ((nr * sub_rows) + r) ((nc * sub_cols) + c)
            in
            let actual =
              Ccc_cm2.Memory.read
                (Ccc.Machine.memory machine node)
                (x.Ccc.Halo.padded.Ccc_cm2.Memory.base
                + ((r + pad) * x.Ccc.Halo.padded_cols)
                + c + pad)
            in
            if expected <> actual then ok := false
          done
        done
      done;
      !ok)

let prop_regalloc_budget_and_lcm =
  Q.Test.make ~name:"allocation: budget respected, unroll = LCM, rings >= span"
    ~count:200 ~print:print_pattern gen_pattern (fun p ->
      List.for_all
        (fun width ->
          let ms = Ccc.Multistencil.make p ~width in
          match Ccc_compiler.Regalloc.allocate ms ~available:31 with
          | Error _ -> true
          | Ok a ->
              a.Ccc_compiler.Regalloc.data_registers <= 31
              && a.Ccc_compiler.Regalloc.unroll
                 = Ccc_compiler.Regalloc.lcm_list
                     (List.map snd a.Ccc_compiler.Regalloc.ring_sizes)
              && List.for_all2
                   (fun (col : Ccc.Multistencil.column) (dcol, size) ->
                     col.Ccc.Multistencil.dcol = dcol
                     && size >= col.Ccc.Multistencil.span)
                   (Ccc.Multistencil.columns ms)
                   a.Ccc_compiler.Regalloc.ring_sizes)
        [ 1; 2; 4; 8 ])

let prop_strips_tile_axis =
  let gen = Gen.tup2 gen_pattern (Gen.int_range 1 64) in
  Q.Test.make ~name:"strip widths tile the axis" ~count:150
    ~print:(fun (p, w) -> Printf.sprintf "%s cols=%d" (print_pattern p) w)
    gen
    (fun (p, sub_cols) ->
      match Ccc.compile_pattern config p with
      | Error _ -> Q.assume_fail ()
      | Ok compiled ->
          let widths =
            Ccc_runtime.Stripmine.strip_widths compiled ~sub_cols
          in
          List.fold_left ( + ) 0 widths = sub_cols
          && List.for_all (fun w -> w = 8 || w = 4 || w = 2 || w = 1) widths
          (* Greedy shaving: widths never increase along the axis. *)
          && List.for_all2 ( >= ) widths (List.tl widths @ [ 1 ]))

let prop_fortran_roundtrip =
  Q.Test.make ~name:"pattern -> Fortran -> recognizer roundtrip" ~count:200
    ~print:print_pattern gen_pattern (fun p ->
      (* A pattern with no shifted tap renders without any CSHIFT, and
         the recognizer (correctly) cannot identify the source array. *)
      Q.assume
        (List.exists
           (fun t -> not (Offset.equal t.Tap.offset Offset.zero))
           (Pattern.taps p));
      let text = Pattern.to_fortran p in
      match Ccc_frontend.Parser.parse_statement text with
      | exception Ccc_frontend.Parser.Error { message; _ } ->
          Q.Test.fail_report ("parse: " ^ message)
      | stmt -> begin
          match Ccc_frontend.Recognize.statement stmt with
          | Error ds ->
              Q.Test.fail_report
                (String.concat "; "
                   (List.map Ccc_frontend.Diagnostics.to_string ds))
          | Ok p' -> Pattern.equal p p'
        end)

let prop_useful_flops_formula =
  Q.Test.make ~name:"flop accounting: taps + terms - 1" ~count:200
    ~print:print_pattern gen_pattern (fun p ->
      let taps = Pattern.tap_count p in
      let bias = match Pattern.bias p with Some _ -> 1 | None -> 0 in
      Pattern.useful_flops_per_point p = (2 * taps) + bias - 1)

(* Multi-source generator: 2 or 3 sources, each with 1..3 distinct
   taps within the +-2 window. *)
let gen_multi =
  let open Gen in
  int_range 2 3 >>= fun nsources ->
  gen_boundary >>= fun boundary ->
  let gen_source_offsets =
    map (List.sort_uniq Offset.compare) (list_size (int_range 1 3) gen_offset)
  in
  flatten_l (List.init nsources (fun _ -> gen_source_offsets))
  >>= fun per_source ->
  let taps =
    List.concat
      (List.mapi
         (fun src offs ->
           List.mapi
             (fun i off ->
               {
                 Ccc.Multi.source = src;
                 tap =
                   Tap.make off
                     (Coeff.Array (Printf.sprintf "K%d_%d" src i));
               })
             offs)
         per_source)
  in
  let sources = List.init nsources (fun i -> Printf.sprintf "S%d" i) in
  return (Ccc.Multi.create ~boundary ~sources taps)

let print_multi m = Format.asprintf "%a" Ccc.Multi.pp m

let prop_fused_matches_reference =
  Q.Test.make ~name:"fused execution = multi-source reference" ~count:80
    ~print:print_multi gen_multi (fun m ->
      match Ccc.compile_multi config m with
      | Error _ -> Q.assume_fail ()
      | Ok fused ->
          let env =
            List.mapi
              (fun i name ->
                (name, Tutil.mixed_grid ~seed:(50 + i) ~rows:24 ~cols:24))
              (Ccc.Multi.referenced_arrays m)
          in
          let expected = Exec.reference_fused m env in
          let { Exec.output; _ } = Ccc.apply_fused config fused env in
          Grid.max_abs_diff expected output < 1e-9)

let prop_fused_simulate_matches_reference =
  Q.Test.make ~name:"fused cycle-accurate execution = reference" ~count:25
    ~print:print_multi gen_multi (fun m ->
      match Ccc.compile_multi config m with
      | Error _ -> Q.assume_fail ()
      | Ok fused ->
          let env =
            List.mapi
              (fun i name ->
                (name, Tutil.mixed_grid ~seed:(70 + i) ~rows:20 ~cols:20))
              (Ccc.Multi.referenced_arrays m)
          in
          let expected = Exec.reference_fused m env in
          let { Exec.output; _ } =
            Ccc.apply_fused ~mode:Exec.Simulate config fused env
          in
          Grid.max_abs_diff expected output < 1e-9)

let prop_estimate_consistent_with_run =
  Q.Test.make ~name:"estimate = run statistics" ~count:40
    ~print:print_pattern gen_pattern (fun p ->
      match Ccc.compile_pattern config p with
      | Error _ -> Q.assume_fail ()
      | Ok compiled ->
          let sub_rows = 6 and sub_cols = 9 in
          let env =
            env_of_pattern ~rows:(4 * sub_rows) ~cols:(4 * sub_cols) p
          in
          let { Exec.stats = r; _ } = Ccc.apply config compiled env in
          let e = Exec.estimate ~sub_rows ~sub_cols config compiled in
          r.Stats.comm_cycles = e.Stats.comm_cycles
          && r.Stats.compute_cycles = e.Stats.compute_cycles
          && r.Stats.useful_flops_per_iteration
             = e.Stats.useful_flops_per_iteration)

let prop_machine_reuse_is_leak_free =
  (* A long-lived machine services many different stencils: every call
     must release its temporaries and keep matching the oracle. *)
  Q.Test.make ~name:"machine reuse across random patterns leaks nothing"
    ~count:30 ~print:print_pattern gen_pattern
    (let machine = Ccc.machine config in
     let free0 =
       Ccc_cm2.Memory.words_free (Ccc.Machine.memory machine 0)
     in
     fun p ->
       match Ccc.compile_pattern config p with
       | Error _ -> Q.assume_fail ()
       | Ok compiled ->
           let env = env_of_pattern ~rows:(4 * 5) ~cols:(4 * 5) p in
           let expected = Ccc.Reference.apply p env in
           let { Exec.output; _ } = Exec.run machine compiled env in
           Grid.max_abs_diff expected output < 1e-9
           && Ccc_cm2.Memory.words_free (Ccc.Machine.memory machine 0) = free0)

(* ------------------------------------------------------------------ *)
(* Parallel execution: the domain pool must not change a single bit.

   One resident pool per jobs value, created once for the whole suite
   (OCaml caps live domains, so per-case pools would exhaust the
   runtime) and joined at process exit. *)

let pools = List.map (fun jobs -> (jobs, Ccc.Pool.create ~jobs)) [ 2; 3; 7 ]
let () = at_exit (fun () -> List.iter (fun (_, p) -> Ccc.Pool.shutdown p) pools)
let bit_identical a b = Grid.max_abs_diff a b = 0.0

let prop_pool_bit_identical =
  Q.Test.make
    ~name:"pooled execution bit-identical to sequential (jobs 2, 3, 7)"
    ~count:12 ~print:print_pattern gen_pattern (fun p ->
      match Ccc.compile_pattern config p with
      | Error _ -> Q.assume_fail ()
      | Ok compiled ->
          let env = env_of_pattern ~rows:(4 * 6) ~cols:(4 * 6) p in
          let expected = Ccc.Reference.apply p env in
          let run ?pool inner =
            (Exec.run ?pool ~inner (Ccc.machine config) compiled env)
              .Exec.output
          in
          let seq_lowered = run Exec.Lowered in
          let seq_tapwalk = run Exec.Tapwalk in
          Grid.max_abs_diff expected seq_lowered < 1e-9
          && bit_identical seq_lowered seq_tapwalk
          && List.for_all
               (fun (_, pool) ->
                 bit_identical seq_lowered (run ~pool Exec.Lowered)
                 && bit_identical seq_tapwalk (run ~pool Exec.Tapwalk))
               pools)

let prop_pool_simulate =
  (* Exercises Simulate's per-node Cost = Interp assertion with the
     interpreter running inside pooled chunks. *)
  Q.Test.make ~name:"simulate under the pool = reference (jobs 3)" ~count:6
    ~print:print_pattern gen_pattern (fun p ->
      match Ccc.compile_pattern config p with
      | Error _ -> Q.assume_fail ()
      | Ok compiled ->
          let pool = List.assoc 3 pools in
          let env = env_of_pattern ~rows:(4 * 5) ~cols:(4 * 5) p in
          let expected = Ccc.Reference.apply p env in
          let { Exec.output; _ } =
            Exec.run ~mode:Exec.Simulate ~pool (Ccc.machine config) compiled env
          in
          Grid.max_abs_diff expected output < 1e-9)

let prop_kernel_matches_simulate =
  (* The build-time-verified kernel (the engine's cached artifact) must
     agree with the cycle-accurate interpreter on the paper's stencils
     over random data. *)
  let gen =
    Gen.tup2 (Gen.oneofl [ "cross5"; "square9"; "diamond13" ])
      (Gen.int_range 0 10_000)
  in
  Q.Test.make ~name:"verified kernel Fast = cycle-accurate Simulate (gallery)"
    ~count:9
    ~print:(fun (name, seed) -> Printf.sprintf "%s seed=%d" name seed)
    gen
    (fun (name, seed) ->
      let p = List.assoc name (Ccc.Pattern.gallery ()) in
      match Ccc.compile_pattern config p with
      | Error _ -> Q.assume_fail ()
      | Ok compiled ->
          let kernel = Ccc.Kernel.build config compiled in
          let env = Tutil.env_for ~seed ~rows:24 ~cols:24 p in
          let fast =
            (Exec.run ~mode:Exec.Fast ~inner:Exec.Lowered ~kernel
               (Ccc.machine config) compiled env)
              .Exec.output
          in
          let sim =
            (Exec.run ~mode:Exec.Simulate (Ccc.machine config) compiled env)
              .Exec.output
          in
          Grid.max_abs_diff sim fast < 1e-9)

let prop_tile_geometry =
  (* Tile blocking is pure scheduling: any (rows, cols) geometry —
     degenerate 1x1 tiles, tiles larger than the subgrid, non-dividing
     edges — must write bits identical to the whole-subgrid walk and
     to the tapwalk, sequentially and at every jobs value, and stay
     within 1e-9 of the reference.  (The subgrid here is 6x6, so the
     random range covers dividing, non-dividing and oversized tiles.) *)
  let gen_tile =
    Gen.oneof
      [
        Gen.oneofl [ (1, 1); (1, 7); (7, 1); (64, 64) ];
        Gen.tup2 (Gen.int_range 1 9) (Gen.int_range 1 9);
      ]
  in
  let gen =
    Gen.tup3
      (Gen.oneofl [ "cross5"; "square9"; "diamond13" ])
      gen_tile
      (Gen.int_range 0 10_000)
  in
  Q.Test.make
    ~name:"tiled kernel bit-identical (random geometry; jobs 1, 2, 7)"
    ~count:9
    ~print:(fun (name, (tr, tc), seed) ->
      Printf.sprintf "%s tile=%dx%d seed=%d" name tr tc seed)
    gen
    (fun (name, tile, seed) ->
      let p = List.assoc name (Ccc.Pattern.gallery ()) in
      match Ccc.compile_pattern config p with
      | Error _ -> Q.assume_fail ()
      | Ok compiled ->
          let env = Tutil.env_for ~seed ~rows:24 ~cols:24 p in
          let run ?pool ?tile inner =
            (Exec.run ?pool ?tile ~inner (Ccc.machine config) compiled env)
              .Exec.output
          in
          (* a tile larger than any subgrid side clamps to the
             whole-subgrid walk: the untiled baseline *)
          let untiled = run ~tile:(1_000, 1_000) Exec.Lowered in
          let expected = Ccc.Reference.apply p env in
          Grid.max_abs_diff expected untiled < 1e-9
          && bit_identical untiled (run Exec.Tapwalk)
          && bit_identical untiled (run ~tile Exec.Lowered)
          && List.for_all
               (fun jobs ->
                 let pool = List.assoc jobs pools in
                 bit_identical untiled (run ~pool ~tile Exec.Lowered))
               [ 2; 7 ])

(* ------------------------------------------------------------------ *)
(* Degenerate shapes: the corners of the grammar the uniform generator
   almost never hits — a single tap (including the 1x1 identity at the
   origin), one-row and one-column stencils, all-zero coefficients,
   and EOSHIFT-only (end-off) borders.  Every execution path must
   agree on all of them: the host reference evaluator, the
   cycle-accurate interpreter, the tap-walking inner loop, and the
   pre-verified lowered kernel. *)

let long_factor =
  (* QCHECK_LONG deepens the sweep; the default tier keeps the whole
     suite inside its time budget. *)
  match Sys.getenv_opt "QCHECK_LONG" with Some _ -> 4 | None -> 1

let gen_degenerate =
  let open Gen in
  let with_taps offsets_gen boundary_gen =
    offsets_gen >>= fun offsets ->
    boundary_gen >>= fun boundary ->
    flatten_l (List.mapi (fun i _ -> gen_coeff i) offsets) >>= fun coeffs ->
    return (Pattern.create ~boundary (List.map2 Tap.make offsets coeffs))
  in
  let line make =
    map
      (fun ds -> List.map make (List.sort_uniq compare ds))
      (list_size (int_range 1 5) (int_range (-2) 2))
  in
  oneof
    [
      (* the 1x1 corner: exactly one tap at the origin *)
      with_taps (return [ Offset.zero ]) gen_boundary;
      (* a single tap anywhere in the window *)
      with_taps (map (fun o -> [ o ]) gen_offset) gen_boundary;
      (* single-row and single-column stencils *)
      with_taps (line (fun dcol -> Offset.make ~drow:0 ~dcol)) gen_boundary;
      with_taps (line (fun drow -> Offset.make ~drow ~dcol:0)) gen_boundary;
      (* all-zero coefficients: the answer is exactly zero *)
      ( gen_offsets >>= fun offsets ->
        gen_boundary >>= fun boundary ->
        return
          (Pattern.create ~boundary
             (List.map (fun o -> Tap.make o (Coeff.Scalar 0.0)) offsets)) );
      (* EOSHIFT-only: every border read is an end-off fill *)
      with_taps gen_offsets
        (map
           (fun i -> Boundary.End_off (float_of_int i /. 2.0))
           (int_range (-2) 2));
    ]

let prop_degenerate_paths_agree =
  Q.Test.make
    ~name:"degenerate shapes: reference = simulate = tapwalk = lowered kernel"
    ~count:(30 * long_factor) ~print:print_pattern gen_degenerate (fun p ->
      match Ccc.compile_pattern config p with
      | Error _ -> Q.assume_fail ()
      | Ok compiled ->
          let env = env_of_pattern ~rows:(4 * 5) ~cols:(4 * 5) p in
          let expected = Ccc.Reference.apply p env in
          let machine = Ccc.machine config in
          let sim =
            (Exec.run ~mode:Exec.Simulate machine compiled env).Exec.output
          in
          let tapwalk =
            (Exec.run ~inner:Exec.Tapwalk machine compiled env).Exec.output
          in
          let kernel = Ccc.Kernel.build config compiled in
          let lowered =
            (Exec.run ~inner:Exec.Lowered ~kernel machine compiled env)
              .Exec.output
          in
          Grid.max_abs_diff expected sim < 1e-9
          && Grid.max_abs_diff expected tapwalk < 1e-9
          && Grid.max_abs_diff expected lowered < 1e-9
          && Grid.max_abs_diff tapwalk lowered = 0.0)

(* ------------------------------------------------------------------ *)
(* The transform-domain path: FFT convolution against the reference
   oracle, the cost-model-driven backend choice, and pooled
   bit-stability.  The transform path only accepts spatially uniform
   coefficients, so its environments flatten every coefficient array
   to its corner value while the source grid stays fully mixed. *)

let uniform_env_of_pattern ~rows ~cols p =
  let src = Pattern.source_var p in
  List.map
    (fun (name, g) ->
      if name = src then (name, g)
      else (name, Grid.constant ~rows ~cols (Grid.get g 0 0)))
    (env_of_pattern ~rows ~cols p)

let prop_fft_matches_reference =
  (* includes the degenerate corners: single taps, lines, all-zero
     coefficients, EOSHIFT-only borders — and non-square,
     non-power-of-two shapes, which exercise the padding logic *)
  Q.Test.make ~name:"fft convolution = reference evaluation"
    ~count:(60 * long_factor) ~print:print_pattern
    (Gen.oneof [ gen_pattern; gen_degenerate ])
    (fun p ->
      let rows = 24 and cols = 20 in
      let env = uniform_env_of_pattern ~rows ~cols p in
      let expected = Ccc.Reference.apply p env in
      let out = Ccc.Fft.convolve p env in
      let pad = Pattern.max_border p in
      Grid.max_abs_diff expected out < 1e-9
      && Ccc.Cost.fft_padded ~n:rows ~pad = Ccc.Fft.padded_size ~n:rows ~pad
      && Ccc.Cost.fft_padded ~n:cols ~pad = Ccc.Fft.padded_size ~n:cols ~pad)

let prop_backend_choice_follows_cost =
  (* the planner is a pure function: same inputs, same choice — and on
     either side of the crossover it must agree with pricing the
     compiled side by [estimate] and the transform side by
     [Cost.fft_cycles], ties to compiled *)
  let gen = Gen.tup2 gen_pattern (Gen.oneofl [ 4; 8; 16; 64; 256 ]) in
  Q.Test.make
    ~name:"backend selection: deterministic, priced by the cost model"
    ~count:(60 * long_factor)
    ~print:(fun (p, sub) -> Printf.sprintf "sub %d: %s" sub (print_pattern p))
    gen
    (fun (p, sub) ->
      let compiled =
        match Ccc.compile_pattern config p with
        | Ok c -> Some c
        | Error _ -> None
      in
      let choose () =
        Exec.select_backend ~sub_rows:sub ~sub_cols:sub config compiled
      in
      let choice = choose () in
      choice = choose ()
      &&
      match compiled with
      | None -> choice = `Fft
      | Some c -> (
          match Exec.estimate ~sub_rows:sub ~sub_cols:sub config c with
          | exception Exec.Too_small _ -> choice = `Compiled
          | s ->
              let pad = Pattern.max_border p in
              let rows = sub * config.Ccc.Config.node_rows
              and cols = sub * config.Ccc.Config.node_cols in
              let fft = Ccc.Cost.fft_cycles config ~rows ~cols ~pad in
              let direct = s.Stats.comm_cycles + s.Stats.compute_cycles in
              choice = (if direct <= fft then `Compiled else `Fft)))

let prop_fft_pool_bit_identical =
  Q.Test.make ~name:"fft path bit-identical across pool sizes" ~count:15
    ~print:print_pattern gen_pattern (fun p ->
      let rows = 4 * 6 and cols = 4 * 6 in
      let env = uniform_env_of_pattern ~rows ~cols p in
      let run ?pool () =
        (Exec.run_fft ?pool (Ccc.machine config) p env).Exec.output
      in
      let seq = run () in
      Grid.max_abs_diff (Ccc.Reference.apply p env) seq < 1e-9
      && List.for_all
           (fun jobs ->
             let pool = List.assoc jobs pools in
             bit_identical seq (run ~pool ()))
           [ 2; 7 ])

let () =
  let to_alcotest = QCheck_alcotest.to_alcotest in
  Alcotest.run "properties"
    [
      ( "execution",
        List.map to_alcotest
          [
            prop_fast_matches_reference;
            prop_simulate_matches_reference;
            prop_modes_agree_on_cycles;
            prop_estimate_consistent_with_run;
            prop_machine_reuse_is_leak_free;
            prop_degenerate_paths_agree;
          ] );
      ( "parallel",
        List.map to_alcotest
          [
            prop_pool_bit_identical;
            prop_pool_simulate;
            prop_kernel_matches_simulate;
            prop_tile_geometry;
          ] );
      ( "communication",
        List.map to_alcotest [ prop_halo_is_global_circular ] );
      ( "transform",
        List.map to_alcotest
          [
            prop_fft_matches_reference;
            prop_backend_choice_follows_cost;
            prop_fft_pool_bit_identical;
          ] );
      ( "fused",
        List.map to_alcotest
          [ prop_fused_matches_reference; prop_fused_simulate_matches_reference ]
      );
      ( "compiler",
        List.map to_alcotest
          [ prop_regalloc_budget_and_lcm; prop_strips_tile_axis ] );
      ( "frontend",
        List.map to_alcotest [ prop_fortran_roundtrip ] );
      ( "accounting",
        List.map to_alcotest [ prop_useful_flops_formula ] );
    ]
