(* The multi-tenant serve scheduler (lib/serve): sequential
   equivalence of the sharded async path (bit-identical outputs for
   engine jobs 1, 2 and 7), request coalescing (fingerprint-identical
   requests over the same grid share one execution), deterministic
   deadline handling under an injectable clock, bounded-queue load
   shedding, round-robin tenant fairness, the stencil-key catalog,
   drain/no-drain shutdown (no ticket is ever lost), and the pool
   accessors the scheduler's admission logic relies on.

   Dispatch is made deterministic the same way the cram demo does it:
   create the scheduler paused, submit the whole trace, then resume —
   every window's contents are then a pure function of the trace. *)

module Q = QCheck2
module Gen = QCheck2.Gen
module Pattern = Ccc.Pattern
module Offset = Ccc.Offset
module Coeff = Ccc.Coeff
module Tap = Ccc.Tap
module Boundary = Ccc.Boundary
module Grid = Ccc.Grid
module Exec = Ccc.Exec
module Engine = Ccc.Engine
module Outcome = Ccc.Outcome
module Request = Ccc.Request
module Serve = Ccc.Serve
module Pool = Ccc.Pool
module Finding = Ccc.Finding

let config = Ccc.Config.default

(* --- helpers (mirrors tutil.ml) ----------------------------------- *)

let mixed_grid ~seed ~rows ~cols =
  Grid.init ~rows ~cols (fun r c ->
      let h = (seed * 0x9e3779b1) lxor (r * 31) lxor (c * 131) in
      let h = h lxor (h lsr 13) in
      float_of_int (h land 0xffff) /. 65536.0 -. 0.5)

let env_for ?(seed = 0x5eed) ~rows ~cols pattern =
  let names =
    Pattern.source_var pattern
    :: List.filter_map
         (fun t -> Coeff.array_name t.Tap.coeff)
         (Pattern.taps pattern)
    @ (match Pattern.bias pattern with
      | Some c -> Option.to_list (Coeff.array_name c)
      | None -> [])
  in
  List.mapi (fun i n -> (n, mixed_grid ~seed:(seed + i) ~rows ~cols)) names

let pattern_of_offsets ?bias ?boundary ?source ?result offs =
  Pattern.create ?bias ?boundary ?source ?result
    (List.mapi
       (fun i (drow, dcol) ->
         Tap.make (Offset.make ~drow ~dcol)
           (Coeff.Array (Printf.sprintf "C%d" (i + 1))))
       offs)

let cross5 ?source ?result () =
  pattern_of_offsets ?source ?result
    [ (-1, 0); (0, -1); (0, 0); (0, 1); (1, 0) ]

let check_bit_identical what a b =
  let diff = Grid.max_abs_diff a b in
  if diff <> 0.0 then
    Alcotest.failf "%s: outputs differ by %g (must be bit-identical)" what diff

(* Serve a whole trace deterministically: paused create, submit all,
   resume, wait all, drain shutdown. *)
let serve_trace ?settings ?(shards = 2) ?max_batch ?clock reqs =
  let t = Serve.create ?settings ~shards ?max_batch ?clock ~paused:true config in
  let tickets = List.map (Serve.submit t) reqs in
  Serve.resume t;
  let rs = List.map (Serve.wait t) tickets in
  let stats = Serve.stats t in
  Serve.shutdown t;
  (rs, stats)

let outcome_kind = function
  | Outcome.Completed _ -> "completed"
  | Outcome.Degraded _ -> "degraded"
  | Outcome.Refused _ -> "refused"
  | Outcome.Shed _ -> "shed"

let output_exn what (r : Serve.response) =
  match Outcome.output r.Serve.outcome with
  | Some g -> g
  | None ->
      Alcotest.failf "%s: expected an output, got %s: %s" what
        (outcome_kind r.Serve.outcome)
        (Outcome.to_string r.Serve.outcome)

(* --- sequential equivalence (qcheck) ------------------------------- *)

let gen_offsets =
  Gen.map
    (fun offs -> List.sort_uniq Offset.compare offs)
    (Gen.list_size (Gen.int_range 1 7)
       (Gen.map2
          (fun drow dcol -> Offset.make ~drow ~dcol)
          (Gen.int_range (-2) 2) (Gen.int_range (-2) 2)))

let gen_pattern =
  let open Gen in
  gen_offsets >>= fun offsets ->
  let taps =
    List.mapi
      (fun i o -> Tap.make o (Coeff.Array (Printf.sprintf "C%d" (i + 1))))
      offsets
  in
  return (Pattern.create taps)

let print_patterns ps =
  String.concat " / " (List.map (fun p -> Format.asprintf "%a" Pattern.pp p) ps)

(* The scheduler must be a behavior-preserving wrapper: whatever a
   caller would get from a lone sequential engine, the sharded async
   path returns bit-identically — for every engine pool size. *)
let prop_matches_sequential jobs =
  Q.Test.make
    ~name:(Printf.sprintf "serve = sequential Engine.run (jobs %d)" jobs)
    ~count:(if jobs = 1 then 25 else 12)
    ~print:print_patterns
    (Gen.list_size (Gen.int_range 1 5) gen_pattern)
    (fun patterns ->
      let rows = 8 and cols = 8 in
      let envs =
        List.mapi
          (fun i p -> env_for ~seed:(0x5eed + (97 * i)) ~rows ~cols p)
          patterns
      in
      let reqs =
        List.map2
          (fun p env -> Request.v ~tenant:"qc" ~env (Request.Pattern p))
          patterns envs
      in
      let settings = { Engine.default_settings with jobs } in
      let responses, _ = serve_trace ~settings ~shards:2 reqs in
      let baseline = Engine.create config in
      let ok =
        List.for_all2
          (fun (r : Serve.response) (p, env) ->
            match (r.Serve.outcome, Engine.run baseline p env) with
            | Outcome.Completed { result; _ }, Ok seq ->
                Grid.max_abs_diff result.Exec.output seq.Exec.output = 0.0
            | Outcome.Refused { reject; _ }, Error e ->
                Outcome.reject_to_string reject = Engine.error_to_string e
            | o, seq ->
                Q.Test.fail_reportf "serve %s vs sequential %s"
                  (outcome_kind o)
                  (match seq with
                  | Ok _ -> "ok"
                  | Error e -> Engine.error_to_string e))
          responses
          (List.combine patterns envs)
      in
      Engine.shutdown baseline;
      ok)

(* --- coalescing ---------------------------------------------------- *)

let test_coalescing () =
  let p = cross5 () in
  let env = env_for ~rows:16 ~cols:16 p in
  let reqs =
    List.init 4 (fun _ -> Request.v ~tenant:"dup" ~env (Request.Pattern p))
  in
  let responses, stats = serve_trace ~shards:2 reqs in
  let baseline = Engine.create config in
  let seq =
    match Engine.run baseline p env with
    | Ok r -> r.Exec.output
    | Error e -> Alcotest.failf "baseline: %s" (Engine.error_to_string e)
  in
  let first = List.hd responses in
  List.iter
    (fun (r : Serve.response) ->
      check_bit_identical "coalesced output" seq (output_exn "coalesced" r);
      Alcotest.(check int) "all four share one run" 4 r.Serve.coalesced;
      Alcotest.(check int) "a singleton class" 1 r.Serve.batched;
      Alcotest.(check int) "same shard" first.Serve.shard r.Serve.shard;
      Alcotest.(check int) "same window" first.Serve.window r.Serve.window)
    responses;
  Alcotest.(check int) "three requests coalesced away" 3 stats.Serve.coalesced;
  Alcotest.(check int) "four completed" 4 stats.Serve.completed;
  (* the shard that served them ran exactly once *)
  let _, es = List.find (fun (i, _) -> i = first.Serve.shard) stats.Serve.engines in
  Alcotest.(check int) "one guarded run on the engine" 1 es.Engine.runs;
  Engine.shutdown baseline

let test_batched_window () =
  let p1 = cross5 () in
  let p2 = pattern_of_offsets [ (0, 0); (1, 1) ] in
  let env = env_for ~rows:16 ~cols:16 p1 in
  let reqs =
    [
      Request.v ~tenant:"a" ~env (Request.Pattern p1);
      Request.v ~tenant:"a" ~env (Request.Pattern p2);
    ]
  in
  let responses, stats = serve_trace ~shards:1 reqs in
  let baseline = Engine.create config in
  List.iter2
    (fun (r : Serve.response) p ->
      let seq =
        match Engine.run baseline p env with
        | Ok r -> r.Exec.output
        | Error e -> Alcotest.failf "baseline: %s" (Engine.error_to_string e)
      in
      check_bit_identical "batched output" seq (output_exn "batched" r);
      Alcotest.(check int) "two statements in the shared run" 2
        r.Serve.batched;
      Alcotest.(check int) "no coalescing" 1 r.Serve.coalesced;
      Alcotest.(check int) "window 0" 0 r.Serve.window)
    responses [ p1; p2 ];
  let _, es = List.hd stats.Serve.engines in
  Alcotest.(check int) "one batch on the engine" 1 es.Engine.batches;
  Alcotest.(check int) "no singleton runs" 0 es.Engine.runs;
  Engine.shutdown baseline

(* --- deadlines (injectable clock) ---------------------------------- *)

let test_deadline_at_admission () =
  let now = Atomic.make 1000.0 in
  let clock () = Atomic.get now in
  let t = Serve.create ~shards:1 ~clock ~paused:true config in
  let p = cross5 () in
  let env = env_for ~rows:16 ~cols:16 p in
  let tk =
    Serve.submit t
      (Request.v ~deadline_us:999.0 ~tenant:"late" ~env (Request.Pattern p))
  in
  let r = Serve.wait t tk in
  (match r.Serve.outcome with
  | Outcome.Shed { shed = Outcome.Deadline_exceeded d; _ } ->
      Alcotest.(check string) "tenant" "late" d.tenant;
      Alcotest.(check (float 0.0)) "deadline echoed" 999.0 d.deadline_us;
      Alcotest.(check (float 0.0)) "clock echoed" 1000.0 d.now_us
  | o -> Alcotest.failf "expected Deadline_exceeded, got %s" (outcome_kind o));
  Alcotest.(check int) "never reached a worker" (-1) r.Serve.window;
  Serve.shutdown t

let test_deadline_at_dispatch () =
  let now = Atomic.make 0.0 in
  let clock () = Atomic.get now in
  let t = Serve.create ~shards:1 ~clock ~paused:true config in
  let p = cross5 () in
  let env = env_for ~rows:16 ~cols:16 p in
  let admitted =
    Serve.submit t
      (Request.v ~deadline_us:100.0 ~tenant:"late" ~env (Request.Pattern p))
  in
  let unbounded =
    Serve.submit t (Request.v ~tenant:"ok" ~env (Request.Pattern p))
  in
  (* the deadline passes while the request sits in the queue *)
  Atomic.set now 200.0;
  Serve.resume t;
  let r = Serve.wait t admitted in
  (match r.Serve.outcome with
  | Outcome.Shed { shed = Outcome.Deadline_exceeded d; _ } ->
      Alcotest.(check (float 0.0)) "dispatch-time clock" 200.0 d.now_us
  | o -> Alcotest.failf "expected Deadline_exceeded, got %s" (outcome_kind o));
  if r.Serve.window < 0 then
    Alcotest.fail "a queued request that expired was collected by a window";
  (match (Serve.wait t unbounded).Serve.outcome with
  | Outcome.Completed _ -> ()
  | o -> Alcotest.failf "undeadlined neighbor: %s" (outcome_kind o));
  Serve.shutdown t

(* --- load shedding ------------------------------------------------- *)

let test_queue_depth_shedding () =
  let settings = { Engine.default_settings with queue_depth = 2 } in
  let t = Serve.create ~settings ~shards:1 ~paused:true config in
  let p = cross5 () in
  let env = env_for ~rows:16 ~cols:16 p in
  let submit () =
    Serve.submit t (Request.v ~tenant:"greedy" ~env (Request.Pattern p))
  in
  let a = submit () and b = submit () and c = submit () in
  (match Serve.peek t c with
  | Some { Serve.outcome = Outcome.Shed { shed = Outcome.Overloaded o; _ }; _ }
    ->
      Alcotest.(check string) "tenant named" "greedy" o.tenant;
      Alcotest.(check int) "queued at the bound" 2 o.queued;
      Alcotest.(check int) "the bound" 2 o.limit
  | Some _ | None -> Alcotest.fail "third request should shed immediately");
  Serve.resume t;
  List.iter
    (fun tk ->
      match (Serve.wait t tk).Serve.outcome with
      | Outcome.Completed _ -> ()
      | o -> Alcotest.failf "admitted request: %s" (outcome_kind o))
    [ a; b ];
  let stats = Serve.stats t in
  Alcotest.(check int) "two admitted" 2 stats.Serve.admitted;
  Alcotest.(check int) "one shed" 1 stats.Serve.shed;
  Serve.shutdown t

let test_tenant_table_shedding () =
  let settings = { Engine.default_settings with tenants = 1 } in
  let t = Serve.create ~settings ~shards:1 ~paused:true config in
  let p = cross5 () in
  let env = env_for ~rows:16 ~cols:16 p in
  let _a = Serve.submit t (Request.v ~tenant:"alice" ~env (Request.Pattern p)) in
  let b = Serve.submit t (Request.v ~tenant:"bob" ~env (Request.Pattern p)) in
  (match Serve.peek t b with
  | Some { Serve.outcome = Outcome.Shed { shed = Outcome.Overloaded o; _ }; _ }
    ->
      Alcotest.(check string) "bob turned away" "bob" o.tenant;
      Alcotest.(check int) "table bound" 1 o.limit
  | Some _ | None -> Alcotest.fail "second tenant should shed immediately");
  Serve.resume t;
  Serve.shutdown t

(* --- fairness ------------------------------------------------------ *)

let test_round_robin_fairness () =
  let p = cross5 () in
  let req tenant seed =
    Request.v ~tenant
      ~env:(env_for ~seed ~rows:16 ~cols:16 p)
      (Request.Pattern p)
  in
  let t = Serve.create ~shards:1 ~max_batch:2 ~paused:true config in
  let a = List.init 4 (fun i -> Serve.submit t (req "a" (100 + i))) in
  let b = List.init 2 (fun i -> Serve.submit t (req "b" (200 + i))) in
  Serve.resume t;
  let wa = List.map (fun tk -> (Serve.wait t tk).Serve.window) a in
  let wb = List.map (fun tk -> (Serve.wait t tk).Serve.window) b in
  Serve.shutdown t;
  (* one job per tenant per window while both have work: b is never
     starved behind a's backlog *)
  Alcotest.(check (list int)) "b rides the first two windows" [ 0; 1 ] wb;
  Alcotest.(check (list int))
    "a's backlog waits for the last window" [ 0; 1; 2; 2 ]
    (List.sort compare wa)

(* --- key catalog --------------------------------------------------- *)

let test_key_catalog () =
  let t = Serve.create ~shards:1 ~paused:true config in
  let p = cross5 () in
  let env = env_for ~rows:16 ~cols:16 p in
  let text =
    Serve.submit t
      (Request.v ~tenant:"k" ~env
         (Request.Text
            "R = C1 * CSHIFT(X, 1, -1) + C2 * CSHIFT(X, 2, -1) + C3 * X + C4 \
             * CSHIFT(X, 2, +1) + C5 * CSHIFT(X, 1, +1)"))
  in
  let by_key =
    Serve.submit t
      (Request.v ~tenant:"k" ~env (Request.Key (Serve.key_of t p)))
  in
  let unknown =
    Serve.submit t (Request.v ~tenant:"k" ~env (Request.Key "no-such-key"))
  in
  (match Serve.peek t unknown with
  | Some { Serve.outcome = Outcome.Refused { reject = Outcome.Parse_error m; _ }; _ }
    ->
      if not (String.length m > 0) then Alcotest.fail "empty refusal"
  | Some _ | None -> Alcotest.fail "unknown key should refuse immediately");
  Serve.resume t;
  let rt = Serve.wait t text and rk = Serve.wait t by_key in
  check_bit_identical "text and key resolve to the same stencil"
    (output_exn "text" rt) (output_exn "key" rk);
  (* fingerprint-identical on the same grid: the key request coalesced
     with the text request *)
  Alcotest.(check int) "coalesced with the text twin" 2 rk.Serve.coalesced;
  Serve.shutdown t

(* --- shutdown ------------------------------------------------------ *)

let test_shutdown_drains () =
  let t = Serve.create ~shards:2 ~paused:true config in
  let p = cross5 () in
  let env = env_for ~rows:16 ~cols:16 p in
  let tickets =
    List.init 6 (fun _ ->
        Serve.submit t (Request.v ~tenant:"d" ~env (Request.Pattern p)))
  in
  (* never resumed: shutdown itself must drain the queues *)
  Serve.shutdown t;
  List.iter
    (fun tk ->
      match (Serve.wait t tk).Serve.outcome with
      | Outcome.Completed _ -> ()
      | o -> Alcotest.failf "drained request: %s" (outcome_kind o))
    tickets;
  match
    (Serve.wait t
       (Serve.submit t (Request.v ~tenant:"d" ~env (Request.Pattern p))))
      .Serve.outcome
  with
  | Outcome.Shed { shed = Outcome.Shutting_down; _ } -> ()
  | o -> Alcotest.failf "post-shutdown submit: %s" (outcome_kind o)

let test_shutdown_sheds_undrained () =
  let t = Serve.create ~shards:2 ~paused:true config in
  let p = cross5 () in
  let env = env_for ~rows:16 ~cols:16 p in
  let tickets =
    List.init 6 (fun _ ->
        Serve.submit t (Request.v ~tenant:"u" ~env (Request.Pattern p)))
  in
  Serve.shutdown ~drain:false t;
  List.iter
    (fun tk ->
      match (Serve.wait t tk).Serve.outcome with
      | Outcome.Shed { shed = Outcome.Shutting_down; _ } -> ()
      | o -> Alcotest.failf "undrained ticket resolved as %s" (outcome_kind o))
    tickets;
  (* idempotent *)
  Serve.shutdown t

(* --- cross-domain trace tree (qcheck) ------------------------------ *)

(* A random schedule of requests over a small pattern set, served by a
   fully traced scheduler (injectable counting clock, two shards).
   Whatever the dispatch interleaving, the merged lane view must be a
   well-formed cross-domain trace: every span closed with a
   non-negative extent, every child nested inside its parent, lane
   names disjoint (admission spans only on the scheduler lane, window
   machinery only on shard lanes), and every dispatched request's
   queue-wait span sitting on exactly the lane of the shard that
   served it. *)

let rec check_span_tree lane_label span =
  let ts = Ccc.Trace.span_ts span and dur = Ccc.Trace.span_dur span in
  if dur < 0.0 then
    Q.Test.fail_reportf "%s: span %s has negative duration" lane_label
      (Ccc.Trace.span_name span);
  List.iter
    (fun child ->
      let cts = Ccc.Trace.span_ts child
      and cdur = Ccc.Trace.span_dur child in
      if not (cts >= ts && cts +. cdur <= ts +. dur) then
        Q.Test.fail_reportf
          "%s: child %s [%g,%g] escapes parent %s [%g,%g]" lane_label
          (Ccc.Trace.span_name child) cts (cts +. cdur)
          (Ccc.Trace.span_name span) ts (ts +. dur);
      check_span_tree lane_label child)
    (Ccc.Trace.span_children span)

let rec spans_named name span =
  (if Ccc.Trace.span_name span = name then [ span ] else [])
  @ List.concat_map (spans_named name) (Ccc.Trace.span_children span)

let prop_trace_well_formed =
  Q.Test.make ~count:12 ~name:"merged cross-domain trace is well-formed"
    ~print:(fun schedule ->
      String.concat "; "
        (List.map
           (fun (t, p) -> Printf.sprintf "tenant %d pattern %d" t p)
           schedule))
    (Gen.list_size (Gen.int_range 1 12)
       (Gen.pair (Gen.int_range 0 3) (Gen.int_range 0 2)))
    (fun schedule ->
      let rows = 8 and cols = 8 in
      let pats =
        [|
          cross5 ();
          pattern_of_offsets [ (0, 0) ];
          pattern_of_offsets [ (-1, 0); (0, 0); (1, 0) ];
        |]
      in
      let envs = Array.map (env_for ~rows ~cols) pats in
      let tick = Atomic.make 0 in
      let clock () = float_of_int (Atomic.fetch_and_add tick 1) in
      let obs =
        Ccc.Obs.v
          ~trace:(Ccc.Trace.create ~clock ())
          ~metrics:(Ccc.Metrics.create ())
      in
      let shards = 2 in
      let t = Serve.create ~obs ~shards ~clock ~paused:true config in
      let tickets =
        List.map
          (fun (ti, pi) ->
            Serve.submit t
              (Request.v
                 ~tenant:(Printf.sprintf "t%d" ti)
                 ~env:envs.(pi)
                 (Request.Pattern pats.(pi))))
          schedule
      in
      Serve.resume t;
      let responses = List.map (Serve.wait t) tickets in
      Serve.shutdown t;
      let lanes = Serve.trace_lanes t in
      if List.length lanes <> shards + 1 then
        Q.Test.fail_reportf "expected %d lanes, got %d" (shards + 1)
          (List.length lanes);
      if List.map Ccc.Trace.lane_tid lanes <> [ 0; 1; 2 ] then
        Q.Test.fail_report "lane tids not 0, 1, 2";
      (* Every lane's forest is closed and properly nested. *)
      List.iter
        (fun lane ->
          List.iter
            (check_span_tree (Ccc.Trace.lane_label lane))
            (Ccc.Trace.lane_roots lane))
        lanes;
      (* Lane discipline: admission on the scheduler lane only, window
         machinery on shard lanes only. *)
      let scheduler = List.hd lanes and shard_lanes = List.tl lanes in
      List.iter
        (fun root ->
          if Ccc.Trace.span_name root <> "serve.submit" then
            Q.Test.fail_reportf "scheduler lane holds %s"
              (Ccc.Trace.span_name root))
        (Ccc.Trace.lane_roots scheduler);
      List.iter
        (fun lane ->
          List.iter
            (fun root ->
              (match Ccc.Trace.span_name root with
              | "serve.queue_wait" | "serve.window" -> ()
              | n ->
                  Q.Test.fail_reportf "%s lane has root %s"
                    (Ccc.Trace.lane_label lane) n);
              if spans_named "serve.submit" root <> [] then
                Q.Test.fail_reportf "admission span on %s"
                  (Ccc.Trace.lane_label lane))
            (Ccc.Trace.lane_roots lane))
        shard_lanes;
      (* Every dispatched request left exactly one queue-wait span, on
         the lane of the shard that served it. *)
      let wait_ids lane =
        List.concat_map
          (fun root ->
            List.filter_map
              (fun s -> Ccc.Trace.find_attr s "trace_id")
              (spans_named "serve.queue_wait" root))
          (Ccc.Trace.lane_roots lane)
      in
      List.iter
        (fun (r : Serve.response) ->
          if r.Serve.window >= 0 then
            List.iteri
              (fun i lane ->
                let here =
                  List.length
                    (List.filter
                       (fun v -> v = Ccc.Trace.Int r.Serve.trace_id)
                       (wait_ids lane))
                in
                let expect = if i = r.Serve.shard then 1 else 0 in
                if here <> expect then
                  Q.Test.fail_reportf
                    "ticket %d: %d queue-wait spans on %s (expected %d)"
                    r.Serve.trace_id here
                    (Ccc.Trace.lane_label lane)
                    expect)
              shard_lanes)
        responses;
      true)

(* --- observability surfaces ---------------------------------------- *)

let test_flight_and_prometheus () =
  (* A refused request must auto-dump the flight recorder: ring 0
     keeps the refusal, and the scrape surface renders the tenant
     families plus every shard registry under its label. *)
  let t = Serve.create ~shards:2 ~paused:true config in
  let p = cross5 () in
  let env = env_for ~rows:16 ~cols:16 p in
  let good = Serve.submit t (Request.v ~tenant:"alice" ~env (Request.Pattern p)) in
  let bad =
    Serve.submit t (Request.v ~tenant:"mallory" ~env (Request.Text "x! = ("))
  in
  Serve.resume t;
  ignore (Serve.wait t good);
  (match (Serve.wait t bad).Serve.outcome with
  | Outcome.Refused _ -> ()
  | o -> Alcotest.failf "garbage text not refused: %s" (outcome_kind o));
  Serve.shutdown t;
  let rings = Serve.flight_rings t in
  Alcotest.(check int) "one ring per shard" 2 (List.length rings);
  let dump0 = Ccc.Flight.dump (List.hd rings) in
  let has needle hay =
    let n = String.length needle and h = String.length hay in
    let rec go i =
      i + n <= h && (String.sub hay i n = needle || go (i + 1))
    in
    go 0
  in
  Alcotest.(check bool) "ring 0 kept the refusal" true
    (has "refused" dump0 && has "mallory" dump0);
  Alcotest.(check int) "one registry per shard" 2
    (List.length (Serve.shard_registries t));
  let text = Serve.prometheus t in
  List.iter
    (fun needle ->
      Alcotest.(check bool) (needle ^ " scraped") true (has needle text))
    [
      "ccc_serve_tenant_admitted{tenant=\"alice\"} 1";
      "ccc_serve_refused 1";
      "ccc_serve_completed 1";
      "ccc_serve_queued_us_bucket";
      "shard=\"0\"";
      "shard=\"1\"";
    ]

(* --- pool accessors (satellite of this PR) ------------------------- *)

let test_pool_accessors () =
  Alcotest.(check int) "sequential size" 1 (Pool.size Pool.sequential);
  Alcotest.(check bool) "sequential idle" false (Pool.busy Pool.sequential);
  let pool = Pool.create ~jobs:3 in
  Alcotest.(check int) "size echoes jobs" 3 (Pool.size pool);
  Alcotest.(check bool) "idle before iter" false (Pool.busy pool);
  Alcotest.(check bool) "open" false (Pool.closed pool);
  let saw_busy = ref false in
  Pool.iter pool 16 (fun _ -> if Pool.busy pool then saw_busy := true);
  Alcotest.(check bool) "busy inside iter" true !saw_busy;
  Alcotest.(check bool) "idle after iter" false (Pool.busy pool);
  Pool.shutdown pool;
  Alcotest.(check bool) "closed after shutdown" true (Pool.closed pool);
  match Pool.iter pool 4 (fun _ -> ()) with
  | () -> Alcotest.fail "iter on a closed pool must raise"
  | exception Finding.Failed fs ->
      Alcotest.(check bool) "a structured Lifecycle finding" true
        (List.exists (fun f -> f.Finding.check = Finding.Lifecycle) fs)

(* ------------------------------------------------------------------ *)

let qcheck tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "ccc_serve"
    [
      ( "equivalence",
        qcheck
          [
            prop_matches_sequential 1;
            prop_matches_sequential 2;
            prop_matches_sequential 7;
          ] );
      ( "coalescing",
        [
          Alcotest.test_case "duplicates share one run" `Quick test_coalescing;
          Alcotest.test_case "distinct patterns batch in one window" `Quick
            test_batched_window;
        ] );
      ( "deadlines",
        [
          Alcotest.test_case "expired at admission" `Quick
            test_deadline_at_admission;
          Alcotest.test_case "expired in the queue" `Quick
            test_deadline_at_dispatch;
        ] );
      ( "shedding",
        [
          Alcotest.test_case "per-tenant queue bound" `Quick
            test_queue_depth_shedding;
          Alcotest.test_case "tenant-table bound" `Quick
            test_tenant_table_shedding;
        ] );
      ( "fairness",
        [
          Alcotest.test_case "round-robin windows" `Quick
            test_round_robin_fairness;
        ] );
      ( "catalog",
        [ Alcotest.test_case "text, key, unknown key" `Quick test_key_catalog ] );
      ( "shutdown",
        [
          Alcotest.test_case "drain serves the backlog" `Quick
            test_shutdown_drains;
          Alcotest.test_case "no-drain sheds every ticket" `Quick
            test_shutdown_sheds_undrained;
        ] );
      ("tracing", qcheck [ prop_trace_well_formed ]);
      ( "observability",
        [
          Alcotest.test_case "flight rings and prometheus" `Quick
            test_flight_and_prometheus;
        ] );
      ( "pool",
        [ Alcotest.test_case "size, busy, closed" `Quick test_pool_accessors ] );
    ]
