(* Unit tests for the compiler module: ring-buffer register
   allocation with LCM minimization, the multiply-add scheduler, and
   the width-selection driver. *)

module Regalloc = Ccc_compiler.Regalloc
module Schedule = Ccc_compiler.Schedule
module Compile = Ccc_compiler.Compile
module Pattern = Ccc_stencil.Pattern
module Multistencil = Ccc_stencil.Multistencil
module Plan = Ccc_microcode.Plan
module Instr = Ccc_microcode.Instr
module Config = Ccc_cm2.Config

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let config = Config.default

let allocate_exn pattern ~width ~available =
  let ms = Multistencil.make pattern ~width in
  match Regalloc.allocate ms ~available with
  | Ok a -> (ms, a)
  | Error { Regalloc.needed; available } ->
      Alcotest.failf "allocation failed: %d needed, %d available" needed
        available

(* ------------------------------------------------------------------ *)
(* Regalloc *)

let test_lcm () =
  check_int "lcm 5 3 1" 15 (Regalloc.lcm_list [ 5; 3; 1 ]);
  check_int "lcm of ones" 1 (Regalloc.lcm_list [ 1; 1; 1 ]);
  check_int "lcm 4 6" 12 (Regalloc.lcm_list [ 4; 6 ]);
  check_int "lcm empty" 1 (Regalloc.lcm_list [])

let test_diamond13_width4_lcm15 () =
  (* Section 5.4's worked example: ring sizes 5, 3 and 1 give an
     unroll factor of LCM(5,3,1) = 15. *)
  let _, a = allocate_exn (Pattern.diamond13 ()) ~width:4 ~available:31 in
  check_int "unroll" 15 a.Regalloc.unroll;
  check_bool "fits 31" true (a.Regalloc.data_registers <= 31)

let test_diamond13_width8_rejected () =
  (* 48 natural registers cannot fit. *)
  let ms = Multistencil.make (Pattern.diamond13 ()) ~width:8 in
  match Regalloc.allocate ms ~available:31 with
  | Ok _ -> Alcotest.fail "should not fit"
  | Error { Regalloc.needed; _ } -> check_int "needs 48" 48 needed

let test_equal_rings_preferred_when_roomy () =
  (* With plenty of registers, every multi-row ring is padded to the
     maximum column size, so the unroll factor equals that size. *)
  let _, a = allocate_exn (Pattern.cross5 ()) ~width:8 ~available:31 in
  check_int "unroll = max span" 3 a.Regalloc.unroll;
  List.iter
    (fun (_, size) -> check_bool "size is 1 or max" true (size = 1 || size = 3))
    a.Regalloc.ring_sizes

let test_height1_columns_stay_at_1 () =
  (* "Reducing a ring buffer to size 1 always saves registers and
     never makes the LCM larger." *)
  let _, a = allocate_exn (Pattern.cross5 ()) ~width:8 ~available:31 in
  let sizes = List.map snd a.Regalloc.ring_sizes in
  check_int "first column (height 1)" 1 (List.hd sizes);
  check_int "last column (height 1)" 1 (List.nth sizes (List.length sizes - 1))

let test_compression_under_pressure () =
  (* square9 at width 8 has 10 columns of height 3: natural demand 30.
     With exactly 30 available everything must compress to natural
     size; the unroll factor stays 3. *)
  let _, a = allocate_exn (Pattern.square9 ()) ~width:8 ~available:30 in
  check_int "exactly natural" 30 a.Regalloc.data_registers;
  check_int "unroll" 3 a.Regalloc.unroll

let test_allocation_total_never_exceeds_budget () =
  List.iter
    (fun (_, p) ->
      List.iter
        (fun width ->
          let ms = Multistencil.make p ~width in
          match Regalloc.allocate ms ~available:31 with
          | Ok a -> check_bool "within budget" true (a.Regalloc.data_registers <= 31)
          | Error _ -> ())
        [ 1; 2; 4; 8 ])
    (Pattern.gallery ())

let test_unroll_is_lcm_of_sizes () =
  List.iter
    (fun (_, p) ->
      List.iter
        (fun width ->
          let ms = Multistencil.make p ~width in
          match Regalloc.allocate ms ~available:31 with
          | Ok a ->
              check_int "unroll = lcm"
                (Regalloc.lcm_list (List.map snd a.Regalloc.ring_sizes))
                a.Regalloc.unroll
          | Error _ -> ())
        [ 1; 2; 4; 8 ])
    (Pattern.gallery ())

(* ------------------------------------------------------------------ *)
(* Schedule *)

let build_plan pattern width =
  let ms = Multistencil.make pattern ~width in
  let pinned = Multistencil.pinned_registers ms in
  match Regalloc.allocate ms ~available:(config.Config.fpu_registers - pinned) with
  | Ok alloc -> Schedule.build config ms alloc
  | Error _ -> Alcotest.fail "allocation failed"

let test_hazard_checker_catches_sabotage () =
  (* The static checker must reject a plan whose tap ordering violates
     the just-in-time discipline: reverse a chain so its tag-reading
     tap issues after the tag's first overwrite lands. *)
  let plan = build_plan (Pattern.cross5 ()) 8 in
  let sabotage (phase : Plan.phase) =
    { phase with Plan.madds = List.rev phase.Plan.madds }
  in
  let bad = { plan with Plan.phases = Array.map sabotage plan.Plan.phases } in
  match Schedule.check_hazards config bad with
  | () -> Alcotest.fail "reversed chains must fail the hazard check"
  | exception Ccc_analysis.Finding.Failed _ -> ()

let test_hazard_checker_catches_early_store () =
  let plan = build_plan (Pattern.cross5 ()) 4 in
  (* A store of a register no chain wrote is equally rejected. *)
  let sabotage (phase : Plan.phase) =
    {
      phase with
      Plan.stores = Ccc_microcode.Instr.Store { reg = 0; dcol = 0 } :: phase.Plan.stores;
    }
  in
  let bad = { plan with Plan.phases = Array.map sabotage plan.Plan.phases } in
  match Schedule.check_hazards config bad with
  | () -> Alcotest.fail "store of an unwritten register must fail"
  | exception Ccc_analysis.Finding.Failed _ -> ()

let test_hazard_check_gallery () =
  List.iter
    (fun (name, p) ->
      List.iter
        (fun width ->
          let ms = Multistencil.make p ~width in
          let pinned = Multistencil.pinned_registers ms in
          match
            Regalloc.allocate ms
              ~available:(config.Config.fpu_registers - pinned)
          with
          | Ok alloc ->
              let plan = Schedule.build config ms alloc in
              (try Schedule.check_hazards config plan
               with Ccc_analysis.Finding.Failed fs ->
                 Alcotest.failf "%s width %d: %s" name width
                   (String.concat "; "
                      (List.map Ccc_analysis.Finding.to_string fs)))
          | Error _ -> ())
        [ 1; 2; 4; 8 ])
    (Pattern.gallery ())

let test_phase_shape () =
  (* Every phase has one load per column, width stores, and
     width * taps multiply-adds (plus interleave nops only for odd
     widths). *)
  let p = Pattern.square9 () in
  let plan = build_plan p 8 in
  check_int "unroll phases" plan.Plan.unroll (Array.length plan.Plan.phases);
  Array.iter
    (fun phase ->
      check_int "loads = columns" 10 (List.length phase.Plan.loads);
      check_int "stores = width" 8 (List.length phase.Plan.stores);
      check_int "madds = width * taps" 72 (List.length phase.Plan.madds))
    plan.Plan.phases

let test_odd_width_has_nops () =
  let plan = build_plan (Pattern.cross5 ()) 1 in
  let phase = plan.Plan.phases.(0) in
  let nops =
    List.length
      (List.filter (function Instr.Nop -> true | _ -> false) phase.Plan.madds)
  in
  (* chain of 5 madds with a nop between consecutive ones: 4 nops. *)
  check_int "spacing nops" 4 nops

let test_chains_accumulate_into_tags () =
  let plan = build_plan (Pattern.cross5 ()) 4 in
  Array.iter
    (fun phase ->
      (* Exactly [width] distinct destination registers, each written
         [taps] times, and each is also a store source. *)
      let dsts = Hashtbl.create 8 in
      List.iter
        (function
          | Instr.Madd { dst; _ } ->
              Hashtbl.replace dsts dst
                (1 + Option.value ~default:0 (Hashtbl.find_opt dsts dst))
          | _ -> ())
        phase.Plan.madds;
      check_int "four accumulators" 4 (Hashtbl.length dsts);
      Hashtbl.iter (fun _ n -> check_int "five madds each" 5 n) dsts;
      List.iter
        (function
          | Instr.Store { reg; _ } ->
              check_bool "store reads an accumulator" true (Hashtbl.mem dsts reg)
          | _ -> ())
        phase.Plan.stores)
    plan.Plan.phases

let test_first_madd_seeds_from_zero () =
  let plan = build_plan (Pattern.cross9 ()) 4 in
  Array.iter
    (fun phase ->
      let first_acc = Hashtbl.create 8 in
      List.iter
        (function
          | Instr.Madd { dst; acc; _ } ->
              if not (Hashtbl.mem first_acc dst) then
                Hashtbl.add first_acc dst acc
              else
                check_int "later madds accumulate in place" dst
                  (if acc = dst then dst else acc)
          | _ -> ())
        phase.Plan.madds;
      Hashtbl.iter
        (fun _ acc -> check_int "seeded from the zero register"
            plan.Plan.zero_reg acc)
        first_acc)
    plan.Plan.phases

let test_prologue_depth () =
  (* cross9 columns span up to 5 rows; the prologue needs span-1 = 4
     warmup lines. *)
  let plan = build_plan (Pattern.cross9 ()) 4 in
  check_int "warmup lines" 4 (Array.length plan.Plan.prologue);
  (* The deepest warmup line loads only the span-5 columns (there are
     four of them at width 4); shallower columns join later. *)
  check_int "first warmup loads" 4 (List.length plan.Plan.prologue.(0));
  (* The final warmup line loads every column of span > 1. *)
  check_int "last warmup loads" 4
    (List.length plan.Plan.prologue.(Array.length plan.Plan.prologue - 1))

let test_ring_register_rotation () =
  let plan = build_plan (Pattern.cross5 ()) 8 in
  let ring = Plan.find_ring plan ~dcol:0 in
  (* size-3 ring: the slot advances with the line and wraps. *)
  let r0 = Plan.ring_register ring ~line:0 ~depth:0 in
  let r3 = Plan.ring_register ring ~line:3 ~depth:0 in
  check_int "period 3" r0 r3;
  let r1d1 = Plan.ring_register ring ~line:1 ~depth:1 in
  check_int "depth 1 at line 1 = depth 0 at line 0" r0 r1d1

let test_registers_within_file () =
  List.iter
    (fun (_, p) ->
      match Compile.compile config p with
      | Ok { Compile.plans; _ } ->
          List.iter
            (fun plan ->
              check_bool "within 32" true
                (plan.Plan.registers_used <= config.Config.fpu_registers);
              List.iter
                (fun r ->
                  check_bool "ring registers in range" true
                    (r.Plan.base >= 0
                    && r.Plan.base + r.Plan.size
                       <= config.Config.fpu_registers))
                plan.Plan.rings)
            plans
      | Error e -> Alcotest.fail (Compile.no_workable e))
    (Pattern.gallery ())

let test_bias_uses_one_register () =
  let p =
    Pattern.create ~bias:(Ccc_stencil.Coeff.Array "B")
      [ Ccc_stencil.Tap.make Ccc_stencil.Offset.zero (Ccc_stencil.Coeff.Array "C1") ]
  in
  let plan = build_plan p 4 in
  (match plan.Plan.one_reg with
  | Some r -> check_int "one register is r1" 1 r
  | None -> Alcotest.fail "one register missing");
  (* The bias madd reads the pinned 1.0 register. *)
  let phase = plan.Plan.phases.(0) in
  check_bool "bias madd present" true
    (List.exists
       (function
         | Instr.Madd { data; coeff_index; _ } ->
             data = 1 && coeff_index = Pattern.tap_count p
         | _ -> false)
       phase.Plan.madds)

let test_coeff_streams_order () =
  let plan = build_plan (Pattern.cross5 ()) 2 in
  check_int "five streams" 5 (Array.length plan.Plan.coeff_streams);
  (match plan.Plan.coeff_streams.(0) with
  | Ccc_stencil.Coeff.Array "C1" -> ()
  | _ -> Alcotest.fail "stream 0 should be C1")

(* ------------------------------------------------------------------ *)
(* Compile driver *)

let test_width_selection_matches_paper () =
  (* The register-pressure predictions deduced from Table 1: square9
     fits width 8; cross9 and diamond13 top out at width 4. *)
  let widths name =
    match Compile.compile config (List.assoc name (Pattern.gallery ())) with
    | Ok { Compile.plans; _ } -> List.map (fun p -> p.Plan.width) plans
    | Error e -> Alcotest.fail (Compile.no_workable e)
  in
  Alcotest.(check (list int)) "cross5" [ 8; 4; 2; 1 ] (widths "cross5");
  Alcotest.(check (list int)) "square9" [ 8; 4; 2; 1 ] (widths "square9");
  Alcotest.(check (list int)) "cross9" [ 4; 2; 1 ] (widths "cross9");
  Alcotest.(check (list int)) "diamond13" [ 4; 2; 1 ] (widths "diamond13")

let test_rejection_reasons_recorded () =
  match Compile.compile config (Pattern.diamond13 ()) with
  | Ok { Compile.rejected; _ } ->
      check_int "one rejection" 1 (List.length rejected);
      let width, finding = List.hd rejected in
      check_int "width 8 rejected" 8 width;
      check_bool "classified as register pressure" true
        (finding.Ccc_analysis.Finding.check
        = Ccc_analysis.Finding.Register_pressure)
  | Error e -> Alcotest.fail (Compile.no_workable e)

let test_best_width_at_most () =
  match Compile.compile config (Pattern.cross5 ()) with
  | Error e -> Alcotest.fail (Compile.no_workable e)
  | Ok compiled ->
      let w limit =
        match Compile.best_width_at_most compiled limit with
        | Some p -> p.Plan.width
        | None -> -1
      in
      check_int "limit 21 -> 8" 8 (w 21);
      check_int "limit 7 -> 4" 4 (w 7);
      check_int "limit 3 -> 2" 2 (w 3);
      check_int "limit 1 -> 1" 1 (w 1)

let test_scratch_pressure_rejection () =
  (* A tiny scratch memory forces rejections. *)
  let tight = { config with Config.scratch_memory_words = 60 } in
  match Compile.compile tight (Pattern.diamond13 ()) with
  | Ok { Compile.plans; rejected; _ } ->
      check_bool "something was rejected for scratch" true
        (List.exists
           (fun (_, f) ->
             f.Ccc_analysis.Finding.check
             = Ccc_analysis.Finding.Scratch_pressure)
           rejected);
      check_bool "width 1 may still fit" true (List.length plans >= 0)
  | Error _ -> ()

let test_tall_pattern_fails_entirely () =
  (* A 33-row column cannot fit the register file at any width. *)
  let offs = List.init 33 (fun i -> (i - 16, 0)) in
  let p = Tutil.pattern_of_offsets offs in
  match Compile.compile config p with
  | Ok _ -> Alcotest.fail "should fail: column span 33 > 31 registers"
  | Error _ -> ()

let test_report_mentions_rejections () =
  match Compile.compile config (Pattern.diamond13 ()) with
  | Ok compiled ->
      let report = Format.asprintf "%a" Compile.pp_report compiled in
      check_bool "mentions width 8" true
        (String.length report > 0
        &&
        let re = "width 8 rejected" in
        let rec contains i =
          i + String.length re <= String.length report
          && (String.sub report i (String.length re) = re || contains (i + 1))
        in
        contains 0)
  | Error e -> Alcotest.fail (Compile.no_workable e)

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "compiler"
    [
      ( "regalloc",
        [
          tc "lcm" test_lcm;
          tc "diamond13 width 4 unrolls 15x" test_diamond13_width4_lcm15;
          tc "diamond13 width 8 rejected (48 regs)" test_diamond13_width8_rejected;
          tc "rings padded to max when roomy" test_equal_rings_preferred_when_roomy;
          tc "height-1 columns stay at 1" test_height1_columns_stay_at_1;
          tc "compression under pressure" test_compression_under_pressure;
          tc "never exceeds budget" test_allocation_total_never_exceeds_budget;
          tc "unroll = LCM of ring sizes" test_unroll_is_lcm_of_sizes;
        ] );
      ( "schedule",
        [
          tc "hazard check over the gallery" test_hazard_check_gallery;
          tc "hazard checker catches reversed chains"
            test_hazard_checker_catches_sabotage;
          tc "hazard checker catches unwritten stores"
            test_hazard_checker_catches_early_store;
          tc "phase shape" test_phase_shape;
          tc "odd width has spacing nops" test_odd_width_has_nops;
          tc "chains accumulate into tags" test_chains_accumulate_into_tags;
          tc "first madd seeds from zero" test_first_madd_seeds_from_zero;
          tc "prologue depth" test_prologue_depth;
          tc "ring register rotation" test_ring_register_rotation;
          tc "registers within the file" test_registers_within_file;
          tc "bias uses the pinned 1.0 register" test_bias_uses_one_register;
          tc "coefficient stream order" test_coeff_streams_order;
        ] );
      ( "driver",
        [
          tc "width selection matches the paper" test_width_selection_matches_paper;
          tc "rejection reasons recorded" test_rejection_reasons_recorded;
          tc "best width at most" test_best_width_at_most;
          tc "scratch pressure rejection" test_scratch_pressure_rejection;
          tc "hopeless pattern fails entirely" test_tall_pattern_fails_entirely;
          tc "report mentions rejections" test_report_mentions_rejections;
        ] );
    ]
