(* The transform-domain execution path (lib/runtime/fft.ml) and its
   engine integration:

   - the arithmetic core: bit-reversal permutation, on-demand twiddle
     factors, and the iterative radix-2 transform whose forward and
     inverse composition is the identity to 1e-12;
   - padded-size selection: the smallest power of two covering the
     grid plus both borders (the classical n + k - 1 bound);
   - plan introspection and rebinding: same values leave the cached
     spectrum untouched, new values re-transform it in place;
   - the engine's plan cache: a repeated dense request is a cache hit
     that serves the standing transformed plan without re-planning
     (engine.fft.builds stays at one while hits climb);
   - the dense fallthrough: cross9 and diamond13 restricted to width 8
     reproduce the paper's section-6 rejections on the compiled path,
     yet [run_guarded] completes them through the transform plan.

   Self-contained (runs under the @fft alias as its own executable). *)

module Pattern = Ccc.Pattern
module Offset = Ccc.Offset
module Coeff = Ccc.Coeff
module Tap = Ccc.Tap
module Grid = Ccc.Grid
module Exec = Ccc.Exec
module Fft = Ccc.Fft
module Engine = Ccc.Engine

let config = Ccc.Config.default

(* --- helpers ------------------------------------------------------ *)

let mixed_grid ~seed ~rows ~cols =
  Grid.init ~rows ~cols (fun r c ->
      let h = (seed * 0x9e3779b1) lxor (r * 31) lxor (c * 131) in
      let h = h lxor (h lsr 13) in
      float_of_int (h land 0xffff) /. 65536.0 -. 0.5)

(* The transform path requires spatially uniform coefficients: mixed
   source, per-name constant for everything else. *)
let uniform_env_for ~rows ~cols pattern =
  let src = Pattern.source_var pattern in
  List.map
    (fun name ->
      if name = src then (name, mixed_grid ~seed:7 ~rows ~cols)
      else
        ( name,
          Grid.constant ~rows ~cols
            (0.25 +. (float_of_int (Hashtbl.hash name land 0xFF) /. 256.0)) ))
    (List.sort_uniq compare (Ccc.Reference.referenced_arrays pattern))

(* A dense k x k Gaussian: more taps than any width's register budget,
   so the compiler rejects it and only the transform path serves it. *)
let gauss k sigma =
  let half = k / 2 in
  let taps = ref [] in
  for dr = -half to half do
    for dc = -half to half do
      let w =
        exp (-.(float_of_int ((dr * dr) + (dc * dc)) /. (2.0 *. sigma *. sigma)))
      in
      taps :=
        Tap.make (Offset.make ~drow:dr ~dcol:dc) (Coeff.Scalar w) :: !taps
    done
  done;
  Pattern.create ~boundary:Ccc.Boundary.Circular (List.rev !taps)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* --- arithmetic core ---------------------------------------------- *)

let test_next_pow2 () =
  List.iter
    (fun (n, want) -> check_int (Printf.sprintf "next_pow2 %d" n) want (Fft.next_pow2 n))
    [ (0, 1); (1, 1); (2, 2); (3, 4); (4, 4); (5, 8); (31, 32); (33, 64); (1000, 1024) ]

let test_padded_size () =
  (* smallest power of two >= n + 2*pad, i.e. >= n + (k - 1) *)
  check_int "32 pad 2 -> 64" 64 (Fft.padded_size ~n:32 ~pad:2);
  check_int "28 pad 2 -> 32" 32 (Fft.padded_size ~n:28 ~pad:2);
  check_int "32 pad 0 -> 32" 32 (Fft.padded_size ~n:32 ~pad:0);
  check_int "1 pad 0 -> 1" 1 (Fft.padded_size ~n:1 ~pad:0);
  check_int "20 pad 4 -> 32" 32 (Fft.padded_size ~n:20 ~pad:4);
  (* the classical linear-convolution bound n + k - 1 *)
  for n = 1 to 40 do
    for pad = 0 to 6 do
      let p = Fft.padded_size ~n ~pad in
      let k = (2 * pad) + 1 in
      check_bool
        (Printf.sprintf "padded_size %d/%d covers n+k-1" n pad)
        true
        (p >= n + k - 1 && p land (p - 1) = 0)
    done
  done

let test_bit_reverse () =
  check_int "rev3 1 = 4" 4 (Fft.bit_reverse ~bits:3 1);
  check_int "rev3 3 = 6" 6 (Fft.bit_reverse ~bits:3 3);
  check_int "rev3 4 = 1" 1 (Fft.bit_reverse ~bits:3 4);
  check_int "rev1 1 = 1" 1 (Fft.bit_reverse ~bits:1 1);
  (* an involution and a permutation at every width *)
  for bits = 1 to 8 do
    let n = 1 lsl bits in
    let seen = Array.make n false in
    for i = 0 to n - 1 do
      let r = Fft.bit_reverse ~bits i in
      check_int
        (Printf.sprintf "rev%d involutive at %d" bits i)
        i
        (Fft.bit_reverse ~bits r);
      seen.(r) <- true
    done;
    check_bool (Printf.sprintf "rev%d is a permutation" bits) true
      (Array.for_all Fun.id seen)
  done

let close ?(tol = 1e-12) name want got =
  Alcotest.(check bool)
    (Printf.sprintf "%s: |%.17g - %.17g| <= %g" name want got tol)
    true
    (Float.abs (want -. got) <= tol)

let test_twiddle () =
  let re0, im0 = Fft.twiddle ~n:4 ~k:0 in
  close "w4^0 re" 1.0 re0;
  close "w4^0 im" 0.0 im0;
  let re1, im1 = Fft.twiddle ~n:4 ~k:1 in
  close "w4^1 re" 0.0 re1;
  close "w4^1 im" (-1.0) im1;
  let re2, im2 = Fft.twiddle ~n:8 ~k:1 in
  let s = sqrt 0.5 in
  close "w8^1 re" s re2;
  close "w8^1 im" (-.s) im2;
  (* |w| = 1 everywhere *)
  for k = 0 to 15 do
    let re, im = Fft.twiddle ~n:16 ~k in
    close (Printf.sprintf "unit modulus k=%d" k) 1.0 ((re *. re) +. (im *. im))
  done

let test_fft_roundtrip () =
  let n = 64 in
  let mk seed =
    Array.init n (fun i ->
        let h = (seed * 0x9e3779b1) lxor (i * 131) in
        float_of_int (h land 0xffff) /. 65536.0 -. 0.5)
  in
  let re = mk 3 and im = mk 11 in
  let re0 = Array.copy re and im0 = Array.copy im in
  Fft.fft ~inverse:false re im;
  Fft.fft ~inverse:true re im;
  for i = 0 to n - 1 do
    close ~tol:1e-12 (Printf.sprintf "re[%d]" i) re0.(i) re.(i);
    close ~tol:1e-12 (Printf.sprintf "im[%d]" i) im0.(i) im.(i)
  done;
  (* a unit impulse transforms to the flat spectrum *)
  let re = Array.make 8 0.0 and im = Array.make 8 0.0 in
  re.(0) <- 1.0;
  Fft.fft ~inverse:false re im;
  Array.iteri (fun i v -> close (Printf.sprintf "flat re[%d]" i) 1.0 v) re;
  Array.iteri (fun i v -> close (Printf.sprintf "flat im[%d]" i) 0.0 v) im;
  (* non-power-of-two lengths are a caller error *)
  Alcotest.check_raises "length 3 rejected"
    (Invalid_argument "Fft.fft: length must be a power of two")
    (fun () -> Fft.fft ~inverse:false (Array.make 3 0.0) (Array.make 3 0.0))

(* --- plan introspection and rebinding ----------------------------- *)

let test_plan_shape () =
  let p = gauss 5 1.2 in
  let rows = 24 and cols = 20 in
  let env = uniform_env_for ~rows ~cols p in
  let plan = Fft.build p ~rows ~cols env in
  check_int "pad" 2 (Fft.pad plan);
  check_int "rows" rows (Fft.rows plan);
  check_int "cols" cols (Fft.cols plan);
  check_int "padded rows" (Fft.padded_size ~n:rows ~pad:2) (Fft.padded_rows plan);
  check_int "padded cols" (Fft.padded_size ~n:cols ~pad:2) (Fft.padded_cols plan);
  check_int "taps resolved" 25 (Array.length (Fft.coeff_values plan));
  check_bool "no bias" true (Fft.bias_value plan = None);
  (* same values: the cached spectrum is already sound *)
  check_bool "rebind same values" false (Fft.rebind plan env);
  Fft.verify p plan

let test_rebind_retransforms () =
  (* one array coefficient, rebound to a new uniform value: rebind
     must report a re-transform and the next execute must use it *)
  let p =
    Pattern.create ~boundary:Ccc.Boundary.Circular
      [
        Tap.make (Offset.make ~drow:0 ~dcol:0) (Coeff.Array "C1");
        Tap.make (Offset.make ~drow:0 ~dcol:1) (Coeff.Array "C2");
      ]
  in
  let rows = 16 and cols = 16 in
  let src = Pattern.source_var p in
  let env v =
    [
      (src, mixed_grid ~seed:4 ~rows ~cols);
      ("C1", Grid.constant ~rows ~cols v);
      ("C2", Grid.constant ~rows ~cols (v *. 2.0));
    ]
  in
  let plan = Fft.build p ~rows ~cols (env 0.5) in
  check_bool "same env: no retransform" false (Fft.rebind plan (env 0.5));
  check_bool "new env: retransform" true (Fft.rebind plan (env 0.75));
  let out = Fft.convolve p (env 0.75) in
  let expected = Ccc.Reference.apply p (env 0.75) in
  check_bool "rebound result matches reference" true
    (Grid.max_abs_diff out expected < 1e-9)

(* --- the engine's transform-plan cache ---------------------------- *)

let test_engine_cache_hit () =
  let e = Engine.create config in
  Fun.protect ~finally:(fun () -> Engine.shutdown e) @@ fun () ->
  let p = gauss 9 2.0 in
  let env = uniform_env_for ~rows:64 ~cols:64 p in
  let expected = Ccc.Reference.apply p env in
  for i = 1 to 3 do
    match Engine.run e p env with
    | Ok r ->
        check_bool
          (Printf.sprintf "run %d matches reference" i)
          true
          (Grid.max_abs_diff r.Exec.output expected < 1e-9)
    | Error err -> Alcotest.failf "run %d: %s" i (Engine.error_to_string err)
  done;
  let s = Engine.stats e in
  (* first request misses and builds the plan; the two repeats are
     cache hits that serve the standing transformed plan without
     re-planning or re-transforming *)
  check_int "misses" 1 s.Engine.misses;
  check_int "hits" 2 s.Engine.hits;
  check_int "fft runs" 3 s.Engine.fft_runs;
  check_int "fft builds" 1 s.Engine.fft_builds;
  check_int "fft rebinds" 0 s.Engine.fft_rebinds

(* --- the dense fallthrough at the paper's width-8 rejections ------ *)

let test_width8_fallthrough () =
  let e =
    Engine.create
      ~settings:{ Engine.default_settings with Engine.widths = Some [ 8 ] }
      config
  in
  Fun.protect ~finally:(fun () -> Engine.shutdown e) @@ fun () ->
  List.iter
    (fun name ->
      let p = List.assoc name (Pattern.gallery ()) in
      let env = uniform_env_for ~rows:32 ~cols:32 p in
      (* the compiled path still reports the section-6 rejection *)
      (match Engine.compile e p with
      | Error (Engine.Resource_error _) -> ()
      | Ok _ -> Alcotest.failf "%s compiled at width 8" name
      | Error err ->
          Alcotest.failf "%s: unexpected %s" name (Engine.error_to_string err));
      (* ... and the guarded run completes through the transform plan *)
      match Engine.run_guarded e p env with
      | Ok (Engine.Completed r) ->
          let expected = Ccc.Reference.apply p env in
          check_bool (name ^ " matches reference") true
            (Grid.max_abs_diff r.Exec.output expected < 1e-9)
      | Ok (Engine.Degraded _) -> Alcotest.failf "%s degraded" name
      | Error err -> Alcotest.failf "%s: %s" name (Engine.error_to_string err))
    [ "cross9"; "diamond13" ];
  let s = Engine.stats e in
  check_int "both served by the transform path" 2 s.Engine.fft_runs;
  check_int "one plan per pattern" 2 s.Engine.fft_builds

let () =
  Alcotest.run "fft"
    [
      ( "core",
        [
          Alcotest.test_case "next_pow2" `Quick test_next_pow2;
          Alcotest.test_case "padded size selection" `Quick test_padded_size;
          Alcotest.test_case "bit reversal" `Quick test_bit_reverse;
          Alcotest.test_case "twiddle factors" `Quick test_twiddle;
          Alcotest.test_case "forward/inverse roundtrip" `Quick
            test_fft_roundtrip;
        ] );
      ( "plan",
        [
          Alcotest.test_case "shape and introspection" `Quick test_plan_shape;
          Alcotest.test_case "rebind retransforms on new values" `Quick
            test_rebind_retransforms;
        ] );
      ( "engine",
        [
          Alcotest.test_case "cache hit serves standing plan" `Quick
            test_engine_cache_hit;
          Alcotest.test_case "width-8 rejections complete via transform" `Quick
            test_width8_fallthrough;
        ] );
    ]
