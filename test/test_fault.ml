(* Fault injection and runtime self-checking (lib/fault), plus the
   service engine's recovery ladder:

   - the pool propagates per-node exceptions deterministically even
     when [jobs] exceeds the node count (surplus chunks are empty and
     must neither mask nor displace a failing node);
   - every Inject fault class is caught by the matching Guard check,
     and a disarmed retry reproduces the clean result bit for bit;
   - Engine.run_guarded climbs the ladder: clean -> Completed, a
     one-shot fault -> retry -> Completed, a persistent fault ->
     recompile -> Degraded on the host reference path, with the
     engine.guard.* counters pinned at every rung.

   Self-contained (runs under the @fault alias as its own executable);
   the helpers it shares with the main suite are duplicated from
   tutil.ml. *)

module Pattern = Ccc.Pattern
module Offset = Ccc.Offset
module Coeff = Ccc.Coeff
module Tap = Ccc.Tap
module Grid = Ccc.Grid
module Exec = Ccc.Exec
module Pool = Ccc.Pool
module Kernel = Ccc.Kernel
module Finding = Ccc.Finding
module Inject = Ccc.Inject
module Guard = Ccc.Guard
module Engine = Ccc.Engine
module Metrics = Ccc.Metrics

let config = Ccc.Config.default
let nodes = Ccc.Machine.node_count (Ccc.machine config)

(* --- helpers (mirrors tutil.ml) ----------------------------------- *)

let mixed_grid ~seed ~rows ~cols =
  Grid.init ~rows ~cols (fun r c ->
      let h = (seed * 0x9e3779b1) lxor (r * 31) lxor (c * 131) in
      let h = h lxor (h lsr 13) in
      float_of_int (h land 0xffff) /. 65536.0 -. 0.5)

let env_for ?(seed = 0x5eed) ~rows ~cols pattern =
  let names =
    Pattern.source_var pattern
    :: List.filter_map
         (fun t -> Coeff.array_name t.Tap.coeff)
         (Pattern.taps pattern)
    @ (match Pattern.bias pattern with
      | Some c -> Option.to_list (Coeff.array_name c)
      | None -> [])
  in
  List.mapi (fun i n -> (n, mixed_grid ~seed:(seed + i) ~rows ~cols)) names

let cross5 ?source ?result () =
  Pattern.create ?source ?result
    (List.mapi
       (fun i (drow, dcol) ->
         Tap.make (Offset.make ~drow ~dcol)
           (Coeff.Array (Printf.sprintf "C%d" (i + 1))))
       [ (-1, 0); (0, -1); (0, 0); (0, 1); (1, 0) ])

let compile_exn p =
  match Ccc.compile_pattern config p with
  | Ok c -> c
  | Error e -> Alcotest.failf "compile: %s" (Ccc.error_to_string e)

let ok_exn = function
  | Ok v -> v
  | Error e -> Alcotest.failf "engine error: %s" (Engine.error_to_string e)

let check_bit_identical what a b =
  let diff = Grid.max_abs_diff a b in
  if diff <> 0.0 then
    Alcotest.failf "%s: outputs differ by %g (must be bit-identical)" what diff

let check_classes what expected findings =
  if findings = [] then Alcotest.failf "%s: no findings" what;
  List.iter
    (fun f ->
      if not (List.mem f.Finding.check expected) then
        Alcotest.failf "%s: unexpected %s finding: %s" what
          (Finding.check_name f.Finding.check)
          (Finding.to_string f))
    findings

(* --- pool exception propagation (jobs > nodes) --------------------- *)

exception Boom of int

let test_pool_overcommit () =
  (* The regression shape: jobs = nodes + 3 leaves three chunks empty;
     every node must still run exactly once and a failing node's
     exception must still surface. *)
  let jobs = nodes + 3 in
  let pool = Pool.create ~jobs in
  Fun.protect ~finally:(fun () -> Pool.shutdown pool) @@ fun () ->
  let hits = Array.make nodes 0 in
  Pool.iter pool nodes (fun i -> hits.(i) <- hits.(i) + 1);
  Array.iteri
    (fun i h ->
      Alcotest.(check int) (Printf.sprintf "node %d ran once" i) 1 h)
    hits;
  (match Pool.iter pool nodes (fun i -> if i = 5 then raise (Boom i)) with
  | () -> Alcotest.fail "the node-5 exception vanished"
  | exception Boom 5 -> ()
  | exception e ->
      Alcotest.failf "wrong exception: %s" (Printexc.to_string e));
  (* Several failing nodes: the lowest-indexed one wins. *)
  match Pool.iter pool nodes (fun i -> if i >= 9 then raise (Boom i)) with
  | () -> Alcotest.fail "expected an exception"
  | exception Boom 9 -> ()
  | exception e -> Alcotest.failf "wrong exception: %s" (Printexc.to_string e)

let test_pool_error_deterministic () =
  (* A failing node reports the same error at every jobs value,
     including jobs > nodes. *)
  List.iter
    (fun jobs ->
      let pool = Pool.create ~jobs in
      Fun.protect ~finally:(fun () -> Pool.shutdown pool) @@ fun () ->
      match
        Pool.iter pool nodes (fun i -> if i mod 4 = 3 then raise (Boom i))
      with
      | () -> Alcotest.failf "jobs=%d: expected an exception" jobs
      | exception Boom n ->
          Alcotest.(check int)
            (Printf.sprintf "jobs=%d reports the lowest failing node" jobs)
            3 n
      | exception e ->
          Alcotest.failf "jobs=%d: wrong exception: %s" jobs
            (Printexc.to_string e))
    [ 1; 2; 7; nodes; nodes + 3 ]

(* --- per-fault detection and recovery ------------------------------ *)

let test_fault_names () =
  Alcotest.(check int) "six fault classes" 6 (List.length Inject.all);
  List.iter
    (fun f ->
      match Inject.of_name (Inject.name f) with
      | Some f' when f' = f -> ()
      | _ -> Alcotest.failf "name roundtrip broke for %s" (Inject.name f))
    Inject.all;
  match Inject.of_name "meteor-strike" with
  | None -> ()
  | Some _ -> Alcotest.fail "an unknown fault name must not parse"

(* One statement, one machine, one clean baseline per case. *)
let with_run_fixture f =
  let pattern = cross5 () in
  let compiled = compile_exn pattern in
  let env = env_for ~rows:24 ~cols:24 pattern in
  let machine = Ccc.machine config in
  let clean = (Exec.run machine compiled env).Exec.output in
  f ~pattern ~compiled ~env ~machine ~clean

let test_halo_fault fault () =
  with_run_fixture @@ fun ~pattern ~compiled ~env ~machine ~clean ->
  let inj = Inject.arm ~seed:7 ~nodes fault in
  let watch = Guard.watch pattern in
  let hooks = Exec.compose_hooks (Inject.hooks inj) watch.Guard.hooks in
  ignore (Exec.run ~hooks machine compiled env);
  (match Inject.fired inj with
  | None -> Alcotest.failf "%s never fired" (Inject.name fault)
  | Some _ -> ());
  check_classes
    (Inject.name fault ^ " halo guard")
    [ Finding.Halo_integrity ]
    !(watch.Guard.caught);
  (* One-shot: the disarmed injector's retry is clean, bit for bit. *)
  Alcotest.(check bool) "injector disarmed" false (Inject.armed inj);
  let retry = Exec.run ~hooks:(Inject.hooks inj) machine compiled env in
  check_bit_identical "disarmed retry" clean retry.Exec.output

let test_phase_skip () =
  with_run_fixture @@ fun ~pattern ~compiled ~env ~machine ~clean ->
  let inj = Inject.arm ~seed:7 ~nodes Inject.Phase_skip in
  let watch = Guard.watch pattern in
  let hooks = Exec.compose_hooks (Inject.hooks inj) watch.Guard.hooks in
  let faulty = Exec.run ~hooks machine compiled env in
  (match Inject.fired inj with
  | None -> Alcotest.fail "phase-skip never fired"
  | Some _ -> ());
  (* The skip corrupts the destination after the compute phase: the
     halo was genuinely clean, so only the output check can see it. *)
  Alcotest.(check int) "halo guard stays silent" 0
    (List.length !(watch.Guard.caught));
  check_classes "phase-skip output check"
    [ Finding.Output_integrity ]
    (Guard.check_output pattern env faulty.Exec.output);
  let retry = Exec.run ~hooks:(Inject.hooks inj) machine compiled env in
  check_bit_identical "disarmed retry" clean retry.Exec.output

let test_kernel_poison () =
  with_run_fixture @@ fun ~pattern ~compiled ~env ~machine ~clean:_ ->
  let kernel = Kernel.build config compiled in
  let inj = Inject.arm ~seed:11 ~nodes Inject.Kernel_poison in
  let poisoned = Inject.poison_kernel inj kernel in
  Alcotest.(check bool) "poisoning disarms the injector" false
    (Inject.armed inj);
  (* The poisoned cache hit either computes wrong data (output check)
     or trips the specialization bounds; both are detections. *)
  (match Exec.run ~inner:Exec.Lowered ~kernel:poisoned machine compiled env with
  | r ->
      check_classes "poisoned kernel output check"
        [ Finding.Output_integrity ]
        (Guard.check_output pattern env r.Exec.output)
  | exception _ -> ());
  (* Root cause: the sandbox re-proof rejects the poisoned kernel and
     accepts the sound one. *)
  let fs = Guard.check_kernel config compiled poisoned in
  if not (List.exists (fun f -> f.Finding.check = Finding.Kernel_integrity) fs)
  then Alcotest.fail "check_kernel accepted a poisoned kernel";
  (match Guard.check_kernel config compiled kernel with
  | [] -> ()
  | fs ->
      Alcotest.failf "check_kernel rejected a sound kernel: %s"
        (Finding.to_string (List.hd fs)));
  (* Recovery: the sound kernel reproduces the clean result. *)
  let a = Exec.run ~inner:Exec.Lowered ~kernel machine compiled env in
  let b = Exec.run ~inner:Exec.Lowered machine compiled env in
  check_bit_identical "sound kernel vs on-the-fly lowering" b.Exec.output
    a.Exec.output

let test_pool_death () =
  with_run_fixture @@ fun ~pattern:_ ~compiled ~env ~machine ~clean ->
  List.iter
    (fun jobs ->
      let pool = Pool.create ~jobs in
      Fun.protect ~finally:(fun () -> Pool.shutdown pool) @@ fun () ->
      let inj = Inject.arm ~seed:13 ~nodes Inject.Pool_death in
      (match Exec.run ~pool ~hooks:(Inject.hooks inj) machine compiled env with
      | _ -> Alcotest.failf "jobs=%d: the worker death vanished" jobs
      | exception Inject.Worker_died _ -> ());
      (* The machine released its temporaries on the way out, so the
         disarmed retry runs clean on the same machine. *)
      let retry = Exec.run ~pool ~hooks:(Inject.hooks inj) machine compiled env in
      check_bit_identical
        (Printf.sprintf "jobs=%d retry after worker death" jobs)
        clean retry.Exec.output)
    [ 1; 3; nodes + 3 ]

let test_grid_checksum () =
  let g = mixed_grid ~seed:3 ~rows:12 ~cols:12 in
  let g' = mixed_grid ~seed:3 ~rows:12 ~cols:12 in
  if not (Int64.equal (Guard.grid_checksum g) (Guard.grid_checksum g')) then
    Alcotest.fail "equal grids must share a checksum";
  let h = mixed_grid ~seed:4 ~rows:12 ~cols:12 in
  if Int64.equal (Guard.grid_checksum g) (Guard.grid_checksum h) then
    Alcotest.fail "different grids must not collide (for this pair)"

(* --- the engine's recovery ladder ---------------------------------- *)

let guard_counters engine =
  let m = Engine.metrics engine in
  let v name = Metrics.Counter.value (Metrics.counter m name) in
  ( v "engine.guard.detections",
    v "engine.guard.retries",
    v "engine.guard.recompiles",
    v "engine.guard.degraded" )

let check_counters what engine (d, r, rc, dg) =
  let d', r', rc', dg' = guard_counters engine in
  Alcotest.(check (list int))
    (what ^ ": detections/retries/recompiles/degraded")
    [ d; r; rc; dg ] [ d'; r'; rc'; dg' ]

let with_engine f =
  let engine = Engine.create config in
  Fun.protect ~finally:(fun () -> Engine.shutdown engine) @@ fun () -> f engine

let test_guarded_clean () =
  with_engine @@ fun engine ->
  let p = cross5 () in
  let env = env_for ~rows:16 ~cols:16 p in
  (match ok_exn (Engine.run_guarded engine p env) with
  | Engine.Completed r ->
      check_bit_identical "guarded clean run vs one-shot"
        (Ccc.apply config (compile_exn p) env).Exec.output r.Exec.output
  | Engine.Degraded _ -> Alcotest.fail "a clean substrate must complete");
  check_counters "clean" engine (0, 0, 0, 0)

let test_guarded_transient () =
  (* A one-shot fault is detected, retried once with the same cached
     artifacts, and completes with the clean answer. *)
  with_engine @@ fun engine ->
  let p = cross5 () in
  let env = env_for ~rows:16 ~cols:16 p in
  let inj = Inject.arm ~seed:5 ~nodes Inject.Bit_flip in
  (match ok_exn (Engine.run_guarded ~inject:(Inject.hooks inj) engine p env) with
  | Engine.Completed r ->
      check_bit_identical "completed-after-retry vs one-shot"
        (Ccc.apply config (compile_exn p) env).Exec.output r.Exec.output
  | Engine.Degraded _ ->
      Alcotest.fail "a one-shot fault must be retried to completion");
  (match Inject.fired inj with
  | None -> Alcotest.fail "the injector never fired under the engine"
  | Some _ -> ());
  check_counters "transient" engine (1, 1, 0, 0)

(* A persistent substrate fault: every halo exchange loses the same
   interior cell, so retries and even a recompile cannot help. *)
let persistent_corruptor () =
  {
    Exec.on_phase =
      (fun ctx ->
        if ctx.Exec.phase = "halo" then
          match ctx.Exec.halo with
          | Some x ->
              let mem = Ccc.Machine.memory ctx.Exec.machine 0 in
              Ccc_cm2.Memory.write mem
                (x.Ccc.Halo.padded.Ccc_cm2.Memory.base
                + x.Ccc.Halo.padded_cols + 1)
                1e9
          | None -> ());
    on_compute_node = (fun _ -> ());
  }

let test_guarded_degrades () =
  with_engine @@ fun engine ->
  let p = cross5 () in
  let env = env_for ~rows:16 ~cols:16 p in
  let kernel_verifies () =
    Metrics.Counter.value
      (Metrics.counter (Engine.metrics engine) "engine.kernel.verifies")
  in
  match
    ok_exn
      (Engine.run_guarded ~inject:(persistent_corruptor ()) ~max_retries:2
         engine p env)
  with
  | Engine.Completed _ ->
      Alcotest.fail "a persistent fault must not complete"
  | Engine.Degraded d ->
      check_bit_identical "degraded output = host reference"
        (Ccc.Reference.apply p env) d.Engine.output;
      Alcotest.(check int) "both same-kernel retries spent" 2
        d.Engine.retries;
      Alcotest.(check bool) "the cache entry was recompiled" true
        d.Engine.recompiled;
      check_classes "degraded findings"
        [ Finding.Halo_integrity; Finding.Output_integrity ]
        d.Engine.findings;
      if
        not
          (List.exists
             (fun f -> f.Finding.check = Finding.Halo_integrity)
             d.Engine.findings)
      then Alcotest.fail "the halo guard must have seen the corruption";
      (* first attempt + 2 retries + post-recompile attempt *)
      check_counters "degraded" engine (4, 2, 1, 1);
      (* miss-time build + ladder diagnosis + recompiled build *)
      Alcotest.(check int) "kernel re-proofs on the ladder" 3
        (kernel_verifies ());
      Alcotest.(check int) "initial compile + ladder recompile" 2
        (Engine.stats engine).Engine.compiles

let test_guarded_too_small () =
  (* The ladder must not swallow structural errors: a too-small array
     is still an Error value, not a Degraded result. *)
  with_engine @@ fun engine ->
  let wide =
    Pattern.create
      (List.mapi
         (fun i (drow, dcol) ->
           Tap.make (Offset.make ~drow ~dcol)
             (Coeff.Array (Printf.sprintf "C%d" (i + 1))))
         [ (0, -4); (0, 0); (0, 4) ])
  in
  let env = env_for ~rows:8 ~cols:8 wide in
  match Engine.run_guarded engine wide env with
  | Error (Engine.Too_small _) -> ()
  | Ok _ -> Alcotest.fail "expected Too_small, got an outcome"
  | Error e ->
      Alcotest.failf "expected Too_small, got %s" (Engine.error_to_string e)

(* --- conformance flight dumps (PR 8) -------------------------------- *)

let contains needle hay =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  go 0

(* Every kill-matrix cell carries a flight-recorder dump that names
   the injected fault class — the cell is a self-explaining incident
   report: armed fault, firing record (or the note that it never
   fired), guard trip, recovery verdict. *)
let test_kill_dumps_name_faults () =
  let m = Ccc.Conformance.run ~jobs_list:[ 1 ] config in
  Alcotest.(check bool) "matrix passed" true (Ccc.Conformance.passed m);
  Alcotest.(check bool) "kill matrix populated" true
    (m.Ccc.Conformance.kills <> []);
  let seen = Hashtbl.create 8 in
  List.iter
    (fun (k : Ccc.Conformance.kill) ->
      let fname = Inject.name k.Ccc.Conformance.k_fault in
      Hashtbl.replace seen fname ();
      let d = k.Ccc.Conformance.k_dump in
      Alcotest.(check bool) (fname ^ ": dump names the fault class") true
        (contains fname d);
      Alcotest.(check bool) (fname ^ ": dump records the arming") true
        (contains "armed" d);
      Alcotest.(check bool) (fname ^ ": dump reaches a verdict") true
        (contains "recovered" d || contains "UNDETECTED" d))
    m.Ccc.Conformance.kills;
  (* both per-path sweeps together: the six lowered classes plus
     fft-poison standing in for kernel-poison on the transform path *)
  let expected =
    List.length
      (List.sort_uniq compare
         (List.map Inject.name (Inject.all @ Inject.fft_faults)))
  in
  Alcotest.(check int) "all fault classes across both paths dumped" expected
    (Hashtbl.length seen)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "ccc_fault"
    [
      ( "pool",
        [
          Alcotest.test_case "jobs = nodes + 3 propagates failures" `Quick
            test_pool_overcommit;
          Alcotest.test_case "lowest node wins at every jobs" `Quick
            test_pool_error_deterministic;
        ] );
      ( "inject",
        [
          Alcotest.test_case "fault names roundtrip" `Quick test_fault_names;
          Alcotest.test_case "bit-flip caught by halo guard" `Quick
            (test_halo_fault Inject.Bit_flip);
          Alcotest.test_case "halo-drop caught by halo guard" `Quick
            (test_halo_fault Inject.Halo_drop);
          Alcotest.test_case "halo-duplicate caught by halo guard" `Quick
            (test_halo_fault Inject.Halo_duplicate);
          Alcotest.test_case "phase-skip caught by output check" `Quick
            test_phase_skip;
          Alcotest.test_case "kernel-poison caught by sandbox re-proof" `Quick
            test_kernel_poison;
          Alcotest.test_case "pool-death surfaces and retries clean" `Quick
            test_pool_death;
          Alcotest.test_case "grid checksum discriminates" `Quick
            test_grid_checksum;
        ] );
      ( "engine",
        [
          Alcotest.test_case "clean run completes, counters silent" `Quick
            test_guarded_clean;
          Alcotest.test_case "one-shot fault retries to completion" `Quick
            test_guarded_transient;
          Alcotest.test_case "persistent fault degrades to reference" `Quick
            test_guarded_degrades;
          Alcotest.test_case "Too_small stays an error value" `Quick
            test_guarded_too_small;
        ] );
      ( "conformance",
        [
          Alcotest.test_case "kill dumps name the fault class" `Quick
            test_kill_dumps_name_faults;
        ] );
    ]
