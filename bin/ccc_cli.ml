(* The command-line driver for the convolution compiler.

   ccc compile  FILE        -- compile a Fortran subroutine (or, with
                               --defstencil, a Lisp form) and print the
                               compilation report or diagnostics
   ccc run      FILE        -- compile and execute on synthetic data
   ccc estimate FILE        -- predicted performance across subgrid sizes
   ccc lint                 -- standalone analyzer over compiled plans
   ccc gallery              -- the built-in patterns, with pictures *)

open Cmdliner

let read_file path =
  if path = "-" then In_channel.input_all stdin
  else In_channel.with_open_text path In_channel.input_all

(* ------------------------------------------------------------------ *)
(* Shared arguments *)

let file_arg =
  let doc = "Input file containing the stencil subroutine ('-' for stdin)." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE" ~doc)

let defstencil_flag =
  let doc = "Treat the input as a Lisp defstencil form (the version-1 \
             front end) instead of a Fortran subroutine." in
  Arg.(value & flag & info [ "defstencil"; "lisp" ] ~doc)

let statement_flag =
  let doc = "Treat the input as a bare assignment statement rather than a \
             full SUBROUTINE." in
  Arg.(value & flag & info [ "statement" ] ~doc)

let nodes_arg =
  let doc = "Node grid as ROWSxCOLS (default 4x4, the paper's 16-node test \
             machine; the full CM-2 is 32x64)." in
  Arg.(value & opt string "4x4" & info [ "nodes" ] ~doc)

let tuned_flag =
  let doc = "Use the strength-reduced (7 Dec 90) run-time library model." in
  Arg.(value & flag & info [ "tuned" ] ~doc)

let jobs_arg =
  let doc = "Run the host-side per-node loops across $(docv) domains \
             (default 1, fully sequential).  Results are bit-identical \
             for every value; only host wall-clock changes." in
  Arg.(value & opt int 1 & info [ "jobs" ] ~docv:"N" ~doc)

let check_jobs jobs =
  if jobs < 1 then begin
    prerr_endline "ccc: --jobs must be at least 1";
    exit 2
  end

let parse_nodes spec =
  match String.split_on_char 'x' (String.lowercase_ascii spec) with
  | [ r; c ] -> begin
      match (int_of_string_opt r, int_of_string_opt c) with
      | Some rows, Some cols when rows > 0 && cols > 0 -> Ok (rows, cols)
      | _ -> Error (`Msg ("bad node grid: " ^ spec))
    end
  | _ -> Error (`Msg ("bad node grid: " ^ spec))

let config_of ~nodes ~tuned =
  match parse_nodes nodes with
  | Error (`Msg m) -> Error m
  | Ok (rows, cols) ->
      let config = Ccc.Config.with_nodes ~rows ~cols Ccc.Config.default in
      Ok (if tuned then Ccc.Config.tuned_runtime config else config)

let compile_input ?obs config ~defstencil ~statement source =
  if defstencil then Ccc.compile_defstencil ?obs config source
  else if statement then Ccc.compile_fortran_statement ?obs config source
  else Ccc.compile_fortran ?obs config source

let or_die = function
  | Ok v -> v
  | Error msg ->
      prerr_endline msg;
      exit 1

(* The one place a request outcome maps to a process exit code (PR 7):
   success and degraded runs exit 0, refusals 1, shed requests 3;
   usage errors keep cmdliner's 2.  Every subcommand that prints a
   rejection funnels through [die_reject], so the codes cannot drift
   between subcommands. *)
let die_outcome o = exit (Ccc.Outcome.exit_code o)

let die_reject e =
  prerr_endline (Ccc.error_to_string e);
  die_outcome (Ccc.Outcome.refused e)

(* --trace FILE: record the full span tree and write it as Chrome
   trace_event JSON (loadable in chrome://tracing or Perfetto). *)
let trace_arg =
  let doc = "Write the run's span trace as Chrome trace_event JSON to \
             $(docv) (open in chrome://tracing or Perfetto)." in
  Arg.(value & opt (some string) None
       & info [ "trace" ] ~docv:"FILE" ~doc)

let obs_of_trace = Option.map (fun _path -> Ccc.Obs.create ())

let write_trace trace obs =
  match (trace, obs) with
  | Some path, Some o ->
      Out_channel.with_open_text path (fun oc ->
          Out_channel.output_string oc
            (Ccc.Trace.to_chrome_json o.Ccc.Obs.trace));
      Printf.printf "trace: %d spans written to %s\n"
        (Ccc.Trace.event_count o.Ccc.Obs.trace)
        path
  | _ -> ()

(* ------------------------------------------------------------------ *)
(* compile *)

let fused_flag =
  let doc = "Use the multi-source (fused) compiler: terms may shift \
             different arrays, as in the ten-term Gordon Bell statement. \
             Implies --statement." in
  Arg.(value & flag & info [ "fused" ] ~doc)

let compile_cmd =
  let run file defstencil statement fused nodes tuned render listing =
    let config = or_die (config_of ~nodes ~tuned) in
    let source = read_file file in
    if fused then begin
      match Ccc.compile_fortran_statement_multi config source with
      | Error e ->
          die_reject e
      | Ok f ->
          print_endline (Ccc.fused_report f);
          if listing then
            Format.printf "%a@." Ccc.Plan.pp_listing (Ccc.Compile.fused_widest f)
    end
    else
      match compile_input config ~defstencil ~statement source with
      | Error e ->
          die_reject e
      | Ok compiled ->
          print_endline (Ccc.report compiled);
          if render then begin
            let p = compiled.Ccc.Compile.pattern in
            print_endline "pattern:";
            print_endline (Ccc.Render.pattern p);
            let widest = Ccc.Compile.widest compiled in
            Printf.printf "multistencil (width %d):\n" widest.Ccc.Plan.width;
            print_endline
              (Ccc.Render.multistencil (Ccc.Plan.primary_multistencil widest))
          end;
          if listing then
            Format.printf "%a@." Ccc.Plan.pp_listing
              (Ccc.Compile.widest compiled)
  in
  let render_flag =
    Arg.(value & flag
         & info [ "render" ] ~doc:"Also draw the stencil and multistencil.")
  in
  let listing_flag =
    Arg.(value & flag
         & info [ "listing" ]
             ~doc:"Dump the widest plan's dynamic-part listing (the \
                   register-access table loaded into sequencer scratch \
                   memory).")
  in
  Cmd.v
    (Cmd.info "compile" ~doc:"Compile a stencil and print the report")
    Term.(
      const run $ file_arg $ defstencil_flag $ statement_flag $ fused_flag
      $ nodes_arg $ tuned_flag $ render_flag $ listing_flag)

(* ------------------------------------------------------------------ *)
(* run *)

let synthetic_env ~rows ~cols names =
  List.mapi
    (fun i n ->
      ( n,
        Ccc.Grid.init ~rows ~cols (fun r c ->
            sin (float_of_int ((r * (i + 3)) + c) /. 9.0)) ))
    names

let pattern_env_names pattern =
  Ccc.Pattern.source_var pattern
  :: List.filter_map
       (fun t -> Ccc.Coeff.array_name t.Ccc.Tap.coeff)
       (Ccc.Pattern.taps pattern)
  @ (match Ccc.Pattern.bias pattern with
    | Some c -> Option.to_list (Ccc.Coeff.array_name c)
    | None -> [])

(* Recognition without resource allocation: the transform path serves
   dense stencils the compiler rejects, so the dense fallthrough needs
   the pattern even when compilation cannot produce a plan. *)
let recognize_input ~defstencil ~statement source =
  try
    if defstencil then
      Ccc.Recognize.subroutine
        (Ccc.Defstencil.to_subroutine (Ccc.Defstencil.parse source))
    else if statement then
      Ccc.Recognize.statement (Ccc.Parser.parse_statement source)
    else Ccc.Recognize.subroutine (Ccc.Parser.parse_subroutine source)
  with _ -> Error []

let backend_arg =
  let doc =
    "Execution backend: $(b,auto) picks compiled multistencil or the \
     transform (FFT) path by predicted cycles (and falls through to the \
     transform path when no width compiles), $(b,compiled) forces the \
     multistencil and keeps dense kernels as resource rejections, \
     $(b,fft) forces the transform path."
  in
  Arg.(value & opt string "auto" & info [ "backend" ] ~docv:"BACKEND" ~doc)

let run_cmd =
  let run file defstencil statement fused nodes tuned rows cols iterations
      simulate jobs backend trace =
    let config = or_die (config_of ~nodes ~tuned) in
    check_jobs jobs;
    let backend =
      match Ccc.Exec.backend_of_string backend with
      | Some b -> b
      | None ->
          Printf.eprintf
            "ccc run: unknown backend %S (one of: auto, compiled, fft)\n"
            backend;
          exit 2
    in
    if simulate && backend = Ccc.Exec.Force_fft then begin
      prerr_endline
        "ccc run: --simulate drives the cycle-accurate compiled path \
         (use --backend auto or compiled)";
      exit 2
    end;
    let source = read_file file in
    let mode = if simulate then Ccc.Exec.Simulate else Ccc.Exec.Fast in
    let obs = obs_of_trace trace in
    (* The transform path only accepts spatially uniform coefficients,
       so its synthetic environment keeps the compiled path's source
       grid and holds every coefficient array at a per-name constant. *)
    let fft_env ~rows ~cols pattern =
      let src = Ccc.Pattern.source_var pattern in
      List.mapi
        (fun i n ->
          ( n,
            if n = src then
              Ccc.Grid.init ~rows ~cols (fun r c ->
                  sin (float_of_int ((r * (i + 3)) + c) /. 9.0))
            else Ccc.Grid.constant ~rows ~cols (0.25 +. (float_of_int i /. 16.0))
          ))
        (pattern_env_names pattern)
    in
    let run_fft_backend reason pattern =
      Printf.printf "backend: fft (%s)\n" reason;
      let env = fft_env ~rows ~cols pattern in
      let machine = Ccc.machine config in
      let pool = if jobs > 1 then Some (Ccc.Pool.create ~jobs) else None in
      Fun.protect ~finally:(fun () -> Option.iter Ccc.Pool.shutdown pool)
      @@ fun () ->
      let { Ccc.Exec.output; stats } =
        Ccc.Exec.run_fft ?obs ?pool ~iterations machine pattern env
      in
      let expected = Ccc.Reference.apply pattern env in
      Format.printf "%a@." Ccc.Stats.pp stats;
      Printf.printf "max |machine - reference| = %.3e\n"
        (Ccc.Grid.max_abs_diff expected output);
      write_trace trace obs
    in
    if fused then begin
      match Ccc.compile_fortran_statement_multi ?obs config source with
      | Error e ->
          die_reject e
      | Ok f ->
          let multi = f.Ccc.Compile.multi in
          let env =
            synthetic_env ~rows ~cols (Ccc.Multi.referenced_arrays multi)
          in
          let { Ccc.Exec.output; stats } =
            Ccc.apply_fused ?obs ~mode ~iterations ~jobs config f env
          in
          let expected = Ccc.Exec.reference_fused multi env in
          Format.printf "%a@." Ccc.Stats.pp stats;
          Printf.printf "max |machine - reference| = %.3e\n"
            (Ccc.Grid.max_abs_diff expected output);
          write_trace trace obs
    end
    else
      match compile_input ?obs config ~defstencil ~statement source with
      | Error (Ccc.Resource_error _ as e)
        when backend <> Ccc.Exec.Force_compiled -> (
          (* the dense fallthrough: no width fits registers, but the
             transform path does not care about tap count *)
          match recognize_input ~defstencil ~statement source with
          | Ok pattern ->
              run_fft_backend "auto: no workable compiled width" pattern
          | Error _ -> die_reject e)
      | Error e ->
          die_reject e
      | Ok compiled -> (
          let pattern = compiled.Ccc.Compile.pattern in
          let choice =
            if simulate then `Compiled
            else
              Ccc.Exec.select_backend ~backend
                ~sub_rows:(rows / config.Ccc.Config.node_rows)
                ~sub_cols:(cols / config.Ccc.Config.node_cols)
                config (Some compiled)
          in
          match choice with
          | `Fft ->
              run_fft_backend
                (match backend with
                | Ccc.Exec.Force_fft -> "forced"
                | _ -> "auto: model predicts transform cheaper")
                pattern
          | `Compiled ->
              let env = synthetic_env ~rows ~cols (pattern_env_names pattern) in
              let { Ccc.Exec.output; stats } =
                Ccc.apply ?obs ~mode ~iterations ~jobs config compiled env
              in
              let expected = Ccc.Reference.apply pattern env in
              Format.printf "%a@." Ccc.Stats.pp stats;
              Printf.printf "max |machine - reference| = %.3e\n"
                (Ccc.Grid.max_abs_diff expected output);
              write_trace trace obs)
  in
  let rows_arg =
    Arg.(value & opt int 64 & info [ "rows" ] ~doc:"Global array rows.")
  in
  let cols_arg =
    Arg.(value & opt int 64 & info [ "cols" ] ~doc:"Global array columns.")
  in
  let iters_arg =
    Arg.(value & opt int 1 & info [ "iterations" ] ~doc:"Timed iterations.")
  in
  let simulate_flag =
    Arg.(value & flag
         & info [ "simulate" ]
             ~doc:"Run the cycle-accurate microcode interpreter instead of \
                   the fast inner loop.")
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Compile and execute a stencil on synthetic data")
    Term.(
      const run $ file_arg $ defstencil_flag $ statement_flag $ fused_flag
      $ nodes_arg $ tuned_flag $ rows_arg $ cols_arg $ iters_arg
      $ simulate_flag $ jobs_arg $ backend_arg $ trace_arg)

(* ------------------------------------------------------------------ *)
(* estimate *)

let estimate_cmd =
  let run file defstencil statement nodes tuned =
    let config = or_die (config_of ~nodes ~tuned) in
    match compile_input config ~defstencil ~statement (read_file file) with
    | Error e ->
        die_reject e
    | Ok compiled ->
        Printf.printf "%-10s | %10s %10s %12s\n" "subgrid" "Mflops"
          "Gflops" "Gflops@2048";
        List.iter
          (fun (r, c) ->
            match
              Ccc.Exec.estimate ~iterations:100 ~sub_rows:r ~sub_cols:c config
                compiled
            with
            | stats ->
                Printf.printf "%4dx%-5d | %10.1f %10.2f %12.2f\n" r c
                  (Ccc.Stats.mflops stats) (Ccc.Stats.gflops stats)
                  (Ccc.Stats.extrapolate stats ~nodes:2048)
            | exception Ccc.Exec.Too_small m ->
                Printf.printf "%4dx%-5d | %s\n" r c m)
          [ (16, 16); (32, 32); (64, 64); (64, 128); (128, 128); (128, 256);
            (256, 256) ]
  in
  Cmd.v
    (Cmd.info "estimate"
       ~doc:"Predicted performance of a stencil across subgrid sizes")
    Term.(
      const run $ file_arg $ defstencil_flag $ statement_flag $ nodes_arg
      $ tuned_flag)

(* ------------------------------------------------------------------ *)
(* trace: a cycle-by-cycle microcode trace on a sandbox node *)

let trace_cmd =
  let run file defstencil statement nodes tuned width lines =
    let config = or_die (config_of ~nodes ~tuned) in
    match compile_input config ~defstencil ~statement (read_file file) with
    | Error e ->
        die_reject e
    | Ok compiled ->
        List.iter print_endline (Ccc.Exec.trace ?width ~lines config compiled)
  in
  let width_arg =
    Arg.(value & opt (some int) None
         & info [ "width" ] ~doc:"Trace the plan of this strip width.")
  in
  let lines_arg =
    Arg.(value & opt int 3 & info [ "lines" ] ~doc:"Half-strip height.")
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:"Cycle-by-cycle issue trace of one half-strip on a sandbox node")
    Term.(
      const run $ file_arg $ defstencil_flag $ statement_flag $ nodes_arg
      $ tuned_flag $ width_arg $ lines_arg)

(* ------------------------------------------------------------------ *)
(* program: whole-file compilation with directive feedback *)

let program_cmd =
  let run file nodes tuned =
    let config = or_die (config_of ~nodes ~tuned) in
    match Ccc.compile_program config (read_file file) with
    | Error e ->
        die_reject e
    | Ok units ->
        let failures = ref 0 in
        List.iter
          (fun (u : Ccc.program_unit) ->
            match u.Ccc.outcome with
            | Ok compiled ->
                Printf.printf
                  "%s: compiled by the convolution module (widths %s)%s\n"
                  u.Ccc.unit_name
                  (String.concat ","
                     (List.map
                        (fun p -> string_of_int p.Ccc.Plan.width)
                        compiled.Ccc.Compile.plans))
                  (if u.Ccc.flagged then "" else "  [unflagged candidate]")
            | Error e ->
                if u.Ccc.flagged then begin
                  (* The directive justifies loud feedback (section 6). *)
                  incr failures;
                  Printf.printf
                    "%s: WARNING: flagged !CCC$ STENCIL but not processed:\n%s\n"
                    u.Ccc.unit_name (Ccc.error_to_string e)
                end
                else
                  Printf.printf "%s: general code path (%s)\n" u.Ccc.unit_name
                    (match e with
                    | Ccc.Rejected _ -> "not a stencil assignment"
                    | Ccc.Resource_error _ -> "resource limits"
                    | Ccc.Parse_error m -> m
                    | Ccc.Too_small m | Ccc.Invalid_batch m -> m))
          units;
        if !failures > 0 then exit 1
  in
  Cmd.v
    (Cmd.info "program"
       ~doc:
         "Compile every subroutine in a file, reporting which ones the \
          convolution module takes and warning about flagged statements it \
          cannot handle")
    Term.(const run $ file_arg $ nodes_arg $ tuned_flag)

(* ------------------------------------------------------------------ *)
(* lint: run the standalone plan analyzer over compiled plans *)

let lint_cmd =
  let lint_plan config ~ok name (plan : Ccc.Plan.t) =
    match Ccc.Verify.verify config plan with
    | [] ->
        Printf.printf "%s width %d: clean (%d registers, unroll %d, %d scratch words)\n"
          name plan.Ccc.Plan.width plan.Ccc.Plan.registers_used
          plan.Ccc.Plan.unroll plan.Ccc.Plan.dynamic_words
    | findings ->
        ok := false;
        List.iter
          (fun f ->
            Printf.printf "%s width %d: %s\n" name plan.Ccc.Plan.width
              (Ccc.Finding.to_string f))
          findings
  in
  let keep width w = match width with None -> true | Some w' -> w = w' in
  let lint_plans config ~ok ~width name plans rejected =
    List.iter
      (fun (plan : Ccc.Plan.t) ->
        if keep width plan.Ccc.Plan.width then lint_plan config ~ok name plan)
      plans;
    List.iter
      (fun (w, f) ->
        if keep width w then
          Printf.printf "%s width %d: %s\n" name w (Ccc.Finding.to_string f))
      rejected
  in
  let lint_pattern config ~ok ~width name p =
    match Ccc.Compile.compile config p with
    | Error rejections ->
        ok := false;
        Printf.printf "%s: %s\n" name (Ccc.Compile.no_workable rejections)
    | Ok c ->
        lint_plans config ~ok ~width name c.Ccc.Compile.plans
          c.Ccc.Compile.rejected
  in
  let lint_fused_seismic config ~ok ~width =
    match Ccc.Compile.compile_fused config (Ccc.Seismic.fused_kernel ()) with
    | Error rejections ->
        ok := false;
        Printf.printf "seismic-fused: %s\n" (Ccc.Compile.no_workable rejections)
    | Ok f ->
        lint_plans config ~ok ~width "seismic-fused" f.Ccc.Compile.fused_plans
          f.Ccc.Compile.fused_rejected
  in
  let run pattern width all nodes tuned =
    let config = or_die (config_of ~nodes ~tuned) in
    (match width with
    | Some w when not (List.mem w Ccc.Compile.candidate_widths) ->
        prerr_endline
          ("no such multistencil width: " ^ string_of_int w
         ^ " (candidates: "
          ^ String.concat ", "
              (List.map string_of_int Ccc.Compile.candidate_widths)
          ^ ")");
        exit 2
    | _ -> ());
    let ok = ref true in
    (match (all, pattern) with
    | true, _ ->
        List.iter
          (fun (name, p) -> lint_pattern config ~ok ~width name p)
          (Ccc.Pattern.gallery ());
        lint_fused_seismic config ~ok ~width
    | false, Some name -> begin
        match List.assoc_opt name (Ccc.Pattern.gallery ()) with
        | Some p -> lint_pattern config ~ok ~width name p
        | None when name = "seismic-fused" -> lint_fused_seismic config ~ok ~width
        | None ->
            prerr_endline
              ("unknown pattern: " ^ name
             ^ " (try one of the gallery names, or seismic-fused)");
            exit 2
      end
    | false, None ->
        prerr_endline "lint: specify --pattern NAME or --all";
        exit 2);
    if not !ok then exit 1
  in
  let pattern_arg =
    Arg.(value & opt (some string) None
         & info [ "pattern" ] ~docv:"NAME"
             ~doc:"Lint the plans of this gallery pattern (or \
                   $(b,seismic-fused) for the ten-term fused kernel).")
  in
  let width_arg =
    Arg.(value & opt (some int) None
         & info [ "width" ] ~doc:"Restrict to this multistencil width.")
  in
  let all_flag =
    Arg.(value & flag
         & info [ "all" ]
             ~doc:"Lint every gallery pattern at every candidate width, plus \
                   the fused seismic kernel.")
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:
         "Re-derive and check every compiled plan with the standalone \
          dataflow analyzer: pipeline hazards, register-file invariants, \
          liveness, coverage and budgets.  Width rejections are reported \
          as findings but are not failures; analyzer findings on an \
          emitted plan exit nonzero (they indicate a compiler bug).")
    Term.(
      const run $ pattern_arg $ width_arg $ all_flag $ nodes_arg $ tuned_flag)

(* ------------------------------------------------------------------ *)
(* batch: several statements through the persistent engine *)

(* One statement per line; a trailing '&' continues on the next line
   (the Fortran fixed-form convention the rest of the tool uses), and
   '!' comment lines and blanks are skipped. *)
let batch_statements text =
  let stmts = ref [] in
  let buf = Buffer.create 64 in
  let flush () =
    let s = String.trim (Buffer.contents buf) in
    Buffer.clear buf;
    if s <> "" then stmts := s :: !stmts
  in
  List.iter
    (fun line ->
      let line = String.trim line in
      if line = "" || line.[0] = '!' then ()
      else if line.[String.length line - 1] = '&' then begin
        Buffer.add_string buf (String.sub line 0 (String.length line - 1));
        Buffer.add_char buf ' '
      end
      else begin
        Buffer.add_string buf line;
        flush ()
      end)
    (String.split_on_char '\n' text);
  flush ();
  List.rev !stmts

let batch_cmd =
  let run file nodes tuned rows cols repeat simulate show_stats jobs trace =
    let config = or_die (config_of ~nodes ~tuned) in
    check_jobs jobs;
    if repeat < 1 then begin
      prerr_endline "batch: --repeat must be at least 1";
      exit 2
    end;
    let stmts = batch_statements (read_file file) in
    if stmts = [] then begin
      prerr_endline "batch: no statements in input";
      exit 2
    end;
    let mode = if simulate then Ccc.Exec.Simulate else Ccc.Exec.Fast in
    let recognize s =
      match Ccc.Parser.parse_statement s with
      | stmt -> begin
          match Ccc.Recognize.statement stmt with
          | Ok p -> p
          | Error diags ->
              die_reject (Ccc.Rejected diags)
        end
      | exception Ccc.Parser.Error { line; message } ->
          die_reject
            (Ccc.Parse_error (Printf.sprintf "line %d: %s" line message))
    in
    let patterns = List.map recognize stmts in
    let pattern_names p =
      Ccc.Pattern.source_var p
      :: List.filter_map
           (fun t -> Ccc.Coeff.array_name t.Ccc.Tap.coeff)
           (Ccc.Pattern.taps p)
      @ (match Ccc.Pattern.bias p with
        | Some c -> Option.to_list (Ccc.Coeff.array_name c)
        | None -> [])
    in
    let names =
      List.fold_left
        (fun acc n -> if List.mem n acc then acc else n :: acc)
        []
        (List.concat_map pattern_names patterns)
      |> List.rev
    in
    let env = synthetic_env ~rows ~cols names in
    let obs = obs_of_trace trace in
    let engine = Ccc.Engine.create ?obs ~jobs config in
    at_exit (fun () -> Ccc.Engine.shutdown engine);
    let last = ref None in
    for _ = 1 to repeat do
      match Ccc.Engine.run_batch ~mode engine patterns env with
      | Ok batch -> last := Some batch
      | Error e ->
          die_reject e
    done;
    let batch = Option.get !last in
    List.iter2
      (fun p (r : Ccc.Exec.result) ->
        let expected = Ccc.Reference.apply p env in
        Printf.printf
          "%s: %d taps, %d compute cycles, max |machine - reference| = %.3e\n"
          (Ccc.Pattern.result_var p) (Ccc.Pattern.tap_count p)
          r.Ccc.Exec.stats.Ccc.Stats.compute_cycles
          (Ccc.Grid.max_abs_diff expected r.Ccc.Exec.output))
      patterns batch.Ccc.Exec.batch_results;
    let bs = batch.Ccc.Exec.batch_stats in
    Format.printf "batch of %d statements:@\n%a@." (List.length patterns)
      Ccc.Stats.pp bs;
    (* What the same statements would have cost as independent calls:
       one halo exchange and one front-end launch each. *)
    let sub_rows = rows / config.Ccc.Config.node_rows in
    let sub_cols = cols / config.Ccc.Config.node_cols in
    let oneshot_comm =
      List.fold_left
        (fun acc p ->
          acc
          + Ccc.Halo.cycles_model ~primitive:Ccc.Halo.Node_level ~sub_rows
              ~sub_cols
              ~pad:(Ccc.Pattern.max_border p)
              ~corners:(Ccc.Pattern.needs_corners p)
              config)
        0 patterns
    in
    let call_s = Ccc.Config.effective_call_s config in
    let oneshot_fe =
      bs.Ccc.Stats.frontend_s
      +. (float_of_int (List.length patterns - 1) *. call_s)
    in
    Printf.printf
      "amortization: comm %d cycles (vs %d one-shot), front end %.6f s (vs \
       %.6f s one-shot)\n"
      bs.Ccc.Stats.comm_cycles oneshot_comm bs.Ccc.Stats.frontend_s oneshot_fe;
    if show_stats then
      Format.printf "%a@." Ccc.Engine.pp_stats (Ccc.Engine.stats engine);
    write_trace trace obs
  in
  let rows_arg =
    Arg.(value & opt int 64 & info [ "rows" ] ~doc:"Global array rows.")
  in
  let cols_arg =
    Arg.(value & opt int 64 & info [ "cols" ] ~doc:"Global array columns.")
  in
  let repeat_arg =
    Arg.(value & opt int 1
         & info [ "repeat" ]
             ~doc:"Run the whole batch this many times through the engine \
                   (repeats hit the plan cache and the standing arena).")
  in
  let simulate_flag =
    Arg.(value & flag
         & info [ "simulate" ]
             ~doc:"Run the cycle-accurate microcode interpreter instead of \
                   the fast inner loop.")
  in
  let stats_flag =
    Arg.(value & flag
         & info [ "stats" ]
             ~doc:"Print the engine's cache, arena and cycle counters.")
  in
  Cmd.v
    (Cmd.info "batch"
       ~doc:
         "Execute several bare assignment statements (one per line, '&' \
          continues) over the same source array through the persistent \
          engine: one halo exchange, one front-end launch, cached plans")
    Term.(
      const run $ file_arg $ nodes_arg $ tuned_flag $ rows_arg $ cols_arg
      $ repeat_arg $ simulate_flag $ stats_flag $ jobs_arg $ trace_arg)

(* ------------------------------------------------------------------ *)
(* profile: the unified-telemetry view of one compile-and-run *)

let profile_cmd =
  let run file defstencil statement nodes tuned rows cols =
    let config = or_die (config_of ~nodes ~tuned) in
    let source = read_file file in
    (* A pinned clock keeps the tree deterministic: span order is
       structural, and every interesting extent is recorded in cycles
       (attributes priced by the analytic model), not host time. *)
    let obs =
      Ccc.Obs.v
        ~trace:(Ccc.Trace.create ~clock:(fun () -> 0.0) ())
        ~metrics:(Ccc.Metrics.create ())
    in
    match compile_input ~obs config ~defstencil ~statement source with
    | Error e ->
        die_reject e
    | Ok compiled ->
        let pattern = compiled.Ccc.Compile.pattern in
        let env = synthetic_env ~rows ~cols (pattern_env_names pattern) in
        let { Ccc.Exec.output = _; stats } =
          Ccc.apply ~obs ~mode:Ccc.Exec.Simulate config compiled env
        in
        print_endline "spans:";
        Format.printf "%a" (Ccc.Trace.pp_tree ~timings:false) obs.Ccc.Obs.trace;
        let sub_rows = rows / config.Ccc.Config.node_rows in
        let sub_cols = cols / config.Ccc.Config.node_cols in
        let b = Ccc.Exec.attribute ~sub_rows ~sub_cols config compiled in
        Format.printf "@\nattribution (%dx%d subgrid per node):@\n%a@."
          sub_rows sub_cols Ccc.Profiler.pp_breakdown b;
        let attributed = Ccc.Profiler.total b.Ccc.Profiler.compute in
        if
          attributed = stats.Ccc.Stats.compute_cycles
          && b.Ccc.Profiler.comm_cycles = stats.Ccc.Stats.comm_cycles
        then
          Printf.printf
            "cross-check: per-phase attribution matches the simulated run\n"
        else begin
          Printf.printf
            "cross-check FAILED: attributed compute %d vs simulated %d, comm \
             %d vs %d\n"
            attributed stats.Ccc.Stats.compute_cycles b.Ccc.Profiler.comm_cycles
            stats.Ccc.Stats.comm_cycles;
          exit 1
        end
  in
  let rows_arg =
    Arg.(value & opt int 64 & info [ "rows" ] ~doc:"Global array rows.")
  in
  let cols_arg =
    Arg.(value & opt int 64 & info [ "cols" ] ~doc:"Global array columns.")
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:
         "Compile and simulate a stencil with full telemetry: the span tree \
          of every pipeline and runtime phase, the per-phase cycle \
          attribution of the paper's Table-1 split, and a cross-check that \
          the attribution matches the cycle-accurate simulation exactly")
    Term.(
      const run $ file_arg $ defstencil_flag $ statement_flag $ nodes_arg
      $ tuned_flag $ rows_arg $ cols_arg)

(* ------------------------------------------------------------------ *)
(* conform: the differential fault-injection conformance matrix *)

let conform_cmd =
  let run nodes tuned seed unguarded trace =
    let config = or_die (config_of ~nodes ~tuned) in
    let obs = obs_of_trace trace in
    let matrix =
      Ccc.Conformance.run ?obs ~seed ~guarded:(not unguarded) config
    in
    Format.printf "%a" Ccc.Conformance.pp matrix;
    write_trace trace obs;
    if not (Ccc.Conformance.passed matrix) then exit 1
  in
  let seed_arg =
    Arg.(
      value & opt int 42
      & info [ "seed" ]
          ~doc:
            "Seed for every injector choice (victim node, cell, row); the \
             whole matrix is deterministic for a fixed seed.")
  in
  let unguarded_flag =
    Arg.(
      value & flag
      & info [ "unguarded" ]
          ~doc:
            "Disable the runtime guards (the negative control): \
             silent-corruption faults must then escape undetected and the \
             command must exit nonzero.")
  in
  Cmd.v
    (Cmd.info "conform"
       ~doc:
         "Run the differential conformance matrix: every gallery stencil at \
          every compiled width down all four execution paths at jobs 1/2/7, \
          clean and under seed-driven fault injection (bit flips, \
          dropped/duplicated halo messages, sequencer phase skips, a \
          poisoned cached kernel, worker-domain death).  Exits nonzero \
          unless every clean cell passes and every injected fault is \
          detected or recovered")
    Term.(
      const run $ nodes_arg $ tuned_flag $ seed_arg $ unguarded_flag
      $ trace_arg)

(* ------------------------------------------------------------------ *)
(* race: the domain-safety analyzer *)

let race_cmd =
  let analyze_log log = Ccc.Race.analyze log @ Ccc.Discipline.check log in
  let pp_findings = List.iter (Format.printf "%a@." Ccc.Finding.pp) in
  let mutation_names () =
    String.concat ", " (List.map Ccc.Race_mutate.name Ccc.Race_mutate.all)
  in
  let run_mutation ~seed ~jobs m =
    analyze_log (Ccc.Race_mutate.mutated ~seed ~jobs m)
  in
  let run nodes tuned seed jobs mutate =
    match mutate with
    | Some "all" ->
        (* The seeded kill matrix: every concurrency mutation must be
           killed by a finding.  Exit nonzero if any survives. *)
        let jobs = max 2 jobs in
        Printf.printf "seeded kill matrix (seed %d, jobs %d):\n" seed jobs;
        let total = List.length Ccc.Race_mutate.all in
        let killed =
          List.fold_left
            (fun killed m ->
              match run_mutation ~seed ~jobs m with
              | [] ->
                  Printf.printf "  %-22s MISSED\n" (Ccc.Race_mutate.name m);
                  killed
              | f :: _ as findings ->
                  Printf.printf "  %-22s KILLED (%s during %s, %d finding%s)\n"
                    (Ccc.Race_mutate.name m)
                    (Ccc.Finding.check_name f.Ccc.Finding.check)
                    (Option.value ~default:"?" f.Ccc.Finding.ctx)
                    (List.length findings)
                    (if List.length findings = 1 then "" else "s");
                  killed + 1)
            0 Ccc.Race_mutate.all
        in
        Printf.printf "%d/%d mutations killed\n" killed total;
        if killed < total then exit 1
    | Some name -> (
        match Ccc.Race_mutate.of_name name with
        | None ->
            Printf.eprintf "ccc race: unknown mutation %S (one of: %s, all)\n"
              name (mutation_names ());
            exit 2
        | Some m -> (
            let jobs = max 2 jobs in
            Printf.printf "mutation %s (seed %d, jobs %d): %s\n"
              (Ccc.Race_mutate.name m) seed jobs (Ccc.Race_mutate.describe m);
            match run_mutation ~seed ~jobs m with
            | [] ->
                print_endline "race: MISSED (0 findings)";
                exit 1
            | findings ->
                pp_findings findings;
                Printf.printf "race: KILLED (%d finding%s)\n"
                  (List.length findings)
                  (if List.length findings = 1 then "" else "s")))
    | None ->
        (* Live clean sweep: the whole conformance clean matrix runs
           under instrumentation, and the analyzer must come back
           empty.  Exit nonzero on any finding or failed cell. *)
        let config = or_die (config_of ~nodes ~tuned) in
        let jobs_list = if jobs > 1 then [ 1; jobs ] else [ 1 ] in
        (* A live serve-scheduler session inside the instrumentation
           window: two genuinely concurrent shard workers (each with a
           resident engine and pool) over a deterministic paused-trace,
           so the serve.* families and the cross-instance namespacing
           of the engine/pool/metrics slots are exercised for real. *)
        let serve_session () =
          (* fully instrumented: a live tracer turns on the per-shard
             span buffers and the window/queue-wait span paths, and
             the flight rings are always recording — the analyzer must
             stay finding-free with all of it live *)
          let t =
            Ccc.Serve.create ~obs:(Ccc.Obs.create ()) ~shards:2
              ~settings:{ Ccc.Engine.default_settings with jobs = max 1 jobs }
              ~paused:true config
          in
          let gallery = Ccc.Pattern.gallery () in
          let cross = List.assoc "cross5" gallery in
          let square = List.assoc "square9" gallery in
          let env_of p = synthetic_env ~rows:32 ~cols:32 (pattern_env_names p) in
          let ec = env_of cross and es = env_of square in
          let tickets =
            List.map (Ccc.Serve.submit t)
              [
                Ccc.Request.v ~tenant:"a" ~env:ec (Ccc.Request.Pattern cross);
                Ccc.Request.v ~tenant:"b" ~env:ec (Ccc.Request.Pattern cross);
                Ccc.Request.v ~tenant:"a" ~env:es (Ccc.Request.Pattern square);
                Ccc.Request.v ~tenant:"b" ~env:es (Ccc.Request.Pattern square);
              ]
          in
          Ccc.Serve.resume t;
          let responses = List.map (Ccc.Serve.wait t) tickets in
          Ccc.Serve.shutdown t;
          List.length
            (List.filter
               (fun (r : Ccc.Serve.response) ->
                 Ccc.Outcome.is_success r.Ccc.Serve.outcome)
               responses)
        in
        Ccc.Access.enable ();
        let matrix =
          Ccc.Conformance.run ~seed ~jobs_list ~with_faults:false config
        in
        let served = serve_session () in
        Ccc.Access.disable ();
        let log = Ccc.Access.events () in
        let findings = analyze_log log in
        Printf.printf "domain-safety: %d access events from %d clean cells \
                       (jobs %s) and a %d-request serve session\n"
          (List.length log)
          (List.length matrix.Ccc.Conformance.cells)
          (String.concat "," (List.map string_of_int jobs_list))
          served;
        let clean_fail = Ccc.Conformance.clean_failures matrix in
        if clean_fail > 0 then
          Printf.printf "clean cells FAILED: %d\n" clean_fail;
        (match findings with
        | [] -> print_endline "race: PASS (0 findings)"
        | findings ->
            pp_findings findings;
            Printf.printf "race: FAIL (%d findings)\n" (List.length findings));
        if findings <> [] || clean_fail > 0 then exit 1
  in
  let seed_arg =
    Arg.(
      value & opt int 42
      & info [ "seed" ]
          ~doc:
            "Seed for the clean matrix's patterns and for the mutation \
             harness's victim choices (deterministic for a fixed seed).")
  in
  let jobs_arg =
    Arg.(
      value & opt int 2
      & info [ "jobs" ]
          ~doc:
            "Pool size for the clean sweep (which also runs jobs 1) and \
             domain count for the mutation model (minimum 2 there).")
  in
  let mutate_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "mutate" ] ~docv:"MUTATION"
          ~doc:
            "Analyze a seeded concurrency mutation instead of the live \
             runtime: one of dropped-metrics-lock, overlapping-chunks, \
             deatomized-counter, arena-alias, lost-signal, \
             cache-write-bypass, or $(b,all) for the whole kill matrix.  \
             The mutation must be killed (reported as a finding); exit \
             nonzero if it survives.")
  in
  Cmd.v
    (Cmd.info "race"
       ~doc:
         "Run the domain-safety analyzer: instrument the runtime's shared \
          state, execute the clean conformance matrix, and check the access \
          log for data races (happens-before), ownership violations, lock \
          discipline and chunk-partition overlaps.  Exits nonzero on any \
          finding.  With $(b,--mutate), analyzes a seeded concurrency \
          mutation instead and exits nonzero unless the mutation is killed")
    Term.(const run $ nodes_arg $ tuned_flag $ seed_arg $ jobs_arg
          $ mutate_arg)

(* ------------------------------------------------------------------ *)
(* serve: the multi-tenant scheduler on a canned, deterministic trace *)

(* The canned demo session, shared by serve --demo, stats and top:
   every request is submitted while the scheduler is paused, so each
   shard's one dispatch window is a pure function of the trace; the
   injected clock counts calls (no wall time reaches any output).
   With [~tracing:true] the coordinator and every shard record spans
   on the same counting clock, so the merged lanes carry coherent
   timestamps. *)
let serve_demo_session ~tracing config =
  let tick = Atomic.make 0 in
  (* Only coordinator reads advance the count: the two shard workers
     race for clock reads, so letting them tick would make every
     queued_us (and so the latency quantiles the cram suite pins)
     depend on the domain interleaving.  Workers instead observe the
     count frozen where admission left it — all requests are submitted
     while the scheduler is paused, so every worker-side read lands
     after the last coordinator tick and the demo stays a pure
     function of the trace. *)
  let main = Domain.self () in
  let clock () =
    if Domain.self () = main then float_of_int (Atomic.fetch_and_add tick 1)
    else float_of_int (Atomic.get tick)
  in
  let obs =
    Ccc.Obs.v
      ~trace:(if tracing then Ccc.Trace.create ~clock () else Ccc.Trace.disabled)
      ~metrics:(Ccc.Metrics.create ())
  in
  let t = Ccc.Serve.create ~obs ~shards:2 ~clock ~paused:true config in
  let gallery = Ccc.Pattern.gallery () in
  let pat name = List.assoc name gallery in
  let env_of p = synthetic_env ~rows:32 ~cols:32 (pattern_env_names p) in
  let cross = pat "cross5" in
  let cross_env = env_of cross in
  (* a second, distinct stencil over the same source array and env:
     lands in the same window group and batches when its fingerprint
     routes to the same shard *)
  let tilt =
    Ccc.Pattern.create
      [
        Ccc.Tap.make (Ccc.Offset.make ~drow:0 ~dcol:0) (Ccc.Coeff.Array "C1");
        Ccc.Tap.make (Ccc.Offset.make ~drow:(-1) ~dcol:1)
          (Ccc.Coeff.Array "C2");
      ]
  in
  let requests =
    [
      ("alice", "cross5", Ccc.Request.v ~tenant:"alice" ~env:cross_env
                            (Ccc.Request.Pattern cross));
      ("bob", "square9",
       (let p = pat "square9" in
        Ccc.Request.v ~tenant:"bob" ~env:(env_of p) (Ccc.Request.Pattern p)));
      ("alice", "cross9",
       (let p = pat "cross9" in
        Ccc.Request.v ~tenant:"alice" ~env:(env_of p) (Ccc.Request.Pattern p)));
      ("bob", "diamond13",
       (let p = pat "diamond13" in
        Ccc.Request.v ~tenant:"bob" ~env:(env_of p) (Ccc.Request.Pattern p)));
      ("carol", "cross5", Ccc.Request.v ~tenant:"carol" ~env:cross_env
                            (Ccc.Request.Pattern cross));
      ("carol", "cross5", Ccc.Request.v ~tenant:"carol" ~env:cross_env
                            (Ccc.Request.Pattern cross));
      ("carol", "cross5.key",
       Ccc.Request.v ~tenant:"carol" ~env:cross_env
         (Ccc.Request.Key (Ccc.Serve.key_of t cross)));
      ("alice", "tilt", Ccc.Request.v ~tenant:"alice" ~env:cross_env
                          (Ccc.Request.Pattern tilt));
      ("dave", "garbage",
       Ccc.Request.v ~tenant:"dave" ~env:[]
         (Ccc.Request.Text "R = NOT A STENCIL ("));
      ("eve", "too-late",
       Ccc.Request.v ~deadline_us:(-1.0) ~tenant:"eve" ~env:cross_env
         (Ccc.Request.Pattern cross));
    ]
  in
  let tickets =
    List.map (fun (_, _, r) -> Ccc.Serve.submit t r) requests
  in
  Ccc.Serve.resume t;
  let rows =
    List.map2
      (fun (tenant, label, _) tk -> (tenant, label, Ccc.Serve.wait t tk))
      requests tickets
  in
  Ccc.Serve.shutdown t;
  (t, obs, rows)

let serve_cmd =
  let run nodes tuned demo trace =
    if not demo then begin
      prerr_endline
        "ccc serve: pass --demo (the scheduler has no network front end)";
      exit 2
    end;
    let config = or_die (config_of ~nodes ~tuned) in
    let t, _obs, rows = serve_demo_session ~tracing:(trace <> None) config in
    List.iter
      (fun (tenant, label, (r : Ccc.Serve.response)) ->
        if r.Ccc.Serve.window >= 0 then
          Printf.printf "%-6s %-10s [shard %d window %d batched %d coalesced %d] %s\n"
            tenant label r.Ccc.Serve.shard r.Ccc.Serve.window
            r.Ccc.Serve.batched r.Ccc.Serve.coalesced
            (Ccc.Outcome.to_string r.Ccc.Serve.outcome)
        else
          Printf.printf "%-6s %-10s [at admission] %s\n" tenant label
            (Ccc.Outcome.to_string r.Ccc.Serve.outcome))
      rows;
    Format.printf "%a@." Ccc.Serve.pp_stats (Ccc.Serve.stats t);
    match trace with
    | None -> ()
    | Some path ->
        let lanes = Ccc.Serve.trace_lanes t in
        Out_channel.with_open_text path (fun oc ->
            Out_channel.output_string oc
              (Ccc.Trace.to_chrome_json_lanes lanes));
        Printf.printf "trace: %d spans in %d lanes written to %s\n"
          (List.fold_left
             (fun acc l -> acc + Ccc.Trace.lane_span_count l)
             0 lanes)
          (List.length lanes) path
  in
  let demo_flag =
    Arg.(value & flag
         & info [ "demo" ]
             ~doc:"Run the canned multi-tenant trace: five tenants, \
                   duplicate and batchable stencils, a catalog-key \
                   request, a refusal and a missed deadline.")
  in
  let serve_trace_arg =
    Arg.(
      value & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:
            "Write the session's merged cross-domain trace as Chrome \
             trace_event JSON to $(docv): one named lane for the \
             scheduler and one per shard, queue-wait spans separate \
             from dispatch windows and engine phases (open in Perfetto).")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "The multi-tenant stencil service: an admission/queueing \
          scheduler sharding requests across resident engines, coalescing \
          fingerprint-identical requests, fair-queueing tenants and \
          shedding load with structured outcomes")
    Term.(const run $ nodes_arg $ tuned_flag $ demo_flag $ serve_trace_arg)

(* ------------------------------------------------------------------ *)
(* stats / top: the serve-plane metrics surface over the demo session *)

let stats_cmd =
  let run nodes tuned demo =
    if not demo then begin
      prerr_endline
        "ccc stats: pass --demo (there is no live scheduler to scrape)";
      exit 2
    end;
    let config = or_die (config_of ~nodes ~tuned) in
    let t, _obs, _rows = serve_demo_session ~tracing:false config in
    print_string (Ccc.Serve.prometheus t)
  in
  let demo_flag =
    Arg.(value & flag
         & info [ "demo" ]
             ~doc:"Scrape the canned demo session (the only scheduler \
                   this process can reach).")
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:
         "Prometheus-style text exposition of a serve session: scheduler \
          counters, per-tenant families with tenant labels, latency \
          histograms with log-spaced buckets, and per-shard engine \
          registries labeled shard=\"N\"")
    Term.(const run $ nodes_arg $ tuned_flag $ demo_flag)

let top_cmd =
  let run nodes tuned once =
    if not once then begin
      prerr_endline
        "ccc top: pass --once (there is no live scheduler to watch)";
      exit 2
    end;
    let config = or_die (config_of ~nodes ~tuned) in
    let t, obs, _rows = serve_demo_session ~tracing:false config in
    let s = Ccc.Serve.stats t in
    (* per-tenant families live in the scheduler's registry under
       serve.tenant.<name>.<field>; handles are found by name *)
    let mtr = obs.Ccc.Obs.metrics in
    let tenant_counter name field =
      Ccc.Metrics.Counter.value
        (Ccc.Metrics.counter mtr ("serve.tenant." ^ name ^ "." ^ field))
    in
    let tenant_gauge name field =
      Ccc.Metrics.Gauge.value
        (Ccc.Metrics.gauge mtr ("serve.tenant." ^ name ^ "." ^ field))
    in
    Printf.printf "serve top — %d shards, window %d, queue depth %d\n"
      s.Ccc.Serve.shards_ s.Ccc.Serve.max_batch s.Ccc.Serve.queue_depth;
    Printf.printf
      "outcomes   %d completed  %d degraded  %d refused  %d shed  (%d windows)\n"
      s.Ccc.Serve.completed s.Ccc.Serve.degraded s.Ccc.Serve.refused
      s.Ccc.Serve.shed s.Ccc.Serve.windows;
    let q label = function
      | None -> ()
      | Some (p50, p95, p99) ->
          Printf.printf "latency    %s p50 %.0f  p95 %.0f  p99 %.0f us\n"
            label p50 p95 p99
    in
    q "queued " s.Ccc.Serve.queued_q;
    q "service" s.Ccc.Serve.service_q;
    Printf.printf "%-8s %9s %8s %6s %6s %8s %7s\n" "TENANT" "ADMITTED"
      "SERVED" "COAL" "SHED" "DLMISS" "DEPTH";
    List.iter
      (fun (name, served) ->
        Printf.printf "%-8s %9d %8d %6d %6d %8d %7.0f\n" name
          (tenant_counter name "admitted")
          served
          (tenant_counter name "coalesced")
          (tenant_counter name "shed")
          (tenant_counter name "deadline_missed")
          (tenant_gauge name "queue_depth"))
      s.Ccc.Serve.tenants
  in
  let once_flag =
    Arg.(value & flag
         & info [ "once" ]
             ~doc:"Render one snapshot of the canned demo session and \
                   exit (the only mode without a live scheduler).")
  in
  Cmd.v
    (Cmd.info "top"
       ~doc:
         "A per-tenant SLO snapshot of a serve session: outcome counts, \
          latency quantiles, and one row per tenant (admitted, served, \
          coalesced, shed, deadline-missed, live queue depth)")
    Term.(const run $ nodes_arg $ tuned_flag $ once_flag)

(* ------------------------------------------------------------------ *)
(* gallery *)

let gallery_cmd =
  let run () =
    List.iter
      (fun (name, p) ->
        Printf.printf "%s: %d taps, %d flops/point, borders %s\n%s\n" name
          (Ccc.Pattern.tap_count p)
          (Ccc.Pattern.useful_flops_per_point p)
          (Ccc.Render.borders p) (Ccc.Render.pattern p);
        print_endline (Ccc.Pattern.to_fortran p);
        print_newline ())
      (Ccc.Pattern.gallery ())
  in
  Cmd.v
    (Cmd.info "gallery" ~doc:"Show the built-in stencil patterns")
    Term.(const run $ const ())

let () =
  let info =
    Cmd.info "ccc" ~version:"1.0.0"
      ~doc:"The Connection Machine Convolution Compiler (simulated CM-2)"
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [ compile_cmd; run_cmd; estimate_cmd; trace_cmd; profile_cmd;
            program_cmd; lint_cmd; batch_cmd; conform_cmd; race_cmd;
            serve_cmd; stats_cmd; top_cmd; gallery_cmd ]))
