(* The published measurements this reproduction targets.

   Table 1 of the paper (section 7) groups its rows by stencil
   pattern; the pattern pictures are illegible in the available scan,
   so the assignment of groups to shapes is reconstructed in DESIGN.md
   section 2 from the surrounding prose and from flop-count
   self-consistency (Mflops x elapsed seconds / points / iterations
   recovers the flops-per-point of each group: 9, 17, 17, 25, 25).

   All rows ran on a 16-node single-board machine at 7 MHz except the
   2,048-node production rows.  "Subgrid" is the per-node array
   block. *)

type row = {
  pattern : string;  (** gallery name *)
  tuned : bool;  (** 7 Dec 90 rows: strength-reduced run-time library *)
  sub_rows : int;
  sub_cols : int;
  iterations : int;
  elapsed_s : float;
  mflops : float;  (** measured, 16 nodes *)
  extrapolated_gflops : float;  (** paper's 2,048-node column *)
  suspect : bool;
      (** the first row's Mflops and extrapolation are internally
          inconsistent in the source scan (44.6 x 4.54s does not match
          9 flops/point, and 5.31/44.6 is not the x128 used
          everywhere else); it is reproduced but excluded from error
          scoring *)
}

let mk ?(tuned = false) ?(suspect = false) pattern sub_rows sub_cols iterations
    elapsed_s mflops extrapolated_gflops =
  {
    pattern;
    tuned;
    sub_rows;
    sub_cols;
    iterations;
    elapsed_s;
    mflops;
    extrapolated_gflops;
    suspect;
  }

let table1 : row list =
  [
    (* Group 1: the 5-point cross (9 flops/point). *)
    mk ~suspect:true "cross5" 64 128 250 4.54 44.6 5.31;
    mk "cross5" 128 256 100 6.78 69.5 8.90;
    mk "cross5" 256 256 100 13.00 72.8 9.29;
    (* Group 2: the 9-point 3x3 box (17 flops/point). *)
    mk "square9" 64 64 500 8.10 68.8 8.80;
    mk "square9" 64 128 250 6.07 91.7 11.74;
    mk "square9" 128 128 250 12.40 89.8 11.50;
    mk "square9" 128 256 100 10.26 86.7 11.10;
    mk "square9" 256 256 100 20.12 88.6 11.34;
    (* Group 3: the 9-point axis cross, radius 2 (17 flops/point). *)
    mk "cross9" 64 64 500 9.81 56.8 7.27;
    mk "cross9" 64 128 250 8.19 68.0 8.70;
    mk "cross9" 128 128 250 15.30 72.9 9.34;
    mk "cross9" 128 256 100 10.44 85.3 10.92;
    mk "cross9" 256 256 100 20.80 85.6 10.95;
    (* Group 4: the 13-point diamond (25 flops/point). *)
    mk "diamond13" 64 64 500 11.40 71.6 9.16;
    mk "diamond13" 64 128 250 9.98 82.0 10.50;
    mk "diamond13" 128 128 250 18.70 87.7 11.23;
    mk "diamond13" 128 256 100 15.30 85.6 10.95;
    mk "diamond13" 256 256 100 30.51 85.9 11.00;
    (* Group 5, dated 7 Dec 90: the 13-point diamond again after the
       run-time library recoding (strength reduction in the front-end
       loops, section 7). *)
    mk ~tuned:true "diamond13" 128 256 100 12.30 106.6 13.65;
    mk ~tuned:true "diamond13" 256 256 100 22.43 116.8 14.95;
  ]

(* Section 7's production numbers: 2,048 nodes, 64x128 subgrid per
   node, the seismic kernel. *)
type gordon_bell_row = {
  label : string;
  rolled : bool;
  gb_iterations : int;
  gb_elapsed_s : float;
  gb_gflops : float;
}

let gordon_bell : gordon_bell_row list =
  [
    {
      label = "main loop with copy assignments";
      rolled = true;
      gb_iterations = 35000;
      gb_elapsed_s = 1919.41;
      gb_gflops = 11.62;
    };
    {
      label = "unrolled by three (trial 1)";
      rolled = false;
      gb_iterations = 38001;
      gb_elapsed_s = 1643.79;
      gb_gflops = 14.73;
    };
    {
      label = "unrolled by three (trial 2)";
      rolled = false;
      gb_iterations = 38001;
      gb_elapsed_s = 1627.59;
      gb_gflops = 14.88;
    };
  ]

let headline_gflops = 10.0
(* The title's claim: sustained Fortran performance above 10 Gflops. *)
