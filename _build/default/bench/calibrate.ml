(* Calibration of the machine-model cost constants against the
   paper's published rows (a development tool; the chosen constants
   are frozen in Cm2.Config.default and documented there).

   The compiled plans depend only on the architectural constants
   (register file, latencies), not on the cost constants being
   searched, so each pattern is compiled once and re-priced many
   times. *)

module Paper_data = Ccc_paper_data.Paper_data
module Config = Ccc.Config
module Exec = Ccc.Exec
module Stats = Ccc.Stats
module Pattern = Ccc.Pattern

let patterns =
  lazy
    (List.filter_map
       (fun name ->
         match
           Ccc.compile_pattern Config.default
             (List.assoc name (Pattern.gallery ()))
         with
         | Ok compiled -> Some (name, compiled)
         | Error _ -> None)
       [ "cross5"; "square9"; "cross9"; "diamond13" ])

let row_mflops config (row : Paper_data.row) =
  let compiled = List.assoc row.Paper_data.pattern (Lazy.force patterns) in
  let config = if row.Paper_data.tuned then Config.tuned_runtime config else config in
  let stats =
    Exec.estimate ~iterations:row.Paper_data.iterations
      ~sub_rows:row.Paper_data.sub_rows ~sub_cols:row.Paper_data.sub_cols
      config compiled
  in
  Stats.mflops stats

let gb_gflops config (row : Paper_data.gordon_bell_row) =
  (* The production Gordon Bell code ran the hand-optimized run-time
     path (the December library rows are that work arriving in the
     released library), so the full-machine rows use the tuned
     configuration. *)
  let full = Config.with_nodes ~rows:32 ~cols:64 (Config.tuned_runtime config) in
  let version =
    if row.Paper_data.rolled then Ccc.Seismic.Rolled else Ccc.Seismic.Unrolled3
  in
  let stats =
    Ccc.Seismic.estimate ~version ~sub_rows:64 ~sub_cols:128
      ~steps:row.Paper_data.gb_iterations full
  in
  Stats.gflops stats

let score config =
  let rel a b = (a -. b) /. b in
  let table_err =
    List.fold_left
      (fun acc row ->
        if row.Paper_data.suspect then acc
        else
          let e = rel (row_mflops config row) row.Paper_data.mflops in
          acc +. (e *. e))
      0.0 Paper_data.table1
  in
  let gb_err =
    List.fold_left
      (fun acc row ->
        let e = rel (gb_gflops config row) row.Paper_data.gb_gflops in
        acc +. (e *. e))
      0.0 Paper_data.gordon_bell
  in
  table_err +. gb_err

let search () =
  let base = Config.default in
  let best = ref (infinity, base) in
  let candidates = ref 0 in
  List.iter
    (fun memory_op_cycles ->
      List.iter
        (fun line_overhead_cycles ->
          List.iter
            (fun fe_call_us ->
              List.iter
                (fun fe_dispatch_us ->
                  List.iter
                    (fun frontend_word_cycles ->
                      incr candidates;
                      let config =
                        {
                          base with
                          Config.memory_op_cycles;
                          line_overhead_cycles;
                          frontend_call_overhead_s = fe_call_us *. 1e-6;
                          frontend_dispatch_s = fe_dispatch_us *. 1e-6;
                          frontend_word_cycles;
                        }
                      in
                      let s = score config in
                      if s < fst !best then best := (s, config))
                    [ 1.0; 1.2; 1.4; 1.5; 1.6; 1.7; 1.8; 1.9; 2.0; 2.2 ])
                [ 0.; 50.; 100.; 150.; 200.; 300. ])
            [ 0.; 250.; 500.; 1000.; 1500.; 2000.; 3000. ])
        [ 0; 4; 8; 12; 16; 24 ])
    [ 1; 2 ];
  let s, config = !best in
  Printf.printf "searched %d candidates; best rms error %.4f\n" !candidates
    (sqrt (s /. 21.0));
  Printf.printf
    "memory_op=%d line_overhead=%d fe_call=%.0fus fe_dispatch=%.0fus \
     fe_word=%.2f cyc\n"
    config.Config.memory_op_cycles config.Config.line_overhead_cycles
    (config.Config.frontend_call_overhead_s *. 1e6)
    (config.Config.frontend_dispatch_s *. 1e6)
    config.Config.frontend_word_cycles;
  config

let report config =
  Printf.printf "\n%-10s %-9s %5s  %8s %8s  %7s\n" "pattern" "subgrid" "iters"
    "paper" "model" "err%";
  List.iter
    (fun (row : Paper_data.row) ->
      let m = row_mflops config row in
      Printf.printf "%-10s %4dx%-4d %5d  %8.1f %8.1f  %+6.1f%%%s\n"
        (row.Paper_data.pattern ^ if row.Paper_data.tuned then "*" else "")
        row.Paper_data.sub_rows row.Paper_data.sub_cols
        row.Paper_data.iterations row.Paper_data.mflops m
        (100.0 *. (m -. row.Paper_data.mflops) /. row.Paper_data.mflops)
        (if row.Paper_data.suspect then "  (suspect row)" else ""))
    Paper_data.table1;
  List.iter
    (fun (row : Paper_data.gordon_bell_row) ->
      let g = gb_gflops config row in
      Printf.printf "%-26s %8.2f %8.2f  %+6.1f%%\n" row.Paper_data.label
        row.Paper_data.gb_gflops g
        (100.0 *. (g -. row.Paper_data.gb_gflops) /. row.Paper_data.gb_gflops))
    Paper_data.gordon_bell

let () =
  let config =
    if Array.length Sys.argv > 1 && Sys.argv.(1) = "--default" then
      Config.default
    else search ()
  in
  report config
