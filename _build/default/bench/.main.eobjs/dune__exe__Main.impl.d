bench/main.ml: Analyze Array Bechamel Benchmark Ccc Ccc_baseline Ccc_cm2 Ccc_compiler Ccc_paper_data Hashtbl List Measure Printf Staged String Sys Test Time Toolkit
