bench/calibrate.mli:
