bench/main.mli:
