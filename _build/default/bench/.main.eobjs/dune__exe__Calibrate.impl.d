bench/calibrate.ml: Array Ccc Ccc_paper_data Lazy List Printf Sys
