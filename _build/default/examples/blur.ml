(* Image convolution: a separable 3x3 Gaussian blur as a single
   9-point box stencil, the kind of regular convolution the compiler's
   introduction motivates alongside finite differences.

   Uses the bare-assignment front end with scalar coefficients (the
   run time broadcasts them into coefficient streams), runs one pass
   in cycle-accurate mode, and reports how the width-8 multistencil
   cuts the loads per point (the section 5.3 argument).

   dune exec examples/blur.exe *)

module Grid = Ccc.Grid

let rows = 48
let cols = 48

(* 3x3 binomial kernel 1/16 [1 2 1; 2 4 2; 1 2 1] written as one
   Fortran assignment. *)
let statement =
  "BLURRED = 0.0625 * CSHIFT(CSHIFT(IMG, 1, -1), 2, -1) &\n\
  \        + 0.125  * CSHIFT(IMG, 1, -1) &\n\
  \        + 0.0625 * CSHIFT(CSHIFT(IMG, 1, -1), 2, +1) &\n\
  \        + 0.125  * CSHIFT(IMG, 2, -1) &\n\
  \        + 0.25   * IMG &\n\
  \        + 0.125  * CSHIFT(IMG, 2, +1) &\n\
  \        + 0.0625 * CSHIFT(CSHIFT(IMG, 1, +1), 2, -1) &\n\
  \        + 0.125  * CSHIFT(IMG, 1, +1) &\n\
  \        + 0.0625 * CSHIFT(CSHIFT(IMG, 1, +1), 2, +1)"

(* A synthetic test card: sharp vertical bars plus noise. *)
let test_image () =
  Grid.init ~rows ~cols (fun r c ->
      let bars = if c / 6 mod 2 = 0 then 1.0 else 0.0 in
      let noise =
        let h = (r * 131) lxor (c * 31) in
        float_of_int (h land 15) /. 60.0
      in
      bars +. noise)

(* Total variation along rows: a sharpness measure the blur should
   reduce. *)
let total_variation g =
  let tv = ref 0.0 in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 2 do
      tv := !tv +. Float.abs (Grid.get g r (c + 1) -. Grid.get g r c)
    done
  done;
  !tv

let () =
  let config = Ccc.Config.default in
  let compiled =
    match Ccc.compile_fortran_statement config statement with
    | Ok c -> c
    | Error e -> failwith (Ccc.error_to_string e)
  in
  print_endline "Compilation report:";
  print_endline (Ccc.report compiled);

  (* The memory-bandwidth argument of section 5.3: loads per point
     with and without the multistencil. *)
  let p = compiled.Ccc.Compile.pattern in
  let naive_loads = Ccc.Pattern.tap_count p in
  let ms = Ccc.Multistencil.make p ~width:8 in
  Printf.printf
    "\nloads per 8 results: naive %d, width-8 multistencil %d (%.1fx saved)\n"
    (8 * naive_loads)
    (Ccc.Multistencil.position_count ms)
    (float_of_int (8 * naive_loads)
    /. float_of_int (Ccc.Multistencil.position_count ms));

  let img = test_image () in
  let { Ccc.Exec.output = blurred; stats } =
    Ccc.apply ~mode:Ccc.Exec.Simulate config compiled [ ("IMG", img) ]
  in
  Format.printf "@.%a@." Ccc.Stats.pp stats;
  Printf.printf "\ntotal variation: %.1f -> %.1f (smoother)\n"
    (total_variation img) (total_variation blurred);

  (* Mass conservation: the kernel sums to 1, and CSHIFT wraps, so the
     blur preserves the image's mean exactly. *)
  let mean g = Grid.fold ( +. ) 0.0 g /. float_of_int (rows * cols) in
  Printf.printf "mean preserved: %.6f -> %.6f\n" (mean img) (mean blurred);

  let expected = Ccc.Reference.apply p [ ("IMG", img) ] in
  Printf.printf "max |machine - reference| = %.3e\n"
    (Grid.max_abs_diff expected blurred)
