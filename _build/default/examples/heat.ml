(* Heat diffusion with EOSHIFT boundaries: a fixed cold frame around a
   hot plate.

   The explicit scheme T' = T + alpha (T_N + T_S + T_E + T_W - 4 T) is
   the 5-point cross; written with EOSHIFT the off-edge neighbors read
   a fill temperature, giving Dirichlet-style boundaries — the other
   boundary semantics the front end accepts (the quickstart's CSHIFT
   wraps instead).  This example writes the kernel in the paper's
   version-1 Lisp surface syntax.

   dune exec examples/heat.exe *)

module Grid = Ccc.Grid

let rows = 32
let cols = 32
let alpha = 0.20
let steps = 120

let defstencil_source =
  "(defstencil heat (t1 t0 cn cw cc ce cs)\n\
  \  (single-float single-float)\n\
  \  (:= t1 (+ (* cn (eoshift t0 1 -1))\n\
  \            (* cw (eoshift t0 2 -1))\n\
  \            (* cc t0)\n\
  \            (* ce (eoshift t0 2 +1))\n\
  \            (* cs (eoshift t0 1 +1)))))"

let () =
  let config = Ccc.Config.default in
  let compiled =
    match Ccc.compile_defstencil config defstencil_source with
    | Ok c -> c
    | Error e -> failwith (Ccc.error_to_string e)
  in
  print_endline "Compilation report:";
  print_endline (Ccc.report compiled);

  let machine = Ccc.machine config in
  let coeff v = Grid.constant ~rows ~cols v in
  (* A hot square in the middle of a cold plate. *)
  let initial =
    Grid.init ~rows ~cols (fun r c ->
        if abs (r - (rows / 2)) < 5 && abs (c - (cols / 2)) < 5 then 100.0
        else 0.0)
  in
  let temperature = ref initial in
  let total g = Grid.fold ( +. ) 0.0 g in
  Printf.printf "\ninitial heat %.1f, max %.1f\n" (total initial) 100.0;
  for step = 1 to steps do
    let env =
      [
        ("T0", !temperature);
        ("CN", coeff alpha); ("CW", coeff alpha);
        ("CC", coeff (1.0 -. (4.0 *. alpha)));
        ("CE", coeff alpha); ("CS", coeff alpha);
      ]
    in
    let { Ccc.Exec.output; stats } = Ccc.Exec.run machine compiled env in
    temperature := output;
    if step = 1 || step mod 40 = 0 then begin
      let hottest = Grid.fold Float.max neg_infinity output in
      Printf.printf
        "step %3d: total heat %8.1f, hottest %6.2f  (%.1f Mflops sustained)\n"
        step (total output) hottest (Ccc.Stats.mflops stats)
    end
  done;
  (* With EOSHIFT boundaries the frame is a heat sink: total energy
     decreases (CSHIFT wraparound would conserve it instead). *)
  Printf.printf
    "heat flows out through the end-off boundary: %.1f -> %.1f\n"
    (total initial) (total !temperature);

  (* Cross-check the final state against pure reference evaluation of
     the whole history. *)
  let reference = ref initial in
  for _ = 1 to steps do
    let env =
      [
        ("T0", !reference);
        ("CN", coeff alpha); ("CW", coeff alpha);
        ("CC", coeff (1.0 -. (4.0 *. alpha)));
        ("CE", coeff alpha); ("CS", coeff alpha);
      ]
    in
    reference := Ccc.Reference.apply compiled.Ccc.Compile.pattern env
  done;
  Printf.printf "max |machine - reference| over %d steps = %.3e\n" steps
    (Grid.max_abs_diff !reference !temperature)
