(* The ten-term seismic statement compiled as ONE stencil pattern —
   the paper's future work ("future versions of the compiler should be
   able to handle all ten terms as one stencil pattern"), running a
   real wave-propagation time loop through the fused plan.

   Compare examples/seismic.ml, which uses the 1990 organization the
   paper actually measured (nine-term stencil + separate tenth-term
   pass + time-level rotation).

   dune exec examples/fused.exe *)

module Grid = Ccc.Grid

let rows = 64
let cols = 64
let steps = 40
let dt = 0.05
let h = 1.0
let velocity r _ = if r < rows / 2 then 1.0 else 1.5

(* All ten terms in one Fortran statement.  The tenth term's data side
   is marked with a zero shift so the recognizer knows POLD is a
   source array, not a coefficient. *)
let statement =
  "PNEW = C1 * CSHIFT(P, 1, -2) + C2 * CSHIFT(P, 1, -1) &\n\
  \     + C3 * CSHIFT(P, 2, -2) + C4 * CSHIFT(P, 2, -1) &\n\
  \     + C5 * P &\n\
  \     + C6 * CSHIFT(P, 2, +1) + C7 * CSHIFT(P, 2, +2) &\n\
  \     + C8 * CSHIFT(P, 1, +1) + C9 * CSHIFT(P, 1, +2) &\n\
  \     + C10 * CSHIFT(POLD, 1, 0)"

let coefficient_arrays () =
  let scale r c = velocity r c ** 2.0 *. (dt ** 2.0) /. (h ** 2.0) in
  let axis_far = -1.0 /. 12.0 and axis_near = 4.0 /. 3.0 in
  let center = 2.0 *. (-5.0 /. 2.0) in
  (* Row-major tap order of source P: (-2,0) (-1,0) (0,-2) (0,-1)
     (0,0) (0,1) (0,2) (1,0) (2,0); C10 multiplies POLD. *)
  let weights =
    [ axis_far; axis_near; axis_far; axis_near; center; axis_near; axis_far;
      axis_near; axis_far ]
  in
  List.mapi
    (fun i w ->
      ( Printf.sprintf "C%d" (i + 1),
        Grid.init ~rows ~cols (fun r c ->
            if i = 4 then 2.0 +. (scale r c *. w) else scale r c *. w) ))
    weights
  @ [ ("C10", Grid.constant ~rows ~cols (-1.0)) ]

let initial_pressure () =
  Grid.init ~rows ~cols (fun r c ->
      let dr = float_of_int (r - 16) and dc = float_of_int (c - 32) in
      exp (-.((dr *. dr) +. (dc *. dc)) /. 12.0))

let () =
  let config = Ccc.Config.default in
  let fused =
    match Ccc.compile_fortran_statement_multi config statement with
    | Ok f -> f
    | Error e -> failwith (Ccc.error_to_string e)
  in
  print_endline "Fused compilation report:";
  print_endline (Ccc.fused_report fused);

  let machine = Ccc.machine config in
  let coeffs = coefficient_arrays () in
  let p = ref (initial_pressure ()) in
  let p_old = ref (Grid.copy !p) in
  let stats = ref None in
  for _ = 1 to steps do
    let env = ("P", !p) :: ("POLD", !p_old) :: coeffs in
    let { Ccc.Exec.output; stats = s } =
      Ccc.Exec.run_fused machine fused env
    in
    if !stats = None then stats := Some s;
    p_old := !p;
    p := output
  done;
  let energy g = Grid.fold (fun acc v -> acc +. (v *. v)) 0.0 g in
  Printf.printf "\nwavefield energy after %d steps: %.4f\n" steps (energy !p);

  (* Cross-check the whole history against the 1990 two-pass
     organization of examples/seismic.ml. *)
  let reference =
    Ccc.Seismic.simulate ~steps ~c10:(-1.0) machine
      (List.filter (fun (n, _) -> n <> "C10") coeffs)
      ~p:(initial_pressure ())
      ~p_old:(initial_pressure ())
  in
  Printf.printf "fused = two-pass organization: max |diff| = %.3e\n"
    (Grid.max_abs_diff reference.Ccc.Seismic.p !p);

  (* What the fusion is worth at production scale. *)
  let production =
    Ccc.Config.with_nodes ~rows:32 ~cols:64 (Ccc.Config.tuned_runtime config)
  in
  let fused_prod =
    match Ccc.compile_fortran_statement_multi production statement with
    | Ok f -> f
    | Error e -> failwith (Ccc.error_to_string e)
  in
  let fused_stats =
    Ccc.Exec.estimate_fused ~sub_rows:64 ~sub_cols:128 ~iterations:1000
      production fused_prod
  in
  let two_pass =
    Ccc.Seismic.estimate ~version:Ccc.Seismic.Unrolled3 ~sub_rows:64
      ~sub_cols:128 ~steps:1000 production
  in
  Printf.printf
    "2048 nodes, 64x128/node: two-pass %.2f Gflops, fused %.2f Gflops (+%.0f%%)\n"
    (Ccc.Stats.gflops two_pass)
    (Ccc.Stats.gflops fused_stats)
    (100.0
    *. ((Ccc.Stats.gflops fused_stats /. Ccc.Stats.gflops two_pass) -. 1.0))
