examples/heat.mli:
