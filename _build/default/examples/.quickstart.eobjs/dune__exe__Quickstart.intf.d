examples/quickstart.mli:
