examples/poisson.ml: Ccc Float Lazy Printf
