examples/seismic.mli:
