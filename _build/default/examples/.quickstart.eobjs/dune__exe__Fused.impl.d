examples/fused.ml: Ccc List Printf
