examples/blur.ml: Ccc Float Format Printf
