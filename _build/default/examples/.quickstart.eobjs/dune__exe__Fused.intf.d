examples/fused.mli:
