examples/heat.ml: Ccc Float Printf
