examples/seismic.ml: Buffer Ccc Float List Printf String
