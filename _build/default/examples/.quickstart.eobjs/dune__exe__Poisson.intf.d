examples/poisson.mli:
