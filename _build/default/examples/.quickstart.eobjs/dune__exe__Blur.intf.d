examples/blur.mli:
