examples/quickstart.ml: Ccc Format Printf
