(* Quickstart: compile the paper's 5-point cross from Fortran source,
   run it on the simulated 16-node CM-2, and check the result against
   direct evaluation.

   dune exec examples/quickstart.exe *)

let fortran_source =
  "SUBROUTINE CROSS (R, X, C1, C2, C3, C4, C5)\n\
   REAL, ARRAY(:,:) :: R, X, C1, C2, C3, C4, C5\n\
   R = C1 * CSHIFT(X, 1, -1) &\n\
   \  + C2 * CSHIFT(X, 2, -1) &\n\
   \  + C3 * X &\n\
   \  + C4 * CSHIFT(X, 2, +1) &\n\
   \  + C5 * CSHIFT(X, 1, +1)\n\
   END\n"

let () =
  let config = Ccc.Config.default in

  (* 1. Compile: parse, recognize the stencil, build the multistencil
     plans for widths 8/4/2/1. *)
  let compiled = Ccc.compile_fortran_exn config fortran_source in
  print_endline "Compilation report:";
  print_endline (Ccc.report compiled);

  (* 2. Bind the arrays.  All arrays share one shape; it must divide
     over the 4x4 node grid. *)
  let rows = 64 and cols = 64 in
  let x =
    Ccc.Grid.init ~rows ~cols (fun r c ->
        sin (float_of_int r /. 5.0) +. cos (float_of_int c /. 7.0))
  in
  let coeff v = Ccc.Grid.constant ~rows ~cols v in
  let env =
    [
      ("X", x);
      ("C1", coeff 0.25); ("C2", coeff 0.25);
      ("C3", coeff (-1.0));
      ("C4", coeff 0.25); ("C5", coeff 0.25);
    ]
  in

  (* 3. Run on the simulated machine (cycle-accurate mode). *)
  let { Ccc.Exec.output; stats } =
    Ccc.apply ~mode:Ccc.Exec.Simulate config compiled env
  in
  Format.printf "@.Run statistics:@.%a@." Ccc.Stats.pp stats;

  (* 4. Verify against the reference evaluator. *)
  let expected = Ccc.Reference.apply compiled.Ccc.Compile.pattern env in
  Printf.printf "max |simulated - reference| = %.3e\n"
    (Ccc.Grid.max_abs_diff expected output);

  (* 5. The paper's headline: extrapolate a production-size run to the
     full 2,048-node machine. *)
  let production =
    Ccc.Exec.estimate ~iterations:100 ~sub_rows:256 ~sub_cols:256 config
      compiled
  in
  Printf.printf
    "at 256x256 per node, 100 iterations: %.1f Mflops on 16 nodes, %.2f \
     Gflops extrapolated to 2048 nodes\n"
    (Ccc.Stats.mflops production)
    (Ccc.Stats.extrapolate production ~nodes:2048)
