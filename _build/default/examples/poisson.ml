(* Jacobi relaxation for the Poisson equation  -laplace(u) = f  with
   fixed (zero) boundary values: the classic iterative PDE kernel the
   stencil compiler class serves.

   Each sweep is the 5-point update
     u' = 0.25 (u_N + u_S + u_E + u_W) + 0.25 h^2 f
   i.e. a 4-tap EOSHIFT stencil plus a bias term -- exercising the
   pinned-1.0-register path (the bias is added by multiplying the
   pinned 1.0, section 5.3).  The loop runs to convergence and checks
   the residual.

   dune exec examples/poisson.exe *)

module Grid = Ccc.Grid

let n = 32
let h = 1.0 /. float_of_int (n + 1)
let max_sweeps = 600
let tolerance = 1e-3

(* A smooth source term with an analytic-ish bump in the middle. *)
let source_term =
  lazy
    (Grid.init ~rows:n ~cols:n (fun r c ->
         let x = float_of_int (r + 1) *. h and y = float_of_int (c + 1) *. h in
         8.0 *. sin (Float.pi *. x) *. sin (Float.pi *. y)))

let statement =
  "U1 = CN * EOSHIFT(U, 1, -1) &\n\
  \   + CW * EOSHIFT(U, 2, -1) &\n\
  \   + CE * EOSHIFT(U, 2, +1) &\n\
  \   + CS * EOSHIFT(U, 1, +1) &\n\
  \   + F4"

(* Residual of the discrete equation: max | 4u - neighbors - h^2 f |. *)
let residual u =
  let f = Lazy.force source_term in
  let worst = ref 0.0 in
  for r = 0 to n - 1 do
    for c = 0 to n - 1 do
      let nb dr dc = Grid.get_endoff u ~fill:0.0 (r + dr) (c + dc) in
      let v =
        (4.0 *. Grid.get u r c)
        -. (nb (-1) 0 +. nb 1 0 +. nb 0 (-1) +. nb 0 1)
        -. (h *. h *. Grid.get f r c)
      in
      if Float.abs v > !worst then worst := Float.abs v
    done
  done;
  !worst

let () =
  let config = Ccc.Config.default in
  let compiled =
    match Ccc.compile_fortran_statement config statement with
    | Ok c -> c
    | Error e -> failwith (Ccc.error_to_string e)
  in
  print_endline "Compilation report (4 taps + bias term):";
  print_endline (Ccc.report compiled);

  let machine = Ccc.machine config in
  let quarter = Grid.constant ~rows:n ~cols:n 0.25 in
  let f_term =
    let f = Lazy.force source_term in
    Grid.init ~rows:n ~cols:n (fun r c -> 0.25 *. h *. h *. Grid.get f r c)
  in
  let u = ref (Grid.create ~rows:n ~cols:n) in
  let sweeps = ref 0 in
  let continue = ref true in
  while !continue && !sweeps < max_sweeps do
    let env =
      [
        ("U", !u);
        ("CN", quarter); ("CW", quarter); ("CE", quarter); ("CS", quarter);
        ("F4", f_term);
      ]
    in
    let { Ccc.Exec.output; _ } = Ccc.Exec.run machine compiled env in
    u := output;
    incr sweeps;
    if !sweeps mod 100 = 0 || residual !u < tolerance then begin
      Printf.printf "sweep %4d: residual %.3e\n" !sweeps (residual !u);
      if residual !u < tolerance then continue := false
    end
  done;
  let final = residual !u in
  if final < tolerance then
    Printf.printf "converged in %d sweeps (residual %.3e < %g)\n" !sweeps
      final tolerance
  else
    Printf.printf "stopped after %d sweeps, residual %.3e (Jacobi is slow;\n\
                   the point here is the stencil, not the solver)\n"
      !sweeps final;

  (* The solution of -lap u = 8 pi^-2-ish bump peaks mid-plate. *)
  let center = Grid.get !u (n / 2) (n / 2) in
  Printf.printf "u at the center: %.5f (positive, smooth peak)\n" center;
  assert (center > 0.0);

  (* Performance view: one sweep at production scale. *)
  let stats =
    Ccc.Exec.estimate ~iterations:100 ~sub_rows:128 ~sub_cols:128 config
      compiled
  in
  Printf.printf
    "at 128x128 per node: %.1f Mflops on 16 nodes, %.2f Gflops on 2048\n"
    (Ccc.Stats.mflops stats)
    (Ccc.Stats.extrapolate stats ~nodes:2048)
