(* The workload the paper's work was built for: 2-D acoustic
   finite-difference seismic modeling, the Gordon Bell Prize code's
   structure (section 7).

   The wave equation u_tt = v^2 (u_xx + u_yy) discretized with a
   fourth-order Laplacian becomes exactly the paper's kernel: a
   nine-point axis-cross stencil over the current pressure field plus
   one term from the time step before last,

     P(t+1) = stencil9(P(t)) - P(t-1)

   where the stencil's coefficient arrays fold in the velocity model
   (which varies spatially: a two-layer medium here).  The tenth term
   is a separate pass, as in the paper.

   dune exec examples/seismic.exe *)

module Grid = Ccc.Grid

let rows = 64
let cols = 64
let steps = 120
let dt = 0.2
let h = 1.0

(* Two-layer velocity model: waves speed up in the lower half. *)
let velocity r _ = if r < rows / 2 then 1.0 else 1.5

(* Fourth-order Laplacian weights: (-1/12, 4/3, -5/2, 4/3, -1/12)/h^2
   on each axis; the center collects both axes plus the 2*P term of
   the time discretization. *)
let coefficient_arrays () =
  let scale r c = velocity r c ** 2.0 *. (dt ** 2.0) /. (h ** 2.0) in
  let axis_far = -1.0 /. 12.0 and axis_near = 4.0 /. 3.0 in
  let center = 2.0 *. (-5.0 /. 2.0) in
  (* Tap order must match Ccc.Seismic.kernel (): row-major offsets
     (-2,0) (-1,0) (0,-2) (0,-1) (0,0) (0,1) (0,2) (1,0) (2,0). *)
  let weights =
    [
      axis_far; axis_near; axis_far; axis_near; center; axis_near; axis_far;
      axis_near; axis_far;
    ]
  in
  List.mapi
    (fun i w ->
      let name = Printf.sprintf "C%d" (i + 1) in
      let grid =
        Grid.init ~rows ~cols (fun r c ->
            if i = 4 then 2.0 +. (scale r c *. w) (* center: 2P + v^2dt^2 * w *)
            else scale r c *. w)
      in
      (name, grid))
    weights

(* A Gaussian source pulse in the upper layer. *)
let initial_pressure () =
  Grid.init ~rows ~cols (fun r c ->
      let dr = float_of_int (r - 16) and dc = float_of_int (c - 32) in
      exp (-.((dr *. dr) +. (dc *. dc)) /. 12.0))

let energy g = Grid.fold (fun acc v -> acc +. (v *. v)) 0.0 g

(* A coarse ASCII snapshot of the wavefield: one character per 2x2
   block, amplitude binned into " .:-=+*#". *)
let snapshot g =
  let shades = " .:-=+*#" in
  let buf = Buffer.create 1024 in
  let peak =
    Float.max 1e-9 (Grid.fold (fun a v -> Float.max a (Float.abs v)) 0.0 g)
  in
  for r = 0 to (rows / 2) - 1 do
    for c = 0 to (cols / 2) - 1 do
      let v =
        (Float.abs (Grid.get g (2 * r) (2 * c))
        +. Float.abs (Grid.get g ((2 * r) + 1) (2 * c))
        +. Float.abs (Grid.get g (2 * r) ((2 * c) + 1))
        +. Float.abs (Grid.get g ((2 * r) + 1) ((2 * c) + 1)))
        /. 4.0
      in
      let bin =
        min (String.length shades - 1)
          (int_of_float (Float.abs v /. peak *. float_of_int (String.length shades)))
      in
      Buffer.add_char buf shades.[bin]
    done;
    Buffer.add_char buf '\n'
  done;
  Buffer.contents buf

let () =
  let config = Ccc.Config.default in
  let machine = Ccc.machine config in
  let env = coefficient_arrays () in
  let p = initial_pressure () in
  let p_old = Grid.copy p in

  Printf.printf "2-D acoustic wave propagation, %dx%d grid, %d time steps\n"
    rows cols steps;
  Printf.printf "kernel: %d-tap stencil + previous-time-step term (%d flops/point)\n\n"
    (Ccc.Pattern.tap_count (Ccc.Seismic.kernel ()))
    Ccc.Seismic.flops_per_point;

  (* Run both loop organizations; the data is identical, the cycle
     accounting differs (the rolled loop pays for two whole-array copy
     assignments per step). *)
  let rolled =
    Ccc.Seismic.simulate ~version:Ccc.Seismic.Rolled ~steps ~c10:(-1.0) machine
      env ~p ~p_old
  in
  let unrolled =
    Ccc.Seismic.simulate ~version:Ccc.Seismic.Unrolled3 ~steps ~c10:(-1.0)
      machine env ~p ~p_old
  in
  Printf.printf "wavefield energy: initial %.4f, final %.4f\n" (energy p)
    (energy rolled.Ccc.Seismic.p);
  Printf.printf "rolled = unrolled data: %b\n\n"
    (Grid.max_abs_diff rolled.Ccc.Seismic.p unrolled.Ccc.Seismic.p = 0.0);
  Printf.printf "wavefront after %d steps (ring spreading from the source,\n\
                 refracting at the fast lower layer):\n%s\n"
    steps (snapshot rolled.Ccc.Seismic.p);

  Printf.printf "rolled loop      : %8.2f Mflops (%.4f s simulated)\n"
    (Ccc.Stats.mflops rolled.Ccc.Seismic.stats)
    (Ccc.Stats.elapsed_s rolled.Ccc.Seismic.stats);
  Printf.printf "unrolled by three: %8.2f Mflops (%.4f s simulated)\n"
    (Ccc.Stats.mflops unrolled.Ccc.Seismic.stats)
    (Ccc.Stats.elapsed_s unrolled.Ccc.Seismic.stats);

  (* The production configuration: the full machine with the
     hand-tuned run-time path, at the paper's subgrid size. *)
  let production =
    Ccc.Config.with_nodes ~rows:32 ~cols:64 (Ccc.Config.tuned_runtime config)
  in
  List.iter
    (fun (label, version) ->
      let stats =
        Ccc.Seismic.estimate ~version ~sub_rows:64 ~sub_cols:128 ~steps:35000
          production
      in
      Printf.printf "2048 nodes, 64x128/node, 35000 steps, %-9s: %6.2f Gflops\n"
        label (Ccc.Stats.gflops stats))
    [ ("rolled", Ccc.Seismic.Rolled); ("unrolled", Ccc.Seismic.Unrolled3) ];
  print_endline
    "(the paper's production runs: 11.62 rolled, 14.88 unrolled; the same\n\
     code ran at 5.6 Gflops in 1989 with hand-coded library routines)"
