(* Unit tests for the front end: lexer, Fortran parser, defstencil
   reader, and the stencil recognizer with its diagnostics. *)

open Ccc_frontend
module Pattern = Ccc_stencil.Pattern
module Offset = Ccc_stencil.Offset
module Coeff = Ccc_stencil.Coeff
module Tap = Ccc_stencil.Tap
module Boundary = Ccc_stencil.Boundary

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_str = Alcotest.(check string)

let kinds src = List.map (fun t -> t.Token.kind) (Lexer.tokenize src)

(* ------------------------------------------------------------------ *)
(* Lexer *)

let test_lex_basic () =
  match kinds "R = C1 * X" with
  | [ Token.Ident "R"; Token.Equal; Token.Ident "C1"; Token.Star;
      Token.Ident "X"; Token.Eof ] ->
      ()
  | ks ->
      Alcotest.failf "unexpected tokens: %s"
        (String.concat " " (List.map Token.describe ks))

let test_lex_case_insensitive () =
  match kinds "cshift(x, dim=1)" with
  | Token.Ident "CSHIFT" :: Token.Lparen :: Token.Ident "X" :: _ -> ()
  | _ -> Alcotest.fail "identifiers not upcased"

let test_lex_numbers () =
  match kinds "1.5 2 .25 3e2 1.0E-3 2d0" with
  | [ Token.Number a; Token.Number b; Token.Number c; Token.Number d;
      Token.Number e; Token.Number f; Token.Eof ] ->
      Alcotest.(check (float 1e-12)) "1.5" 1.5 a;
      Alcotest.(check (float 1e-12)) "2" 2.0 b;
      Alcotest.(check (float 1e-12)) ".25" 0.25 c;
      Alcotest.(check (float 1e-12)) "3e2" 300.0 d;
      Alcotest.(check (float 1e-12)) "1.0E-3" 0.001 e;
      Alcotest.(check (float 1e-12)) "2d0" 2.0 f
  | ks ->
      Alcotest.failf "unexpected: %s"
        (String.concat " " (List.map Token.describe ks))

let test_lex_continuation_trailing () =
  (* A trailing '&' joins the next line; no Newline token appears. *)
  match kinds "A = B &\n + C" with
  | [ Token.Ident "A"; Token.Equal; Token.Ident "B"; Token.Plus;
      Token.Ident "C"; Token.Eof ] ->
      ()
  | _ -> Alcotest.fail "trailing continuation failed"

let test_lex_continuation_leading_ampersand () =
  (* The paper's style: '&' ends one line and '+' begins the next,
     with an optional leading '&'. *)
  match kinds "A = B &\n& + C" with
  | [ Token.Ident "A"; Token.Equal; Token.Ident "B"; Token.Plus;
      Token.Ident "C"; Token.Eof ] ->
      ()
  | _ -> Alcotest.fail "leading-ampersand continuation failed"

let test_lex_comments () =
  match kinds "A = B ! a comment\nC = D" with
  | [ Token.Ident "A"; Token.Equal; Token.Ident "B"; Token.Newline;
      Token.Ident "C"; Token.Equal; Token.Ident "D"; Token.Eof ] ->
      ()
  | _ -> Alcotest.fail "comment not skipped"

let test_lex_directive () =
  match kinds "!ccc$ stencil\nR = X" with
  | Token.Directive "STENCIL" :: Token.Newline :: _ -> ()
  | ks ->
      Alcotest.failf "directive missing: %s"
        (String.concat " " (List.map Token.describe ks))

let test_lex_double_colon () =
  match kinds "REAL :: A" with
  | [ Token.Ident "REAL"; Token.Double_colon; Token.Ident "A"; Token.Eof ] -> ()
  | _ -> Alcotest.fail "double colon"

let test_lex_error_position () =
  match Lexer.tokenize "A = ?" with
  | _ -> Alcotest.fail "expected a lexer error"
  | exception Lexer.Error { line; col; _ } ->
      check_int "line" 1 line;
      check_int "col" 5 col

(* ------------------------------------------------------------------ *)
(* Parser *)

let parse_stmt = Parser.parse_statement

let test_parse_sum_of_products () =
  let stmt = parse_stmt "R = C1 * CSHIFT(X, 1, -1) + C2 * X" in
  check_str "lhs" "R" stmt.Ast.lhs;
  match stmt.Ast.rhs with
  | Ast.Add (Ast.Mul (Ast.Var "C1", Ast.Call ("CSHIFT", _)),
             Ast.Mul (Ast.Var "C2", Ast.Var "X")) ->
      ()
  | e -> Alcotest.failf "unexpected rhs: %s" (Format.asprintf "%a" Ast.pp_expr e)

let test_parse_keyword_args () =
  let stmt = parse_stmt "R = CSHIFT(X, DIM=1, SHIFT=-1)" in
  match stmt.Ast.rhs with
  | Ast.Call ("CSHIFT",
              [ Ast.Positional (Ast.Var "X");
                Ast.Keyword ("DIM", Ast.Num 1.0);
                Ast.Keyword ("SHIFT", Ast.Neg (Ast.Num 1.0)) ]) ->
      ()
  | e -> Alcotest.failf "unexpected rhs: %s" (Format.asprintf "%a" Ast.pp_expr e)

let test_parse_precedence () =
  (* A + B * C parses as A + (B * C). *)
  let stmt = parse_stmt "R = A + B * C" in
  match stmt.Ast.rhs with
  | Ast.Add (Ast.Var "A", Ast.Mul (Ast.Var "B", Ast.Var "C")) -> ()
  | _ -> Alcotest.fail "precedence wrong"

let test_parse_parenthesized () =
  let stmt = parse_stmt "R = (A + B) * C" in
  match stmt.Ast.rhs with
  | Ast.Mul (Ast.Add (Ast.Var "A", Ast.Var "B"), Ast.Var "C") -> ()
  | _ -> Alcotest.fail "parentheses ignored"

let test_parse_directive_flags_statement () =
  let stmt = parse_stmt "!CCC$ STENCIL\nR = C1 * CSHIFT(X, 1, 1)" in
  check_bool "flagged" true stmt.Ast.flagged

let test_parse_subroutine_cross () =
  let sub =
    Parser.parse_subroutine
      "SUBROUTINE CROSS (R, X, C1, C2, C3, C4, C5)\n\
       REAL, ARRAY(:,:) :: R, X, C1, C2, C3, C4, C5\n\
       R = C1 * CSHIFT(X, 1, -1) &\n\
       \  + C2 * CSHIFT(X, 2, -1) &\n\
       \  + C3 * X &\n\
       \  + C4 * CSHIFT(X, 2, +1) &\n\
       \  + C5 * CSHIFT(X, 1, +1)\n\
       END\n"
  in
  check_str "name" "CROSS" sub.Ast.sub_name;
  check_int "params" 7 (List.length sub.Ast.params);
  check_int "one statement" 1 (List.length sub.Ast.body);
  check_int "declared rank" 2 (Option.get (Ast.declared_rank sub "C3"))

let test_parse_dimension_attribute () =
  let sub =
    Parser.parse_subroutine
      "SUBROUTINE S (A, B)\nREAL, DIMENSION(:,:) :: A, B\nA = B * CSHIFT(B,1,1)\nEND SUBROUTINE S\n"
  in
  check_int "rank" 2 (Option.get (Ast.declared_rank sub "A"))

let test_parse_program_two_subroutines () =
  let subs =
    Parser.parse_program
      "SUBROUTINE A1 (R, X)\nR = X * CSHIFT(X,1,1)\nEND\n\n\
       SUBROUTINE A2 (R, X)\nR = X * CSHIFT(X,2,1)\nEND\n"
  in
  Alcotest.(check (list string))
    "names" [ "A1"; "A2" ]
    (List.map (fun s -> s.Ast.sub_name) subs)

let test_parse_error_reports_line () =
  match Parser.parse_statement "R = C1 *\n* X" with
  | _ -> Alcotest.fail "expected parse error"
  | exception Parser.Error { line; _ } -> check_int "line" 1 line

let test_parse_missing_end () =
  match Parser.parse_subroutine "SUBROUTINE S (A)\nA = A * CSHIFT(A,1,1)\n" with
  | _ -> Alcotest.fail "expected missing END"
  | exception Parser.Error _ -> ()

let test_parse_explicit_shape_declaration () =
  (* Old-style declarations with explicit bounds still record rank. *)
  let sub =
    Parser.parse_subroutine
      "SUBROUTINE S (A, B)\nREAL A(256, 256), B(256, 256)\nA = B * CSHIFT(B, 1, 1)\nEND\n"
  in
  check_int "rank from explicit bounds" 2 (Option.get (Ast.declared_rank sub "A"))

let test_parse_end_subroutine_with_name () =
  let sub =
    Parser.parse_subroutine
      "SUBROUTINE NAMED (R, X)\nR = X * CSHIFT(X, 1, 1)\nEND SUBROUTINE NAMED\n"
  in
  check_str "name" "NAMED" sub.Ast.sub_name

let test_parse_comment_after_continuation () =
  (* A comment on the continued line must not break the statement. *)
  let stmt =
    parse_stmt "R = C1 * CSHIFT(X, 1, 1) &\n! midway remark\n + C2 * X"
  in
  match stmt.Ast.rhs with
  | Ast.Add (_, Ast.Mul (Ast.Var "C2", Ast.Var "X")) -> ()
  | e -> Alcotest.failf "unexpected: %s" (Format.asprintf "%a" Ast.pp_expr e)

let test_parse_empty_parameter_list () =
  let sub = Parser.parse_subroutine "SUBROUTINE NOPARAMS ()\nEND\n" in
  check_int "no parameters" 0 (List.length sub.Ast.params);
  check_int "no body" 0 (List.length sub.Ast.body)

let test_parse_unary_plus_and_minus_nesting () =
  let stmt = parse_stmt "R = C1 * CSHIFT(X, 1, - -2)" in
  match stmt.Ast.rhs with
  | Ast.Mul (_, Ast.Call ("CSHIFT", [ _; _; Ast.Positional shift ])) -> begin
      match shift with
      | Ast.Neg (Ast.Neg (Ast.Num 2.0)) -> ()
      | e -> Alcotest.failf "shift parsed as %s" (Format.asprintf "%a" Ast.pp_expr e)
    end
  | _ -> Alcotest.fail "statement shape"

(* ------------------------------------------------------------------ *)
(* Defstencil *)

let cross_form =
  "(defstencil cross (r x c1 c2 c3 c4 c5)\n\
  \  (single-float single-float)\n\
  \  (:= r (+ (* c1 (cshift x 1 -1))\n\
  \           (* c2 (cshift x 2 -1))\n\
  \           (* c3 x)\n\
  \           (* c4 (cshift x 2 +1))\n\
  \           (* c5 (cshift x 1 +1)))))"

let test_defstencil_parses () =
  let form = Defstencil.parse cross_form in
  check_str "name" "CROSS" form.Defstencil.name;
  check_int "params" 7 (List.length form.Defstencil.params);
  check_int "types" 2 (List.length form.Defstencil.element_types)

let test_defstencil_matches_fortran () =
  (* The two front ends of the paper share recognition; the same
     stencil written both ways must produce identical patterns. *)
  let from_lisp =
    match
      Recognize.subroutine
        (Defstencil.to_subroutine (Defstencil.parse cross_form))
    with
    | Ok p -> p
    | Error _ -> Alcotest.fail "lisp form rejected"
  in
  check_bool "same pattern" true
    (Pattern.equal from_lisp (Pattern.cross5 ()))

let test_defstencil_error () =
  match Defstencil.parse "(defstencil oops)" with
  | _ -> Alcotest.fail "expected failure"
  | exception Defstencil.Error _ -> ()

let test_sexp_comments_and_nesting () =
  match Sexp.parse "; heading\n(a (b c) ; tail\n d)" with
  | Sexp.List [ Sexp.Atom "a"; Sexp.List [ Sexp.Atom "b"; Sexp.Atom "c" ];
                Sexp.Atom "d" ] ->
      ()
  | s -> Alcotest.failf "unexpected: %s" (Format.asprintf "%a" Sexp.pp s)

(* ------------------------------------------------------------------ *)
(* Recognizer *)

let recognize src = Recognize.statement (Parser.parse_statement src)

let pattern_exn src =
  match recognize src with
  | Ok p -> p
  | Error ds ->
      Alcotest.failf "rejected: %s"
        (String.concat "; " (List.map Diagnostics.to_string ds))

let diag_codes src =
  match recognize src with
  | Ok _ -> Alcotest.failf "unexpectedly accepted: %s" src
  | Error ds -> List.map (fun d -> Diagnostics.code_name d.Diagnostics.code) ds

let test_recognize_double_negated_shift_amount () =
  let p = pattern_exn "R = C1 * CSHIFT(X, 1, - -2) + C2 * X" in
  check_bool "composed to +2" true
    (Option.is_some (Pattern.find_tap p (Offset.make ~drow:2 ~dcol:0)))

let test_recognize_shift_by_zero () =
  (* CSHIFT by zero is the identity: a (0,0) tap. *)
  let p = pattern_exn "R = C1 * CSHIFT(X, 1, 0) + C2 * CSHIFT(X, 2, 1)" in
  check_bool "zero shift gives the center tap" true
    (Option.is_some (Pattern.find_tap p Offset.zero))

let test_recognize_opposite_shifts_cancel () =
  (* Nested opposite shifts compose to the center. *)
  let p =
    pattern_exn "R = C1 * CSHIFT(CSHIFT(X, 1, -1), 1, +1) + C2 * CSHIFT(X, 2, 1)"
  in
  check_bool "cancelled to (0,0)" true
    (Option.is_some (Pattern.find_tap p Offset.zero))

let test_recognize_result_may_equal_source () =
  (* Fortran 90 semantics evaluate the right side fully before
     assignment, so X = ... CSHIFT(X ...) is a legal stencil. *)
  let p = pattern_exn "X = C1 * CSHIFT(X, 1, -1) + C2 * X" in
  check_str "in-place" "X" (Pattern.result_var p);
  check_str "source" "X" (Pattern.source_var p)

let test_recognize_cross5 () =
  let p =
    pattern_exn
      "R = C1 * CSHIFT(X, 1, -1) + C2 * CSHIFT(X, 2, -1) + C3 * X \
       + C4 * CSHIFT(X, 2, +1) + C5 * CSHIFT(X, 1, +1)"
  in
  check_bool "equals gallery cross5" true (Pattern.equal p (Pattern.cross5 ()))

let test_recognize_nested_shifts_compose () =
  let p =
    pattern_exn "R = C1 * CSHIFT(CSHIFT(X, 1, -1), 2, -1) + C2 * X"
  in
  check_bool "composed tap" true
    (Option.is_some (Pattern.find_tap p (Offset.make ~drow:(-1) ~dcol:(-1))))

let test_recognize_keyword_form () =
  let p = pattern_exn "R = C1 * CSHIFT(X, DIM=1, SHIFT=-1) + C2 * X" in
  check_bool "tap north" true
    (Option.is_some (Pattern.find_tap p (Offset.make ~drow:(-1) ~dcol:0)))

let test_recognize_coeff_on_right () =
  (* T ::= s(X) * c is also legal. *)
  let p = pattern_exn "R = CSHIFT(X, 1, 1) * C1 + X * C2" in
  check_int "two taps" 2 (Pattern.tap_count p)

let test_recognize_bare_shift_term () =
  (* T ::= s(X): implicit coefficient 1. *)
  let p = pattern_exn "R = CSHIFT(X, 1, 1) + C1 * X" in
  match Pattern.find_tap p (Offset.make ~drow:1 ~dcol:0) with
  | Some tap -> check_bool "coeff one" true (Coeff.equal tap.Tap.coeff Coeff.One)
  | None -> Alcotest.fail "tap missing"

let test_recognize_bias_term () =
  (* T ::= c: a bare coefficient array. *)
  let p = pattern_exn "R = C1 * CSHIFT(X, 1, 1) + B" in
  match Pattern.bias p with
  | Some (Coeff.Array "B") -> ()
  | _ -> Alcotest.fail "bias not recognized"

let test_recognize_scalar_coeff () =
  let p = pattern_exn "R = 0.25 * CSHIFT(X, 1, 1) + 2.0 * X" in
  match Pattern.find_tap p Offset.zero with
  | Some { Tap.coeff = Coeff.Scalar v; _ } ->
      Alcotest.(check (float 0.0)) "scalar" 2.0 v
  | _ -> Alcotest.fail "scalar coefficient lost"

let test_recognize_eoshift () =
  let p = pattern_exn "R = C1 * EOSHIFT(X, 1, -1) + C2 * X" in
  check_bool "end-off boundary" true
    (Boundary.equal (Pattern.boundary p) (Boundary.End_off 0.0))

let test_recognize_eoshift_boundary_value () =
  let p = pattern_exn "R = C1 * EOSHIFT(X, DIM=1, SHIFT=-1, BOUNDARY=7.5) + C2 * X" in
  check_bool "fill 7.5" true
    (Boundary.equal (Pattern.boundary p) (Boundary.End_off 7.5))

let test_reject_mixed_shift_kinds () =
  check_bool "mixed-shift-kinds reported" true
    (List.mem "mixed-shift-kinds"
       (diag_codes "R = C1 * CSHIFT(X, 1, 1) + C2 * EOSHIFT(X, 1, 1)"))

let test_reject_two_shifted_variables () =
  check_bool "multiple-shifted-variables" true
    (List.mem "multiple-shifted-variables"
       (diag_codes "R = C1 * CSHIFT(X, 1, 1) + C2 * CSHIFT(Y, 1, 1)"))

let test_reject_subtraction () =
  check_bool "subtraction" true
    (List.mem "subtraction"
       (diag_codes "R = C1 * CSHIFT(X, 1, 1) - C2 * X"))

let test_reject_no_shift () =
  check_bool "no-shifted-variable" true
    (List.mem "no-shifted-variable" (diag_codes "R = C1 * C2"))

let test_reject_duplicate_offset () =
  check_bool "duplicate-offset" true
    (List.mem "duplicate-offset"
       (diag_codes "R = C1 * CSHIFT(X, 1, 1) + C2 * CSHIFT(X, 1, 1)"))

let test_reject_dim3 () =
  check_bool "unsupported-dimension" true
    (List.mem "unsupported-dimension"
       (diag_codes "R = C1 * CSHIFT(X, 3, 1) + C2 * X"))

let test_reject_coeff_product () =
  check_bool "not-an-array-coefficient" true
    (List.mem "not-an-array-coefficient"
       (diag_codes "R = C1 * C2 * CSHIFT(X, 1, 1) + C3 * X"))

let test_reject_variable_shift_amount () =
  check_bool "bad-shift-call" true
    (List.mem "bad-shift-call" (diag_codes "R = C1 * CSHIFT(X, 1, N) + C2 * X"))

let test_reject_multiple_bias () =
  check_bool "multiple-bias-terms" true
    (List.mem "multiple-bias-terms"
       (diag_codes "R = C1 * CSHIFT(X, 1, 1) + A + B"))

let test_subroutine_checks_params () =
  let sub =
    Parser.parse_subroutine
      "SUBROUTINE S (R, X)\nR = C9 * CSHIFT(X, 1, 1)\nEND\n"
  in
  match Recognize.subroutine sub with
  | Ok _ -> Alcotest.fail "should reject non-parameter coefficient"
  | Error ds -> check_bool "mentions C9" true
      (List.exists
         (fun d ->
           let msg = Diagnostics.to_string d in
           String.length msg > 0
           &&
           (* crude containment check *)
           let re = "C9" in
           let rec contains i =
             i + String.length re <= String.length msg
             && (String.sub msg i (String.length re) = re || contains (i + 1))
           in
           contains 0)
         ds)

let test_compile_program_units () =
  (* The section-6 workflow: one file, three subroutines; one compiled
     by the convolution module, one falls back unflagged, one is a
     flagged failure (loud feedback). *)
  let source =
    "SUBROUTINE GOOD (R, X, C1, C2)\n\
     REAL, ARRAY(:,:) :: R, X, C1, C2\n\
     !CCC$ STENCIL\n\
     R = C1 * CSHIFT(X, 1, -1) + C2 * X\n\
     END\n\n\
     SUBROUTINE PLAIN (R, X, C1)\n\
     REAL, ARRAY(:,:) :: R, X, C1\n\
     R = C1 * X\n\
     END\n\n\
     SUBROUTINE FLAGGEDBAD (R, X, Y, C1)\n\
     REAL, ARRAY(:,:) :: R, X, Y, C1\n\
     !CCC$ STENCIL\n\
     R = C1 * CSHIFT(X, 1, 1) + CSHIFT(Y, 2, 1)\n\
     END\n"
  in
  match Ccc.compile_program Ccc.Config.default source with
  | Error e -> Alcotest.failf "program: %s" (Ccc.error_to_string e)
  | Ok units -> begin
      check_int "three units" 3 (List.length units);
      match units with
      | [ good; plain; bad ] ->
          check_str "good name" "GOOD" good.Ccc.unit_name;
          check_bool "good flagged" true good.Ccc.flagged;
          check_bool "good compiled" true (Result.is_ok good.Ccc.outcome);
          check_bool "plain unflagged" false plain.Ccc.flagged;
          check_bool "plain fell back" true (Result.is_error plain.Ccc.outcome);
          check_bool "bad flagged" true bad.Ccc.flagged;
          check_bool "bad reported" true (Result.is_error bad.Ccc.outcome)
      | _ -> Alcotest.fail "unexpected unit list"
    end

let test_subroutine_requires_single_statement () =
  let sub =
    Parser.parse_subroutine
      "SUBROUTINE S (R, X, C1)\nR = C1 * CSHIFT(X, 1, 1)\nR = C1 * X\nEND\n"
  in
  match Recognize.subroutine sub with
  | Ok _ -> Alcotest.fail "should reject two statements"
  | Error _ -> ()

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "frontend"
    [
      ( "lexer",
        [
          tc "basic tokens" test_lex_basic;
          tc "case insensitive" test_lex_case_insensitive;
          tc "numeric literals" test_lex_numbers;
          tc "trailing continuation" test_lex_continuation_trailing;
          tc "leading-ampersand continuation"
            test_lex_continuation_leading_ampersand;
          tc "comments" test_lex_comments;
          tc "CCC$ directive" test_lex_directive;
          tc "double colon" test_lex_double_colon;
          tc "error position" test_lex_error_position;
        ] );
      ( "parser",
        [
          tc "sum of products" test_parse_sum_of_products;
          tc "keyword arguments" test_parse_keyword_args;
          tc "precedence" test_parse_precedence;
          tc "parentheses" test_parse_parenthesized;
          tc "directive flags statement" test_parse_directive_flags_statement;
          tc "CROSS subroutine" test_parse_subroutine_cross;
          tc "DIMENSION attribute" test_parse_dimension_attribute;
          tc "program with two subroutines" test_parse_program_two_subroutines;
          tc "error line number" test_parse_error_reports_line;
          tc "missing END" test_parse_missing_end;
          tc "explicit shape declarations" test_parse_explicit_shape_declaration;
          tc "END SUBROUTINE with name" test_parse_end_subroutine_with_name;
          tc "comment after continuation" test_parse_comment_after_continuation;
          tc "empty parameter list" test_parse_empty_parameter_list;
          tc "nested unary signs" test_parse_unary_plus_and_minus_nesting;
        ] );
      ( "defstencil",
        [
          tc "parses the paper's form" test_defstencil_parses;
          tc "agrees with the Fortran front end" test_defstencil_matches_fortran;
          tc "malformed form" test_defstencil_error;
          tc "sexp comments and nesting" test_sexp_comments_and_nesting;
        ] );
      ( "recognizer",
        [
          tc "cross5" test_recognize_cross5;
          tc "nested shifts compose" test_recognize_nested_shifts_compose;
          tc "keyword form" test_recognize_keyword_form;
          tc "coefficient on the right" test_recognize_coeff_on_right;
          tc "bare shift term" test_recognize_bare_shift_term;
          tc "bias term" test_recognize_bias_term;
          tc "scalar coefficients" test_recognize_scalar_coeff;
          tc "EOSHIFT boundary" test_recognize_eoshift;
          tc "EOSHIFT BOUNDARY= value" test_recognize_eoshift_boundary_value;
          tc "rejects mixed shift kinds" test_reject_mixed_shift_kinds;
          tc "rejects two shifted variables" test_reject_two_shifted_variables;
          tc "rejects subtraction" test_reject_subtraction;
          tc "rejects shift-free statements" test_reject_no_shift;
          tc "rejects duplicate offsets" test_reject_duplicate_offset;
          tc "rejects DIM=3" test_reject_dim3;
          tc "rejects coefficient products" test_reject_coeff_product;
          tc "rejects variable shift amounts" test_reject_variable_shift_amount;
          tc "rejects multiple bias terms" test_reject_multiple_bias;
          tc "double-negated shift amounts" test_recognize_double_negated_shift_amount;
          tc "shift by zero" test_recognize_shift_by_zero;
          tc "opposite shifts cancel" test_recognize_opposite_shifts_cancel;
          tc "in-place update allowed" test_recognize_result_may_equal_source;
          tc "subroutine parameter check" test_subroutine_checks_params;
          tc "whole-program compilation with directives"
            test_compile_program_units;
          tc "subroutine single-statement rule"
            test_subroutine_requires_single_statement;
        ] );
    ]
