test/tutil.ml: Alcotest Ccc List Option Printf
