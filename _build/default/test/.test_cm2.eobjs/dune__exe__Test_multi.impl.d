test/test_multi.ml: Alcotest Ccc Ccc_frontend List Printf String Tutil
