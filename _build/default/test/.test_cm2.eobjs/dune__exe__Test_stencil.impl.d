test/test_stencil.ml: Alcotest Ccc_stencil Coeff List Multistencil Offset Option Pattern Printf Render String Tap Tutil
