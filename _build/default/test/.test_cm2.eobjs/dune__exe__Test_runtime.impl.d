test/test_runtime.ml: Alcotest Array Ccc Ccc_cm2 Ccc_microcode Ccc_runtime Ccc_stencil Float Fun List Printf String Tutil
