test/test_microcode.ml: Alcotest Array Ccc_cm2 Ccc_compiler Ccc_microcode Ccc_runtime Ccc_stencil Format List Option Printf String Tutil
