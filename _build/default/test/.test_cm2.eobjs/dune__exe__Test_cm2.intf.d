test/test_cm2.mli:
