test/test_compiler.ml: Alcotest Array Ccc_cm2 Ccc_compiler Ccc_microcode Ccc_stencil Format Hashtbl List Option String Tutil
