test/test_integration.ml: Alcotest Ccc List Tutil
