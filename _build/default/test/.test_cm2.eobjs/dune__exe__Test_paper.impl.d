test/test_paper.ml: Alcotest Ccc Ccc_paper_data Float Hashtbl List Printf Tutil
