test/test_props.ml: Alcotest Ccc Ccc_cm2 Ccc_compiler Ccc_frontend Ccc_runtime Format List Printf QCheck2 QCheck_alcotest String Tutil
