test/test_microcode.mli:
