test/test_baseline.ml: Alcotest Ccc Ccc_baseline List Printf Tutil
