test/test_frontend.ml: Alcotest Ast Ccc Ccc_frontend Ccc_stencil Defstencil Diagnostics Format Lexer List Option Parser Recognize Result Sexp String Token
