test/test_cm2.ml: Alcotest Array Ccc_cm2 Float Hashtbl List Printf Tutil
