(* Unit tests for the stencil IR: offsets, taps, patterns (borders,
   flop accounting, corner detection), multistencils (including the
   paper's quoted register counts), and ASCII rendering. *)

open Ccc_stencil

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let off = Offset.make

(* ------------------------------------------------------------------ *)
(* Offset *)

let test_shift_dims () =
  Alcotest.(check bool)
    "dim 1 is rows" true
    (Offset.equal (Offset.shift ~dim:1 ~amount:(-1)) (off ~drow:(-1) ~dcol:0));
  Alcotest.(check bool)
    "dim 2 is cols" true
    (Offset.equal (Offset.shift ~dim:2 ~amount:3) (off ~drow:0 ~dcol:3));
  Alcotest.check_raises "dim 3 rejected"
    (Invalid_argument "Offset.shift: DIM=3 (expected 1 or 2)") (fun () ->
      ignore (Offset.shift ~dim:3 ~amount:1))

let test_offset_compose () =
  (* CSHIFT(CSHIFT(X,1,-1),2,+1) taps (-1,+1): shifts compose by
     addition. *)
  let composed =
    Offset.add (Offset.shift ~dim:1 ~amount:(-1)) (Offset.shift ~dim:2 ~amount:1)
  in
  check_bool "composition" true (Offset.equal composed (off ~drow:(-1) ~dcol:1))

let test_offset_neg_add_zero () =
  let o = off ~drow:2 ~dcol:(-3) in
  check_bool "o + (-o) = 0" true (Offset.equal (Offset.add o (Offset.neg o)) Offset.zero)

let test_offset_order_row_major () =
  let sorted =
    List.sort Offset.compare
      [ off ~drow:1 ~dcol:0; off ~drow:0 ~dcol:5; off ~drow:0 ~dcol:(-1) ]
  in
  Alcotest.(check (list string)) "row-major order"
    [ "(+0,-1)"; "(+0,+5)"; "(+1,+0)" ]
    (List.map Offset.to_string sorted)

(* ------------------------------------------------------------------ *)
(* Pattern *)

let test_create_rejects_empty () =
  Alcotest.check_raises "empty" (Invalid_argument "Pattern.create: empty tap list")
    (fun () -> ignore (Pattern.create []))

let test_create_rejects_duplicates () =
  match
    Pattern.create
      [ Tap.make Offset.zero (Coeff.Array "A"); Tap.make Offset.zero Coeff.One ]
  with
  | _ -> Alcotest.fail "expected duplicate rejection"
  | exception Invalid_argument _ -> ()

let test_borders_asymmetric () =
  (* The paper's border-width example: a stencil with East 1, North 2,
     South 0, West 3. *)
  let p = Tutil.pattern_of_offsets [ (0, -3); (-2, 0); (0, 1); (0, 0) ] in
  let b = Pattern.borders p in
  check_int "north" 2 b.Pattern.north;
  check_int "south" 0 b.Pattern.south;
  check_int "east" 1 b.Pattern.east;
  check_int "west" 3 b.Pattern.west;
  check_int "max border pads all four sides" 3 (Pattern.max_border p)

let test_useful_flops_cross5 () =
  (* Section 7: the 5-point pattern counts 9 flops (5 multiplies and 4
     adds) despite executing as 5 multiply-add steps. *)
  check_int "cross5" 9 (Pattern.useful_flops_per_point (Pattern.cross5 ()))

let test_useful_flops_gallery () =
  let flops name =
    Pattern.useful_flops_per_point (List.assoc name (Pattern.gallery ()))
  in
  check_int "square9" 17 (flops "square9");
  check_int "cross9" 17 (flops "cross9");
  check_int "diamond13" 25 (flops "diamond13");
  check_int "asymmetric5" 9 (flops "asymmetric5")

let test_useful_flops_bias () =
  (* A bias term contributes its combining add only. *)
  let p =
    Pattern.create ~bias:(Coeff.Array "B")
      [ Tap.make Offset.zero (Coeff.Array "C1") ]
  in
  check_int "1 multiply + 1 add" 2 (Pattern.useful_flops_per_point p)

let test_needs_corners () =
  check_bool "cross5 has no diagonal taps" false
    (Pattern.needs_corners (Pattern.cross5 ()));
  check_bool "cross9 has no diagonal taps" false
    (Pattern.needs_corners (Pattern.cross9 ()));
  check_bool "square9 needs corners" true
    (Pattern.needs_corners (Pattern.square9 ()));
  check_bool "diamond13 needs corners" true
    (Pattern.needs_corners (Pattern.diamond13 ()))

let test_gallery_tap_counts () =
  let count name = Pattern.tap_count (List.assoc name (Pattern.gallery ())) in
  check_int "cross5" 5 (count "cross5");
  check_int "square9" 9 (count "square9");
  check_int "cross9" 9 (count "cross9");
  check_int "diamond13" 13 (count "diamond13");
  check_int "asymmetric5" 5 (count "asymmetric5")

let test_find_tap () =
  let p = Pattern.cross5 () in
  check_bool "center tap present" true
    (Option.is_some (Pattern.find_tap p Offset.zero));
  check_bool "no diagonal tap" true
    (Option.is_none (Pattern.find_tap p (off ~drow:1 ~dcol:1)))

let test_pattern_equal () =
  check_bool "cross5 = cross5" true
    (Pattern.equal (Pattern.cross5 ()) (Pattern.cross5 ()));
  check_bool "cross5 <> square9" false
    (Pattern.equal (Pattern.cross5 ()) (Pattern.square9 ()))

(* ------------------------------------------------------------------ *)
(* Multistencil *)

let test_cross5_width8_positions () =
  (* Section 5.3: the width-8 multistencil of the 5-point cross spans
     26 positions, so 26 loads compute 8 results (vs 40 naively). *)
  let ms = Multistencil.make (Pattern.cross5 ()) ~width:8 in
  check_int "26 positions" 26 (Multistencil.position_count ms)

let test_diamond13_register_demand () =
  (* Section 5.3: a width-8 multistencil of the 13-point diamond would
     require 48 registers; the width-4 one requires only 28. *)
  let w8 = Multistencil.make (Pattern.diamond13 ()) ~width:8 in
  let w4 = Multistencil.make (Pattern.diamond13 ()) ~width:4 in
  check_int "width 8 wants 48 data registers + zero" 49
    (Multistencil.register_demand w8);
  check_int "width 4 wants 28 data registers + zero" 29
    (Multistencil.register_demand w4);
  check_int "width 4 has 28 positions" 28 (Multistencil.position_count w4)

let test_diamond13_column_profile () =
  (* Section 5.4: column heights 1 3 5 5 5 5 3 1 for width 4. *)
  let ms = Multistencil.make (Pattern.diamond13 ()) ~width:4 in
  Alcotest.(check string)
    "column profile" "1 3 5 5 5 5 3 1" (Render.column_profile ms)

let test_width1_is_base_pattern () =
  let p = Pattern.square9 () in
  let ms = Multistencil.make p ~width:1 in
  check_int "positions = taps" (Pattern.tap_count p)
    (Multistencil.position_count ms)

let test_columns_sorted_and_complete () =
  let ms = Multistencil.make (Pattern.cross5 ()) ~width:8 in
  let cols = Multistencil.columns ms in
  check_int "10 columns" 10 (List.length cols);
  let dcols = List.map (fun c -> c.Multistencil.dcol) cols in
  Alcotest.(check (list int)) "ascending -1..8"
    [ -1; 0; 1; 2; 3; 4; 5; 6; 7; 8 ] dcols;
  let total =
    List.fold_left (fun a c -> a + List.length c.Multistencil.occupied) 0 cols
  in
  check_int "columns partition the positions" 26 total

let test_tagged_positions () =
  (* Bottom row, leftmost, translated by the occurrence index. *)
  let ms = Multistencil.make (Pattern.cross5 ()) ~width:4 in
  for j = 0 to 3 do
    let t = Multistencil.tagged_position ms ~occurrence:j in
    check_bool
      (Printf.sprintf "occurrence %d" j)
      true
      (Offset.equal t (off ~drow:1 ~dcol:j))
  done

let test_tagged_position_asymmetric () =
  (* asymmetric5's bottom row holds columns {-1, 0, +2}; leftmost is
     -1. *)
  let ms = Multistencil.make (Pattern.asymmetric5 ()) ~width:2 in
  check_bool "tag at (1,-1)" true
    (Offset.equal
       (Multistencil.tagged_position ms ~occurrence:0)
       (off ~drow:1 ~dcol:(-1)));
  check_bool "occurrence 1 shifts east" true
    (Offset.equal
       (Multistencil.tagged_position ms ~occurrence:1)
       (off ~drow:1 ~dcol:0))

let test_tags_never_needed_to_the_right () =
  (* The property that justifies accumulator recycling: no occurrence
     j' > j taps the tagged position of occurrence j. *)
  List.iter
    (fun (_, p) ->
      let width = 8 in
      let ms = Multistencil.make p ~width in
      for j = 0 to width - 1 do
        let tag = Multistencil.tagged_position ms ~occurrence:j in
        for j' = j + 1 to width - 1 do
          let taps = Multistencil.occurrence_taps ms ~occurrence:j' in
          check_bool
            (Printf.sprintf "tag %d untouched by occurrence %d" j j')
            false
            (List.exists (fun (pos, _) -> Offset.equal pos tag) taps)
        done
      done)
    (Pattern.gallery ())

let test_occurrence_taps_translate () =
  let ms = Multistencil.make (Pattern.cross5 ()) ~width:3 in
  let taps = Multistencil.occurrence_taps ms ~occurrence:2 in
  check_int "five taps" 5 (List.length taps);
  check_bool "center translated to (0,2)" true
    (List.exists (fun (pos, _) -> Offset.equal pos (off ~drow:0 ~dcol:2)) taps)

let test_row_range () =
  let ms = Multistencil.make (Pattern.cross9 ()) ~width:4 in
  let lo, hi = Multistencil.row_range ms in
  check_int "top" (-2) lo;
  check_int "bottom" 2 hi

let test_pinned_registers () =
  let plain = Multistencil.make (Pattern.cross5 ()) ~width:2 in
  check_int "zero only" 1 (Multistencil.pinned_registers plain);
  let biased =
    Multistencil.make
      (Pattern.create ~bias:(Coeff.Array "B") [ Tap.make Offset.zero Coeff.One ])
      ~width:2
  in
  check_int "zero and one" 2 (Multistencil.pinned_registers biased)

let test_width_validation () =
  Alcotest.check_raises "width 0" (Invalid_argument "Multistencil.make: width < 1")
    (fun () -> ignore (Multistencil.make (Pattern.cross5 ()) ~width:0))

(* ------------------------------------------------------------------ *)
(* Render *)

let test_render_cross5 () =
  let picture = Render.pattern (Pattern.cross5 ()) in
  Alcotest.(check string) "cross picture" ". # .\n# @ #\n. # .\n" picture

let test_render_asymmetric () =
  (* The result position is not a tap in patterns that skip the
     center; the picture marks it with 'o'. *)
  let p = Tutil.pattern_of_offsets [ (0, 1); (0, 2) ] in
  Alcotest.(check string) "o marks result" "o # #\n" (Render.pattern p)

let test_render_multistencil_tags () =
  let ms = Multistencil.make (Pattern.cross5 ()) ~width:2 in
  let picture = Render.multistencil ms in
  check_bool "has tagged cells" true
    (String.exists (fun c -> c = 'A') picture)

let test_render_borders_line () =
  Alcotest.(check string)
    "borders summary" "North=2 South=2 East=2 West=2"
    (Render.borders (Pattern.diamond13 ()))

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "stencil"
    [
      ( "offset",
        [
          tc "shift dims" test_shift_dims;
          tc "composition" test_offset_compose;
          tc "neg/add/zero" test_offset_neg_add_zero;
          tc "row-major order" test_offset_order_row_major;
        ] );
      ( "pattern",
        [
          tc "rejects empty" test_create_rejects_empty;
          tc "rejects duplicate offsets" test_create_rejects_duplicates;
          tc "asymmetric borders" test_borders_asymmetric;
          tc "cross5 counts 9 flops" test_useful_flops_cross5;
          tc "gallery flop counts" test_useful_flops_gallery;
          tc "bias flop count" test_useful_flops_bias;
          tc "corner detection" test_needs_corners;
          tc "gallery tap counts" test_gallery_tap_counts;
          tc "find_tap" test_find_tap;
          tc "structural equality" test_pattern_equal;
        ] );
      ( "multistencil",
        [
          tc "cross5 width 8 has 26 positions" test_cross5_width8_positions;
          tc "diamond13 register demand (48 vs 28)" test_diamond13_register_demand;
          tc "diamond13 column profile 1 3 5 5 5 5 3 1"
            test_diamond13_column_profile;
          tc "width 1 is the base pattern" test_width1_is_base_pattern;
          tc "columns sorted and complete" test_columns_sorted_and_complete;
          tc "tagged positions" test_tagged_positions;
          tc "tagged position of asymmetric pattern"
            test_tagged_position_asymmetric;
          tc "tags never needed to the right" test_tags_never_needed_to_the_right;
          tc "occurrence taps translate" test_occurrence_taps_translate;
          tc "row range" test_row_range;
          tc "pinned registers" test_pinned_registers;
          tc "width validation" test_width_validation;
        ] );
      ( "render",
        [
          tc "cross5 picture" test_render_cross5;
          tc "result position marker" test_render_asymmetric;
          tc "multistencil tags" test_render_multistencil_tags;
          tc "borders line" test_render_borders_line;
        ] );
    ]
