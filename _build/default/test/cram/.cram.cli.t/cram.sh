  $ ../../bin/ccc_cli.exe compile cross5.f
  $ ../../bin/ccc_cli.exe compile bad.f
  $ echo 'R = C1 * CSHIFT(X, 1, -1) + C2 * CSHIFT(Y, 1, +1)' | ../../bin/ccc_cli.exe compile - --fused
  $ ../../bin/ccc_cli.exe gallery | grep taps
