SUBROUTINE CROSS (R, X, C1, C2, C3, C4, C5)
REAL, ARRAY(:,:) :: R, X, C1, C2, C3, C4, C5
R = C1 * CSHIFT(X, 1, -1) &
  + C2 * CSHIFT(X, 2, -1) &
  + C3 * X &
  + C4 * CSHIFT(X, 2, +1) &
  + C5 * CSHIFT(X, 1, +1)
END
