(* Shared helpers for the test suite. *)

let deterministic_seed = 0x5eed

(* A reproducible pseudo-random grid: values depend only on the seed
   and the position, so failures replay exactly. *)
let mixed_grid ~seed ~rows ~cols =
  Ccc.Grid.init ~rows ~cols (fun r c ->
      let h = (seed * 0x9e3779b1) lxor (r * 31) lxor (c * 131) in
      let h = h lxor (h lsr 13) in
      float_of_int (h land 0xffff) /. 65536.0 -. 0.5)

(* Bind every array a pattern references to a fresh grid. *)
let env_for ?(seed = deterministic_seed) ~rows ~cols pattern =
  let names =
    Ccc.Pattern.source_var pattern
    :: List.filter_map
         (fun t -> Ccc.Coeff.array_name t.Ccc.Tap.coeff)
         (Ccc.Pattern.taps pattern)
    @ (match Ccc.Pattern.bias pattern with
      | Some c -> Option.to_list (Ccc.Coeff.array_name c)
      | None -> [])
  in
  List.mapi (fun i n -> (n, mixed_grid ~seed:(seed + i) ~rows ~cols)) names

let compile_exn ?(config = Ccc.Config.default) pattern =
  match Ccc.compile_pattern config pattern with
  | Ok compiled -> compiled
  | Error e -> Alcotest.failf "compile failed: %s" (Ccc.error_to_string e)

let offset ~drow ~dcol = Ccc.Offset.make ~drow ~dcol

let tap ?(coeff = "C") ~drow ~dcol () =
  Ccc.Tap.make (offset ~drow ~dcol) (Ccc.Coeff.Array coeff)

let pattern_of_offsets offs =
  Ccc.Pattern.create
    (List.mapi
       (fun i (drow, dcol) ->
         Ccc.Tap.make (offset ~drow ~dcol)
           (Ccc.Coeff.Array (Printf.sprintf "C%d" (i + 1))))
       offs)

let check_close ?(tol = 1e-9) what expected actual =
  let diff = Ccc.Grid.max_abs_diff expected actual in
  if diff > tol then
    Alcotest.failf "%s: max |diff| = %g exceeds %g" what diff tol

(* Small machine configurations used across suites. *)
let config_2x2 = Ccc.Config.with_nodes ~rows:2 ~cols:2 Ccc.Config.default
let config_1x1 = Ccc.Config.with_nodes ~rows:1 ~cols:1 Ccc.Config.default

let run_both_modes ?(config = Ccc.Config.default) compiled env =
  let simulated =
    Ccc.apply ~mode:Ccc.Exec.Simulate config compiled env
  in
  let fast = Ccc.apply ~mode:Ccc.Exec.Fast config compiled env in
  (simulated, fast)
