(* The reproduction itself, as a test suite: the DESIGN.md group
   reconstruction must be arithmetically consistent with the published
   rows, and the frozen machine model must stay within the error bands
   EXPERIMENTS.md documents.  If a model change drifts the Table-1 fit
   or the Gordon Bell shape, this suite fails before anyone re-reads
   the bench output. *)

module Paper_data = Ccc_paper_data.Paper_data
module Config = Ccc.Config
module Exec = Ccc.Exec
module Stats = Ccc.Stats
module Pattern = Ccc.Pattern

let check_bool = Alcotest.(check bool)

let compiled_cache = Hashtbl.create 8

let compiled_for name =
  match Hashtbl.find_opt compiled_cache name with
  | Some c -> c
  | None ->
      let c = Tutil.compile_exn (List.assoc name (Pattern.gallery ())) in
      Hashtbl.add compiled_cache name c;
      c

let model_mflops (row : Paper_data.row) =
  let config =
    if row.Paper_data.tuned then Config.tuned_runtime Config.default
    else Config.default
  in
  Stats.mflops
    (Exec.estimate ~iterations:row.Paper_data.iterations
       ~sub_rows:row.Paper_data.sub_rows ~sub_cols:row.Paper_data.sub_cols
       config
       (compiled_for row.Paper_data.pattern))

(* ------------------------------------------------------------------ *)
(* The reconstruction argument of DESIGN.md section 2. *)

let test_flop_accounting_identifies_groups () =
  (* For every non-suspect row, Mflops x elapsed seconds must equal
     iterations x 16 nodes x subgrid points x the assigned pattern's
     flops per point, within the table's rounding (the published
     Mflops have 3 significant digits). *)
  List.iter
    (fun (row : Paper_data.row) ->
      if not row.Paper_data.suspect then begin
        let flops_measured = row.Paper_data.mflops *. 1e6 *. row.Paper_data.elapsed_s in
        let points =
          float_of_int
            (row.Paper_data.iterations * 16 * row.Paper_data.sub_rows
           * row.Paper_data.sub_cols)
        in
        let per_point = flops_measured /. points in
        let assigned =
          float_of_int
            (Pattern.useful_flops_per_point
               (List.assoc row.Paper_data.pattern (Pattern.gallery ())))
        in
        let err = Float.abs (per_point -. assigned) /. assigned in
        if err > 0.01 then
          Alcotest.failf "%s %dx%d: %.2f flops/point vs assigned %.0f"
            row.Paper_data.pattern row.Paper_data.sub_rows
            row.Paper_data.sub_cols per_point assigned
      end)
    Paper_data.table1

let test_suspect_row_is_really_inconsistent () =
  (* Row 1's numbers do not satisfy the identity above: that is why it
     is excluded from scoring. *)
  let row = List.hd Paper_data.table1 in
  check_bool "marked suspect" true row.Paper_data.suspect;
  let per_point =
    row.Paper_data.mflops *. 1e6 *. row.Paper_data.elapsed_s
    /. float_of_int
         (row.Paper_data.iterations * 16 * row.Paper_data.sub_rows
        * row.Paper_data.sub_cols)
  in
  check_bool "inconsistent with 9 flops/point" true
    (Float.abs (per_point -. 9.0) /. 9.0 > 0.2)

let test_gordon_bell_rows_imply_38_flops () =
  List.iter
    (fun (row : Paper_data.gordon_bell_row) ->
      let per_point =
        row.Paper_data.gb_gflops *. 1e9 *. row.Paper_data.gb_elapsed_s
        /. float_of_int (row.Paper_data.gb_iterations * 2048 * 64 * 128)
      in
      check_bool
        (Printf.sprintf "%s implies ~38 flops/point" row.Paper_data.label)
        true
        (Float.abs (per_point -. 38.0) < 0.5))
    Paper_data.gordon_bell

(* ------------------------------------------------------------------ *)
(* The frozen model stays inside its documented error bands. *)

let test_table1_residuals_within_bands () =
  List.iter
    (fun (row : Paper_data.row) ->
      if not row.Paper_data.suspect then begin
        let m = model_mflops row in
        let err = (m -. row.Paper_data.mflops) /. row.Paper_data.mflops in
        let band = if row.Paper_data.tuned then 0.30 else 0.20 in
        if Float.abs err > band then
          Alcotest.failf "%s%s %dx%d: model %.1f vs paper %.1f (%.0f%%)"
            row.Paper_data.pattern
            (if row.Paper_data.tuned then "*" else "")
            row.Paper_data.sub_rows row.Paper_data.sub_cols m
            row.Paper_data.mflops (100.0 *. err)
      end)
    Paper_data.table1

let test_table1_shape_claims () =
  let at pattern sub_rows sub_cols tuned =
    model_mflops
      {
        Paper_data.pattern;
        tuned;
        sub_rows;
        sub_cols;
        iterations = 100;
        elapsed_s = 0.0;
        mflops = 0.0;
        extrapolated_gflops = 0.0;
        suspect = false;
      }
  in
  (* Rates rise with subgrid size within each group. *)
  List.iter
    (fun p ->
      check_bool (p ^ " amortizes") true
        (at p 256 256 false > at p 64 64 false))
    [ "square9"; "cross9"; "diamond13" ];
  (* square9 (width 8) beats cross9 (width-4 fallback) at every size. *)
  List.iter
    (fun (r, c) ->
      check_bool "square9 > cross9" true (at "square9" r c false > at "cross9" r c false))
    [ (64, 64); (128, 128); (256, 256) ];
  (* The tuned runtime clears the 10-Gflop headline, extrapolated. *)
  check_bool "headline" true
    (at "diamond13" 256 256 true *. 128.0 /. 1000.0
    > Paper_data.headline_gflops)

let test_gordon_bell_shape () =
  let config =
    Config.with_nodes ~rows:32 ~cols:64 (Config.tuned_runtime Config.default)
  in
  let est version =
    Stats.gflops
      (Ccc.Seismic.estimate ~version ~sub_rows:64 ~sub_cols:128 ~steps:1000
         config)
  in
  let rolled = est Ccc.Seismic.Rolled in
  let unrolled = est Ccc.Seismic.Unrolled3 in
  let paper_ratio = 14.88 /. 11.62 in
  let model_ratio = unrolled /. rolled in
  check_bool "rolled < unrolled" true (rolled < unrolled);
  check_bool "ratio within 0.15 of the paper's 1.28" true
    (Float.abs (model_ratio -. paper_ratio) < 0.15);
  check_bool "unrolled clears 10 Gflops" true (unrolled > 10.0);
  check_bool "absolute rates within the documented -25% band" true
    (rolled > 11.62 *. 0.75 && unrolled > 14.88 *. 0.75)

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "paper"
    [
      ( "reconstruction",
        [
          tc "flop accounting identifies the pattern groups"
            test_flop_accounting_identifies_groups;
          tc "row 1 is internally inconsistent"
            test_suspect_row_is_really_inconsistent;
          tc "Gordon Bell rows imply 38 flops/point"
            test_gordon_bell_rows_imply_38_flops;
        ] );
      ( "model",
        [
          tc "Table 1 residuals within documented bands"
            test_table1_residuals_within_bands;
          tc "Table 1 shape claims" test_table1_shape_claims;
          tc "Gordon Bell shape" test_gordon_bell_shape;
        ] );
    ]
