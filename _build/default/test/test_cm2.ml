(* Unit tests for the CM-2 machine model: configuration, node-grid
   geometry and its hypercube embedding, node memory, the WTL3164
   pipeline semantics, the sequencer scratch memory, and the machine
   container. *)

module Config = Ccc_cm2.Config
module Geometry = Ccc_cm2.Geometry
module Memory = Ccc_cm2.Memory
module Fpu = Ccc_cm2.Fpu
module Sequencer = Ccc_cm2.Sequencer
module Machine = Ccc_cm2.Machine

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Config *)

let test_default_is_16_nodes () =
  check_int "nodes" 16 (Config.node_count Config.default);
  Alcotest.(check (float 0.0)) "clock" 7.0e6 Config.default.Config.clock_hz;
  check_int "registers" 32 Config.default.Config.fpu_registers

let test_full_machine_is_2048_nodes () =
  check_int "nodes" 2048 (Config.node_count Config.full_machine)

let test_with_nodes_rejects_nonpositive () =
  Alcotest.check_raises "zero rows" (Invalid_argument
    "Config.with_nodes: non-positive node grid") (fun () ->
      ignore (Config.with_nodes ~rows:0 ~cols:4 Config.default))

let test_tuned_runtime_sets_flag () =
  check_bool "off by default" false
    Config.default.Config.strength_reduced_frontend;
  check_bool "on after tuning" true
    (Config.tuned_runtime Config.default).Config.strength_reduced_frontend

let test_wtl3164_latencies () =
  (* Section 4.2: multiply at k feeds the add at k+2; the sum lands at
     k+4.  The configuration must encode exactly that. *)
  check_int "add latency" 2 Config.default.Config.madd_add_latency;
  check_int "writeback latency" 4 Config.default.Config.madd_writeback_latency

(* ------------------------------------------------------------------ *)
(* Geometry *)

let test_coord_roundtrip () =
  let g = Geometry.create ~rows:4 ~cols:4 in
  for node = 0 to 15 do
    let row, col = Geometry.coord_of_node g node in
    check_int "roundtrip" node (Geometry.node_of_coord g ~row ~col)
  done

let test_neighbor_wraparound () =
  let g = Geometry.create ~rows:4 ~cols:4 in
  let node = Geometry.node_of_coord g ~row:0 ~col:0 in
  let north = Geometry.neighbor g node Geometry.North in
  check_int "north wraps to bottom row" (Geometry.node_of_coord g ~row:3 ~col:0)
    north;
  let west = Geometry.neighbor g node Geometry.West in
  check_int "west wraps to last column"
    (Geometry.node_of_coord g ~row:0 ~col:3)
    west

let test_neighbor_inverse () =
  let g = Geometry.create ~rows:4 ~cols:8 in
  List.iter
    (fun dir ->
      for node = 0 to Geometry.node_count g - 1 do
        let back =
          Geometry.neighbor g (Geometry.neighbor g node dir)
            (Geometry.opposite dir)
        in
        check_int "neighbor then opposite returns" node back
      done)
    Geometry.all_directions

let test_diagonal_neighbor () =
  let g = Geometry.create ~rows:4 ~cols:4 in
  let node = Geometry.node_of_coord g ~row:1 ~col:1 in
  let ne = Geometry.diagonal_neighbor g node (Geometry.North, Geometry.East) in
  check_int "north-east" (Geometry.node_of_coord g ~row:0 ~col:2) ne

let test_diagonal_rejects_bad_axes () =
  let g = Geometry.create ~rows:4 ~cols:4 in
  Alcotest.check_raises "two horizontals"
    (Invalid_argument "Geometry.diagonal_neighbor: first direction not vertical")
    (fun () ->
      ignore (Geometry.diagonal_neighbor g 0 (Geometry.East, Geometry.West)))

let test_gray_code_adjacent () =
  (* Consecutive Gray codes differ in exactly one bit, including the
     wraparound pair: that is what embeds a ring in the hypercube. *)
  let popcount n =
    let rec go acc n = if n = 0 then acc else go (acc + (n land 1)) (n lsr 1) in
    go 0 n
  in
  let n = 64 in
  for i = 0 to n - 1 do
    let d = Geometry.gray i lxor Geometry.gray ((i + 1) mod n) in
    check_int (Printf.sprintf "gray %d->%d" i (i + 1)) 1 (popcount d)
  done

let test_gray_inverse () =
  for i = 0 to 255 do
    check_int "gray_inverse . gray" i (Geometry.gray_inverse (Geometry.gray i))
  done

let test_hypercube_embedding_16_nodes () =
  let g = Geometry.create ~rows:4 ~cols:4 in
  check_bool "grid neighbors are hypercube neighbors" true
    (Geometry.grid_neighbors_are_hypercube_neighbors g);
  check_int "dimension" 4 (Geometry.hypercube_dimension g)

let test_hypercube_embedding_full_machine () =
  (* 2,048 nodes as 32 x 64: the 11-dimensional hypercube of nodes the
     paper describes in section 3. *)
  let g = Geometry.create ~rows:32 ~cols:64 in
  check_bool "embedding" true (Geometry.grid_neighbors_are_hypercube_neighbors g);
  check_int "dimension" 11 (Geometry.hypercube_dimension g)

let test_hypercube_addresses_distinct () =
  let g = Geometry.create ~rows:8 ~cols:8 in
  let seen = Hashtbl.create 64 in
  for node = 0 to Geometry.node_count g - 1 do
    let addr = Geometry.hypercube_address g node in
    check_bool "address unused" false (Hashtbl.mem seen addr);
    Hashtbl.add seen addr ()
  done

(* ------------------------------------------------------------------ *)
(* Memory *)

let test_memory_read_write () =
  let m = Memory.create ~words:64 in
  Memory.write m 17 3.25;
  Alcotest.(check (float 0.0)) "read back" 3.25 (Memory.read m 17);
  Alcotest.(check (float 0.0)) "fresh is zero" 0.0 (Memory.read m 0)

let test_memory_bounds () =
  let m = Memory.create ~words:8 in
  Alcotest.check_raises "read out of bounds"
    (Invalid_argument "Memory.read: address 8 out of bounds") (fun () ->
      ignore (Memory.read m 8));
  Alcotest.check_raises "negative write"
    (Invalid_argument "Memory.write: address -1 out of bounds") (fun () ->
      Memory.write m (-1) 0.0)

let test_memory_alloc_and_rollback () =
  let m = Memory.create ~words:100 in
  let a = Memory.alloc m ~words:40 in
  let b = Memory.alloc m ~words:40 in
  check_int "a base" 0 a.Memory.base;
  check_int "b base" 40 b.Memory.base;
  check_int "free" 20 (Memory.words_free m);
  Memory.free_all_after m a;
  check_int "rolled back" 60 (Memory.words_free m);
  let c = Memory.alloc m ~words:10 in
  check_int "c reuses b's space" 40 c.Memory.base

let test_memory_exhaustion () =
  let m = Memory.create ~words:16 in
  ignore (Memory.alloc m ~words:10);
  (match Memory.alloc m ~words:10 with
  | _ -> Alcotest.fail "expected allocation failure"
  | exception Failure _ -> ())

let test_memory_blit_roundtrip () =
  let m = Memory.create ~words:32 in
  let r = Memory.alloc m ~words:5 in
  let data = [| 1.0; 2.0; 3.0; 4.0; 5.0 |] in
  Memory.blit_in m r data;
  Alcotest.(check (array (float 0.0))) "roundtrip" data (Memory.blit_out m r)

(* ------------------------------------------------------------------ *)
(* Fpu: the pipeline semantics the whole compiler relies on. *)

let make_fpu () = Fpu.create ~registers:8 ()

let test_fpu_madd_lands_at_plus_4 () =
  let f = make_fpu () in
  Fpu.poke f 1 10.0;
  (* r2 <- r1 * 2.0 + r0(=0), issued at cycle 0 *)
  Fpu.issue_madd f ~dst:2 ~data:1 ~coeff:2.0 ~acc:0;
  Fpu.advance_to f 3;
  Alcotest.(check (float 0.0)) "not yet at +3" 0.0 (Fpu.read f 2);
  Fpu.advance_to f 4;
  Alcotest.(check (float 0.0)) "landed at +4" 20.0 (Fpu.read f 2)

let test_fpu_data_read_at_issue () =
  (* The data operand is sampled when the multiply issues; a later
     change to the register must not affect the product. *)
  let f = make_fpu () in
  Fpu.poke f 1 3.0;
  Fpu.issue_madd f ~dst:2 ~data:1 ~coeff:5.0 ~acc:0;
  Fpu.poke f 1 999.0;
  Fpu.advance_to f 4;
  Alcotest.(check (float 0.0)) "product uses old value" 15.0 (Fpu.read f 2)

let test_fpu_acc_read_at_plus_2 () =
  (* The accumulator is read when the addition starts (issue + 2), so
     a write landing on that very cycle is visible: this is the
     chained-accumulate spacing rule. *)
  let f = make_fpu () in
  Fpu.poke f 1 1.0;
  Fpu.issue_madd f ~dst:3 ~data:1 ~coeff:7.0 ~acc:0;
  (* lands at 4 *)
  Fpu.advance_to f 2;
  Fpu.issue_madd f ~dst:3 ~data:1 ~coeff:1.0 ~acc:3;
  (* issued at 2, acc read at 4: must see the first result (7). *)
  Fpu.advance_to f 6;
  Alcotest.(check (float 0.0)) "chained" 8.0 (Fpu.read f 3)

let test_fpu_just_in_time_reuse () =
  (* Section 5.3's trick: a register about to be overwritten by an
     accumulation can still serve as a data operand for reads issued
     before the write lands. *)
  let f = make_fpu () in
  Fpu.poke f 4 11.0;
  (* chain writes r4 starting now; lands at 4 *)
  Fpu.issue_madd f ~dst:4 ~data:4 ~coeff:2.0 ~acc:0;
  Fpu.advance_to f 3;
  Alcotest.(check (float 0.0)) "old value at +3" 11.0 (Fpu.read f 4);
  Fpu.issue_madd f ~dst:5 ~data:4 ~coeff:1.0 ~acc:0;
  Fpu.advance_to f 7;
  Alcotest.(check (float 0.0)) "read got old value" 11.0 (Fpu.read f 5);
  Alcotest.(check (float 0.0)) "accumulation landed" 22.0 (Fpu.read f 4)

let test_fpu_pending_write () =
  let f = make_fpu () in
  Fpu.issue_madd f ~dst:2 ~data:1 ~coeff:1.0 ~acc:0;
  Alcotest.(check bool) "pending" true (Fpu.pending_write f ~reg:2);
  Fpu.advance_to f 4;
  Alcotest.(check bool) "landed" false (Fpu.pending_write f ~reg:2)

let test_fpu_drain () =
  let f = make_fpu () in
  Fpu.issue_madd f ~dst:2 ~data:1 ~coeff:1.0 ~acc:0;
  Fpu.drain f;
  Alcotest.(check bool) "nothing pending" false (Fpu.pending_write f ~reg:2);
  check_int "drained to landing" 4 (Fpu.now f)

let test_fpu_flop_slots () =
  let f = make_fpu () in
  Fpu.issue_madd f ~dst:2 ~data:1 ~coeff:1.0 ~acc:0;
  Fpu.advance_to f 2;
  Fpu.issue_madd f ~dst:3 ~data:1 ~coeff:1.0 ~acc:0;
  check_int "two per madd" 4 (Fpu.total_flop_slots f)

let test_fpu_schedule_write_load_path () =
  let f = make_fpu () in
  Fpu.schedule_write f ~at:1 ~reg:6 42.0;
  Alcotest.(check (float 0.0)) "not yet" 0.0 (Fpu.read f 6);
  Fpu.tick f;
  Alcotest.(check (float 0.0)) "landed" 42.0 (Fpu.read f 6)

let test_fpu_register_bounds () =
  let f = make_fpu () in
  Alcotest.check_raises "bad register"
    (Invalid_argument "Fpu: read register 8 out of range") (fun () ->
      ignore (Fpu.read f 8))

let test_fpu_single_precision_rounding () =
  (* The WTL3164 mode: products and sums round to IEEE single
     precision.  0.1 is not representable in either width; the
     single-precision product differs from the double one. *)
  let f =
    Fpu.create ~single_precision:true ~registers:4 ()
  in
  Fpu.poke f 1 0.1;
  Fpu.issue_madd f ~dst:2 ~data:1 ~coeff:0.1 ~acc:0;
  Fpu.advance_to f 4;
  let single = Fpu.read f 2 in
  Alcotest.(check (float 0.0)) "rounded to single" (Fpu.round32 (0.1 *. 0.1))
    single;
  check_bool "differs from double" true (single <> 0.1 *. 0.1)

let test_round32_idempotent () =
  List.iter
    (fun v ->
      Alcotest.(check (float 0.0)) "idempotent" (Fpu.round32 v)
        (Fpu.round32 (Fpu.round32 v)))
    [ 0.0; 1.0; 0.1; -3.25; 1e30; 1e-30; Float.pi ]

(* ------------------------------------------------------------------ *)
(* Router *)

let router_4x4 () = Ccc_cm2.Router.create (Geometry.create ~rows:4 ~cols:4)

let test_router_rejects_non_power_of_two () =
  match Ccc_cm2.Router.create (Geometry.create ~rows:3 ~cols:4) with
  | _ -> Alcotest.fail "3x4 is not addressable"
  | exception Invalid_argument _ -> ()

let test_router_grid_neighbors_one_hop () =
  check_bool "4x4" true
    (Ccc_cm2.Router.news_exchange_is_single_hop (router_4x4 ()));
  check_bool "full machine (32x64)" true
    (Ccc_cm2.Router.news_exchange_is_single_hop
       (Ccc_cm2.Router.create (Geometry.create ~rows:32 ~cols:64)))

let test_router_route_length_is_hamming () =
  let r = router_4x4 () in
  for src = 0 to 15 do
    for dst = 0 to 15 do
      let path = Ccc_cm2.Router.route r ~src ~dst in
      check_int
        (Printf.sprintf "path %d->%d" src dst)
        (Ccc_cm2.Router.hops r ~src ~dst)
        (List.length path);
      (* The path ends at the destination (or is empty for src=dst). *)
      (match List.rev path with
      | last :: _ -> check_int "reaches dst" dst last
      | [] -> check_int "self route" src dst)
    done
  done

let test_router_hops_bounded_by_dimension () =
  let r = router_4x4 () in
  check_int "dimension" 4 (Ccc_cm2.Router.dimension r);
  for src = 0 to 15 do
    for dst = 0 to 15 do
      check_bool "within dimension" true
        (Ccc_cm2.Router.hops r ~src ~dst <= 4)
    done
  done

let test_router_news_wire_disjoint () =
  let r = router_4x4 () in
  List.iter
    (fun dir ->
      check_bool "no wire shared" true
        (Ccc_cm2.Router.news_exchange_wire_disjoint r dir))
    Geometry.all_directions

(* ------------------------------------------------------------------ *)
(* Slicewise storage formats *)

let sample_values =
  Array.init Ccc_cm2.Slicewise.processors (fun p ->
      Fpu.round32 (sin (float_of_int p) *. 10.0))

let test_processorwise_roundtrip () =
  let slices = Ccc_cm2.Slicewise.processorwise_store sample_values in
  check_int "32 slices" 32 (Array.length slices);
  Alcotest.(check (array (float 0.0)))
    "roundtrip" sample_values
    (Ccc_cm2.Slicewise.processorwise_load slices)

let test_slicewise_roundtrip () =
  Array.iter
    (fun v ->
      Alcotest.(check (float 0.0)) "roundtrip" v
        (Ccc_cm2.Slicewise.slicewise_load (Ccc_cm2.Slicewise.slicewise_store v)))
    sample_values

let test_transpose_converts_formats () =
  (* The interface chip's job in the fieldwise world: transposing the
     processorwise slices of 32 words yields the 32 slicewise words. *)
  let processorwise = Ccc_cm2.Slicewise.processorwise_store sample_values in
  let transposed = Ccc_cm2.Slicewise.transpose processorwise in
  Array.iteri
    (fun p v ->
      Alcotest.(check (float 0.0))
        (Printf.sprintf "word %d" p)
        v
        (Ccc_cm2.Slicewise.slicewise_load transposed.(p)))
    sample_values

let test_transpose_involution () =
  let slices = Ccc_cm2.Slicewise.processorwise_store sample_values in
  Alcotest.(check (array int32))
    "transpose twice is identity" slices
    (Ccc_cm2.Slicewise.transpose (Ccc_cm2.Slicewise.transpose slices))

let test_format_cycle_costs () =
  (* The section-3 argument: slicewise feeds the FPU one word per
     cycle; processorwise needs 32. *)
  check_int "slicewise" 1 Ccc_cm2.Slicewise.slicewise_word_cycles;
  check_int "processorwise" 32 Ccc_cm2.Slicewise.processorwise_word_cycles

(* ------------------------------------------------------------------ *)
(* Sequencer *)

let test_sequencer_stream () =
  let s = Sequencer.create ~capacity:8 in
  Sequencer.load s [| "a"; "b"; "c" |];
  Alcotest.(check string) "first" "a" (Sequencer.next s);
  Alcotest.(check string) "second" "b" (Sequencer.next s);
  Sequencer.reset_counter s 0;
  Alcotest.(check string) "after reset" "a" (Sequencer.next s)

let test_sequencer_capacity () =
  let s = Sequencer.create ~capacity:2 in
  match Sequencer.load s [| 1; 2; 3 |] with
  | () -> Alcotest.fail "expected capacity failure"
  | exception Failure _ -> ()

let test_sequencer_runs_off_end () =
  let s = Sequencer.create ~capacity:4 in
  Sequencer.load s [| 1 |];
  ignore (Sequencer.next s);
  Alcotest.check_raises "off the end"
    (Invalid_argument "Sequencer.next: ran off the end of the loaded table")
    (fun () -> ignore (Sequencer.next s))

(* ------------------------------------------------------------------ *)
(* Machine *)

let test_machine_alloc_all_uniform () =
  let m = Machine.create ~memory_words:1024 Tutil.config_2x2 in
  let r1 = Machine.alloc_all m ~words:100 in
  let r2 = Machine.alloc_all m ~words:50 in
  check_int "r1 base" 0 r1.Memory.base;
  check_int "r2 base" 100 r2.Memory.base;
  Machine.free_all_after m r1;
  let r3 = Machine.alloc_all m ~words:10 in
  check_int "r3 reuses r2's space" 100 r3.Memory.base

let test_machine_node_memories_independent () =
  let m = Machine.create ~memory_words:64 Tutil.config_2x2 in
  let r = Machine.alloc_all m ~words:4 in
  Memory.write (Machine.memory m 0) r.Memory.base 1.0;
  Alcotest.(check (float 0.0)) "node 1 unaffected" 0.0
    (Memory.read (Machine.memory m 1) r.Memory.base)

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "cm2"
    [
      ( "config",
        [
          tc "default is the 16-node test machine" test_default_is_16_nodes;
          tc "full machine has 2048 nodes" test_full_machine_is_2048_nodes;
          tc "with_nodes validates" test_with_nodes_rejects_nonpositive;
          tc "tuned_runtime sets strength reduction" test_tuned_runtime_sets_flag;
          tc "WTL3164 latencies" test_wtl3164_latencies;
        ] );
      ( "geometry",
        [
          tc "coord roundtrip" test_coord_roundtrip;
          tc "neighbors wrap around" test_neighbor_wraparound;
          tc "neighbor inverse" test_neighbor_inverse;
          tc "diagonal neighbor" test_diagonal_neighbor;
          tc "diagonal axis validation" test_diagonal_rejects_bad_axes;
          tc "gray code adjacency" test_gray_code_adjacent;
          tc "gray inverse" test_gray_inverse;
          tc "16-node embedding" test_hypercube_embedding_16_nodes;
          tc "2048-node embedding" test_hypercube_embedding_full_machine;
          tc "hypercube addresses distinct" test_hypercube_addresses_distinct;
        ] );
      ( "memory",
        [
          tc "read/write" test_memory_read_write;
          tc "bounds" test_memory_bounds;
          tc "alloc and rollback" test_memory_alloc_and_rollback;
          tc "exhaustion" test_memory_exhaustion;
          tc "blit roundtrip" test_memory_blit_roundtrip;
        ] );
      ( "fpu",
        [
          tc "madd lands at +4" test_fpu_madd_lands_at_plus_4;
          tc "data operand read at issue" test_fpu_data_read_at_issue;
          tc "accumulator read at +2" test_fpu_acc_read_at_plus_2;
          tc "just-in-time register reuse" test_fpu_just_in_time_reuse;
          tc "pending write tracking" test_fpu_pending_write;
          tc "drain" test_fpu_drain;
          tc "flop slot accounting" test_fpu_flop_slots;
          tc "load path write scheduling" test_fpu_schedule_write_load_path;
          tc "register bounds" test_fpu_register_bounds;
          tc "single-precision rounding" test_fpu_single_precision_rounding;
          tc "round32 idempotent" test_round32_idempotent;
        ] );
      ( "router",
        [
          tc "rejects non-power-of-two grids" test_router_rejects_non_power_of_two;
          tc "grid neighbors are one hop" test_router_grid_neighbors_one_hop;
          tc "path length = hamming distance" test_router_route_length_is_hamming;
          tc "hops bounded by dimension" test_router_hops_bounded_by_dimension;
          tc "NEWS exchange is wire-disjoint" test_router_news_wire_disjoint;
        ] );
      ( "slicewise",
        [
          tc "processorwise roundtrip" test_processorwise_roundtrip;
          tc "slicewise roundtrip" test_slicewise_roundtrip;
          tc "transpose converts formats" test_transpose_converts_formats;
          tc "transpose is an involution" test_transpose_involution;
          tc "format cycle costs" test_format_cycle_costs;
        ] );
      ( "sequencer",
        [
          tc "streams dynamic parts" test_sequencer_stream;
          tc "capacity enforced" test_sequencer_capacity;
          tc "running off the end" test_sequencer_runs_off_end;
        ] );
      ( "machine",
        [
          tc "uniform SIMD allocation" test_machine_alloc_all_uniform;
          tc "node memories independent" test_machine_node_memories_independent;
        ] );
    ]
