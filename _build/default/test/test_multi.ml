(* Tests for the multi-source (fused) extension — the paper's future
   work: "handle all ten terms as one stencil pattern". *)

module Config = Ccc.Config
module Multi = Ccc.Multi
module Pattern = Ccc.Pattern
module Offset = Ccc.Offset
module Coeff = Ccc.Coeff
module Tap = Ccc.Tap
module Grid = Ccc.Grid
module Exec = Ccc.Exec
module Stats = Ccc.Stats
module Plan = Ccc.Plan

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_float = Alcotest.(check (float 1e-9))
let config = Config.default

(* The fused Gordon Bell statement: nine shifted P terms plus the
   tenth term over POLD, as one pattern. *)
let gordon_bell_fused () =
  let p_taps =
    List.mapi
      (fun i (drow, dcol) ->
        {
          Multi.source = 0;
          tap =
            Tap.make (Offset.make ~drow ~dcol)
              (Coeff.Array (Printf.sprintf "C%d" (i + 1)));
        })
      [ (-2, 0); (-1, 0); (0, -2); (0, -1); (0, 0); (0, 1); (0, 2); (1, 0);
        (2, 0) ]
  in
  let tenth =
    { Multi.source = 1; tap = Tap.make Offset.zero (Coeff.Array "C10") }
  in
  Multi.create ~result:"PNEW" ~sources:[ "P"; "POLD" ] (p_taps @ [ tenth ])

let fused_env ~rows ~cols multi =
  List.mapi
    (fun i name -> (name, Tutil.mixed_grid ~seed:(100 + i) ~rows ~cols))
    (Multi.referenced_arrays multi)

let compile_fused_exn multi =
  match Ccc.compile_multi config multi with
  | Ok fused -> fused
  | Error e -> Alcotest.failf "fused compile failed: %s" (Ccc.error_to_string e)

(* ------------------------------------------------------------------ *)
(* Multi IR *)

let test_of_pattern_roundtrip () =
  let p = Pattern.cross5 () in
  let m = Multi.of_pattern p in
  check_int "one source" 1 (Multi.source_count m);
  match Multi.to_pattern m with
  | Some p' -> check_bool "roundtrip" true (Pattern.equal p p')
  | None -> Alcotest.fail "to_pattern failed"

let test_flop_accounting () =
  (* Ten terms: 10 multiplies + 9 adds = 19 -- the fused Gordon Bell
     kernel's count. *)
  check_int "19 flops/point" 19
    (Multi.useful_flops_per_point (gordon_bell_fused ()))

let test_primary_source_is_bottom_most () =
  (* P owns the bottom-most row (+2); POLD only taps (0,0). *)
  check_int "primary is P" 0 (Multi.primary_source (gordon_bell_fused ()))

let test_per_source_borders () =
  let m = gordon_bell_fused () in
  check_int "P needs border 2" 2 (Multi.max_border m 0);
  check_int "POLD needs no border" 0 (Multi.max_border m 1);
  check_bool "no corners anywhere" false
    (Multi.needs_corners m 0 || Multi.needs_corners m 1)

let test_create_validation () =
  (match
     Multi.create ~sources:[ "A"; "B" ]
       [ { Multi.source = 0; tap = Tap.make Offset.zero Coeff.One } ]
   with
  | _ -> Alcotest.fail "source B has no tap"
  | exception Invalid_argument _ -> ());
  match
    Multi.create ~sources:[ "A" ]
      [ { Multi.source = 3; tap = Tap.make Offset.zero Coeff.One } ]
  with
  | _ -> Alcotest.fail "source index out of range"
  | exception Invalid_argument _ -> ()

(* ------------------------------------------------------------------ *)
(* Fused compilation *)

let test_gordon_bell_compiles_fused () =
  let fused = compile_fused_exn (gordon_bell_fused ()) in
  let widths =
    List.map (fun p -> p.Plan.width) fused.Ccc.Compile.fused_plans
  in
  (* P's width-4 multistencil costs 24 registers; POLD adds 4 columns
     of span 1 at width 4 -> 28 + zero fits, width 8 does not
     (P alone wants 44). *)
  Alcotest.(check (list int)) "widths" [ 4; 2; 1 ] widths

let test_fused_register_sharing () =
  let fused = compile_fused_exn (gordon_bell_fused ()) in
  let plan = Ccc.Compile.fused_widest fused in
  check_bool "within the file" true
    (plan.Plan.registers_used <= config.Config.fpu_registers);
  (* Rings from both sources, no overlapping register ranges. *)
  let ranges =
    List.map
      (fun (r : Plan.ring) -> (r.Plan.base, r.Plan.base + r.Plan.size - 1))
      plan.Plan.rings
  in
  let sorted = List.sort compare ranges in
  let rec disjoint = function
    | (_, hi) :: ((lo, _) :: _ as rest) ->
        check_bool "disjoint rings" true (lo > hi);
        disjoint rest
    | [ _ ] | [] -> ()
  in
  disjoint sorted;
  check_bool "has POLD rings" true
    (List.exists (fun (r : Plan.ring) -> r.Plan.src = 1) plan.Plan.rings)

let test_single_source_fused_equals_plain () =
  (* Compiling a plain pattern through the fused path must produce the
     same widths, registers and cycle costs. *)
  let p = Pattern.square9 () in
  let plain = Tutil.compile_exn p in
  let fused = compile_fused_exn (Multi.of_pattern p) in
  List.iter2
    (fun (a : Plan.t) (b : Plan.t) ->
      check_int "width" a.Plan.width b.Plan.width;
      check_int "registers" a.Plan.registers_used b.Plan.registers_used;
      check_int "unroll" a.Plan.unroll b.Plan.unroll;
      check_int "line cycles"
        (Ccc.Cost.line_cycles config a)
        (Ccc.Cost.line_cycles config b))
    plain.Ccc.Compile.plans fused.Ccc.Compile.fused_plans

(* ------------------------------------------------------------------ *)
(* Fused execution *)

let test_fused_matches_reference_fast () =
  let multi = gordon_bell_fused () in
  let fused = compile_fused_exn multi in
  let env = fused_env ~rows:32 ~cols:32 multi in
  let expected = Exec.reference_fused multi env in
  let { Exec.output; _ } = Ccc.apply_fused config fused env in
  check_float "fast" 0.0 (Grid.max_abs_diff expected output)

let test_fused_matches_reference_simulated () =
  let multi = gordon_bell_fused () in
  let fused = compile_fused_exn multi in
  let env = fused_env ~rows:32 ~cols:32 multi in
  let expected = Exec.reference_fused multi env in
  let { Exec.output; stats } =
    Ccc.apply_fused ~mode:Exec.Simulate config fused env
  in
  check_bool "simulated close" true
    (Grid.max_abs_diff expected output < 1e-9);
  check_bool "corner exchange skipped" true stats.Stats.corners_skipped

let test_fused_equals_separate_passes () =
  (* The semantic identity behind the fusion: one fused statement =
     stencil + separate tenth-term pass. *)
  let multi = gordon_bell_fused () in
  let fused = compile_fused_exn multi in
  let env = fused_env ~rows:32 ~cols:32 multi in
  let { Exec.output = fused_out; _ } = Ccc.apply_fused config fused env in
  let nine =
    Pattern.create ~source:"P" ~result:"PNEW"
      (List.filteri (fun i _ -> i < 9)
         (List.map (fun (st : Multi.source_tap) -> st.Multi.tap)
            (Multi.taps multi)))
  in
  let stencil_out = Ccc.Reference.apply nine env in
  let manual =
    Grid.map2
      (fun s extra -> s +. extra)
      stencil_out
      (Grid.map2 ( *. )
         (List.assoc "C10" env)
         (List.assoc "POLD" env))
  in
  check_bool "fusion preserves semantics" true
    (Grid.max_abs_diff manual fused_out < 1e-9)

let test_fused_comm_counts_both_sources () =
  (* POLD has zero border: its exchange is free; P pays the usual
     cost, so fused comm equals the nine-point kernel's comm. *)
  let multi = gordon_bell_fused () in
  let fused = compile_fused_exn multi in
  let stats = Exec.estimate_fused ~sub_rows:64 ~sub_cols:64 config fused in
  let nine = Tutil.compile_exn (Pattern.cross9 ()) in
  let nine_stats = Exec.estimate ~sub_rows:64 ~sub_cols:64 config nine in
  check_int "comm cycles" nine_stats.Stats.comm_cycles stats.Stats.comm_cycles

let test_fused_estimate_matches_run () =
  let multi = gordon_bell_fused () in
  let fused = compile_fused_exn multi in
  let env = fused_env ~rows:(4 * 9) ~cols:(4 * 11) multi in
  let { Exec.stats = run_stats; _ } = Ccc.apply_fused config fused env in
  let est = Exec.estimate_fused ~sub_rows:9 ~sub_cols:11 config fused in
  check_int "compute" run_stats.Stats.compute_cycles est.Stats.compute_cycles;
  check_int "comm" run_stats.Stats.comm_cycles est.Stats.comm_cycles;
  check_int "flops" run_stats.Stats.useful_flops_per_iteration
    est.Stats.useful_flops_per_iteration

let test_fused_beats_separate_tenth_pass () =
  (* The payoff the paper anticipated: fusing the tenth term into the
     stencil beats running it as a separate elementwise pass. *)
  let multi = gordon_bell_fused () in
  let fused = compile_fused_exn multi in
  let fused_stats =
    Exec.estimate_fused ~sub_rows:64 ~sub_cols:128 ~iterations:100 config fused
  in
  let unfused =
    Ccc.Seismic.estimate ~version:Ccc.Seismic.Unrolled3 ~sub_rows:64
      ~sub_cols:128 ~steps:100 config
  in
  check_bool "fused is faster" true
    (Stats.mflops fused_stats > Stats.mflops unfused)

let test_fused_eoshift_and_bias () =
  (* End-off boundaries and a bias term through the fused pipeline. *)
  let multi =
    Multi.create ~bias:(Coeff.Array "B")
      ~boundary:(Ccc.Boundary.End_off 1.5)
      ~sources:[ "A"; "Z" ]
      [
        {
          Multi.source = 0;
          tap = Tap.make (Offset.make ~drow:(-1) ~dcol:0) (Coeff.Array "K1");
        };
        { Multi.source = 0; tap = Tap.make Offset.zero (Coeff.Scalar 0.5) };
        {
          Multi.source = 1;
          tap = Tap.make (Offset.make ~drow:1 ~dcol:1) Coeff.One;
        };
      ]
  in
  let fused = compile_fused_exn multi in
  let env = fused_env ~rows:16 ~cols:16 multi in
  let expected = Exec.reference_fused multi env in
  let { Exec.output; _ } =
    Ccc.apply_fused ~mode:Exec.Simulate config fused env
  in
  check_bool "close" true (Grid.max_abs_diff expected output < 1e-9)

let test_fused_three_sources () =
  (* Three time levels in one statement (a higher-order scheme). *)
  let multi =
    Multi.create ~sources:[ "P0"; "P1"; "P2" ]
      [
        {
          Multi.source = 0;
          tap = Tap.make (Offset.make ~drow:(-1) ~dcol:0) (Coeff.Array "K1");
        };
        { Multi.source = 0; tap = Tap.make Offset.zero (Coeff.Array "K2") };
        {
          Multi.source = 0;
          tap = Tap.make (Offset.make ~drow:1 ~dcol:0) (Coeff.Array "K3");
        };
        { Multi.source = 1; tap = Tap.make Offset.zero (Coeff.Array "K4") };
        { Multi.source = 2; tap = Tap.make Offset.zero (Coeff.Array "K5") };
      ]
  in
  let fused = compile_fused_exn multi in
  let env = fused_env ~rows:16 ~cols:20 multi in
  let expected = Exec.reference_fused multi env in
  let { Exec.output; _ } =
    Ccc.apply_fused ~mode:Exec.Simulate config fused env
  in
  check_bool "close" true (Grid.max_abs_diff expected output < 1e-9)

(* ------------------------------------------------------------------ *)
(* Multi recognizer *)

let recognize_multi src =
  match
    Ccc_frontend.Recognize.statement_multi
      (Ccc_frontend.Parser.parse_statement src)
  with
  | Ok m -> m
  | Error ds ->
      Alcotest.failf "rejected: %s"
        (String.concat "; "
           (List.map Ccc_frontend.Diagnostics.to_string ds))

let test_recognize_two_sources () =
  let m =
    recognize_multi
      "PNEW = C1 * CSHIFT(P, 1, -1) + C2 * P + C10 * CSHIFT(POLD, 1, 0)"
  in
  Alcotest.(check (list string)) "sources" [ "P"; "POLD" ] (Multi.sources m);
  check_int "three taps" 3 (Multi.tap_count m)

let test_recognize_gordon_bell_statement () =
  let src =
    "PNEW = C1 * CSHIFT(P, 1, -2) + C2 * CSHIFT(P, 1, -1) &\n\
    \     + C3 * CSHIFT(P, 2, -2) + C4 * CSHIFT(P, 2, -1) &\n\
    \     + C5 * P &\n\
    \     + C6 * CSHIFT(P, 2, +1) + C7 * CSHIFT(P, 2, +2) &\n\
    \     + C8 * CSHIFT(P, 1, +1) + C9 * CSHIFT(P, 1, +2) &\n\
    \     + C10 * CSHIFT(POLD, 1, 0)"
  in
  let m = recognize_multi src in
  check_int "ten terms as one pattern" 10 (Multi.tap_count m);
  check_int "two sources" 2 (Multi.source_count m);
  check_int "19 flops/point" 19 (Multi.useful_flops_per_point m);
  (* And it compiles. *)
  match Ccc.compile_multi config m with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "does not compile: %s" (Ccc.error_to_string e)

let test_recognize_single_source_agrees () =
  let src = "R = C1 * CSHIFT(X, 1, -1) + C2 * X" in
  let single =
    match
      Ccc_frontend.Recognize.statement
        (Ccc_frontend.Parser.parse_statement src)
    with
    | Ok p -> p
    | Error _ -> Alcotest.fail "single rejected"
  in
  let multi = recognize_multi src in
  match Multi.to_pattern multi with
  | Some p -> check_bool "same pattern" true (Pattern.equal p single)
  | None -> Alcotest.fail "not single-source"

let test_recognize_ambiguous_product () =
  match
    Ccc_frontend.Recognize.statement_multi
      (Ccc_frontend.Parser.parse_statement
         "R = C1 * CSHIFT(P, 1, 1) + C10 * POLD")
  with
  | Ok _ -> Alcotest.fail "C10 * POLD is ambiguous and must be reported"
  | Error ds ->
      check_bool "mentions the marker idiom" true
        (List.exists
           (fun d ->
             d.Ccc_frontend.Diagnostics.code
             = Ccc_frontend.Diagnostics.Not_sum_of_products)
           ds)

let test_recognize_two_sources_both_shifted_product () =
  match
    Ccc_frontend.Recognize.statement_multi
      (Ccc_frontend.Parser.parse_statement
         "R = CSHIFT(P, 1, 1) * CSHIFT(Q, 1, 1)")
  with
  | Ok _ -> Alcotest.fail "source * source must be rejected"
  | Error _ -> ()

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "multi"
    [
      ( "ir",
        [
          tc "of_pattern roundtrip" test_of_pattern_roundtrip;
          tc "flop accounting (19 for the fused kernel)" test_flop_accounting;
          tc "primary source owns the bottom row"
            test_primary_source_is_bottom_most;
          tc "per-source borders" test_per_source_borders;
          tc "creation validation" test_create_validation;
        ] );
      ( "compile",
        [
          tc "Gordon Bell statement compiles fused"
            test_gordon_bell_compiles_fused;
          tc "register sharing across sources" test_fused_register_sharing;
          tc "single-source fused = plain" test_single_source_fused_equals_plain;
        ] );
      ( "execute",
        [
          tc "fast matches reference" test_fused_matches_reference_fast;
          tc "simulated matches reference" test_fused_matches_reference_simulated;
          tc "fusion preserves pass semantics" test_fused_equals_separate_passes;
          tc "comm counts both sources" test_fused_comm_counts_both_sources;
          tc "estimate matches run" test_fused_estimate_matches_run;
          tc "fusing beats the separate tenth pass"
            test_fused_beats_separate_tenth_pass;
          tc "EOSHIFT boundary and bias, fused" test_fused_eoshift_and_bias;
          tc "three time levels in one statement" test_fused_three_sources;
        ] );
      ( "recognize",
        [
          tc "two sources" test_recognize_two_sources;
          tc "the ten-term Gordon Bell statement"
            test_recognize_gordon_bell_statement;
          tc "agrees with the single-source recognizer"
            test_recognize_single_source_agrees;
          tc "ambiguous coefficient product reported"
            test_recognize_ambiguous_product;
          tc "source-times-source rejected"
            test_recognize_two_sources_both_shifted_product;
        ] );
    ]
