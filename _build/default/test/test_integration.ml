(* Integration tests: the full pipeline — Fortran or defstencil source
   through recognition, compilation, distribution, halo exchange and
   the cycle-accurate microcode interpreter — validated against the
   reference evaluator. *)

module Pattern = Ccc.Pattern
module Grid = Ccc.Grid
module Stats = Ccc.Stats
module Exec = Ccc.Exec

let config = Ccc.Config.default
let tol = 1e-9

let run_and_check ?(config = config) ~rows ~cols pattern =
  let compiled = Tutil.compile_exn ~config pattern in
  let env = Tutil.env_for ~rows ~cols pattern in
  let expected = Ccc.Reference.apply pattern env in
  let simulated, fast = Tutil.run_both_modes ~config compiled env in
  Tutil.check_close ~tol "simulated vs reference" expected simulated.Exec.output;
  Tutil.check_close ~tol "fast vs reference" expected fast.Exec.output;
  Alcotest.(check int)
    "modes agree on compute cycles" simulated.Exec.stats.Stats.compute_cycles
    fast.Exec.stats.Stats.compute_cycles;
  simulated

(* Every gallery pattern through the simulator on the 16-node machine. *)
let test_gallery_simulated () =
  List.iter
    (fun (name, p) ->
      ignore (run_and_check ~rows:(4 * 12) ~cols:(4 * 12) p);
      ignore name)
    (Pattern.gallery ())

(* Shapes that exercise the strip-shaving rule: widths that are not
   multiples of 8, including the paper's 21 example, and heights that
   produce uneven half-strips. *)
let test_irregular_shapes () =
  List.iter
    (fun (sub_rows, sub_cols) ->
      ignore
        (run_and_check ~rows:(4 * sub_rows) ~cols:(4 * sub_cols)
           (Pattern.cross5 ())))
    [ (5, 21); (7, 7); (3, 3); (9, 13); (11, 1); (2, 2) ]

let test_single_node_machine () =
  let config = Tutil.config_1x1 in
  ignore (run_and_check ~config ~rows:10 ~cols:10 (Pattern.square9 ()))

let test_nonsquare_node_grid () =
  let config = Ccc.Config.with_nodes ~rows:2 ~cols:8 Ccc.Config.default in
  ignore (run_and_check ~config ~rows:(2 * 6) ~cols:(8 * 9) (Pattern.cross9 ()))

let test_fortran_to_execution () =
  let source =
    "SUBROUTINE CROSS (R, X, C1, C2, C3, C4, C5)\n\
     REAL, ARRAY(:,:) :: R, X, C1, C2, C3, C4, C5\n\
     R = C1 * CSHIFT(X, 1, -1) &\n\
     \  + C2 * CSHIFT(X, 2, -1) &\n\
     \  + C3 * X &\n\
     \  + C4 * CSHIFT(X, 2, +1) &\n\
     \  + C5 * CSHIFT(X, 1, +1)\n\
     END\n"
  in
  let compiled = Ccc.compile_fortran_exn config source in
  let env = Tutil.env_for ~rows:16 ~cols:16 compiled.Ccc.Compile.pattern in
  let expected = Ccc.Reference.apply compiled.Ccc.Compile.pattern env in
  let { Exec.output; _ } =
    Ccc.apply ~mode:Exec.Simulate config compiled env
  in
  Tutil.check_close ~tol "fortran pipeline" expected output

let test_defstencil_to_execution () =
  let form =
    "(defstencil blur (r x c)\n\
    \  (single-float single-float)\n\
    \  (:= r (+ (* c (cshift x 2 -1)) (* c x) (* c (cshift x 2 +1)))))"
  in
  match Ccc.compile_defstencil config form with
  | Error e -> Alcotest.failf "defstencil: %s" (Ccc.error_to_string e)
  | Ok compiled ->
      let env = Tutil.env_for ~rows:8 ~cols:24 compiled.Ccc.Compile.pattern in
      let expected = Ccc.Reference.apply compiled.Ccc.Compile.pattern env in
      let { Exec.output; _ } =
        Ccc.apply ~mode:Exec.Simulate config compiled env
      in
      Tutil.check_close ~tol "defstencil pipeline" expected output

let test_eoshift_execution () =
  let pattern =
    Ccc.Pattern.create ~boundary:(Ccc.Boundary.End_off 0.0)
      [
        Ccc.Tap.make (Ccc.Offset.make ~drow:(-1) ~dcol:0) (Ccc.Coeff.Array "C1");
        Ccc.Tap.make Ccc.Offset.zero (Ccc.Coeff.Array "C2");
        Ccc.Tap.make (Ccc.Offset.make ~drow:1 ~dcol:1) (Ccc.Coeff.Array "C3");
      ]
  in
  ignore (run_and_check ~rows:16 ~cols:16 pattern)

let test_eoshift_nonzero_fill () =
  let pattern =
    Ccc.Pattern.create ~boundary:(Ccc.Boundary.End_off 3.25)
      [
        Ccc.Tap.make (Ccc.Offset.make ~drow:0 ~dcol:(-1)) (Ccc.Coeff.Array "C1");
        Ccc.Tap.make Ccc.Offset.zero (Ccc.Coeff.Array "C2");
      ]
  in
  ignore (run_and_check ~rows:8 ~cols:8 pattern)

let test_bias_and_scalar_execution () =
  let pattern =
    Ccc.Pattern.create ~bias:(Ccc.Coeff.Array "B")
      [
        Ccc.Tap.make (Ccc.Offset.make ~drow:0 ~dcol:(-1)) (Ccc.Coeff.Scalar 0.25);
        Ccc.Tap.make Ccc.Offset.zero Ccc.Coeff.One;
        Ccc.Tap.make (Ccc.Offset.make ~drow:0 ~dcol:1) (Ccc.Coeff.Scalar 0.25);
      ]
  in
  ignore (run_and_check ~rows:12 ~cols:20 pattern)

let test_holey_column_execution () =
  (* A column with occupied rows {-2, 0, 2}: the ring buffer spans the
     holes. *)
  let pattern = Tutil.pattern_of_offsets [ (-2, 0); (0, 0); (2, 0) ] in
  ignore (run_and_check ~rows:16 ~cols:16 pattern)

let test_wide_flat_pattern () =
  (* One row, five columns: no prologue at all (every span is 1). *)
  let pattern =
    Tutil.pattern_of_offsets [ (0, -2); (0, -1); (0, 0); (0, 1); (0, 2) ]
  in
  ignore (run_and_check ~rows:8 ~cols:24 pattern)

let test_corner_skip_correctness () =
  (* cross9 skips the corner exchange; its results must still be
     exact, and the poisoned corners must never be read. *)
  let result = run_and_check ~rows:(4 * 8) ~cols:(4 * 8) (Pattern.cross9 ()) in
  Alcotest.(check bool)
    "corners skipped" true result.Exec.stats.Stats.corners_skipped

let test_corner_use_correctness () =
  let result = run_and_check ~rows:(4 * 8) ~cols:(4 * 8) (Pattern.square9 ()) in
  Alcotest.(check bool)
    "corners exchanged" false result.Exec.stats.Stats.corners_skipped

let test_legacy_primitive_same_data () =
  (* The ablation primitive moves the same data, only slower. *)
  let pattern = Pattern.square9 () in
  let compiled = Tutil.compile_exn pattern in
  let env = Tutil.env_for ~rows:16 ~cols:16 pattern in
  let machine = Ccc.machine config in
  let fast = Exec.run ~primitive:Ccc.Halo.Node_level machine compiled env in
  let slow = Exec.run ~primitive:Ccc.Halo.Legacy machine compiled env in
  Tutil.check_close ~tol:0.0 "same data" fast.Exec.output slow.Exec.output;
  Alcotest.(check bool)
    "legacy comm is slower" true
    (slow.Exec.stats.Stats.comm_cycles > fast.Exec.stats.Stats.comm_cycles)

let test_idempotent_machine_reuse () =
  (* Two runs on one machine: temporaries released, results equal. *)
  let pattern = Pattern.cross5 () in
  let compiled = Tutil.compile_exn pattern in
  let env = Tutil.env_for ~rows:16 ~cols:16 pattern in
  let machine = Ccc.machine config in
  let a = Exec.run machine compiled env in
  let b = Exec.run machine compiled env in
  Tutil.check_close ~tol:0.0 "identical reruns" a.Exec.output b.Exec.output

let test_flop_accounting_cross5 () =
  (* 16 nodes x 16x16 subgrids x 9 flops: the paper's counting. *)
  let pattern = Pattern.cross5 () in
  let compiled = Tutil.compile_exn pattern in
  let env = Tutil.env_for ~rows:(4 * 16) ~cols:(4 * 16) pattern in
  let { Exec.stats; _ } = Ccc.apply config compiled env in
  Alcotest.(check int)
    "useful flops" (64 * 64 * 9)
    stats.Stats.useful_flops_per_iteration

let test_efficiency_below_peak () =
  (* Useful flops can never exceed the flop slots burned. *)
  List.iter
    (fun (_, p) ->
      let compiled = Tutil.compile_exn p in
      let env = Tutil.env_for ~rows:(4 * 12) ~cols:(4 * 12) p in
      let { Exec.stats; _ } = Ccc.apply config compiled env in
      let eff = Stats.flop_efficiency stats in
      Alcotest.(check bool) "0 < efficiency <= 1" true (eff > 0.0 && eff <= 1.0))
    (Pattern.gallery ())

let test_single_precision_mode () =
  (* With single_precision the simulated FPU rounds every product and
     sum to 32 bits, as the WTL3164 did: results drift from the
     double-precision oracle by single-precision epsilon, not more. *)
  let pattern = Pattern.square9 () in
  let sp_config = { config with Ccc.Config.single_precision = true } in
  let compiled = Tutil.compile_exn ~config:sp_config pattern in
  let env = Tutil.env_for ~rows:16 ~cols:16 pattern in
  let expected = Ccc.Reference.apply pattern env in
  let { Exec.output; _ } =
    Ccc.apply ~mode:Exec.Simulate sp_config compiled env
  in
  let diff = Grid.max_abs_diff expected output in
  Alcotest.(check bool)
    "drift present but bounded by single-precision epsilon" true
    (diff > 0.0 && diff < 1e-5)

let test_tuned_runtime_is_faster () =
  (* The 7 Dec 90 rows: strength-reduced front-end dispatch. *)
  let pattern = Pattern.diamond13 () in
  let compiled = Tutil.compile_exn pattern in
  let nov = Exec.estimate ~sub_rows:128 ~sub_cols:256 config compiled in
  let dec =
    Exec.estimate ~sub_rows:128 ~sub_cols:256 (Ccc.Config.tuned_runtime config)
      compiled
  in
  Alcotest.(check bool)
    "tuned runtime is faster" true
    (Stats.mflops dec > Stats.mflops nov)

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "integration"
    [
      ( "oracle",
        [
          tc "gallery through the simulator" test_gallery_simulated;
          tc "irregular shapes (strip shaving)" test_irregular_shapes;
          tc "single-node machine" test_single_node_machine;
          tc "non-square node grid" test_nonsquare_node_grid;
        ] );
      ( "front-to-back",
        [
          tc "Fortran to execution" test_fortran_to_execution;
          tc "defstencil to execution" test_defstencil_to_execution;
        ] );
      ( "semantics",
        [
          tc "EOSHIFT boundary" test_eoshift_execution;
          tc "EOSHIFT with non-zero fill" test_eoshift_nonzero_fill;
          tc "bias and scalar coefficients" test_bias_and_scalar_execution;
          tc "holey ring-buffer column" test_holey_column_execution;
          tc "flat single-row pattern" test_wide_flat_pattern;
        ] );
      ( "communication",
        [
          tc "corner skip stays exact" test_corner_skip_correctness;
          tc "corner exchange used when needed" test_corner_use_correctness;
          tc "legacy primitive: same data, slower" test_legacy_primitive_same_data;
          tc "machine reuse" test_idempotent_machine_reuse;
        ] );
      ( "accounting",
        [
          tc "flop accounting" test_flop_accounting_cross5;
          tc "efficiency below peak" test_efficiency_below_peak;
          tc "single-precision (WTL3164) mode" test_single_precision_mode;
          tc "tuned runtime is faster" test_tuned_runtime_is_faster;
        ] );
    ]
