(* Unit tests for the run-time library: grids, distribution, halo
   exchange, strip mining, the reference evaluator, statistics, and
   the executor's resource handling. *)

module Config = Ccc_cm2.Config
module Machine = Ccc_cm2.Machine
module Memory = Ccc_cm2.Memory
module Grid = Ccc_runtime.Grid
module Dist = Ccc_runtime.Dist
module Halo = Ccc_runtime.Halo
module Stripmine = Ccc_runtime.Stripmine
module Reference = Ccc_runtime.Reference
module Stats = Ccc_runtime.Stats
module Exec = Ccc_runtime.Exec
module Pattern = Ccc_stencil.Pattern
module Boundary = Ccc_stencil.Boundary
module Plan = Ccc_microcode.Plan

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_float = Alcotest.(check (float 1e-9))
let config = Config.default

(* ------------------------------------------------------------------ *)
(* Grid *)

let test_grid_get_set () =
  let g = Grid.create ~rows:3 ~cols:4 in
  Grid.set g 2 3 5.5;
  check_float "set/get" 5.5 (Grid.get g 2 3);
  check_float "zero elsewhere" 0.0 (Grid.get g 0 0)

let test_grid_circular () =
  let g = Grid.init ~rows:3 ~cols:3 (fun r c -> float_of_int ((r * 3) + c)) in
  check_float "wrap north" (Grid.get g 2 1) (Grid.get_circular g (-1) 1);
  check_float "wrap east" (Grid.get g 1 0) (Grid.get_circular g 1 3);
  check_float "wrap both" (Grid.get g 2 2) (Grid.get_circular g (-1) (-1));
  check_float "far wrap" (Grid.get g 1 1) (Grid.get_circular g (-2) 4)

let test_grid_endoff () =
  let g = Grid.constant ~rows:2 ~cols:2 9.0 in
  check_float "inside" 9.0 (Grid.get_endoff g ~fill:(-1.0) 1 1);
  check_float "outside" (-1.0) (Grid.get_endoff g ~fill:(-1.0) 2 0)

let test_grid_max_abs_diff () =
  let a = Grid.constant ~rows:2 ~cols:2 1.0 in
  let b = Grid.init ~rows:2 ~cols:2 (fun r c -> if r = 1 && c = 1 then 3.0 else 1.0) in
  check_float "diff" 2.0 (Grid.max_abs_diff a b)

let test_grid_flat_roundtrip () =
  let g = Grid.init ~rows:2 ~cols:3 (fun r c -> float_of_int ((r * 10) + c)) in
  let g' = Grid.of_flat_array ~rows:2 ~cols:3 (Grid.to_flat_array g) in
  check_float "roundtrip" 0.0 (Grid.max_abs_diff g g')

(* ------------------------------------------------------------------ *)
(* Dist *)

let machine () = Machine.create ~memory_words:(1 lsl 18) config

let test_scatter_gather_roundtrip () =
  let m = machine () in
  let g = Grid.init ~rows:16 ~cols:20 (fun r c -> float_of_int ((r * 31) + c)) in
  let d = Dist.scatter m g in
  check_int "sub rows" 4 d.Dist.sub_rows;
  check_int "sub cols" 5 d.Dist.sub_cols;
  check_float "roundtrip" 0.0 (Grid.max_abs_diff g (Dist.gather d))

let test_owner_figure1 () =
  (* Figure 1: a 256x256 array on 16 nodes; node (i,j) owns the
     64x64 block at (64i, 64j). *)
  let m = machine () in
  let d = Dist.create m ~sub_rows:64 ~sub_cols:64 in
  let node, r, c = Dist.owner d ~grow:70 ~gcol:130 in
  check_int "node (1,2) = 6" 6 node;
  check_int "local row" 6 r;
  check_int "local col" 2 c

let test_scatter_rejects_ragged () =
  let m = machine () in
  let g = Grid.create ~rows:17 ~cols:16 in
  match Dist.scatter m g with
  | _ -> Alcotest.fail "expected rejection of a ragged shape"
  | exception Invalid_argument _ -> ()

let test_fill () =
  let m = machine () in
  let d = Dist.create m ~sub_rows:2 ~sub_cols:2 in
  Dist.fill d 3.5;
  check_float "filled" 3.5 (Dist.local_get d ~node:7 ~row:1 ~col:1)

let test_read_description_mentions_blocks () =
  let m = machine () in
  let d = Dist.create m ~sub_rows:64 ~sub_cols:64 in
  let desc = Dist.read_description d in
  check_bool "has A(1:64,1:64)" true
    (let re = "A(1:64,1:64)" in
     let rec contains i =
       i + String.length re <= String.length desc
       && (String.sub desc i (String.length re) = re || contains (i + 1))
     in
     contains 0)

(* ------------------------------------------------------------------ *)
(* Halo *)

let padded_value (m : Machine.t) (x : Halo.exchange) ~node ~r ~c =
  (* r, c in subgrid coordinates; may be negative (halo cells). *)
  Memory.read (Machine.memory m node)
    (x.Halo.padded.Memory.base
    + ((r + x.Halo.pad) * x.Halo.padded_cols)
    + c + x.Halo.pad)

let test_halo_matches_global_circular () =
  let m = machine () in
  let g = Grid.init ~rows:12 ~cols:16 (fun r c -> float_of_int ((r * 100) + c)) in
  let d = Dist.scatter m g in
  let x =
    Halo.exchange ~source:d ~pad:2 ~boundary:Boundary.Circular
      ~needs_corners:true ()
  in
  (* Every padded cell of every node equals the circularly-indexed
     global element. *)
  for node = 0 to 15 do
    let nr, nc = Ccc_cm2.Geometry.coord_of_node (Machine.geometry m) node in
    for r = -2 to d.Dist.sub_rows + 1 do
      for c = -2 to d.Dist.sub_cols + 1 do
        let expected =
          Grid.get_circular g ((nr * d.Dist.sub_rows) + r)
            ((nc * d.Dist.sub_cols) + c)
        in
        check_float
          (Printf.sprintf "node %d cell (%d,%d)" node r c)
          expected
          (padded_value m x ~node ~r ~c)
      done
    done
  done

let test_halo_endoff_fill () =
  let m = machine () in
  let g = Grid.constant ~rows:8 ~cols:8 1.0 in
  let d = Dist.scatter m g in
  let x =
    Halo.exchange ~source:d ~pad:1 ~boundary:(Boundary.End_off 7.0)
      ~needs_corners:true ()
  in
  (* Node 0 sits at the global north-west corner: its north and west
     halo cells take the fill value. *)
  check_float "north halo" 7.0 (padded_value m x ~node:0 ~r:(-1) ~c:0);
  check_float "west halo" 7.0 (padded_value m x ~node:0 ~r:0 ~c:(-1));
  (* Node 5 is interior: its halo is real data. *)
  check_float "interior halo" 1.0 (padded_value m x ~node:5 ~r:(-1) ~c:0)

let test_halo_corner_poisoning () =
  let m = machine () in
  let g = Grid.constant ~rows:8 ~cols:8 1.0 in
  let d = Dist.scatter m g in
  let x =
    Halo.exchange ~source:d ~pad:1 ~boundary:Boundary.Circular
      ~needs_corners:false ()
  in
  check_bool "corner is poisoned" true
    (Float.is_nan (padded_value m x ~node:0 ~r:(-1) ~c:(-1)));
  check_bool "corners skipped" true x.Halo.corners_skipped;
  check_float "edges still exchanged" 1.0 (padded_value m x ~node:0 ~r:(-1) ~c:0)

let test_halo_rejects_oversized_border () =
  let m = machine () in
  let d = Dist.create m ~sub_rows:2 ~sub_cols:8 in
  match
    Halo.exchange ~source:d ~pad:3 ~boundary:Boundary.Circular
      ~needs_corners:false ()
  with
  | _ -> Alcotest.fail "expected rejection"
  | exception Invalid_argument _ -> ()

let test_halo_cycles_model () =
  (* The node-level primitive pays for the longer side once; the
     legacy primitive pays per direction at bit-serial rates. *)
  let node =
    Halo.cycles_model ~primitive:Halo.Node_level ~sub_rows:64 ~sub_cols:128
      ~pad:2 ~corners:false config
  in
  check_int "edge phase: pad * longer side * per-word"
    (config.Config.comm_cycles_per_word * 2 * 128)
    node;
  let with_corners =
    Halo.cycles_model ~primitive:Halo.Node_level ~sub_rows:64 ~sub_cols:128
      ~pad:2 ~corners:true config
  in
  check_bool "corners cost extra" true (with_corners > node);
  let legacy =
    Halo.cycles_model ~primitive:Halo.Legacy ~sub_rows:64 ~sub_cols:128 ~pad:2
      ~corners:false config
  in
  check_bool "legacy is much slower" true (legacy > 4 * node);
  check_int "zero pad is free"
    0
    (Halo.cycles_model ~primitive:Halo.Node_level ~sub_rows:64 ~sub_cols:64
       ~pad:0 ~corners:false config)

(* ------------------------------------------------------------------ *)
(* Stripmine *)

let compiled_cross5 () = Tutil.compile_exn (Pattern.cross5 ())

let test_strip_widths_21 () =
  (* Section 5.3's example: an axis of length 21 becomes two strips of
     width 8, one of width 4, and one of width 1. *)
  Alcotest.(check (list int))
    "8+8+4+1" [ 8; 8; 4; 1 ]
    (Stripmine.strip_widths (compiled_cross5 ()) ~sub_cols:21)

let test_strip_widths_when_8_rejected () =
  (* diamond13 compiles at widths 4, 2, 1 only: 21 = 5x4 + 1, the
     paper's other worked example. *)
  let compiled = Tutil.compile_exn (Pattern.diamond13 ()) in
  Alcotest.(check (list int))
    "4x5 + 1" [ 4; 4; 4; 4; 4; 1 ]
    (Stripmine.strip_widths compiled ~sub_cols:21)

let test_strips_cover_columns () =
  let compiled = compiled_cross5 () in
  List.iter
    (fun sub_cols ->
      let strips = Stripmine.strips compiled ~sub_cols in
      let covered =
        List.concat_map
          (fun (s : Stripmine.strip) ->
            List.init s.plan.Plan.width (fun i -> s.col0 + i))
          strips
      in
      Alcotest.(check (list int))
        (Printf.sprintf "columns 0..%d each exactly once" (sub_cols - 1))
        (List.init sub_cols Fun.id)
        (List.sort compare covered))
    [ 1; 2; 3; 7; 8; 16; 21; 64 ]

let test_halfstrips_cover_rows_and_sweep_upward () =
  let compiled = compiled_cross5 () in
  let strip = List.hd (Stripmine.strips compiled ~sub_cols:8) in
  List.iter
    (fun sub_rows ->
      let halves = Stripmine.halfstrips strip ~sub_rows in
      check_bool "at most two halves" true (List.length halves <= 2);
      let rows =
        List.concat_map
          (fun (h : Stripmine.halfstrip) -> Array.to_list h.rows)
          halves
      in
      Alcotest.(check (list int))
        "rows covered exactly once"
        (List.init sub_rows Fun.id)
        (List.sort compare rows);
      List.iter
        (fun (h : Stripmine.halfstrip) ->
          Array.iteri
            (fun i r ->
              if i > 0 then
                check_int "sweep decreases row by 1" (h.rows.(i - 1) - 1) r)
            h.rows)
        halves)
    [ 1; 2; 3; 8; 9; 64 ]

(* ------------------------------------------------------------------ *)
(* Reference *)

let test_reference_hand_computed () =
  let p = Tutil.pattern_of_offsets [ (0, 0); (0, 1) ] in
  let x = Grid.init ~rows:2 ~cols:2 (fun r c -> float_of_int ((2 * r) + c)) in
  let c1 = Grid.constant ~rows:2 ~cols:2 10.0 in
  let c2 = Grid.constant ~rows:2 ~cols:2 1.0 in
  let out = Reference.apply p [ ("X", x); ("C1", c1); ("C2", c2) ] in
  (* R(0,0) = 10*X(0,0) + X(0,1) = 1; R(0,1) wraps: 10*1 + 0. *)
  check_float "R(0,0)" 1.0 (Grid.get out 0 0);
  check_float "R(0,1) wraps east" 10.0 (Grid.get out 0 1)

let test_reference_endoff () =
  let p =
    Ccc_stencil.Pattern.create ~boundary:(Boundary.End_off 0.0)
      [
        Ccc_stencil.Tap.make
          (Ccc_stencil.Offset.make ~drow:0 ~dcol:1)
          (Ccc_stencil.Coeff.Array "C1");
      ]
  in
  let x = Grid.constant ~rows:2 ~cols:2 5.0 in
  let c1 = Grid.constant ~rows:2 ~cols:2 1.0 in
  let out = Reference.apply p [ ("X", x); ("C1", c1) ] in
  check_float "interior" 5.0 (Grid.get out 0 0);
  check_float "east edge reads fill" 0.0 (Grid.get out 0 1)

let test_reference_unbound () =
  let p = Tutil.pattern_of_offsets [ (0, 0) ] in
  match Reference.apply p [ ("X", Grid.create ~rows:2 ~cols:2) ] with
  | _ -> Alcotest.fail "expected Unbound"
  | exception Reference.Unbound "C1" -> ()

let test_reference_shape_mismatch () =
  let p = Tutil.pattern_of_offsets [ (0, 0) ] in
  match
    Reference.apply p
      [ ("X", Grid.create ~rows:2 ~cols:2); ("C1", Grid.create ~rows:4 ~cols:2) ]
  with
  | _ -> Alcotest.fail "expected Shape_mismatch"
  | exception Reference.Shape_mismatch _ -> ()

(* ------------------------------------------------------------------ *)
(* Stats *)

let base_stats =
  {
    Stats.iterations = 100;
    comm_cycles = 700;
    compute_cycles = 6300;
    frontend_s = 0.0;
    useful_flops_per_iteration = 1_000_000;
    madds_issued = 1000;
    strip_widths = [ 8 ];
    corners_skipped = false;
    nodes = 16;
    clock_hz = 7.0e6;
  }

let test_stats_elapsed_and_rate () =
  (* 7000 cycles at 7 MHz = 1 ms per iteration; 100 iterations = 0.1 s;
     10^8 flops / 0.1 s = 1 Gflops. *)
  check_float "elapsed" 0.1 (Stats.elapsed_s base_stats);
  check_float "mflops" 1000.0 (Stats.mflops base_stats);
  check_float "gflops" 1.0 (Stats.gflops base_stats)

let test_stats_extrapolation () =
  (* The paper's 16 -> 2048 node extrapolation is a factor of 128. *)
  check_float "x128" 128.0 (Stats.extrapolate base_stats ~nodes:2048)

let test_stats_frontend_overhead () =
  let s = { base_stats with Stats.frontend_s = 1e-3 } in
  check_float "elapsed doubles" 0.2 (Stats.elapsed_s s);
  check_float "rate halves" 500.0 (Stats.mflops s)

let test_stats_efficiency () =
  (* useful flops over flop slots: 1e8 / (2 * 1000 * 16 * 100). *)
  check_float "closed form"
    (1e8 /. (2.0 *. 1000.0 *. 16.0 *. 100.0))
    (Stats.flop_efficiency base_stats)

(* ------------------------------------------------------------------ *)
(* Exec resource handling *)

let test_exec_too_small () =
  let compiled = Tutil.compile_exn (Pattern.diamond13 ()) in
  (* A 4x4 global array over 4x4 nodes leaves 1x1 subgrids; the
     diamond's border width of 2 cannot reach past immediate
     neighbors. *)
  let env = Tutil.env_for ~rows:4 ~cols:4 (Pattern.diamond13 ()) in
  match Ccc.apply config compiled env with
  | _ -> Alcotest.fail "expected Too_small"
  | exception Exec.Too_small _ -> ()

let test_exec_iterations_scale_stats_not_data () =
  let compiled = compiled_cross5 () in
  let env = Tutil.env_for ~rows:16 ~cols:16 (Pattern.cross5 ()) in
  let once = Ccc.apply ~iterations:1 config compiled env in
  let many = Ccc.apply ~iterations:50 config compiled env in
  check_float "same data" 0.0
    (Grid.max_abs_diff once.Exec.output many.Exec.output);
  check_float "50x flops"
    (50.0 *. float_of_int (Stats.useful_flops once.Exec.stats))
    (float_of_int (Stats.useful_flops many.Exec.stats));
  check_float "50x elapsed"
    (50.0 *. Stats.elapsed_s once.Exec.stats)
    (Stats.elapsed_s many.Exec.stats)

let test_exec_releases_memory () =
  let m = machine () in
  let compiled = compiled_cross5 () in
  let env = Tutil.env_for ~rows:16 ~cols:16 (Pattern.cross5 ()) in
  let free_before = Memory.words_free (Machine.memory m 0) in
  ignore (Exec.run m compiled env);
  check_int "all temporaries released" free_before
    (Memory.words_free (Machine.memory m 0))

let eoshift_cross () =
  Ccc_stencil.Pattern.create ~boundary:(Boundary.End_off 0.5)
    [
      Ccc_stencil.Tap.make
        (Ccc_stencil.Offset.make ~drow:(-1) ~dcol:0)
        (Ccc_stencil.Coeff.Array "C1");
      Ccc_stencil.Tap.make Ccc_stencil.Offset.zero (Ccc_stencil.Coeff.Array "C2");
      Ccc_stencil.Tap.make
        (Ccc_stencil.Offset.make ~drow:1 ~dcol:1)
        (Ccc_stencil.Coeff.Array "C3");
    ]

let test_run_padded_ragged_shape () =
  (* A 13x19 array does not divide over the 4x4 node grid; the padded
     path must still produce exactly the reference result. *)
  let pattern = eoshift_cross () in
  let compiled = Tutil.compile_exn pattern in
  let env = Tutil.env_for ~rows:13 ~cols:19 pattern in
  let expected = Ccc.Reference.apply pattern env in
  let m = machine () in
  let { Exec.output; _ } = Exec.run_padded m compiled env in
  check_int "rows preserved" 13 (Grid.rows output);
  check_int "cols preserved" 19 (Grid.cols output);
  check_float "matches reference" 0.0 (Grid.max_abs_diff expected output)

let test_run_padded_even_shape_delegates () =
  let pattern = eoshift_cross () in
  let compiled = Tutil.compile_exn pattern in
  let env = Tutil.env_for ~rows:16 ~cols:16 pattern in
  let m = machine () in
  let direct = Exec.run m compiled env in
  let padded = Exec.run_padded m compiled env in
  check_float "identical" 0.0
    (Grid.max_abs_diff direct.Exec.output padded.Exec.output)

let test_run_padded_rejects_circular () =
  let pattern = Pattern.cross5 () in
  let compiled = Tutil.compile_exn pattern in
  let env = Tutil.env_for ~rows:13 ~cols:16 pattern in
  let m = machine () in
  match Exec.run_padded m compiled env with
  | _ -> Alcotest.fail "circular + padding must be rejected"
  | exception Invalid_argument _ -> ()

let test_estimate_matches_run () =
  let compiled = Tutil.compile_exn (Pattern.square9 ()) in
  let env = Tutil.env_for ~rows:(4 * 11) ~cols:(4 * 13) (Pattern.square9 ()) in
  let { Exec.stats = run_stats; _ } = Ccc.apply config compiled env in
  let est = Exec.estimate ~sub_rows:11 ~sub_cols:13 config compiled in
  check_int "comm" run_stats.Stats.comm_cycles est.Stats.comm_cycles;
  check_int "compute" run_stats.Stats.compute_cycles est.Stats.compute_cycles;
  check_int "madds" run_stats.Stats.madds_issued est.Stats.madds_issued;
  check_float "frontend" run_stats.Stats.frontend_s est.Stats.frontend_s;
  check_int "flops" run_stats.Stats.useful_flops_per_iteration
    est.Stats.useful_flops_per_iteration

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "runtime"
    [
      ( "grid",
        [
          tc "get/set" test_grid_get_set;
          tc "circular indexing" test_grid_circular;
          tc "end-off indexing" test_grid_endoff;
          tc "max_abs_diff" test_grid_max_abs_diff;
          tc "flat roundtrip" test_grid_flat_roundtrip;
        ] );
      ( "dist",
        [
          tc "scatter/gather roundtrip" test_scatter_gather_roundtrip;
          tc "Figure 1 ownership" test_owner_figure1;
          tc "ragged shapes rejected" test_scatter_rejects_ragged;
          tc "broadcast fill" test_fill;
          tc "Figure 1 description" test_read_description_mentions_blocks;
        ] );
      ( "halo",
        [
          tc "matches global circular indexing" test_halo_matches_global_circular;
          tc "end-off fill at global edges" test_halo_endoff_fill;
          tc "skipped corners are poisoned" test_halo_corner_poisoning;
          tc "oversized border rejected" test_halo_rejects_oversized_border;
          tc "cycle model" test_halo_cycles_model;
        ] );
      ( "stripmine",
        [
          tc "21 = 8+8+4+1" test_strip_widths_21;
          tc "21 = 4x5+1 when width 8 is rejected" test_strip_widths_when_8_rejected;
          tc "strips cover all columns" test_strips_cover_columns;
          tc "halfstrips cover rows, sweeping upward"
            test_halfstrips_cover_rows_and_sweep_upward;
        ] );
      ( "reference",
        [
          tc "hand-computed result" test_reference_hand_computed;
          tc "end-off boundary" test_reference_endoff;
          tc "unbound array" test_reference_unbound;
          tc "shape mismatch" test_reference_shape_mismatch;
        ] );
      ( "stats",
        [
          tc "elapsed and rate" test_stats_elapsed_and_rate;
          tc "extrapolation to 2048 nodes" test_stats_extrapolation;
          tc "front-end overhead" test_stats_frontend_overhead;
          tc "flop efficiency" test_stats_efficiency;
        ] );
      ( "exec",
        [
          tc "too-small subgrid" test_exec_too_small;
          tc "iterations scale stats, not data"
            test_exec_iterations_scale_stats_not_data;
          tc "releases machine memory" test_exec_releases_memory;
          tc "ragged shapes via run_padded" test_run_padded_ragged_shape;
          tc "run_padded delegates on even shapes"
            test_run_padded_even_shape_delegates;
          tc "run_padded rejects circular patterns"
            test_run_padded_rejects_circular;
          tc "estimate matches run" test_estimate_matches_run;
        ] );
    ]
