(* Unit tests for the comparison baselines (the general CM Fortran
   path and the 1989 canned library routines), the elementwise pass
   cost model, and the Gordon Bell seismic driver. *)

module Config = Ccc.Config
module Stats = Ccc.Stats
module Pattern = Ccc.Pattern
module Grid = Ccc.Grid
module Passes = Ccc.Passes
module Seismic = Ccc.Seismic
module Naive = Ccc_baseline.Naive
module Canned = Ccc_baseline.Canned

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_float = Alcotest.(check (float 1e-9))
let config = Config.default

(* ------------------------------------------------------------------ *)
(* Passes *)

let test_copy_cost_scales () =
  let c1 = Passes.copy_cycles config ~elements:100 in
  let c2 = Passes.copy_cycles config ~elements:200 in
  check_int "linear in elements" (2 * c1) c2

let test_elementwise_reads_increase_cost () =
  let one = Passes.elementwise_cycles config ~elements:64 ~reads:1 in
  let three = Passes.elementwise_cycles config ~elements:64 ~reads:3 in
  check_bool "more reads cost more" true (three > one)

let test_frontend_bounded_switches_regimes () =
  (* Few words, many cycles: machine-bound.  Many words, few cycles:
     front-end bound. *)
  check_int "machine-bound" 1000
    (Passes.frontend_bounded config ~cm_cycles:1000 ~words:10);
  let fe = Passes.frontend_bounded config ~cm_cycles:10 ~words:1000 in
  check_bool "front-end bound" true (fe > 10);
  (* Strength reduction halves the front-end side only. *)
  let tuned =
    Passes.frontend_bounded (Config.tuned_runtime config) ~cm_cycles:10
      ~words:1000
  in
  check_bool "tuning helps the fe-bound case" true (tuned < fe);
  check_int "tuning cannot beat the machine" 1000
    (Passes.frontend_bounded (Config.tuned_runtime config) ~cm_cycles:1000
       ~words:10)

let test_shift_cost_zero_amount_free () =
  check_int "no-op shift" 0
    (Passes.whole_array_shift_cycles config ~elements:100 ~amount:0
       ~sub_rows:10 ~sub_cols:10 ~dim:1)

let test_shift_cost_grows_with_distance () =
  let near =
    Passes.whole_array_shift_cycles config ~elements:100 ~amount:1
      ~sub_rows:10 ~sub_cols:10 ~dim:1
  in
  let far =
    Passes.whole_array_shift_cycles config ~elements:100 ~amount:3
      ~sub_rows:10 ~sub_cols:10 ~dim:1
  in
  check_bool "longer shifts cost more" true (far > near)

(* ------------------------------------------------------------------ *)
(* Naive *)

let test_naive_data_equals_reference () =
  let p = Pattern.cross5 () in
  let env = Tutil.env_for ~rows:16 ~cols:16 p in
  let { Naive.output; _ } = Naive.run config p env in
  let expected = Ccc.Reference.apply p env in
  check_float "identical data" 0.0 (Grid.max_abs_diff expected output)

let test_naive_much_slower_than_compiled () =
  let p = Pattern.cross9 () in
  let compiled = Tutil.compile_exn p in
  let naive = Naive.estimate ~sub_rows:128 ~sub_cols:128 config p in
  let ours = Ccc.Exec.estimate ~sub_rows:128 ~sub_cols:128 config compiled in
  (* The paper's gap: ~4 GF class vs >10 GF class. *)
  check_bool "at least 3x slower" true
    (Stats.mflops ours > 3.0 *. Stats.mflops naive)

let test_naive_counts_flops_like_the_paper () =
  let p = Pattern.cross5 () in
  let s = Naive.estimate ~sub_rows:8 ~sub_cols:8 config p in
  check_int "9 flops x points x nodes" (9 * 64 * 16)
    s.Stats.useful_flops_per_iteration

let test_naive_implicit_coeff_skips_multiply_pass () =
  (* A term with coefficient One costs one pass less. *)
  let with_coeff =
    Ccc.Pattern.create
      [
        Ccc.Tap.make Ccc.Offset.zero (Ccc.Coeff.Array "C1");
        Ccc.Tap.make (Ccc.Offset.make ~drow:0 ~dcol:1) (Ccc.Coeff.Array "C2");
      ]
  in
  let bare =
    Ccc.Pattern.create
      [
        Ccc.Tap.make Ccc.Offset.zero Ccc.Coeff.One;
        Ccc.Tap.make (Ccc.Offset.make ~drow:0 ~dcol:1) (Ccc.Coeff.Array "C2");
      ]
  in
  let cycles p =
    (Naive.estimate ~sub_rows:32 ~sub_cols:32 config p).Stats.compute_cycles
  in
  check_bool "bare term is cheaper" true (cycles bare < cycles with_coeff)

let test_naive_rejects_ragged () =
  let p = Pattern.cross5 () in
  let env = [ ("X", Grid.create ~rows:17 ~cols:16) ] in
  match Naive.run config p env with
  | _ -> Alcotest.fail "expected rejection"
  | exception Invalid_argument _ -> ()

(* ------------------------------------------------------------------ *)
(* Fieldwise *)

let test_fieldwise_slower_than_naive () =
  (* The format lineage of section 3: fieldwise transposes every batch
     through the interface chip, so it trails slicewise general code,
     which trails everything else. *)
  let p = Pattern.cross9 () in
  let fieldwise =
    Ccc_baseline.Fieldwise.estimate ~sub_rows:128 ~sub_cols:128 config p
  in
  let naive = Naive.estimate ~sub_rows:128 ~sub_cols:128 config p in
  check_bool "fieldwise < naive" true
    (Stats.mflops fieldwise < Stats.mflops naive);
  check_bool "same flop accounting" true
    (fieldwise.Stats.useful_flops_per_iteration
    = naive.Stats.useful_flops_per_iteration)

let test_fieldwise_transpose_cost_positive () =
  check_int "64 cycles per 32-word batch" 64
    Ccc_baseline.Fieldwise.transpose_cycles_per_batch;
  let plain =
    Ccc.Passes.elementwise_cycles config ~elements:320 ~reads:2
  in
  let fieldwise =
    Ccc_baseline.Fieldwise.elementwise_cycles config ~elements:320 ~reads:2
  in
  (* 10 batches x 3 streams x 64 cycles on top of the slicewise pass. *)
  check_int "transpose surcharge" (plain + (10 * 3 * 64)) fieldwise

(* ------------------------------------------------------------------ *)
(* Canned *)

let test_canned_menu_membership () =
  check_bool "cross5 on menu" true (Canned.supports (Pattern.cross5 ()));
  check_bool "cross9 on menu" true (Canned.supports (Pattern.cross9 ()));
  check_bool "square9 on menu" true (Canned.supports (Pattern.square9 ()));
  check_bool "diamond13 off menu" false (Canned.supports (Pattern.diamond13 ()));
  check_bool "asymmetric5 off menu" false
    (Canned.supports (Pattern.asymmetric5 ()))

let test_canned_ignores_coefficient_names () =
  (* The routines take coefficient arrays as arguments: a cross5 with
     different coefficient names is still served. *)
  let renamed =
    Ccc.Pattern.create
      (List.map
         (fun t -> Ccc.Tap.make t.Ccc.Tap.offset (Ccc.Coeff.Array "K"))
         (Pattern.taps (Pattern.cross5 ())))
  in
  check_bool "same shape, different coefficients" true
    (Canned.supports renamed)

let test_canned_between_naive_and_compiled () =
  let p = Pattern.square9 () in
  let compiled = Tutil.compile_exn p in
  let naive = Naive.estimate ~sub_rows:128 ~sub_cols:128 config p in
  let canned =
    match Canned.estimate ~sub_rows:128 ~sub_cols:128 config p with
    | Canned.Library s -> s
    | Canned.Fallback _ -> Alcotest.fail "square9 should be served"
  in
  let ours = Ccc.Exec.estimate ~sub_rows:128 ~sub_cols:128 config compiled in
  check_bool "canned beats naive" true
    (Stats.mflops canned > Stats.mflops naive);
  check_bool "compiled beats canned" true
    (Stats.mflops ours > Stats.mflops canned)

let test_canned_falls_back_off_menu () =
  match Canned.estimate ~sub_rows:64 ~sub_cols:64 config (Pattern.diamond13 ()) with
  | Canned.Fallback _ -> ()
  | Canned.Library _ -> Alcotest.fail "diamond13 must fall back"

(* ------------------------------------------------------------------ *)
(* Seismic *)

let seismic_env rows cols =
  List.init 9 (fun i ->
      (Printf.sprintf "C%d" (i + 1), Grid.constant ~rows ~cols 0.1))

let test_seismic_kernel_shape () =
  let k = Seismic.kernel () in
  check_int "nine taps" 9 (Pattern.tap_count k);
  check_int "17 stencil flops" 17 (Pattern.useful_flops_per_point k);
  check_int "19 with the tenth term" 19 Seismic.flops_per_point;
  check_bool "no corners needed" false (Pattern.needs_corners k)

let test_seismic_data_matches_reference () =
  (* Three steps of P_next = stencil(P) + c10 * P_old, checked against
     a hand-rolled host-side recurrence. *)
  let rows = 16 and cols = 16 in
  let machine = Ccc.machine config in
  let env = seismic_env rows cols in
  let p0 = Tutil.mixed_grid ~seed:5 ~rows ~cols in
  let p1 = Tutil.mixed_grid ~seed:6 ~rows ~cols in
  let steps = 3 and c10 = -0.5 in
  let result =
    Seismic.simulate ~steps ~c10 machine env ~p:p1 ~p_old:p0
  in
  let kernel = Seismic.kernel () in
  let reference = ref p1 and reference_old = ref p0 in
  for _ = 1 to steps do
    let s = Ccc.Reference.apply kernel (("P", !reference) :: env) in
    let next = Grid.map2 (fun a b -> a +. (c10 *. b)) s !reference_old in
    reference_old := !reference;
    reference := next
  done;
  check_float "wavefield" 0.0
    (Grid.max_abs_diff !reference result.Seismic.p);
  check_float "previous level" 0.0
    (Grid.max_abs_diff !reference_old result.Seismic.p_old)

let test_seismic_versions_same_data () =
  let rows = 16 and cols = 16 in
  let machine = Ccc.machine config in
  let env = seismic_env rows cols in
  let p = Tutil.mixed_grid ~seed:7 ~rows ~cols in
  let p_old = Tutil.mixed_grid ~seed:8 ~rows ~cols in
  let rolled =
    Seismic.simulate ~version:Seismic.Rolled ~steps:4 ~c10:(-1.0) machine env
      ~p ~p_old
  in
  let unrolled =
    Seismic.simulate ~version:Seismic.Unrolled3 ~steps:4 ~c10:(-1.0) machine
      env ~p ~p_old
  in
  check_float "identical wavefields" 0.0
    (Grid.max_abs_diff rolled.Seismic.p unrolled.Seismic.p)

let test_seismic_unrolled_is_faster () =
  let est version =
    Stats.gflops
      (Seismic.estimate ~version ~sub_rows:64 ~sub_cols:128 ~steps:100 config)
  in
  let rolled = est Seismic.Rolled and unrolled = est Seismic.Unrolled3 in
  check_bool "unrolled faster" true (unrolled > rolled);
  (* The paper's ratio is 1.28; ours should be in the same band. *)
  let ratio = unrolled /. rolled in
  check_bool "ratio in [1.1, 1.5]" true (ratio > 1.1 && ratio < 1.5)

let test_seismic_estimate_matches_simulate_stats () =
  let rows = 32 and cols = 32 in
  let machine = Ccc.machine config in
  let env = seismic_env rows cols in
  let p = Tutil.mixed_grid ~seed:9 ~rows ~cols in
  let result =
    Seismic.simulate ~steps:2 ~c10:(-1.0) machine env ~p ~p_old:(Grid.copy p)
  in
  let est =
    Seismic.estimate ~sub_rows:(rows / 4) ~sub_cols:(cols / 4) ~steps:2 config
  in
  check_int "compute cycles" est.Stats.compute_cycles
    result.Seismic.stats.Stats.compute_cycles;
  check_int "flops" est.Stats.useful_flops_per_iteration
    result.Seismic.stats.Stats.useful_flops_per_iteration

let test_seismic_gordon_bell_shape () =
  (* The headline reproduction: on the full tuned machine the unrolled
     loop clears 10 Gflops and the rolled loop lands near the paper's
     11.62 +- a documented residual. *)
  let production =
    Config.with_nodes ~rows:32 ~cols:64 (Config.tuned_runtime config)
  in
  let est version =
    Stats.gflops
      (Seismic.estimate ~version ~sub_rows:64 ~sub_cols:128 ~steps:1000
         production)
  in
  check_bool "unrolled > 10 Gflops" true (est Seismic.Unrolled3 > 10.0);
  check_bool "rolled in the 8..13 band" true
    (est Seismic.Rolled > 8.0 && est Seismic.Rolled < 13.0)

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "baseline"
    [
      ( "passes",
        [
          tc "copy cost scales" test_copy_cost_scales;
          tc "reads increase cost" test_elementwise_reads_increase_cost;
          tc "front-end vs machine bound" test_frontend_bounded_switches_regimes;
          tc "zero shift free" test_shift_cost_zero_amount_free;
          tc "shift cost grows with distance" test_shift_cost_grows_with_distance;
        ] );
      ( "naive",
        [
          tc "data equals reference" test_naive_data_equals_reference;
          tc "much slower than compiled" test_naive_much_slower_than_compiled;
          tc "paper flop accounting" test_naive_counts_flops_like_the_paper;
          tc "implicit coefficient saves a pass"
            test_naive_implicit_coeff_skips_multiply_pass;
          tc "ragged shapes rejected" test_naive_rejects_ragged;
        ] );
      ( "fieldwise",
        [
          tc "slower than slicewise general code"
            test_fieldwise_slower_than_naive;
          tc "transpose surcharge" test_fieldwise_transpose_cost_positive;
        ] );
      ( "canned",
        [
          tc "menu membership" test_canned_menu_membership;
          tc "coefficient names ignored" test_canned_ignores_coefficient_names;
          tc "between naive and compiled" test_canned_between_naive_and_compiled;
          tc "off-menu fallback" test_canned_falls_back_off_menu;
        ] );
      ( "seismic",
        [
          tc "kernel shape" test_seismic_kernel_shape;
          tc "data matches reference recurrence" test_seismic_data_matches_reference;
          tc "rolled and unrolled agree on data" test_seismic_versions_same_data;
          tc "unrolled is faster" test_seismic_unrolled_is_faster;
          tc "estimate matches simulate" test_seismic_estimate_matches_simulate_stats;
          tc "Gordon Bell shape" test_seismic_gordon_bell_shape;
        ] );
    ]
