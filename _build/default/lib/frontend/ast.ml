type arg = Positional of expr | Keyword of string * expr

and expr =
  | Var of string
  | Num of float
  | Call of string * arg list
  | Add of expr * expr
  | Sub of expr * expr
  | Mul of expr * expr
  | Neg of expr

type stmt = { lhs : string; rhs : expr; line : int; flagged : bool }
type decl = { decl_names : string list; rank : int }

type subroutine = {
  sub_name : string;
  params : string list;
  decls : decl list;
  body : stmt list;
}

let rec pp_expr ppf = function
  | Var v -> Format.pp_print_string ppf v
  | Num v -> Format.fprintf ppf "%g" v
  | Call (name, args) ->
      Format.fprintf ppf "%s(%a)" name
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
           pp_arg)
        args
  | Add (a, b) -> Format.fprintf ppf "(%a + %a)" pp_expr a pp_expr b
  | Sub (a, b) -> Format.fprintf ppf "(%a - %a)" pp_expr a pp_expr b
  | Mul (a, b) -> Format.fprintf ppf "%a * %a" pp_expr a pp_expr b
  | Neg a -> Format.fprintf ppf "-%a" pp_expr a

and pp_arg ppf = function
  | Positional e -> pp_expr ppf e
  | Keyword (k, e) -> Format.fprintf ppf "%s=%a" k pp_expr e

let pp_stmt ppf s = Format.fprintf ppf "%s = %a" s.lhs pp_expr s.rhs

let expr_variables expr =
  let seen = Hashtbl.create 8 in
  let acc = ref [] in
  let record v =
    if not (Hashtbl.mem seen v) then begin
      Hashtbl.add seen v ();
      acc := v :: !acc
    end
  in
  let rec go = function
    | Var v -> record v
    | Num _ -> ()
    | Call (_, args) ->
        List.iter
          (function Positional e | Keyword (_, e) -> go e)
          args
    | Add (a, b) | Sub (a, b) | Mul (a, b) ->
        go a;
        go b
    | Neg a -> go a
  in
  go expr;
  List.rev !acc

let declared_rank sub name =
  List.find_map
    (fun d -> if List.mem name d.decl_names then Some d.rank else None)
    sub.decls
