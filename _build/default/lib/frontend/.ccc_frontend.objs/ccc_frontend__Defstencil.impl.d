lib/frontend/defstencil.ml: Ast Format List Sexp String
