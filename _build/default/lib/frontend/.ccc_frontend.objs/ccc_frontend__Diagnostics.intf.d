lib/frontend/diagnostics.mli: Format
