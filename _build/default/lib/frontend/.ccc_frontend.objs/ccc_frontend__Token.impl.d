lib/frontend/token.ml: Format Printf
