lib/frontend/defstencil.mli: Ast
