lib/frontend/recognize.mli: Ast Ccc_stencil Diagnostics
