lib/frontend/sexp.ml: Format List String
