lib/frontend/ast.ml: Format Hashtbl List
