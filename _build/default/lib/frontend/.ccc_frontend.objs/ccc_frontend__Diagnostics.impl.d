lib/frontend/diagnostics.ml: Format
