lib/frontend/sexp.mli: Format
