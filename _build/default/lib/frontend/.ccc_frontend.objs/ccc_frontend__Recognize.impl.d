lib/frontend/recognize.ml: Ast Boundary Ccc_stencil Coeff Diagnostics Float Format List Multi Offset Option Pattern Printf String Tap
