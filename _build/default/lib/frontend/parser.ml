exception Error of { line : int; message : string }

type cursor = { tokens : Token.t array; mutable index : int }

let peek c = c.tokens.(c.index)

let advance c =
  let tok = c.tokens.(c.index) in
  if tok.Token.kind <> Token.Eof then c.index <- c.index + 1;
  tok

let fail_at (tok : Token.t) fmt =
  Format.kasprintf
    (fun message -> raise (Error { line = tok.Token.line; message }))
    fmt

let expect c kind =
  let tok = advance c in
  if tok.Token.kind <> kind then
    fail_at tok "expected %s but found %s" (Token.describe kind)
      (Token.describe tok.Token.kind)

let expect_ident c =
  let tok = advance c in
  match tok.Token.kind with
  | Token.Ident name -> name
  | k -> fail_at tok "expected an identifier but found %s" (Token.describe k)

let skip_newlines c =
  while (peek c).Token.kind = Token.Newline do
    ignore (advance c)
  done

let end_of_statement c =
  match (peek c).Token.kind with
  | Token.Newline | Token.Eof -> true
  | _ -> false

(* expr := term (('+'|'-') term)* *)
let rec parse_expr c =
  let lhs = parse_term c in
  let rec go lhs =
    match (peek c).Token.kind with
    | Token.Plus ->
        ignore (advance c);
        go (Ast.Add (lhs, parse_term c))
    | Token.Minus ->
        ignore (advance c);
        go (Ast.Sub (lhs, parse_term c))
    | _ -> lhs
  in
  go lhs

(* term := factor ('*' factor)* *)
and parse_term c =
  let lhs = parse_factor c in
  let rec go lhs =
    match (peek c).Token.kind with
    | Token.Star ->
        ignore (advance c);
        go (Ast.Mul (lhs, parse_factor c))
    | _ -> lhs
  in
  go lhs

and parse_factor c =
  let tok = advance c in
  match tok.Token.kind with
  | Token.Number v -> Ast.Num v
  | Token.Minus -> Ast.Neg (parse_factor c)
  | Token.Plus -> parse_factor c
  | Token.Lparen ->
      let e = parse_expr c in
      expect c Token.Rparen;
      e
  | Token.Ident name ->
      if (peek c).Token.kind = Token.Lparen then begin
        ignore (advance c);
        let args = parse_args c in
        expect c Token.Rparen;
        Ast.Call (name, args)
      end
      else Ast.Var name
  | k -> fail_at tok "expected an expression but found %s" (Token.describe k)

and parse_args c =
  let parse_one () =
    let next_kind =
      if c.index + 1 < Array.length c.tokens then
        c.tokens.(c.index + 1).Token.kind
      else Token.Eof
    in
    match ((peek c).Token.kind, next_kind) with
    | Token.Ident key, Token.Equal ->
        ignore (advance c);
        ignore (advance c);
        Ast.Keyword (key, parse_expr c)
    | _ -> Ast.Positional (parse_expr c)
  in
  let first = parse_one () in
  let rec go acc =
    match (peek c).Token.kind with
    | Token.Comma ->
        ignore (advance c);
        go (parse_one () :: acc)
    | _ -> List.rev acc
  in
  go [ first ]

let parse_stmt c ~flagged =
  let line = (peek c).Token.line in
  let lhs = expect_ident c in
  expect c Token.Equal;
  let rhs = parse_expr c in
  if not (end_of_statement c) then
    fail_at (peek c) "trailing tokens after assignment: %s"
      (Token.describe (peek c).Token.kind);
  { Ast.lhs; rhs; line; flagged }

(* Shapes: '(:, :)' or explicit bounds; we only record the rank. *)
let parse_shape c =
  expect c Token.Lparen;
  let rank = ref 1 in
  let depth = ref 0 in
  let rec go () =
    let tok = advance c in
    match tok.Token.kind with
    | Token.Rparen -> if !depth = 0 then () else (decr depth; go ())
    | Token.Lparen ->
        incr depth;
        go ()
    | Token.Comma ->
        if !depth = 0 then incr rank;
        go ()
    | Token.Eof -> fail_at tok "unterminated shape declaration"
    | Token.Newline -> fail_at tok "unterminated shape declaration"
    | _ -> go ()
  in
  go ();
  !rank

(* decl := REAL [',' (ARRAY|DIMENSION) shape] '::' names
         | REAL name shape (',' name shape)* *)
let parse_decl c =
  (* REAL has just been consumed. *)
  match (peek c).Token.kind with
  | Token.Comma ->
      ignore (advance c);
      let attr = expect_ident c in
      if attr <> "ARRAY" && attr <> "DIMENSION" then
        fail_at (peek c) "expected ARRAY or DIMENSION attribute, found %s" attr;
      let rank = parse_shape c in
      expect c Token.Double_colon;
      let rec names acc =
        let n = expect_ident c in
        match (peek c).Token.kind with
        | Token.Comma ->
            ignore (advance c);
            names (n :: acc)
        | _ -> List.rev (n :: acc)
      in
      { Ast.decl_names = names []; rank }
  | _ ->
      let rec entries acc rank =
        let n = expect_ident c in
        let rank' =
          if (peek c).Token.kind = Token.Lparen then parse_shape c else rank
        in
        match (peek c).Token.kind with
        | Token.Comma ->
            ignore (advance c);
            entries (n :: acc) rank'
        | _ -> (List.rev (n :: acc), rank')
      in
      let decl_names, rank = entries [] 2 in
      { Ast.decl_names; rank }

let parse_subroutine_at c =
  skip_newlines c;
  let kw = expect_ident c in
  if kw <> "SUBROUTINE" then
    fail_at (peek c) "expected SUBROUTINE, found %s" kw;
  let sub_name = expect_ident c in
  expect c Token.Lparen;
  let rec params acc =
    let n = expect_ident c in
    match (peek c).Token.kind with
    | Token.Comma ->
        ignore (advance c);
        params (n :: acc)
    | _ -> List.rev (n :: acc)
  in
  let params = if (peek c).Token.kind = Token.Rparen then [] else params [] in
  expect c Token.Rparen;
  let decls = ref [] in
  let body = ref [] in
  let flagged = ref false in
  let rec body_loop () =
    skip_newlines c;
    match (peek c).Token.kind with
    | Token.Directive d ->
        ignore (advance c);
        if d = "STENCIL" then flagged := true;
        body_loop ()
    | Token.Ident "REAL" ->
        ignore (advance c);
        decls := parse_decl c :: !decls;
        body_loop ()
    | Token.Ident "END" ->
        ignore (advance c);
        (* END | END SUBROUTINE [name] *)
        (match (peek c).Token.kind with
        | Token.Ident "SUBROUTINE" ->
            ignore (advance c);
            (match (peek c).Token.kind with
            | Token.Ident _ -> ignore (advance c)
            | _ -> ())
        | _ -> ())
    | Token.Eof -> fail_at (peek c) "missing END"
    | Token.Ident _ ->
        let stmt = parse_stmt c ~flagged:!flagged in
        flagged := false;
        body := stmt :: !body;
        body_loop ()
    | k -> fail_at (peek c) "unexpected %s in subroutine body" (Token.describe k)
  in
  body_loop ();
  {
    Ast.sub_name;
    params;
    decls = List.rev !decls;
    body = List.rev !body;
  }

let cursor_of_string src =
  { tokens = Array.of_list (Lexer.tokenize src); index = 0 }

let with_lexer_errors f =
  try f () with
  | Lexer.Error { line; message; _ } -> raise (Error { line; message })

let parse_subroutine src =
  with_lexer_errors (fun () ->
      let c = cursor_of_string src in
      let sub = parse_subroutine_at c in
      skip_newlines c;
      (match (peek c).Token.kind with
      | Token.Eof -> ()
      | k -> fail_at (peek c) "trailing input after END: %s" (Token.describe k));
      sub)

let parse_statement src =
  with_lexer_errors (fun () ->
      let c = cursor_of_string src in
      skip_newlines c;
      let flagged =
        match (peek c).Token.kind with
        | Token.Directive "STENCIL" ->
            ignore (advance c);
            skip_newlines c;
            true
        | _ -> false
      in
      let stmt = parse_stmt c ~flagged in
      skip_newlines c;
      (match (peek c).Token.kind with
      | Token.Eof -> ()
      | k ->
          fail_at (peek c) "trailing input after statement: %s"
            (Token.describe k));
      stmt)

let parse_program src =
  with_lexer_errors (fun () ->
      let c = cursor_of_string src in
      let rec go acc =
        skip_newlines c;
        match (peek c).Token.kind with
        | Token.Eof -> List.rev acc
        | _ -> go (parse_subroutine_at c :: acc)
      in
      go [])
