type t = Atom of string | List of t list

exception Error of { pos : int; message : string }

let error pos message = raise (Error { pos; message })

let is_atom_char c =
  match c with
  | '(' | ')' | ';' | ' ' | '\t' | '\n' | '\r' -> false
  | _ -> true

let parse_at src =
  let n = String.length src in
  let rec skip_ws pos =
    if pos >= n then pos
    else
      match src.[pos] with
      | ' ' | '\t' | '\n' | '\r' -> skip_ws (pos + 1)
      | ';' ->
          let rec eol p = if p >= n || src.[p] = '\n' then p else eol (p + 1) in
          skip_ws (eol pos)
      | _ -> pos
  in
  let rec expr pos =
    let pos = skip_ws pos in
    if pos >= n then error pos "unexpected end of input"
    else
      match src.[pos] with
      | '(' -> list (pos + 1) []
      | ')' -> error pos "unexpected ')'"
      | _ ->
          let stop = ref pos in
          while !stop < n && is_atom_char src.[!stop] do
            incr stop
          done;
          (Atom (String.sub src pos (!stop - pos)), !stop)
  and list pos acc =
    let pos = skip_ws pos in
    if pos >= n then error pos "unterminated list"
    else if src.[pos] = ')' then (List (List.rev acc), pos + 1)
    else
      let item, pos = expr pos in
      list pos (item :: acc)
  in
  (expr, skip_ws)

let parse src =
  let expr, skip_ws = parse_at src in
  let e, pos = expr 0 in
  let pos = skip_ws pos in
  if pos < String.length src then error pos "trailing input";
  e

let parse_many src =
  let expr, skip_ws = parse_at src in
  let rec go pos acc =
    let pos = skip_ws pos in
    if pos >= String.length src then List.rev acc
    else
      let e, pos = expr pos in
      go pos (e :: acc)
  in
  go 0 []

let rec pp ppf = function
  | Atom a -> Format.pp_print_string ppf a
  | List items ->
      Format.fprintf ppf "(@[<hov>%a@])"
        (Format.pp_print_list ~pp_sep:Format.pp_print_space pp)
        items
