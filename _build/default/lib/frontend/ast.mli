(** Abstract syntax of the Fortran 90 subset.

    The parser is deliberately more liberal than the compiler module:
    it accepts any sum/difference/product expression over array
    references, literals and intrinsic calls, and the {!Recognize}
    module is what decides whether a statement fits the stylized
    convolution pattern, reporting a diagnostic when it does not
    (section 6: a flagged statement that cannot be processed warrants a
    warning rather than a parse failure). *)

type arg = Positional of expr | Keyword of string * expr

and expr =
  | Var of string
  | Num of float
  | Call of string * arg list  (** e.g. [CSHIFT(X, DIM=1, SHIFT=-1)] *)
  | Add of expr * expr
  | Sub of expr * expr
  | Mul of expr * expr
  | Neg of expr

type stmt = {
  lhs : string;
  rhs : expr;
  line : int;
  flagged : bool;  (** preceded by a [!CCC$ STENCIL] directive *)
}

type decl = { decl_names : string list; rank : int }

type subroutine = {
  sub_name : string;
  params : string list;
  decls : decl list;
  body : stmt list;
}

val pp_expr : Format.formatter -> expr -> unit
val pp_stmt : Format.formatter -> stmt -> unit

val expr_variables : expr -> string list
(** All variable names, in first-occurrence order, without duplicates. *)

val declared_rank : subroutine -> string -> int option
(** Rank a name was declared with, if any declaration mentions it. *)
