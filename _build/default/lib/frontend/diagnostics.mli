(** Compiler feedback for flagged stencil statements.

    Section 6: the planned production compiler lets the user flag a
    candidate assignment with a structured comment; the flag justifies
    the compiler in reporting why a statement could {e not} be handled
    by the convolution technique (for lack of registers, for example),
    instead of silently falling back to the general code path. *)

type code =
  | Not_sum_of_products
      (** the right-hand side is not a sum of recognizable terms *)
  | Subtraction
      (** the stylized grammar combines terms with [+] only *)
  | Mixed_shift_kinds  (** CSHIFT and EOSHIFT mixed in one statement *)
  | Multiple_shifted_variables
      (** all shiftings must shift the same variable name (section 2) *)
  | No_shifted_variable
      (** no shift intrinsic: the source array cannot be identified *)
  | Bad_shift_call  (** malformed CSHIFT/EOSHIFT argument list *)
  | Unsupported_dimension  (** DIM other than 1 or 2 *)
  | Duplicate_offset  (** two terms tap the same displacement *)
  | Multiple_bias_terms  (** more than one bare-coefficient term *)
  | Not_an_array_coefficient
      (** a coefficient expression that is neither a name nor a literal *)
  | Register_pressure
      (** no multistencil width fits the register file *)
  | Scratch_pressure
      (** the unrolled dynamic-part table exceeds scratch memory *)

type t = { code : code; message : string; line : int }

val make : code -> line:int -> string -> t
val code_name : code -> string
val pp : Format.formatter -> t -> unit
val to_string : t -> string
