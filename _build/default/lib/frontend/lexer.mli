(** Hand-written lexer for the Fortran 90 subset.

    Handles free-form source: [!] comments to end of line, [&]
    continuations (trailing and leading), case-insensitive identifiers,
    and real literals with optional exponent.  A [!CCC$ ...] comment is
    not discarded: it becomes a {!Token.Directive} token, the
    structured comment of section 6 by which a user flags a stencil
    assignment and asks for compiler feedback. *)

exception Error of { line : int; col : int; message : string }

val tokenize : string -> Token.t list
(** The token list always ends with [Eof].  Raises {!Error} on
    malformed input (stray characters, bad numeric literals). *)
