(** Tokens of the Fortran 90 subset.

    Fortran is case-insensitive; the lexer upcases identifiers and
    keywords.  A [&] continuation (either at end of line, or leading
    the continued line, as in the paper's listings) is consumed by the
    lexer, so the parser sees one logical line per statement. *)

type kind =
  | Ident of string  (** upcased *)
  | Number of float
  | Plus
  | Minus
  | Star
  | Equal
  | Lparen
  | Rparen
  | Comma
  | Double_colon
  | Colon
  | Newline
  | Directive of string  (** a [!CCC$ ...] structured comment, upcased *)
  | Eof

type t = { kind : kind; line : int; col : int }

val pp_kind : Format.formatter -> kind -> unit
val describe : kind -> string
