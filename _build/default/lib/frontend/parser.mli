(** Recursive-descent parser for the Fortran 90 subset.

    The grammar (an LL(1) slice of Fortran 90, enough for the paper's
    isolated-subroutine convention of section 6):

    {v
    subroutine := SUBROUTINE name '(' params ')' NL decls stmts END [SUBROUTINE [name]]
    decl       := REAL [',' (ARRAY|DIMENSION) '(' shape ')'] '::' names NL
                | REAL names-with-shapes NL
    stmt       := [!CCC$ STENCIL] name '=' expr NL
    expr       := term (('+'|'-') term)*
    term       := factor ('*' factor)*
    factor     := name ['(' args ')'] | number | '-' factor | '(' expr ')'
    arg        := [name '='] expr
    v} *)

exception Error of { line : int; message : string }

val parse_subroutine : string -> Ast.subroutine
(** Parse one [SUBROUTINE ... END] unit.  Raises {!Error}. *)

val parse_statement : string -> Ast.stmt
(** Parse a single assignment statement (convenient for tests and for
    the API's quick path). *)

val parse_program : string -> Ast.subroutine list
(** Parse a file containing any number of subroutines. *)
