type kind =
  | Ident of string
  | Number of float
  | Plus
  | Minus
  | Star
  | Equal
  | Lparen
  | Rparen
  | Comma
  | Double_colon
  | Colon
  | Newline
  | Directive of string
  | Eof

type t = { kind : kind; line : int; col : int }

let describe = function
  | Ident s -> Printf.sprintf "identifier %s" s
  | Number v -> Printf.sprintf "number %g" v
  | Plus -> "'+'"
  | Minus -> "'-'"
  | Star -> "'*'"
  | Equal -> "'='"
  | Lparen -> "'('"
  | Rparen -> "')'"
  | Comma -> "','"
  | Double_colon -> "'::'"
  | Colon -> "':'"
  | Newline -> "end of line"
  | Directive d -> Printf.sprintf "directive !CCC$ %s" d
  | Eof -> "end of input"

let pp_kind ppf k = Format.pp_print_string ppf (describe k)
