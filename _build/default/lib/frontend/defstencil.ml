type t = {
  name : string;
  params : string list;
  element_types : string list;
  stmt : Ast.stmt;
}

exception Error of string

let error fmt = Format.kasprintf (fun m -> raise (Error m)) fmt

let upcase = String.uppercase_ascii

let atom = function
  | Sexp.Atom a -> a
  | Sexp.List _ as l -> error "expected an atom, found %a" Sexp.pp l

(* Prefix expression -> Ast.expr.  Addition is n-ary, multiplication
   binary; [cshift x dim shift] and [eoshift x dim shift fill] become
   calls with the paper's positional convention: dimension, then
   shift. *)
let rec expr_of_sexp s =
  match s with
  | Sexp.Atom a -> begin
      match float_of_string_opt a with
      | Some v -> Ast.Num v
      | None -> Ast.Var (upcase a)
    end
  | Sexp.List (Sexp.Atom "+" :: args) when args <> [] ->
      let exprs = List.map expr_of_sexp args in
      List.fold_left
        (fun acc e -> Ast.Add (acc, e))
        (List.hd exprs) (List.tl exprs)
  | Sexp.List [ Sexp.Atom "-"; a; b ] ->
      Ast.Sub (expr_of_sexp a, expr_of_sexp b)
  | Sexp.List [ Sexp.Atom "-"; a ] -> Ast.Neg (expr_of_sexp a)
  | Sexp.List [ Sexp.Atom "*"; a; b ] ->
      Ast.Mul (expr_of_sexp a, expr_of_sexp b)
  | Sexp.List (Sexp.Atom (("cshift" | "CSHIFT" | "eoshift" | "EOSHIFT") as f)
              :: array :: rest) ->
      let name = upcase f in
      let args =
        Ast.Positional (expr_of_sexp array)
        :: List.map (fun s -> Ast.Positional (expr_of_sexp s)) rest
      in
      Ast.Call (name, args)
  | s -> error "unrecognized expression %a" Sexp.pp s

let parse src =
  match Sexp.parse src with
  | Sexp.List
      (Sexp.Atom ("defstencil" | "DEFSTENCIL")
      :: Sexp.Atom name
      :: Sexp.List params
      :: Sexp.List types
      :: [ Sexp.List [ Sexp.Atom ":="; Sexp.Atom lhs; rhs ] ]) ->
      {
        name = upcase name;
        params = List.map (fun p -> upcase (atom p)) params;
        element_types = List.map atom types;
        stmt =
          {
            Ast.lhs = upcase lhs;
            rhs = expr_of_sexp rhs;
            line = 1;
            flagged = true;
          };
      }
  | s -> error "not a defstencil form: %a" Sexp.pp s
  | exception Sexp.Error { pos; message } ->
      error "parse error at offset %d: %s" pos message

let to_subroutine t =
  {
    Ast.sub_name = t.name;
    params = t.params;
    decls = [ { Ast.decl_names = t.params; rank = 2 } ];
    body = [ t.stmt ];
  }
