exception Error of { line : int; col : int; message : string }

type state = {
  src : string;
  mutable pos : int;
  mutable line : int;
  mutable bol : int;  (** offset of the current line's first character *)
  mutable tokens : Token.t list;  (** reversed *)
}

let error st message =
  raise (Error { line = st.line; col = st.pos - st.bol + 1; message })

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let advance st = st.pos <- st.pos + 1

let is_ident_start c = ('a' <= c && c <= 'z') || ('A' <= c && c <= 'Z')

let is_ident_char c =
  is_ident_start c || ('0' <= c && c <= '9') || c = '_' || c = '$'

let is_digit c = '0' <= c && c <= '9'

let emit st kind ~col = st.tokens <- { Token.kind; line = st.line; col } :: st.tokens

let newline st =
  st.line <- st.line + 1;
  st.bol <- st.pos

(* Skip to end of line without consuming the newline itself. *)
let skip_line st =
  let rec go () =
    match peek st with
    | Some '\n' | None -> ()
    | Some _ ->
        advance st;
        go ()
  in
  go ()

let read_while st pred =
  let start = st.pos in
  let rec go () =
    match peek st with
    | Some c when pred c ->
        advance st;
        go ()
    | Some _ | None -> ()
  in
  go ();
  String.sub st.src start (st.pos - start)

let read_number st ~col =
  let intpart = read_while st is_digit in
  let frac =
    match peek st with
    | Some '.' ->
        (* Don't mistake '::' for part of a number; a '.' is only a
           decimal point here, never an operator in this subset. *)
        advance st;
        "." ^ read_while st is_digit
    | Some _ | None -> ""
  in
  let expo =
    match peek st with
    | Some ('e' | 'E' | 'd' | 'D') -> begin
        let save = st.pos in
        advance st;
        let sign =
          match peek st with
          | Some (('+' | '-') as c) ->
              advance st;
              String.make 1 c
          | Some _ | None -> ""
        in
        let digits = read_while st is_digit in
        if digits = "" then begin
          (* Not an exponent after all: e.g. the identifier boundary in
             "2E" would be malformed Fortran anyway, but be safe. *)
          st.pos <- save;
          ""
        end
        else "e" ^ sign ^ digits
      end
    | Some _ | None -> ""
  in
  let text = intpart ^ frac ^ expo in
  match float_of_string_opt text with
  | Some v -> emit st (Token.Number v) ~col
  | None -> error st (Printf.sprintf "malformed numeric literal %S" text)

(* After a trailing '&', skip whitespace, comments and newlines, plus a
   single leading '&' on the continued line (the paper's listings use
   the leading-ampersand style). *)
let skip_continuation st =
  let rec go () =
    match peek st with
    | Some (' ' | '\t' | '\r') ->
        advance st;
        go ()
    | Some '\n' ->
        advance st;
        newline st;
        go ()
    | Some '!' ->
        skip_line st;
        go ()
    | Some _ | None -> ()
  in
  go ();
  match peek st with Some '&' -> advance st | Some _ | None -> ()

let directive_prefix = "CCC$"

let tokenize src =
  let st = { src; pos = 0; line = 1; bol = 0; tokens = [] } in
  let rec loop () =
    let col = st.pos - st.bol + 1 in
    match peek st with
    | None -> emit st Token.Eof ~col
    | Some c -> begin
        (match c with
        | ' ' | '\t' | '\r' -> advance st
        | '\n' ->
            advance st;
            emit st Token.Newline ~col;
            newline st
        | '&' ->
            advance st;
            skip_continuation st
        | '!' -> begin
            advance st;
            let rest_start = st.pos in
            skip_line st;
            let body =
              String.trim
                (String.sub st.src rest_start (st.pos - rest_start))
            in
            let upper = String.uppercase_ascii body in
            if String.length upper >= String.length directive_prefix
               && String.sub upper 0 (String.length directive_prefix)
                  = directive_prefix
            then
              let payload =
                String.trim
                  (String.sub upper
                     (String.length directive_prefix)
                     (String.length upper - String.length directive_prefix))
              in
              emit st (Token.Directive payload) ~col
          end
        | '+' ->
            advance st;
            emit st Token.Plus ~col
        | '-' ->
            advance st;
            emit st Token.Minus ~col
        | '*' ->
            advance st;
            emit st Token.Star ~col
        | '=' ->
            advance st;
            emit st Token.Equal ~col
        | '(' ->
            advance st;
            emit st Token.Lparen ~col
        | ')' ->
            advance st;
            emit st Token.Rparen ~col
        | ',' ->
            advance st;
            emit st Token.Comma ~col
        | ':' ->
            advance st;
            if peek st = Some ':' then begin
              advance st;
              emit st Token.Double_colon ~col
            end
            else emit st Token.Colon ~col
        | c when is_ident_start c ->
            let name = read_while st is_ident_char in
            emit st (Token.Ident (String.uppercase_ascii name)) ~col
        | c when is_digit c || c = '.' -> read_number st ~col
        | c -> error st (Printf.sprintf "unexpected character %C" c));
        match st.tokens with
        | { Token.kind = Token.Eof; _ } :: _ -> ()
        | _ -> loop ()
      end
  in
  loop ();
  List.rev st.tokens
