(** Recognition of stencil assignments (section 2 of the paper).

    Decides whether a parsed assignment fits the stylized form

    {v R = T + T + ... + T
       T ::= c * s(X) | s(X) * c | s(X) | c
       s(X) ::= X | CSHIFT(s(X), DIM=k, SHIFT=m) | EOSHIFT(...) v}

    and, when it does, produces the {!Ccc_stencil.Pattern.t} the
    compiler module consumes.  All shiftings within one statement must
    shift the same variable name, as in the paper's implementation.
    When the statement does not fit, the result is the list of
    diagnostics that the production compiler would report for a flagged
    statement. *)

val statement :
  Ast.stmt -> (Ccc_stencil.Pattern.t, Diagnostics.t list) result

val subroutine :
  Ast.subroutine ->
  (Ccc_stencil.Pattern.t, Diagnostics.t list) result
(** The isolated-subroutine convention of section 6: the subroutine
    body must consist of exactly one recognizable assignment.  The
    coefficient, source and result names must be parameters. *)

val statement_multi :
  Ast.stmt -> (Ccc_stencil.Multi.t, Diagnostics.t list) result
(** The future-work generalization: terms may shift {e different}
    variables, so the Gordon Bell statement's ten terms fit one
    pattern.  The source set is the set of shifted variables; a bare
    variable that never appears shifted is still a coefficient, so a
    product of two unshifted names remains ambiguous and is reported —
    write the data side as [CSHIFT(Y, 1, 0)] to mark it.  Statements
    the single-source recognizer accepts produce the equivalent
    one-source result here. *)
