open Ccc_stencil

type shift_kind = Cshift | Eoshift

type shifted = {
  var : string;
  offset : Offset.t;
  kinds : shift_kind list;  (** one entry per shift application *)
  fill : float option;  (** EOSHIFT BOUNDARY= value if given *)
}

(* One recognized term of the sum. *)
type term =
  | Tap_term of { shifted : shifted; coeff : Coeff.t }
  | Bias_term of Coeff.t

type context = { line : int; mutable diags : Diagnostics.t list }

let report ctx code fmt =
  Format.kasprintf
    (fun message ->
      ctx.diags <- Diagnostics.make code ~line:ctx.line message :: ctx.diags)
    fmt

let describe e = Format.asprintf "%a" Ast.pp_expr e

(* Flatten the sum spine.  Subtraction is outside the grammar; report
   it once per occurrence and continue so that other diagnostics can
   still surface. *)
let rec sum_terms ctx = function
  | Ast.Add (a, b) -> sum_terms ctx a @ sum_terms ctx b
  | Ast.Sub (a, b) ->
      report ctx Diagnostics.Subtraction
        "terms are combined with '+' only in the stylized pattern; rewrite \
         '- %s' with a negated coefficient array"
        (describe b);
      sum_terms ctx a @ sum_terms ctx b
  | e -> [ e ]

(* Evaluate a compile-time integer argument (DIM/SHIFT amounts). *)
let rec const_int = function
  | Ast.Num v when Float.is_integer v -> Some (int_of_float v)
  | Ast.Neg e -> Option.map (fun v -> -v) (const_int e)
  | _ -> None

let rec const_float = function
  | Ast.Num v -> Some v
  | Ast.Neg e -> Option.map (fun v -> -.v) (const_float e)
  | _ -> None

(* Parse one CSHIFT/EOSHIFT argument list into (array expr, dim, shift,
   boundary).  Fortran 90 signature: CSHIFT(ARRAY, SHIFT, DIM) for the
   positional form -- but the paper consistently writes
   CSHIFT(X, DIM=k, SHIFT=m) or CSHIFT(X, k, m) with the dimension
   first.  We follow the paper's convention for positional arguments
   (dimension then shift), since that is the dialect the compiler
   module was specified against, and accept the keyword forms
   unambiguously. *)
let shift_args ctx name args =
  match args with
  | Ast.Positional array_arg :: rest ->
      let dim = ref None
      and amount = ref None
      and fill = ref None
      and ok = ref true in
      let positional = ref [] in
      List.iter
        (function
          | Ast.Positional e -> positional := e :: !positional
          | Ast.Keyword (k, e) -> (
              match k with
              | "DIM" -> dim := const_int e
              | "SHIFT" -> amount := const_int e
              | "BOUNDARY" -> fill := const_float e
              | other ->
                  report ctx Diagnostics.Bad_shift_call
                    "unknown keyword %s in %s" other name;
                  ok := false))
        rest;
      (match List.rev !positional with
      | [] -> ()
      | [ d; s ] ->
          if !dim = None then dim := const_int d;
          if !amount = None then amount := const_int s
      | [ d ] -> if !dim = None then dim := const_int d
      | _ ->
          report ctx Diagnostics.Bad_shift_call
            "too many positional arguments in %s" name;
          ok := false);
      if not !ok then None
      else begin
        match (!dim, !amount) with
        | Some d, Some s -> Some (array_arg, d, s, !fill)
        | _ ->
            report ctx Diagnostics.Bad_shift_call
              "%s needs compile-time DIM and SHIFT arguments" name;
            None
      end
  | _ ->
      report ctx Diagnostics.Bad_shift_call
        "%s: first argument must be the shifted array" name;
      None

(* s(X) ::= X | CSHIFT(s(X), k, m) | EOSHIFT(s(X), k, m) *)
let rec as_shifted ctx expr =
  match expr with
  | Ast.Var v -> Some { var = v; offset = Offset.zero; kinds = []; fill = None }
  | Ast.Call ((("CSHIFT" | "EOSHIFT") as name), args) -> begin
      match shift_args ctx name args with
      | None -> None
      | Some (inner_expr, dim, amount, fill) -> begin
          match as_shifted ctx inner_expr with
          | None -> None
          | Some inner ->
              if dim <> 1 && dim <> 2 then begin
                report ctx Diagnostics.Unsupported_dimension
                  "%s with DIM=%d: only two-dimensional stencils are \
                   supported"
                  name dim;
                None
              end
              else
                let kind = if name = "CSHIFT" then Cshift else Eoshift in
                Some
                  {
                    var = inner.var;
                    offset = Offset.add inner.offset (Offset.shift ~dim ~amount);
                    kinds = kind :: inner.kinds;
                    fill =
                      (match fill with Some _ -> fill | None -> inner.fill);
                  }
        end
    end
  | _ -> None

let is_shift_call = function
  | Ast.Call (("CSHIFT" | "EOSHIFT"), _) -> true
  | _ -> false

(* Would this expression be a legal coefficient? *)
let as_coeff expr =
  match expr with
  | Ast.Var v -> Some (Coeff.Array v)
  | Ast.Num v -> Some (Coeff.Scalar v)
  | Ast.Neg e ->
      Option.map
        (function
          | Coeff.Scalar v -> Coeff.Scalar (-.v)
          | c -> c (* cannot negate an array reference cheaply *))
        (match e with Ast.Num v -> Some (Coeff.Scalar v) | _ -> None)
  | _ -> None

(* Classify one term.  [source] is the shifted variable when already
   known; bare variables are ambiguous until the source is known, so
   classification runs in two passes (see [statement]). *)
let classify_term ctx ~source expr =
  match expr with
  | Ast.Mul (a, b) -> begin
      let try_pair shifted_side coeff_side =
        if is_shift_call shifted_side
           || (match (shifted_side, source) with
              | Ast.Var v, Some s -> v = s
              | _ -> false)
        then
          match (as_shifted ctx shifted_side, as_coeff coeff_side) with
          | Some shifted, Some coeff -> Some (Tap_term { shifted; coeff })
          | Some _, None ->
              report ctx Diagnostics.Not_an_array_coefficient
                "coefficient %s is neither an array name nor a literal"
                (describe coeff_side);
              None
          | None, _ -> None
        else None
      in
      match try_pair a b with
      | Some t -> Some t
      | None -> begin
          match try_pair b a with
          | Some t -> Some t
          | None ->
              report ctx Diagnostics.Not_sum_of_products
                "term %s is not of the form c * s(X)" (describe expr);
              None
        end
    end
  | Ast.Call (("CSHIFT" | "EOSHIFT"), _) ->
      Option.map
        (fun shifted -> Tap_term { shifted; coeff = Coeff.One })
        (as_shifted ctx expr)
  | Ast.Var v -> begin
      match source with
      | Some s when v = s ->
          Some
            (Tap_term
               {
                 shifted =
                   { var = v; offset = Offset.zero; kinds = []; fill = None };
                 coeff = Coeff.One;
               })
      | _ -> Some (Bias_term (Coeff.Array v))
    end
  | Ast.Num v -> Some (Bias_term (Coeff.Scalar v))
  | Ast.Neg _ ->
      report ctx Diagnostics.Subtraction
        "negated term %s: rewrite with a negated coefficient" (describe expr);
      None
  | _ ->
      report ctx Diagnostics.Not_sum_of_products
        "term %s is not of the form c * s(X), s(X) or c" (describe expr);
      None

(* Find the shifted variable: every CSHIFT/EOSHIFT chain must bottom
   out in the same name. *)
let find_source ctx terms =
  let vars = ref [] in
  let record v = if not (List.mem v !vars) then vars := v :: !vars in
  (* Bottom of a (possibly malformed) shift nest: the shifted name. *)
  let rec chain_bottom = function
    | Ast.Var v -> record v
    | Ast.Call (("CSHIFT" | "EOSHIFT"), Ast.Positional inner :: _) ->
        chain_bottom inner
    | Ast.Num _ | Ast.Call _ | Ast.Add _ | Ast.Sub _ | Ast.Mul _ | Ast.Neg _ ->
        ()
  in
  let rec scan = function
    | Ast.Call (("CSHIFT" | "EOSHIFT"), _) as call -> begin
        (* Walk without reporting; real diagnostics come later. *)
        let quiet = { line = ctx.line; diags = [] } in
        match as_shifted quiet call with
        | Some s -> record s.var
        | None ->
            (* Malformed shift: still identify the variable so the
               per-term diagnostics (bad-shift-call, ...) are reported
               instead of a misleading no-shifted-variable. *)
            chain_bottom call
      end
    | Ast.Mul (a, b) | Ast.Add (a, b) | Ast.Sub (a, b) ->
        scan a;
        scan b
    | Ast.Neg a -> scan a
    | Ast.Var _ | Ast.Num _ | Ast.Call _ -> ()
  in
  List.iter scan terms;
  match List.rev !vars with
  | [ v ] -> Some v
  | [] ->
      report ctx Diagnostics.No_shifted_variable
        "no CSHIFT/EOSHIFT found: cannot identify the source array";
      None
  | v :: _ :: _ as all ->
      report ctx Diagnostics.Multiple_shifted_variables
        "all shiftings must shift the same variable name, found: %s"
        (String.concat ", " all);
      ignore v;
      None

let statement (stmt : Ast.stmt) =
  let ctx = { line = stmt.Ast.line; diags = [] } in
  let term_exprs = sum_terms ctx stmt.Ast.rhs in
  match find_source ctx term_exprs with
  | None -> Error (List.rev ctx.diags)
  | Some source ->
      let terms =
        List.filter_map (classify_term ctx ~source:(Some source)) term_exprs
      in
      (* Shift-kind consistency. *)
      let kinds =
        List.concat_map
          (function
            | Tap_term { shifted; _ } -> shifted.kinds
            | Bias_term _ -> [])
          terms
      in
      let has k = List.mem k kinds in
      if has Cshift && has Eoshift then
        report ctx Diagnostics.Mixed_shift_kinds
          "CSHIFT and EOSHIFT are mixed in one statement; compositions of \
           circular and end-off shifts are outside the stylized pattern";
      let boundary =
        if has Eoshift then
          let fill =
            List.find_map
              (function
                | Tap_term { shifted = { fill = Some f; _ }; _ } -> Some f
                | Tap_term _ | Bias_term _ -> None)
              terms
          in
          Boundary.End_off (Option.value ~default:0.0 fill)
        else Boundary.Circular
      in
      (* Taps and bias. *)
      let taps = ref [] in
      let bias = ref None in
      List.iter
        (function
          | Tap_term { shifted; coeff } ->
              if
                List.exists
                  (fun t -> Offset.equal t.Tap.offset shifted.offset)
                  !taps
              then
                report ctx Diagnostics.Duplicate_offset
                  "two terms tap offset %s; combine their coefficient arrays"
                  (Offset.to_string shifted.offset)
              else taps := Tap.make shifted.offset coeff :: !taps
          | Bias_term c -> (
              match !bias with
              | None -> bias := Some c
              | Some _ ->
                  report ctx Diagnostics.Multiple_bias_terms
                    "more than one bare-coefficient term"))
        terms;
      if ctx.diags <> [] then Error (List.rev ctx.diags)
      else
        Ok
          (Pattern.create ?bias:!bias ~boundary ~source ~result:stmt.Ast.lhs
             (List.rev !taps))

(* ------------------------------------------------------------------ *)
(* The multi-source generalization (the paper's future work): the
   source set is the set of shifted variables, every term's data side
   must be a shift chain or a known source, and taps are keyed by
   (source, offset). *)

let find_sources ctx terms =
  let vars = ref [] in
  let record v = if not (List.mem v !vars) then vars := v :: !vars in
  let rec chain_bottom = function
    | Ast.Var v -> record v
    | Ast.Call (("CSHIFT" | "EOSHIFT"), Ast.Positional inner :: _) ->
        chain_bottom inner
    | Ast.Num _ | Ast.Call _ | Ast.Add _ | Ast.Sub _ | Ast.Mul _ | Ast.Neg _ ->
        ()
  in
  let rec scan = function
    | Ast.Call (("CSHIFT" | "EOSHIFT"), _) as call -> chain_bottom call
    | Ast.Mul (a, b) | Ast.Add (a, b) | Ast.Sub (a, b) ->
        scan a;
        scan b
    | Ast.Neg a -> scan a
    | Ast.Var _ | Ast.Num _ | Ast.Call _ -> ()
  in
  List.iter scan terms;
  match List.rev !vars with
  | [] ->
      report ctx Diagnostics.No_shifted_variable
        "no CSHIFT/EOSHIFT found: cannot identify any source array";
      None
  | sources -> Some sources

type multi_term =
  | M_tap of { source : string; shifted : shifted; coeff : Coeff.t }
  | M_bias of Coeff.t

let classify_term_multi ctx ~sources expr =
  let is_source = function
    | Ast.Var v -> List.mem v sources
    | _ -> false
  in
  let data_side e = is_shift_call e || is_source e in
  match expr with
  | Ast.Mul (a, b) -> begin
      match (data_side a, data_side b) with
      | true, true ->
          report ctx Diagnostics.Not_sum_of_products
            "both factors of %s are source arrays; one side must be a \
             coefficient"
            (describe expr);
          None
      | false, false ->
          (* Could still be coeff * coeff (a bias-like product), which
             the grammar has no place for. *)
          report ctx Diagnostics.Not_sum_of_products
            "term %s shifts no source array; write the data side as \
             CSHIFT(Y, 1, 0) to mark it"
            (describe expr);
          None
      | true, false | false, true ->
          let data, coeff_expr = if data_side a then (a, b) else (b, a) in
          (match (as_shifted ctx data, as_coeff coeff_expr) with
          | Some shifted, Some coeff ->
              Some (M_tap { source = shifted.var; shifted; coeff })
          | Some _, None ->
              report ctx Diagnostics.Not_an_array_coefficient
                "coefficient %s is neither an array name nor a literal"
                (describe coeff_expr);
              None
          | None, _ -> None)
    end
  | Ast.Call (("CSHIFT" | "EOSHIFT"), _) ->
      Option.map
        (fun shifted ->
          M_tap { source = shifted.var; shifted; coeff = Coeff.One })
        (as_shifted ctx expr)
  | Ast.Var v when List.mem v sources ->
      Some
        (M_tap
           {
             source = v;
             shifted = { var = v; offset = Offset.zero; kinds = []; fill = None };
             coeff = Coeff.One;
           })
  | Ast.Var v -> Some (M_bias (Coeff.Array v))
  | Ast.Num v -> Some (M_bias (Coeff.Scalar v))
  | Ast.Neg _ ->
      report ctx Diagnostics.Subtraction
        "negated term %s: rewrite with a negated coefficient" (describe expr);
      None
  | Ast.Add _ | Ast.Sub _ | Ast.Call _ ->
      report ctx Diagnostics.Not_sum_of_products
        "term %s is not of the form c * s(Y), s(Y) or c" (describe expr);
      None

let statement_multi (stmt : Ast.stmt) =
  let ctx = { line = stmt.Ast.line; diags = [] } in
  let term_exprs = sum_terms ctx stmt.Ast.rhs in
  match find_sources ctx term_exprs with
  | None -> Error (List.rev ctx.diags)
  | Some sources ->
      let terms =
        List.filter_map (classify_term_multi ctx ~sources) term_exprs
      in
      let kinds =
        List.concat_map
          (function
            | M_tap { shifted; _ } -> shifted.kinds
            | M_bias _ -> [])
          terms
      in
      let has k = List.mem k kinds in
      if has Cshift && has Eoshift then
        report ctx Diagnostics.Mixed_shift_kinds
          "CSHIFT and EOSHIFT are mixed in one statement; compositions of \
           circular and end-off shifts are outside the stylized pattern";
      let boundary =
        if has Eoshift then
          let fill =
            List.find_map
              (function
                | M_tap { shifted = { fill = Some f; _ }; _ } -> Some f
                | M_tap _ | M_bias _ -> None)
              terms
          in
          Boundary.End_off (Option.value ~default:0.0 fill)
        else Boundary.Circular
      in
      let source_index v =
        let rec go i = function
          | [] -> assert false
          | s :: rest -> if String.equal s v then i else go (i + 1) rest
        in
        go 0 sources
      in
      let taps = ref [] in
      let bias = ref None in
      List.iter
        (function
          | M_tap { source; shifted; coeff } ->
              let src = source_index source in
              if
                List.exists
                  (fun (st : Multi.source_tap) ->
                    st.Multi.source = src
                    && Offset.equal st.Multi.tap.Tap.offset shifted.offset)
                  !taps
              then
                report ctx Diagnostics.Duplicate_offset
                  "two terms tap offset %s of %s; combine their coefficient \
                   arrays"
                  (Offset.to_string shifted.offset)
                  source
              else
                taps :=
                  { Multi.source = src; tap = Tap.make shifted.offset coeff }
                  :: !taps
          | M_bias c -> (
              match !bias with
              | None -> bias := Some c
              | Some _ ->
                  report ctx Diagnostics.Multiple_bias_terms
                    "more than one bare-coefficient term"))
        terms;
      if ctx.diags <> [] then Error (List.rev ctx.diags)
      else
        Ok
          (Multi.create ?bias:!bias ~boundary ~result:stmt.Ast.lhs ~sources
             (List.rev !taps))

let subroutine (sub : Ast.subroutine) =
  match sub.Ast.body with
  | [ stmt ] -> begin
      match statement stmt with
      | Error _ as e -> e
      | Ok pattern ->
          let used =
            Pattern.source_var pattern :: Pattern.result_var pattern
            :: List.filter_map
                 (fun t -> Coeff.array_name t.Tap.coeff)
                 (Pattern.taps pattern)
            @ (match Pattern.bias pattern with
              | Some c -> Option.to_list (Coeff.array_name c)
              | None -> [])
          in
          let missing =
            List.filter (fun v -> not (List.mem v sub.Ast.params)) used
          in
          if missing = [] then Ok pattern
          else
            Error
              [
                Diagnostics.make Diagnostics.Not_sum_of_products
                  ~line:stmt.Ast.line
                  (Printf.sprintf
                     "array names not among the subroutine parameters: %s"
                     (String.concat ", " missing));
              ]
    end
  | stmts ->
      let line =
        match stmts with s :: _ -> s.Ast.line | [] -> 1
      in
      Error
        [
          Diagnostics.make Diagnostics.Not_sum_of_products ~line
            (Printf.sprintf
               "the stencil subroutine must contain exactly one assignment \
                statement (found %d)"
               (List.length stmts));
        ]
