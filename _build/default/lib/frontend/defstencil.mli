(** The version-1 Lisp front end (section 6).

    A [defstencil] form names a stencil, lists its parameter arrays
    (result, source, coefficients), gives element types, and states the
    assignment as a prefix expression:

    {v
    (defstencil cross (r x c1 c2 c3 c4 c5)
      (single-float single-float)
      (:= r (+ ( * c1 (cshift x 1 -1))
               ( * c2 (cshift x 2 -1))
               ( * c3 x)
               ( * c4 (cshift x 2 +1))
               ( * c5 (cshift x 1 +1)))))
    v}

    (The space after each open parenthesis above only protects this
    OCaml comment; the reader accepts the usual Lisp spelling.)

    We translate the form into the same {!Ast} the Fortran parser
    produces, so recognition and compilation are shared between the two
    front ends exactly as in the paper (the microcode and compilation
    algorithms were common to both versions). *)

type t = {
  name : string;
  params : string list;
  element_types : string list;
  stmt : Ast.stmt;
}

exception Error of string

val parse : string -> t
(** Raises {!Error} on a malformed form. *)

val to_subroutine : t -> Ast.subroutine
(** View the form through the Fortran convention (rank-2 REAL
    parameters), for the shared recognition path. *)
