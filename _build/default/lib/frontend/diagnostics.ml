type code =
  | Not_sum_of_products
  | Subtraction
  | Mixed_shift_kinds
  | Multiple_shifted_variables
  | No_shifted_variable
  | Bad_shift_call
  | Unsupported_dimension
  | Duplicate_offset
  | Multiple_bias_terms
  | Not_an_array_coefficient
  | Register_pressure
  | Scratch_pressure

type t = { code : code; message : string; line : int }

let make code ~line message = { code; message; line }

let code_name = function
  | Not_sum_of_products -> "not-sum-of-products"
  | Subtraction -> "subtraction"
  | Mixed_shift_kinds -> "mixed-shift-kinds"
  | Multiple_shifted_variables -> "multiple-shifted-variables"
  | No_shifted_variable -> "no-shifted-variable"
  | Bad_shift_call -> "bad-shift-call"
  | Unsupported_dimension -> "unsupported-dimension"
  | Duplicate_offset -> "duplicate-offset"
  | Multiple_bias_terms -> "multiple-bias-terms"
  | Not_an_array_coefficient -> "not-an-array-coefficient"
  | Register_pressure -> "register-pressure"
  | Scratch_pressure -> "scratch-pressure"

let pp ppf t =
  Format.fprintf ppf "line %d: [%s] %s" t.line (code_name t.code) t.message

let to_string t = Format.asprintf "%a" pp t
