(** Minimal s-expression reader for the [defstencil] front end.

    The first version of the convolution compiler was prototyped in
    Lucid Common Lisp (section 6); its surface syntax was a
    [defstencil] form.  This reader supports exactly what that form
    needs: atoms (symbols, numbers, keywords such as [:=]), and
    parenthesized lists, with [;] comments. *)

type t = Atom of string | List of t list

exception Error of { pos : int; message : string }

val parse : string -> t
(** Read one s-expression.  Raises {!Error}. *)

val parse_many : string -> t list

val pp : Format.formatter -> t -> unit
