type allocation = {
  ring_sizes : (int * int) list;
  unroll : int;
  data_registers : int;
}

type merged_allocation = {
  merged_sizes : ((int * int) * int) list;
  merged_unroll : int;
  merged_registers : int;
}

type failure = { needed : int; available : int }

let rec gcd a b = if b = 0 then a else gcd b (a mod b)
let lcm a b = if a = 0 || b = 0 then 0 else a / gcd a b * b
let lcm_list = List.fold_left lcm 1

(* The shared sizing strategy over a list of ((source, column), natural
   span) entries: start every multi-row ring at the global maximum
   span (rings of natural size 1 stay at 1 — shrinking those always
   saves registers and never enlarges the LCM); if over budget,
   compress rings back to their natural spans from the smallest
   natural size upward until the total fits. *)
let size_rings natural ~available =
  let needed = List.fold_left (fun acc (_, s) -> acc + s) 0 natural in
  if needed > available then Error { needed; available }
  else begin
    let max_span = List.fold_left (fun acc (_, s) -> max acc s) 1 natural in
    let sizes =
      Array.of_list
        (List.map
           (fun (key, span) -> (key, span, if span = 1 then 1 else max_span))
           natural)
    in
    let total () =
      Array.fold_left (fun acc (_, _, size) -> acc + size) 0 sizes
    in
    let order =
      sizes |> Array.to_list
      |> List.mapi (fun i (_, span, _) -> (span, i))
      |> List.sort compare
    in
    let rec compress = function
      | [] -> ()
      | (_, i) :: rest ->
          if total () > available then begin
            let key, span, _ = sizes.(i) in
            sizes.(i) <- (key, span, span);
            compress rest
          end
    in
    compress order;
    assert (total () <= available);
    let sized =
      Array.to_list sizes |> List.map (fun (key, _, size) -> (key, size))
    in
    Ok (sized, lcm_list (List.map snd sized), total ())
  end

let natural_of_multistencil ~src ms =
  List.map
    (fun (c : Ccc_stencil.Multistencil.column) -> ((src, c.dcol), c.span))
    (Ccc_stencil.Multistencil.columns ms)

let allocate ms ~available =
  match size_rings (natural_of_multistencil ~src:0 ms) ~available with
  | Error f -> Error f
  | Ok (sized, unroll, data_registers) ->
      Ok
        {
          ring_sizes = List.map (fun ((_, dcol), size) -> (dcol, size)) sized;
          unroll;
          data_registers;
        }

let allocate_multi multistencils ~available =
  let natural =
    List.concat_map
      (fun (src, ms) -> natural_of_multistencil ~src ms)
      multistencils
  in
  match size_rings natural ~available with
  | Error f -> Error f
  | Ok (merged_sizes, merged_unroll, merged_registers) ->
      Ok { merged_sizes; merged_unroll; merged_registers }
