lib/compiler/regalloc.mli: Ccc_stencil
