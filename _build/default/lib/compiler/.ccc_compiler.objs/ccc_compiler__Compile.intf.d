lib/compiler/compile.mli: Ccc_cm2 Ccc_microcode Ccc_stencil Format
