lib/compiler/schedule.ml: Array Ccc_cm2 Ccc_microcode Ccc_stencil Format Hashtbl List Multi Multistencil Offset Option Printf Regalloc Tap
