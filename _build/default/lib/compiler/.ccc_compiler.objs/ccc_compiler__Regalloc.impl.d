lib/compiler/regalloc.ml: Array Ccc_stencil List
