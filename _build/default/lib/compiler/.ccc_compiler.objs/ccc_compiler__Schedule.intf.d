lib/compiler/schedule.mli: Ccc_cm2 Ccc_microcode Ccc_stencil Regalloc
