lib/compiler/compile.ml: Ccc_cm2 Ccc_microcode Ccc_stencil Format List Printf Regalloc Schedule String
