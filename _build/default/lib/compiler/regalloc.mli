(** Register allocation: per-column ring buffers (section 5.4).

    Each multistencil column gets a ring buffer of registers; every
    line loads one leading-edge element per column into the next slot
    of its ring, so the register pattern rotates and no register
    shuffling is ever needed.  Ring sizes need not equal the column's
    natural size: padding a ring aligns its rotation period with the
    others, and the unroll factor — the size of the register-access
    table in scratch memory — is the LCM of the ring sizes.

    The paper's sizing strategy, implemented here: start with every
    ring at the maximum column size, except height-1 columns which stay
    at 1 ("reducing a ring buffer to size 1 always saves registers and
    never makes the LCM larger"); if the registers don't suffice,
    compress columns from smallest to largest back toward their natural
    sizes. *)

type allocation = {
  ring_sizes : (int * int) list;
      (** (column offset, ring size), ascending by column — the
          single-source view *)
  unroll : int;  (** LCM of the ring sizes *)
  data_registers : int;  (** sum of ring sizes *)
}

type merged_allocation = {
  merged_sizes : ((int * int) * int) list;
      (** ((source, column offset), ring size), ascending *)
  merged_unroll : int;
  merged_registers : int;
}

type failure = {
  needed : int;  (** registers demanded by natural sizes *)
  available : int;
}

val lcm_list : int list -> int

val allocate :
  Ccc_stencil.Multistencil.t ->
  available:int ->
  (allocation, failure) result
(** [available] is the register budget for data elements (the file
    size minus the pinned zero/one registers).  Fails when even the
    natural spans do not fit, which is how a too-wide multistencil is
    rejected (the 13-point diamond at width 8 wants 48 registers). *)

val allocate_multi :
  (int * Ccc_stencil.Multistencil.t) list ->
  available:int ->
  (merged_allocation, failure) result
(** The multi-source generalization: every source's multistencil
    columns join one pool of ring buffers sharing the register file;
    the sizing strategy (pad toward the global maximum span, compress
    smallest-first under pressure) treats them uniformly, so the LCM
    discipline spans all sources. *)
