(** The general CM Fortran code path (the "around 4 gigaflops" class
    of section 3): the comparison baseline the convolution compiler
    improves on.

    Without the convolution module, the compiler executes the
    assignment term by term:

    - each [CSHIFT] materializes a whole shifted copy of the array —
      every element moves, not just the halo;
    - each multiplication and each addition is a separate elementwise
      pass through the vector units, with no register reuse between
      array elements;
    - every pass is a separately launched front-end statement.

    The data semantics are identical (this module evaluates through
    {!Ccc_runtime.Reference}); only the cost model differs. *)

type result = { output : Ccc_runtime.Grid.t; stats : Ccc_runtime.Stats.t }

val run :
  ?iterations:int ->
  Ccc_cm2.Config.t ->
  Ccc_stencil.Pattern.t ->
  Ccc_runtime.Reference.env ->
  result

val estimate :
  ?iterations:int ->
  sub_rows:int ->
  sub_cols:int ->
  Ccc_cm2.Config.t ->
  Ccc_stencil.Pattern.t ->
  Ccc_runtime.Stats.t
(** Timing without data, mirroring {!Ccc_runtime.Exec.estimate}. *)
