open Ccc_stencil
module Config = Ccc_cm2.Config
module Stats = Ccc_runtime.Stats
module Passes = Ccc_runtime.Passes

(* One 32x32 bit transpose: the interface chip moves 32 slices in and
   32 out; at one slice per memory cycle that is 64 cycles per batch
   of 32 words (the 3% figure of section 4.3 concerned instruction
   latching, not this data-path cost, which is why slicewise storage
   was worth a compiler release). *)
let transpose_cycles_per_batch = 2 * 32

let batches elements = (elements + 31) / 32

let elementwise_cycles (config : Config.t) ~elements ~reads =
  let base = Passes.elementwise_cycles config ~elements ~reads in
  (* Every operand stream and the result stream crosses the transposer
     once per batch. *)
  base + ((reads + 1) * batches elements * transpose_cycles_per_batch)

let statement_cycles config pattern ~sub_rows ~sub_cols =
  let elements = sub_rows * sub_cols in
  let cycles = ref 0 and passes = ref 0 in
  let add_pass c =
    cycles := !cycles + c;
    incr passes
  in
  List.iteri
    (fun i tap ->
      let { Offset.drow; dcol } = tap.Tap.offset in
      if drow <> 0 then
        add_pass
          (Passes.whole_array_shift_cycles config ~elements ~amount:drow
             ~sub_rows ~sub_cols ~dim:1);
      if dcol <> 0 then
        add_pass
          (Passes.whole_array_shift_cycles config ~elements ~amount:dcol
             ~sub_rows ~sub_cols ~dim:2);
      (match tap.Tap.coeff with
      | Coeff.One -> ()
      | Coeff.Array _ | Coeff.Scalar _ ->
          add_pass (elementwise_cycles config ~elements ~reads:2));
      if i > 0 then add_pass (elementwise_cycles config ~elements ~reads:2))
    (Pattern.taps pattern);
  (match Pattern.bias pattern with
  | Some _ -> add_pass (elementwise_cycles config ~elements ~reads:2)
  | None -> ());
  (!cycles, !passes)

let estimate ?(iterations = 1) ~sub_rows ~sub_cols config pattern =
  let compute_cycles, passes =
    statement_cycles config pattern ~sub_rows ~sub_cols
  in
  {
    Stats.iterations;
    comm_cycles = 0;
    compute_cycles;
    frontend_s = float_of_int passes *. Passes.frontend_pass_overhead_s config;
    useful_flops_per_iteration =
      Pattern.useful_flops_per_point pattern
      * (sub_rows * sub_cols * Config.node_count config);
    madds_issued = 0;
    strip_widths = [];
    corners_skipped = false;
    nodes = Config.node_count config;
    clock_hz = config.Config.clock_hz;
  }
