open Ccc_stencil
module Exec = Ccc_runtime.Exec

let menu () =
  [
    ("cross5", Pattern.cross5 ());
    ("cross9", Pattern.cross9 ());
    ("square9", Pattern.square9 ());
  ]

(* Shape equality: same offsets and no bias; coefficients are routine
   arguments and do not matter. *)
let same_shape a b =
  Pattern.bias a = None
  && Pattern.bias b = None
  && List.length (Pattern.offsets a) = List.length (Pattern.offsets b)
  && List.for_all2 Offset.equal (Pattern.offsets a) (Pattern.offsets b)

let supports pattern =
  List.exists (fun (_, p) -> same_shape pattern p) (menu ())

type outcome =
  | Library of Ccc_runtime.Stats.t
  | Fallback of Ccc_runtime.Stats.t

let estimate ?(iterations = 1) ~sub_rows ~sub_cols config pattern =
  if supports pattern then
    match Ccc_compiler.Compile.compile ~widths:[ 4; 2; 1 ] config pattern with
    | Ok compiled ->
        Library
          (Exec.estimate ~primitive:Ccc_runtime.Halo.Legacy ~iterations
             ~sub_rows ~sub_cols config compiled)
    | Error _ ->
        Fallback (Naive.estimate ~iterations ~sub_rows ~sub_cols config pattern)
  else
    Fallback (Naive.estimate ~iterations ~sub_rows ~sub_cols config pattern)
