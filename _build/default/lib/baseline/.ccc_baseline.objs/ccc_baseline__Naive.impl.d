lib/baseline/naive.ml: Ccc_cm2 Ccc_runtime Ccc_stencil Coeff List Offset Pattern Tap
