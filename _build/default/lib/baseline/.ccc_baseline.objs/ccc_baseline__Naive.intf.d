lib/baseline/naive.mli: Ccc_cm2 Ccc_runtime Ccc_stencil
