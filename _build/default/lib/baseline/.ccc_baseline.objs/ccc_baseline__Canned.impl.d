lib/baseline/canned.ml: Ccc_compiler Ccc_runtime Ccc_stencil List Naive Offset Pattern
