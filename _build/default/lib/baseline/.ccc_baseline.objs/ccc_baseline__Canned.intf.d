lib/baseline/canned.mli: Ccc_cm2 Ccc_runtime Ccc_stencil
