lib/baseline/fieldwise.ml: Ccc_cm2 Ccc_runtime Ccc_stencil Coeff List Offset Pattern Tap
