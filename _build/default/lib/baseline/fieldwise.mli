(** The oldest code path: fieldwise (processorwise) storage, the
    format the slicewise release replaced (section 3).

    With a 32-bit word stored bit-serially in one processor's memory,
    every batch of 32 words must pass through the interface chip's
    32x32 bit transpose before the floating-point chip can touch it,
    and the batch size is locked to 32 — too coarse to keep several
    batches in the register file.  This module prices the same
    elementwise passes as {!Naive} under those constraints, completing
    the lineage the paper sketches: fieldwise general code, slicewise
    general code (~4 GF), the 1989 canned routines (5.6 GF), and the
    convolution compiler (>10 GF). *)

val transpose_cycles_per_batch : int
(** Interface-chip cycles to transpose one batch of 32 words. *)

val elementwise_cycles :
  Ccc_cm2.Config.t -> elements:int -> reads:int -> int
(** One arithmetic pass over [elements] per node in fieldwise format:
    each operand batch is transposed in, the result batch transposed
    out, on top of the slicewise pass cost. *)

val estimate :
  ?iterations:int ->
  sub_rows:int ->
  sub_cols:int ->
  Ccc_cm2.Config.t ->
  Ccc_stencil.Pattern.t ->
  Ccc_runtime.Stats.t
(** The whole-statement estimate, mirroring {!Naive.estimate}. *)
