open Ccc_stencil
module Config = Ccc_cm2.Config
module Grid = Ccc_runtime.Grid
module Reference = Ccc_runtime.Reference
module Stats = Ccc_runtime.Stats
module Passes = Ccc_runtime.Passes

type result = { output : Grid.t; stats : Stats.t }

(* Pass structure of the general path for one assignment:
   per tap: |drow| is one shift statement, |dcol| another (CSHIFT
   composes per dimension), a multiply pass (unless the coefficient is
   the implicit 1.0), and an add pass into the accumulating temporary
   (except the first term, which is a plain move the compiler folds
   into the multiply).  The bias term is one add pass. *)
let statement_cycles (config : Config.t) pattern ~sub_rows ~sub_cols =
  let elements = sub_rows * sub_cols in
  let cycles = ref 0 and passes = ref 0 in
  let add_pass c =
    cycles := !cycles + c;
    incr passes
  in
  List.iteri
    (fun i tap ->
      let { Offset.drow; dcol } = tap.Tap.offset in
      if drow <> 0 then
        add_pass
          (Passes.whole_array_shift_cycles config ~elements ~amount:drow
             ~sub_rows ~sub_cols ~dim:1);
      if dcol <> 0 then
        add_pass
          (Passes.whole_array_shift_cycles config ~elements ~amount:dcol
             ~sub_rows ~sub_cols ~dim:2);
      (match tap.Tap.coeff with
      | Coeff.One -> ()
      | Coeff.Array _ | Coeff.Scalar _ ->
          add_pass (Passes.elementwise_cycles config ~elements ~reads:2));
      if i > 0 then
        add_pass (Passes.elementwise_cycles config ~elements ~reads:2))
    (Pattern.taps pattern);
  (match Pattern.bias pattern with
  | Some _ -> add_pass (Passes.elementwise_cycles config ~elements ~reads:2)
  | None -> ());
  (!cycles, !passes)

let make_stats ?(iterations = 1) ~sub_rows ~sub_cols config pattern =
  let compute_cycles, passes =
    statement_cycles config pattern ~sub_rows ~sub_cols
  in
  {
    Stats.iterations;
    comm_cycles = 0;
    (* shifts are counted inside the passes: the whole array moves *)
    compute_cycles;
    frontend_s =
      float_of_int passes *. Passes.frontend_pass_overhead_s config;
    useful_flops_per_iteration =
      Pattern.useful_flops_per_point pattern
      * (sub_rows * sub_cols * Config.node_count config);
    madds_issued = 0;
    strip_widths = [];
    corners_skipped = false;
    nodes = Config.node_count config;
    clock_hz = config.Config.clock_hz;
  }

let run ?(iterations = 1) config pattern env =
  let source = Reference.lookup env (Pattern.source_var pattern) in
  let nodes_r = config.Config.node_rows and nodes_c = config.Config.node_cols in
  let rows = Grid.rows source and cols = Grid.cols source in
  if rows mod nodes_r <> 0 || cols mod nodes_c <> 0 then
    invalid_arg "Naive.run: array does not divide over the node grid";
  let output = Reference.apply pattern env in
  let stats =
    make_stats ~iterations ~sub_rows:(rows / nodes_r) ~sub_cols:(cols / nodes_c)
      config pattern
  in
  { output; stats }

let estimate ?(iterations = 1) ~sub_rows ~sub_cols config pattern =
  make_stats ~iterations ~sub_rows ~sub_cols config pattern
