(** The 1989 hand-coded library-routine path: the 5.6-gigaflop
    Gordon Bell Prize configuration this work started from (section 1).

    "Each library routine performs a fixed pattern of computation":
    the user chooses from a preselected menu of stencil shapes instead
    of writing Fortran.  We model those routines with the same
    microcode engine but under the 1989 constraints:

    - a fixed menu of shapes ({!menu}); anything else falls back to
      the general code path ({!Naive});
    - multistencil widths up to 4 only (the width-8 construction and
      its register discipline are part of the 1990 work);
    - the pre-existing processor-level grid communication (the
      node-level four-neighbor primitive is also 1990 work). *)

val menu : unit -> (string * Ccc_stencil.Pattern.t) list
(** The preselected shapes: cross5, cross9, square9. *)

val supports : Ccc_stencil.Pattern.t -> bool
(** Is the pattern's shape (offsets, bias-freeness) on the menu?
    Coefficient arrays may differ — the routines take them as
    arguments. *)

type outcome =
  | Library of Ccc_runtime.Stats.t  (** served by a canned routine *)
  | Fallback of Ccc_runtime.Stats.t  (** shape off menu: general path *)

val estimate :
  ?iterations:int ->
  sub_rows:int ->
  sub_cols:int ->
  Ccc_cm2.Config.t ->
  Ccc_stencil.Pattern.t ->
  outcome
