type column = { dcol : int; occupied : int list; span : int }

type t = {
  pattern : Pattern.t;
  width : int;
  positions : Offset.t list;
  columns : column list;
}

module Offset_set = Set.Make (Offset)

let make pattern ~width =
  if width < 1 then invalid_arg "Multistencil.make: width < 1";
  let translated =
    List.concat_map
      (fun off ->
        List.init width (fun j -> Offset.add off (Offset.make ~drow:0 ~dcol:j)))
      (Pattern.offsets pattern)
  in
  let set = Offset_set.of_list translated in
  let positions = Offset_set.elements set in
  let module Int_map = Map.Make (Int) in
  let by_col =
    List.fold_left
      (fun acc (off : Offset.t) ->
        let rows = Option.value ~default:[] (Int_map.find_opt off.dcol acc) in
        Int_map.add off.dcol (off.drow :: rows) acc)
      Int_map.empty positions
  in
  let columns =
    Int_map.bindings by_col
    |> List.map (fun (dcol, rows) ->
           let occupied = List.sort Int.compare rows in
           let span =
             match (occupied, List.rev occupied) with
             | low :: _, high :: _ -> high - low + 1
             | [], _ | _, [] -> assert false
           in
           { dcol; occupied; span })
  in
  { pattern; width; positions; columns }

let pattern t = t.pattern
let width t = t.width
let positions t = t.positions
let position_count t = List.length t.positions
let columns t = t.columns
let column_count t = List.length t.columns

let max_span t =
  List.fold_left (fun acc c -> max acc c.span) 1 t.columns

let row_range t =
  match t.positions with
  | [] -> assert false
  | first :: _ ->
      List.fold_left
        (fun (lo, hi) (off : Offset.t) -> (min lo off.drow, max hi off.drow))
        (first.Offset.drow, first.Offset.drow)
        t.positions

let tagged_position t ~occurrence =
  if occurrence < 0 || occurrence >= t.width then
    invalid_arg "Multistencil.tagged_position: occurrence out of range";
  let offs = Pattern.offsets t.pattern in
  let bottom =
    List.fold_left (fun acc (o : Offset.t) -> max acc o.drow) min_int offs
  in
  let leftmost_in_bottom =
    List.filter (fun (o : Offset.t) -> o.drow = bottom) offs
    |> List.fold_left
         (fun acc (o : Offset.t) -> min acc o.dcol)
         max_int
  in
  Offset.make ~drow:bottom ~dcol:(leftmost_in_bottom + occurrence)

let occurrence_taps t ~occurrence =
  if occurrence < 0 || occurrence >= t.width then
    invalid_arg "Multistencil.occurrence_taps: occurrence out of range";
  List.map
    (fun tap ->
      ( Offset.add tap.Tap.offset (Offset.make ~drow:0 ~dcol:occurrence),
        tap ))
    (Pattern.taps t.pattern)

let pinned_registers t =
  match Pattern.bias t.pattern with Some _ -> 2 | None -> 1

let register_demand t =
  List.fold_left (fun acc c -> acc + c.span) (pinned_registers t) t.columns
