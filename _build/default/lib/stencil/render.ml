let grid_of_positions ~taps ~result ~tagged =
  let all = result :: (taps @ tagged) in
  let min_row =
    List.fold_left (fun a (o : Offset.t) -> min a o.drow) max_int all
  in
  let max_row =
    List.fold_left (fun a (o : Offset.t) -> max a o.drow) min_int all
  in
  let min_col =
    List.fold_left (fun a (o : Offset.t) -> min a o.dcol) max_int all
  in
  let max_col =
    List.fold_left (fun a (o : Offset.t) -> max a o.dcol) min_int all
  in
  let buf = Buffer.create 256 in
  for drow = min_row to max_row do
    for dcol = min_col to max_col do
      let here = Offset.make ~drow ~dcol in
      let is_tap = List.exists (Offset.equal here) taps in
      let is_tagged = List.exists (Offset.equal here) tagged in
      let is_result = Offset.equal here result in
      let cell =
        if is_tagged then 'A'
        else if is_result && is_tap then '@'
        else if is_result then 'o'
        else if is_tap then '#'
        else '.'
      in
      Buffer.add_char buf cell;
      if dcol < max_col then Buffer.add_char buf ' '
    done;
    Buffer.add_char buf '\n'
  done;
  Buffer.contents buf

let pattern p =
  grid_of_positions ~taps:(Pattern.offsets p) ~result:Offset.zero ~tagged:[]

let multistencil m =
  let tagged =
    List.init (Multistencil.width m) (fun j ->
        Multistencil.tagged_position m ~occurrence:j)
  in
  let taps =
    List.filter
      (fun p -> not (List.exists (Offset.equal p) tagged))
      (Multistencil.positions m)
  in
  grid_of_positions ~taps ~result:Offset.zero ~tagged

let borders p =
  let b = Pattern.borders p in
  Printf.sprintf "North=%d South=%d East=%d West=%d" b.Pattern.north
    b.Pattern.south b.Pattern.east b.Pattern.west

let column_profile m =
  Multistencil.columns m
  |> List.map (fun c -> string_of_int (List.length c.Multistencil.occupied))
  |> String.concat " "

let halo_sections p =
  let b = Pattern.max_border p in
  let corners = Pattern.needs_corners p in
  if b = 0 then "no border: nothing to exchange\n"
  else begin
    let buf = Buffer.create 256 in
    let line cells = Buffer.add_string buf (String.concat " | " cells ^ "\n") in
    let corner label = if corners then label else "  .  " in
    let rule () = Buffer.add_string buf (String.make 37 '-' ^ "\n") in
    line [ corner "NW   "; "  N -> up      "; corner "NE" ];
    rule ();
    line [ "W->l "; "  center stays "; "E->r" ];
    rule ();
    line [ corner "SW   "; "  S -> down    "; corner "SE" ];
    Buffer.add_string buf
      (Printf.sprintf
         "border width %d on all four sides; corner step %s\n" b
         (if corners then "required (two hops via NEWS neighbors)"
          else "skipped"));
    Buffer.contents buf
  end
