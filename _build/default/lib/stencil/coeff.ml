type t = Array of string | Scalar of float | One

let equal a b =
  match (a, b) with
  | Array x, Array y -> String.equal x y
  | Scalar x, Scalar y -> Float.equal x y
  | One, One -> true
  | (Array _ | Scalar _ | One), _ -> false

let pp ppf = function
  | Array name -> Format.pp_print_string ppf name
  | Scalar v -> Format.fprintf ppf "%g" v
  | One -> Format.pp_print_string ppf "1.0"

let array_name = function Array name -> Some name | Scalar _ | One -> None
