type source_tap = { source : int; tap : Tap.t }

type t = {
  sources : string list;
  taps : source_tap list;  (** sorted by (source, offset), unique *)
  bias : Coeff.t option;
  boundary : Boundary.t;
  result_var : string;
}

let compare_tap a b =
  match Int.compare a.source b.source with
  | 0 -> Tap.compare a.tap b.tap
  | c -> c

let create ?bias ?(boundary = Boundary.Circular) ?(result = "R") ~sources taps =
  if taps = [] then invalid_arg "Multi.create: empty tap list";
  if sources = [] then invalid_arg "Multi.create: no sources";
  let n = List.length sources in
  List.iter
    (fun { source; _ } ->
      if source < 0 || source >= n then
        invalid_arg "Multi.create: tap references an unknown source")
    taps;
  let sorted = List.sort compare_tap taps in
  let rec check_unique = function
    | a :: (b :: _ as rest) ->
        if a.source = b.source && Offset.equal a.tap.Tap.offset b.tap.Tap.offset
        then
          invalid_arg
            (Printf.sprintf "Multi.create: duplicate tap at %s of source %d"
               (Offset.to_string a.tap.Tap.offset)
               a.source);
        check_unique rest
    | [ _ ] | [] -> ()
  in
  check_unique sorted;
  List.iteri
    (fun i _ ->
      if not (List.exists (fun t -> t.source = i) sorted) then
        invalid_arg (Printf.sprintf "Multi.create: source %d has no tap" i))
    sources;
  { sources; taps = sorted; bias; boundary; result_var = result }

let of_pattern p =
  create ?bias:(Pattern.bias p) ~boundary:(Pattern.boundary p)
    ~result:(Pattern.result_var p)
    ~sources:[ Pattern.source_var p ]
    (List.map (fun tap -> { source = 0; tap }) (Pattern.taps p))

let sources t = t.sources
let source_count t = List.length t.sources
let taps t = t.taps

let source_taps t i =
  List.filter_map
    (fun st -> if st.source = i then Some st.tap else None)
    t.taps

let bias t = t.bias
let boundary t = t.boundary
let result_var t = t.result_var
let tap_count t = List.length t.taps

let useful_flops_per_point t =
  let terms = tap_count t + (match t.bias with Some _ -> 1 | None -> 0) in
  tap_count t + (terms - 1)

let source_pattern t i =
  Pattern.create ?bias:None ~boundary:t.boundary
    ~source:(List.nth t.sources i) ~result:t.result_var (source_taps t i)

let to_pattern t =
  match t.sources with
  | [ _ ] ->
      Some
        (Pattern.create ?bias:t.bias ~boundary:t.boundary
           ~source:(List.hd t.sources) ~result:t.result_var
           (List.map (fun st -> st.tap) t.taps))
  | _ -> None

let max_border t i = Pattern.max_border (source_pattern t i)
let needs_corners t i = Pattern.needs_corners (source_pattern t i)

(* The tagged accumulators must come from the source holding the
   bottom-most tap row overall: within that source nothing below the
   tag is ever needed again, and other sources live in disjoint
   registers. *)
let primary_source t =
  let best = ref None in
  List.iter
    (fun st ->
      let { Offset.drow; dcol } = st.tap.Tap.offset in
      match !best with
      | None -> best := Some (drow, dcol, st.source)
      | Some (brow, bcol, _) ->
          if drow > brow || (drow = brow && dcol < bcol) then
            best := Some (drow, dcol, st.source))
    t.taps;
  match !best with Some (_, _, src) -> src | None -> assert false

let referenced_arrays t =
  t.sources
  @ List.filter_map (fun st -> Coeff.array_name st.tap.Tap.coeff) t.taps
  @ (match t.bias with
    | Some c -> Option.to_list (Coeff.array_name c)
    | None -> [])

let equal a b =
  List.length a.taps = List.length b.taps
  && List.equal String.equal a.sources b.sources
  && List.for_all2
       (fun x y ->
         x.source = y.source
         && Offset.equal x.tap.Tap.offset y.tap.Tap.offset
         && Coeff.equal x.tap.Tap.coeff y.tap.Tap.coeff)
       a.taps b.taps
  && Option.equal Coeff.equal a.bias b.bias
  && Boundary.equal a.boundary b.boundary
  && String.equal a.result_var b.result_var

let pp ppf t =
  Format.fprintf ppf "@[<v>%s = " t.result_var;
  List.iteri
    (fun i st ->
      if i > 0 then Format.fprintf ppf "@ + ";
      Format.fprintf ppf "%a*%s%a" Coeff.pp st.tap.Tap.coeff
        (List.nth t.sources st.source)
        Offset.pp st.tap.Tap.offset)
    t.taps;
  (match t.bias with
  | Some c -> Format.fprintf ppf "@ + %a" Coeff.pp c
  | None -> ());
  Format.fprintf ppf "  [%a]@]" Boundary.pp t.boundary
