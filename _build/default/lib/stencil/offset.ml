type t = { drow : int; dcol : int }

let zero = { drow = 0; dcol = 0 }
let make ~drow ~dcol = { drow; dcol }

let shift ~dim ~amount =
  match dim with
  | 1 -> { drow = amount; dcol = 0 }
  | 2 -> { drow = 0; dcol = amount }
  | _ -> invalid_arg (Printf.sprintf "Offset.shift: DIM=%d (expected 1 or 2)" dim)

let add a b = { drow = a.drow + b.drow; dcol = a.dcol + b.dcol }
let neg a = { drow = -a.drow; dcol = -a.dcol }

let compare a b =
  match Int.compare a.drow b.drow with
  | 0 -> Int.compare a.dcol b.dcol
  | c -> c

let equal a b = compare a b = 0
let pp ppf t = Format.fprintf ppf "(%+d,%+d)" t.drow t.dcol
let to_string t = Format.asprintf "%a" pp t
