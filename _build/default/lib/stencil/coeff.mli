(** Coefficients of stencil terms.

    In the Fortran form every coefficient is a whole-array reference
    ([C1 * CSHIFT(X, ...)]); a term with no coefficient multiplies by
    an implicit 1.0, which costs nothing at run time because the
    Weitek's multiply-add needs a memory operand anyway.  The Lisp
    [defstencil] front end (and our examples) also allow literal
    scalars, which the run time broadcasts. *)

type t =
  | Array of string  (** a coefficient array, e.g. [C1] *)
  | Scalar of float  (** a literal, broadcast over the array shape *)
  | One  (** implicit coefficient of a bare [s(X)] term *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

val array_name : t -> string option
(** The coefficient array's name, if it is one. *)
