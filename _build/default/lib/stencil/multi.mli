(** Multi-source stencils: the paper's stated future work.

    The Gordon Bell code needed a tenth term [C10 * POLD] referencing a
    {e different} array from the nine shifted [P] terms, and had to add
    it in a separate pass because "the current implementation ...
    requires that all shiftings within a given assignment statement
    must shift the same variable name"; the authors note that "future
    versions of the compiler should be able to handle all ten terms as
    one stencil pattern" (section 7).  This module is that
    generalization: a pattern whose taps draw from several source
    arrays.

    Everything in the compilation strategy survives the generalization:
    each source contributes its own multistencil columns (hence its own
    ring buffers), the register file is shared, the leading edge loads
    one element per column {e per source} per line, and the accumulator
    recycling discipline holds because the tagged position is taken
    from the source owning the globally bottom-most tap row.  The
    run-time library performs one halo exchange per source, each padded
    to that source's own border width. *)

type source_tap = { source : int; tap : Tap.t }
(** A tap of source number [source] (an index into {!sources}). *)

type t

val create :
  ?bias:Coeff.t ->
  ?boundary:Boundary.t ->
  ?result:string ->
  sources:string list ->
  source_tap list ->
  t
(** [sources] are the distinct source array names, in order.  Raises
    [Invalid_argument] when a tap references a source out of range,
    when some source has no tap, on duplicate (source, offset) pairs,
    or on an empty tap list. *)

val of_pattern : Pattern.t -> t
(** View an ordinary single-source pattern as the one-source case. *)

val to_pattern : t -> Pattern.t option
(** The inverse, when there is exactly one source. *)

val sources : t -> string list
val source_count : t -> int
val taps : t -> source_tap list
val source_taps : t -> int -> Tap.t list
(** Taps of one source (never empty). *)

val bias : t -> Coeff.t option
val boundary : t -> Boundary.t
val result_var : t -> string
val tap_count : t -> int

val useful_flops_per_point : t -> int
(** Same accounting as {!Pattern.useful_flops_per_point}: one multiply
    per tap, terms-minus-one adds. *)

val source_pattern : t -> int -> Pattern.t
(** Source [i]'s taps as a single-source pattern (for multistencil
    construction); its border widths are that source's halo needs. *)

val max_border : t -> int -> int
(** Halo padding for source [i]. *)

val needs_corners : t -> int -> bool

val primary_source : t -> int
(** The source owning the globally bottom-most tap row (leftmost tap
    of that row breaks ties): the tagged accumulator positions come
    from this source, preserving the recycling argument of section
    5.3. *)

val referenced_arrays : t -> string list
(** Sources, tap coefficient arrays, and the bias array. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
