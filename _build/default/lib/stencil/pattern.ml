type t = {
  taps : Tap.t list;  (** sorted by offset, unique offsets *)
  bias : Coeff.t option;
  boundary : Boundary.t;
  source_var : string;
  result_var : string;
}

type borders = { north : int; south : int; east : int; west : int }

let create ?bias ?(boundary = Boundary.Circular) ?(source = "X")
    ?(result = "R") taps =
  if taps = [] then invalid_arg "Pattern.create: empty tap list";
  let sorted = List.sort Tap.compare taps in
  let rec check_unique = function
    | a :: (b :: _ as rest) ->
        if Offset.equal a.Tap.offset b.Tap.offset then
          invalid_arg
            (Printf.sprintf "Pattern.create: duplicate tap at %s"
               (Offset.to_string a.Tap.offset));
        check_unique rest
    | [ _ ] | [] -> ()
  in
  check_unique sorted;
  { taps = sorted; bias; boundary; source_var = source; result_var = result }

let taps t = t.taps
let bias t = t.bias
let boundary t = t.boundary
let source_var t = t.source_var
let result_var t = t.result_var
let tap_count t = List.length t.taps

let find_tap t offset =
  List.find_opt (fun tap -> Offset.equal tap.Tap.offset offset) t.taps

let offsets t = List.map (fun tap -> tap.Tap.offset) t.taps

let borders t =
  let fold f init = List.fold_left f init t.taps in
  let north = fold (fun acc tap -> max acc (-tap.Tap.offset.Offset.drow)) 0 in
  let south = fold (fun acc tap -> max acc tap.Tap.offset.Offset.drow) 0 in
  let west = fold (fun acc tap -> max acc (-tap.Tap.offset.Offset.dcol)) 0 in
  let east = fold (fun acc tap -> max acc tap.Tap.offset.Offset.dcol) 0 in
  { north; south; east; west }

let max_border t =
  let b = borders t in
  max (max b.north b.south) (max b.east b.west)

let needs_corners t =
  List.exists
    (fun tap ->
      tap.Tap.offset.Offset.drow <> 0 && tap.Tap.offset.Offset.dcol <> 0)
    t.taps

(* Section 7's accounting: each tap is one multiply, and the terms are
   combined with (number of terms - 1) adds.  The multiply that pairs a
   product with the pinned zero register is not counted (it "merely
   adds a product to zero" -- the add is discarded, the multiply is the
   tap's own).  A bias term contributes its combining add only. *)
let useful_flops_per_point t =
  let terms = tap_count t + (match t.bias with Some _ -> 1 | None -> 0) in
  tap_count t + (terms - 1)

let equal a b =
  List.length a.taps = List.length b.taps
  && List.for_all2
       (fun x y ->
         Offset.equal x.Tap.offset y.Tap.offset
         && Coeff.equal x.Tap.coeff y.Tap.coeff)
       a.taps b.taps
  && Option.equal Coeff.equal a.bias b.bias
  && Boundary.equal a.boundary b.boundary
  && String.equal a.source_var b.source_var
  && String.equal a.result_var b.result_var

let pp ppf t =
  Format.fprintf ppf "@[<v>%s = " t.result_var;
  List.iteri
    (fun i tap ->
      if i > 0 then Format.fprintf ppf "@ + ";
      Format.fprintf ppf "%a*%s%a" Coeff.pp tap.Tap.coeff t.source_var
        Offset.pp tap.Tap.offset)
    t.taps;
  (match t.bias with
  | Some c -> Format.fprintf ppf "@ + %a" Coeff.pp c
  | None -> ());
  Format.fprintf ppf "  [%a]@]" Boundary.pp t.boundary

let to_fortran t =
  let intrinsic =
    match t.boundary with
    | Boundary.Circular -> "CSHIFT"
    | Boundary.End_off _ -> "EOSHIFT"
  in
  let boundary_arg =
    match t.boundary with
    | Boundary.Circular | Boundary.End_off 0.0 -> ""
    | Boundary.End_off fill -> Printf.sprintf ", BOUNDARY=%g" fill
  in
  let shifted (off : Offset.t) =
    let base = t.source_var in
    let base =
      if off.drow = 0 then base
      else Printf.sprintf "%s(%s, 1, %+d%s)" intrinsic base off.drow boundary_arg
    in
    if off.dcol = 0 then base
    else Printf.sprintf "%s(%s, 2, %+d%s)" intrinsic base off.dcol boundary_arg
  in
  let coeff_text = function
    | Coeff.Array name -> Some name
    | Coeff.Scalar v -> Some (Printf.sprintf "%.17g" v)
    | Coeff.One -> None
  in
  let term tap =
    match coeff_text tap.Tap.coeff with
    | Some c -> Printf.sprintf "%s * %s" c (shifted tap.Tap.offset)
    | None -> shifted tap.Tap.offset
  in
  let terms =
    List.map term t.taps
    @
    match t.bias with
    | Some c -> [ Option.value ~default:"1.0" (coeff_text c) ]
    | None -> []
  in
  Printf.sprintf "%s = %s" t.result_var (String.concat " &\n  + " terms)

(* The gallery.  Coefficient arrays are named C1..Cn in row-major tap
   order, matching the Fortran examples in section 2 of the paper. *)
let of_offsets offs =
  let sorted = List.sort Offset.compare offs in
  create
    (List.mapi
       (fun i off -> Tap.make off (Coeff.Array (Printf.sprintf "C%d" (i + 1))))
       sorted)

let cross5 () =
  of_offsets
    [
      Offset.make ~drow:(-1) ~dcol:0;
      Offset.make ~drow:0 ~dcol:(-1);
      Offset.zero;
      Offset.make ~drow:0 ~dcol:1;
      Offset.make ~drow:1 ~dcol:0;
    ]

let square9 () =
  let offs = ref [] in
  for drow = -1 to 1 do
    for dcol = -1 to 1 do
      offs := Offset.make ~drow ~dcol :: !offs
    done
  done;
  of_offsets !offs

let cross9 () =
  of_offsets
    [
      Offset.make ~drow:(-2) ~dcol:0;
      Offset.make ~drow:(-1) ~dcol:0;
      Offset.make ~drow:0 ~dcol:(-2);
      Offset.make ~drow:0 ~dcol:(-1);
      Offset.zero;
      Offset.make ~drow:0 ~dcol:1;
      Offset.make ~drow:0 ~dcol:2;
      Offset.make ~drow:1 ~dcol:0;
      Offset.make ~drow:2 ~dcol:0;
    ]

let diamond13 () =
  let offs = ref [] in
  for drow = -2 to 2 do
    for dcol = -2 to 2 do
      if abs drow + abs dcol <= 2 then offs := Offset.make ~drow ~dcol :: !offs
    done
  done;
  of_offsets !offs

let asymmetric5 () =
  of_offsets
    [
      Offset.zero;
      Offset.make ~drow:0 ~dcol:1;
      Offset.make ~drow:1 ~dcol:(-1);
      Offset.make ~drow:1 ~dcol:0;
      Offset.make ~drow:1 ~dcol:2;
    ]

let gallery () =
  [
    ("cross5", cross5 ());
    ("square9", square9 ());
    ("cross9", cross9 ());
    ("diamond13", diamond13 ());
    ("asymmetric5", asymmetric5 ());
  ]
