(** Multistencils: the composite pattern of a stencil replicated [w]
    times with centers side by side (section 5.3).

    The multistencil of width [w] is the union of the stencil's offsets
    translated by [0 .. w-1] along the column axis.  Its positions are
    exactly the data elements that must reside in registers to compute
    [w] adjacent results at once, which is the saving in memory
    bandwidth the paper builds on (26 loads instead of 40 for the
    5-point cross at width 8).

    Each column of the multistencil becomes one ring buffer in the
    register allocator (section 5.4).  A column's {e span} — bottom row
    minus top row plus one — is its natural ring size: the sweep loads
    one leading-edge element per column per line, so an element passes
    through depths [0 .. span-1] before it is dead.  For the patterns
    in the paper every column is contiguous, making span equal to the
    occupied count (the paper's "column height"); for a column with
    holes the ring still needs span slots, which is one of the "more
    clever strategies" cases the paper leaves open. *)

type column = {
  dcol : int;  (** column offset within the multistencil *)
  occupied : int list;  (** row offsets present, ascending *)
  span : int;  (** natural ring-buffer size *)
}

type t

val make : Pattern.t -> width:int -> t
(** Raises [Invalid_argument] if [width < 1]. *)

val pattern : t -> Pattern.t
val width : t -> int

val positions : t -> Offset.t list
(** All distinct positions, sorted row-major.  [List.length] of this is
    the paper's register count for data elements (26 for cross5 at
    width 8, 28 for diamond13 at width 4). *)

val position_count : t -> int

val columns : t -> column list
(** Ascending by [dcol]. *)

val column_count : t -> int
val max_span : t -> int
val row_range : t -> int * int
(** Minimum and maximum row offset over all positions. *)

val tagged_position : t -> occurrence:int -> Offset.t
(** The tagged position of stencil occurrence [j] (0-based): the
    leftmost position of the stencil's bottommost row, translated by
    [j] columns.  Its register becomes the accumulator for result [j]
    (section 5.3): because it is leftmost in the bottom row, no result
    to the right — and no later line — can need that data element.
    Raises [Invalid_argument] unless [0 <= occurrence < width]. *)

val occurrence_taps : t -> occurrence:int -> (Offset.t * Tap.t) list
(** The taps of occurrence [j] as (multistencil position, original tap)
    pairs: position = tap offset translated by [j] columns. *)

val register_demand : t -> int
(** Registers needed with natural ring sizes: sum of column spans, plus
    the pinned zero register, plus a pinned 1.0 register when the
    pattern has a bias term. *)

val pinned_registers : t -> int
(** 1 (the zero register) or 2 (zero and one). *)
