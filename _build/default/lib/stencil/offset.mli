(** A two-dimensional grid displacement.

    Offsets follow Fortran [CSHIFT] semantics: for
    [R = C * CSHIFT(X, DIM=d, SHIFT=s)], every result position reads
    the source element displaced by [s] along dimension [d], so the tap
    offset equals the shift amount.  Dimension 1 is rows ([drow]),
    dimension 2 is columns ([dcol]); negative [drow] therefore reaches
    North (toward smaller row indices), matching the paper's border
    pictures. *)

type t = { drow : int; dcol : int }

val zero : t
val make : drow:int -> dcol:int -> t

val shift : dim:int -> amount:int -> t
(** [shift ~dim ~amount] is the displacement of
    [CSHIFT(_, DIM=dim, SHIFT=amount)].  Raises [Invalid_argument] if
    [dim] is not 1 or 2 (the compiler handles two-dimensional arrays,
    like the run-time library of section 5). *)

val add : t -> t -> t
(** Composition of two shifts: [CSHIFT(CSHIFT(X, ...), ...)] taps the
    element displaced by the sum. *)

val neg : t -> t
val compare : t -> t -> int
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string
