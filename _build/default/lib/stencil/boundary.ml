type t = Circular | End_off of float

let equal a b =
  match (a, b) with
  | Circular, Circular -> true
  | End_off x, End_off y -> Float.equal x y
  | (Circular | End_off _), _ -> false

let pp ppf = function
  | Circular -> Format.pp_print_string ppf "circular (CSHIFT)"
  | End_off fill -> Format.fprintf ppf "end-off (EOSHIFT, fill %g)" fill
