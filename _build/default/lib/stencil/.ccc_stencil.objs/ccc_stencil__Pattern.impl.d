lib/stencil/pattern.ml: Boundary Coeff Format List Offset Option Printf String Tap
