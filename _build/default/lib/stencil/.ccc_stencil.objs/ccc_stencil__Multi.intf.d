lib/stencil/multi.mli: Boundary Coeff Format Pattern Tap
