lib/stencil/multi.ml: Boundary Coeff Format Int List Offset Option Pattern Printf String Tap
