lib/stencil/render.ml: Buffer List Multistencil Offset Pattern Printf String
