lib/stencil/multistencil.ml: Int List Map Offset Option Pattern Set Tap
