lib/stencil/tap.mli: Coeff Format Offset
