lib/stencil/pattern.mli: Boundary Coeff Format Offset Tap
