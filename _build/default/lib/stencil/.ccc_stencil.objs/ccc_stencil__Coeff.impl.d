lib/stencil/coeff.ml: Float Format String
