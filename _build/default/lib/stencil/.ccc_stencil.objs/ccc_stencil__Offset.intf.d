lib/stencil/offset.mli: Format
