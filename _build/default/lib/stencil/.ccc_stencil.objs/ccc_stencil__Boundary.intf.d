lib/stencil/boundary.mli: Format
