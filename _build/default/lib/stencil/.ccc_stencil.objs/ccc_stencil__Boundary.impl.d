lib/stencil/boundary.ml: Float Format
