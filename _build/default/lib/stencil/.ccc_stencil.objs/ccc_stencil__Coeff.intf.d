lib/stencil/coeff.mli: Format
