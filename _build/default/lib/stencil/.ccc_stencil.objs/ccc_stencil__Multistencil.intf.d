lib/stencil/multistencil.mli: Offset Pattern Tap
