lib/stencil/offset.ml: Format Int Printf
