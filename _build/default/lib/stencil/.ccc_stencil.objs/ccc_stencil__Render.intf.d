lib/stencil/render.mli: Multistencil Pattern
