lib/stencil/tap.ml: Coeff Format Offset
