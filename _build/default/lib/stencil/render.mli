(** ASCII rendering of stencils and multistencils.

    Reproduces the paper's pictorial notation: a bullet marks the
    result position, shaded squares mark the contributing positions of
    the source array.  We draw shaded squares as [#], the result
    position as [o] (or [@] when the result position is itself a tap),
    and empty grid cells as [.].  Used by the figure-regeneration bench
    (FIG-ST, FIG-RB in DESIGN.md) and handy in diagnostics. *)

val pattern : Pattern.t -> string
(** Multi-line picture of a stencil pattern. *)

val multistencil : Multistencil.t -> string
(** Multi-line picture of a multistencil; the [width] tagged positions
    are drawn as [A] (accumulator slots). *)

val borders : Pattern.t -> string
(** One-line summary of the four border widths, in the paper's
    North/South/East/West vocabulary. *)

val column_profile : Multistencil.t -> string
(** The per-column heights line, e.g. "1 3 5 5 5 5 3 1" for the
    13-point diamond at width 4. *)

val halo_sections : Pattern.t -> string
(** The nine-section exchange picture of section 5.1: a subgrid's
    corner sections go to two neighbors (and ultimately a diagonal
    one), edge sections to one, and the center stays home.  Corners
    are drawn only when the pattern needs the third communication
    step. *)
