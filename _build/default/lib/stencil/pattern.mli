(** A stencil pattern: the IR between the front end and the compiler.

    A pattern is a set of taps (offset, coefficient pairs) with at most
    one tap per offset, an optional additive bias (a bare coefficient
    term [+ C], executed by multiplying [C] against the pinned 1.0
    register, section 5.3), and one boundary semantics.  Border widths
    derive from tap extents exactly as in the paper's pictures: the
    East border width is how far the pattern reaches toward larger
    column indices, and so on. *)

type t

type borders = { north : int; south : int; east : int; west : int }

val create :
  ?bias:Coeff.t ->
  ?boundary:Boundary.t ->
  ?source:string ->
  ?result:string ->
  Tap.t list ->
  t
(** Build a pattern.  [boundary] defaults to {!Boundary.Circular},
    [source]/[result] to ["X"]/["R"].  Raises [Invalid_argument] on an
    empty tap list or duplicate offsets. *)

val taps : t -> Tap.t list
(** Sorted by offset, row-major. *)

val bias : t -> Coeff.t option
val boundary : t -> Boundary.t
val source_var : t -> string
val result_var : t -> string
val tap_count : t -> int
val find_tap : t -> Offset.t -> Tap.t option

val borders : t -> borders
(** Border widths in each direction (all non-negative). *)

val max_border : t -> int
(** The halo padding the run-time library uses on all four sides: the
    largest of the four border widths (section 5.1's simplification). *)

val needs_corners : t -> bool
(** Does any tap have both a nonzero row and column offset?  When not,
    the third (corner) communication step is skipped (section 5.1). *)

val useful_flops_per_point : t -> int
(** The paper's accounting (section 7): one multiply per tap plus the
    adds that combine the terms; a 5-point stencil counts 9 even though
    it executes as 5 multiply-add steps.  A bias term adds one add. *)

val offsets : t -> Offset.t list

val equal : t -> t -> bool
(** Structural equality of taps, bias, boundary and variable names. *)

val pp : Format.formatter -> t -> unit

val to_fortran : t -> string
(** Render the pattern back to the Fortran 90 assignment statement the
    recognizer accepts (with [&] continuations, one term per line).
    [Recognize.statement] of this text yields an equal pattern — the
    round-trip property the test suite checks. *)

(** {1 The pattern gallery}

    The benchmarked patterns of the paper's Table 1 (reconstructed; see
    DESIGN.md section 2) plus the running examples of section 2.  Each
    takes the coefficient-array naming convention [C1 .. Cn] in
    row-major tap order. *)

val cross5 : unit -> t
(** 5-point cross: the paper's first example. *)

val square9 : unit -> t
(** 9-point 3 x 3 box. *)

val cross9 : unit -> t
(** 9-point axis cross of radius 2: the paper's second example. *)

val diamond13 : unit -> t
(** 13-point diamond (|dr| + |dc| <= 2): the paper's register-pressure
    example whose width-4 multistencil needs exactly 28 registers. *)

val asymmetric5 : unit -> t
(** The paper's third example: a stencil that is neither symmetrical
    nor centered. *)

val gallery : unit -> (string * t) list
(** All of the above, keyed by name.

    The Gordon Bell seismic kernel (section 7) is {!cross9} plus a
    tenth term [C10 * POLD] referencing the time step before last; a
    product of two arrays is outside the recognized grammar ("future
    versions of the compiler should be able to handle all ten terms as
    one stencil pattern"), so the run-time library executes it as a
    separate fused pass — see lib/runtime/seismic.ml — and the
    multi-source extension in lib/stencil/multi.ml implements the
    future-work generalization. *)
