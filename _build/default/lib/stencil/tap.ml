type t = { offset : Offset.t; coeff : Coeff.t }

let make offset coeff = { offset; coeff }
let compare a b = Offset.compare a.offset b.offset
let pp ppf t = Format.fprintf ppf "%a@%a" Coeff.pp t.coeff Offset.pp t.offset
