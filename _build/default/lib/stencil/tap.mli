(** One term of a stencil: a coefficient times a shifted source element. *)

type t = { offset : Offset.t; coeff : Coeff.t }

val make : Offset.t -> Coeff.t -> t
val compare : t -> t -> int
(** Ordered by offset; a stencil never has two taps at one offset. *)

val pp : Format.formatter -> t -> unit
