(** Boundary semantics of the shift intrinsics.

    [CSHIFT] is circular: taps that fall off one edge of the global
    array wrap to the opposite edge, which the CM-2 NEWS grid provides
    for free (the paper's pictures show the wraparound explicitly).
    [EOSHIFT] is end-off: elements shifted in from outside the array
    take a fill value, 0.0 by default in Fortran 90 for reals.

    The recognizer requires a single statement to use one kind of shift
    throughout; compositions of circular and end-off shifts do not
    commute and fall outside the stylized pattern the compiler module
    accepts (it reports a diagnostic instead, per section 6). *)

type t =
  | Circular  (** CSHIFT *)
  | End_off of float  (** EOSHIFT with this fill value *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
