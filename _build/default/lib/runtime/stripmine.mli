(** Strip mining (section 5.2).

    The run-time library logically partitions each node's subgrid into
    vertical strips, shaving off at each step the widest strip for
    which the compiler produced a workable multistencil (so a 21-wide
    axis becomes 8 + 8 + 4 + 1).  Each strip is processed as two
    half-strips, each swept from an edge of the subgrid toward the
    center so the microcode handles a boundary condition at only one
    end of the sweep. *)

type strip = { col0 : int; plan : Ccc_microcode.Plan.t }

type halfstrip = {
  strip : strip;
  rows : int array;  (** local row per line, in sweep (upward) order *)
}

val strips : Ccc_compiler.Compile.t -> sub_cols:int -> strip list
(** Cover [0 .. sub_cols-1] left to right with the widest available
    plans. *)

val strips_of_plans :
  Ccc_microcode.Plan.t list -> sub_cols:int -> strip list
(** The same shaving rule over an explicit plan list (descending by
    width); used by the fused multi-source path. *)

val halfstrips : strip -> sub_rows:int -> halfstrip list
(** The two sweeps of one strip: the lower half from the bottom edge up
    to the center, then the upper half up to the top edge. *)

val strip_widths : Ccc_compiler.Compile.t -> sub_cols:int -> int list
(** Just the widths, for reporting (e.g. [8; 8; 4; 1] for 21). *)
