open Ccc_stencil

type env = (string * Grid.t) list

exception Unbound of string
exception Shape_mismatch of string

let lookup env name =
  match List.assoc_opt name env with
  | Some grid -> grid
  | None -> raise (Unbound name)

let coeff_value env coeff r c =
  match coeff with
  | Coeff.Array name -> Grid.get (lookup env name) r c
  | Coeff.Scalar v -> v
  | Coeff.One -> 1.0

let referenced_arrays pattern =
  Pattern.source_var pattern
  :: List.filter_map (fun t -> Coeff.array_name t.Tap.coeff)
       (Pattern.taps pattern)
  @ (match Pattern.bias pattern with
    | Some c -> Option.to_list (Coeff.array_name c)
    | None -> [])

let check_env pattern env =
  let source = lookup env (Pattern.source_var pattern) in
  let rows = Grid.rows source and cols = Grid.cols source in
  List.iter
    (fun name ->
      let g = lookup env name in
      if Grid.rows g <> rows || Grid.cols g <> cols then
        raise
          (Shape_mismatch
             (Printf.sprintf "%s is %dx%d but %s is %dx%d" name (Grid.rows g)
                (Grid.cols g)
                (Pattern.source_var pattern)
                rows cols)))
    (referenced_arrays pattern)

let apply pattern env =
  check_env pattern env;
  let source = lookup env (Pattern.source_var pattern) in
  let read =
    match Pattern.boundary pattern with
    | Boundary.Circular -> Grid.get_circular source
    | Boundary.End_off fill -> Grid.get_endoff source ~fill
  in
  let taps = Pattern.taps pattern in
  Grid.init ~rows:(Grid.rows source) ~cols:(Grid.cols source) (fun r c ->
      let sum =
        List.fold_left
          (fun acc tap ->
            let { Offset.drow; dcol } = tap.Tap.offset in
            acc +. (coeff_value env tap.Tap.coeff r c *. read (r + drow) (c + dcol)))
          0.0 taps
      in
      match Pattern.bias pattern with
      | Some coeff -> sum +. coeff_value env coeff r c
      | None -> sum)
