lib/runtime/dist.ml: Buffer Ccc_cm2 Grid Printf
