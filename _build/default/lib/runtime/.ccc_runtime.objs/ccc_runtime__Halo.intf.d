lib/runtime/halo.mli: Ccc_cm2 Ccc_stencil Dist
