lib/runtime/reference.ml: Boundary Ccc_stencil Coeff Grid List Offset Option Pattern Printf Tap
