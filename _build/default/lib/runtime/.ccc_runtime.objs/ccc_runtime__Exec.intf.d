lib/runtime/exec.mli: Ccc_cm2 Ccc_compiler Ccc_stencil Grid Halo Reference Stats
