lib/runtime/stripmine.mli: Ccc_compiler Ccc_microcode
