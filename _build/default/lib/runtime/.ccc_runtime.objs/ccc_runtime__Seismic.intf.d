lib/runtime/seismic.mli: Ccc_cm2 Ccc_stencil Exec Grid Reference Stats
