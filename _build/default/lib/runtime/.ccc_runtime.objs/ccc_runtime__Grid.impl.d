lib/runtime/grid.ml: Array Float Format Printf
