lib/runtime/halo.ml: Ccc_cm2 Ccc_stencil Dist Float Printf
