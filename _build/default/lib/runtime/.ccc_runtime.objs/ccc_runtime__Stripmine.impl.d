lib/runtime/stripmine.ml: Array Ccc_compiler Ccc_microcode List
