lib/runtime/exec.ml: Array Ccc_cm2 Ccc_compiler Ccc_microcode Ccc_stencil Coeff Dist Float Format Fun Grid Halo Hashtbl List Offset Pattern Printf Reference Stats Stripmine Tap
