lib/runtime/passes.mli: Ccc_cm2
