lib/runtime/seismic.ml: Ccc_cm2 Ccc_compiler Ccc_stencil Coeff Exec Grid List Offset Option Passes Pattern Printf Stats Tap
