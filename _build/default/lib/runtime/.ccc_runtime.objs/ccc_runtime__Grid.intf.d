lib/runtime/grid.mli: Format
