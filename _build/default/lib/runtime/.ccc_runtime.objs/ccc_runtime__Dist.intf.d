lib/runtime/dist.mli: Ccc_cm2 Grid
