lib/runtime/passes.ml: Ccc_cm2 Float
