lib/runtime/reference.mli: Ccc_stencil Grid
