type strip = { col0 : int; plan : Ccc_microcode.Plan.t }
type halfstrip = { strip : strip; rows : int array }

let strips_of_plans plans ~sub_cols =
  if sub_cols <= 0 then invalid_arg "Stripmine.strips: non-positive width";
  let rec go col0 acc =
    let remaining = sub_cols - col0 in
    if remaining = 0 then List.rev acc
    else
      match
        List.find_opt
          (fun p -> p.Ccc_microcode.Plan.width <= remaining)
          plans
      with
      | None ->
          (* Width 1 always compiles for accepted patterns. *)
          invalid_arg "Stripmine.strips: no plan fits the remaining width"
      | Some plan ->
          let width = plan.Ccc_microcode.Plan.width in
          go (col0 + width) ({ col0; plan } :: acc)
  in
  go 0 []

let strips compiled ~sub_cols =
  strips_of_plans compiled.Ccc_compiler.Compile.plans ~sub_cols

let halfstrips strip ~sub_rows =
  if sub_rows <= 0 then invalid_arg "Stripmine.halfstrips: non-positive height";
  let mid = sub_rows / 2 in
  (* Lower half sweeps upward from the bottom edge to the center;
     the upper half continues from the center to the top edge. *)
  let lower = Array.init (sub_rows - mid) (fun t -> sub_rows - 1 - t) in
  let upper = Array.init mid (fun t -> mid - 1 - t) in
  if mid = 0 then [ { strip; rows = lower } ]
  else [ { strip; rows = lower }; { strip; rows = upper } ]

let strip_widths compiled ~sub_cols =
  List.map
    (fun s -> s.plan.Ccc_microcode.Plan.width)
    (strips compiled ~sub_cols)
