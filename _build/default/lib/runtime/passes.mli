(** Cost model for general (non-stencil) elementwise array statements.

    The CM Fortran compiler's ordinary code path executes an array
    statement as a sequence of whole-array passes over the vector
    units: each pass streams its operands from node memory through the
    floating-point chips and back (section 3's slicewise model, vectors
    of size 4).  Unlike the convolution microcode there is no register
    reuse between array elements, so every operand word crosses the
    memory interface every pass.

    The run-time library shares this model between the naive baseline
    (every term of a stencil as separate shift/multiply/add passes) and
    the seismic driver's non-stencil statements (the tenth term and the
    time-rotation copies of section 7). *)

val frontend_bounded : Ccc_cm2.Config.t -> cm_cycles:int -> words:int -> int
(** The effective duration (in machine cycles) of a pass that keeps
    the CM busy for [cm_cycles] while the front end must prepare
    [words] dynamic-part words: the slower of the two sides. *)

val copy_cycles : Ccc_cm2.Config.t -> elements:int -> int
(** [A = B] over [elements] array points per node: one load and one
    store per element. *)

val elementwise_cycles :
  Ccc_cm2.Config.t -> elements:int -> reads:int -> int
(** One arithmetic pass ([R = f(A, B, ...)]) with [reads] operand
    arrays: [reads] loads, the operation, and one store per element. *)

val madd_pass_cycles : Ccc_cm2.Config.t -> elements:int -> int
(** [R = R + A * B]: three loads, a chained multiply-add and a store
    per element — the tenth-term pass of the Gordon Bell code. *)

val whole_array_shift_cycles :
  Ccc_cm2.Config.t -> elements:int -> amount:int -> sub_rows:int -> sub_cols:int -> dim:int -> int
(** A general [CSHIFT] of a whole distributed array by [amount] along
    [dim]: every element moves, and elements crossing a node boundary
    ride the grid network.  This is what the pre-convolution code path
    paid per shifted term, and why moving only halos wins. *)

val frontend_pass_overhead_s : Ccc_cm2.Config.t -> float
(** Front-end launch cost of one whole-array statement. *)
