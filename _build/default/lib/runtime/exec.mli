(** The run-time library's outer loop (section 5): distribute the
    arrays, perform all interprocessor communication up front, then
    drive the microcode over strips and half-strips.

    Two execution modes share every phase except the inner loop:

    - [Simulate] runs the cycle-accurate microcode interpreter against
      the FPU pipeline model on every node — the mode the correctness
      tests use, and the mode that validates the analytic cycle model;
    - [Fast] computes the same data directly from each node's padded
      temporaries and prices the inner loop with {!Ccc_microcode.Cost}
      (which [Simulate] provably matches), so large benchmark
      configurations run in reasonable host time.

    Both modes report identical statistics. *)

type mode = Simulate | Fast

type result = { output : Grid.t; stats : Stats.t }

exception Too_small of string
(** The subgrid cannot accommodate the stencil (border width exceeds a
    subgrid side, or fewer rows than the multistencil needs). *)

val run :
  ?mode:mode ->
  ?primitive:Halo.primitive ->
  ?iterations:int ->
  Ccc_cm2.Machine.t ->
  Ccc_compiler.Compile.t ->
  Reference.env ->
  result
(** Execute one compiled stencil over host arrays.  [iterations]
    (default 1) scales the timing statistics the way the paper's
    sustained measurements loop the computation; the data result is
    that of a single application.  All temporaries allocated on the
    machine are released before returning. *)

val run_padded :
  ?mode:mode ->
  ?primitive:Halo.primitive ->
  ?iterations:int ->
  Ccc_cm2.Machine.t ->
  Ccc_compiler.Compile.t ->
  Reference.env ->
  result
(** Like {!run} but accepts array shapes that do not divide evenly
    over the node grid: the run-time library grows every array with
    fill rows/columns to the next multiple of the node grid, computes,
    and crops the result.  Sound for {!Ccc_stencil.Boundary.End_off}
    patterns, whose taps past the true edge read the fill value either
    way; a circular pattern would wrap through the padding, so [run]'s
    divisibility requirement stands and this raises
    [Invalid_argument]. *)

val estimate :
  ?primitive:Halo.primitive ->
  ?iterations:int ->
  sub_rows:int ->
  sub_cols:int ->
  Ccc_cm2.Config.t ->
  Ccc_compiler.Compile.t ->
  Stats.t
(** Timing without data: the statistics [run] would report for a
    per-node subgrid of the given shape on the configured machine.
    The benchmark harness uses this for the paper's production-size
    rows (10^13 flops would be unreasonable to move through the
    simulator); tests pin it to [run]'s stats on small shapes. *)

(** {1 Multi-source (fused) execution}

    Executes a {!Ccc_compiler.Compile.fused} compilation — the
    future-work generalization that handles "all ten terms as one
    stencil pattern".  One halo exchange runs per source array, each
    padded to that source's own border width; everything downstream of
    communication (strips, half-strips, microcode, statistics) is the
    shared machinery. *)

val run_fused :
  ?mode:mode ->
  ?primitive:Halo.primitive ->
  ?iterations:int ->
  Ccc_cm2.Machine.t ->
  Ccc_compiler.Compile.fused ->
  Reference.env ->
  result

val estimate_fused :
  ?primitive:Halo.primitive ->
  ?iterations:int ->
  sub_rows:int ->
  sub_cols:int ->
  Ccc_cm2.Config.t ->
  Ccc_compiler.Compile.fused ->
  Stats.t

val reference_fused : Ccc_stencil.Multi.t -> Reference.env -> Grid.t
(** Direct evaluation of a multi-source pattern: the oracle for
    [run_fused]. *)

val trace :
  ?width:int ->
  ?lines:int ->
  Ccc_cm2.Config.t ->
  Ccc_compiler.Compile.t ->
  string list
(** A cycle-by-cycle issue trace of one half-strip on a synthetic
    one-node sandbox: each line shows the sequencer cycle, the subgrid
    row being processed, and the dynamic part issued.  [width] selects
    a plan (default: the widest); [lines] is the half-strip height
    (default 3).  A debugging and teaching aid — the paper's authors
    "tested the microcode loops thoroughly" in exactly this style
    under the Lisp prototype's debugger. *)
