(* The per-element costs below follow the machine model of lib/cm2:
   every word that crosses the memory interface costs
   [memory_op_cycles]; arithmetic is issued one dynamic part per
   vector element.  Like the microcode path, a general pass can be
   front-end bound: the host prepares one parameter word per dynamic
   part, so the effective pace of a pass is the slower of the CM
   cycles and the front-end preparation (section 7's "hard pressed to
   keep up"). *)

let frontend_bounded (config : Ccc_cm2.Config.t) ~cm_cycles ~words =
  let word_cycles =
    Ccc_cm2.Config.effective_word_s config *. config.clock_hz
  in
  max cm_cycles
    (int_of_float (Float.ceil (float_of_int words *. word_cycles)))

let copy_cycles (config : Ccc_cm2.Config.t) ~elements =
  frontend_bounded config
    ~cm_cycles:(elements * 2 * config.memory_op_cycles)
    ~words:(elements * 2)

let elementwise_cycles (config : Ccc_cm2.Config.t) ~elements ~reads =
  frontend_bounded config
    ~cm_cycles:
      (elements
      * (((reads + 1) * config.memory_op_cycles) + config.madd_issue_cycles))
    ~words:(elements * (reads + 2))

let madd_pass_cycles config ~elements =
  elementwise_cycles config ~elements ~reads:3

let whole_array_shift_cycles (config : Ccc_cm2.Config.t) ~elements ~amount
    ~sub_rows ~sub_cols ~dim =
  if amount = 0 then 0
  else begin
    (* Every element is read and rewritten; the slab that crosses the
       node boundary (|amount| rows or columns of the subgrid, capped
       at the whole subgrid) also crosses the network at grid-wire
       cost, one hop per unit of shift distance. *)
    let local =
      frontend_bounded config
        ~cm_cycles:(elements * 2 * config.memory_op_cycles)
        ~words:(elements * 2)
    in
    let crossing =
      let span = min (abs amount) (if dim = 1 then sub_rows else sub_cols) in
      let words = span * if dim = 1 then sub_cols else sub_rows in
      words * config.comm_cycles_per_word * abs amount
    in
    local + crossing
  end

let frontend_pass_overhead_s (config : Ccc_cm2.Config.t) =
  Ccc_cm2.Config.effective_call_s config
