type phase = {
  loads : Instr.t list;
  madds : Instr.t list;
  stores : Instr.t list;
}

type ring = { src : int; dcol : int; base : int; size : int; min_drow : int }

type t = {
  width : int;
  multi : Ccc_stencil.Multi.t;
  multistencils : (int * Ccc_stencil.Multistencil.t) list;
  rings : ring list;
  unroll : int;
  phases : phase array;
  prologue : Instr.t list array;
  zero_reg : int;
  one_reg : int option;
  registers_used : int;
  dynamic_words : int;
  coeff_streams : Ccc_stencil.Coeff.t array;
}

let phase_instrs p = p.loads @ p.madds @ p.stores

let ring_register ring ~line ~depth =
  let m = (line - depth) mod ring.size in
  ring.base + if m < 0 then m + ring.size else m

let find_ring ?(src = 0) t ~dcol =
  List.find (fun r -> r.src = src && r.dcol = dcol) t.rings

let pattern t =
  match Ccc_stencil.Multi.to_pattern t.multi with
  | Some p -> p
  | None -> invalid_arg "Plan.pattern: multi-source plan"

let primary_multistencil t =
  List.assoc (Ccc_stencil.Multi.primary_source t.multi) t.multistencils

let source_count t = Ccc_stencil.Multi.source_count t.multi

let pp_listing ppf t =
  let section title slots =
    if slots <> [] then begin
      Format.fprintf ppf "  %s:@," title;
      List.iter (fun s -> Format.fprintf ppf "    %a@," Instr.pp s) slots
    end
  in
  Format.fprintf ppf "@[<v>";
  Array.iteri
    (fun i loads ->
      section (Printf.sprintf "warmup %d" (i - Array.length t.prologue)) loads)
    t.prologue;
  Array.iteri
    (fun p phase ->
      Format.fprintf ppf "phase %d of %d:@," p t.unroll;
      section "loads" phase.loads;
      section "multiply-adds" phase.madds;
      section "stores" phase.stores)
    t.phases;
  Format.fprintf ppf "@]"

let pp_summary ppf t =
  let ring_sizes =
    t.rings |> List.map (fun r -> string_of_int r.size) |> String.concat " "
  in
  let positions =
    List.fold_left
      (fun acc (_, ms) -> acc + Ccc_stencil.Multistencil.position_count ms)
      0 t.multistencils
  in
  Format.fprintf ppf
    "@[<v>width %d: %d positions%s, %d registers (zero=r%d%s), rings [%s], \
     unroll %d, %d scratch words@]"
    t.width positions
    (if source_count t > 1 then
       Printf.sprintf " over %d sources" (source_count t)
     else "")
    t.registers_used t.zero_reg
    (match t.one_reg with
    | Some r -> Printf.sprintf ", one=r%d" r
    | None -> "")
    ring_sizes t.unroll t.dynamic_words
