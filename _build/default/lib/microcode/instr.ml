type t =
  | Load of { reg : int; src : int; drow : int; dcol : int }
  | Store of { reg : int; dcol : int }
  | Madd of {
      dst : int;
      data : int;
      coeff_index : int;
      coeff_dcol : int;
      acc : int;
    }
  | Nop

let pp ppf = function
  | Load { reg; src; drow; dcol } ->
      Format.fprintf ppf "load  r%-2d <- src%d(%+d,%+d)" reg src drow dcol
  | Store { reg; dcol } ->
      Format.fprintf ppf "store dst(+0,%+d) <- r%-2d" dcol reg
  | Madd { dst; data; coeff_index; coeff_dcol; acc } ->
      Format.fprintf ppf "madd  r%-2d <- r%d * coeff[%d](%+d) + r%d" dst data
        coeff_index coeff_dcol acc
  | Nop -> Format.pp_print_string ppf "nop"

let cycles (config : Ccc_cm2.Config.t) = function
  | Load _ | Store _ -> config.memory_op_cycles
  | Madd _ -> config.madd_issue_cycles
  | Nop -> 1

let is_memory_op = function
  | Load _ | Store _ -> true
  | Madd _ | Nop -> false
