(** A compiled strip plan: the microcode routine selection plus the
    unrolled register-access patterns for one multistencil width.

    The microcode loop itself is fixed (section 5); what varies per
    stencil is the table of dynamic parts, unrolled over [unroll]
    phases because the per-column ring buffers rotate at different
    rates (section 5.4: the LCM of the ring sizes).  Line [t] of a
    half-strip executes phase [t mod unroll].

    Relative addressing inside the instructions assumes the line origin
    is the leftmost output position of the current line; lines advance
    one row at a time toward decreasing row index (the paper's sweep
    moves to "the line just above", so the leading edge is the
    multistencil's top row and the recycled accumulators sit on its
    bottom row). *)

type phase = {
  loads : Instr.t list;  (** the leading edge: one load per column *)
  madds : Instr.t list;  (** interleaved chained multiply-add pairs *)
  stores : Instr.t list;  (** the [width] results, tagged registers *)
}

type ring = { src : int; dcol : int; base : int; size : int; min_drow : int }
(** One column's ring buffer for source [src]: registers
    [base .. base+size-1]; the element at depth [d] (top row of the
    column = depth 0) for line [t] lives in register
    [base + ((t - d) mod size)]. *)

type t = {
  width : int;
  multi : Ccc_stencil.Multi.t;
      (** the compiled statement; ordinary stencils have one source *)
  multistencils : (int * Ccc_stencil.Multistencil.t) list;
      (** per-source multistencils, keyed by source index *)
  rings : ring list;
  unroll : int;
  phases : phase array;  (** length [unroll] *)
  prologue : Instr.t list array;
      (** warmup lines that fill the rings before line 0; element [i]
          holds the loads of warmup step [i - length], i.e. the array
          is in execution order *)
  zero_reg : int;
  one_reg : int option;
  registers_used : int;
  dynamic_words : int;
      (** scratch-memory footprint of the unrolled table *)
  coeff_streams : Ccc_stencil.Coeff.t array;
      (** stream [i] feeds [Madd.coeff_index = i]: taps in pattern
          order, then the bias stream if any *)
}

val phase_instrs : phase -> Instr.t list
(** Loads, then madds, then stores, in issue order. *)

val ring_register : ring -> line:int -> depth:int -> int
(** The register holding the element at [depth] for line [line]. *)

val find_ring : ?src:int -> t -> dcol:int -> ring
(** The ring of source [src] (default 0) at column [dcol].  Raises
    [Not_found] if that multistencil has no such column. *)

val pattern : t -> Ccc_stencil.Pattern.t
(** The single-source view.  Raises [Invalid_argument] on a
    multi-source plan. *)

val primary_multistencil : t -> Ccc_stencil.Multistencil.t
(** The multistencil of the primary (tag-owning) source. *)

val source_count : t -> int

val pp_summary : Format.formatter -> t -> unit

val pp_listing : Format.formatter -> t -> unit
(** The full dynamic-part listing: the warmup prologue and every
    unrolled phase's loads, interleaved multiply-add chains and
    stores — the table the run-time library would download into the
    sequencer's scratch data memory. *)
