lib/microcode/instr.ml: Ccc_cm2 Format
