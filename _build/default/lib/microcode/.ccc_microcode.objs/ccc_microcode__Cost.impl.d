lib/microcode/cost.ml: Array Ccc_cm2 Instr List Plan
