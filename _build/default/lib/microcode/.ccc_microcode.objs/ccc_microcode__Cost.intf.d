lib/microcode/cost.mli: Ccc_cm2 Plan
