lib/microcode/interp.mli: Ccc_cm2 Instr Plan
