lib/microcode/plan.mli: Ccc_stencil Format Instr
