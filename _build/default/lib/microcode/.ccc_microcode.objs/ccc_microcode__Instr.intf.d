lib/microcode/instr.mli: Ccc_cm2 Format
