lib/microcode/plan.ml: Array Ccc_stencil Format Instr List Printf String
