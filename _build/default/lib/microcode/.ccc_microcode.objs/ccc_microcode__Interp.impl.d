lib/microcode/interp.ml: Array Ccc_cm2 Instr List Option Plan Printf
