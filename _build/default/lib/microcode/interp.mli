(** Cycle-accurate execution of a strip plan on one simulated node.

    Runs the fixed microcode loop against the {!Ccc_cm2.Fpu} pipeline
    model and the node's memory: prologue fills the ring buffers, then
    each line streams its phase's dynamic parts — leading-edge loads,
    interleaved multiply-add chains with the coefficient operand
    fetched from memory, and the result stores from the recycled
    tagged registers.

    Because the machine is SIMD, the caller (the run-time library)
    executes the same plan on every node but takes the cycle count
    once.  Hazards are hard errors: storing a register whose write has
    not landed raises {!Hazard}, so a mis-scheduled plan fails loudly
    in tests rather than producing silently stale data. *)

exception Hazard of string

type source_binding = {
  padded : Ccc_cm2.Memory.region;
      (** the source subgrid with halo padding on all four sides *)
  padded_cols : int;  (** row stride of [padded] *)
  pad : int;  (** halo width of this source *)
}

type bindings = {
  memory : Ccc_cm2.Memory.t;
  sources : source_binding array;
      (** indexed by [Instr.Load.src]; single-source stencils bind one *)
  dst : Ccc_cm2.Memory.region;  (** result subgrid, [cols] wide *)
  dst_cols : int;
  coeffs : Ccc_cm2.Memory.region array;
      (** one region per coefficient stream, laid out like [dst] *)
}

type outcome = {
  cycles : int;  (** sequencer cycles consumed *)
  flop_slots : int;  (** two per multiply-add issued, useful or not *)
  madds : int;  (** multiply-adds issued, including discarded ones *)
}

val run_halfstrip :
  ?observer:(cycle:int -> row:int -> Instr.t -> unit) ->
  Ccc_cm2.Config.t ->
  Plan.t ->
  bindings ->
  col0:int ->
  rows:int array ->
  outcome
(** Execute one half-strip whose line origins are
    [(rows.(t), col0) .. (rows.(t), col0 + width - 1)] in subgrid-local
    coordinates, for [t = 0 ..].  [rows] must step by -1 (the sweep
    moves upward; the plan's leading edge is its top row).  Includes
    the startup cost (static-part latch, scratch-counter reset) and the
    per-line loop overheads from the configuration.

    [observer] is called for every dynamic part as it issues, with the
    sequencer cycle and the line's subgrid row — the hook behind the
    execution tracer (and handy for ad-hoc debugging). *)

val zero_outcome : outcome
val add_outcome : outcome -> outcome -> outcome
