(** Dynamic instruction parts (section 4.3).

    The fixed microcode loop issues one static part (the multiply-add
    opcode) and then streams these dynamic parts — register addresses
    and load/store control — from the sequencer's scratch data memory,
    one per cycle.  Memory addresses are {e not} in the dynamic part;
    the sequencer ALU generates them at run time from the loop
    parameters, which is why the fields below are all {e relative}: row
    and column displacements from the current line origin, and indices
    into the coefficient-stream table that the run-time library binds
    per call.

    The compiler emits these; the interpreter executes them; the cost
    model prices them. *)

type t =
  | Load of { reg : int; src : int; drow : int; dcol : int }
      (** register <- element of source array [src] at (line row +
          [drow], line column + [dcol]); every source array is
          halo-padded.  Ordinary stencils have a single source 0; the
          multi-source extension (the paper's future-work
          generalization) indexes the run-time binding table *)
  | Store of { reg : int; dcol : int }
      (** result element at (line row, line column + [dcol]) <- register *)
  | Madd of {
      dst : int;
      data : int;
      coeff_index : int;
          (** which coefficient stream: taps in pattern order, then the
              bias stream *)
      coeff_dcol : int;
          (** the coefficient element sits at the output position, i.e.
              line column + occurrence index *)
      acc : int;
    }
  | Nop
      (** a cycle with no useful work; the floating-point units still
          execute a discarded multiply-add into the zero register
          ("there is no way not to store the result", section 5.3) *)

val pp : Format.formatter -> t -> unit

val cycles : Ccc_cm2.Config.t -> t -> int
(** Sequencer cycles consumed by one dynamic part. *)

val is_memory_op : t -> bool
