let slot_cycles config slots =
  List.fold_left (fun acc slot -> acc + Instr.cycles config slot) 0 slots

(* Phases differ only in register numbers, so any phase prices a line. *)
let representative_phase (plan : Plan.t) = plan.Plan.phases.(0)

let drain_cycles (config : Ccc_cm2.Config.t) =
  max 0 (config.madd_writeback_latency - config.pipe_reversal_cycles)

let line_cycles (config : Ccc_cm2.Config.t) plan =
  let phase = representative_phase plan in
  config.line_overhead_cycles
  + slot_cycles config phase.Plan.loads
  + config.pipe_reversal_cycles
  + slot_cycles config phase.Plan.madds
  + config.pipe_reversal_cycles + drain_cycles config
  + slot_cycles config phase.Plan.stores
  + config.loop_branch_cycles

let prologue_cycles config (plan : Plan.t) =
  Array.fold_left
    (fun acc loads -> acc + slot_cycles config loads)
    0 plan.Plan.prologue

let startup_cycles (config : Ccc_cm2.Config.t) =
  config.halfstrip_startup_cycles + config.static_issue_cycles
  + config.scratch_counter_reset_cycles

let halfstrip_cycles config plan ~lines =
  if lines < 0 then invalid_arg "Cost.halfstrip_cycles: negative line count";
  if lines = 0 then startup_cycles config
  else
    startup_cycles config + prologue_cycles config plan
    + (lines * line_cycles config plan)

let madds_per_line plan =
  let phase = representative_phase plan in
  List.length
    (List.filter
       (function Instr.Madd _ -> true | Instr.Load _ | Instr.Store _ | Instr.Nop -> false)
       phase.Plan.madds)

let slot_madds config slots =
  List.fold_left
    (fun acc slot ->
      acc
      +
      match slot with
      | Instr.Madd _ -> 1
      | Instr.Load _ | Instr.Store _ | Instr.Nop -> Instr.cycles config slot)
    0 slots

let line_madds_total config plan =
  let phase = representative_phase plan in
  slot_madds config phase.Plan.loads
  + slot_madds config phase.Plan.madds
  + slot_madds config phase.Plan.stores

let line_words (plan : Plan.t) =
  let phase = representative_phase plan in
  List.length phase.Plan.loads
  + List.length phase.Plan.madds
  + List.length phase.Plan.stores

let halfstrip_words (plan : Plan.t) ~lines =
  if lines <= 0 then 0
  else
    Array.fold_left
      (fun acc loads -> acc + List.length loads)
      0 plan.Plan.prologue
    + (lines * line_words plan)

let halfstrip_madds_total config (plan : Plan.t) ~lines =
  if lines <= 0 then 0
  else
    Array.fold_left
      (fun acc loads -> acc + slot_madds config loads)
      0 plan.Plan.prologue
    + (lines * line_madds_total config plan)
