exception Hazard of string

type source_binding = {
  padded : Ccc_cm2.Memory.region;
  padded_cols : int;
  pad : int;
}

type bindings = {
  memory : Ccc_cm2.Memory.t;
  sources : source_binding array;
  dst : Ccc_cm2.Memory.region;
  dst_cols : int;
  coeffs : Ccc_cm2.Memory.region array;
}

type outcome = { cycles : int; flop_slots : int; madds : int }

let zero_outcome = { cycles = 0; flop_slots = 0; madds = 0 }

let add_outcome a b =
  {
    cycles = a.cycles + b.cycles;
    flop_slots = a.flop_slots + b.flop_slots;
    madds = a.madds + b.madds;
  }

let src_addr b ~src ~row ~col =
  if src < 0 || src >= Array.length b.sources then
    raise (Hazard (Printf.sprintf "source %d unbound" src));
  let s = b.sources.(src) in
  let r = row + s.pad and c = col + s.pad in
  if r < 0 || c < 0 || c >= s.padded_cols then
    raise
      (Hazard
         (Printf.sprintf "source %d access (%d,%d) outside padded region" src
            row col));
  s.padded.Ccc_cm2.Memory.base + (r * s.padded_cols) + c

let dst_addr b ~row ~col =
  if row < 0 || col < 0 || col >= b.dst_cols then
    raise
      (Hazard (Printf.sprintf "result access (%d,%d) out of range" row col));
  b.dst.Ccc_cm2.Memory.base + (row * b.dst_cols) + col

let coeff_addr b ~index ~row ~col =
  if index < 0 || index >= Array.length b.coeffs then
    raise (Hazard (Printf.sprintf "coefficient stream %d unbound" index));
  b.coeffs.(index).Ccc_cm2.Memory.base + (row * b.dst_cols) + col

(* Execute one dynamic part at the FPU's current cycle, then advance
   the sequencer by the part's cost.  Loads land through the interface
   chip one cycle later; stores require the register value to have
   landed (a pending write is a compile-time scheduling bug). *)
let execute_slot (config : Ccc_cm2.Config.t) fpu b ~row ~col0 ~madd_count slot =
  let module Fpu = Ccc_cm2.Fpu in
  let module Memory = Ccc_cm2.Memory in
  (match slot with
  | Instr.Load { reg; src; drow; dcol } ->
      let v =
        Memory.read b.memory
          (src_addr b ~src ~row:(row + drow) ~col:(col0 + dcol))
      in
      Fpu.schedule_write fpu ~at:(Fpu.now fpu + config.load_latency) ~reg v
  | Instr.Store { reg; dcol } ->
      if Fpu.pending_write fpu ~reg then
        raise
          (Hazard
             (Printf.sprintf
                "store of r%d while its accumulation is still in flight" reg));
      Memory.write b.memory (dst_addr b ~row ~col:(col0 + dcol)) (Fpu.read fpu reg)
  | Instr.Madd { dst; data; coeff_index; coeff_dcol; acc } ->
      let coeff =
        Memory.read b.memory
          (coeff_addr b ~index:coeff_index ~row ~col:(col0 + coeff_dcol))
      in
      Fpu.issue_madd fpu ~dst ~data ~coeff ~acc;
      incr madd_count
  | Instr.Nop -> ());
  (* The floating-point units perform a discarded multiply-add into the
     zero register on every non-madd cycle (section 5.3). *)
  let cost = Instr.cycles config slot in
  (match slot with
  | Instr.Madd _ -> ()
  | Instr.Load _ | Instr.Store _ | Instr.Nop ->
      for _ = 1 to cost do
        Fpu.issue_madd fpu ~dst:0 ~data:0 ~coeff:0.0 ~acc:0;
        incr madd_count
      done);
  Fpu.advance_to fpu (Fpu.now fpu + cost)

let run_halfstrip ?(observer = fun ~cycle:_ ~row:_ _ -> ())
    (config : Ccc_cm2.Config.t) (plan : Plan.t) b ~col0 ~rows =
  let module Fpu = Ccc_cm2.Fpu in
  let fpu =
    Fpu.create ~add_latency:config.madd_add_latency
      ~writeback_latency:config.madd_writeback_latency
      ~single_precision:config.single_precision
      ~registers:config.fpu_registers ()
  in
  Fpu.poke fpu plan.Plan.zero_reg 0.0;
  Option.iter (fun r -> Fpu.poke fpu r 1.0) plan.Plan.one_reg;
  let madd_count = ref 0 in
  let burn cycles = Fpu.advance_to fpu (Fpu.now fpu + cycles) in
  (* Startup: enter the microcode routine, latch the single static
     part, point the scratch counter at the dynamic-part table. *)
  burn
    (config.halfstrip_startup_cycles + config.static_issue_cycles
   + config.scratch_counter_reset_cycles);
  let nlines = Array.length rows in
  if nlines > 0 then begin
    (* Prologue: fill the ring buffers.  Warmup step [i] stands for
       virtual line [i - length]; its loads address rows relative to
       the first real line's row plus the distance still to go. *)
    let len = Array.length plan.Plan.prologue in
    Array.iteri
      (fun i loads ->
        let virtual_line = i - len in
        (* Virtual line t sits (-t) rows below line 0 in the sweep
           (the sweep moves upward, one row per line). *)
        let row = rows.(0) - virtual_line in
        List.iter
          (fun slot ->
            observer ~cycle:(Fpu.now fpu) ~row slot;
            execute_slot config fpu b ~row ~col0 ~madd_count slot)
          loads)
      plan.Plan.prologue;
    Array.iteri
      (fun t row ->
        burn config.line_overhead_cycles;
        let phase = plan.Plan.phases.(t mod plan.Plan.unroll) in
        let run =
          List.iter (fun slot ->
              observer ~cycle:(Fpu.now fpu) ~row slot;
              execute_slot config fpu b ~row ~col0 ~madd_count slot)
        in
        run phase.Plan.loads;
        burn config.pipe_reversal_cycles;
        run phase.Plan.madds;
        burn config.pipe_reversal_cycles;
        (* Wait for the final accumulations to land before storing; the
           schedule counts these drain cycles too (Cost must agree). *)
        let drain =
          max 0 (config.madd_writeback_latency - config.pipe_reversal_cycles)
        in
        burn drain;
        run phase.Plan.stores;
        burn config.loop_branch_cycles)
      rows
  end;
  (* No final drain: every useful accumulation landed before its store
     (hazard-checked above); only discarded dummy writes to the zero
     register remain in flight. *)
  {
    cycles = Fpu.now fpu;
    flop_slots = Fpu.total_flop_slots fpu;
    madds = !madd_count;
  }
