type t = { geometry : Geometry.t }

let create geometry =
  if
    not
      (Geometry.is_power_of_two (Geometry.rows geometry)
      && Geometry.is_power_of_two (Geometry.cols geometry))
  then
    invalid_arg
      "Router.create: hypercube addressing needs power-of-two grid dimensions";
  { geometry }

let dimension t = Geometry.hypercube_dimension t.geometry

let address t node = Geometry.hypercube_address t.geometry node

(* Node id with the given hypercube address: invert the Gray coding of
   both coordinate fields. *)
let node_of_address t addr =
  let cols = Geometry.cols t.geometry in
  let col_bits =
    let rec go b v = if v >= cols then b else go (b + 1) (v * 2) in
    go 0 1
  in
  let col_gray = addr land ((1 lsl col_bits) - 1) in
  let row_gray = addr lsr col_bits in
  Geometry.node_of_coord t.geometry
    ~row:(Geometry.gray_inverse row_gray)
    ~col:(Geometry.gray_inverse col_gray)

let route t ~src ~dst =
  let a = address t src and b = address t dst in
  let rec go current acc bit =
    if current = b then List.rev acc
    else if bit >= dimension t then assert false
    else
      let mask = 1 lsl bit in
      if current land mask <> b land mask then
        let next = current lxor mask in
        go next (node_of_address t next :: acc) (bit + 1)
      else go current acc (bit + 1)
  in
  go a [] 0

let popcount n =
  let rec go acc n = if n = 0 then acc else go (acc + (n land 1)) (n lsr 1) in
  go 0 n

let hops t ~src ~dst = popcount (address t src lxor address t dst)

let wires_of_path t ~src path =
  let rec go prev = function
    | [] -> []
    | node :: rest ->
        let a = address t prev and b = address t node in
        (min a b, max a b) :: go node rest
  in
  go src path

let news_exchange_is_single_hop t =
  let ok = ref true in
  for node = 0 to Geometry.node_count t.geometry - 1 do
    List.iter
      (fun dir ->
        let neighbor = Geometry.neighbor t.geometry node dir in
        if neighbor <> node && hops t ~src:node ~dst:neighbor <> 1 then
          ok := false)
      Geometry.all_directions
  done;
  !ok

let news_exchange_wire_disjoint t dir =
  let seen = Hashtbl.create 64 in
  let ok = ref true in
  for node = 0 to Geometry.node_count t.geometry - 1 do
    let neighbor = Geometry.neighbor t.geometry node dir in
    if neighbor <> node then begin
      let path = route t ~src:node ~dst:neighbor in
      List.iter
        (fun wire ->
          if Hashtbl.mem seen wire then ok := false
          else Hashtbl.add seen wire ())
        (wires_of_path t ~src:node path)
    end
  done;
  !ok
