type pending_add = {
  add_at : int;  (** cycle on which the adder reads the accumulator *)
  land_at : int;  (** cycle on which the sum reaches [dst] *)
  product : float;
  acc : int;
  dst : int;
}

type pending_write = { write_at : int; reg : int; value : float }

type t = {
  regs : float array;
  add_latency : int;
  writeback_latency : int;
  round : float -> float;  (** identity, or IEEE single rounding *)
  mutable cycle : int;
  mutable adds : pending_add list;  (** sorted by [add_at] *)
  mutable writes : pending_write list;  (** sorted by [write_at] *)
  mutable flop_slots : int;
}

let round32 v = Int32.float_of_bits (Int32.bits_of_float v)

let create ?(add_latency = 2) ?(writeback_latency = 4)
    ?(single_precision = false) ~registers () =
  if registers <= 0 then invalid_arg "Fpu.create: no registers";
  if add_latency <= 0 || writeback_latency <= add_latency then
    invalid_arg "Fpu.create: inconsistent latencies";
  {
    regs = Array.make registers 0.0;
    add_latency;
    writeback_latency;
    round = (if single_precision then round32 else Fun.id);
    cycle = 0;
    adds = [];
    writes = [];
    flop_slots = 0;
  }

let registers t = Array.length t.regs
let now t = t.cycle

let check_reg t r name =
  if r < 0 || r >= Array.length t.regs then
    invalid_arg (Printf.sprintf "Fpu: %s register %d out of range" name r)

let insert_sorted key x xs =
  let rec go = function
    | [] -> [ x ]
    | y :: rest as l -> if key x <= key y then x :: l else y :: go rest
  in
  go xs

(* One simulated cycle.  Ordering within the new cycle matters: writes
   land first, then pending additions read their accumulator, so a read
   on cycle [t] observes writes landed on cycles <= t. *)
let tick t =
  t.cycle <- t.cycle + 1;
  let landed, still =
    List.partition (fun w -> w.write_at <= t.cycle) t.writes
  in
  List.iter (fun w -> t.regs.(w.reg) <- w.value) landed;
  t.writes <- still;
  let due, waiting = List.partition (fun a -> a.add_at <= t.cycle) t.adds in
  t.adds <- waiting;
  let start_add a =
    let sum = t.round (a.product +. t.regs.(a.acc)) in
    t.writes <-
      insert_sorted
        (fun w -> w.write_at)
        { write_at = a.land_at; reg = a.dst; value = sum }
        t.writes
  in
  List.iter start_add due

let advance_to t cycle = while t.cycle < cycle do tick t done

let read t r =
  check_reg t r "read";
  t.regs.(r)

let poke t r v =
  check_reg t r "poke";
  t.regs.(r) <- v

let schedule_write t ~at ~reg v =
  check_reg t reg "schedule_write";
  if at <= t.cycle then invalid_arg "Fpu.schedule_write: not in the future";
  t.writes <-
    insert_sorted (fun w -> w.write_at) { write_at = at; reg; value = v }
      t.writes

let issue_madd t ~dst ~data ~coeff ~acc =
  check_reg t dst "madd dst";
  check_reg t data "madd data";
  check_reg t acc "madd acc";
  let product = t.round (t.regs.(data) *. coeff) in
  t.flop_slots <- t.flop_slots + 2;
  t.adds <-
    insert_sorted
      (fun a -> a.add_at)
      {
        add_at = t.cycle + t.add_latency;
        land_at = t.cycle + t.writeback_latency;
        product;
        acc;
        dst;
      }
      t.adds

let pending_write t ~reg =
  List.exists (fun w -> w.reg = reg) t.writes
  || List.exists (fun a -> a.dst = reg) t.adds

let drain t = while t.adds <> [] || t.writes <> [] do tick t done
let total_flop_slots t = t.flop_slots
