(** Node-grid geometry and its embedding in the CM-2 hypercube.

    The run-time library arranges the 2,048 floating-point nodes of a
    full CM-2 as a two-dimensional grid (section 5).  Grid neighbors are
    hypercube neighbors thanks to a Gray-code embedding of each grid
    axis, which is what makes the four-neighbor exchange primitive
    effective (section 4.1).  This module provides the grid arithmetic
    used by the distribution and halo-exchange code, plus the Gray-code
    machinery so that tests can verify the embedding property. *)

type t

type direction = North | South | East | West

val all_directions : direction list
val opposite : direction -> direction
val pp_direction : Format.formatter -> direction -> unit

val create : rows:int -> cols:int -> t
(** [create ~rows ~cols] is a [rows] x [cols] node grid.  Raises
    [Invalid_argument] on non-positive dimensions. *)

val rows : t -> int
val cols : t -> int
val node_count : t -> int

val node_of_coord : t -> row:int -> col:int -> int
(** Row-major node id of grid coordinate ([row], [col]).  Raises
    [Invalid_argument] when out of range. *)

val coord_of_node : t -> int -> int * int
(** Inverse of {!node_of_coord}. *)

val neighbor : t -> int -> direction -> int
(** [neighbor t node dir] is the node adjacent to [node] in direction
    [dir], with toroidal wraparound (the CM-2 NEWS grid is circular,
    matching Fortran's [CSHIFT]). *)

val diagonal_neighbor : t -> int -> direction * direction -> int
(** [diagonal_neighbor t node (vertical, horizontal)] composes two
    neighbor steps; used by the corner-exchange phase. *)

val gray : int -> int
(** Binary-reflected Gray code. *)

val gray_inverse : int -> int
(** Inverse of {!gray}: [gray_inverse (gray n) = n]. *)

val hypercube_address : t -> int -> int
(** The hypercube address of a node: the Gray codes of its grid
    coordinates, concatenated.  Only meaningful when both grid
    dimensions are powers of two (as on real hardware). *)

val hypercube_dimension : t -> int
(** Number of address bits used by {!hypercube_address}. *)

val is_power_of_two : int -> bool

val grid_neighbors_are_hypercube_neighbors : t -> bool
(** Verify the embedding property: every pair of grid neighbors (other
    than wraparound pairs on axes of length <= 2) differs in at most one
    hypercube address bit, wraparound pairs included, because the
    reflected Gray code is cyclic. *)
