type slice = int32

let processors = 32

(* Values travel as IEEE single-precision bit patterns: the CM-2's
   floating-point data is 32-bit. *)
let bits_of_value v = Int32.bits_of_float v
let value_of_bits b = Int32.float_of_bits b

let get_bit word i = Int32.to_int (Int32.logand (Int32.shift_right_logical word i) 1l)

let set_bit word i b =
  if b = 0 then word else Int32.logor word (Int32.shift_left 1l i)

let processorwise_store values =
  if Array.length values <> processors then
    invalid_arg "Slicewise.processorwise_store: need exactly 32 values";
  let words = Array.map bits_of_value values in
  Array.init 32 (fun i ->
      (* Slice i holds bit i of every processor's word. *)
      let rec go p acc =
        if p = processors then acc
        else go (p + 1) (set_bit acc p (get_bit words.(p) i))
      in
      go 0 0l)

let processorwise_load slices =
  if Array.length slices <> 32 then
    invalid_arg "Slicewise.processorwise_load: need exactly 32 slices";
  Array.init processors (fun p ->
      let rec go i acc =
        if i = 32 then acc else go (i + 1) (set_bit acc i (get_bit slices.(i) p))
      in
      value_of_bits (go 0 0l))

let slicewise_store v = bits_of_value v
let slicewise_load s = value_of_bits s

let transpose slices =
  if Array.length slices <> 32 then
    invalid_arg "Slicewise.transpose: need exactly 32 slices";
  Array.init 32 (fun i ->
      let rec go j acc =
        if j = 32 then acc else go (j + 1) (set_bit acc j (get_bit slices.(j) i))
      in
      go 0 0l)

let processorwise_word_cycles = 32
let slicewise_word_cycles = 1
