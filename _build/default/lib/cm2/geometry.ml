type t = { rows : int; cols : int }
type direction = North | South | East | West

let all_directions = [ North; South; East; West ]

let opposite = function
  | North -> South
  | South -> North
  | East -> West
  | West -> East

let pp_direction ppf d =
  Format.pp_print_string ppf
    (match d with
    | North -> "North"
    | South -> "South"
    | East -> "East"
    | West -> "West")

let create ~rows ~cols =
  if rows <= 0 || cols <= 0 then
    invalid_arg "Geometry.create: non-positive dimensions";
  { rows; cols }

let rows t = t.rows
let cols t = t.cols
let node_count t = t.rows * t.cols

let node_of_coord t ~row ~col =
  if row < 0 || row >= t.rows || col < 0 || col >= t.cols then
    invalid_arg "Geometry.node_of_coord: out of range";
  (row * t.cols) + col

let coord_of_node t node =
  if node < 0 || node >= node_count t then
    invalid_arg "Geometry.coord_of_node: out of range";
  (node / t.cols, node mod t.cols)

(* Toroidal step: the CM-2 NEWS grid wraps around, matching the
   circular semantics of Fortran CSHIFT.  North is toward smaller row
   indices. *)
let neighbor t node dir =
  let row, col = coord_of_node t node in
  let wrap v n = ((v mod n) + n) mod n in
  let row', col' =
    match dir with
    | North -> (wrap (row - 1) t.rows, col)
    | South -> (wrap (row + 1) t.rows, col)
    | West -> (row, wrap (col - 1) t.cols)
    | East -> (row, wrap (col + 1) t.cols)
  in
  node_of_coord t ~row:row' ~col:col'

let diagonal_neighbor t node (vertical, horizontal) =
  (match vertical with
  | North | South -> ()
  | East | West ->
      invalid_arg "Geometry.diagonal_neighbor: first direction not vertical");
  (match horizontal with
  | East | West -> ()
  | North | South ->
      invalid_arg "Geometry.diagonal_neighbor: second direction not horizontal");
  neighbor t (neighbor t node vertical) horizontal

let gray n = n lxor (n lsr 1)

let gray_inverse g =
  let rec go acc g = if g = 0 then acc else go (acc lxor g) (g lsr 1) in
  go 0 g

let is_power_of_two n = n > 0 && n land (n - 1) = 0

let bits_for n =
  let rec go b v = if v >= n then b else go (b + 1) (v * 2) in
  go 0 1

let hypercube_dimension t = bits_for t.rows + bits_for t.cols

let hypercube_address t node =
  let row, col = coord_of_node t node in
  (gray row lsl bits_for t.cols) lor gray col

let popcount n =
  let rec go acc n = if n = 0 then acc else go (acc + (n land 1)) (n lsr 1) in
  go 0 n

let grid_neighbors_are_hypercube_neighbors t =
  if not (is_power_of_two t.rows && is_power_of_two t.cols) then false
  else
    let ok = ref true in
    for node = 0 to node_count t - 1 do
      let addr = hypercube_address t node in
      let check dir =
        let addr' = hypercube_address t (neighbor t node dir) in
        (* A node on an axis of length 1 is its own neighbor. *)
        if popcount (addr lxor addr') > 1 then ok := false
      in
      List.iter check all_directions
    done;
    !ok
