(** The CM-2 message router, at the level the communication model
    depends on.

    Section 3: processors communicate through a router that forwards
    messages over a network logically structured as a boolean
    hypercube; nodes (two processor chips + FPU) form an 11-dimensional
    hypercube on a full machine.  The grid primitives owe their speed
    to the Gray-code embedding: grid neighbors are hypercube neighbors,
    so a NEWS exchange needs exactly one hop per message and never
    contends for a wire in a synchronized SIMD exchange.

    This module implements dimension-ordered (e-cube) routing over the
    node hypercube so that the tests can {e derive} rather than assume
    the communication costs: one hop for grid neighbors, up to the cube
    dimension for arbitrary pairs, and wire-disjointness of the
    four-direction exchange. *)

type t

val create : Geometry.t -> t
(** Raises [Invalid_argument] unless both grid dimensions are powers
    of two (hardware constraint: addresses are bit fields). *)

val dimension : t -> int

val route : t -> src:int -> dst:int -> int list
(** The e-cube path as a list of intermediate node ids ending with
    [dst] (empty when [src = dst]): correct one address bit at a time,
    lowest dimension first. *)

val hops : t -> src:int -> dst:int -> int
(** Hamming distance of the hypercube addresses = path length. *)

val wires_of_path : t -> src:int -> int list -> (int * int) list
(** The undirected wires a path crosses, each as (low endpoint id,
    high endpoint id) in hypercube-address space. *)

val news_exchange_is_single_hop : t -> bool
(** Every NEWS neighbor pair is one hop apart (the embedding
    property, stated operationally). *)

val news_exchange_wire_disjoint : t -> Geometry.direction -> bool
(** In a machine-wide shift along one direction, no two messages share
    a wire — what lets the grid primitive run at full wire bandwidth. *)
