type 'a t = {
  capacity : int;
  mutable table : 'a array;
  mutable counter : int;
}

let create ~capacity =
  if capacity <= 0 then invalid_arg "Sequencer.create: non-positive capacity";
  { capacity; table = [||]; counter = 0 }

let capacity t = t.capacity
let loaded t = Array.length t.table

let load t table =
  if Array.length table > t.capacity then
    failwith
      (Printf.sprintf
         "Sequencer.load: dynamic-part table of %d words exceeds scratch \
          memory (%d words)"
         (Array.length table) t.capacity);
  t.table <- table;
  t.counter <- 0

let reset_counter t slot =
  if slot < 0 || slot > Array.length t.table then
    invalid_arg "Sequencer.reset_counter: outside loaded table";
  t.counter <- slot

let counter t = t.counter

let next t =
  if t.counter >= Array.length t.table then
    invalid_arg "Sequencer.next: ran off the end of the loaded table";
  let word = t.table.(t.counter) in
  t.counter <- t.counter + 1;
  word
