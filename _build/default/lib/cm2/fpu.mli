(** Cycle-level model of the Weitek WTL3164 floating-point unit.

    The constraints the compiler must work around (section 4.2):

    - only chained multiply-add operations run at two flops per cycle;
    - a multiplication issued on cycle [k] becomes an operand of the
      addition started on cycle [k+2], and the sum lands in its
      destination register on cycle [k+4];
    - one operand of every multiplication must come from memory (the
      streamed coefficient), not from a register;
    - there are 32 internal registers.

    Semantics of this model: a register read on cycle [t] observes
    exactly the writes that have landed on cycles [<= t].  The
    just-in-time register reuse of section 5.3 (using a data element
    "just barely" before its register is overwritten by an accumulating
    chain) is therefore expressible and checkable: reading on cycle
    [k+3] a register whose write lands on [k+4] yields the old value.

    The model also counts flop slots so the harness can separate useful
    flops (the paper counts 5 multiplies + 4 adds for a 5-point stencil)
    from the discarded multiply-add work performed during load/store
    cycles (section 5.3: "there is no way not to store the result"). *)

type t

val create :
  ?add_latency:int ->
  ?writeback_latency:int ->
  ?single_precision:bool ->
  registers:int ->
  unit ->
  t
(** Fresh FPU at cycle 0, all registers 0.0.  The latencies default to
    the WTL3164 values (2 and 4).  With [single_precision] (default
    false) every product and sum rounds to IEEE single precision, as
    the 32-bit chip did; the default keeps double precision so results
    compare exactly against the host-side oracle, per the substitution
    note in DESIGN.md. *)

val round32 : float -> float
(** Round a value to the nearest IEEE single-precision number. *)

val registers : t -> int
val now : t -> int

val tick : t -> unit
(** Advance one cycle, landing any writes scheduled for the new cycle. *)

val advance_to : t -> int -> unit
(** Advance to an absolute cycle (no-op if already there or later). *)

val read : t -> int -> float
(** Value of a register as visible at the current cycle. *)

val poke : t -> int -> float -> unit
(** Set a register immediately; used only for initialization (pinning
    the zero and one registers before the microcode loop starts). *)

val schedule_write : t -> at:int -> reg:int -> float -> unit
(** A value lands in [reg] at absolute cycle [at]; the load path uses
    this because memory -> register transfers have their own latency
    through the interface chip.  Raises [Invalid_argument] if [at] is
    not in the future. *)

val issue_madd : t -> dst:int -> data:int -> coeff:float -> acc:int -> unit
(** Issue a chained multiply-add on the current cycle [k]:
    [dst <- read data * coeff + read acc], where the data operand is
    read at [k], the accumulator at [k] + add latency, and the result
    lands at [k] + writeback latency.  The coefficient comes from
    memory by construction of the type. *)

val pending_write : t -> reg:int -> bool
(** Is there an in-flight write to [reg] that has not landed yet? *)

val drain : t -> unit
(** Advance cycles until no writes or additions are in flight. *)

val total_flop_slots : t -> int
(** Two per multiply-add issued, useful or not. *)
