(** The two CM-2 storage formats for 32-bit data (section 3).

    The bit-serial processors naturally store a 32-bit word entirely in
    one processor's memory, one bit per cycle ({e processorwise}
    format); the off-the-shelf floating-point chip wants a word
    bit-parallel in one cycle.  The CM Fortran release the paper builds
    on stores 32-bit data {e slicewise}: the 32 bits of a word spread
    one per processor across a node's 32 processors, occupying one
    addressable memory slice — so a word reaches the interface chip in
    a single memory cycle and no transposition is ever needed, which is
    what frees the compiler to process data in batches smaller than 32.

    This module models both layouts bit-exactly over a node's memory
    slices (a slice = 32 bits, one per processor) and the transpose the
    old interface chip had to perform, so the format argument of
    section 3 is executable: tests check the round-trips and count the
    memory cycles each access pattern costs. *)

type slice = int32
(** One memory slice: bit [p] belongs to processor [p]. *)

val processors : int
(** 32 processors per node share one floating-point unit. *)

val processorwise_store : float array -> slice array
(** Store [processors] single-precision values the bit-serial way:
    value [p] occupies bit [p] of 32 consecutive slices (slice [i]
    holds bit [i] of every processor's word).  The array must have
    exactly [processors] elements. *)

val processorwise_load : slice array -> float array
(** Inverse of {!processorwise_store}. *)

val slicewise_store : float -> slice
(** Store one value bit-parallel: its 32 bits spread one per
    processor in a single slice. *)

val slicewise_load : slice -> float

val transpose : slice array -> slice array
(** The 32x32 bit transpose between the two formats (its own
    inverse); the fieldwise interface chip performed this for every
    batch of 32 words. *)

val processorwise_word_cycles : int
(** Memory cycles for one processor to access its whole word in
    processorwise format: 32 (one bit per cycle). *)

val slicewise_word_cycles : int
(** Memory cycles for the node to feed one word to the FPU in
    slicewise format: 1. *)
