(** The CM-2 instruction sequencer's scratch data memory.

    Section 4.3: the winning strategy keeps the {e dynamic parts} of
    floating-point instructions (register addresses and load/store
    control) in the sequencer's scratch data memory and feeds them to
    the floating-point units cycle by cycle.  The scratch memory is
    addressed by a counter that advances to consecutive locations
    without tying up the sequencer ALU; resetting the counter costs an
    ALU cycle.  Its capacity is the resource the compiler's
    LCM-minimization protects (section 5.4).

    The element type is abstract because the sequencer does not
    interpret dynamic parts; the microcode interpreter stores its
    instruction words here. *)

type 'a t

val create : capacity:int -> 'a t
(** Empty scratch memory holding at most [capacity] words. *)

val capacity : 'a t -> int
val loaded : 'a t -> int

val load : 'a t -> 'a array -> unit
(** Load a fresh table of dynamic parts (the run-time library does this
    once per stencil call).  Raises [Failure] if the table exceeds
    capacity — the compiler is responsible for never letting this
    happen, and the register allocator's compression heuristic exists
    precisely to keep unrolled tables small. *)

val reset_counter : 'a t -> int -> unit
(** Point the counter at an absolute slot.  Raises [Invalid_argument]
    outside the loaded table. *)

val counter : 'a t -> int

val next : 'a t -> 'a
(** Read the word under the counter and advance; raises
    [Invalid_argument] past the end of the loaded table. *)
