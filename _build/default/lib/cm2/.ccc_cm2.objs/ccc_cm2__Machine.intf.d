lib/cm2/machine.mli: Config Geometry Memory
