lib/cm2/slicewise.ml: Array Int32
