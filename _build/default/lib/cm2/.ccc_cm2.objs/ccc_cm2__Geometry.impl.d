lib/cm2/geometry.ml: Format List
