lib/cm2/router.ml: Geometry Hashtbl List
