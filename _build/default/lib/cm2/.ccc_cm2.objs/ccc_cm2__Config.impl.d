lib/cm2/config.ml: Format
