lib/cm2/machine.ml: Array Config Geometry Memory
