lib/cm2/fpu.mli:
