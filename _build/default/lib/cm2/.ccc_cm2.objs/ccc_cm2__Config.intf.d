lib/cm2/config.mli: Format
