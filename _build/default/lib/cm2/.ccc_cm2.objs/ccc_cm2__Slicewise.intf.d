lib/cm2/slicewise.mli:
