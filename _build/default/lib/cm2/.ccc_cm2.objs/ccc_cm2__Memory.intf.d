lib/cm2/memory.mli:
