lib/cm2/sequencer.mli:
