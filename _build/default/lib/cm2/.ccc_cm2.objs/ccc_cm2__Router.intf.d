lib/cm2/router.mli: Geometry
