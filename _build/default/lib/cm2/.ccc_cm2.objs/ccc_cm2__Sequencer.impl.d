lib/cm2/sequencer.ml: Array Printf
