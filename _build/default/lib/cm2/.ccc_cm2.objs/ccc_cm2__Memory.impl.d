lib/cm2/memory.ml: Array Printf
