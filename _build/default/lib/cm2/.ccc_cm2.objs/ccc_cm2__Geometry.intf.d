lib/cm2/geometry.mli: Format
