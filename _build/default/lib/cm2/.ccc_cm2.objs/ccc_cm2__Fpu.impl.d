lib/cm2/fpu.ml: Array Fun Int32 List Printf
