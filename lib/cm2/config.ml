type t = {
  node_rows : int;
  node_cols : int;
  clock_hz : float;
  fpu_registers : int;
  single_precision : bool;
  madd_add_latency : int;
  madd_writeback_latency : int;
  load_latency : int;
  static_issue_cycles : int;
  memory_op_cycles : int;
  madd_issue_cycles : int;
  scratch_counter_reset_cycles : int;
  loop_branch_cycles : int;
  pipe_reversal_cycles : int;
  line_overhead_cycles : int;
  halfstrip_startup_cycles : int;
  scratch_memory_words : int;
  comm_cycles_per_word : int;
  legacy_comm_cycles_per_word : int;
  frontend_call_overhead_s : float;
  frontend_dispatch_s : float;
  frontend_word_cycles : float;
  strength_reduced_frontend : bool;
  tile : int * int;
  fft_butterfly_cycles : float;
  fft_pointwise_cycles : float;
  fft_transpose_passes : int;
  fft_transpose_cycles_per_word : float;
  fft_setup_cycles : float;
}

let effective_call_s t =
  if t.strength_reduced_frontend then t.frontend_call_overhead_s /. 4.0
  else t.frontend_call_overhead_s

let effective_dispatch_s t =
  if t.strength_reduced_frontend then t.frontend_dispatch_s /. 8.0
  else t.frontend_dispatch_s

let effective_word_s t =
  let cycles =
    if t.strength_reduced_frontend then t.frontend_word_cycles /. 2.0
    else t.frontend_word_cycles
  in
  cycles /. t.clock_hz

(* Calibration notes: the FPU and sequencer latencies are taken
   directly from the paper (sections 4.2 and 4.3).  The cost constants
   (memory-op, line overhead, and the three front-end terms) were
   fitted once against the paper's Table 1 with bench/calibrate.exe and
   then frozen; the 21 Nov 90 rows come out front-end bound at ~1.8
   cycles of host preparation per dynamic word — matching section 7's
   remark that the front end was hard pressed to keep up — while the
   7 Dec 90 strength-reduced rows and the Gordon Bell production runs
   are machine-bound.  EXPERIMENTS.md records the per-row residuals. *)
let default =
  {
    node_rows = 4;
    node_cols = 4;
    clock_hz = 7.0e6;
    fpu_registers = 32;
    single_precision = false;
    madd_add_latency = 2;
    madd_writeback_latency = 4;
    load_latency = 1;
    static_issue_cycles = 1;
    memory_op_cycles = 1;
    madd_issue_cycles = 1;
    scratch_counter_reset_cycles = 1;
    loop_branch_cycles = 2;
    pipe_reversal_cycles = 2;
    line_overhead_cycles = 12;
    halfstrip_startup_cycles = 40;
    scratch_memory_words = 4096;
    comm_cycles_per_word = 8;
    legacy_comm_cycles_per_word = 32;
    frontend_call_overhead_s = 1500e-6;
    frontend_dispatch_s = 100e-6;
    frontend_word_cycles = 1.8;
    strength_reduced_frontend = false;
    (* Host-side execution geometry, not a CM-2 cost constant: the
       kernel blocks each node's subgrid into tiles of at most this
       many (rows, cols) — clamped to the subgrid — so a tile's
       destination span and coefficient rows stay L1-resident and the
       pool's work queue has enough grain to balance.  Calibrated by
       the bench/main.exe scaling tile sweep (EXPERIMENTS.md); it does
       not enter the cycle model, so Table-1 calibration is
       unaffected. *)
    tile = (16, 128);
    (* Transform-path cost constants (PR 10): butterflies and the
       spectral pointwise product are spread across the nodes like any
       data-parallel compute; the two transpose passes move the
       half-plane spectrum between row-major and column-major layout
       over the grid network; the setup term charges plan lookup and
       buffer embedding once per call.  Calibrated against the
       bench/main.exe fft sweep (EXPERIMENTS.md), separate from the
       frozen Table-1 constants — the compiled path's model is
       untouched. *)
    fft_butterfly_cycles = 1.0;
    fft_pointwise_cycles = 1.0;
    fft_transpose_passes = 2;
    fft_transpose_cycles_per_word = 0.25;
    fft_setup_cycles = 3000.0;
  }

let with_nodes ~rows ~cols t =
  if rows <= 0 || cols <= 0 then
    invalid_arg "Config.with_nodes: non-positive node grid";
  { t with node_rows = rows; node_cols = cols }

let full_machine = with_nodes ~rows:32 ~cols:64 default
let tuned_runtime t = { t with strength_reduced_frontend = true }
let node_count t = t.node_rows * t.node_cols

let pp ppf t =
  Format.fprintf ppf
    "@[<v>CM-2 model: %dx%d nodes @@ %.1f MHz@ registers=%d scratch=%d \
     words@ comm=%d cyc/word (legacy %d)@ frontend: call=%.0fus \
     dispatch=%.0fus word=%.2f cyc strength_reduced=%b@]"
    t.node_rows t.node_cols
    (t.clock_hz /. 1e6)
    t.fpu_registers t.scratch_memory_words t.comm_cycles_per_word
    t.legacy_comm_cycles_per_word
    (t.frontend_call_overhead_s *. 1e6)
    (t.frontend_dispatch_s *. 1e6)
    t.frontend_word_cycles t.strength_reduced_frontend
