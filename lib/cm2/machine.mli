(** A simulated CM-2: configuration, node-grid geometry, and one memory
    per floating-point node.

    The machine is SIMD: every node executes the same instruction
    stream, so the microcode interpreter runs the data computation on
    each node's memory but accounts cycles once.  Node memories are
    sized generously; the paper's arrays (a 64 x 64 to 128 x 256
    subgrid per node plus halo temporaries and coefficient arrays) fit
    comfortably. *)

type t

val create : ?memory_words:int -> Config.t -> t
(** Build a machine from a configuration.  [memory_words] is the
    per-node memory size (default 1,048,576 words). *)

val config : t -> Config.t
val geometry : t -> Geometry.t
val node_count : t -> int

val uid : t -> int
(** Process-globally-unique machine id.  The runtime's domain-safety
    probes offset node-indexed access-log slots by it, so two machines
    alive at once (one per serve shard since PR 7) never alias. *)

val memory : t -> int -> Memory.t
(** Memory of a node by id.  Raises [Invalid_argument] out of range. *)

val alloc_all : t -> words:int -> Memory.region
(** Allocate the same region on every node (SIMD allocation: the
    run-time library gives arrays identical layouts on all nodes).
    Returns the common region; raises [Failure] if any node cannot
    satisfy it or if layouts diverge. *)

val free_all_after : t -> Memory.region -> unit
(** Roll every node's allocator back past [region]. *)

val iter_nodes : t -> (int -> Memory.t -> unit) -> unit
