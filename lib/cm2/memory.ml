type t = { store : float array; mutable next_free : int }
type region = { base : int; words : int }

let create ~words =
  if words <= 0 then invalid_arg "Memory.create: non-positive size";
  { store = Array.make words 0.0; next_free = 0 }

let words t = Array.length t.store
let raw t = t.store

let read t addr =
  if addr < 0 || addr >= Array.length t.store then
    invalid_arg (Printf.sprintf "Memory.read: address %d out of bounds" addr);
  t.store.(addr)

let write t addr v =
  if addr < 0 || addr >= Array.length t.store then
    invalid_arg (Printf.sprintf "Memory.write: address %d out of bounds" addr);
  t.store.(addr) <- v

let alloc t ~words:n =
  if n < 0 then invalid_arg "Memory.alloc: negative size";
  if t.next_free + n > Array.length t.store then
    failwith
      (Printf.sprintf "Memory.alloc: out of node memory (%d requested, %d free)"
         n
         (Array.length t.store - t.next_free));
  let region = { base = t.next_free; words = n } in
  t.next_free <- t.next_free + n;
  region

let free_all_after t region =
  let high = region.base + region.words in
  if high > t.next_free then invalid_arg "Memory.free_all_after: stale region";
  t.next_free <- high

let words_free t = Array.length t.store - t.next_free

let blit_out t region =
  if region.base < 0 || region.base + region.words > Array.length t.store then
    invalid_arg "Memory.blit_out: bad region";
  Array.sub t.store region.base region.words

let blit_in t region data =
  if Array.length data <> region.words then
    invalid_arg "Memory.blit_in: size mismatch";
  Array.blit data 0 t.store region.base region.words
