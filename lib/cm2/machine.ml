type t = {
  config : Config.t;
  geometry : Geometry.t;
  memories : Memory.t array;
  uid : int;
}

(* Process-globally-unique machine ids: several machines can be alive
   at once (one resident engine per serve shard), and the domain-safety
   probes namespace their node-indexed regions by this id so two
   machines' node 0 never alias in the access log. *)
let uids = Atomic.make 0

let create ?(memory_words = 1 lsl 20) config =
  let geometry =
    Geometry.create ~rows:config.Config.node_rows ~cols:config.Config.node_cols
  in
  let memories =
    Array.init (Geometry.node_count geometry) (fun _ ->
        Memory.create ~words:memory_words)
  in
  { config; geometry; memories; uid = Atomic.fetch_and_add uids 1 }

let config t = t.config
let uid t = t.uid
let geometry t = t.geometry
let node_count t = Array.length t.memories

let memory t node =
  if node < 0 || node >= Array.length t.memories then
    invalid_arg "Machine.memory: node out of range";
  t.memories.(node)

let alloc_all t ~words =
  if Array.length t.memories = 0 then invalid_arg "Machine.alloc_all: no nodes";
  let first = Memory.alloc t.memories.(0) ~words in
  Array.iteri
    (fun i mem ->
      if i > 0 then begin
        let region = Memory.alloc mem ~words in
        if region <> first then
          failwith "Machine.alloc_all: node memory layouts diverged"
      end)
    t.memories;
  first

let free_all_after t region =
  Array.iter (fun mem -> Memory.free_all_after mem region) t.memories

let iter_nodes t f = Array.iteri f t.memories
