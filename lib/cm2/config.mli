(** Machine-model parameters for the simulated Connection Machine CM-2.

    Every cost in the cycle model is a named constant here, so that the
    benchmark harness can calibrate the simulation against the paper's
    published numbers and the ablation benches can flip individual design
    choices (legacy communication primitive, front-end strength
    reduction, ...) without touching the compiler or runtime. *)

type t = {
  node_rows : int;  (** rows of the 2-D node grid *)
  node_cols : int;  (** columns of the 2-D node grid *)
  clock_hz : float;
      (** sequencer / FPU clock; the paper's measurements all ran at
          7 MHz (section 7) *)
  fpu_registers : int;  (** WTL3164 register-file size; 32 on the CM-2 *)
  single_precision : bool;
      (** round every product and sum to IEEE single precision, as the
          32-bit WTL3164 did; off by default so simulated results
          compare exactly against the double-precision oracle (see the
          substitution table in DESIGN.md) *)
  madd_add_latency : int;
      (** cycles from issuing a multiply until the product enters the
          adder; 2 on the WTL3164 (section 4.2) *)
  madd_writeback_latency : int;
      (** cycles from issuing a multiply until the chained sum lands in
          its destination register; 4 on the WTL3164 (section 4.2) *)
  load_latency : int;
      (** cycles for a memory word to traverse the interface chip into a
          register (section 5.3 mentions one cycle of latency) *)
  static_issue_cycles : int;
      (** cycles to latch the static part of a floating-point
          instruction (section 4.3) *)
  memory_op_cycles : int;
      (** sequencer cycles consumed per load or store dynamic part,
          including address generation by the sequencer ALU *)
  madd_issue_cycles : int;
      (** sequencer cycles per multiply-add dynamic part; the scratch
          counter advances without the ALU, which is left free to
          generate the streamed coefficient address (section 4.3) *)
  scratch_counter_reset_cycles : int;
      (** ALU cycles to load a new scratch-memory counter value *)
  loop_branch_cycles : int;
      (** extra cycles at each inner-loop end: a conditional branch
          cannot share a cycle with a dynamic-part issue (section 4.3) *)
  pipe_reversal_cycles : int;
      (** penalty when the memory pipe changes direction between
          loading and storing (section 5.3) *)
  line_overhead_cycles : int;
      (** fixed per-line sequencer cycles (line-start address setup) *)
  halfstrip_startup_cycles : int;
      (** fixed cost to enter the microcode loop for one half-strip *)
  scratch_memory_words : int;
      (** capacity of the sequencer scratch data memory available for
          dynamic parts; bounds the register-access unrolling *)
  comm_cycles_per_word : int;
      (** node-level grid primitive: cycles per word moved, all four
          directions concurrently (section 4.1) *)
  legacy_comm_cycles_per_word : int;
      (** pre-existing processor-level primitive: cycles per word in a
          single direction (baseline for the ablation) *)
  frontend_call_overhead_s : float;
      (** front-end (host) time to launch one stencil call *)
  frontend_dispatch_s : float;
      (** front-end time to dispatch one half-strip of work *)
  frontend_word_cycles : float;
      (** front-end preparation time per dynamic-part word, expressed
          in CM clock cycles.  The front end prepares the next
          half-strip's parameters while the microcode runs; when this
          exceeds the microcode's own pace the CM idles — section 7:
          "the microcode loops are so fast that the front end computer
          is hard pressed to keep up" *)
  strength_reduced_frontend : bool;
      (** section 7: careful recoding with strength reduction (no
          integer multiplications) of the front-end inner loops;
          shrinks the dispatch and per-word costs *)
  tile : int * int;
      (** host-side kernel blocking, (rows, cols) per tile: the Fast
          backend's lowered kernel walks each node's subgrid tile by
          tile so destination spans and coefficient rows stay cache
          resident, and the pool's shared work queue schedules whole
          tiles.  Clamped to the subgrid at specialization time; purely
          a host execution parameter — it never enters the cycle model
          or the Table-1 calibration.  Calibrated by the
          [bench/main.exe scaling] tile sweep (EXPERIMENTS.md). *)
  fft_butterfly_cycles : float;
      (** transform path (PR 10): cycles per radix-2 butterfly of the
          zero-padded convolution transform, spread across the nodes.
          Calibrated by the [bench/main.exe fft] sweep; enters only
          {!Ccc_microcode.Cost.fft_cycles}, never Table 1. *)
  fft_pointwise_cycles : float;
      (** cycles per spectral bin of the pointwise coefficient-image
          product (one complex multiply per bin of the Hermitian
          half-plane). *)
  fft_transpose_passes : int;
      (** grid-network passes needed to re-lay the spectrum between the
          row and column transforms (forward and inverse: 2). *)
  fft_transpose_cycles_per_word : float;
      (** cycles per word of each transpose pass — the transform path's
          communication term, playing the role
          {!comm_cycles_per_word} plays for halo exchange. *)
  fft_setup_cycles : float;
      (** fixed per-call cost of the transform path: plan lookup,
          buffer embedding, and output windowing.  Keeps the planner
          honest at small grids, where the compiled path's short
          strips beat the transform's fixed costs. *)
}

val effective_call_s : t -> float
(** {!frontend_call_overhead_s}, divided by 4 when strength-reduced. *)

val effective_dispatch_s : t -> float
(** {!frontend_dispatch_s}, divided by 8 when strength-reduced. *)

val effective_word_s : t -> float
(** Seconds of front-end preparation per dynamic word:
    {!frontend_word_cycles} at the machine clock, halved when
    strength-reduced. *)

val default : t
(** A 16-node (4 x 4) single-board test machine, the configuration used
    for the paper's preliminary timings. *)

val full_machine : t
(** The full 65,536-processor CM-2: 2,048 nodes as a 32 x 64 grid. *)

val with_nodes : rows:int -> cols:int -> t -> t
(** [with_nodes ~rows ~cols t] is [t] resized to a [rows] x [cols] node
    grid. Raises [Invalid_argument] unless both are positive. *)

val tuned_runtime : t -> t
(** Enable the December-1990 run-time library tuning (strength-reduced
    front end); see the 7 Dec 90 rows of the paper's table. *)

val node_count : t -> int

val pp : Format.formatter -> t -> unit
