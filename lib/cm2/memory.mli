(** Per-node parallel memory.

    Each CM-2 node owns the memory of its 32 bit-serial processors; in
    slicewise format a 32-bit word occupies one memory slice and moves
    to the floating-point chip in a single cycle (section 3).  We model
    the node memory as a flat word-addressed store of floats with a
    bump allocator, which is how the run-time library obtains subgrid
    and halo-temporary storage. *)

type t

type region = { base : int; words : int }
(** A contiguous allocation. *)

val create : words:int -> t
(** Fresh zero-filled memory of [words] words. *)

val words : t -> int

val raw : t -> float array
(** The node's flat word store itself (not a copy).  This is the
    precompiled-kernel fast path: {!Ccc_runtime.Kernel} resolves every
    operand to a word address at lowering time — the "dynamic parts"
    the paper computes once per stencil call (section 5) — and then
    walks the raw store without per-access bounds checks.  All other
    callers should use the checked {!read}/{!write}. *)

val read : t -> int -> float
(** [read t addr].  Raises [Invalid_argument] out of bounds. *)

val write : t -> int -> float -> unit

val alloc : t -> words:int -> region
(** Allocate a fresh region.  Raises [Failure] when memory is
    exhausted. *)

val free_all_after : t -> region -> unit
(** Roll the bump allocator back so that [region] is the last live
    allocation; models the run-time library releasing halo temporaries
    after a stencil call. *)

val words_free : t -> int

val blit_out : t -> region -> float array
(** Copy a region's contents to a fresh array. *)

val blit_in : t -> region -> float array -> unit
(** Fill a region from an array of exactly [region.words] elements. *)
