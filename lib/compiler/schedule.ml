open Ccc_stencil
module Plan = Ccc_microcode.Plan
module Instr = Ccc_microcode.Instr

module Finding = Ccc_analysis.Finding

exception Infeasible of Finding.t

let infeasible ?phase ?cycle fmt =
  Format.kasprintf
    (fun m ->
      raise (Infeasible (Finding.make ?phase ?cycle Finding.Infeasible m)))
    fmt

(* The slots a chain occupies in the multiply-add section are fixed by
   the pair structure alone (section 5.3: results are computed in
   interleaved pairs), so issue cycles are known before tap ordering:
   pair [p] starts after [p] full pairs, the two chains of a pair issue
   on alternate slots, and a final unpartnered chain interleaves with
   discarded-slot nops to preserve its own accumulate spacing. *)
type chain_layout = {
  first_issue : int array;  (** cycle of each chain's first multiply-add *)
  section_cycles : int;  (** total length of the multiply-add section *)
}

let layout_chains (config : Ccc_cm2.Config.t) ~width ~chain_len =
  let madd = config.madd_issue_cycles in
  let first_issue = Array.make width 0 in
  let cycle = ref 0 in
  let emit_slot chain i =
    if i = 0 then first_issue.(chain) <- !cycle;
    cycle := !cycle + madd
  in
  let rec pairs j =
    if j < width then
      if j + 1 < width then begin
        for i = 0 to chain_len - 1 do
          emit_slot j i;
          emit_slot (j + 1) i
        done;
        pairs (j + 2)
      end
      else
        (* Lone final chain: a nop after each multiply-add keeps the
           accumulator spacing; the trailing nop is dropped. *)
        for i = 0 to chain_len - 1 do
          emit_slot j i;
          if i < chain_len - 1 then incr cycle
        done
  in
  pairs 0;
  { first_issue; section_cycles = !cycle }

type ring_info = {
  ring : Plan.ring;
  occupied : int list;  (** row offsets present in this column *)
}

(* Lay the merged ring buffers out over the register file, source
   after source, column after column, starting just past the pinned
   registers. *)
let build_rings multistencils (alloc : Regalloc.merged_allocation) ~first_data
    =
  let base = ref first_data in
  List.map
    (fun ((src, dcol), size) ->
      let ms = List.assoc src multistencils in
      let column =
        List.find
          (fun (c : Multistencil.column) -> c.dcol = dcol)
          (Multistencil.columns ms)
      in
      let min_drow = List.hd column.Multistencil.occupied in
      let ring = { Plan.src; dcol; base = !base; size; min_drow } in
      base := !base + size;
      { ring; occupied = column.Multistencil.occupied })
    alloc.Regalloc.merged_sizes

let build_multi config (multi : Multi.t) multistencils
    (alloc : Regalloc.merged_allocation) =
  let source_taps = Multi.taps multi in
  let ntaps = List.length source_taps in
  let bias = Multi.bias multi in
  let zero_reg = 0 in
  let one_reg = match bias with Some _ -> Some 1 | None -> None in
  let first_data = match one_reg with Some _ -> 2 | None -> 1 in
  let registers_used = first_data + alloc.Regalloc.merged_registers in
  if registers_used > config.Ccc_cm2.Config.fpu_registers then
    failwith
      (Printf.sprintf
         "Schedule.build: allocation needs %d registers but the file has %d"
         registers_used config.Ccc_cm2.Config.fpu_registers);
  let rings = build_rings multistencils alloc ~first_data in
  let ring_of src dcol =
    match
      List.find_opt
        (fun r -> r.ring.Plan.src = src && r.ring.Plan.dcol = dcol)
        rings
    with
    | Some r -> r
    | None -> infeasible "no ring buffer for source %d column %d" src dcol
  in
  let reg_of_position ~line ~src (off : Offset.t) =
    let { ring; _ } = ring_of src off.dcol in
    Plan.ring_register ring ~line ~depth:(off.drow - ring.Plan.min_drow)
  in
  let width =
    match multistencils with
    | (_, ms) :: _ -> Multistencil.width ms
    | [] -> invalid_arg "Schedule.build_multi: no sources"
  in
  let chain_len = ntaps + (match bias with Some _ -> 1 | None -> 0) in
  let layout = layout_chains config ~width ~chain_len in
  let wb = config.Ccc_cm2.Config.madd_writeback_latency in
  let primary = Multi.primary_source multi in
  let primary_ms = List.assoc primary multistencils in
  (* One chain element per term: a (source, position) data tap or the
     bias.  Coefficient stream index = position in the Multi.taps
     order, bias last. *)
  let chain_elements occurrence =
    List.mapi
      (fun i (st : Multi.source_tap) ->
        let position =
          Offset.add st.Multi.tap.Tap.offset
            (Offset.make ~drow:0 ~dcol:occurrence)
        in
        (Some (st.Multi.source, position), i))
      source_taps
    @ (match bias with Some _ -> [ (None, ntaps) ] | None -> [])
  in
  let make_phase p =
    let tag_reg =
      Array.init width (fun j ->
          reg_of_position ~line:p ~src:primary
            (Multistencil.tagged_position primary_ms ~occurrence:j))
    in
    (* Deadline: the cycle on which a register's first overwriting
       accumulation lands, relative to the start of the madd section. *)
    let deadline reg =
      let dl = ref max_int in
      Array.iteri
        (fun j tag ->
          if tag = reg then dl := min !dl (layout.first_issue.(j) + wb))
        tag_reg;
      !dl
    in
    let chain_madds j =
      let keyed =
        List.map
          (fun (position, coeff_index) ->
            let data_reg =
              match position with
              | Some (src, pos) -> reg_of_position ~line:p ~src pos
              | None -> Option.get one_reg
            in
            ((deadline data_reg, coeff_index), data_reg, coeff_index))
          (chain_elements j)
      in
      let ordered =
        List.sort (fun (ka, _, _) (kb, _, _) -> compare ka kb) keyed
      in
      List.mapi
        (fun i (_, data_reg, coeff_index) ->
          let issue =
            layout.first_issue.(j) + (i * 2 * config.madd_issue_cycles)
          in
          let dl = deadline data_reg in
          if issue >= dl then
            infeasible ~phase:p ~cycle:issue
              "chain %d: tap reading r%d issues on cycle %d but the register \
               is overwritten on cycle %d"
              j data_reg issue dl;
          Instr.Madd
            {
              dst = tag_reg.(j);
              data = data_reg;
              coeff_index;
              coeff_dcol = j;
              acc = (if i = 0 then zero_reg else tag_reg.(j));
            })
        ordered
    in
    let chains = Array.init width chain_madds in
    (* Interleave per the fixed layout. *)
    let madds = ref [] in
    let rec emit_pairs j =
      if j < width then
        if j + 1 < width then begin
          List.iter2
            (fun a b -> madds := b :: a :: !madds)
            chains.(j)
            chains.(j + 1);
          emit_pairs (j + 2)
        end
        else
          List.iteri
            (fun i m ->
              madds := m :: !madds;
              if i < chain_len - 1 then madds := Instr.Nop :: !madds)
            chains.(j)
    in
    emit_pairs 0;
    let loads =
      List.map
        (fun { ring; _ } ->
          Instr.Load
            {
              reg = Plan.ring_register ring ~line:p ~depth:0;
              src = ring.Plan.src;
              drow = ring.Plan.min_drow;
              dcol = ring.Plan.dcol;
            })
        rings
    in
    let stores =
      List.init width (fun j -> Instr.Store { reg = tag_reg.(j); dcol = j })
    in
    { Plan.loads; madds = List.rev !madds; stores }
  in
  let unroll = alloc.Regalloc.merged_unroll in
  let phases = Array.init unroll make_phase in
  (* Warmup prologue: fill every ring down to its column's deepest
     occupied element.  Warmup step i stands for virtual line i - len. *)
  let span_of { occupied; ring } =
    List.fold_left max min_int occupied - ring.Plan.min_drow + 1
  in
  let max_depth =
    List.fold_left (fun acc info -> max acc (span_of info - 1)) 0 rings
  in
  let prologue =
    Array.init max_depth (fun i ->
        let v = i - max_depth in
        List.filter_map
          (fun ({ ring; _ } as info) ->
            if span_of info > -v then
              Some
                (Instr.Load
                   {
                     reg = Plan.ring_register ring ~line:v ~depth:0;
                     src = ring.Plan.src;
                     drow = ring.Plan.min_drow;
                     dcol = ring.Plan.dcol;
                   })
            else None)
          rings)
  in
  let coeff_streams =
    Array.of_list
      (List.map (fun (st : Multi.source_tap) -> st.Multi.tap.Tap.coeff)
         source_taps
      @ match bias with Some c -> [ c ] | None -> [])
  in
  let dynamic_words =
    Array.fold_left
      (fun acc phase ->
        acc
        + List.length phase.Plan.loads
        + List.length phase.Plan.madds
        + List.length phase.Plan.stores)
      0 phases
    + Array.fold_left (fun acc l -> acc + List.length l) 0 prologue
  in
  {
    Plan.width;
    multi;
    multistencils;
    rings = List.map (fun r -> r.ring) rings;
    unroll;
    phases;
    prologue;
    zero_reg;
    one_reg;
    registers_used;
    dynamic_words;
    coeff_streams;
  }

let build config ms (alloc : Regalloc.allocation) =
  let multi = Multi.of_pattern (Multistencil.pattern ms) in
  let merged =
    {
      Regalloc.merged_sizes =
        List.map
          (fun (dcol, size) -> ((0, dcol), size))
          alloc.Regalloc.ring_sizes;
      merged_unroll = alloc.Regalloc.unroll;
      merged_registers = alloc.Regalloc.data_registers;
    }
  in
  build_multi config multi [ (0, ms) ] merged

(* Static hazard verification, independent of the builder's own
   bookkeeping: replay each phase's issue cycles and confirm reads beat
   overwrites and stores follow landings. *)
let check_hazards (config : Ccc_cm2.Config.t) (plan : Plan.t) =
  let wb = config.madd_writeback_latency in
  Array.iteri
    (fun p phase ->
      let fail ?cycle check fmt =
        Format.kasprintf
          (fun m ->
            raise (Finding.Failed [ Finding.make ~phase:p ?cycle check m ]))
          fmt
      in
      (* First pass: when does each register's first madd write land,
         and when does its last write land? *)
      let first_land = Hashtbl.create 16 in
      let last_land = Hashtbl.create 16 in
      let cycle = ref 0 in
      List.iter
        (fun slot ->
          (match slot with
          | Instr.Madd { dst; _ } ->
              let lands_at = !cycle + wb in
              if not (Hashtbl.mem first_land dst) then
                Hashtbl.add first_land dst lands_at;
              Hashtbl.replace last_land dst lands_at
          | Instr.Load _ | Instr.Store _ | Instr.Nop -> ());
          cycle := !cycle + Instr.cycles config slot)
        phase.Plan.madds;
      let madd_section = !cycle in
      (* Second pass: verify data reads. *)
      let cycle = ref 0 in
      List.iter
        (fun slot ->
          (match slot with
          | Instr.Madd { data; _ } -> begin
              match Hashtbl.find_opt first_land data with
              | Some lands_at when !cycle >= lands_at ->
                  fail ~cycle:!cycle Finding.Hazard
                    "madd on cycle %d reads r%d after its overwrite lands on \
                     cycle %d"
                    !cycle data lands_at
              | Some _ | None -> ()
            end
          | Instr.Load _ | Instr.Store _ | Instr.Nop -> ());
          cycle := !cycle + Instr.cycles config slot)
        phase.Plan.madds;
      (* Third pass: stores happen after the final landing. *)
      let drain =
        max 0 (config.madd_writeback_latency - config.pipe_reversal_cycles)
      in
      let store_cycle =
        ref (madd_section + config.pipe_reversal_cycles + drain)
      in
      List.iter
        (fun slot ->
          (match slot with
          | Instr.Store { reg; _ } -> begin
              match Hashtbl.find_opt last_land reg with
              | Some lands_at when !store_cycle < lands_at ->
                  fail ~cycle:!store_cycle Finding.Hazard
                    "store of r%d on cycle %d precedes its landing on cycle %d"
                    reg !store_cycle lands_at
              | Some _ -> ()
              | None ->
                  fail ~cycle:!store_cycle Finding.Store_mismatch
                    "store of r%d which no chain wrote" reg
            end
          | Instr.Load _ | Instr.Madd _ | Instr.Nop -> ());
          store_cycle := !store_cycle + Instr.cycles config slot)
        phase.Plan.stores;
      (* Loads target the slot the ring rotation designates. *)
      List.iter
        (fun slot ->
          match slot with
          | Instr.Load { reg; src; dcol; _ } -> begin
              match
                List.find_opt
                  (fun r -> r.Plan.src = src && r.Plan.dcol = dcol)
                  plan.Plan.rings
              with
              | None ->
                  fail Finding.Ring_layout
                    "load for unknown column %d of source %d" dcol src
              | Some ring ->
                  let expected = Plan.ring_register ring ~line:p ~depth:0 in
                  if reg <> expected then
                    fail Finding.Ring_layout
                      "load for column %d targets r%d, ring expects r%d" dcol
                      reg expected
            end
          | Instr.Store _ | Instr.Madd _ | Instr.Nop -> ())
        phase.Plan.loads)
    plan.Plan.phases
