(** The compiler driver (section 5.3): attempt multistencil widths 8,
    4, 2 and 1, keeping every width that fits the register file and
    whose unrolled dynamic-part table fits the sequencer scratch
    memory.  "It is all right if some of these don't work": the
    run-time library shaves off, at each step, the widest strip for
    which a workable multistencil exists. *)

type t = {
  pattern : Ccc_stencil.Pattern.t;
  plans : Ccc_microcode.Plan.t list;
      (** descending by width; never empty (width 1 always fits for
          any pattern this compiler accepts).  Every plan here has
          passed [Schedule.check_hazards] {e and} the standalone
          analyzer ([Ccc_analysis.Verify]) — an analyzer finding on
          compiler output raises {!Ccc_analysis.Finding.Failed}
          instead of rejecting the width, because it means a compiler
          bug, not an infeasible stencil *)
  rejected : (int * Ccc_analysis.Finding.t) list;
      (** widths that did not work, with the reason — the feedback of
          section 6, as structured findings
          ([Register_pressure] / [Scratch_pressure] / [Infeasible]) *)
}

val candidate_widths : int list
(** [8; 4; 2; 1] *)

val compile :
  ?obs:Ccc_obs.Obs.t ->
  ?widths:int list ->
  Ccc_cm2.Config.t ->
  Ccc_stencil.Pattern.t ->
  (t, (int * Ccc_analysis.Finding.t) list) result
(** [Error] only when every candidate width fails (a pattern so tall
    that its single-stencil column spans exhaust the register file, or
    whose table exceeds scratch memory); the error carries every
    width's rejection finding, widest first — the structured form of
    the section-6 feedback, not a flattened string.  [widths] defaults
    to {!candidate_widths}; the 1989 library-routine baseline restricts
    it to [4; 2; 1] (the width-8 multistencil construction postdates
    those routines).  [obs] (default disabled) opens a [compile] span
    with a [compile.width] child per candidate, each covering the
    multistencil build, register allocation, scheduling, and the
    analyzer post-pass. *)

val no_workable : (int * Ccc_analysis.Finding.t) list -> string
(** Render a total-rejection error as one line (the CLI and [failwith]
    fallbacks). *)

val rebind : t -> Ccc_stencil.Pattern.t -> t
(** [rebind t pattern] retargets a compilation at a pattern with the
    same tap offsets, bias arity and boundary but possibly different
    coefficient naming: the schedules, rings, register assignments and
    unrolled tables are reused verbatim, and only the embedded pattern,
    multistencils and coefficient-stream table are replaced.  This is
    the plan-cache hit path of {!Ccc_service.Engine}; the result is
    analyzer-clean whenever [t] was.  Raises [Invalid_argument] when
    the patterns differ beyond coefficient naming. *)

val plan_for_width : t -> int -> Ccc_microcode.Plan.t option

val widest : t -> Ccc_microcode.Plan.t

val best_width_at_most : t -> int -> Ccc_microcode.Plan.t option
(** The widest available plan not exceeding the remaining strip width;
    the run-time library's shaving rule. *)

val pp_report : Format.formatter -> t -> unit
(** The per-width compilation report the CLI shows: registers, ring
    sizes, unroll factors, scratch words, rejections. *)

(** {1 Multi-source (fused) compilation}

    The paper's future work (section 7): "future versions of the
    compiler should be able to handle all ten terms as one stencil
    pattern".  A fused compilation covers an assignment whose terms
    shift several distinct arrays; each source contributes its own
    multistencil and ring buffers to a shared register file, and the
    run-time library exchanges one halo per source. *)

type fused = {
  multi : Ccc_stencil.Multi.t;
  fused_plans : Ccc_microcode.Plan.t list;  (** descending by width *)
  fused_rejected : (int * Ccc_analysis.Finding.t) list;
}

val compile_fused :
  ?obs:Ccc_obs.Obs.t ->
  ?widths:int list ->
  Ccc_cm2.Config.t ->
  Ccc_stencil.Multi.t ->
  (fused, (int * Ccc_analysis.Finding.t) list) result

val fused_widest : fused -> Ccc_microcode.Plan.t
val fused_best_width_at_most : fused -> int -> Ccc_microcode.Plan.t option
val pp_fused_report : Format.formatter -> fused -> unit
