(** Instruction scheduling for one multistencil width (section 5.3).

    Produces the unrolled register-access patterns (the dynamic-part
    table) for a strip plan:

    - the {e leading edge} loads: one element per multistencil column
      per line (per source, in the multi-source generalization),
      placed in the next slot of that column's ring buffer;
    - the multiply-add chains, computed in interleaved pairs to match
      the WTL3164 timing: the two chains of a pair issue on alternate
      cycles, each accumulating into the register that holds the tagged
      (bottom-row leftmost) data element of its own stencil occurrence,
      seeded from the pinned zero register;
    - within a chain, taps are ordered by the {e deadline} of the
      register they read: a tap whose register is about to be
      overwritten by an accumulation (its own tag, or the pair
      partner's tag — the paper's "just barely allow" case) issues
      first, so every read lands before the overwriting write;
    - the result stores, recycled from the tagged registers.

    Scheduling fails only if some tap cannot meet its deadline, which
    the pair structure makes impossible for left-to-right processing —
    but the checker verifies rather than assumes. *)

exception Infeasible of Ccc_analysis.Finding.t
(** A deadline the scheduler could not meet, as a structured finding
    (check {!Ccc_analysis.Finding.Infeasible}), so the compiler driver
    and CLI report it uniformly with the analyzer's own output. *)

val build :
  Ccc_cm2.Config.t ->
  Ccc_stencil.Multistencil.t ->
  Regalloc.allocation ->
  Ccc_microcode.Plan.t
(** Build the full plan for an ordinary single-source stencil: rings,
    phases for every unroll step, and the warmup prologue.  Raises
    {!Infeasible} if a deadline cannot be met (defensive; no
    recognizable pattern triggers it) and [Failure] if the register
    file is too small for the pinned registers plus the allocation. *)

val build_multi :
  Ccc_cm2.Config.t ->
  Ccc_stencil.Multi.t ->
  (int * Ccc_stencil.Multistencil.t) list ->
  Regalloc.merged_allocation ->
  Ccc_microcode.Plan.t
(** The future-work generalization: one plan over several source
    arrays, each contributing its own multistencil (all of the same
    width) and ring buffers.  The tagged accumulators come from
    {!Ccc_stencil.Multi.primary_source}, whose bottom-most-row
    argument survives the generalization. *)

val check_hazards : Ccc_cm2.Config.t -> Ccc_microcode.Plan.t -> unit
(** Static verification of one plan: simulate issue cycles for every
    phase and confirm that each data-register read occurs strictly
    before the first in-flight write to that register lands, that
    stores read landed values, and that loads target exactly the slot
    their column's ring rotation designates.  Raises
    {!Ccc_analysis.Finding.Failed} on violation.

    This is the builder's own inline check; the standalone analyzer
    ([Ccc_analysis.Verify], run by [Compile] on every produced plan)
    re-proves the same properties — and more — from an independent
    abstract interpretation. *)
