module Finding = Ccc_analysis.Finding
module Verify = Ccc_analysis.Verify
module Obs = Ccc_obs.Obs
module Tr = Ccc_obs.Trace

type t = {
  pattern : Ccc_stencil.Pattern.t;
  plans : Ccc_microcode.Plan.t list;
  rejected : (int * Finding.t) list;
}

let candidate_widths = [ 8; 4; 2; 1 ]

(* Every plan this driver returns has passed both the scheduler's own
   hazard check and the standalone analyzer — a plan either side
   rejects is a compiler bug, reported loudly as Finding.Failed. *)
let post_check config plan =
  Schedule.check_hazards config plan;
  Verify.verify_exn config plan

let try_width ?(obs = Obs.disabled) (config : Ccc_cm2.Config.t) pattern width =
  Obs.span obs ~attrs:[ ("width", Tr.Int width) ] "compile.width" @@ fun () ->
  let ms =
    Obs.span obs "compile.multistencil" (fun () ->
        Ccc_stencil.Multistencil.make pattern ~width)
  in
  let pinned = Ccc_stencil.Multistencil.pinned_registers ms in
  let available = config.fpu_registers - pinned in
  match Obs.span obs "compile.regalloc" (fun () -> Regalloc.allocate ms ~available) with
  | Error { needed; available } ->
      Error
        (Finding.makef Finding.Register_pressure
           "register pressure: %d data registers needed, %d available" needed
           available)
  | Ok alloc -> begin
      match Obs.span obs "compile.schedule" (fun () -> Schedule.build config ms alloc) with
      | plan ->
          if plan.Ccc_microcode.Plan.dynamic_words > config.scratch_memory_words
          then
            Error
              (Finding.makef Finding.Scratch_pressure
                 "scratch pressure: %d dynamic-part words exceed the %d-word \
                  scratch memory"
                 plan.Ccc_microcode.Plan.dynamic_words
                 config.scratch_memory_words)
          else begin
            Obs.span obs "compile.lint" (fun () -> post_check config plan);
            Tr.add_attr obs.Obs.trace "registers"
              (Tr.Int plan.Ccc_microcode.Plan.registers_used);
            Ok plan
          end
      | exception Schedule.Infeasible finding -> Error finding
    end

let no_workable rejected =
  Printf.sprintf "no workable multistencil width: %s"
    (String.concat "; "
       (List.map
          (fun (w, f) -> Printf.sprintf "width %d: %s" w f.Finding.message)
          rejected))

let compile ?(obs = Obs.disabled) ?(widths = candidate_widths) config pattern =
  Obs.span obs
    ~attrs:[ ("taps", Tr.Int (Ccc_stencil.Pattern.tap_count pattern)) ]
    "compile"
  @@ fun () ->
  let widths = List.sort_uniq (fun a b -> compare b a) widths in
  let plans, rejected =
    List.fold_left
      (fun (plans, rejected) width ->
        match try_width ~obs config pattern width with
        | Ok plan -> (plan :: plans, rejected)
        | Error finding -> (plans, (width, finding) :: rejected))
      ([], []) widths
  in
  match List.rev plans with
  | [] -> Error (List.rev rejected)
  | plans -> Ok { pattern; plans; rejected = List.rev rejected }

(* The plan-cache hit path: a pattern that matches a previous
   compilation up to coefficient naming reuses its schedule verbatim.
   The multistencil geometry, rings, unrolled tables and register
   assignments depend only on the tap offsets, so only the embedded
   statement views need retargeting: the pattern, the per-source
   multistencils, and the positional coefficient-stream table. *)
let rebind t pattern =
  let module P = Ccc_stencil.Pattern in
  let old_taps = P.taps t.pattern and new_taps = P.taps pattern in
  let same_shape =
    List.length old_taps = List.length new_taps
    && List.for_all2
         (fun (a : Ccc_stencil.Tap.t) (b : Ccc_stencil.Tap.t) ->
           Ccc_stencil.Offset.equal a.Ccc_stencil.Tap.offset
             b.Ccc_stencil.Tap.offset)
         old_taps new_taps
    && Option.is_some (P.bias t.pattern) = Option.is_some (P.bias pattern)
    && Ccc_stencil.Boundary.equal (P.boundary t.pattern) (P.boundary pattern)
  in
  if not same_shape then
    invalid_arg
      "Compile.rebind: pattern differs beyond coefficient naming \
       (offsets, bias arity or boundary changed)";
  if P.equal t.pattern pattern then t
  else begin
    let multi = Ccc_stencil.Multi.of_pattern pattern in
    let coeff_streams =
      Array.of_list
        (List.map (fun (tap : Ccc_stencil.Tap.t) -> tap.Ccc_stencil.Tap.coeff)
           new_taps
        @ match P.bias pattern with Some c -> [ c ] | None -> [])
    in
    let plans =
      List.map
        (fun (p : Ccc_microcode.Plan.t) ->
          {
            p with
            Ccc_microcode.Plan.multi;
            multistencils =
              [ (0, Ccc_stencil.Multistencil.make pattern ~width:p.Ccc_microcode.Plan.width) ];
            coeff_streams;
          })
        t.plans
    in
    { pattern; plans; rejected = t.rejected }
  end

let plan_for_width t width =
  List.find_opt (fun p -> p.Ccc_microcode.Plan.width = width) t.plans

let widest t =
  match t.plans with
  | p :: _ -> p
  | [] -> assert false

let best_width_at_most t limit =
  List.find_opt (fun p -> p.Ccc_microcode.Plan.width <= limit) t.plans

type fused = {
  multi : Ccc_stencil.Multi.t;
  fused_plans : Ccc_microcode.Plan.t list;
  fused_rejected : (int * Finding.t) list;
}

let try_width_fused ?(obs = Obs.disabled) (config : Ccc_cm2.Config.t) multi
    width =
  Obs.span obs ~attrs:[ ("width", Tr.Int width) ] "compile.width" @@ fun () ->
  let nsources = Ccc_stencil.Multi.source_count multi in
  let multistencils =
    Obs.span obs "compile.multistencil" (fun () ->
        List.init nsources (fun src ->
            ( src,
              Ccc_stencil.Multistencil.make
                (Ccc_stencil.Multi.source_pattern multi src)
                ~width )))
  in
  let pinned =
    match Ccc_stencil.Multi.bias multi with Some _ -> 2 | None -> 1
  in
  let available = config.fpu_registers - pinned in
  match
    Obs.span obs "compile.regalloc" (fun () ->
        Regalloc.allocate_multi multistencils ~available)
  with
  | Error { Regalloc.needed; available } ->
      Error
        (Finding.makef Finding.Register_pressure
           "register pressure: %d data registers needed across %d sources, \
            %d available"
           needed nsources available)
  | Ok alloc -> begin
      match
        Obs.span obs "compile.schedule" (fun () ->
            Schedule.build_multi config multi multistencils alloc)
      with
      | plan ->
          if plan.Ccc_microcode.Plan.dynamic_words > config.scratch_memory_words
          then
            Error
              (Finding.makef Finding.Scratch_pressure
                 "scratch pressure: %d dynamic-part words exceed the %d-word \
                  scratch memory"
                 plan.Ccc_microcode.Plan.dynamic_words
                 config.scratch_memory_words)
          else begin
            Obs.span obs "compile.lint" (fun () -> post_check config plan);
            Tr.add_attr obs.Obs.trace "registers"
              (Tr.Int plan.Ccc_microcode.Plan.registers_used);
            Ok plan
          end
      | exception Schedule.Infeasible finding -> Error finding
    end

let compile_fused ?(obs = Obs.disabled) ?(widths = candidate_widths) config
    multi =
  Obs.span obs
    ~attrs:[ ("taps", Tr.Int (Ccc_stencil.Multi.tap_count multi)) ]
    "compile.fused"
  @@ fun () ->
  let widths = List.sort_uniq (fun a b -> compare b a) widths in
  let plans, rejected =
    List.fold_left
      (fun (plans, rejected) width ->
        match try_width_fused ~obs config multi width with
        | Ok plan -> (plan :: plans, rejected)
        | Error finding -> (plans, (width, finding) :: rejected))
      ([], []) widths
  in
  match List.rev plans with
  | [] -> Error (List.rev rejected)
  | fused_plans ->
      Ok { multi; fused_plans; fused_rejected = List.rev rejected }

let fused_widest t =
  match t.fused_plans with
  | p :: _ -> p
  | [] -> assert false

let fused_best_width_at_most t limit =
  List.find_opt
    (fun p -> p.Ccc_microcode.Plan.width <= limit)
    t.fused_plans

let pp_fused_report ppf t =
  Format.fprintf ppf "@[<v>fused stencil over sources %s: %d taps%s@ %a@ "
    (String.concat ", " (Ccc_stencil.Multi.sources t.multi))
    (Ccc_stencil.Multi.tap_count t.multi)
    (match Ccc_stencil.Multi.bias t.multi with
    | Some _ -> " + bias"
    | None -> "")
    Ccc_stencil.Multi.pp t.multi;
  List.iter
    (fun plan ->
      Format.fprintf ppf "  %a@ " Ccc_microcode.Plan.pp_summary plan)
    t.fused_plans;
  List.iter
    (fun (width, f) ->
      Format.fprintf ppf "  width %d rejected: %s@ " width f.Finding.message)
    t.fused_rejected;
  Format.fprintf ppf "@]"

let pp_report ppf t =
  Format.fprintf ppf "@[<v>stencil %s: %d taps%s, flops/point %d@ %a@ "
    (Ccc_stencil.Pattern.result_var t.pattern)
    (Ccc_stencil.Pattern.tap_count t.pattern)
    (match Ccc_stencil.Pattern.bias t.pattern with
    | Some _ -> " + bias"
    | None -> "")
    (Ccc_stencil.Pattern.useful_flops_per_point t.pattern)
    Ccc_stencil.Pattern.pp t.pattern;
  List.iter
    (fun plan ->
      Format.fprintf ppf "  %a@ " Ccc_microcode.Plan.pp_summary plan)
    t.plans;
  List.iter
    (fun (width, f) ->
      Format.fprintf ppf "  width %d rejected: %s@ " width f.Finding.message)
    t.rejected;
  Format.fprintf ppf "@]"
