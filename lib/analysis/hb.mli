(** Vector-clock happens-before arithmetic.

    The race detector ({!Race}) replays an {!Access} event log through
    the standard vector-clock model: each domain carries a clock, each
    lock carries the clock of its last release, and an access
    happened-before another iff its clock is pointwise no later.  The
    construction mirrors the FastTrack formulation (one epoch per
    write, a clock per read set); domains are the small logical ids
    {!Access} assigns, so clocks are short arrays. *)

type t
(** A vector clock: component [d] counts domain [d]'s release/spawn
    epochs.  Persistent — every operation returns a fresh clock. *)

val empty : t
(** All components zero. *)

val get : t -> int -> int

val tick : t -> int -> t
(** Increment component [d] (a release/fork epoch boundary). *)

val join : t -> t -> t
(** Pointwise maximum — acquire, join, and spawn inheritance. *)

val leq : t -> t -> bool
(** Pointwise [<=]: the happens-before order on clocks. *)

val epoch_leq : dom:int -> clock:int -> t -> bool
(** FastTrack's epoch test: the single write event stamped
    [(dom, clock)] happened-before a clock [vc] iff
    [clock <= get vc dom]. *)

val pp : Format.formatter -> t -> unit
