(* FastTrack-style dynamic race detection over an Access event log.

   Replay the log in order, maintaining a vector clock per domain, the
   release clock per lock, and per (family, index) the last write
   epoch plus the last read per domain.  A read or write that is not
   happened-after a conflicting access is a data race; the finding
   names the region, both domains and both execution phases, with the
   later access's phase as the finding context.

   Rmw events model atomic read-modify-writes: they synchronize
   through a per-slot pseudo-lock, so concurrent atomics are ordered
   by construction while a plain read/write racing an atomic is not.

   One finding per (family, index): the first race on a slot makes
   every later access to it suspect, and a flood of follow-on reports
   would bury the root cause. *)

type access = { dom : int; clock : int; phase : string }

type slot = {
  mutable w : access option;
  mutable reads : access list;  (* last read per domain *)
}

let clock_of tbl dom =
  match Hashtbl.find_opt tbl dom with
  | Some vc -> vc
  | None ->
      (* A domain's own component starts at 1 so its first events are
         unordered with every other domain until a sync edge exists. *)
      let vc = Hb.tick Hb.empty dom in
      Hashtbl.replace tbl dom vc;
      vc

let lock_of tbl name =
  match Hashtbl.find_opt tbl name with Some vc -> vc | None -> Hb.empty

let slot_of tbl key =
  match Hashtbl.find_opt tbl key with
  | Some s -> s
  | None ->
      let s = { w = None; reads = [] } in
      Hashtbl.replace tbl key s;
      s

let analyze (events : Access.event list) : Finding.t list =
  let clocks : (int, Hb.t) Hashtbl.t = Hashtbl.create 8 in
  let locks : (string, Hb.t) Hashtbl.t = Hashtbl.create 16 in
  let slots : (string * int, slot) Hashtbl.t = Hashtbl.create 256 in
  let reported : (string * int, unit) Hashtbl.t = Hashtbl.create 8 in
  let findings = ref [] in
  let report key ~fam ~idx ~kind ~(prev : access) ~(cur : access) =
    if not (Hashtbl.mem reported key) then begin
      Hashtbl.add reported key ();
      findings :=
        Finding.makef ~ctx:cur.phase Finding.Data_race
          "%s on %s[%d]: domain %d (%s phase) vs domain %d (%s phase) \
           with no happens-before edge"
          kind fam idx prev.dom prev.phase cur.dom cur.phase
        :: !findings
    end
  in
  let acquire dom name =
    Hashtbl.replace clocks dom
      (Hb.join (clock_of clocks dom) (lock_of locks name))
  in
  let release dom name =
    let vc = clock_of clocks dom in
    Hashtbl.replace locks name vc;
    Hashtbl.replace clocks dom (Hb.tick vc dom)
  in
  let check_write_against fam idx key (s : slot) cur vc =
    (match s.w with
    | Some prev
      when prev.dom <> cur.dom
           && not (Hb.epoch_leq ~dom:prev.dom ~clock:prev.clock vc) ->
        report key ~fam ~idx ~kind:"write-write race" ~prev ~cur
    | _ -> ());
    List.iter
      (fun (prev : access) ->
        if
          prev.dom <> cur.dom
          && not (Hb.epoch_leq ~dom:prev.dom ~clock:prev.clock vc)
        then report key ~fam ~idx ~kind:"read-write race" ~prev ~cur)
      s.reads;
    s.w <- Some cur;
    s.reads <- []
  in
  List.iter
    (fun (e : Access.event) ->
      match e.Access.op with
      | Access.Acquire name -> acquire e.Access.dom name
      | Access.Release name -> release e.Access.dom name
      | Access.Spawn child ->
          let vc = clock_of clocks e.Access.dom in
          Hashtbl.replace clocks child (Hb.join (clock_of clocks child) vc);
          Hashtbl.replace clocks e.Access.dom (Hb.tick vc e.Access.dom)
      | Access.Join child ->
          Hashtbl.replace clocks e.Access.dom
            (Hb.join (clock_of clocks e.Access.dom) (clock_of clocks child))
      | Access.Section_begin _ | Access.Section_end _ -> ()
      | Access.Read (fam, idx) ->
          let vc = clock_of clocks e.Access.dom in
          let key = (fam, idx) in
          let s = slot_of slots key in
          let cur =
            { dom = e.Access.dom; clock = Hb.get vc e.Access.dom;
              phase = e.Access.phase }
          in
          (match s.w with
          | Some prev
            when prev.dom <> cur.dom
                 && not (Hb.epoch_leq ~dom:prev.dom ~clock:prev.clock vc) ->
              report key ~fam ~idx ~kind:"write-read race" ~prev ~cur
          | _ -> ());
          s.reads <-
            cur :: List.filter (fun (r : access) -> r.dom <> cur.dom) s.reads
      | Access.Write (fam, idx) ->
          let vc = clock_of clocks e.Access.dom in
          let key = (fam, idx) in
          let cur =
            { dom = e.Access.dom; clock = Hb.get vc e.Access.dom;
              phase = e.Access.phase }
          in
          check_write_against fam idx key (slot_of slots key) cur vc
      | Access.Rmw (fam, idx) ->
          (* Atomic: synchronize through the slot's pseudo-lock, then
             behave as a write — ordered against other atomics, racing
             against any unsynchronized plain access. *)
          let pseudo = Printf.sprintf "%s#%d.atomic" fam idx in
          acquire e.Access.dom pseudo;
          let vc = clock_of clocks e.Access.dom in
          let key = (fam, idx) in
          let cur =
            { dom = e.Access.dom; clock = Hb.get vc e.Access.dom;
              phase = e.Access.phase }
          in
          check_write_against fam idx key (slot_of slots key) cur vc;
          release e.Access.dom pseudo)
    events;
  List.rev !findings
