(** Shared-state registry and access-event log for the host runtime.

    The paper's machine is deterministically SIMD (section 3); every
    opportunity to race was introduced by this reproduction's host
    parallelism — the {!Ccc_runtime.Pool} worker domains, the resident
    [Ccc_service.Engine], the mutex-guarded [Ccc_obs.Metrics]
    registry.  This module is the instrumentation seam those layers
    share: a registry tagging each mutable region the runtime shares
    with its promised ownership class (the machine-checked form of
    DESIGN.md section 8), and an event log of
    read/write/acquire/release/section events that {!Race} and
    {!Discipline} analyze offline.

    Disabled (the default) every probe is one flag load and a branch —
    the zero-cost discipline of the telemetry layer's disabled
    context.  The flag is flipped only by the coordinating domain
    while workers are parked at the pool barrier. *)

(** Who may touch a region family, and under what protocol. *)
type ownership =
  | Coordinator_only
      (** only the owning (coordinating) domain, never inside a pooled
          chunk: engine cache, LRU tick, arena slot *)
  | Guarded of string  (** any domain, holding the named lock *)
  | Locked_per_index
      (** index [i] of family [f] is guarded by lock ["f#i"]: one lock
          per metric handle *)
  | Atomic
      (** any domain, read-modify-write operations only (a shared work
          counter); a plain read or write is a discipline violation *)
  | Node_indexed
      (** one slot per node/item: within a pool generation each slot
          belongs to exactly one chunk, so slots written inside
          sections must partition across domains (cross-slot reads —
          the halo exchange's neighbor loads — are legal) *)

(** One logged operation.  [Section_begin]/[Section_end] bracket a
    domain's execution of its chunk of pool generation [g];
    [Spawn]/[Join] carry the other domain's logical id (used by
    synthetic {!Race_mutate} traces; the resident pool's workers
    predate enabling and inherit their edges through the pool
    mutex). *)
type op =
  | Read of string * int  (** region family, index *)
  | Write of string * int
  | Rmw of string * int  (** atomic read-modify-write *)
  | Acquire of string  (** lock name *)
  | Release of string
  | Section_begin of int  (** pool generation *)
  | Section_end of int
  | Spawn of int  (** logical domain id of the child *)
  | Join of int

type event = { dom : int; phase : string; op : op }
(** [dom] is a small logical id (0 = the domain that called
    {!enable}); [phase] is the runtime phase label current at log
    time ({!set_phase}). *)

val register : string -> ownership -> unit
(** Register (or re-register) a region family.  The standard families
    — [pool.task]/[pool.pending]/[pool.failure] (guarded),
    [pool.item]/[dist.node]/[halo.node]/[exec.dst]/[exec.outcome]/
    [gather.node] (node-indexed), [pool.counter] (atomic),
    [engine.cache]/[engine.tick]/[arena.slot] (coordinator-only),
    [metrics.table] (guarded) and [metrics.metric] (per-index lock) —
    are pre-registered. *)

val ownership : string -> ownership option
val ownership_name : ownership -> string

val families : unit -> (string * ownership) list
(** Every registered family with its class, sorted by name. *)

val enable : unit -> unit
(** Clear the log, make the calling domain logical id 0, start
    recording.  Call from the coordinating domain only, with no pooled
    loop in flight. *)

val disable : unit -> unit
(** Stop recording; the log is kept for {!events}. *)

val on : unit -> bool

val set_phase : string -> unit
(** Label subsequent events with a runtime phase ([scatter] / [halo] /
    [compute] / [gather] / [batch]...).  Coordinator-only, between
    pooled loops. *)

val events : unit -> event list
(** The log in order.  The order is a legal linearization: every probe
    below logs while the instrumented lock (if any) is still held. *)

val event_count : unit -> int

(** {1 Probes} — each is a no-op unless {!on}. *)

val read : string -> int -> unit
val write : string -> int -> unit
val rmw : string -> int -> unit

val acquire : string -> unit
(** Log after the lock is (re)acquired — for a condition-variable wait
    loop, once after the loop exits, so the happens-before edge of the
    final reacquisition is captured and event counts stay
    deterministic under spurious wakeups. *)

val release : string -> unit
(** Log before the unlock. *)

val section_begin : int -> unit
val section_end : int -> unit
