type severity = Error | Warning

type check =
  | Hazard
  | Unwritten_read
  | Wrong_element
  | Chain_shape
  | Store_mismatch
  | Coverage
  | Dead_code
  | Pinned_write
  | Register_range
  | Ring_layout
  | Phase_shape
  | Coeff_streams
  | Budget
  | Cost_model
  | Register_pressure
  | Scratch_pressure
  | Infeasible
  | Halo_integrity
  | Output_integrity
  | Kernel_integrity
  | Data_race
  | Ownership
  | Lock_discipline
  | Partition
  | Lifecycle

type t = {
  severity : severity;
  check : check;
  phase : int option;
  cycle : int option;
  instr : Ccc_microcode.Instr.t option;
  ctx : string option;
  message : string;
}

let make ?(severity = Error) ?phase ?cycle ?instr ?ctx check message =
  { severity; check; phase; cycle; instr; ctx; message }

let makef ?severity ?phase ?cycle ?instr ?ctx check fmt =
  Format.kasprintf (make ?severity ?phase ?cycle ?instr ?ctx check) fmt

let check_name = function
  | Hazard -> "hazard"
  | Unwritten_read -> "unwritten-read"
  | Wrong_element -> "wrong-element"
  | Chain_shape -> "chain-shape"
  | Store_mismatch -> "store-mismatch"
  | Coverage -> "coverage"
  | Dead_code -> "dead-code"
  | Pinned_write -> "pinned-write"
  | Register_range -> "register-range"
  | Ring_layout -> "ring-layout"
  | Phase_shape -> "phase-shape"
  | Coeff_streams -> "coeff-streams"
  | Budget -> "budget"
  | Cost_model -> "cost-model"
  | Register_pressure -> "register-pressure"
  | Scratch_pressure -> "scratch-pressure"
  | Infeasible -> "infeasible"
  | Halo_integrity -> "halo-integrity"
  | Output_integrity -> "output-integrity"
  | Kernel_integrity -> "kernel-integrity"
  | Data_race -> "data-race"
  | Ownership -> "ownership"
  | Lock_discipline -> "lock-discipline"
  | Partition -> "partition"
  | Lifecycle -> "lifecycle"

let severity_name = function Error -> "error" | Warning -> "warning"

let pp ppf t =
  Format.fprintf ppf "%s[%s]" (severity_name t.severity) (check_name t.check);
  (match (t.phase, t.cycle) with
  | Some p, Some c -> Format.fprintf ppf " phase %d, cycle %d" p c
  | Some p, None -> Format.fprintf ppf " phase %d" p
  | None, Some c -> Format.fprintf ppf " cycle %d" c
  | None, None -> ());
  (match t.ctx with
  | Some c -> Format.fprintf ppf " during %s" c
  | None -> ());
  Format.fprintf ppf ": %s" t.message

let to_string t = Format.asprintf "%a" pp t

exception Failed of t list
