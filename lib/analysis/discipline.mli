(** The ownership-rule checker: DESIGN.md section 8 as a machine-checked
    table.

    Where {!Race} asks "did two accesses actually race under the
    happens-before model", this pass asks the stronger static
    question the runtime's design promises: does every logged access
    respect its region's registered ownership class ({!Access.ownership})?
    A run can be race-free by luck and still violate the discipline —
    exactly the state ROADMAP items 1 and 4 must not build on.

    Rules, one per ownership class:
    - [Coordinator_only] regions are touched by a single domain and
      never between a domain's [Section_begin]/[Section_end] (never
      inside a pooled chunk closure) — violations are [Ownership]
      findings.
    - [Guarded l] (and [Locked_per_index]) regions are accessed only
      while the accessing domain holds the lock — [Lock_discipline].
    - [Atomic] regions see only [Rmw] operations; a plain read/write
      is a de-atomized update — [Lock_discipline].
    - [Node_indexed] slots are written by at most one domain per pool
      generation (the chunk partition is disjoint) — [Partition].
      Cross-slot {e reads} are legal: the halo exchange reads neighbor
      nodes' subgrids from inside a chunk, and whether such a read is
      safe is a happens-before question for {!Race}. *)

val check : Access.event list -> Finding.t list
(** One finding per violated (rule, region) pair, each carrying the
    execution phase as [ctx].  Empty iff the log obeys the section-8
    ownership table.  Deterministic: a pure function of the event
    list (unregistered families are ignored). *)
