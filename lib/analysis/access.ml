(* The shared-state registry and access-event log for the host
   runtime.  The simulated CM-2 is deterministic SIMD; everything that
   can race lives on the *host* side — the domain pool, the resident
   engine, the metrics registry.  This module tags each such region
   with the ownership class DESIGN.md section 8 promises for it and,
   when enabled, records every access so Race and Discipline can check
   the promise instead of trusting the prose.

   The disabled default is one mutable-bool load and a branch per
   probe: the flag is only ever flipped by the coordinating domain
   while the workers are parked at the pool barrier, so no probe can
   observe a torn enable. *)

type ownership =
  | Coordinator_only
  | Guarded of string
  | Locked_per_index
  | Atomic
  | Node_indexed

type op =
  | Read of string * int
  | Write of string * int
  | Rmw of string * int
  | Acquire of string
  | Release of string
  | Section_begin of int
  | Section_end of int
  | Spawn of int
  | Join of int

type event = { dom : int; phase : string; op : op }

(* ------------------------------------------------------------------ *)
(* Registry: one ownership class per region family.  The standard
   families below are the complete inventory of mutable state the
   runtime shares across domains; libraries may register more. *)

let registry : (string, ownership) Hashtbl.t = Hashtbl.create 32
let registry_m = Mutex.create ()

let register name own =
  Mutex.protect registry_m (fun () -> Hashtbl.replace registry name own)

let ownership name =
  Mutex.protect registry_m (fun () -> Hashtbl.find_opt registry name)

let ownership_name = function
  | Coordinator_only -> "coordinator-only"
  | Guarded l -> "guarded by " ^ l
  | Locked_per_index -> "per-index lock"
  | Atomic -> "atomic"
  | Node_indexed -> "node-indexed"

let families () =
  Mutex.protect registry_m (fun () ->
      Hashtbl.fold (fun n o acc -> (n, o) :: acc) registry [])
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let () =
  List.iter
    (fun (name, own) -> register name own)
    [
      (* Pool internals: published-task protocol under the pool mutex. *)
      ("pool.task", Guarded "pool.m");
      ("pool.pending", Guarded "pool.m");
      ("pool.failure", Guarded "pool.m");
      (* One slot per item of a pooled loop: the chunk partition. *)
      ("pool.item", Node_indexed);
      (* ROADMAP item 4's shared work counter: must stay atomic. *)
      ("pool.counter", Atomic);
      (* Per-node substrate regions: subgrids, padded temporaries,
         destination and interpreter outcomes. *)
      ("dist.node", Node_indexed);
      ("halo.node", Node_indexed);
      ("exec.dst", Node_indexed);
      (* Per-(node, tile) destination spans of the tiled Fast kernel:
         the slot packs the node's probe slot above the tile index, so
         two tiles — of one node or of two — never alias. *)
      ("exec.tile", Node_indexed);
      ("exec.outcome", Node_indexed);
      ("gather.node", Node_indexed);
      (* Engine cache, LRU tick and the standing arena slot live on the
         coordinating domain only. *)
      ("engine.cache", Coordinator_only);
      ("engine.tick", Coordinator_only);
      ("arena.slot", Coordinator_only);
      (* Metrics: the registry table under its own mutex, each metric
         handle under a per-metric lock named ["metrics.metric#<id>"]. *)
      ("metrics.table", Guarded "metrics.m");
      ("metrics.metric", Locked_per_index);
      (* Serve scheduler (PR 7): tenant queues + control state, ticket
         states and the stencil-key catalog, all under the scheduler
         mutex.  Slots are namespaced by scheduler uid. *)
      ("serve.queue", Guarded "serve.m");
      ("serve.ticket", Guarded "serve.m");
      ("serve.keys", Guarded "serve.m");
    ]

(* ------------------------------------------------------------------ *)
(* Event log.  A single buffer under one mutex: logging happens while
   the instrumented lock (if any) is still held, so the buffer order is
   a legal linearization of each lock's critical sections. *)

let flag = ref false
let log_m = Mutex.create ()
let log_buf : event list ref = ref []
let log_count = ref 0
let phase_label = ref "-"
let dom_ids : (int, int) Hashtbl.t = Hashtbl.create 8

let on () = !flag

let set_phase p = phase_label := p

let dom_id () =
  let raw = (Domain.self () :> int) in
  match Hashtbl.find_opt dom_ids raw with
  | Some id -> id
  | None ->
      let id = Hashtbl.length dom_ids in
      Hashtbl.add dom_ids raw id;
      id

let log op =
  Mutex.protect log_m (fun () ->
      let dom = dom_id () in
      log_buf := { dom; phase = !phase_label; op } :: !log_buf;
      incr log_count)

let enable () =
  Mutex.protect log_m (fun () ->
      log_buf := [];
      log_count := 0;
      Hashtbl.reset dom_ids;
      (* The enabling domain is the coordinator: logical id 0. *)
      Hashtbl.add dom_ids (Domain.self () :> int) 0;
      phase_label := "-");
  flag := true

let disable () = flag := false

let events () = Mutex.protect log_m (fun () -> List.rev !log_buf)
let event_count () = Mutex.protect log_m (fun () -> !log_count)

let read fam i = if !flag then log (Read (fam, i))
let write fam i = if !flag then log (Write (fam, i))
let rmw fam i = if !flag then log (Rmw (fam, i))
let acquire l = if !flag then log (Acquire l)
let release l = if !flag then log (Release l)
let section_begin g = if !flag then log (Section_begin g)
let section_end g = if !flag then log (Section_end g)
