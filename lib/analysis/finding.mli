(** Structured findings for the standalone plan analyzer.

    The compilation strategy stands on hazard-exact register access
    (section 5.3: deadline-ordered taps, just-in-time accumulator
    recycling; section 5.4: LCM ring rotation) — output that corrupts
    results silently if any invariant slips.  Both the independent
    verifier ({!Verify}) and the compiler's own checks
    ([Schedule.check_hazards], the width-rejection feedback of
    section 6) report through this one type, so the CLI renders every
    complaint about a plan uniformly, in the spirit of
    [Ccc_frontend.Diagnostics]. *)

type severity = Error | Warning

(** What rule a finding violates.  One constructor per analyzer pass;
    [Register_pressure] and [Scratch_pressure] mirror the section-6
    feedback codes of [Ccc_frontend.Diagnostics] so width rejections
    keep their familiar names. *)
type check =
  | Hazard  (** a read races an in-flight or landed overwrite (5.3) *)
  | Unwritten_read  (** a register read before any write lands *)
  | Wrong_element
      (** a data register holds a different grid element than the
          coefficient stream calls for *)
  | Chain_shape
      (** an accumulator is neither zero-seeded nor the chain's own
          partial sum (5.3) *)
  | Store_mismatch
      (** a store writes something other than that line and column's
          completed accumulation *)
  | Coverage
      (** over one unroll period, an output column or a
          (tap x occurrence) contribution is missing or duplicated *)
  | Dead_code
      (** a load or accumulation whose value is never consumed *)
  | Pinned_write  (** a write targets the pinned 0.0 / 1.0 register *)
  | Register_range  (** a register index outside the file or the
                        plan's declared allocation *)
  | Ring_layout
      (** a load disagrees with its column's ring rotation (5.4) *)
  | Phase_shape
      (** malformed plan structure: wrong section contents, phase
          count, or per-phase instruction counts *)
  | Coeff_streams
      (** the coefficient-stream table disagrees with the pattern *)
  | Budget  (** dynamic-word accounting or the branch-cycle rule (4.3) *)
  | Cost_model
      (** the analyzer's independent cycle count disagrees with
          [Ccc_microcode.Cost] *)
  | Register_pressure  (** allocation exceeds the register file *)
  | Scratch_pressure  (** the unrolled table exceeds scratch memory *)
  | Infeasible  (** the scheduler could not meet a deadline (5.3) *)
  | Halo_integrity
      (** a padded halo cell disagrees with what the exchange wrote —
          a dropped, duplicated, or corrupted border message
          ([Ccc_fault.Guard]) *)
  | Output_integrity
      (** a computed output cell disagrees with the reference
          evaluator beyond 1e-9 ([Ccc_fault.Guard]) *)
  | Kernel_integrity
      (** a cached lowered kernel fails its sandbox re-verification —
          a poisoned plan-cache entry ([Ccc_fault.Guard]) *)
  | Data_race
      (** two domains access a shared region without a happens-before
          edge, at least one a write ({!Race}) *)
  | Ownership
      (** coordinator-only state touched inside a pooled chunk or from
          a second domain ({!Discipline}, [Ccc_service.Engine]) *)
  | Lock_discipline
      (** a guarded region accessed without holding its lock, or an
          atomic region accessed with a plain read/write
          ({!Discipline}) *)
  | Partition
      (** two domains touch the same node-indexed slot within one pool
          generation — an overlapping chunk partition ({!Discipline}) *)
  | Lifecycle
      (** a shut-down resource used again, e.g. [Pool.iter] after
          [Pool.shutdown] *)

type t = {
  severity : severity;
  check : check;
  phase : int option;  (** unroll phase index, when attributable *)
  cycle : int option;
      (** issue cycle within the modeled half-strip, when attributable *)
  instr : Ccc_microcode.Instr.t option;  (** the offending dynamic part *)
  ctx : string option;
      (** runtime execution phase ([scatter] / [halo] / [compute] /
          [gather] / [batch] / [metrics]), when attributable — the
          domain-safety analyzer's analogue of the microcode [phase] *)
  message : string;
}

val make :
  ?severity:severity ->
  ?phase:int ->
  ?cycle:int ->
  ?instr:Ccc_microcode.Instr.t ->
  ?ctx:string ->
  check ->
  string ->
  t
(** [severity] defaults to [Error]. *)

val makef :
  ?severity:severity ->
  ?phase:int ->
  ?cycle:int ->
  ?instr:Ccc_microcode.Instr.t ->
  ?ctx:string ->
  check ->
  ('a, Format.formatter, unit, t) format4 ->
  'a

val check_name : check -> string
(** Kebab-case, e.g. ["register-pressure"]. *)

val pp : Format.formatter -> t -> unit
(** [error[hazard] phase 2, cycle 141: <message>] (or
    [error[data-race] during compute: <message>] for runtime
    findings), location parts present only when attributable. *)

val to_string : t -> string

exception Failed of t list
(** Raised by {!Verify.verify_exn} and by [Schedule.check_hazards]
    when a plan violates an invariant.  Never empty. *)
