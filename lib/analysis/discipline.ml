(* The ownership-rule checker: DESIGN.md section 8's table, enforced
   against a logged access set rather than stated in prose.

   Unlike Race (which needs the happens-before model), every rule here
   is a simple structural property of the log:

   - Coordinator_only: accessed by exactly one domain, never between a
     domain's Section_begin/Section_end (i.e. never inside a pooled
     chunk closure).
   - Guarded l: every access happens while the accessing domain holds
     lock l (tracked per domain from Acquire/Release events).
   - Locked_per_index: as Guarded, with lock "<family>#<index>".
   - Atomic: only Rmw operations — a plain read or write means the
     counter was de-atomized.
   - Node_indexed: within one pool generation, each slot is written by
     at most one domain (the chunk partition is disjoint); cross-slot
     reads are legal (the halo exchange reads neighbors).

   One finding per (rule, family, index) — same flood control as
   Race. *)

module S = Set.Make (String)

type dstate = {
  mutable held : S.t;
  mutable section : int option;  (* generation, when inside a chunk *)
}

let check (events : Access.event list) : Finding.t list =
  let doms : (int, dstate) Hashtbl.t = Hashtbl.create 8 in
  let dstate dom =
    match Hashtbl.find_opt doms dom with
    | Some s -> s
    | None ->
        let s = { held = S.empty; section = None } in
        Hashtbl.replace doms dom s;
        s
  in
  (* (family, index) -> owning domain, first seen.  Keyed per index,
     not per family: since PR 7 several engines (one per serve shard)
     can be alive at once, each probing its own coordinator-only slot
     — instances must not inherit each other's owner. *)
  let owners : (string * int, int) Hashtbl.t = Hashtbl.create 8 in
  (* (generation, family, index) -> first accessing domain *)
  let slots : (int * string * int, int) Hashtbl.t = Hashtbl.create 256 in
  let reported : (string, unit) Hashtbl.t = Hashtbl.create 8 in
  let findings = ref [] in
  let report key f =
    if not (Hashtbl.mem reported key) then begin
      Hashtbl.add reported key ();
      findings := f :: !findings
    end
  in
  let check_access dom phase fam idx ~rmw ~mutates =
    let st = dstate dom in
    match Access.ownership fam with
    | None -> ()
    | Some Access.Coordinator_only ->
        (match st.section with
        | Some g ->
            report
              (Printf.sprintf "sec:%s" fam)
              (Finding.makef ~ctx:phase Finding.Ownership
                 "coordinator-only region %s[%d] touched inside a pooled \
                  chunk (generation %d) by domain %d"
                 fam idx g dom)
        | None -> ());
        (match Hashtbl.find_opt owners (fam, idx) with
        | None -> Hashtbl.replace owners (fam, idx) dom
        | Some owner when owner <> dom ->
            report
              (Printf.sprintf "own:%s#%d" fam idx)
              (Finding.makef ~ctx:phase Finding.Ownership
                 "coordinator-only region %s[%d] touched by domain %d; \
                  domain %d owns it"
                 fam idx dom owner)
        | Some _ -> ())
    | Some (Access.Guarded lock) ->
        if not (S.mem lock st.held) then
          report
            (Printf.sprintf "lock:%s" fam)
            (Finding.makef ~ctx:phase Finding.Lock_discipline
               "guarded region %s[%d] accessed by domain %d without \
                holding %s"
               fam idx dom lock)
    | Some Access.Locked_per_index ->
        let lock = Printf.sprintf "%s#%d" fam idx in
        if not (S.mem lock st.held) then
          report
            (Printf.sprintf "lock:%s#%d" fam idx)
            (Finding.makef ~ctx:phase Finding.Lock_discipline
               "per-index region %s[%d] accessed by domain %d without \
                holding %s"
               fam idx dom lock)
    | Some Access.Atomic ->
        if not rmw then
          report
            (Printf.sprintf "atomic:%s#%d" fam idx)
            (Finding.makef ~ctx:phase Finding.Lock_discipline
               "atomic region %s[%d] accessed by domain %d with a plain \
                read/write (de-atomized update)"
               fam idx dom)
    | Some Access.Node_indexed -> (
        (* Only writes claim a slot: the halo exchange legitimately
           *reads* neighbor nodes' subgrids from inside a chunk, and
           cross-slot reads of quiescent data are what {!Race} checks
           with happens-before, not a partition question. *)
        match (st.section, mutates) with
        | None, _ | _, false -> ()  (* reads, or pre/post-barrier traffic *)
        | Some g, true -> (
            let key = (g, fam, idx) in
            match Hashtbl.find_opt slots key with
            | None -> Hashtbl.replace slots key dom
            | Some d0 when d0 <> dom ->
                report
                  (Printf.sprintf "part:%s#%d" fam idx)
                  (Finding.makef ~ctx:phase Finding.Partition
                     "node-indexed slot %s[%d] touched by domains %d and \
                      %d within pool generation %d (overlapping chunks)"
                     fam idx d0 dom g)
            | Some _ -> ()))
  in
  List.iter
    (fun (e : Access.event) ->
      let st = dstate e.Access.dom in
      match e.Access.op with
      | Access.Acquire l -> st.held <- S.add l st.held
      | Access.Release l -> st.held <- S.remove l st.held
      | Access.Section_begin g -> st.section <- Some g
      | Access.Section_end _ -> st.section <- None
      | Access.Spawn _ | Access.Join _ -> ()
      | Access.Read (fam, idx) ->
          check_access e.Access.dom e.Access.phase fam idx ~rmw:false
            ~mutates:false
      | Access.Write (fam, idx) ->
          check_access e.Access.dom e.Access.phase fam idx ~rmw:false
            ~mutates:true
      | Access.Rmw (fam, idx) ->
          check_access e.Access.dom e.Access.phase fam idx ~rmw:true
            ~mutates:true)
    events;
  List.rev !findings
