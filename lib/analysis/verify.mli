(** The standalone dataflow verifier for compiled plans.

    An independent re-derivation of what a correct plan must look like,
    with no knowledge of how [Schedule] builds one — N-version
    assurance for the hazard-exact output of sections 5.3–5.4, the way
    the runtime's reference evaluator independently checks the numbers.

    The verifier abstractly interprets the dynamic-part table on the
    WTL3164 issue timeline (multiply at [k], accumulator read at
    [k + add_latency], writeback at [k + writeback_latency]; a read on
    cycle [t] observes writes landed on cycles [<= t], exactly the
    [Ccc_cm2.Fpu] contract), tracking the symbolic grid element or
    partial sum every register holds.  Over the warmup prologue plus
    one full unroll period it proves:

    - {b pipeline dataflow}: every multiply reads the grid element its
      coefficient stream calls for, every accumulator operand is the
      pinned zero or the chain's own partial sum, and every read beats
      the landing of any overwriting write — including the "just
      barely" reuse of a pair partner's tagged register (5.3);
    - {b register-file invariants}: allocation within the file, the
      pinned 0.0/1.0 registers never written, no read before a write
      lands;
    - {b liveness}: no load and no accumulation is overwritten without
      having been consumed (dead code is reported as a warning);
    - {b coverage}: per line, every output column stored exactly once
      and every (tap x occurrence) pair contributing exactly one
      multiply-add;
    - {b layout and budget}: loads target exactly the slot their
      column's ring rotation designates (5.4), the dynamic-word count
      is honest and fits scratch memory, the loop branch keeps its own
      cycles (4.3), and an independently-accumulated cycle count
      equals [Ccc_microcode.Cost] line by line. *)

val verify : Ccc_cm2.Config.t -> Ccc_microcode.Plan.t -> Finding.t list
(** All findings, in discovery order: plan-level checks first, then
    the abstract interpretation, then the liveness scan.  Empty for
    every plan the compiler emits. *)

val verify_exn : Ccc_cm2.Config.t -> Ccc_microcode.Plan.t -> unit
(** Raises {!Finding.Failed} with every finding (warnings included)
    unless the plan is clean. *)
