module Config = Ccc_cm2.Config
module Plan = Ccc_microcode.Plan
module Instr = Ccc_microcode.Instr
module Cost = Ccc_microcode.Cost
module Multi = Ccc_stencil.Multi
module Offset = Ccc_stencil.Offset
module Tap = Ccc_stencil.Tap
module Coeff = Ccc_stencil.Coeff

(* What a register holds, symbolically.  Rows are virtual: line [t]'s
   origin row is [-t] (the sweep moves one row up per line), so the
   element loaded at line [t] with displacement [drow] is row
   [drow - t] — absolute addresses drop out of the comparison. *)
type value =
  | Unknown
  | Zero  (** the pinned 0.0 *)
  | One  (** the pinned 1.0 (bias operand) *)
  | Elem of { src : int; row : int; col : int }
  | Acc of { line : int; col : int; terms : int list }
      (** a partial sum for output column [col] of line [line];
          [terms] are the coefficient-stream indices folded in *)

let pp_value ppf = function
  | Unknown -> Format.pp_print_string ppf "an undefined value"
  | Zero -> Format.pp_print_string ppf "the pinned 0.0"
  | One -> Format.pp_print_string ppf "the pinned 1.0"
  | Elem { src; row; col } ->
      Format.fprintf ppf "element (%+d,%+d) of source %d" row col src
  | Acc { line; col; terms } ->
      Format.fprintf ppf "a %d-term accumulation for line %d column %d"
        (List.length terms) line col

(* One write into a register, on the FPU timeline: visible to any read
   on cycle >= land_at (Fpu: "a read on cycle t observes writes landed
   on cycles <= t"). *)
type write = {
  land_at : int;
  value : value;
  born_line : int;  (** line whose dynamic part issued it; [min_int]
                        for the pinned initial values *)
  issue_cycle : int;
  mutable read : bool;
}

let verify (config : Config.t) (plan : Plan.t) : Finding.t list =
  let found = ref [] in
  let emit f = found := f :: !found in
  let nregs = config.Config.fpu_registers in
  let width = plan.Plan.width in
  let unroll = plan.Plan.unroll in
  let source_taps = Array.of_list (Multi.taps plan.Plan.multi) in
  let ntaps = Array.length source_taps in
  let nsources = Multi.source_count plan.Plan.multi in
  let has_bias = Multi.bias plan.Plan.multi <> None in
  let nterms = ntaps + if has_bias then 1 else 0 in
  let in_file r = r >= 0 && r < nregs in
  let declared r = r >= 0 && r < plan.Plan.registers_used in

  (* ---------------- plan-level structure and budget ---------------- *)
  if plan.Plan.registers_used > nregs then
    emit
      (Finding.makef Register_pressure
         "the plan declares %d registers but the file has %d"
         plan.Plan.registers_used nregs);
  if width < 1 then
    emit (Finding.makef Phase_shape "non-positive width %d" width);
  if unroll < 1 then
    emit (Finding.makef Phase_shape "non-positive unroll factor %d" unroll);
  if Array.length plan.Plan.phases <> unroll then
    emit
      (Finding.makef Phase_shape
         "unroll factor %d but %d phases in the dynamic-part table" unroll
         (Array.length plan.Plan.phases));
  if not (declared plan.Plan.zero_reg && in_file plan.Plan.zero_reg) then
    emit
      (Finding.makef Register_range "pinned zero register r%d out of range"
         plan.Plan.zero_reg);
  (match (plan.Plan.one_reg, has_bias) with
  | None, true ->
      emit
        (Finding.make Phase_shape
           "the pattern has a bias term but no pinned 1.0 register")
  | Some r, _ when not (declared r && in_file r) ->
      emit (Finding.makef Register_range "pinned 1.0 register r%d out of range" r)
  | Some _, false ->
      emit
        (Finding.make ~severity:Warning Dead_code
           "a pinned 1.0 register with no bias term to consume it")
  | _ -> ());

  (* Ring layout: disjoint, in range, clear of the pinned registers,
     one ring per (source, column), each size dividing the unroll
     factor (section 5.4: the table length is the LCM). *)
  let pinned =
    plan.Plan.zero_reg :: Option.to_list plan.Plan.one_reg
  in
  let ring_of : (int * int, Plan.ring) Hashtbl.t = Hashtbl.create 16 in
  let claimed : (int, int * int) Hashtbl.t = Hashtbl.create 32 in
  List.iter
    (fun (r : Plan.ring) ->
      if r.Plan.size < 1 then
        emit
          (Finding.makef Ring_layout "ring for source %d column %+d has size %d"
             r.Plan.src r.Plan.dcol r.Plan.size);
      if r.Plan.src < 0 || r.Plan.src >= nsources then
        emit
          (Finding.makef Ring_layout "ring for unknown source %d" r.Plan.src);
      if Hashtbl.mem ring_of (r.Plan.src, r.Plan.dcol) then
        emit
          (Finding.makef Ring_layout
             "two rings for source %d column %+d" r.Plan.src r.Plan.dcol)
      else Hashtbl.add ring_of (r.Plan.src, r.Plan.dcol) r;
      if r.Plan.size >= 1 && unroll >= 1 && unroll mod r.Plan.size <> 0 then
        emit
          (Finding.makef Ring_layout
             "ring size %d of source %d column %+d does not divide the \
              unroll factor %d"
             r.Plan.size r.Plan.src r.Plan.dcol unroll);
      for reg = r.Plan.base to r.Plan.base + r.Plan.size - 1 do
        if not (declared reg && in_file reg) then
          emit
            (Finding.makef Register_range
               "ring of source %d column %+d claims r%d, outside the %d \
                declared registers"
               r.Plan.src r.Plan.dcol reg plan.Plan.registers_used)
        else if List.mem reg pinned then
          emit
            (Finding.makef Pinned_write
               "ring of source %d column %+d claims pinned register r%d"
               r.Plan.src r.Plan.dcol reg)
        else
          match Hashtbl.find_opt claimed reg with
          | Some (src', dcol') ->
              emit
                (Finding.makef Ring_layout
                   "r%d claimed by both source %d column %+d and source %d \
                    column %+d"
                   reg src' dcol' r.Plan.src r.Plan.dcol)
          | None -> Hashtbl.add claimed reg (r.Plan.src, r.Plan.dcol)
      done)
    plan.Plan.rings;

  (* Coefficient streams: taps in pattern order, then the bias. *)
  let expected_streams =
    Array.of_list
      (List.map
         (fun (st : Multi.source_tap) -> st.Multi.tap.Tap.coeff)
         (Multi.taps plan.Plan.multi)
      @ match Multi.bias plan.Plan.multi with Some c -> [ c ] | None -> [])
  in
  if Array.length plan.Plan.coeff_streams <> nterms then
    emit
      (Finding.makef Coeff_streams
         "%d coefficient streams for %d terms"
         (Array.length plan.Plan.coeff_streams)
         nterms)
  else
    Array.iteri
      (fun i c ->
        if not (Coeff.equal c expected_streams.(i)) then
          emit
            (Finding.makef Coeff_streams
               "stream %d is %a where the pattern has %a" i Coeff.pp c Coeff.pp
               expected_streams.(i)))
      plan.Plan.coeff_streams;

  (* Honest dynamic-word accounting, against the scratch budget. *)
  let actual_words =
    Array.fold_left
      (fun acc (ph : Plan.phase) ->
        acc + List.length ph.Plan.loads + List.length ph.Plan.madds
        + List.length ph.Plan.stores)
      0 plan.Plan.phases
    + Array.fold_left (fun acc l -> acc + List.length l) 0 plan.Plan.prologue
  in
  if actual_words <> plan.Plan.dynamic_words then
    emit
      (Finding.makef Budget
         "the plan declares %d dynamic-part words but its table holds %d"
         plan.Plan.dynamic_words actual_words);
  if actual_words > config.Config.scratch_memory_words then
    emit
      (Finding.makef Scratch_pressure
         "%d dynamic-part words exceed the %d-word scratch memory"
         actual_words config.Config.scratch_memory_words);
  (* Section 4.3: the loop branch cannot share a cycle with a dynamic
     issue; the priced loop must reserve at least one cycle for it. *)
  if config.Config.loop_branch_cycles < 1 then
    emit
      (Finding.makef Budget
         "loop-branch budget of %d cycles: the branch cannot share a cycle \
          with a dynamic-part issue"
         config.Config.loop_branch_cycles);

  if
    Array.length plan.Plan.phases = 0
    || unroll < 1 || width < 1
    || Array.length plan.Plan.phases <> unroll
  then List.rev !found
  else begin
    (* ---------------- the abstract interpretation ---------------- *)
    let hist : write list array = Array.make nregs [] in
    let pinned_write v =
      { land_at = min_int; value = v; born_line = min_int;
        issue_cycle = min_int; read = true }
    in
    if in_file plan.Plan.zero_reg then
      hist.(plan.Plan.zero_reg) <- [ pinned_write Zero ];
    Option.iter
      (fun r -> if in_file r then hist.(r) <- [ pinned_write One ])
      plan.Plan.one_reg;
    (* Newest first, ordered by landing cycle. *)
    let push reg w =
      let rec ins = function
        | [] -> [ w ]
        | x :: rest as l ->
            if w.land_at >= x.land_at then w :: l else x :: ins rest
      in
      hist.(reg) <- ins hist.(reg)
    in
    let resolve reg ~at =
      let rec go = function
        | [] -> None
        | w :: rest -> if w.land_at <= at then Some w else go rest
      in
      go hist.(reg)
    in
    let read_value reg ~at =
      match resolve reg ~at with
      | None -> Unknown
      | Some w ->
          w.read <- true;
          w.value
    in
    let in_flight reg ~at =
      match hist.(reg) with w :: _ -> w.land_at > at | [] -> false
    in
    let wb = config.Config.madd_writeback_latency in
    let drain = max 0 (wb - config.Config.pipe_reversal_cycles) in
    let cycle = ref (Cost.startup_cycles config) in

    (* The warmup prologue: step [i] is virtual line [i - length]. *)
    let plen = Array.length plan.Plan.prologue in
    Array.iteri
      (fun i loads ->
        let line = i - plen in
        List.iter
          (fun slot ->
            (match slot with
            | Instr.Load { reg; src; drow; dcol } ->
                if not (in_file reg) then
                  emit
                    (Finding.makef Register_range ~cycle:!cycle ~instr:slot
                       "warmup load targets r%d, outside the register file" reg)
                else begin
                  if List.mem reg pinned then
                    emit
                      (Finding.makef Pinned_write ~cycle:!cycle ~instr:slot
                         "warmup load overwrites pinned r%d" reg);
                  push reg
                    {
                      land_at = !cycle + config.Config.load_latency;
                      value = Elem { src; row = drow - line; col = dcol };
                      born_line = line;
                      issue_cycle = !cycle;
                      read = false;
                    }
                end
            | _ ->
                emit
                  (Finding.makef Phase_shape ~cycle:!cycle ~instr:slot
                     "warmup step %d contains a dynamic part that is not a \
                      load"
                     i));
            cycle := !cycle + Instr.cycles config slot)
          loads)
      plan.Plan.prologue;
    let startup_and_prologue = !cycle in
    if
      startup_and_prologue
      <> Cost.startup_cycles config + Cost.prologue_cycles config plan
    then
      emit
        (Finding.makef Cost_model
           "warmup prologue prices at %d cycles, the analytic model says %d"
           (startup_and_prologue - Cost.startup_cycles config)
           (Cost.prologue_cycles config plan));

    (* Expected multiplier operand for coefficient stream [ci] at
       occurrence [j] of line [t]. *)
    let expected_data ~line ~ci ~j =
      if ci >= 0 && ci < ntaps then begin
        let st = source_taps.(ci) in
        let off = st.Multi.tap.Tap.offset in
        Some
          (Elem
             {
               src = st.Multi.source;
               row = off.Offset.drow - line;
               col = off.Offset.dcol + j;
             })
      end
      else if has_bias && ci = ntaps then Some One
      else None
    in

    (* Findings are reported over the first unroll period only; later
       lines run silently so the liveness scan can see every first-
       period write reach its consumer (or its overwrite). *)
    let max_ring =
      List.fold_left (fun m (r : Plan.ring) -> max m r.Plan.size) 1
        plan.Plan.rings
    in
    let total_lines = unroll + max_ring + 1 in
    let boundary_cycle = ref 0 in

    for line = 0 to total_lines - 1 do
      if line = unroll then boundary_cycle := !cycle;
      let report = line < unroll in
      let emitr f = if report then emit f in
      let p = line mod unroll in
      let phase = plan.Plan.phases.(p) in
      let line_begin = !cycle in
      cycle := !cycle + config.Config.line_overhead_cycles;

      (* Leading-edge loads: one per ring, in the slot the rotation
         designates, reading the column's top occupied row. *)
      let loaded : (int * int, unit) Hashtbl.t = Hashtbl.create 16 in
      List.iter
        (fun slot ->
          (match slot with
          | Instr.Load { reg; src; drow; dcol } ->
              (if report then
                 match Hashtbl.find_opt ring_of (src, dcol) with
                 | None ->
                     emit
                       (Finding.makef Ring_layout ~phase:p ~cycle:!cycle
                          ~instr:slot
                          "load for source %d column %+d, which has no ring"
                          src dcol)
                 | Some ring ->
                     if Hashtbl.mem loaded (src, dcol) then
                       emit
                         (Finding.makef Ring_layout ~phase:p ~cycle:!cycle
                            ~instr:slot
                            "source %d column %+d loaded twice in one line"
                            src dcol)
                     else Hashtbl.add loaded (src, dcol) ();
                     let expected =
                       Plan.ring_register ring ~line ~depth:0
                     in
                     if reg <> expected then
                       emit
                         (Finding.makef Ring_layout ~phase:p ~cycle:!cycle
                            ~instr:slot
                            "load for source %d column %+d targets r%d; the \
                             ring rotation designates r%d"
                            src dcol reg expected);
                     if drow <> ring.Plan.min_drow then
                       emit
                         (Finding.makef Ring_layout ~phase:p ~cycle:!cycle
                            ~instr:slot
                            "load for source %d column %+d reads row %+d; \
                             the leading edge is row %+d"
                            src dcol drow ring.Plan.min_drow));
              if not (in_file reg) then
                emitr
                  (Finding.makef Register_range ~phase:p ~cycle:!cycle
                     ~instr:slot "load targets r%d, outside the register file"
                     reg)
              else begin
                if List.mem reg pinned then
                  emitr
                    (Finding.makef Pinned_write ~phase:p ~cycle:!cycle
                       ~instr:slot "load overwrites pinned r%d" reg);
                push reg
                  {
                    land_at = !cycle + config.Config.load_latency;
                    value = Elem { src; row = drow - line; col = dcol };
                    born_line = line;
                    issue_cycle = !cycle;
                    read = false;
                  }
              end
          | _ ->
              emitr
                (Finding.makef Phase_shape ~phase:p ~cycle:!cycle ~instr:slot
                   "load section contains a dynamic part that is not a load"));
          cycle := !cycle + Instr.cycles config slot)
        phase.Plan.loads;
      if report then
        Hashtbl.iter
          (fun (src, dcol) _ ->
            if not (Hashtbl.mem loaded (src, dcol)) then
              emit
                (Finding.makef Ring_layout ~phase:p
                   "source %d column %+d is never loaded in phase %d" src dcol
                   p))
          ring_of;

      cycle := !cycle + config.Config.pipe_reversal_cycles;

      (* The multiply-add section.  Each madd reads its data operand at
         issue and its accumulator at issue + add_latency; its result
         lands at issue + writeback_latency (the Fpu timeline). *)
      let tally = Array.make_matrix (max nterms 1) (max width 1) 0 in
      List.iter
        (fun slot ->
          (match slot with
          | Instr.Nop -> ()
          | Instr.Madd { dst; data; coeff_index; coeff_dcol; acc } ->
              let issue = !cycle in
              let regs_ok =
                List.for_all
                  (fun (name, r) ->
                    if in_file r && declared r then true
                    else begin
                      emitr
                        (Finding.makef Register_range ~phase:p ~cycle:issue
                           ~instr:slot
                           "multiply-add %s register r%d out of range" name r);
                      false
                    end)
                  [ ("destination", dst); ("data", data); ("accumulator", acc) ]
              in
              if regs_ok then begin
                if
                  report && coeff_index >= 0 && coeff_index < nterms
                  && coeff_dcol >= 0 && coeff_dcol < width
                then
                  tally.(coeff_index).(coeff_dcol) <-
                    tally.(coeff_index).(coeff_dcol) + 1;
                (match expected_data ~line ~ci:coeff_index ~j:coeff_dcol with
                | None ->
                    emitr
                      (Finding.makef Coeff_streams ~phase:p ~cycle:issue
                         ~instr:slot
                         "coefficient stream %d does not exist (the pattern \
                          has %d terms)"
                         coeff_index nterms)
                | Some expected -> (
                    match read_value data ~at:issue with
                    | v when v = expected -> ()
                    | Unknown ->
                        emitr
                          (Finding.makef Unwritten_read ~phase:p ~cycle:issue
                             ~instr:slot
                             "data register r%d is read before any write \
                              lands"
                             data)
                    | Acc _ as v ->
                        emitr
                          (Finding.makef Hazard ~phase:p ~cycle:issue
                             ~instr:slot
                             "data register r%d was recycled: it holds %a, \
                              not %a — the overwrite landed before this read"
                             data pp_value v pp_value expected)
                    | v ->
                        emitr
                          (Finding.makef Wrong_element ~phase:p ~cycle:issue
                             ~instr:slot
                             "data register r%d holds %a where stream %d \
                              occurrence %d needs %a"
                             data pp_value v coeff_index coeff_dcol pp_value
                             expected)));
                let acc_at = issue + config.Config.madd_add_latency in
                let acc_val = read_value acc ~at:acc_at in
                let next_terms =
                  match acc_val with
                  | Zero -> [ coeff_index ]
                  | Acc a when acc = dst ->
                      if a.line <> line then
                        emitr
                          (Finding.makef Chain_shape ~phase:p ~cycle:issue
                             ~instr:slot
                             "chains onto a stale accumulation from line %d"
                             a.line);
                      if a.col <> coeff_dcol then
                        emitr
                          (Finding.makef Chain_shape ~phase:p ~cycle:issue
                             ~instr:slot
                             "accumulation for column %d fed a coefficient \
                              of column %d"
                             a.col coeff_dcol);
                      if List.mem coeff_index a.terms then
                        emitr
                          (Finding.makef Chain_shape ~phase:p ~cycle:issue
                             ~instr:slot
                             "coefficient stream %d folded into the same \
                              accumulation twice"
                             coeff_index);
                      coeff_index :: a.terms
                  | Unknown ->
                      emitr
                        (Finding.makef Unwritten_read ~phase:p ~cycle:issue
                           ~instr:slot
                           "accumulator r%d is read before any write lands"
                           acc);
                      [ coeff_index ]
                  | v ->
                      emitr
                        (Finding.makef Chain_shape ~phase:p ~cycle:acc_at
                           ~instr:slot
                           "accumulator r%d holds %a — neither the pinned \
                            zero nor this chain's partial sum"
                           acc pp_value v);
                      [ coeff_index ]
                in
                if List.mem dst pinned then
                  emitr
                    (Finding.makef Pinned_write ~phase:p ~cycle:issue
                       ~instr:slot "multiply-add writes pinned r%d" dst);
                push dst
                  {
                    land_at = issue + wb;
                    value =
                      Acc { line; col = coeff_dcol; terms = next_terms };
                    born_line = line;
                    issue_cycle = issue;
                    read = false;
                  }
              end
          | _ ->
              emitr
                (Finding.makef Phase_shape ~phase:p ~cycle:!cycle ~instr:slot
                   "multiply-add section contains a memory operation"));
          cycle := !cycle + Instr.cycles config slot)
        phase.Plan.madds;

      cycle := !cycle + config.Config.pipe_reversal_cycles + drain;

      (* Stores: each must read a landed, complete accumulation for
         this line and exactly its own column. *)
      let stored = Array.make (max width 1) 0 in
      List.iter
        (fun slot ->
          (match slot with
          | Instr.Store { reg; dcol } ->
              let at = !cycle in
              if dcol < 0 || dcol >= width then
                emitr
                  (Finding.makef Coverage ~phase:p ~cycle:at ~instr:slot
                     "store to column %d, outside the width-%d strip" dcol
                     width)
              else if report then stored.(dcol) <- stored.(dcol) + 1;
              if not (in_file reg) then
                emitr
                  (Finding.makef Register_range ~phase:p ~cycle:at ~instr:slot
                     "store reads r%d, outside the register file" reg)
              else begin
                if in_flight reg ~at then
                  emitr
                    (Finding.makef Hazard ~phase:p ~cycle:at ~instr:slot
                       "store of r%d while its accumulation is still in \
                        flight"
                       reg);
                match read_value reg ~at with
                | Acc a ->
                    if a.line <> line then
                      emitr
                        (Finding.makef Store_mismatch ~phase:p ~cycle:at
                           ~instr:slot
                           "stores line %d's accumulation during line %d"
                           a.line line);
                    if a.col <> dcol then
                      emitr
                        (Finding.makef Store_mismatch ~phase:p ~cycle:at
                           ~instr:slot
                           "stores the accumulation for column %d into \
                            column %d"
                           a.col dcol);
                    let missing =
                      List.filter
                        (fun i -> not (List.mem i a.terms))
                        (List.init nterms Fun.id)
                    in
                    if missing <> [] then
                      emitr
                        (Finding.makef Store_mismatch ~phase:p ~cycle:at
                           ~instr:slot
                           "stored accumulation is missing coefficient \
                            stream%s %s"
                           (if List.length missing = 1 then "" else "s")
                           (String.concat ", "
                              (List.map string_of_int missing)))
                | Unknown ->
                    emitr
                      (Finding.makef Unwritten_read ~phase:p ~cycle:at
                         ~instr:slot "store of r%d which was never written"
                         reg)
                | v ->
                    emitr
                      (Finding.makef Store_mismatch ~phase:p ~cycle:at
                         ~instr:slot "stores %a, not a completed accumulation"
                         pp_value v)
              end
          | _ ->
              emitr
                (Finding.makef Phase_shape ~phase:p ~cycle:!cycle ~instr:slot
                   "store section contains a dynamic part that is not a \
                    store"));
          cycle := !cycle + Instr.cycles config slot)
        phase.Plan.stores;
      cycle := !cycle + config.Config.loop_branch_cycles;

      if report then begin
        for j = 0 to width - 1 do
          if stored.(j) = 0 then
            emit
              (Finding.makef Coverage ~phase:p
                 "output column %d is never stored in phase %d" j p)
          else if stored.(j) > 1 then
            emit
              (Finding.makef Coverage ~phase:p
                 "output column %d is stored %d times in phase %d" j
                 stored.(j) p)
        done;
        for ci = 0 to nterms - 1 do
          for j = 0 to width - 1 do
            if tally.(ci).(j) <> 1 then
              emit
                (Finding.makef Coverage ~phase:p
                   "coefficient stream %d contributes %d multiply-adds to \
                    occurrence %d of phase %d (want exactly 1)"
                   ci tally.(ci).(j) j p)
          done
        done;
        (* Independent cycle accounting, against the analytic model. *)
        let line_total = !cycle - line_begin in
        if line_total <> Cost.line_cycles config plan then
          emit
            (Finding.makef Cost_model ~phase:p
               "phase %d prices at %d cycles per line; the analytic model \
                says %d"
               p line_total
               (Cost.line_cycles config plan))
      end
    done;
    if
      !boundary_cycle
      <> Cost.halfstrip_cycles config plan ~lines:unroll
    then
      emit
        (Finding.makef Cost_model
           "one unroll period prices at %d cycles; the analytic model says %d"
           !boundary_cycle
           (Cost.halfstrip_cycles config plan ~lines:unroll));

    (* ---------------- liveness: nothing written in vain ----------- *)
    Array.iteri
      (fun reg history ->
        match history with
        | [] | [ _ ] -> ()
        | _live :: overwritten ->
            List.iter
              (fun w ->
                if
                  (not w.read) && w.born_line > min_int
                  && w.born_line < unroll
                then
                  let phase =
                    if w.born_line >= 0 then Some (w.born_line mod unroll)
                    else None
                  in
                  match w.value with
                  | Elem _ ->
                      emit
                        (Finding.makef ~severity:Warning Dead_code ?phase
                           ~cycle:w.issue_cycle
                           "dead load: r%d (%a, loaded at line %d) is \
                            overwritten without ever being read"
                           reg pp_value w.value w.born_line)
                  | Acc _ ->
                      emit
                        (Finding.makef ~severity:Warning Dead_code ?phase
                           ~cycle:w.issue_cycle
                           "dead accumulation: r%d (%a) is overwritten \
                            without being stored or chained"
                           reg pp_value w.value)
                  | _ -> ())
              overwritten)
      hist;
    List.rev !found
  end

let verify_exn config plan =
  match verify config plan with
  | [] -> ()
  | findings -> raise (Finding.Failed findings)
