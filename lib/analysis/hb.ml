(* Vector clocks over small logical domain ids.  Persistent int arrays
   — the analyzer sees at most a handful of domains, and immutability
   keeps lock/region snapshots free of aliasing bugs. *)

type t = int array

let empty : t = [||]

let get (vc : t) d = if d < Array.length vc then vc.(d) else 0

let extend vc n =
  if Array.length vc >= n then Array.copy vc
  else begin
    let a = Array.make n 0 in
    Array.blit vc 0 a 0 (Array.length vc);
    a
  end

let tick vc d =
  let a = extend vc (d + 1) in
  a.(d) <- a.(d) + 1;
  a

let join a b =
  let n = max (Array.length a) (Array.length b) in
  Array.init n (fun i -> max (get a i) (get b i))

let leq a b =
  let rec go i = i >= Array.length a || (get a i <= get b i && go (i + 1)) in
  go 0

(* The epoch test of FastTrack: write (d, c) happened-before the
   current clock iff c <= vc.(d). *)
let epoch_leq ~dom ~clock vc = clock <= get vc dom

let pp ppf vc =
  Format.fprintf ppf "<%s>"
    (String.concat ","
       (Array.to_list (Array.map string_of_int vc)))
