(** The mutation harness: proof the verifier has teeth.

    Each mutant perturbs a valid plan the way a one-line compiler bug
    would — exactly the silent-corruption failures the hazard-exact
    discipline of sections 5.3–5.4 is vulnerable to.  The test suite
    requires {!Verify.verify} to reject every mutant (kill rate 100%)
    while accepting the unmutated plan. *)

(** The built-in mutant classes.

    - [Register_swap]: one multiply-add's data register replaced by
      another chain's (a mis-ordered tap table);
    - [Dropped_load]: a leading-edge load deleted from one phase (a
      ring slot goes stale);
    - [Retargeted_store]: one store's output column changed (results
      land in the wrong place);
    - [Rotation_skew]: every load of one ring bumped one slot forward
      while the multiply-adds keep the original rotation (an
      off-by-one in the section-5.4 table);
    - [Pair_reorder]: two adjacent multiply-adds of an interleaved
      pair swapped, breaking the section-5.3 issue spacing the
      accumulator latency depends on. *)
type mclass =
  | Register_swap
  | Dropped_load
  | Retargeted_store
  | Rotation_skew
  | Pair_reorder

val class_name : mclass -> string
val all_classes : mclass list

type mutant = {
  mclass : mclass;
  description : string;
  plan : Ccc_microcode.Plan.t;
}

val mutants : Ccc_microcode.Plan.t -> mutant list
(** Every applicable mutant of [plan], deterministically.  A class is
    omitted only when the plan has no site for it (e.g. [Pair_reorder]
    on a one-term chain, where any reorder is a no-op). *)
