module Plan = Ccc_microcode.Plan
module Instr = Ccc_microcode.Instr

type mclass =
  | Register_swap
  | Dropped_load
  | Retargeted_store
  | Rotation_skew
  | Pair_reorder

let class_name = function
  | Register_swap -> "register-swap"
  | Dropped_load -> "dropped-load"
  | Retargeted_store -> "retargeted-store"
  | Rotation_skew -> "rotation-skew"
  | Pair_reorder -> "pair-reorder"

let all_classes =
  [ Register_swap; Dropped_load; Retargeted_store; Rotation_skew; Pair_reorder ]

type mutant = {
  mclass : mclass;
  description : string;
  plan : Plan.t;
}

let with_phase (plan : Plan.t) p f =
  {
    plan with
    Plan.phases =
      Array.mapi
        (fun i ph -> if i = p then f ph else ph)
        plan.Plan.phases;
  }

let madd_count (ph : Plan.phase) =
  List.length
    (List.filter (function Instr.Madd _ -> true | _ -> false) ph.Plan.madds)

(* One multiply-add's data register replaced by a later one's. *)
let register_swap (plan : Plan.t) p =
  let ph = plan.Plan.phases.(p) in
  let madds = Array.of_list ph.Plan.madds in
  let sites =
    List.filter_map
      (fun (i, slot) ->
        match slot with Instr.Madd m -> Some (i, m.data) | _ -> None)
      (List.mapi (fun i s -> (i, s)) (Array.to_list madds))
  in
  let rec first_differing = function
    | [] -> None
    | (i, di) :: rest -> (
        match List.find_opt (fun (_, dj) -> dj <> di) rest with
        | Some (j, dj) -> Some (i, j, dj)
        | None -> first_differing rest)
  in
  Option.map
    (fun (i, j, data') ->
      (match madds.(i) with
      | Instr.Madd m -> madds.(i) <- Instr.Madd { m with data = data' }
      | _ -> assert false);
      {
        mclass = Register_swap;
        description =
          Printf.sprintf
            "phase %d: multiply-add %d reads multiply-add %d's data register"
            p i j;
        plan =
          with_phase plan p (fun ph ->
              { ph with Plan.madds = Array.to_list madds });
      })
    (first_differing sites)

(* One leading-edge load deleted from one phase. *)
let dropped_load (plan : Plan.t) p =
  match plan.Plan.phases.(p).Plan.loads with
  | [] -> None
  | _ :: rest ->
      Some
        {
          mclass = Dropped_load;
          description = Printf.sprintf "phase %d: first load dropped" p;
          plan = with_phase plan p (fun ph -> { ph with Plan.loads = rest });
        }

(* One store sent to the wrong output column (out of range when the
   strip has only one column). *)
let retargeted_store (plan : Plan.t) p =
  match plan.Plan.phases.(p).Plan.stores with
  | Instr.Store { reg; dcol } :: rest ->
      let dcol' =
        if plan.Plan.width > 1 then (dcol + 1) mod plan.Plan.width
        else plan.Plan.width
      in
      Some
        {
          mclass = Retargeted_store;
          description =
            Printf.sprintf "phase %d: first store retargeted to column %d" p
              dcol';
          plan =
            with_phase plan p (fun ph ->
                {
                  ph with
                  Plan.stores = Instr.Store { reg; dcol = dcol' } :: rest;
                });
        }
  | _ -> None

(* Every load of one ring bumped one slot forward, while the
   multiply-adds keep reading the original rotation. *)
let rotation_skew (plan : Plan.t) =
  match
    List.find_opt (fun (r : Plan.ring) -> r.Plan.size >= 2) plan.Plan.rings
  with
  | None -> None
  | Some ring ->
      let skew = function
        | Instr.Load { reg; src; drow; dcol }
          when src = ring.Plan.src && dcol = ring.Plan.dcol ->
            Instr.Load
              {
                reg =
                  ring.Plan.base
                  + ((reg - ring.Plan.base + 1) mod ring.Plan.size);
                src;
                drow;
                dcol;
              }
        | slot -> slot
      in
      Some
        {
          mclass = Rotation_skew;
          description =
            Printf.sprintf
              "loads of source %d column %+d rotated one slot ahead of the \
               multiply-adds"
              ring.Plan.src ring.Plan.dcol;
          plan =
            {
              plan with
              Plan.phases =
                Array.map
                  (fun (ph : Plan.phase) ->
                    { ph with Plan.loads = List.map skew ph.Plan.loads })
                  plan.Plan.phases;
            };
        }

(* Two adjacent multiply-adds swapped.  With interleaved pairs the
   swap of slots 1 and 2 puts a chain's second element one cycle after
   its first, inside the accumulator latency; a lone chain (width 1)
   gets its leading nop spacing broken instead.  A one-element chain
   has no reorder that changes semantics, so the class is omitted. *)
let pair_reorder (plan : Plan.t) =
  let ph = plan.Plan.phases.(0) in
  let chain_len =
    if plan.Plan.width = 0 then 0 else madd_count ph / plan.Plan.width
  in
  if chain_len < 2 then None
  else
    let madds = Array.of_list ph.Plan.madds in
    let i, j = if plan.Plan.width >= 2 then (1, 2) else (0, 1) in
    if j >= Array.length madds then None
    else begin
      let tmp = madds.(i) in
      madds.(i) <- madds.(j);
      madds.(j) <- tmp;
      Some
        {
          mclass = Pair_reorder;
          description =
            Printf.sprintf "phase 0: multiply-add slots %d and %d swapped" i j;
          plan =
            with_phase plan 0 (fun ph ->
                { ph with Plan.madds = Array.to_list madds });
        }
    end

let mutants (plan : Plan.t) =
  let phases =
    if plan.Plan.unroll > 1 then [ 0; plan.Plan.unroll - 1 ] else [ 0 ]
  in
  List.filter_map Fun.id
    (List.concat_map
       (fun p ->
         [ register_swap plan p; dropped_load plan p; retargeted_store plan p ])
       phases
    @ [ rotation_skew plan; pair_reorder plan ])
