(** FastTrack-style happens-before race detection.

    The compiler's core discipline is proving hazard-freedom before
    running a cycle (section 5.3's deadline schedule, checked by
    {!Verify}); this module applies the same discipline to the *host*
    runtime that PRs 2–5 bolted onto the simulated SIMD machine.  It
    replays an {!Access} event log through the vector-clock
    happens-before model ({!Hb}): a pair of accesses to the same
    region slot, from different domains, at least one a write, with no
    happens-before edge between them, is a data race.

    Detection follows the FastTrack economy — one write epoch and a
    per-domain read set per slot — and [Rmw] events synchronize
    through a per-slot pseudo-lock, so concurrent atomics are ordered
    while a de-atomized plain access races.  Lock events create the
    release→acquire edges; [Spawn]/[Join] create fork/join edges. *)

val analyze : Access.event list -> Finding.t list
(** Replay the log and return one [Data_race] finding per racing
    (family, index) slot — the first race found on it — naming the
    region, both domains and both execution phases, with the later
    access's phase as the finding's [ctx].  Empty iff the log is
    race-free under the happens-before model.  Deterministic: a pure
    function of the event list. *)
