(* The concurrency-mutation harness: PR 1's Mutate/Verify loop, replayed
   for the domain-safety analyzer.

   Where Mutate perturbs a microcode plan and Verify must reject it,
   this module builds an event-trace model of the runtime's
   synchronization protocol — the pool's publish/claim/complete/barrier
   cycle over a two-statement engine batch, locked metrics updates, the
   atomic claim counter of the shared item queue — and then seeds one
   concurrency bug into it.
   Race and Discipline must kill every mutant with a phase-attributed
   finding, while the unmutated model (and the instrumented live
   runtime, which follows the same protocol) must analyze clean.

   The model is a trace, not a schedule: emission order is one legal
   linearization of the protocol, and the analyzers work from vector
   clocks, so a bug is detected because an *edge* is missing, not
   because this particular interleaving happened to collide. *)

type mutation =
  | Dropped_metrics_lock
  | Overlapping_chunks
  | Deatomized_counter
  | Arena_alias
  | Lost_signal
  | Cache_write_bypass

let all =
  [
    Dropped_metrics_lock;
    Overlapping_chunks;
    Deatomized_counter;
    Arena_alias;
    Lost_signal;
    Cache_write_bypass;
  ]

let name = function
  | Dropped_metrics_lock -> "dropped-metrics-lock"
  | Overlapping_chunks -> "overlapping-chunks"
  | Deatomized_counter -> "deatomized-counter"
  | Arena_alias -> "arena-alias"
  | Lost_signal -> "lost-signal"
  | Cache_write_bypass -> "cache-write-bypass"

let of_name s = List.find_opt (fun m -> name m = s) all

let describe = function
  | Dropped_metrics_lock ->
      "one domain updates a metric without taking its per-metric lock"
  | Overlapping_chunks ->
      "one worker's claimed item range overlaps its neighbor's by one \
       item, as if the shared queue double-issued a claim"
  | Deatomized_counter ->
      "one worker updates the shared work counter with a plain \
       read-then-write instead of an atomic RMW"
  | Arena_alias ->
      "the arena hands the second batch statement a region aliasing the \
       first statement's destination while its gather is still in flight"
  | Lost_signal ->
      "one worker's completion signal is lost, so the coordinator passes \
       the barrier without the worker's happens-before edge"
  | Cache_write_bypass ->
      "a pooled chunk closure writes the coordinator-only engine cache, \
       bypassing the entry-point ownership guard"

(* Same private splitmix64 stream as Ccc_fault.Inject: every victim
   choice is a pure function of (seed, mutation), never of host
   state. *)
type rng = { mutable state : int64 }

let next r =
  r.state <- Int64.add r.state 0x9E3779B97F4A7C15L;
  let z = r.state in
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
      0xBF58476D1CE4E5B9L
  in
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
      0x94D049BB133111EBL
  in
  Int64.logxor z (Int64.shift_right_logical z 31)

let draw r bound =
  if bound <= 0 then 0
  else Int64.to_int (Int64.unsigned_rem (next r) (Int64.of_int bound))

let items = 8

(* Since PR 9 the pool claims items dynamically from a shared queue;
   a balanced contiguous split is one legal outcome of that claim
   order, and modelling it keeps every victim choice a pure function
   of (seed, mutation). *)
let chunk ~jobs k = (k * items / jobs, (k + 1) * items / jobs)

let build ~jobs mutation rng =
  if jobs < 2 then invalid_arg "Race_mutate: jobs < 2";
  let buf = ref [] in
  let ev d ph op = buf := { Access.dom = d; phase = ph; op } :: !buf in
  let victim_worker = 1 + draw rng (jobs - 1) in
  (* Generations: statement 0 -> scatter 1, compute 2; statement 1 ->
     scatter 3, compute 4.  Mutations that need a generation pick a
     compute one (the coordinator consumes chunk output there, so the
     missing edge is observable). *)
  let victim_gen =
    match mutation with
    | Some Overlapping_chunks -> 1 + draw rng 4
    | _ -> if draw rng 2 = 0 then 2 else 4
  in
  (* --- compile: coordinator-only engine state, outside any section *)
  for s = 0 to 1 do
    ev 0 "compile" (Access.Write ("engine.cache", s));
    ev 0 "compile" (Access.Write ("engine.tick", 0))
  done;
  (* --- metrics: every domain performs one locked update *)
  for d = 0 to jobs - 1 do
    let dropped = mutation = Some Dropped_metrics_lock && d = victim_worker in
    if not dropped then ev d "metrics" (Access.Acquire "metrics.metric#0");
    ev d "metrics" (Access.Write ("metrics.metric", 0));
    if not dropped then ev d "metrics" (Access.Release "metrics.metric#0")
  done;
  (* --- the pool protocol for one generation.

     The linearization matters: every fetch is emitted before any
     chunk body, and every body before any completion signal.  Chunk
     bodies run *outside* the pool's critical sections, so if they
     were interleaved with the lock round-trips the mutex's
     release->acquire edges would serialize the bodies and hide every
     intra-generation race from the vector-clock model. *)
  let generation ~gen ~phase ~body =
    (* publish *)
    ev 0 phase (Access.Acquire "pool.m");
    ev 0 phase (Access.Write ("pool.task", 0));
    ev 0 phase (Access.Release "pool.m");
    (* every worker fetches the task first *)
    for w = 1 to jobs - 1 do
      ev w phase (Access.Acquire "pool.m");
      ev w phase (Access.Read ("pool.task", 0));
      ev w phase (Access.Release "pool.m")
    done;
    (* all chunk bodies, coordinator's slot-0 chunk included *)
    for slot = 0 to jobs - 1 do
      ev slot phase (Access.Section_begin gen);
      body slot gen;
      ev slot phase (Access.Section_end gen)
    done;
    (* completion signals *)
    for w = 1 to jobs - 1 do
      let lost =
        mutation = Some Lost_signal && w = victim_worker && gen = victim_gen
      in
      if not lost then begin
        ev w phase (Access.Acquire "pool.m");
        ev w phase (Access.Write ("pool.pending", 0));
        ev w phase (Access.Release "pool.m")
      end
    done;
    (* coordinator barrier *)
    ev 0 phase (Access.Acquire "pool.m");
    ev 0 phase (Access.Read ("pool.pending", 0));
    ev 0 phase (Access.Release "pool.m")
  in
  let bounds slot gen =
    let lo, hi = chunk ~jobs slot in
    if
      mutation = Some Overlapping_chunks
      && slot = victim_worker && gen = victim_gen
    then if hi < items then (lo, hi + 1) else (lo - 1, hi)
    else (lo, hi)
  in
  (* One participant's dynamic-claim traffic for one generation: a
     fetch-and-add Rmw per claimed item, plus the one overshooting
     claim and its give-back — all emitted *before* the participant's
     item bodies.  The counter claims work, it does not publish
     results: emitting any claim after a body would let the counter
     pseudo-lock's release edge relay the body's writes to the next
     claimant, and that accidental edge would hide both an
     overlapping claim and a lost completion signal from the
     vector-clock model.  [deatomized] replaces the first claim with
     a plain read-then-write (the Deatomized_counter seed). *)
  let claims ~deatomized slot phase nitems =
    for c = 0 to nitems + 1 do
      if c = 0 && deatomized then begin
        ev slot phase (Access.Read ("pool.counter", 0));
        ev slot phase (Access.Write ("pool.counter", 0))
      end
      else ev slot phase (Access.Rmw ("pool.counter", 0))
    done
  in
  let scatter_body slot gen =
    let lo, hi = bounds slot gen in
    claims ~deatomized:false slot "scatter" (hi - lo);
    for i = lo to hi - 1 do
      ev slot "scatter" (Access.Write ("pool.item", i));
      ev slot "scatter" (Access.Write ("dist.node", i))
    done
  in
  let compute_body slot gen =
    let lo, hi = bounds slot gen in
    claims slot "compute" (hi - lo)
      ~deatomized:
        (mutation = Some Deatomized_counter
        && slot = victim_worker && gen = victim_gen);
    for i = lo to hi - 1 do
      ev slot "compute" (Access.Write ("pool.item", i));
      ev slot "compute" (Access.Read ("dist.node", i));
      ev slot "compute" (Access.Write ("exec.dst", i))
    done;
    if
      mutation = Some Cache_write_bypass
      && slot = victim_worker && gen = victim_gen
    then ev slot "compute" (Access.Write ("engine.cache", 0))
  in
  let gather () =
    for i = 0 to items - 1 do
      ev 0 "gather" (Access.Read ("exec.dst", i))
    done
  in
  (* statement 0 *)
  generation ~gen:1 ~phase:"scatter" ~body:scatter_body;
  generation ~gen:2 ~phase:"compute" ~body:compute_body;
  gather ();
  (* Arena alias: before statement 1 is published, the victim worker
     already writes the statement-1 destination — which aliases the
     statement-0 region the gather above just read, with no pool edge
     in between. *)
  if mutation = Some Arena_alias then begin
    let lo, hi = chunk ~jobs victim_worker in
    ev victim_worker "batch" (Access.Section_begin 4);
    for i = lo to hi - 1 do
      ev victim_worker "batch" (Access.Write ("exec.dst", i))
    done;
    ev victim_worker "batch" (Access.Section_end 4)
  end;
  (* statement 1 *)
  generation ~gen:3 ~phase:"scatter" ~body:scatter_body;
  generation ~gen:4 ~phase:"compute" ~body:compute_body;
  gather ();
  List.rev !buf

let clean ~jobs = build ~jobs None { state = 0L }

let mutated ~seed ~jobs m =
  build ~jobs (Some m)
    { state = Int64.of_int ((seed * 0x1F1F) lxor Hashtbl.hash (name m)) }
