(** Seeded concurrency-mutation harness for the domain-safety analyzer.

    The PR-1 loop — mutate a plan, demand that {!Verify} reject it —
    replayed at the synchronization layer: build an event-trace model
    of the runtime's protocol (the pool's publish/chunk/complete/
    barrier cycle over a two-statement engine batch, locked metrics
    updates, an atomic work counter), seed exactly one concurrency bug
    into it, and demand that {!Race} or {!Discipline} kill the mutant
    with a phase-attributed finding.  The unmutated model must analyze
    clean, as must the instrumented live runtime it mirrors.

    The model is a trace, not a schedule: the analyzers work from
    vector clocks, so a mutant is killed because a happens-before edge
    or ownership rule is *missing*, not because one particular
    interleaving happened to collide. *)

type mutation =
  | Dropped_metrics_lock
      (** One domain updates a metric without its per-metric lock. *)
  | Overlapping_chunks
      (** One worker's chunk partition overlaps its neighbor's. *)
  | Deatomized_counter
      (** Plain read-then-write on the atomic work counter. *)
  | Arena_alias
      (** A batch statement's region aliases the previous statement's
          destination while its gather is still in flight. *)
  | Lost_signal
      (** A worker's completion signal is lost; the coordinator passes
          the barrier without that worker's happens-before edge. *)
  | Cache_write_bypass
      (** A pooled chunk closure writes the coordinator-only engine
          cache, bypassing the entry-point ownership guard. *)

val all : mutation list
(** Every mutation, in kill-matrix order. *)

val name : mutation -> string
(** Stable kebab-case name, e.g. ["dropped-metrics-lock"]. *)

val of_name : string -> mutation option
(** Inverse of {!name}. *)

val describe : mutation -> string
(** One-line description of the seeded bug, for reports. *)

val clean : jobs:int -> Access.event list
(** The unmutated protocol model for [jobs] domains (>= 2): it must
    produce zero findings from both {!Race.analyze} and
    {!Discipline.check}.  @raise Invalid_argument if [jobs < 2]. *)

val mutated : seed:int -> jobs:int -> mutation -> Access.event list
(** The model with one seeded bug.  The victim domain, generation and
    slot are drawn from a private splitmix64 stream (same idiom as
    [Ccc_fault.Inject]), so the trace is a pure function of
    [(seed, jobs, mutation)].  @raise Invalid_argument if [jobs < 2]. *)
