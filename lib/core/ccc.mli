(** The Connection Machine Convolution Compiler — public API.

    This is the user-level surface the paper promises: express a
    stencil computation as an ordinary Fortran 90 array assignment (or
    the Lisp [defstencil] of the first prototype), compile it once, and
    apply it to arrays at better-than-library-routine speed, on any
    stencil pattern rather than a preselected menu.

    For a single statement, compile and {!run}:

    {[
      let source = "SUBROUTINE CROSS (R, X, C1, C2, C3, C4, C5)\n\
                    REAL, ARRAY(:,:) :: R, X, C1, C2, C3, C4, C5\n\
                    R = C1 * CSHIFT(X, 1, -1) &\n\
                    \  + C2 * CSHIFT(X, 2, -1) &\n\
                    \  + C3 * X &\n\
                    \  + C4 * CSHIFT(X, 2, +1) &\n\
                    \  + C5 * CSHIFT(X, 1, +1)\n\
                    END\n"
      in
      let compiled = Ccc.compile_fortran_exn Ccc.Config.default source in
      match Ccc.run Ccc.Config.default compiled env with
      | Ok { Ccc.Exec.output; stats } -> ...
      | Error e -> prerr_endline (Ccc.error_to_string e)
    ]}

    For many statements over one resident machine — the paper's
    sustained production runs — use the persistent {!Engine}, whose
    plan cache and standing arena amortize compilation and per-call
    setup:

    {[
      let engine = Ccc.Engine.create Ccc.Config.default in
      match Ccc.Engine.run_statement engine stmt env with
      | Ok { Ccc.Exec.output; stats } -> ...
      | Error e -> prerr_endline (Ccc.Engine.error_to_string e)
    ]}

    The submodule aliases expose each subsystem (machine model, stencil
    IR, front ends, compiler, microcode, run time, service layer) under
    one roof. *)

(** {1 Subsystems} *)

module Config = Ccc_cm2.Config
module Geometry = Ccc_cm2.Geometry
module Machine = Ccc_cm2.Machine
module Offset = Ccc_stencil.Offset
module Coeff = Ccc_stencil.Coeff
module Tap = Ccc_stencil.Tap
module Boundary = Ccc_stencil.Boundary
module Pattern = Ccc_stencil.Pattern
module Multi = Ccc_stencil.Multi
module Multistencil = Ccc_stencil.Multistencil
module Render = Ccc_stencil.Render
module Parser = Ccc_frontend.Parser
module Defstencil = Ccc_frontend.Defstencil
module Recognize = Ccc_frontend.Recognize
module Diagnostics = Ccc_frontend.Diagnostics
module Finding = Ccc_analysis.Finding
module Verify = Ccc_analysis.Verify
module Mutate = Ccc_analysis.Mutate
module Access = Ccc_analysis.Access
module Hb = Ccc_analysis.Hb
module Race = Ccc_analysis.Race
module Discipline = Ccc_analysis.Discipline
module Race_mutate = Ccc_analysis.Race_mutate
module Compile = Ccc_compiler.Compile
module Plan = Ccc_microcode.Plan
module Cost = Ccc_microcode.Cost
module Grid = Ccc_runtime.Grid
module Dist = Ccc_runtime.Dist
module Halo = Ccc_runtime.Halo
module Pool = Ccc_runtime.Pool
module Kernel = Ccc_runtime.Kernel

(** The transform-domain path (PR 10): circular convolution via
    zero-padded radix-2 transforms, the fifth execution backend for
    dense kernels the compiled multistencil rejects. *)
module Fft = Ccc_runtime.Fft

module Reference = Ccc_runtime.Reference
module Exec = Ccc_runtime.Exec
module Stats = Ccc_runtime.Stats
module Passes = Ccc_runtime.Passes
module Seismic = Ccc_runtime.Seismic
module Inject = Ccc_fault.Inject
module Guard = Ccc_fault.Guard
module Conformance = Ccc_fault.Conformance
module Engine = Ccc_service.Engine
module Fingerprint = Ccc_service.Fingerprint

(** The unified request outcome (PR 7): success-with-stats, degraded,
    refused and shed in one shape, each carrying the stencil
    fingerprint and cycle attribution.  {!type-error} below,
    {!Engine.error} and {!Engine.outcome} are deprecated aliases /
    precursors of its arms. *)
module Outcome = Ccc_service.Outcome

(** The multi-tenant stencil service (PR 7): {!Request} is the
    admission currency, {!Serve} the scheduler — sharded resident
    engines behind one queue, answering every request with an
    {!Outcome.t}. *)
module Request = Ccc_serve.Request

module Serve = Ccc_serve.Serve
module Obs = Ccc_obs.Obs
module Trace = Ccc_obs.Trace
module Metrics = Ccc_obs.Metrics
module Flight = Ccc_obs.Flight
module Expo = Ccc_obs.Expo
module Profiler = Ccc_obs.Profiler

(** {1 Compilation entry points}

    Every [?obs] parameter below (default: disabled, allocation-free)
    threads an observability context ({!Obs}) through the pipeline:
    the front-end phases appear as [parse] / [recognize] spans and the
    compiler opens its own [compile] span tree (see
    {!Compile.compile}).  Rejections on every error path are also
    structured warnings on the ["ccc"] {!Logs} source, carrying the
    stencil fingerprint when one is recoverable. *)

(** Deprecated alias: the one definition of this shape is
    {!Outcome.reject}; the alias (and its re-exported constructors)
    keeps existing callers compiling while they migrate. *)
type error = Ccc_service.Engine.error =
  | Parse_error of string
  | Rejected of Diagnostics.t list
      (** the statement does not fit the stylized stencil form *)
  | Resource_error of (int * Finding.t) list
      (** no multistencil width fits registers or scratch memory: the
          per-width rejection findings, widest first — the structured
          form of the section-6 feedback (render with
          {!Compile.no_workable} or {!error_to_string}) *)
  | Too_small of string
      (** the subgrid cannot accommodate the stencil's border *)
  | Invalid_batch of string
      (** batch statements do not share a source array and boundary *)

val error_to_string : error -> string
(** Deprecated alias of {!Outcome.reject_to_string}. *)

val compile_pattern :
  ?obs:Obs.t -> Config.t -> Pattern.t -> (Compile.t, error) result
(** Compile a stencil given directly as IR. *)

val compile_fortran :
  ?obs:Obs.t -> Config.t -> string -> (Compile.t, error) result
(** Compile an isolated Fortran subroutine containing one stencil
    assignment (the paper's version-2 convention). *)

val compile_fortran_statement :
  ?obs:Obs.t -> Config.t -> string -> (Compile.t, error) result
(** Compile a single bare assignment statement. *)

val compile_defstencil :
  ?obs:Obs.t -> Config.t -> string -> (Compile.t, error) result
(** Compile a Lisp [defstencil] form (the version-1 convention). *)

val compile_fortran_exn : Config.t -> string -> Compile.t
(** Like {!compile_fortran} but raises [Failure]. *)

type program_unit = {
  unit_name : string;  (** subroutine name *)
  flagged : bool;  (** carried a [!CCC$ STENCIL] directive *)
  outcome : (Compile.t, error) result;
}

val compile_program : Config.t -> string -> (program_unit list, error) result
(** Compile every subroutine in a source file — the section-6 workflow
    for the production compiler.  A subroutine flagged with the
    [!CCC$ STENCIL] structured comment that cannot be processed is a
    reportable condition for the caller (the directive "justifies the
    compiler in providing feedback to the user"); unflagged failures
    are ordinary fallbacks to the general code path. *)

(** {1 Fused multi-source compilation (future work, section 7)}

    "Future versions of the compiler should be able to handle all ten
    terms as one stencil pattern": these entry points accept
    assignments whose terms shift several distinct arrays — e.g. the
    Gordon Bell statement with its [C10 * CSHIFT(POLD, 1, 0)] tenth
    term — and compile them into a single plan with one halo exchange
    per source. *)

val compile_multi :
  ?obs:Obs.t -> Config.t -> Multi.t -> (Compile.fused, error) result

val compile_fortran_statement_multi :
  ?obs:Obs.t -> Config.t -> string -> (Compile.fused, error) result

val apply_fused :
  ?obs:Obs.t ->
  ?mode:Exec.mode ->
  ?iterations:int ->
  ?jobs:int ->
  Config.t ->
  Compile.fused ->
  Reference.env ->
  Exec.result

val fused_report : Compile.fused -> string

(** {1 Convenience} *)

val machine : ?memory_words:int -> Config.t -> Machine.t

val run :
  ?obs:Obs.t ->
  ?mode:Exec.mode ->
  ?iterations:int ->
  ?jobs:int ->
  Config.t ->
  Compile.t ->
  Reference.env ->
  (Exec.result, error) result
(** One-shot: build a machine, run, return output and statistics.  The
    primary entry point; a stencil whose border exceeds the per-node
    subgrid returns [Error (Too_small _)] (and a structured warning
    with the stencil fingerprint).  [jobs] (default 1) runs the
    per-node loops across that many domains (a {!Pool} spawned and
    joined inside the call); the output and statistics are
    bit-identical for every jobs value.  For repeated requests use
    {!Engine}, which keeps the machine (and compiled plans, and the
    pool) resident between calls. *)

val apply :
  ?obs:Obs.t ->
  ?mode:Exec.mode ->
  ?iterations:int ->
  ?jobs:int ->
  Config.t ->
  Compile.t ->
  Reference.env ->
  Exec.result
(** {!run} in exception style: raises {!Exec.Too_small} instead of
    returning it.  Kept as the historical name. *)

val report : Compile.t -> string
(** The compilation report (widths, registers, rings, unroll factors,
    rejections) as text. *)
