module Config = Ccc_cm2.Config
module Geometry = Ccc_cm2.Geometry
module Machine = Ccc_cm2.Machine
module Offset = Ccc_stencil.Offset
module Coeff = Ccc_stencil.Coeff
module Tap = Ccc_stencil.Tap
module Boundary = Ccc_stencil.Boundary
module Pattern = Ccc_stencil.Pattern
module Multi = Ccc_stencil.Multi
module Multistencil = Ccc_stencil.Multistencil
module Render = Ccc_stencil.Render
module Parser = Ccc_frontend.Parser
module Defstencil = Ccc_frontend.Defstencil
module Recognize = Ccc_frontend.Recognize
module Diagnostics = Ccc_frontend.Diagnostics
module Finding = Ccc_analysis.Finding
module Verify = Ccc_analysis.Verify
module Mutate = Ccc_analysis.Mutate
module Access = Ccc_analysis.Access
module Hb = Ccc_analysis.Hb
module Race = Ccc_analysis.Race
module Discipline = Ccc_analysis.Discipline
module Race_mutate = Ccc_analysis.Race_mutate
module Compile = Ccc_compiler.Compile
module Plan = Ccc_microcode.Plan
module Cost = Ccc_microcode.Cost
module Grid = Ccc_runtime.Grid
module Dist = Ccc_runtime.Dist
module Halo = Ccc_runtime.Halo
module Pool = Ccc_runtime.Pool
module Kernel = Ccc_runtime.Kernel
module Fft = Ccc_runtime.Fft
module Reference = Ccc_runtime.Reference
module Exec = Ccc_runtime.Exec
module Stats = Ccc_runtime.Stats
module Passes = Ccc_runtime.Passes
module Seismic = Ccc_runtime.Seismic
module Inject = Ccc_fault.Inject
module Guard = Ccc_fault.Guard
module Conformance = Ccc_fault.Conformance
module Engine = Ccc_service.Engine
module Fingerprint = Ccc_service.Fingerprint
module Outcome = Ccc_service.Outcome
module Request = Ccc_serve.Request
module Serve = Ccc_serve.Serve
module Obs = Ccc_obs.Obs
module Trace = Ccc_obs.Trace
module Metrics = Ccc_obs.Metrics
module Flight = Ccc_obs.Flight
module Expo = Ccc_obs.Expo
module Profiler = Ccc_obs.Profiler

let src = Logs.Src.create "ccc" ~doc:"Ccc entry-point rejections"

module Log = (val Logs.src_log src : Logs.LOG)

type error = Ccc_service.Engine.error =
  | Parse_error of string
  | Rejected of Diagnostics.t list
  | Resource_error of (int * Finding.t) list
  | Too_small of string
  | Invalid_batch of string

let error_to_string = Engine.error_to_string

(* Structured rejection log for service operators: every error path
   out of the result-typed entry points warns with the stencil
   fingerprint (when one is recoverable), so rejections correlate
   with requests. *)
let warn_rejection ?pattern e =
  Log.warn (fun m ->
      m "stencil %s rejected: %s"
        (match pattern with
        | Some p -> Fingerprint.pattern p
        | None -> "<unrecognized>")
        (error_to_string e))

let compile_pattern ?obs config pattern =
  match Compile.compile ?obs config pattern with
  | Ok compiled -> Ok compiled
  | Error rejections ->
      let e = Resource_error rejections in
      warn_rejection ~pattern e;
      Error e

let of_recognized ?obs config = function
  | Ok pattern -> compile_pattern ?obs config pattern
  | Error diags -> Error (Rejected diags)

let parse_span obs f =
  match obs with
  | None -> f ()
  | Some o -> Obs.span o "parse" f

let recognize_span obs f =
  match obs with
  | None -> f ()
  | Some o -> Obs.span o "recognize" f

let compile_fortran ?obs config source =
  match parse_span obs (fun () -> Parser.parse_subroutine source) with
  | sub ->
      of_recognized ?obs config
        (recognize_span obs (fun () -> Recognize.subroutine sub))
  | exception Parser.Error { line; message } ->
      Error (Parse_error (Printf.sprintf "line %d: %s" line message))

let compile_fortran_statement ?obs config source =
  match parse_span obs (fun () -> Parser.parse_statement source) with
  | stmt ->
      of_recognized ?obs config
        (recognize_span obs (fun () -> Recognize.statement stmt))
  | exception Parser.Error { line; message } ->
      Error (Parse_error (Printf.sprintf "line %d: %s" line message))

let compile_defstencil ?obs config source =
  match parse_span obs (fun () -> Defstencil.parse source) with
  | form ->
      of_recognized ?obs config
        (recognize_span obs (fun () ->
             Recognize.subroutine (Defstencil.to_subroutine form)))
  | exception Defstencil.Error message -> Error (Parse_error message)

type program_unit = {
  unit_name : string;
  flagged : bool;
  outcome : (Compile.t, error) result;
}

let compile_program config source =
  match Parser.parse_program source with
  | exception Parser.Error { line; message } ->
      Error (Parse_error (Printf.sprintf "line %d: %s" line message))
  | subs ->
      Ok
        (List.map
           (fun (sub : Ccc_frontend.Ast.subroutine) ->
             let flagged =
               List.exists
                 (fun (s : Ccc_frontend.Ast.stmt) -> s.Ccc_frontend.Ast.flagged)
                 sub.Ccc_frontend.Ast.body
             in
             {
               unit_name = sub.Ccc_frontend.Ast.sub_name;
               flagged;
               outcome = of_recognized config (Recognize.subroutine sub);
             })
           subs)

let compile_fortran_exn config source =
  match compile_fortran config source with
  | Ok compiled -> compiled
  | Error e -> failwith (error_to_string e)

let compile_multi ?obs config multi =
  match Compile.compile_fused ?obs config multi with
  | Ok fused -> Ok fused
  | Error rejections ->
      let e = Resource_error rejections in
      Log.warn (fun m ->
          m "multistencil (%d taps) rejected: %s"
            (Ccc_stencil.Multi.tap_count multi)
            (error_to_string e));
      Error e

let compile_fortran_statement_multi ?obs config source =
  match parse_span obs (fun () -> Parser.parse_statement source) with
  | stmt -> begin
      match recognize_span obs (fun () -> Recognize.statement_multi stmt) with
      | Ok multi -> compile_multi ?obs config multi
      | Error diags -> Error (Rejected diags)
    end
  | exception Parser.Error { line; message } ->
      Error (Parse_error (Printf.sprintf "line %d: %s" line message))

let fused_report fused = Format.asprintf "%a" Compile.pp_fused_report fused

let machine ?memory_words config = Machine.create ?memory_words config

(* A one-shot pool for the one-shot entry points: spawned only when
   [jobs > 1], always joined on the way out (OCaml caps live domains,
   so leaking one per call would exhaust the runtime). *)
let with_pool jobs f =
  match jobs with
  | 1 -> f Pool.sequential
  | n ->
      let pool = Pool.create ~jobs:n in
      Fun.protect ~finally:(fun () -> Pool.shutdown pool) (fun () -> f pool)

let apply ?obs ?mode ?iterations ?(jobs = 1) config compiled env =
  with_pool jobs (fun pool ->
      Exec.run ?obs ?mode ?iterations ~pool (machine config) compiled env)

let run ?obs ?mode ?iterations ?jobs config compiled env =
  match apply ?obs ?mode ?iterations ?jobs config compiled env with
  | result -> Ok result
  | exception Exec.Too_small m ->
      let e = Too_small m in
      Log.warn (fun fmt ->
          fmt "stencil %s rejected: %s"
            (Fingerprint.pattern compiled.Compile.pattern)
            (error_to_string e));
      Error e

let apply_fused ?obs ?mode ?iterations ?(jobs = 1) config fused env =
  with_pool jobs (fun pool ->
      Exec.run_fused ?obs ?mode ?iterations ~pool (machine config) fused env)

let report compiled = Format.asprintf "%a" Compile.pp_report compiled
