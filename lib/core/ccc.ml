module Config = Ccc_cm2.Config
module Geometry = Ccc_cm2.Geometry
module Machine = Ccc_cm2.Machine
module Offset = Ccc_stencil.Offset
module Coeff = Ccc_stencil.Coeff
module Tap = Ccc_stencil.Tap
module Boundary = Ccc_stencil.Boundary
module Pattern = Ccc_stencil.Pattern
module Multi = Ccc_stencil.Multi
module Multistencil = Ccc_stencil.Multistencil
module Render = Ccc_stencil.Render
module Parser = Ccc_frontend.Parser
module Defstencil = Ccc_frontend.Defstencil
module Recognize = Ccc_frontend.Recognize
module Diagnostics = Ccc_frontend.Diagnostics
module Finding = Ccc_analysis.Finding
module Verify = Ccc_analysis.Verify
module Mutate = Ccc_analysis.Mutate
module Compile = Ccc_compiler.Compile
module Plan = Ccc_microcode.Plan
module Cost = Ccc_microcode.Cost
module Grid = Ccc_runtime.Grid
module Dist = Ccc_runtime.Dist
module Halo = Ccc_runtime.Halo
module Reference = Ccc_runtime.Reference
module Exec = Ccc_runtime.Exec
module Stats = Ccc_runtime.Stats
module Passes = Ccc_runtime.Passes
module Seismic = Ccc_runtime.Seismic
module Engine = Ccc_service.Engine
module Fingerprint = Ccc_service.Fingerprint

type error = Ccc_service.Engine.error =
  | Parse_error of string
  | Rejected of Diagnostics.t list
  | Resource_error of (int * Finding.t) list
  | Too_small of string
  | Invalid_batch of string

let error_to_string = Engine.error_to_string

let compile_pattern config pattern =
  match Compile.compile config pattern with
  | Ok compiled -> Ok compiled
  | Error rejections -> Error (Resource_error rejections)

let of_recognized config = function
  | Ok pattern -> compile_pattern config pattern
  | Error diags -> Error (Rejected diags)

let compile_fortran config source =
  match Parser.parse_subroutine source with
  | sub -> of_recognized config (Recognize.subroutine sub)
  | exception Parser.Error { line; message } ->
      Error (Parse_error (Printf.sprintf "line %d: %s" line message))

let compile_fortran_statement config source =
  match Parser.parse_statement source with
  | stmt -> of_recognized config (Recognize.statement stmt)
  | exception Parser.Error { line; message } ->
      Error (Parse_error (Printf.sprintf "line %d: %s" line message))

let compile_defstencil config source =
  match Defstencil.parse source with
  | form ->
      of_recognized config (Recognize.subroutine (Defstencil.to_subroutine form))
  | exception Defstencil.Error message -> Error (Parse_error message)

type program_unit = {
  unit_name : string;
  flagged : bool;
  outcome : (Compile.t, error) result;
}

let compile_program config source =
  match Parser.parse_program source with
  | exception Parser.Error { line; message } ->
      Error (Parse_error (Printf.sprintf "line %d: %s" line message))
  | subs ->
      Ok
        (List.map
           (fun (sub : Ccc_frontend.Ast.subroutine) ->
             let flagged =
               List.exists
                 (fun (s : Ccc_frontend.Ast.stmt) -> s.Ccc_frontend.Ast.flagged)
                 sub.Ccc_frontend.Ast.body
             in
             {
               unit_name = sub.Ccc_frontend.Ast.sub_name;
               flagged;
               outcome = of_recognized config (Recognize.subroutine sub);
             })
           subs)

let compile_fortran_exn config source =
  match compile_fortran config source with
  | Ok compiled -> compiled
  | Error e -> failwith (error_to_string e)

let compile_multi config multi =
  match Compile.compile_fused config multi with
  | Ok fused -> Ok fused
  | Error rejections -> Error (Resource_error rejections)

let compile_fortran_statement_multi config source =
  match Parser.parse_statement source with
  | stmt -> begin
      match Recognize.statement_multi stmt with
      | Ok multi -> compile_multi config multi
      | Error diags -> Error (Rejected diags)
    end
  | exception Parser.Error { line; message } ->
      Error (Parse_error (Printf.sprintf "line %d: %s" line message))

let fused_report fused = Format.asprintf "%a" Compile.pp_fused_report fused

let machine ?memory_words config = Machine.create ?memory_words config

let apply ?mode ?iterations config compiled env =
  Exec.run ?mode ?iterations (machine config) compiled env

let run ?mode ?iterations config compiled env =
  match apply ?mode ?iterations config compiled env with
  | result -> Ok result
  | exception Exec.Too_small m -> Error (Too_small m)

let apply_fused ?mode ?iterations config fused env =
  Exec.run_fused ?mode ?iterations (machine config) fused env

let report compiled = Format.asprintf "%a" Compile.pp_report compiled
