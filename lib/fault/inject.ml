module Machine = Ccc_cm2.Machine
module Memory = Ccc_cm2.Memory
module Exec = Ccc_runtime.Exec
module Halo = Ccc_runtime.Halo
module Dist = Ccc_runtime.Dist
module Kernel = Ccc_runtime.Kernel

type fault =
  | Bit_flip
  | Halo_drop
  | Halo_duplicate
  | Phase_skip
  | Kernel_poison
  | Fft_poison
  | Pool_death

let all =
  [ Bit_flip; Halo_drop; Halo_duplicate; Phase_skip; Kernel_poison; Pool_death ]

let fft_faults =
  [ Bit_flip; Halo_drop; Halo_duplicate; Phase_skip; Fft_poison; Pool_death ]

let name = function
  | Bit_flip -> "bit-flip"
  | Halo_drop -> "halo-drop"
  | Halo_duplicate -> "halo-duplicate"
  | Phase_skip -> "phase-skip"
  | Kernel_poison -> "kernel-poison"
  | Fft_poison -> "fft-poison"
  | Pool_death -> "pool-death"

let of_name s =
  List.find_opt
    (fun f -> name f = s)
    [
      Bit_flip;
      Halo_drop;
      Halo_duplicate;
      Phase_skip;
      Kernel_poison;
      Fft_poison;
      Pool_death;
    ]

exception Worker_died of int

(* A private splitmix64 stream: every injector choice is a pure
   function of (seed, fault), never of host state — the stdlib Random
   (or any ambient entropy) would break run-to-run determinism and
   with it the cram-pinned conformance output. *)
type rng = { mutable state : int64 }

let next r =
  r.state <- Int64.add r.state 0x9E3779B97F4A7C15L;
  let z = r.state in
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L
  in
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL
  in
  Int64.logxor z (Int64.shift_right_logical z 31)

let draw r bound =
  if bound <= 0 then 0
  else Int64.to_int (Int64.unsigned_rem (next r) (Int64.of_int bound))

type t = {
  fault : fault;
  rng : rng;
  nodes : int;
  victim : int;  (** for [Pool_death]; drawn at arm time *)
  armed : bool ref;
  mutable fired : string option;
}

let arm ~seed ~nodes fault =
  let fault_index =
    match fault with
    | Bit_flip -> 1
    | Halo_drop -> 2
    | Halo_duplicate -> 3
    | Phase_skip -> 4
    | Kernel_poison -> 5
    | Pool_death -> 6
    | Fft_poison -> 7
  in
  let rng =
    { state = Int64.logxor (Int64.of_int seed) (Int64.of_int (fault_index * 0x51ED)) }
  in
  (* burn one draw so neighboring seeds diverge immediately *)
  ignore (next rng);
  let victim = draw rng (max 1 nodes) in
  { fault; rng; nodes = max 1 nodes; victim; armed = ref true; fired = None }

let fault t = t.fault
let armed t = !(t.armed)
let fired t = t.fired

let fire t msg =
  t.armed := false;
  t.fired <- Some msg

let flip_sign v =
  Int64.float_of_bits (Int64.logxor (Int64.bits_of_float v) Int64.min_int)

let padded_addr (h : Halo.exchange) r c =
  h.Halo.padded.Memory.base
  + ((r + h.Halo.pad) * h.Halo.padded_cols)
  + c + h.Halo.pad

let padded_get machine (h : Halo.exchange) ~node r c =
  Memory.read (Machine.memory machine node) (padded_addr h r c)

let padded_set machine (h : Halo.exchange) ~node r c v =
  Memory.write (Machine.memory machine node) (padded_addr h r c) v

(* The frame cells the exchange actually received from neighbors,
   excluding the corner blocks (which may hold NaN poison no value
   comparison can see through). *)
let edge_cells ~pad ~sub_rows ~sub_cols =
  let cells = ref [] in
  for r = -pad to -1 do
    for c = 0 to sub_cols - 1 do
      cells := (r, c) :: !cells
    done
  done;
  for r = sub_rows to sub_rows + pad - 1 do
    for c = 0 to sub_cols - 1 do
      cells := (r, c) :: !cells
    done
  done;
  for r = 0 to sub_rows - 1 do
    for c = -pad to -1 do
      cells := (r, c) :: !cells
    done;
    for c = sub_cols to sub_cols + pad - 1 do
      cells := (r, c) :: !cells
    done
  done;
  Array.of_list (List.rev !cells)

(* Scan [cells] circularly from a seeded start for the first index
   satisfying [pred]; None when the fault is vacuous (e.g. every
   candidate is already 0.0, so corrupting it would change nothing). *)
let scan t cells pred =
  let n = Array.length cells in
  if n = 0 then None
  else
    let start = draw t.rng n in
    let rec go k =
      if k >= n then None
      else
        let i = (start + k) mod n in
        if pred cells.(i) then Some cells.(i) else go (k + 1)
    in
    go 0

let inject_halo t (ctx : Exec.phase_ctx) =
  match (ctx.Exec.halo, ctx.Exec.dst) with
  | Some halo, Some dst ->
      let machine = ctx.Exec.machine in
      let sub_rows = dst.Dist.sub_rows and sub_cols = dst.Dist.sub_cols in
      let pad = halo.Halo.pad in
      let node = draw t.rng (Machine.node_count machine) in
      let usable v = (not (Float.is_nan v)) && Float.abs v > 1e-6 in
      let get (r, c) = padded_get machine halo ~node r c in
      (match t.fault with
      | Bit_flip ->
          (* anywhere in the padded temporary — interior included,
             since ECC protects all of memory equally *)
          let prows = sub_rows + (2 * pad) and pcols = sub_cols + (2 * pad) in
          let cells =
            Array.init (prows * pcols) (fun i ->
                ((i / pcols) - pad, (i mod pcols) - pad))
          in
          (match scan t cells (fun rc -> usable (get rc)) with
          | Some (r, c) ->
              let v = get (r, c) in
              padded_set machine halo ~node r c (flip_sign v);
              fire t
                (Printf.sprintf
                   "bit-flip: node %d padded cell (%d,%d): %g -> %g" node r c v
                   (flip_sign v))
          | None -> fire t "bit-flip: vacuous (no usable cell)")
      | Halo_drop ->
          let cells = edge_cells ~pad ~sub_rows ~sub_cols in
          (match scan t cells (fun rc -> usable (get rc)) with
          | Some (r, c) ->
              padded_set machine halo ~node r c 0.0;
              fire t
                (Printf.sprintf "halo-drop: node %d border cell (%d,%d) -> 0"
                   node r c)
          | None -> fire t "halo-drop: vacuous (no usable border cell)")
      | Halo_duplicate ->
          let cells = edge_cells ~pad ~sub_rows ~sub_cols in
          let n = Array.length cells in
          let differs (r, c) =
            let v = get (r, c) in
            (not (Float.is_nan v))
            &&
            let i = ref 0 in
            (* find this cell's successor in the border walk *)
            while !i < n && cells.(!i) <> (r, c) do
              incr i
            done;
            let w = get cells.((!i + 1) mod n) in
            (not (Float.is_nan w)) && Float.compare v w <> 0
          in
          (match scan t cells differs with
          | Some (r, c) ->
              let i = ref 0 in
              while !i < n && cells.(!i) <> (r, c) do
                incr i
              done;
              let r', c' = cells.((!i + 1) mod n) in
              padded_set machine halo ~node r c (get (r', c'));
              fire t
                (Printf.sprintf
                   "halo-duplicate: node %d border cell (%d,%d) overwritten \
                    by (%d,%d)"
                   node r c r' c')
          | None -> fire t "halo-duplicate: vacuous (uniform border)")
      | Phase_skip | Kernel_poison | Fft_poison | Pool_death -> ())
  | _ -> ()

let inject_phase_skip t (ctx : Exec.phase_ctx) =
  match ctx.Exec.dst with
  | Some dst ->
      let node = draw t.rng (Machine.node_count ctx.Exec.machine) in
      let rows = dst.Dist.sub_rows and cols = dst.Dist.sub_cols in
      let row_live r =
        let live = ref false in
        for c = 0 to cols - 1 do
          if Float.abs (Dist.local_get dst ~node ~row:r ~col:c) > 1e-9 then
            live := true
        done;
        !live
      in
      let cand = Array.init rows (fun r -> (r, 0)) in
      (match scan t cand (fun (r, _) -> row_live r) with
      | Some (r, _) ->
          for c = 0 to cols - 1 do
            Dist.local_set dst ~node ~row:r ~col:c 0.0
          done;
          fire t
            (Printf.sprintf "phase-skip: node %d output row %d zeroed" node r)
      | None -> fire t "phase-skip: vacuous (all-zero output)")
  | None -> ()

let hooks t =
  {
    Exec.on_phase =
      (fun ctx ->
        if !(t.armed) then
          match (t.fault, ctx.Exec.phase) with
          | (Bit_flip | Halo_drop | Halo_duplicate), "halo" ->
              inject_halo t ctx
          | Phase_skip, "compute" -> inject_phase_skip t ctx
          | _ -> ());
    on_compute_node =
      (fun node ->
        if t.fault = Pool_death && !(t.armed) && node = t.victim then begin
          fire t (Printf.sprintf "pool-death: worker for node %d died" node);
          raise (Worker_died node)
        end);
  }

let poison_kernel t kernel =
  if t.fault = Kernel_poison && !(t.armed) then begin
    let seed = draw t.rng 0x3FFF in
    fire t (Printf.sprintf "kernel-poison: cached kernel corrupted (seed %d)" seed);
    Kernel.corrupt ~seed kernel
  end
  else kernel

let poison_fft t plan =
  if t.fault = Fft_poison && !(t.armed) then begin
    let seed = draw t.rng 0x3FFF in
    fire t
      (Printf.sprintf "fft-poison: cached transform spectrum corrupted (seed %d)"
         seed);
    Ccc_runtime.Fft.corrupt ~seed plan
  end
