(** Runtime self-checking for the simulated substrate.

    The paper's correctness story is static: verify the microcode
    once, trust the hardware forever (section 8, "we tested the
    microcode loops thoroughly").  {!Inject} deliberately breaks the
    hardware half of that bargain, so this module supplies the
    matching runtime half — independent recomputation of what each
    phase must have produced:

    - {!check_halo} re-derives every padded halo cell from the
      distributed source with the same owner arithmetic as
      {!Ccc_runtime.Halo.exchange_into} and compares bit for bit
      (clean runs recompute the identical value, so exact equality
      has zero false positives);
    - {!check_output} compares a gathered result against
      {!Ccc_runtime.Reference.apply} to the suite-wide 1e-9;
    - {!check_kernel} re-proves a cached lowered kernel on the
      one-node sandbox ({!Ccc_runtime.Kernel.verify});
    - {!revalidate} re-runs the standalone dataflow verifier
      ({!Ccc_analysis.Verify}) over every cached plan.

    All checks return structured {!Ccc_analysis.Finding.t} lists
    ([Halo_integrity] / [Output_integrity] / [Kernel_integrity]) with
    the corrupted location in the message — detection is data, never
    a crash. *)

type watch = {
  hooks : Ccc_runtime.Exec.hooks;
      (** runs {!check_halo} after every halo exchange *)
  caught : Ccc_analysis.Finding.t list ref;
      (** findings accumulated by the hooks, newest first *)
}

val watch : Ccc_stencil.Pattern.t -> watch
(** In-flight guard hooks for one statement: the halo check fires on
    the ["halo"] phase (the padded temporaries are released before
    [run] returns, so the check cannot run after the fact).  Compose
    after an injector with {!Ccc_runtime.Exec.compose_hooks} so the
    guard sees what the fault corrupted. *)

val check_halo :
  source:Ccc_runtime.Dist.t ->
  halo:Ccc_runtime.Halo.exchange ->
  boundary:Ccc_stencil.Boundary.t ->
  needs_corners:bool ->
  Ccc_analysis.Finding.t list
(** Recompute every padded cell on every node (wraparound or fill via
    {!Ccc_runtime.Dist.owner}, NaN corner poison when corners are
    skipped) and report each cell whose stored bits disagree. *)

val check_output :
  ?limit:int ->
  Ccc_stencil.Pattern.t ->
  Ccc_runtime.Reference.env ->
  Ccc_runtime.Grid.t ->
  Ccc_analysis.Finding.t list
(** Compare a result grid against the reference evaluator; at most
    [limit] (default 8) per-cell findings plus a summary when more
    cells diverge. *)

val check_kernel :
  Ccc_cm2.Config.t ->
  Ccc_compiler.Compile.t ->
  Ccc_runtime.Kernel.t ->
  Ccc_analysis.Finding.t list
(** {!Ccc_runtime.Kernel.verify} with failures rendered as findings
    instead of exceptions (a poisoned kernel may fail the sandbox
    comparison or the specialization bounds check — both are
    [Kernel_integrity]). *)

val revalidate :
  Ccc_cm2.Config.t -> Ccc_compiler.Compile.t -> Ccc_analysis.Finding.t list
(** The PR-1 dataflow verifier over every plan of a cached
    compilation — the plan-cache revalidation step of the recovery
    ladder. *)

val grid_checksum : Ccc_runtime.Grid.t -> int64
(** An order-sensitive checksum of the grid's float bits: equal
    checksums are the retry ladder's cheap witness that a recovered
    run reproduced the clean result bit for bit. *)

val region_checksum : Ccc_cm2.Machine.t -> Ccc_cm2.Memory.region -> int64
(** The same checksum over one region across every node memory — the
    arena-reuse guard fingerprints standing regions between calls. *)
