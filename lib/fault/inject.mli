(** Deterministic, seed-driven fault injection for the simulated CM-2.

    The paper's machine trusted its substrate: ECC memory, a lock-step
    sequencer, a router that delivers every border message (section 3).
    The simulation can do better than trust — it can corrupt each of
    those assumptions on purpose and prove the runtime notices.  Each
    {!fault} names one hardware failure the substrate could suffer;
    {!arm} builds a one-shot injector whose every choice (victim node,
    cell, row) is drawn from a private splitmix stream over the seed,
    so a given [(seed, fault)] corrupts exactly the same state on
    every run.

    Injectors are {e one-shot}: the first opportunity fires the fault
    and disarms it, so a guarded retry of the same statement
    (see {!Guard}, [Ccc_service.Engine]) re-executes clean and must
    reproduce the uncorrupted result bit for bit. *)

(** One fault class per substrate assumption:

    - [Bit_flip] — ECC failure: the sign bit of one cell in a node's
      padded halo temporary flips after the exchange;
    - [Halo_drop] — router loss: one border cell never arrives and
      reads as 0.0;
    - [Halo_duplicate] — router duplication: a neighboring border
      message lands twice, overwriting one border cell with the value
      of the next;
    - [Phase_skip] — sequencer skip: one node misses the compute
      phase for one subgrid row, leaving that destination row zero;
    - [Kernel_poison] — plan-cache corruption: a cached lowered
      kernel comes back with one tap displaced by a word
      ({!Ccc_runtime.Kernel.corrupt}) — silent at specialization
      time, wrong data at run time;
    - [Fft_poison] — plan-cache corruption on the transform path: a
      cached {!Ccc_runtime.Fft.plan}'s coefficient spectrum comes
      back with one tap's value negated while the plan still claims
      the true value ({!Ccc_runtime.Fft.corrupt}) — invisible to
      {!Ccc_runtime.Fft.rebind}, wrong at every output point;
    - [Pool_death] — a worker domain dies mid-compute: the victim
      node's inner loop raises {!Worker_died} inside the pool. *)
type fault =
  | Bit_flip
  | Halo_drop
  | Halo_duplicate
  | Phase_skip
  | Kernel_poison
  | Fft_poison
  | Pool_death

val all : fault list
(** The six compiled-path fault classes, in the order above (without
    [Fft_poison], which only makes sense where a transform plan
    exists): the kill matrix of the lowered execution path. *)

val fft_faults : fault list
(** The transform-path kill matrix: the four substrate faults shared
    with {!all} — the transform path consumes the same halo exchange,
    pooled per-node loops and destination scatter — plus [Fft_poison]
    in place of [Kernel_poison] (each poisons the artifact its path
    actually caches). *)

val name : fault -> string
(** Kebab-case, e.g. ["halo-drop"]. *)

val of_name : string -> fault option

exception Worker_died of int
(** Raised by a [Pool_death] injector inside the victim node's pooled
    inner loop; surfaces through {!Ccc_runtime.Pool.iter}'s
    deterministic lowest-node re-raise. *)

type t
(** An armed one-shot injector. *)

val arm : seed:int -> nodes:int -> fault -> t
(** Build an injector over a [nodes]-node machine.  All victim
    choices are a pure function of [(seed, fault)]. *)

val fault : t -> fault

val armed : t -> bool
(** [false] once the fault has fired (or for [Kernel_poison], once
    {!poison_kernel} has been applied). *)

val fired : t -> string option
(** A human-readable record of what the injector corrupted and where
    — [None] until it fires. *)

val hooks : t -> Ccc_runtime.Exec.hooks
(** The chaos hooks that deliver the fault: halo faults fire on the
    ["halo"] phase, [Phase_skip] on ["compute"], [Pool_death] inside
    the pooled per-node loop.  [Kernel_poison] does not fire here —
    it corrupts state at cache-return time via {!poison_kernel}. *)

val poison_kernel : t -> Ccc_runtime.Kernel.t -> Ccc_runtime.Kernel.t
(** For a [Kernel_poison] injector that is still armed: disarm it and
    return a corrupted copy of the kernel (the poisoned plan-cache
    hit).  Identity for every other case. *)

val poison_fft : t -> Ccc_runtime.Fft.plan -> unit
(** For an [Fft_poison] injector that is still armed: disarm it and
    corrupt the plan's cached coefficient spectrum in place
    ({!Ccc_runtime.Fft.corrupt} with a drawn seed) — the poisoned
    transform-plan cache hit.  No-op for every other case. *)
