module Machine = Ccc_cm2.Machine
module Exec = Ccc_runtime.Exec
module Fft = Ccc_runtime.Fft
module Pool = Ccc_runtime.Pool
module Grid = Ccc_runtime.Grid
module Reference = Ccc_runtime.Reference
module Kernel = Ccc_runtime.Kernel
module Compile = Ccc_compiler.Compile
module Plan = Ccc_microcode.Plan
module Pattern = Ccc_stencil.Pattern
module Finding = Ccc_analysis.Finding
module Obs = Ccc_obs.Obs
module Metrics = Ccc_obs.Metrics
module Flight = Ccc_obs.Flight

type cell = {
  c_pattern : string;
  c_width : int;
  c_path : string;
  c_jobs : int;
  c_note : string option;
}

type kill = {
  k_pattern : string;
  k_path : string;
  k_fault : Inject.fault;
  k_jobs : int;
  k_detected : bool;
  k_recovered : bool;
  k_detail : string;
  k_dump : string;
}

type matrix = {
  seed : int;
  guarded : bool;
  jobs_list : int list;
  patterns : int;
  widths : int;
  cells : cell list;
  kills : kill list;
}

(* Deterministic test data, independent of any host state: the same
   hash-mix the test suite's [mixed_grid] uses, salted with the
   conformance seed and the array name. *)
let mixed_grid ~seed ~name ~rows ~cols =
  Grid.init ~rows ~cols (fun r c ->
      let h = Hashtbl.hash (seed, name, r, c) land 0xFFFF in
      float_of_int (h - 32768) /. 32768.0)

let env_for ~seed ~rows ~cols pattern =
  List.map
    (fun name -> (name, mixed_grid ~seed ~name ~rows ~cols))
    (List.sort_uniq compare (Reference.referenced_arrays pattern))

(* The transform path only accepts spatially-uniform coefficients
   (a per-point coefficient field is not a convolution), so its cells
   run over a second environment: the same hash-mixed source, with
   every coefficient array held at a constant drawn from the seed and
   the array name. *)
let uniform_env_for ~seed ~rows ~cols pattern =
  let src = Pattern.source_var pattern in
  List.map
    (fun name ->
      if name = src then (name, mixed_grid ~seed ~name ~rows ~cols)
      else
        ( name,
          Grid.constant ~rows ~cols
            (0.25
            +. (float_of_int (Hashtbl.hash (seed, name) land 0xFF) /. 256.0)) ))
    (List.sort_uniq compare (Reference.referenced_arrays pattern))

let paths = [ "reference"; "simulate"; "tapwalk"; "lowered"; "fft" ]

let run_path ~path ~pool ~machine ~kernel ~hooks compiled env =
  let pattern = compiled.Compile.pattern in
  match path with
  | "reference" -> Reference.apply pattern env
  | "simulate" ->
      (Exec.run ~mode:Exec.Simulate ~pool ~hooks machine compiled env)
        .Exec.output
  | "tapwalk" ->
      (Exec.run ~mode:Exec.Fast ~inner:Exec.Tapwalk ~pool ~hooks machine
         compiled env)
        .Exec.output
  | "lowered" ->
      (Exec.run ~mode:Exec.Fast ~inner:Exec.Lowered ~kernel ~pool ~hooks
         machine compiled env)
        .Exec.output
  | "fft" -> (Exec.run_fft ~pool ~hooks machine pattern env).Exec.output
  | _ -> invalid_arg "Conformance.run_path"

let run ?(obs = Obs.disabled) ?(seed = 42) ?(jobs_list = [ 1; 2; 7 ])
    ?(guarded = true) ?(with_faults = true) ?(rows = 32) ?(cols = 32) config =
  let machine = Machine.create config in
  let nodes = Machine.node_count machine in
  let pools =
    List.map
      (fun j -> (j, if j = 1 then Pool.sequential else Pool.create ~jobs:j))
      (List.sort_uniq compare jobs_list)
  in
  let pool_for j = List.assoc j pools in
  let cells_counter = Metrics.counter obs.Obs.metrics "conform.cells" in
  let cell_failures = Metrics.counter obs.Obs.metrics "conform.cell_failures" in
  let injected_c = Metrics.counter obs.Obs.metrics "fault.injected" in
  let detected_c = Metrics.counter obs.Obs.metrics "fault.detected" in
  let recovered_c = Metrics.counter obs.Obs.metrics "fault.recovered" in
  let missed_c = Metrics.counter obs.Obs.metrics "fault.missed" in
  let gallery = Pattern.gallery () in
  Fun.protect
    ~finally:(fun () ->
      List.iter (fun (_, p) -> if p != Pool.sequential then Pool.shutdown p) pools)
  @@ fun () ->
  Obs.span obs "conform" @@ fun () ->
  let cells = ref [] and kills = ref [] and widths = ref 0 in
  List.iter
    (fun (pname, pattern) ->
      let env = env_for ~seed ~rows ~cols pattern in
      let oracle = Reference.apply pattern env in
      let env_u = uniform_env_for ~seed ~rows ~cols pattern in
      let oracle_u = Reference.apply pattern env_u in
      let compiled =
        match Compile.compile config pattern with
        | Ok c -> c
        | Error rejections -> failwith (Compile.no_workable rejections)
      in
      (* ------------------------------------------------------- *)
      (* Clean matrix: every compiled width down all five paths, *)
      (* bit-stable across every jobs value, guards riding along *)
      (* on the production paths with zero findings allowed.     *)
      Obs.span obs "conform.clean" @@ fun () ->
      List.iter
        (fun plan ->
          incr widths;
          let width = plan.Plan.width in
          let restricted = { compiled with Compile.plans = [ plan ] } in
          let kernel = Kernel.build config restricted in
          let baseline = Hashtbl.create 8 in
          List.iter
            (fun jobs ->
              let pool = pool_for jobs in
              List.iter
                (fun path ->
                  Metrics.Counter.incr cells_counter;
                  (* The transform path runs over the uniform
                     environment and its own oracle; its tolerance is
                     the same 1e-9 (transform rounding is of order
                     eps * log P, far below it). *)
                  let path_env, path_oracle =
                    if path = "fft" then (env_u, oracle_u) else (env, oracle)
                  in
                  let watch = Guard.watch pattern in
                  let hooks =
                    if guarded && (path = "lowered" || path = "fft") then
                      watch.Guard.hooks
                    else Exec.no_hooks
                  in
                  let note =
                    match
                      run_path ~path ~pool ~machine ~kernel ~hooks restricted
                        path_env
                    with
                    | out ->
                        if not (Grid.equal_within ~tol:1e-9 out path_oracle)
                        then
                          Some
                            (Printf.sprintf
                               "diverges from reference by %g"
                               (Grid.max_abs_diff out path_oracle))
                        else if !(watch.Guard.caught) <> [] then
                          Some
                            (Printf.sprintf
                               "guard false positive: %s"
                               (Finding.to_string
                                  (List.hd !(watch.Guard.caught))))
                        else begin
                          let ck = Guard.grid_checksum out in
                          match Hashtbl.find_opt baseline path with
                          | None ->
                              Hashtbl.add baseline path ck;
                              None
                          | Some ck0 when Int64.equal ck ck0 -> None
                          | Some _ ->
                              Some
                                (Printf.sprintf
                                   "not bit-identical to jobs=%d run"
                                   (List.hd jobs_list))
                        end
                    | exception exn -> Some (Printexc.to_string exn)
                  in
                  if note <> None then Metrics.Counter.incr cell_failures;
                  cells :=
                    {
                      c_pattern = pname;
                      c_width = width;
                      c_path = path;
                      c_jobs = jobs;
                      c_note = note;
                    }
                    :: !cells)
                paths)
            jobs_list)
        compiled.Compile.plans;
      (* ------------------------------------------------------- *)
      (* Kill matrix: one armed injector per fault x jobs on each *)
      (* production path — Lowered with its cached kernel, and    *)
      (* the transform path with its cached plan.                 *)
      if with_faults then Obs.span obs "conform.faults" @@ fun () ->
      (* One injected cell: arm, corrupt, run, detect, recover,
         report.  [run_faulty] poisons its own cached artifact
         (kernel or transform plan) and executes the path under the
         composed hooks; [root_cause] re-proves that artifact the way
         the engine's ladder would; [recover] is the disarmed clean
         re-run that must reproduce [clean_ck] bit for bit. *)
      let kill_sweep ~path ~faults ~env ~clean_ck ~salt ~run_faulty
          ~root_cause ~recover =
        List.iteri
          (fun fi fault ->
            List.iter
              (fun jobs ->
                Metrics.Counter.incr injected_c;
                let pool = pool_for jobs in
                let cell_seed =
                  (seed * 0x9E37) lxor Hashtbl.hash (salt, fi, jobs)
                in
                let inj = Inject.arm ~seed:cell_seed ~nodes fault in
                (* A fresh flight ring per injected cell: the armed
                   fault, what it did, what caught it and whether the
                   re-run recovered — the cell's incident report, with a
                   counting clock so dumps are deterministic. *)
                let tick = ref 0 in
                let ring =
                  Flight.create ~capacity:32
                    ~clock:(fun () ->
                      incr tick;
                      float_of_int !tick)
                    ()
                in
                Flight.record ring Flight.Fault
                  (Printf.sprintf "armed %s (pattern %s, %s path, jobs %d)"
                     (Inject.name fault) pname path jobs);
                let watch = Guard.watch pattern in
                let hooks =
                  if guarded then
                    Exec.compose_hooks (Inject.hooks inj) watch.Guard.hooks
                  else Inject.hooks inj
                in
                let findings = ref [] and crash = ref None in
                let out =
                  match run_faulty inj ~pool ~hooks with
                  | o -> Some o
                  | exception Inject.Worker_died n ->
                      crash :=
                        Some (Printf.sprintf "worker domain died (node %d)" n);
                      None
                  | exception Finding.Failed fs ->
                      findings := fs @ !findings;
                      None
                  | exception exn ->
                      crash := Some (Printexc.to_string exn);
                      None
                in
                findings := !(watch.Guard.caught) @ !findings;
                if guarded then begin
                  (match out with
                  | Some out ->
                      findings := Guard.check_output pattern env out @ !findings
                  | None -> ());
                  (* root-cause step of the ladder: when the output is
                     wrong but the halo was clean, re-prove the cached
                     artifact the way the engine would *)
                  if
                    !findings <> [] && !(watch.Guard.caught) = []
                    && !crash = None
                  then findings := !findings @ root_cause ()
                end;
                let detected = !findings <> [] || !crash <> None in
                (* recovery: the injector is one-shot, so a disarmed
                   re-run with sound artifacts must reproduce the clean
                   result bit for bit *)
                let recovered =
                  detected
                  && (match recover inj ~pool with
                     | out -> Int64.equal (Guard.grid_checksum out) clean_ck
                     | exception _ -> false)
                in
                Metrics.Counter.incr (if detected then detected_c else missed_c);
                if recovered then Metrics.Counter.incr recovered_c;
                let detail =
                  let injected =
                    match Inject.fired inj with
                    | Some s -> s
                    | None -> "injector never fired"
                  in
                  let caught =
                    match (!crash, !findings) with
                    | Some c, _ -> c
                    | None, f :: _ ->
                        Printf.sprintf "finding[%s]"
                          (Finding.check_name f.Finding.check)
                    | None, [] -> "undetected"
                  in
                  injected ^ "; " ^ caught
                in
                (match Inject.fired inj with
                | Some s ->
                    Flight.record ring Flight.Fault
                      (Printf.sprintf "%s fired: %s" (Inject.name fault) s)
                | None ->
                    Flight.record ring Flight.Info
                      (Printf.sprintf "%s never fired" (Inject.name fault)));
                (match (!crash, !findings) with
                | Some c, _ ->
                    Flight.record ring Flight.Guard_trip ("crash: " ^ c)
                | None, f :: _ ->
                    Flight.record ring Flight.Guard_trip (Finding.to_string f)
                | None, [] ->
                    Flight.record ring Flight.Info "no guard tripped");
                Flight.record ring
                  (if recovered then Flight.Info else Flight.Degraded)
                  (if recovered then "recovered: disarmed re-run bit-identical"
                   else if detected then "not recovered"
                   else "UNDETECTED");
                kills :=
                  {
                    k_pattern = pname;
                    k_path = path;
                    k_fault = fault;
                    k_jobs = jobs;
                    k_detected = detected;
                    k_recovered = recovered;
                    k_detail = detail;
                    k_dump = Flight.dump ring;
                  }
                  :: !kills)
              jobs_list)
          faults
      in
      (* Production path 1: Fast/Lowered with its cached kernel. *)
      let kernel_clean = Kernel.build config compiled in
      let clean_ck =
        Guard.grid_checksum
          ((Exec.run ~mode:Exec.Fast ~inner:Exec.Lowered ~kernel:kernel_clean
              machine compiled env)
             .Exec.output)
      in
      let kernel_used = ref kernel_clean in
      kill_sweep ~path:"lowered" ~faults:Inject.all ~env ~clean_ck ~salt:pname
        ~run_faulty:(fun inj ~pool ~hooks ->
          kernel_used := Inject.poison_kernel inj kernel_clean;
          (Exec.run ~mode:Exec.Fast ~inner:Exec.Lowered ~kernel:!kernel_used
             ~pool ~hooks machine compiled env)
            .Exec.output)
        ~root_cause:(fun () -> Guard.check_kernel config compiled !kernel_used)
        ~recover:(fun inj ~pool ->
          (Exec.run ~mode:Exec.Fast ~inner:Exec.Lowered ~kernel:kernel_clean
             ~pool ~hooks:(Inject.hooks inj) machine compiled env)
            .Exec.output);
      (* Production path 2: the transform plan over the uniform
         environment, with [Fft.verify] as the root-cause re-proof. *)
      let plan_clean = Fft.build pattern ~rows ~cols env_u in
      let clean_ck_fft =
        Guard.grid_checksum
          ((Exec.run_fft ~plan:plan_clean machine pattern env_u).Exec.output)
      in
      let plan_used = ref plan_clean in
      kill_sweep ~path:"fft" ~faults:Inject.fft_faults ~env:env_u
        ~clean_ck:clean_ck_fft
        ~salt:(pname ^ "/fft")
        ~run_faulty:(fun inj ~pool ~hooks ->
          let p = Fft.build pattern ~rows ~cols env_u in
          Inject.poison_fft inj p;
          plan_used := p;
          (Exec.run_fft ~plan:p ~pool ~hooks machine pattern env_u).Exec.output)
        ~root_cause:(fun () ->
          match Fft.verify pattern !plan_used with
          | () -> []
          | exception Finding.Failed fs -> fs)
        ~recover:(fun inj ~pool ->
          (Exec.run_fft ~plan:plan_clean ~pool ~hooks:(Inject.hooks inj)
             machine pattern env_u)
            .Exec.output))
    gallery;
  {
    seed;
    guarded;
    jobs_list;
    patterns = List.length gallery;
    widths = !widths;
    cells = List.rev !cells;
    kills = List.rev !kills;
  }

let clean_failures m =
  List.length (List.filter (fun c -> c.c_note <> None) m.cells)

let missed m = List.length (List.filter (fun k -> not k.k_detected) m.kills)

let passed m = clean_failures m = 0 && missed m = 0

let rec pp ppf m =
  Format.fprintf ppf "conformance: seed %d, %s, jobs {%s}@." m.seed
    (if m.guarded then "guarded" else "unguarded")
    (String.concat "," (List.map string_of_int m.jobs_list));
  let total = List.length m.cells in
  Format.fprintf ppf "clean: %d/%d cells ok (%d patterns, %d compiled widths, %d paths)@."
    (total - clean_failures m)
    total m.patterns m.widths (List.length paths);
  List.iter
    (fun c ->
      match c.c_note with
      | Some note ->
          Format.fprintf ppf "  FAIL %s width %d %s jobs %d: %s@." c.c_pattern
            c.c_width c.c_path c.c_jobs note
      | None -> ())
    m.cells;
  if m.kills = [] then begin
    if passed m then Format.fprintf ppf "conformance: PASS@."
    else
      Format.fprintf ppf "conformance: FAIL (%d clean cells failed)@."
        (clean_failures m)
  end
  else pp_kills ppf m

and pp_kills ppf m =
  (* one killed/injected table per production path, each over the
     fault classes that path's sweep actually arms *)
  List.iter
    (fun (path, faults) ->
      if List.exists (fun k -> k.k_path = path) m.kills then begin
        Format.fprintf ppf "fault kills, %s path (killed/injected):@." path;
        Format.fprintf ppf "  %-16s" "";
        List.iter
          (fun j -> Format.fprintf ppf "%8s" (Printf.sprintf "jobs=%d" j))
          m.jobs_list;
        Format.fprintf ppf "@.";
        List.iter
          (fun fault ->
            Format.fprintf ppf "  %-16s" (Inject.name fault);
            List.iter
              (fun jobs ->
                let cellk =
                  List.filter
                    (fun k ->
                      k.k_path = path && k.k_fault = fault && k.k_jobs = jobs)
                    m.kills
                in
                let killed = List.filter (fun k -> k.k_detected) cellk in
                Format.fprintf ppf "%8s"
                  (Printf.sprintf "%d/%d" (List.length killed)
                     (List.length cellk)))
              m.jobs_list;
            Format.fprintf ppf "@.")
          faults
      end)
    [ ("lowered", Inject.all); ("fft", Inject.fft_faults) ];
  let injected = List.length m.kills in
  let detected = List.length (List.filter (fun k -> k.k_detected) m.kills) in
  let recovered = List.length (List.filter (fun k -> k.k_recovered) m.kills) in
  Format.fprintf ppf "injected %d: detected %d, recovered %d, missed %d@."
    injected detected recovered (missed m);
  if passed m then Format.fprintf ppf "conformance: PASS@."
  else if missed m > 0 then
    Format.fprintf ppf "conformance: FAIL (%d injected faults escaped undetected)@."
      (missed m)
  else
    Format.fprintf ppf "conformance: FAIL (%d clean cells failed)@."
      (clean_failures m)
