(** The differential conformance harness: every gallery stencil,
    through every compiled width, down all five execution paths, at
    several pool sizes — first clean, then under every {!Inject}
    fault class.

    The clean matrix is the cross-validation story of the paper made
    exhaustive: the reference evaluator is the oracle, the
    cycle-accurate simulation, both Fast inner loops and the
    transform path ({!Ccc_runtime.Fft}) must agree with it to 1e-9,
    and each path must be bit-identical to itself across every [jobs]
    value.  The transform path's cells run over a uniform-coefficient
    environment (a per-point coefficient field is not a convolution);
    every other path keeps the fully mixed one.  The in-flight guards
    ({!Guard.watch}) ride along on the production paths, so a clean
    run also proves the guards raise zero false positives.

    The kill matrix then arms one injector per
    (pattern x path x fault x jobs) cell on each production path —
    Fast/Lowered with its cached kernel under {!Inject.all}, and the
    transform path with its cached plan under {!Inject.fft_faults} —
    and requires every fault to be {e killed}: detected as a
    structured finding (or a contained crash), then recovered by a
    disarmed re-run that reproduces the clean result bit for bit.
    With guards off ([guarded:false]) the silent-corruption faults
    escape — the harness's own negative control. *)

type cell = {
  c_pattern : string;
  c_width : int;
  c_path : string;
      (** ["reference"] / ["simulate"] / ["tapwalk"] / ["lowered"] /
          ["fft"] *)
  c_jobs : int;
  c_note : string option;  (** [None] when the cell passed *)
}

type kill = {
  k_pattern : string;
  k_path : string;
      (** which production path the fault was injected on:
          ["lowered"] or ["fft"] *)
  k_fault : Inject.fault;
  k_jobs : int;
  k_detected : bool;
  k_recovered : bool;
  k_detail : string;
      (** what the injector corrupted and which guard caught it *)
  k_dump : string;
      (** the cell's {!Ccc_obs.Flight} recorder dump — armed fault,
          firing record, guard trip and recovery verdict, naming the
          fault class ({!Inject.name}); deterministic (counting
          clock) *)
}

type matrix = {
  seed : int;
  guarded : bool;
  jobs_list : int list;
  patterns : int;
  widths : int;  (** compiled (pattern, width) combinations *)
  cells : cell list;
  kills : kill list;
}

val run :
  ?obs:Ccc_obs.Obs.t ->
  ?seed:int ->
  ?jobs_list:int list ->
  ?guarded:bool ->
  ?with_faults:bool ->
  ?rows:int ->
  ?cols:int ->
  Ccc_cm2.Config.t ->
  matrix
(** Run the full matrix.  Defaults: [seed 42], [jobs_list [1; 2; 7]],
    [guarded true], [with_faults true], [rows = cols = 32] (which must
    divide over the node grid).  [with_faults:false] skips the kill
    matrix and runs only the clean cells — the mode [ccc race] uses to
    sweep the whole gallery under the domain-safety analyzer without
    fault-perturbed traces.  Deterministic for a fixed seed: every injector
    choice comes from a private seeded stream, and pool scheduling
    cannot affect values.  [obs] counts cells and kills in the
    metrics registry ([conform.cells], [fault.injected],
    [fault.detected], [fault.recovered], [fault.missed]) and opens
    [conform] / [conform.clean] / [conform.faults] spans. *)

val clean_failures : matrix -> int
val missed : matrix -> int

val passed : matrix -> bool
(** Every clean cell ok and every injected fault killed. *)

val pp : Format.formatter -> matrix -> unit
(** The deterministic summary the [ccc conform] command prints: clean
    cell tally, one fault x jobs kill table per production path
    (lowered, then fft), and a PASS/FAIL verdict line. *)
