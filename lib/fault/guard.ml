module Machine = Ccc_cm2.Machine
module Memory = Ccc_cm2.Memory
module Geometry = Ccc_cm2.Geometry
module Exec = Ccc_runtime.Exec
module Halo = Ccc_runtime.Halo
module Dist = Ccc_runtime.Dist
module Grid = Ccc_runtime.Grid
module Reference = Ccc_runtime.Reference
module Kernel = Ccc_runtime.Kernel
module Compile = Ccc_compiler.Compile
module Pattern = Ccc_stencil.Pattern
module Finding = Ccc_analysis.Finding
module Verify = Ccc_analysis.Verify

(* Re-derive every padded cell with the same owner arithmetic as
   Halo.exchange_into's fill_cell.  A clean exchange computed exactly
   this value from exactly these reads, so exact (Float.compare)
   equality is the right test: zero false positives by construction,
   and NaN corner poison compares equal to itself. *)
let check_halo ~(source : Dist.t) ~(halo : Halo.exchange) ~boundary
    ~needs_corners =
  let { Dist.machine; sub_rows; sub_cols; _ } = source in
  let pad = halo.Halo.pad in
  let pcols = halo.Halo.padded_cols in
  let geometry = Machine.geometry machine in
  let grows = Dist.global_rows source and gcols = Dist.global_cols source in
  let fill_value =
    match boundary with
    | Ccc_stencil.Boundary.Circular -> None
    | Ccc_stencil.Boundary.End_off fill -> Some fill
  in
  let wrap v n = ((v mod n) + n) mod n in
  let findings = ref [] in
  for node = Machine.node_count machine - 1 downto 0 do
    let mem = Machine.memory machine node in
    let node_row, node_col = Geometry.coord_of_node geometry node in
    let base_grow = node_row * sub_rows and base_gcol = node_col * sub_cols in
    for r = sub_rows + pad - 1 downto -pad do
      for c = sub_cols + pad - 1 downto -pad do
        let in_corner =
          (r < 0 || r >= sub_rows) && (c < 0 || c >= sub_cols)
        in
        let expected =
          if in_corner && not needs_corners then Float.nan
          else begin
            let grow = base_grow + r and gcol = base_gcol + c in
            let outside =
              grow < 0 || grow >= grows || gcol < 0 || gcol >= gcols
            in
            match fill_value with
            | Some fill when outside -> fill
            | Some _ | None ->
                let node', row', col' =
                  Dist.owner source ~grow:(wrap grow grows)
                    ~gcol:(wrap gcol gcols)
                in
                Dist.local_get source ~node:node' ~row:row' ~col:col'
          end
        in
        let got =
          Memory.read mem
            (halo.Halo.padded.Memory.base + ((r + pad) * pcols) + (c + pad))
        in
        if Float.compare expected got <> 0 then
          findings :=
            Finding.makef Finding.Halo_integrity
              "halo: node %d padded cell (%d,%d) holds %.17g, exchange wrote \
               %.17g"
              node r c got expected
            :: !findings
      done
    done
  done;
  !findings

let check_output ?(limit = 8) pattern env output =
  let expected = Reference.apply pattern env in
  let rows = Grid.rows expected and cols = Grid.cols expected in
  let findings = ref [] and total = ref 0 in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      let want = Grid.get expected r c and got = Grid.get output r c in
      if not (Float.abs (got -. want) <= 1e-9) then begin
        incr total;
        if !total <= limit then
          findings :=
            Finding.makef Finding.Output_integrity
              "output: cell (%d,%d) holds %.17g, reference %.17g" r c got want
            :: !findings
      end
    done
  done;
  if !total > limit then
    findings :=
      Finding.makef Finding.Output_integrity
        "output: %d cells diverge from the reference (first %d reported)"
        !total limit
      :: !findings;
  List.rev !findings

let check_kernel config compiled kernel =
  match Kernel.verify config compiled kernel with
  | () -> []
  | exception Finding.Failed fs ->
      Finding.makef Finding.Kernel_integrity
        "kernel: cached lowering failed sandbox re-verification (%d findings)"
        (List.length fs)
      :: fs
  | exception Invalid_argument msg ->
      [
        Finding.makef Finding.Kernel_integrity
          "kernel: specialization rejected the cached lowering: %s" msg;
      ]

let revalidate config (compiled : Compile.t) =
  List.concat_map (Verify.verify config) compiled.Compile.plans

let mix h bits =
  let rot =
    Int64.logor (Int64.shift_left h 7) (Int64.shift_right_logical h 57)
  in
  Int64.mul (Int64.logxor rot bits) 0x100000001B3L

let grid_checksum grid =
  let h = ref 0xcbf29ce484222325L in
  for r = 0 to Grid.rows grid - 1 do
    for c = 0 to Grid.cols grid - 1 do
      h := mix !h (Int64.bits_of_float (Grid.get grid r c))
    done
  done;
  !h

let region_checksum machine (region : Memory.region) =
  let h = ref 0xcbf29ce484222325L in
  for node = 0 to Machine.node_count machine - 1 do
    let mem = Machine.memory machine node in
    for i = 0 to region.Memory.words - 1 do
      h := mix !h (Int64.bits_of_float (Memory.read mem (region.Memory.base + i)))
    done
  done;
  !h

type watch = {
  hooks : Exec.hooks;
  caught : Finding.t list ref;
}

let watch pattern =
  let caught = ref [] in
  let boundary = Pattern.boundary pattern in
  let needs_corners = Pattern.needs_corners pattern in
  let hooks =
    {
      Exec.on_phase =
        (fun ctx ->
          if ctx.Exec.phase = "halo" then
            match (ctx.Exec.source, ctx.Exec.halo) with
            | Some source, Some halo -> begin
                match check_halo ~source ~halo ~boundary ~needs_corners with
                | [] -> ()
                | fs -> caught := fs @ !caught
              end
            | _ -> ());
      on_compute_node = (fun _ -> ());
    }
  in
  { hooks; caught }
