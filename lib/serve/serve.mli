(** Multi-tenant stencil service: an admission/queueing scheduler over
    a pool of sharded resident engines.

    The paper's production story (section 7) is one front-end computer
    driving one CM-2 as hard as it can.  This module is what sits in
    front of that when many users share the machine: requests
    ({!Request.t}) are admitted, fair-queued per tenant, sharded by
    stencil fingerprint across a pool of worker domains — each owning
    its own resident {!Ccc_service.Engine} — and answered with one
    unified {!Ccc_service.Outcome.t}.

    {b Sharding.}  A request routes to shard
    [hash (Fingerprint.pattern p) mod shards], so fingerprint-identical
    requests land on the same shard (and hit the same plan cache).
    Each worker domain {e creates} its engine in-domain — the engine is
    single-owner (see {!Ccc_service.Engine.shutdown}) and never crosses
    a domain boundary.

    {b Coalescing.}  Within a dispatch window a worker groups jobs
    that share a (physically equal) environment, source variable and
    boundary.  Structurally equal patterns in a group collapse into
    one execution whose outcome every coalesced requester receives;
    two or more {e distinct} patterns in a group run as a single
    {!Ccc_service.Engine.run_batch} — one halo exchange, one front-end
    launch (the section-7 amortization, measured in PR 2 at ~90%
    communication and ~55% front-end savings for a ten-statement
    batch).  Fingerprint equality alone is {e not} sufficient to share
    a result (a rebind-compatible stencil may name different
    coefficient arrays), so coalescing requires structural equality
    plus the same environment.

    {b Execution primitive.}  Singleton classes run under
    {!Ccc_service.Engine.run_guarded} — every served request inherits
    the PR-5 retry/recompile/degrade ladder, so a detected substrate
    fault degrades rather than escapes.  A batch that fails as a batch
    falls back to per-pattern guarded runs.

    {b Admission and shedding.}  {!submit} never blocks and never
    raises on bad input: it refuses malformed stencils
    ([Outcome.Refused]), and sheds with structured outcomes when a
    tenant exceeds its queue bound ([Overloaded]), when the deadline
    has already passed ([Deadline_exceeded], re-checked at dispatch),
    or after {!shutdown} ([Shutting_down]).  Per-tenant queues are
    bounded by {!Ccc_service.Engine.settings}[.queue_depth]; the
    tenant table itself by [settings.tenants].

    {b Domain safety.}  One scheduler mutex guards the queues, ticket
    states and key catalog; workers park on a condition variable and
    log their probe events after the wait loop exits, so the
    [serve.*] access families replay clean under the PR-6 analyzer
    ([ccc race]) and event counts stay deterministic. *)

type t

(** {1 Lifecycle} *)

val create :
  ?obs:Ccc_obs.Obs.t ->
  ?settings:Ccc_service.Engine.settings ->
  ?shards:int ->
  ?max_batch:int ->
  ?clock:(unit -> float) ->
  ?paused:bool ->
  Ccc_cm2.Config.t ->
  t
(** Spawn [shards] (default 2) worker domains, each owning one
    resident engine built from [settings]
    ({!Ccc_service.Engine.default_settings} if omitted; [queue_depth]
    and [tenants] bound admission here).  [max_batch] (default 16)
    caps a dispatch window.  [clock] returns microseconds and must be
    safe to call from any domain (default: [Sys.time] scaled, as
    {!Ccc_obs.Trace.create}); inject a fake clock for deterministic
    deadline tests.  [paused] (default false) starts the scheduler
    admitting but not dispatching — submit a whole trace, then
    {!resume} for a deterministic dispatch schedule.  [obs] carries
    the registry the [serve.*] metrics live in. *)

val shards : t -> int

val settings_of : t -> Ccc_service.Engine.settings
(** The engine/admission settings every shard was built from. *)

val key_of : t -> Ccc_stencil.Pattern.t -> string
(** The {!Ccc_service.Fingerprint.key} under which this service
    catalogs [pattern] — what a client passes back as
    {!Request.Key} on later requests. *)

val pause : t -> unit
(** Stop dispatching (admission continues).  Idempotent. *)

val resume : t -> unit
(** Resume (or start, after [~paused:true]) dispatching. *)

val shutdown : ?drain:bool -> t -> unit
(** Stop admitting ([submit] now sheds [Shutting_down]), then join the
    workers.  With [drain] (default [true]) queued jobs are served
    first; with [~drain:false] they are shed as [Shutting_down].
    Either way every outstanding ticket resolves — no request is ever
    lost.  Idempotent.  Also unpauses: a paused scheduler drains on
    shutdown. *)

(** {1 Submitting work} *)

type ticket
(** A claim on one request's response. *)

type response = {
  outcome : Ccc_service.Outcome.t;
  trace_id : int;
      (** the request's trace id, assigned at {!submit} (the ticket's
          sequence number); every span and flight-recorder breadcrumb
          this request leaves carries it *)
  shard : int;  (** the shard that served (or would have served) it *)
  window : int;
      (** the shard's dispatch-window sequence number, [-1] if the
          request never reached a worker (refused or shed at
          admission) *)
  batched : int;
      (** distinct statements in the shared execution this request
          rode ([1] for a singleton or fallback run, [0] if never
          executed) *)
  coalesced : int;
      (** requests served by this request's execution, including
          itself ([0] if never executed) *)
  queued_us : float;  (** admission to dispatch, scheduler clock *)
  service_us : float;  (** dispatch to completion of its window group *)
}

val submit : t -> Request.t -> ticket
(** Admit one request.  Never blocks: the result is always a ticket,
    which may already hold a [Refused] or [Shed] response.  Admitted
    [Text]/[Pattern] stencils are cataloged under {!key_of} for later
    {!Request.Key} submissions. *)

val wait : t -> ticket -> response
(** Block until the ticket resolves.  Tickets shed or refused at
    admission return immediately. *)

val peek : t -> ticket -> response option
(** [Some response] if resolved, without blocking. *)

(** {1 Statistics} *)

type stats = {
  shards_ : int;  (** worker/engine count (identity echo) *)
  max_batch : int;  (** dispatch-window cap (identity echo) *)
  queue_depth : int;  (** per-tenant admission bound (settings echo) *)
  tenant_limit : int;  (** tenant-table bound (settings echo) *)
  tenants : (string * int) list;
      (** per-tenant requests served to completion (any outcome),
          sorted by tenant name *)
  admitted : int;  (** requests that entered a queue *)
  coalesced : int;  (** admitted requests served by another's run *)
  completed : int;
  degraded : int;
  refused : int;
  shed : int;
  windows : int;  (** dispatch windows across all shards *)
  queued_q : (float * float * float) option;
      (** p50/p95/p99 of admission-to-dispatch microseconds, estimated
          from the [serve.queued_us] histogram's log-spaced buckets
          ([None] before the first served request) *)
  service_q : (float * float * float) option;
      (** p50/p95/p99 of dispatch-to-completion microseconds
          ([serve.service_us]; [None] before the first served
          request) *)
  engines : (int * Ccc_service.Engine.stats) list;
      (** per-shard engine counters, published by each worker after
          every window and at exit; a shard yet to dispatch is absent *)
}

val stats : t -> stats

val pp_stats : Format.formatter -> stats -> unit
(** Stable field order, same discipline as
    {!Ccc_service.Engine.pp_stats}: identity line, admission line,
    work line, latency quantile lines, per-tenant lines, then each
    shard's engine table indented beneath its [shard N:] header. *)

(** {1 Observability surfaces}

    A serving scheduler records three artifacts beyond the registry
    the [serve.*] metrics live in: per-shard span buffers (one tracer
    per worker domain, merged into pid/tid lanes), per-shard flight
    rings (the incident memory dumped when an outcome turns
    [Degraded]/[Refused]), and per-shard engine metric registries.
    When [obs] was created without tracing, the shard tracers are the
    no-op singleton and the span surfaces are empty — the flight rings
    and registries are always live. *)

val trace_lanes : t -> Ccc_obs.Trace.lane list
(** The merged cross-domain trace: lane 0 ([tid 0], "scheduler") holds
    the coordinator's admission spans from [obs]'s tracer, lane [s+1]
    ("shard [s]") holds shard [s]'s queue-wait, window, execute and
    engine spans.  {b Call after {!shutdown}}: a shard's span buffer
    is written by its worker domain, and joining the workers is the
    happens-before edge that makes reading it safe. *)

val chrome_trace : t -> string
(** {!trace_lanes} rendered by {!Ccc_obs.Trace.to_chrome_json_lanes} —
    a Perfetto-loadable Chrome trace with one named track per shard,
    queue-wait visibly separate from compute.  Call after
    {!shutdown}. *)

val flight_rings : t -> Ccc_obs.Flight.t list
(** The per-shard flight recorders, shard order.  Safe from any
    domain at any time (each ring carries its own lock).  Admission
    refusals that never chose a shard land on ring 0. *)

val shard_registries : t -> Ccc_obs.Metrics.t list
(** Each shard engine's private metrics registry, shard order.  Kept
    separate so per-shard counters never merge; registries are
    internally locked and safe to read live. *)

val prometheus : t -> string
(** The scheduler registry plus every shard registry (labeled
    [shard="N"]) rendered through {!Ccc_obs.Expo.render} — the
    [ccc stats] scrape surface. *)
