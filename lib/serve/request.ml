type stencil =
  | Text of string
  | Pattern of Ccc_stencil.Pattern.t
  | Key of string

type t = {
  tenant : string;
  stencil : stencil;
  env : Ccc_runtime.Reference.env;
  deadline_us : float option;
}

let v ?deadline_us ~tenant ~env stencil = { tenant; stencil; env; deadline_us }
