(* The admission/queueing scheduler over sharded resident engines.

   One mutex [m] guards everything the domains share: the per-tenant
   bounded queues, the round-robin rotation, the ticket states, the
   stencil-key catalog and the per-shard window counters.  Workers
   park on [work]; requesters park on [donec].  Probe events for the
   [serve.*] access families are logged while [m] is held — and the
   acquire is logged once, after the condition-wait loop exits — so
   the logged order is a legal linearization and event counts stay
   deterministic under spurious wakeups (the same discipline as
   [Ccc_runtime.Pool]).  Slots are namespaced by scheduler uid so two
   schedulers alive at once never alias.

   Each worker domain creates and owns its engine: the engine handle
   is single-owner by design (lock-free coordinator state), so it is
   born on the domain that will drive it and never crosses the
   boundary.  Parallelism across requests comes from sharding;
   parallelism inside a run comes from the engine's own pool. *)

module Access = Ccc_analysis.Access
module Obs = Ccc_obs.Obs
module Trace = Ccc_obs.Trace
module Metrics = Ccc_obs.Metrics
module Flight = Ccc_obs.Flight
module Expo = Ccc_obs.Expo
module Engine = Ccc_service.Engine
module Outcome = Ccc_service.Outcome
module Fingerprint = Ccc_service.Fingerprint
module Pattern = Ccc_stencil.Pattern
module Exec = Ccc_runtime.Exec

let src = Logs.Src.create "ccc.serve" ~doc:"Serve scheduler events"

module Log = (val Logs.src_log src : Logs.LOG)

type response = {
  outcome : Outcome.t;
  trace_id : int;
  shard : int;
  window : int;
  batched : int;
  coalesced : int;
  queued_us : float;
  service_us : float;
}

type state = Waiting | Done of response
type ticket = { id : int; mutable state : state }

type job = {
  ticket : ticket;
  tenant : string;
  pattern : Pattern.t;
  fp : string;
  env : Ccc_runtime.Reference.env;
  deadline_us : float option;
  submitted_us : float;
}

(* Each tenant carries its own counter family
   ([serve.tenant.<name>.<field>], the shape {!Ccc_obs.Expo} folds
   into labeled Prometheus families) plus a queue-depth gauge, all in
   the scheduler's registry. *)
type tenantq = {
  queues : job Queue.t array;  (* one per shard *)
  mutable queued : int;  (* across all shards; bounded by queue_depth *)
  served : Metrics.Counter.t;
  t_admitted : Metrics.Counter.t;
  t_coalesced : Metrics.Counter.t;
  t_shed : Metrics.Counter.t;
  t_deadline_missed : Metrics.Counter.t;
  t_degraded : Metrics.Counter.t;
  depth_g : Metrics.Gauge.t;
}

type shard_state = {
  mutable windows : int;  (* dispatch windows this shard has opened *)
  mutable engine_stats : Engine.stats option;
      (* published by the owning worker after each window and at exit;
         the worker is the only domain that may call [Engine.stats] *)
}

type t = {
  config : Ccc_cm2.Config.t;
  settings : Engine.settings;
  nshards : int;
  max_batch : int;
  clock : unit -> float;
  obs : Obs.t;
  suid : int;  (* probe-slot namespace: see [Access] registry *)
  m : Mutex.t;
  work : Condition.t;
  donec : Condition.t;
  tenants_tbl : (string, tenantq) Hashtbl.t;
  mutable rotation : string list;  (* fair-queueing order, head next *)
  keys : (string, Pattern.t) Hashtbl.t;  (* Fingerprint.key catalog *)
  shard_state : shard_state array;
  tracers : Trace.t array;
      (* one span buffer per shard, written only by that shard's
         worker domain; the coordinator reads them after the workers
         join (the happens-before edge), merging into lanes *)
  flights : Flight.t array;
      (* one flight ring per shard (internally locked: the coordinator
         records admission/shed, the worker records window/guard) *)
  shard_metrics : Metrics.t array;
      (* one registry per shard engine (registries are internally
         locked); kept separate so per-shard counters never merge *)
  mutable next_ticket : int;
  mutable stopping : bool;
  mutable drain : bool;
  mutable paused : bool;
  mutable workers : unit Domain.t array;
  admitted_c : Metrics.Counter.t;
  coalesced_c : Metrics.Counter.t;
  completed_c : Metrics.Counter.t;
  degraded_c : Metrics.Counter.t;
  refused_c : Metrics.Counter.t;
  shed_c : Metrics.Counter.t;
  windows_c : Metrics.Counter.t;
  queued_h : Metrics.Histogram.t;
  service_h : Metrics.Histogram.t;
}

let suids = Atomic.make 0
let default_clock () = Sys.time () *. 1e6

let unserved ~trace_id ~shard outcome =
  {
    outcome;
    trace_id;
    shard;
    window = -1;
    batched = 0;
    coalesced = 0;
    queued_us = 0.;
    service_us = 0.;
  }

(* ------------------------------------------------------------------ *)
(* Queue plumbing (all under [m]).                                     *)

let has_work t s =
  Hashtbl.fold
    (fun _ q acc -> acc || not (Queue.is_empty q.queues.(s)))
    t.tenants_tbl false

(* One job per tenant per pass over the rotation, repeated until the
   window is full or the shard's queues are dry; then the rotation
   advances by one so no tenant keeps the head slot. *)
let collect t s ~limit =
  let take = ref [] and n = ref 0 in
  let progressed = ref true in
  while !n < limit && !progressed do
    progressed := false;
    List.iter
      (fun name ->
        if !n < limit then
          let q = Hashtbl.find t.tenants_tbl name in
          match Queue.take_opt q.queues.(s) with
          | Some job ->
              q.queued <- q.queued - 1;
              Metrics.Gauge.set q.depth_g (float_of_int q.queued);
              take := job :: !take;
              incr n;
              progressed := true
          | None -> ())
      t.rotation
  done;
  (match t.rotation with [] -> () | x :: rest -> t.rotation <- rest @ [ x ]);
  List.rev !take

(* When a dispatch-time outcome is bad news, the shard's flight ring
   already holds the story (window, guard trips, evictions); dump it
   to the log so the incident explains itself. *)
let autodump t (r : response) =
  if r.shard >= 0 && r.shard < t.nshards then
    let why =
      match r.outcome with
      | Outcome.Degraded _ -> Some "degraded"
      | Outcome.Refused _ -> Some "refused"
      | _ -> None
    in
    Option.iter
      (fun why ->
        Flight.record t.flights.(r.shard) Flight.Info
          (Printf.sprintf "ticket %d %s: dumping" r.trace_id why);
        Log.warn (fun m ->
            m "ticket %d %s on shard %d; flight recorder:@\n%s" r.trace_id
              why r.shard
              (Flight.dump t.flights.(r.shard))))
      why

let finish t (j : job) (r : response) =
  j.ticket.state <- Done r;
  Access.write "serve.ticket" t.suid;
  (match r.outcome with
  | Outcome.Completed _ -> Metrics.Counter.incr t.completed_c
  | Outcome.Degraded _ -> Metrics.Counter.incr t.degraded_c
  | Outcome.Refused _ -> Metrics.Counter.incr t.refused_c
  | Outcome.Shed _ -> Metrics.Counter.incr t.shed_c);
  autodump t r;
  match Hashtbl.find_opt t.tenants_tbl j.tenant with
  | Some q ->
      Metrics.Counter.incr q.served;
      (match r.outcome with
      | Outcome.Shed { shed = Outcome.Deadline_exceeded _; _ } ->
          Metrics.Counter.incr q.t_shed;
          Metrics.Counter.incr q.t_deadline_missed
      | Outcome.Shed _ -> Metrics.Counter.incr q.t_shed
      | Outcome.Degraded _ -> Metrics.Counter.incr q.t_degraded
      | _ -> ());
      if r.coalesced > 1 then Metrics.Counter.incr q.t_coalesced
  | None -> ()

(* ------------------------------------------------------------------ *)
(* Window execution (no scheduler lock held).                          *)

let guarded engine (j : job) env =
  Engine.outcome_of_guarded ~fingerprint:j.fp
    (Engine.run_guarded engine j.pattern env)

(* Serve one dispatch window: re-check deadlines, group jobs that can
   share an execution (same physical env, source variable, boundary),
   collapse structurally equal patterns into one run, and execute each
   group — several distinct patterns as one [run_batch] (one halo
   exchange, one front-end launch), a singleton under the guarded
   ladder.  A batch that fails as a batch falls back to per-pattern
   guarded runs. *)
let execute t engine s w jobs =
  let now0 = t.clock () in
  let expired, live =
    List.partition
      (fun j -> match j.deadline_us with Some d -> d < now0 | None -> false)
      jobs
  in
  let shed_late =
    List.map
      (fun j ->
        let outcome =
          Outcome.shed ~fingerprint:j.fp
            (Outcome.Deadline_exceeded
               {
                 tenant = j.tenant;
                 deadline_us = Option.get j.deadline_us;
                 now_us = now0;
               })
        in
        ( j,
          {
            outcome;
            trace_id = j.ticket.id;
            shard = s;
            window = w;
            batched = 0;
            coalesced = 0;
            queued_us = now0 -. j.submitted_us;
            service_us = 0.;
          } ))
      expired
  in
  let groups = ref [] in
  List.iter
    (fun j ->
      let sv = Pattern.source_var j.pattern in
      let b = Pattern.boundary j.pattern in
      match
        List.find_opt
          (fun (e, sv', b', _) -> e == j.env && String.equal sv' sv && b' = b)
          !groups
      with
      | Some (_, _, _, members) -> members := j :: !members
      | None -> groups := !groups @ [ (j.env, sv, b, ref [ j ]) ])
    live;
  let served =
    List.concat_map
      (fun (env, _, _, members) ->
        let members = List.rev !members in
        let classes = ref [] in
        List.iter
          (fun j ->
            match
              List.find_opt
                (fun (rep, _) -> Pattern.equal rep.pattern j.pattern)
                !classes
            with
            | Some (_, mem) -> mem := j :: !mem
            | None -> classes := !classes @ [ (j, ref [ j ]) ])
          members;
        let classes = List.map (fun (rep, mem) -> (rep, List.rev !mem)) !classes in
        let nclasses = List.length classes in
        let outcomes =
          Trace.with_span t.tracers.(s)
            ~attrs:
              [
                ("classes", Trace.Int nclasses);
                ("members", Trace.Int (List.length members));
              ]
            "serve.execute"
          @@ fun () ->
          match classes with
          | [ (rep, _) ] -> [ (guarded engine rep env, 1) ]
          | _ -> (
              let patterns = List.map (fun (rep, _) -> rep.pattern) classes in
              match Engine.run_batch engine patterns env with
              | Ok batch ->
                  List.map2
                    (fun (rep, _) r ->
                      (Outcome.completed ~fingerprint:rep.fp r, nclasses))
                    classes batch.Exec.batch_results
              | Error e ->
                  Log.warn (fun m ->
                      m "shard %d window %d: batch of %d fell back: %s" s w
                        nclasses
                        (Outcome.reject_to_string e));
                  List.map (fun (rep, _) -> (guarded engine rep env, 1)) classes)
        in
        let done_us = t.clock () in
        List.concat
          (List.map2
             (fun (_, mem) (outcome, batched) ->
               let ncoal = List.length mem in
               if ncoal > 1 then
                 Metrics.Counter.incr ~by:(ncoal - 1) t.coalesced_c;
               List.map
                 (fun j ->
                   let queued_us = now0 -. j.submitted_us in
                   let service_us = done_us -. now0 in
                   Metrics.Histogram.observe t.queued_h queued_us;
                   Metrics.Histogram.observe t.service_h service_us;
                   ( j,
                     {
                       outcome;
                       trace_id = j.ticket.id;
                       shard = s;
                       window = w;
                       batched;
                       coalesced = ncoal;
                       queued_us;
                       service_us;
                     } ))
                 mem)
             classes outcomes))
      !groups
  in
  shed_late @ served

(* ------------------------------------------------------------------ *)
(* Worker loop.                                                        *)

let worker t s () =
  (* The shard's tracer and metrics registry are created by the
     coordinator but written only from this domain while the worker
     lives; the engine's compile/exec spans land inside this shard's
     window spans because they share the tracer. *)
  let tracer = t.tracers.(s) in
  let ring = t.flights.(s) in
  let eobs = Obs.v ~trace:tracer ~metrics:t.shard_metrics.(s) in
  let engine =
    Engine.create ~obs:eobs ~flight:ring ~settings:t.settings t.config
  in
  let st = t.shard_state.(s) in
  let publish () = st.engine_stats <- Some (Engine.stats engine) in
  let rec loop () =
    Mutex.lock t.m;
    while (not t.stopping) && (t.paused || not (has_work t s)) do
      Condition.wait t.work t.m
    done;
    Access.acquire "serve.m";
    if has_work t s && ((not t.stopping) || t.drain) then begin
      let w = st.windows in
      st.windows <- w + 1;
      let jobs = collect t s ~limit:t.max_batch in
      Access.write "serve.queue" t.suid;
      Metrics.Counter.incr t.windows_c;
      Access.release "serve.m";
      Mutex.unlock t.m;
      let njobs = List.length jobs in
      let dispatched_us = t.clock () in
      (* Queue-wait spans are lane-level roots (they begin before this
         window opens, so nesting them under it would break the
         children-within-parent invariant the qcheck property pins). *)
      List.iter
        (fun j ->
          Trace.emit tracer ~ts:j.submitted_us
            ~dur:(Float.max 0. (dispatched_us -. j.submitted_us))
            ~attrs:
              [
                ("tenant", Trace.Str j.tenant);
                ("trace_id", Trace.Int j.ticket.id);
              ]
            "serve.queue_wait")
        jobs;
      Flight.record ring Flight.Window_open
        (Printf.sprintf "shard %d window %d: %d jobs" s w njobs);
      let resolved =
        Trace.with_span tracer
          ~attrs:[ ("window", Trace.Int w); ("jobs", Trace.Int njobs) ]
          "serve.window"
          (fun () -> execute t engine s w jobs)
      in
      Flight.record ring Flight.Window_close
        (Printf.sprintf "shard %d window %d" s w);
      Mutex.lock t.m;
      Access.acquire "serve.m";
      List.iter (fun (j, r) -> finish t j r) resolved;
      publish ();
      Access.write "serve.queue" t.suid;
      Condition.broadcast t.donec;
      Access.release "serve.m";
      Mutex.unlock t.m;
      loop ()
    end
    else if t.stopping && (not t.drain) && has_work t s then begin
      (* undrained shutdown: every queued job still gets an answer *)
      let jobs = collect t s ~limit:max_int in
      Access.write "serve.queue" t.suid;
      List.iter
        (fun j ->
          finish t j
            (unserved ~trace_id:j.ticket.id ~shard:s
               (Outcome.shed ~fingerprint:j.fp Outcome.Shutting_down)))
        jobs;
      Condition.broadcast t.donec;
      Access.release "serve.m";
      Mutex.unlock t.m;
      loop ()
    end
    else begin
      (* stopping and this shard's queues are dry: final stats, exit *)
      publish ();
      Access.write "serve.queue" t.suid;
      Access.release "serve.m";
      Mutex.unlock t.m;
      Engine.shutdown engine
    end
  in
  loop ()

(* ------------------------------------------------------------------ *)
(* Lifecycle.                                                          *)

let create ?obs ?(settings = Engine.default_settings) ?(shards = 2)
    ?(max_batch = 16) ?(clock = default_clock) ?(paused = false) config =
  if shards < 1 then invalid_arg "Serve.create: shards must be >= 1";
  if max_batch < 1 then invalid_arg "Serve.create: max_batch must be >= 1";
  let obs =
    match obs with
    | Some o -> o
    | None -> Obs.v ~trace:Trace.disabled ~metrics:(Metrics.create ())
  in
  let mtr = obs.Obs.metrics in
  let t =
    {
      config;
      settings;
      nshards = shards;
      max_batch;
      clock;
      obs;
      suid = Atomic.fetch_and_add suids 1;
      m = Mutex.create ();
      work = Condition.create ();
      donec = Condition.create ();
      tenants_tbl = Hashtbl.create 16;
      rotation = [];
      keys = Hashtbl.create 64;
      shard_state =
        Array.init shards (fun _ -> { windows = 0; engine_stats = None });
      tracers =
        (* per-shard span buffers share the scheduler clock so the
           merged lanes carry coherent timestamps; when the session
           isn't tracing every shard gets the no-op singleton *)
        Array.init shards (fun _ ->
            if Trace.enabled obs.Obs.trace then Trace.create ~clock ()
            else Trace.disabled);
      flights = Array.init shards (fun _ -> Flight.create ~clock ());
      shard_metrics = Array.init shards (fun _ -> Metrics.create ());
      next_ticket = 0;
      stopping = false;
      drain = true;
      paused;
      workers = [||];
      admitted_c = Metrics.counter mtr "serve.admitted";
      coalesced_c = Metrics.counter mtr "serve.coalesced";
      completed_c = Metrics.counter mtr "serve.completed";
      degraded_c = Metrics.counter mtr "serve.degraded";
      refused_c = Metrics.counter mtr "serve.refused";
      shed_c = Metrics.counter mtr "serve.shed";
      windows_c = Metrics.counter mtr "serve.windows";
      queued_h = Metrics.histogram mtr "serve.queued_us";
      service_h = Metrics.histogram mtr "serve.service_us";
    }
  in
  t.workers <- Array.init shards (fun s -> Domain.spawn (worker t s));
  t

let shards t = t.nshards
let settings_of t = t.settings
let key_of t pattern = Fingerprint.key t.config pattern

let pause t =
  Mutex.lock t.m;
  Access.acquire "serve.m";
  if not t.stopping then begin
    t.paused <- true;
    Access.write "serve.queue" t.suid
  end;
  Access.release "serve.m";
  Mutex.unlock t.m

let resume t =
  Mutex.lock t.m;
  Access.acquire "serve.m";
  if not t.stopping then begin
    t.paused <- false;
    Access.write "serve.queue" t.suid;
    Condition.broadcast t.work
  end;
  Access.release "serve.m";
  Mutex.unlock t.m

let shutdown ?(drain = true) t =
  Mutex.lock t.m;
  Access.acquire "serve.m";
  let doomed = t.workers in
  t.workers <- [||];
  if Array.length doomed > 0 then begin
    t.stopping <- true;
    t.drain <- drain;
    t.paused <- false;
    Access.write "serve.queue" t.suid;
    Condition.broadcast t.work
  end;
  Access.release "serve.m";
  Mutex.unlock t.m;
  Array.iter Domain.join doomed

(* ------------------------------------------------------------------ *)
(* Admission.                                                          *)

let submit t (req : Request.t) =
  (* parse/recognize outside the lock — pure *)
  let pre =
    match req.Request.stencil with
    | Request.Pattern p -> Some (Ok p)
    | Request.Text s -> Some (Engine.recognize_statement s)
    | Request.Key _ -> None
  in
  Mutex.lock t.m;
  Access.acquire "serve.m";
  let id = t.next_ticket in
  t.next_ticket <- id + 1;
  let tk = { id; state = Waiting } in
  Access.write "serve.ticket" t.suid;
  let resolved =
    match pre with
    | Some r -> r
    | None ->
        let k =
          match req.Request.stencil with
          | Request.Key k -> k
          | _ -> assert false
        in
        Access.read "serve.keys" t.suid;
        (match Hashtbl.find_opt t.keys k with
        | Some p -> Ok p
        | None ->
            Error (Outcome.Parse_error (Printf.sprintf "unknown stencil key %S" k)))
  in
  (match resolved with
  | Error reject ->
      Metrics.Counter.incr t.refused_c;
      (* no shard was ever chosen; the incident lands on ring 0 *)
      Flight.record t.flights.(0) Flight.Refused
        (Printf.sprintf "ticket %d tenant %s: %s" id req.Request.tenant
           (Outcome.reject_to_string reject));
      Log.warn (fun m ->
          m "tenant %s refused at admission: %s@\nflight recorder:@\n%s"
            req.Request.tenant
            (Outcome.reject_to_string reject)
            (Flight.dump t.flights.(0)));
      tk.state <- Done (unserved ~trace_id:id ~shard:(-1) (Outcome.refused reject))
  | Ok p ->
      let fp = Fingerprint.pattern p in
      let shard = Hashtbl.hash fp mod t.nshards in
      (match req.Request.stencil with
      | Request.Key _ -> ()
      | _ ->
          Hashtbl.replace t.keys (Fingerprint.key t.config p) p;
          Access.write "serve.keys" t.suid);
      let now = t.clock () in
      let shed s =
        Metrics.Counter.incr t.shed_c;
        (match Hashtbl.find_opt t.tenants_tbl req.Request.tenant with
        | Some q ->
            Metrics.Counter.incr q.t_shed;
            (match s with
            | Outcome.Deadline_exceeded _ ->
                Metrics.Counter.incr q.t_deadline_missed
            | _ -> ())
        | None -> ());
        Flight.record t.flights.(shard) Flight.Shed
          (Printf.sprintf "ticket %d tenant %s: %s" id req.Request.tenant
             (Outcome.shed_to_string s));
        tk.state <-
          Done (unserved ~trace_id:id ~shard (Outcome.shed ~fingerprint:fp s))
      in
      if t.stopping then shed Outcome.Shutting_down
      else
        match req.Request.deadline_us with
        | Some d when d < now ->
            shed
              (Outcome.Deadline_exceeded
                 { tenant = req.Request.tenant; deadline_us = d; now_us = now })
        | _ -> (
            let existing = Hashtbl.find_opt t.tenants_tbl req.Request.tenant in
            match existing with
            | None when Hashtbl.length t.tenants_tbl >= t.settings.Engine.tenants
              ->
                shed
                  (Outcome.Overloaded
                     {
                       tenant = req.Request.tenant;
                       queued = Hashtbl.length t.tenants_tbl;
                       limit = t.settings.Engine.tenants;
                     })
            | _ ->
                let q =
                  match existing with
                  | Some q -> q
                  | None ->
                      let mtr = t.obs.Obs.metrics in
                      let tc field =
                        Metrics.counter mtr
                          ("serve.tenant." ^ req.Request.tenant ^ "." ^ field)
                      in
                      let q =
                        {
                          queues =
                            Array.init t.nshards (fun _ -> Queue.create ());
                          queued = 0;
                          served = tc "served";
                          t_admitted = tc "admitted";
                          t_coalesced = tc "coalesced";
                          t_shed = tc "shed";
                          t_deadline_missed = tc "deadline_missed";
                          t_degraded = tc "degraded";
                          depth_g =
                            Metrics.gauge mtr
                              ("serve.tenant." ^ req.Request.tenant
                             ^ ".queue_depth");
                        }
                      in
                      Hashtbl.add t.tenants_tbl req.Request.tenant q;
                      t.rotation <- t.rotation @ [ req.Request.tenant ];
                      q
                in
                if q.queued >= t.settings.Engine.queue_depth then
                  shed
                    (Outcome.Overloaded
                       {
                         tenant = req.Request.tenant;
                         queued = q.queued;
                         limit = t.settings.Engine.queue_depth;
                       })
                else begin
                  Queue.add
                    {
                      ticket = tk;
                      tenant = req.Request.tenant;
                      pattern = p;
                      fp;
                      env = req.Request.env;
                      deadline_us = req.Request.deadline_us;
                      submitted_us = now;
                    }
                    q.queues.(shard);
                  q.queued <- q.queued + 1;
                  Metrics.Gauge.set q.depth_g (float_of_int q.queued);
                  Access.write "serve.queue" t.suid;
                  Metrics.Counter.incr t.admitted_c;
                  Metrics.Counter.incr q.t_admitted;
                  Flight.record t.flights.(shard) Flight.Admission
                    (Printf.sprintf "ticket %d tenant %s fp %s" id
                       req.Request.tenant fp);
                  Trace.emit t.obs.Obs.trace ~ts:now
                    ~attrs:
                      [
                        ("tenant", Trace.Str req.Request.tenant);
                        ("trace_id", Trace.Int id);
                        ("shard", Trace.Int shard);
                      ]
                    "serve.submit";
                  Condition.broadcast t.work
                end));
  Access.release "serve.m";
  Mutex.unlock t.m;
  tk

let wait t tk =
  Mutex.lock t.m;
  let rec get () =
    match tk.state with
    | Done r -> r
    | Waiting ->
        Condition.wait t.donec t.m;
        get ()
  in
  let r = get () in
  Access.acquire "serve.m";
  Access.read "serve.ticket" t.suid;
  Access.release "serve.m";
  Mutex.unlock t.m;
  r

let peek t tk =
  Mutex.lock t.m;
  Access.acquire "serve.m";
  Access.read "serve.ticket" t.suid;
  let r = match tk.state with Done r -> Some r | Waiting -> None in
  Access.release "serve.m";
  Mutex.unlock t.m;
  r

(* ------------------------------------------------------------------ *)
(* Statistics.                                                         *)

type stats = {
  shards_ : int;
  max_batch : int;
  queue_depth : int;
  tenant_limit : int;
  tenants : (string * int) list;
  admitted : int;
  coalesced : int;
  completed : int;
  degraded : int;
  refused : int;
  shed : int;
  windows : int;
  queued_q : (float * float * float) option;
  service_q : (float * float * float) option;
  engines : (int * Engine.stats) list;
}

let histo_q h =
  if Metrics.Histogram.count h = 0 then None
  else
    Some
      ( Metrics.Histogram.p50 h,
        Metrics.Histogram.p95 h,
        Metrics.Histogram.p99 h )

let stats t =
  Mutex.lock t.m;
  Access.acquire "serve.m";
  Access.read "serve.queue" t.suid;
  let tenants =
    Hashtbl.fold
      (fun name q acc -> (name, Metrics.Counter.value q.served) :: acc)
      t.tenants_tbl []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  let engines =
    Array.to_list t.shard_state
    |> List.mapi (fun i st -> (i, st.engine_stats))
    |> List.filter_map (fun (i, o) -> Option.map (fun s -> (i, s)) o)
  in
  let windows =
    Array.fold_left
      (fun acc (st : shard_state) -> acc + st.windows)
      0 t.shard_state
  in
  let r =
    {
      shards_ = t.nshards;
      max_batch = t.max_batch;
      queue_depth = t.settings.Engine.queue_depth;
      tenant_limit = t.settings.Engine.tenants;
      tenants;
      admitted = Metrics.Counter.value t.admitted_c;
      coalesced = Metrics.Counter.value t.coalesced_c;
      completed = Metrics.Counter.value t.completed_c;
      degraded = Metrics.Counter.value t.degraded_c;
      refused = Metrics.Counter.value t.refused_c;
      shed = Metrics.Counter.value t.shed_c;
      windows;
      queued_q = histo_q t.queued_h;
      service_q = histo_q t.service_h;
      engines;
    }
  in
  Access.release "serve.m";
  Mutex.unlock t.m;
  r

(* Same discipline as [Engine.pp_stats]: identity line, admission
   line, work line, per-tenant lines, then each shard's engine table
   indented under its header. *)
let pp_stats ppf s =
  Format.fprintf ppf "serve: %d shards, window %d, queue depth %d, %d tenants max@\n"
    s.shards_ s.max_batch s.queue_depth s.tenant_limit;
  Format.fprintf ppf "admission: %d admitted, %d coalesced, %d shed@\n"
    s.admitted s.coalesced s.shed;
  Format.fprintf ppf "served: %d completed, %d degraded, %d refused in %d windows"
    s.completed s.degraded s.refused s.windows;
  let latency label = function
    | None -> ()
    | Some (p50, p95, p99) ->
        Format.fprintf ppf "@\nlatency %s: p50 %.0f, p95 %.0f, p99 %.0f us"
          label p50 p95 p99
  in
  latency "queued" s.queued_q;
  latency "service" s.service_q;
  List.iter
    (fun (name, n) -> Format.fprintf ppf "@\ntenant %s: %d served" name n)
    s.tenants;
  List.iter
    (fun (i, es) ->
      Format.fprintf ppf "@\n@[<v 2>shard %d:@,%a@]" i Engine.pp_stats es)
    s.engines

(* ------------------------------------------------------------------ *)
(* Observability surfaces.                                             *)

(* The shard tracers are written only by their worker domains; reading
   them is safe once the workers have joined ([shutdown]), which is
   the only supported time to merge lanes. *)
let trace_lanes t =
  Trace.lane ~tid:0 ~label:"scheduler" t.obs.Obs.trace
  :: List.init t.nshards (fun s ->
         Trace.lane ~tid:(s + 1)
           ~label:(Printf.sprintf "shard %d" s)
           t.tracers.(s))

let chrome_trace t = Trace.to_chrome_json_lanes (trace_lanes t)

let flight_rings t = Array.to_list t.flights

let shard_registries t = Array.to_list t.shard_metrics

let prometheus t =
  Expo.render
    (([], t.obs.Obs.metrics)
    :: List.mapi
         (fun s m -> ([ ("shard", string_of_int s) ], m))
         (Array.to_list t.shard_metrics))
