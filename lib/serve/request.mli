(** A stencil-service request.

    The paper's compiler served one user at a time: compile a
    subroutine, launch it, read the timings (sections 2 and 7).  The
    PR-7 serve layer turns that workflow into a multi-tenant service,
    and this module is its admission currency: who is asking
    ([tenant]), what stencil they want applied ([stencil] — source
    text, IR, or a {!Ccc_service.Fingerprint.key} naming a stencil the
    service has already seen), over which arrays ([env]), and by when
    ([deadline_us]).

    Requests are plain data; all validation (parse, recognition,
    catalog lookup, deadline and admission checks) happens in
    {!Serve.submit}. *)

(** How the stencil is spelled. *)
type stencil =
  | Text of string
      (** one bare Fortran assignment, fed through the section-4 front
          end ({!Ccc_service.Engine.recognize_statement}) at admission *)
  | Pattern of Ccc_stencil.Pattern.t  (** the stencil IR directly *)
  | Key of string
      (** a {!Ccc_service.Fingerprint.key} of a stencil this service
          already resolved (every admitted [Text]/[Pattern] request
          registers its key in the catalog); an unknown key is refused
          with [Parse_error] *)

type t = {
  tenant : string;  (** fair-queueing identity; never interpreted *)
  stencil : stencil;
  env : Ccc_runtime.Reference.env;
      (** the source and coefficient arrays; requests sharing the
          {e same} (physically equal) env and stencil fingerprint are
          coalesced into one execution *)
  deadline_us : float option;
      (** absolute deadline on the scheduler's clock, microseconds;
          checked at admission and again at dispatch *)
}

val v :
  ?deadline_us:float ->
  tenant:string ->
  env:Ccc_runtime.Reference.env ->
  stencil ->
  t
(** Plain constructor. *)
