(** Content-addressed keys for the persistent engine's plan cache.

    A compiled plan depends only on the stencil's geometry (tap
    offsets), the {e shape} of its coefficients, its boundary
    semantics, and the machine configuration — never on what the
    coefficient arrays or the source/result variables are called
    (section 5.3's schedules are all offset arithmetic).  The
    fingerprint canonicalizes exactly that equivalence class, so the
    cache serves the same plan to [C1*CSHIFT(X,1,-1)+...] and
    [K1*CSHIFT(P,1,-1)+...], retargeted to the new names by
    {!Ccc_compiler.Compile.rebind}. *)

val pattern : Ccc_stencil.Pattern.t -> string
(** Canonical pattern fingerprint: taps in sorted offset order (the
    order {!Ccc_stencil.Pattern.create} already imposes, making the
    fingerprint permutation-invariant), with coefficient arrays
    renamed a0, a1, ... by first occurrence — distinguishing a
    repeated array from distinct ones — scalar coefficients by value,
    then bias and boundary.  Source and result variable names are
    excluded. *)

val config : Ccc_cm2.Config.t -> string
(** Every field of the machine configuration, so any change in cost
    constants, node grid, register file or scratch capacity maps to a
    different cache key. *)

val key : Ccc_cm2.Config.t -> Ccc_stencil.Pattern.t -> string
(** [pattern p ^ "|" ^ config c]: the plan-cache key. *)
