open Ccc_stencil

(* Coefficient token under first-occurrence renaming: arrays become
   a0, a1, ... in order of first appearance, so C1/C2 and K1/K2
   fingerprint alike while a repeated array ("a0;a0") stays distinct
   from two different ones ("a0;a1"). *)
let coeff_token names counter = function
  | Coeff.One -> "1"
  | Coeff.Scalar v -> Printf.sprintf "s%.17g" v
  | Coeff.Array name -> (
      match Hashtbl.find_opt names name with
      | Some token -> token
      | None ->
          let token = Printf.sprintf "a%d" !counter in
          incr counter;
          Hashtbl.add names name token;
          token)

let pattern p =
  let names = Hashtbl.create 8 and counter = ref 0 in
  let buf = Buffer.create 64 in
  List.iter
    (fun (tap : Tap.t) ->
      let { Offset.drow; dcol } = tap.Tap.offset in
      Buffer.add_string buf
        (Printf.sprintf "%d,%d:%s;" drow dcol
           (coeff_token names counter tap.Tap.coeff)))
    (Pattern.taps p);
  (match Pattern.bias p with
  | Some c -> Buffer.add_string buf ("b:" ^ coeff_token names counter c ^ ";")
  | None -> ());
  (match Pattern.boundary p with
  | Boundary.Circular -> Buffer.add_string buf "circular"
  | Boundary.End_off fill ->
      Buffer.add_string buf (Printf.sprintf "endoff%.17g" fill));
  Buffer.contents buf

let config (c : Ccc_cm2.Config.t) =
  Printf.sprintf
    "%d,%d,%.17g,%d,%b,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%.17g,%.17g,%.17g,%b,%.17g,%.17g,%d,%.17g,%.17g"
    c.node_rows c.node_cols c.clock_hz c.fpu_registers c.single_precision
    c.madd_add_latency c.madd_writeback_latency c.load_latency
    c.static_issue_cycles c.memory_op_cycles c.madd_issue_cycles
    c.scratch_counter_reset_cycles c.loop_branch_cycles
    c.pipe_reversal_cycles c.line_overhead_cycles c.halfstrip_startup_cycles
    c.scratch_memory_words c.comm_cycles_per_word c.legacy_comm_cycles_per_word
    c.frontend_call_overhead_s c.frontend_dispatch_s c.frontend_word_cycles
    c.strength_reduced_frontend c.fft_butterfly_cycles c.fft_pointwise_cycles
    c.fft_transpose_passes c.fft_transpose_cycles_per_word c.fft_setup_cycles

let key c p = pattern p ^ "|" ^ config c
