module Config = Ccc_cm2.Config
module Machine = Ccc_cm2.Machine
module Pattern = Ccc_stencil.Pattern
module Boundary = Ccc_stencil.Boundary
module Compile = Ccc_compiler.Compile
module Exec = Ccc_runtime.Exec
module Fft = Ccc_runtime.Fft
module Grid = Ccc_runtime.Grid
module Stats = Ccc_runtime.Stats
module Kernel = Ccc_runtime.Kernel
module Pool = Ccc_runtime.Pool
module Reference = Ccc_runtime.Reference
module Finding = Ccc_analysis.Finding
module Access = Ccc_analysis.Access
module Guard = Ccc_fault.Guard
module Obs = Ccc_obs.Obs
module Metrics = Ccc_obs.Metrics
module Flight = Ccc_obs.Flight

let src =
  Logs.Src.create "ccc.engine"
    ~doc:"Plan-cache, arena and rejection events of the persistent engine"

module Log = (val Logs.src_log src : Logs.LOG)

type error = Outcome.reject =
  | Parse_error of string
  | Rejected of Ccc_frontend.Diagnostics.t list
  | Resource_error of (int * Ccc_analysis.Finding.t) list
  | Too_small of string
  | Invalid_batch of string

let error_to_string = Outcome.reject_to_string

(* The cached kernel is verified once at miss time (against the
   reference evaluator and the cycle-accurate interpreter) and then
   reused verbatim across rebind hits: rebinding retargets coefficient
   and variable names only, never tap offsets, bias arity or stream
   count — exactly the data the lowering depends on.

   Since PR 10 an entry caches the compilation *result*, not just
   successes: a dense stencil the compiler rejects is remembered with
   its per-width findings, so every subsequent request falls through
   to the transform path without re-running the scheduler.  The entry
   also carries one standing {!Fft.plan} (like the arena, one standing
   shape: a shape change rebuilds it) together with the array names it
   was resolved from — a hit under renamed arrays rebuilds rather than
   trusting names the fingerprint deliberately canonicalizes away. *)
type entry = {
  compiled : (Compile.t * Kernel.t, (int * Finding.t) list) result;
  mutable fft : (string list * Fft.plan) option;
  mutable last_used : int;
}

(* Every counter the engine keeps lives in the metrics registry; the
   record below is just the resolved handles, so the hot paths touch
   one mutable cell instead of re-hashing the metric name. *)
type settings = {
  capacity : int;
  jobs : int;
  memory_words : int option;
  queue_depth : int;
  tenants : int;
  tile : (int * int) option;
      (* kernel tile geometry forwarded to every Exec call; [None]
         defers to the machine config's calibrated default *)
  backend : Exec.backend;
      (* Auto picks compiled vs transform per request by predicted
         cycles; Force_* pins one path for ablation runs *)
  widths : int list option;
      (* multistencil widths offered to the compiler; [None] defers to
         [Compile.candidate_widths] *)
}

let default_settings =
  {
    capacity = 32;
    jobs = 1;
    memory_words = None;
    queue_depth = 64;
    tenants = 16;
    tile = None;
    backend = Exec.Auto;
    widths = None;
  }

type t = {
  config : Config.t;
  config_fp : string;
  machine : Machine.t;
  arena : Exec.Arena.t;
  pool : Pool.t;
  settings : settings;
  eid : int;
      (* process-globally-unique engine id: the coordinator-only
         cache/tick probes are namespaced by it, so several engines
         alive at once (one per serve shard) each have their own owner
         in the access log *)
  cache : (string, entry) Hashtbl.t;
  obs : Obs.t;
  flight : Flight.t option;
      (* the shard's flight recorder, when serving; evictions, guard
         trips and degradations leave incident breadcrumbs there *)
  hits : Metrics.Counter.t;
  misses : Metrics.Counter.t;
  evictions : Metrics.Counter.t;
  compiles : Metrics.Counter.t;
  runs : Metrics.Counter.t;
  batches : Metrics.Counter.t;
  comm_cycles : Metrics.Counter.t;
  compute_cycles : Metrics.Counter.t;
  frontend_s : Metrics.Gauge.t;
  per_call_compute : Metrics.Histogram.t;
  arena_reuses : Metrics.Gauge.t;
  arena_rebuilds : Metrics.Gauge.t;
  kernel_verifies : Metrics.Counter.t;
  fft_runs : Metrics.Counter.t;
  fft_builds : Metrics.Counter.t;
  fft_rebinds : Metrics.Counter.t;
  fft_per_call : Metrics.Histogram.t;
  guard_detections : Metrics.Counter.t;
  guard_retries : Metrics.Counter.t;
  guard_recompiles : Metrics.Counter.t;
  guard_degraded : Metrics.Counter.t;
  mutable tick : int;
  owner : int;  (* raw id of the creating domain; entry points check it *)
}

type stats = {
  jobs : int;
  queue_depth : int;
  tenants : int;
  hits : int;
  misses : int;
  evictions : int;
  entries : int;
  capacity : int;
  compiles : int;
  runs : int;
  batches : int;
  fft_runs : int;
  fft_builds : int;
  fft_rebinds : int;
  arena_reuses : int;
  arena_rebuilds : int;
  comm_cycles : int;
  compute_cycles : int;
  frontend_s : float;
  per_call_compute : (int * float * int) option;
  per_call_quantiles : (float * float * float) option;
}

(* One id per engine in the process (see the [eid] field). *)
let engine_ids = Atomic.make 0

let create ?obs ?flight ?capacity ?jobs ?memory_words ?settings config =
  let settings =
    match settings with
    | Some s -> s
    | None ->
        {
          default_settings with
          capacity = Option.value capacity ~default:default_settings.capacity;
          jobs = Option.value jobs ~default:default_settings.jobs;
          memory_words;
        }
  in
  if settings.capacity < 1 then invalid_arg "Engine.create: capacity < 1";
  if settings.queue_depth < 1 then invalid_arg "Engine.create: queue_depth < 1";
  if settings.tenants < 1 then invalid_arg "Engine.create: tenants < 1";
  let obs =
    match obs with
    | Some o -> o
    | None -> Obs.v ~trace:Ccc_obs.Trace.disabled ~metrics:(Metrics.create ())
  in
  let m = obs.Obs.metrics in
  let machine = Machine.create ?memory_words:settings.memory_words config in
  {
    config;
    config_fp = Fingerprint.config config;
    machine;
    arena = Exec.Arena.create machine;
    pool = Pool.create ~jobs:settings.jobs;
    settings;
    eid = Atomic.fetch_and_add engine_ids 1;
    cache = Hashtbl.create 16;
    obs;
    flight;
    hits = Metrics.counter m "engine.cache.hits";
    misses = Metrics.counter m "engine.cache.misses";
    evictions = Metrics.counter m "engine.cache.evictions";
    compiles = Metrics.counter m "engine.compiles";
    runs = Metrics.counter m "engine.runs";
    batches = Metrics.counter m "engine.batches";
    comm_cycles = Metrics.counter m "engine.cycles.comm";
    compute_cycles = Metrics.counter m "engine.cycles.compute";
    frontend_s = Metrics.gauge m "engine.frontend_s";
    per_call_compute = Metrics.histogram m "engine.compute_cycles_per_call";
    arena_reuses = Metrics.gauge m "engine.arena.reuses";
    arena_rebuilds = Metrics.gauge m "engine.arena.rebuilds";
    kernel_verifies = Metrics.counter m "engine.kernel.verifies";
    fft_runs = Metrics.counter m "engine.fft.runs";
    fft_builds = Metrics.counter m "engine.fft.builds";
    fft_rebinds = Metrics.counter m "engine.fft.rebinds";
    fft_per_call = Metrics.histogram m "engine.fft.compute_cycles_per_call";
    guard_detections = Metrics.counter m "engine.guard.detections";
    guard_retries = Metrics.counter m "engine.guard.retries";
    guard_recompiles = Metrics.counter m "engine.guard.recompiles";
    guard_degraded = Metrics.counter m "engine.guard.degraded";
    tick = 0;
    owner = (Domain.self () :> int);
  }

(* The engine's cache, LRU tick and arena are coordinator-only state
   (DESIGN.md section 8): they are deliberately lock-free, so calling
   an entry point from any other domain would race.  The check makes
   the ownership rule fail fast with a structured finding instead of
   corrupting the cache. *)
let check_owner t who =
  let me = (Domain.self () :> int) in
  if me <> t.owner then
    raise
      (Finding.Failed
         [
           Finding.makef Finding.Ownership
             "Engine.%s called from domain %d: the engine (plan cache,               arena, pool) is owned by the domain that created it (%d);               share work through the pool, not the engine handle"
             who me t.owner;
         ])

let config t = t.config
let settings_of t = t.settings
let machine t = t.machine
let obs t = t.obs
let metrics t = t.obs.Obs.metrics
let pool t = t.pool
let jobs t = Pool.jobs t.pool
let shutdown t = Pool.shutdown t.pool

let stats (t : t) : stats =
  (* Absorb the arena's own counter family into the registry view. *)
  Metrics.Gauge.set t.arena_reuses (float_of_int (Exec.Arena.reuses t.arena));
  Metrics.Gauge.set t.arena_rebuilds
    (float_of_int (Exec.Arena.rebuilds t.arena));
  {
    jobs = t.settings.jobs;
    queue_depth = t.settings.queue_depth;
    tenants = t.settings.tenants;
    hits = Metrics.Counter.value t.hits;
    misses = Metrics.Counter.value t.misses;
    evictions = Metrics.Counter.value t.evictions;
    entries = Hashtbl.length t.cache;
    capacity = t.settings.capacity;
    compiles = Metrics.Counter.value t.compiles;
    runs = Metrics.Counter.value t.runs;
    batches = Metrics.Counter.value t.batches;
    fft_runs = Metrics.Counter.value t.fft_runs;
    fft_builds = Metrics.Counter.value t.fft_builds;
    fft_rebinds = Metrics.Counter.value t.fft_rebinds;
    arena_reuses = Exec.Arena.reuses t.arena;
    arena_rebuilds = Exec.Arena.rebuilds t.arena;
    comm_cycles = Metrics.Counter.value t.comm_cycles;
    compute_cycles = Metrics.Counter.value t.compute_cycles;
    frontend_s = Metrics.Gauge.value t.frontend_s;
    per_call_compute =
      (if Metrics.Histogram.count t.per_call_compute = 0 then None
       else
         Some
           ( int_of_float (Metrics.Histogram.min t.per_call_compute),
             Metrics.Histogram.mean t.per_call_compute,
             int_of_float (Metrics.Histogram.max t.per_call_compute) ));
    per_call_quantiles =
      (if Metrics.Histogram.count t.per_call_compute = 0 then None
       else
         Some
           ( Metrics.Histogram.p50 t.per_call_compute,
             Metrics.Histogram.p95 t.per_call_compute,
             Metrics.Histogram.p99 t.per_call_compute ));
  }

(* The field order below — identity, cache, work, arena, accumulated
   cycles, per-call — is shared with [Serve.pp_stats], which prints
   its own identity/admission/work lines in the same discipline and
   embeds this printer per shard.  Keep the two in lockstep: the cram
   suite pins both tables. *)
let pp_stats ppf (s : stats) =
  Format.fprintf ppf
    "engine: %d jobs, queue depth %d, %d tenants@\n\
     plan cache: %d hits, %d misses, %d evictions (%d/%d entries)@\n\
     compiles: %d  runs: %d  batches: %d@\n\
     fft: %d runs, %d builds, %d rebinds@\n\
     arena: %d reuses, %d rebuilds@\n\
     accumulated: comm %d cycles, compute %d cycles, front end %.6f s"
    s.jobs s.queue_depth s.tenants s.hits s.misses s.evictions s.entries
    s.capacity s.compiles s.runs s.batches s.fft_runs s.fft_builds
    s.fft_rebinds s.arena_reuses s.arena_rebuilds s.comm_cycles
    s.compute_cycles s.frontend_s;
  (match s.per_call_compute with
  | None -> ()
  | Some (min, mean, max) ->
      Format.fprintf ppf "@\nper call: compute min %d, mean %.0f, max %d cycles"
        min mean max);
  match s.per_call_quantiles with
  | None -> ()
  | Some (p50, p95, p99) ->
      Format.fprintf ppf "@\nper call: compute p50 %.0f, p95 %.0f, p99 %.0f cycles"
        p50 p95 p99

let evict_lru t =
  let victim =
    Hashtbl.fold
      (fun key entry acc ->
        match acc with
        | Some (_, best) when best.last_used <= entry.last_used -> acc
        | _ -> Some (key, entry))
      t.cache None
  in
  match victim with
  | Some (key, _) ->
      Hashtbl.remove t.cache key;
      Access.write "engine.cache" t.eid;
      Metrics.Counter.incr t.evictions;
      Option.iter
        (fun ring -> Flight.record ring Flight.Cache_evict key)
        t.flight;
      Log.info (fun m -> m "plan cache eviction: %s" key)
  | None -> ()

(* Find or create the cache entry for [pattern].  Both outcomes of
   the scheduler are cached: a success with its verified kernel, and a
   rejection with its per-width findings — the latter so a dense
   stencil that falls through to the transform path pays the scheduler
   exactly once, then hits like any other plan. *)
let lookup_entry t pattern =
  Access.set_phase "compile";
  let fp = Fingerprint.pattern pattern in
  let key = fp ^ "|" ^ t.config_fp in
  match Hashtbl.find_opt t.cache key with
  | Some entry ->
      Access.read "engine.cache" t.eid;
      Metrics.Counter.incr t.hits;
      t.tick <- t.tick + 1;
      Access.write "engine.tick" t.eid;
      entry.last_used <- t.tick;
      Log.debug (fun m -> m "plan cache hit: %s" fp);
      entry
  | None ->
      Access.read "engine.cache" t.eid;
      Metrics.Counter.incr t.misses;
      Log.debug (fun m -> m "plan cache miss: %s" fp);
      let compiled =
        match
          Compile.compile ~obs:t.obs ?widths:t.settings.widths t.config pattern
        with
        | Error rejections ->
            Log.warn (fun m ->
                m "stencil %s rejected: %s" fp (Compile.no_workable rejections));
            Error rejections
        | Ok compiled ->
            Metrics.Counter.incr t.compiles;
            let kernel = Kernel.build t.config compiled in
            Metrics.Counter.incr t.kernel_verifies;
            Ok (compiled, kernel)
      in
      if Hashtbl.length t.cache >= t.settings.capacity then evict_lru t;
      t.tick <- t.tick + 1;
      Access.write "engine.tick" t.eid;
      let entry = { compiled; fft = None; last_used = t.tick } in
      Hashtbl.add t.cache key entry;
      Access.write "engine.cache" t.eid;
      entry

(* A hit may carry different coefficient or variable names than the
   cached compilation; rebind retargets the plans without redoing any
   scheduling, and the verified kernel carries over unchanged (it
   depends only on tap geometry and stream count, which the
   fingerprint pins). *)
let compile_entry t pattern =
  let entry = lookup_entry t pattern in
  match entry.compiled with
  | Ok (compiled, kernel) -> Ok (Compile.rebind compiled pattern, kernel)
  | Error rejections -> Error (Resource_error rejections)

let compile t pattern =
  check_owner t "compile";
  Result.map fst (compile_entry t pattern)

let recognize_statement source =
  match Ccc_frontend.Parser.parse_statement source with
  | stmt -> (
      match Ccc_frontend.Recognize.statement stmt with
      | Ok pattern -> Ok pattern
      | Error diags -> Error (Rejected diags))
  | exception Ccc_frontend.Parser.Error { line; message } ->
      Error (Parse_error (Printf.sprintf "line %d: %s" line message))

let compile_statement t source =
  match recognize_statement source with
  | Ok pattern -> compile t pattern
  | Error _ as e -> e

let record (t : t) (s : Stats.t) =
  Metrics.Counter.incr ~by:s.Stats.comm_cycles t.comm_cycles;
  Metrics.Counter.incr ~by:s.Stats.compute_cycles t.compute_cycles;
  Metrics.Gauge.add t.frontend_s s.Stats.frontend_s;
  Metrics.Histogram.observe t.per_call_compute
    (float_of_int s.Stats.compute_cycles)

let warn_rejection pattern e =
  Log.warn (fun m ->
      m "stencil %s rejected: %s" (Fingerprint.pattern pattern)
        (error_to_string e))

(* Global grid shape of the request, read off the bound source array
   (raises [Reference.Unbound] like the execution paths themselves). *)
let grid_shape pattern env =
  let src = Reference.lookup env (Pattern.source_var pattern) in
  (Grid.rows src, Grid.cols src)

(* Pick the execution path for this request: the settings' pinned
   backend, or — under [Auto] — whichever of the compiled and
   transform cycle models predicts fewer cycles for this shape
   (ties to compiled; a rejected stencil falls through to the
   transform).  Pure and deterministic given (settings, config,
   shape, compilation result). *)
let select (t : t) entry ~rows ~cols =
  let sub_rows = rows / t.config.Config.node_rows
  and sub_cols = cols / t.config.Config.node_cols in
  let compiled =
    match entry.compiled with Ok (c, _) -> Some c | Error _ -> None
  in
  Exec.select_backend ~backend:t.settings.backend ~sub_rows ~sub_cols t.config
    compiled

(* The entry's standing transform plan, resolved for this request:
   reuse when the shape and array names match (re-transforming only
   the coefficient image when values changed — counted as a rebind),
   rebuild otherwise.  Raises [Fft.Varying] on a non-uniform
   coefficient and [Finding.Failed] if the fresh plan fails its
   sandbox proof. *)
let fft_plan_for (t : t) entry pattern ~rows ~cols env =
  let names = Reference.referenced_arrays pattern in
  match entry.fft with
  | Some (cached_names, plan)
    when cached_names = names && Fft.rows plan = rows && Fft.cols plan = cols
    ->
      if Fft.rebind plan env then Metrics.Counter.incr t.fft_rebinds;
      plan
  | _ ->
      let plan = Fft.build pattern ~rows ~cols env in
      Metrics.Counter.incr t.fft_builds;
      entry.fft <- Some (names, plan);
      Access.write "engine.cache" t.eid;
      plan

let record_fft (t : t) (result : Exec.result) =
  Metrics.Counter.incr t.runs;
  Metrics.Counter.incr t.fft_runs;
  record t result.Exec.stats;
  Metrics.Histogram.observe t.fft_per_call
    (float_of_int result.Exec.stats.Stats.compute_cycles)

let rejections_of entry =
  match entry.compiled with Error r -> r | Ok _ -> []

let run ?mode ?iterations t pattern env =
  check_owner t "run";
  let entry = lookup_entry t pattern in
  let run_compiled (compiled, kernel) =
    match
      Exec.run_arena ~obs:t.obs ?mode ?iterations ~pool:t.pool ~kernel
        ?tile:t.settings.tile t.arena compiled env
    with
    | result ->
        Metrics.Counter.incr t.runs;
        record t result.Exec.stats;
        Ok result
    | exception Exec.Too_small m ->
        let e = Too_small m in
        warn_rejection pattern e;
        Error e
  in
  let compiled =
    match entry.compiled with
    | Ok (c, k) -> Some (Compile.rebind c pattern, k)
    | Error _ -> None
  in
  let rows, cols = grid_shape pattern env in
  match select t entry ~rows ~cols with
  | `Compiled -> (
      match compiled with
      | Some ck -> run_compiled ck
      | None ->
          let e = Resource_error (rejections_of entry) in
          warn_rejection pattern e;
          Error e)
  | `Fft -> (
      match fft_plan_for t entry pattern ~rows ~cols env with
      | plan -> (
          match
            Exec.run_fft ~obs:t.obs ?iterations ~pool:t.pool ~plan t.machine
              pattern env
          with
          | result ->
              record_fft t result;
              Ok result
          | exception Exec.Too_small m ->
              let e = Too_small m in
              warn_rejection pattern e;
              Error e)
      | exception Fft.Varying _ -> (
          (* Spatially-varying coefficients are not a convolution: the
             transform path refuses them, so serve the compiled plan
             when one exists and report the rejection otherwise. *)
          match compiled with
          | Some ck -> run_compiled ck
          | None ->
              let e = Resource_error (rejections_of entry) in
              warn_rejection pattern e;
              Error e))

let run_statement ?mode ?iterations t source env =
  match recognize_statement source with
  | Ok pattern -> run ?mode ?iterations t pattern env
  | Error _ as e -> e

type degraded = Outcome.degraded = {
  output : Ccc_runtime.Grid.t;
  findings : Finding.t list;
  retries : int;
  recompiled : bool;
}

type outcome = Completed of Exec.result | Degraded of degraded

let outcome_of_guarded ~fingerprint = function
  | Ok (Completed result) -> Outcome.completed ~fingerprint result
  | Ok (Degraded detail) -> Outcome.degraded ~fingerprint detail
  | Error reject -> Outcome.refused ~fingerprint reject

(* The recovery ladder: guarded run -> bounded same-kernel retries
   (a transient fault leaves nothing behind, so a re-run of the same
   cached artifacts comes back clean) -> revalidate and recompile the
   cached plan and kernel (a poisoned cache entry fails its sandbox
   re-proof and is replaced) -> degrade to the host reference
   evaluator, which shares nothing with the simulated substrate.  The
   ladder never lets a detected fault escape as a wrong answer or a
   crash: the worst case is a slow, correct [Degraded] result. *)
let run_guarded ?mode ?iterations ?(inject = Exec.no_hooks) ?(max_retries = 2)
    t pattern env =
  check_owner t "run_guarded";
  let entry = lookup_entry t pattern in
  let compiled_pair =
    match entry.compiled with
    | Ok (c, k) -> Some (Compile.rebind c pattern, k)
    | Error _ -> None
  in
  let retries = ref 0 in
  let note_detection fs =
    Metrics.Counter.incr t.guard_detections;
    let first_finding =
      match fs with f :: _ -> Finding.to_string f | [] -> "unknown"
    in
    Option.iter
      (fun ring ->
        Flight.record ring Flight.Guard_trip
          (Fingerprint.pattern pattern ^ ": " ^ first_finding))
      t.flight;
    Log.warn (fun m ->
        m "guard detected a fault (%s): %s" (Fingerprint.pattern pattern)
          first_finding)
  in
  let degrade findings recompiled =
    Metrics.Counter.incr t.guard_degraded;
    Option.iter
      (fun ring ->
        Flight.record ring Flight.Degraded
          (Printf.sprintf "%s: reference path after %d retries"
             (Fingerprint.pattern pattern) !retries))
      t.flight;
    Log.warn (fun m ->
        m "degrading %s to the reference path after %d retries"
          (Fingerprint.pattern pattern) !retries);
    let output = Reference.apply pattern env in
    Ok (Degraded { output; findings; retries = !retries; recompiled })
  in
  let guarded run_path =
    let watch = Guard.watch pattern in
    let hooks = Exec.compose_hooks inject watch.Guard.hooks in
    match run_path hooks with
    | result -> (
        match
          !(watch.Guard.caught) @ Guard.check_output pattern env result.Exec.output
        with
        | [] -> `Ok result
        | fs -> `Faulty fs)
    | exception Exec.Too_small m -> `Too_small m
    | exception Finding.Failed fs -> `Faulty fs
    | exception exn ->
        `Faulty
          [
            Finding.makef Finding.Output_integrity "guarded run crashed: %s"
              (Printexc.to_string exn);
          ]
  in
  let attempt compiled kernel =
    guarded (fun hooks ->
        Exec.run_arena ~obs:t.obs ?mode ?iterations ~pool:t.pool ~kernel
          ?tile:t.settings.tile ~hooks t.arena compiled env)
  in
  let rec ladder compiled kernel budget acc recompiled =
    match attempt compiled kernel with
    | `Ok result ->
        Metrics.Counter.incr t.runs;
        record t result.Exec.stats;
        Ok (Completed result)
    | `Too_small m ->
        let e = Too_small m in
        warn_rejection pattern e;
        Error e
    | `Faulty fs -> (
        note_detection fs;
        let acc = acc @ fs in
        if budget > 0 then begin
          Metrics.Counter.incr t.guard_retries;
          incr retries;
          ladder compiled kernel (budget - 1) acc recompiled
        end
        else if not recompiled then begin
          (* Root-cause the cached artifacts before replacing
             them: the sandbox re-proof of the kernel and the
             dataflow verifier over every cached plan. *)
          let diagnosis =
            Guard.check_kernel t.config compiled kernel
            @ Guard.revalidate t.config compiled
          in
          Metrics.Counter.incr t.kernel_verifies;
          Metrics.Counter.incr t.guard_recompiles;
          match
            Compile.compile ~obs:t.obs ?widths:t.settings.widths t.config
              pattern
          with
          | Error _ -> degrade (acc @ diagnosis) recompiled
          | Ok fresh ->
              Metrics.Counter.incr t.compiles;
              let fresh_kernel = Kernel.build t.config fresh in
              Metrics.Counter.incr t.kernel_verifies;
              let key = Fingerprint.pattern pattern ^ "|" ^ t.config_fp in
              t.tick <- t.tick + 1;
              Access.write "engine.tick" t.eid;
              Hashtbl.replace t.cache key
                {
                  compiled = Ok (fresh, fresh_kernel);
                  fft = entry.fft;
                  last_used = t.tick;
                };
              Access.write "engine.cache" t.eid;
              ladder fresh fresh_kernel 0 (acc @ diagnosis) true
        end
        else degrade acc recompiled)
  in
  (* The transform-path ladder mirrors the compiled one rung for rung:
     bounded same-plan retries, then {!Fft.verify} as the root-cause
     re-proof of the cached spectrum with a fresh {!Fft.build}
     replacing it, and finally the same degradation to the host
     reference evaluator. *)
  let attempt_fft plan =
    guarded (fun hooks ->
        Exec.run_fft ~obs:t.obs ?iterations ~pool:t.pool ~plan ~hooks
          t.machine pattern env)
  in
  let rec fft_ladder ~rows ~cols plan budget acc rebuilt =
    match attempt_fft plan with
    | `Ok result ->
        record_fft t result;
        Ok (Completed result)
    | `Too_small m ->
        let e = Too_small m in
        warn_rejection pattern e;
        Error e
    | `Faulty fs -> (
        note_detection fs;
        let acc = acc @ fs in
        if budget > 0 then begin
          Metrics.Counter.incr t.guard_retries;
          incr retries;
          fft_ladder ~rows ~cols plan (budget - 1) acc rebuilt
        end
        else if not rebuilt then begin
          let diagnosis =
            match Fft.verify pattern plan with
            | () -> []
            | exception Finding.Failed fs -> fs
          in
          Metrics.Counter.incr t.guard_recompiles;
          match Fft.build pattern ~rows ~cols env with
          | fresh ->
              Metrics.Counter.incr t.fft_builds;
              entry.fft <- Some (Reference.referenced_arrays pattern, fresh);
              Access.write "engine.cache" t.eid;
              fft_ladder ~rows ~cols fresh 0 (acc @ diagnosis) true
          | exception Finding.Failed fs2 ->
              degrade (acc @ diagnosis @ fs2) rebuilt
        end
        else degrade acc rebuilt)
  in
  let dispatch () =
    let rows, cols = grid_shape pattern env in
    match select t entry ~rows ~cols with
    | `Compiled -> (
        match compiled_pair with
        | Some (c, k) -> ladder c k max_retries [] false
        | None ->
            let e = Resource_error (rejections_of entry) in
            warn_rejection pattern e;
            Error e)
    | `Fft -> (
        match fft_plan_for t entry pattern ~rows ~cols env with
        | plan -> fft_ladder ~rows ~cols plan max_retries [] false
        | exception Fft.Varying _ -> (
            match compiled_pair with
            | Some (c, k) -> ladder c k max_retries [] false
            | None ->
                let e = Resource_error (rejections_of entry) in
                warn_rejection pattern e;
                Error e)
        | exception Finding.Failed fs ->
            (* The fresh plan failed its own sandbox proof: fall back
               to the compiled plan when one exists, else the guarded
               contract still holds — degrade, never crash. *)
            (match compiled_pair with
            | Some (c, k) -> ladder c k max_retries fs false
            | None ->
                Metrics.Counter.incr t.guard_detections;
                degrade fs false))
  in
  match dispatch () with
  | exception Reference.Unbound name ->
      Error (Parse_error (Printf.sprintf "unbound array %s" name))
  | r -> r

let check_batch patterns =
  match patterns with
  | [] -> Error (Invalid_batch "a batch needs at least one statement")
  | first :: rest ->
      let source_var = Pattern.source_var first in
      let boundary = Pattern.boundary first in
      let rec check = function
        | [] -> Ok ()
        | p :: rest ->
            if Pattern.source_var p <> source_var then
              Error
                (Invalid_batch
                   (Printf.sprintf
                      "statements read %s and %s; a batch shares one source \
                       array behind one halo exchange"
                      source_var (Pattern.source_var p)))
            else if not (Boundary.equal (Pattern.boundary p) boundary) then
              Error
                (Invalid_batch
                   "statements mix boundary semantics; a batch shares one \
                    halo exchange")
            else check rest
      in
      check rest

let run_batch ?mode t patterns env =
  check_owner t "run_batch";
  match check_batch patterns with
  | Error e ->
      (match patterns with
      | p :: _ -> warn_rejection p e
      | [] -> Log.warn (fun m -> m "empty batch rejected"));
      Error e
  | Ok () -> (
      let rec compile_all acc = function
        | [] -> Ok (List.rev acc)
        | p :: rest -> (
            match compile_entry t p with
            | Ok pair -> compile_all (pair :: acc) rest
            | Error _ as e -> e)
      in
      match compile_all [] patterns with
      | Error _ as e -> e
      | Ok pairs -> (
          let compileds = List.map fst pairs in
          let kernels = List.map snd pairs in
          match
            Exec.run_batch_arena ~obs:t.obs ?mode ~pool:t.pool ~kernels
              ?tile:t.settings.tile t.arena compileds env
          with
          | batch ->
              Metrics.Counter.incr t.batches;
              record t batch.Exec.batch_stats;
              Ok batch
          | exception Exec.Too_small m ->
              let e = Too_small m in
              warn_rejection (List.hd patterns) e;
              Error e))

let run_batch_statements ?mode t sources env =
  let rec recognize_all acc = function
    | [] -> Ok (List.rev acc)
    | s :: rest -> (
        match recognize_statement s with
        | Ok pattern -> recognize_all (pattern :: acc) rest
        | Error _ as e -> e)
  in
  match recognize_all [] sources with
  | Ok patterns -> run_batch ?mode t patterns env
  | Error _ as e -> e

let reset t =
  check_owner t "reset";
  Hashtbl.reset t.cache;
  Access.write "engine.cache" t.eid;
  Exec.Arena.reset t.arena;
  t.tick <- 0;
  Metrics.reset t.obs.Obs.metrics
