module Config = Ccc_cm2.Config
module Machine = Ccc_cm2.Machine
module Pattern = Ccc_stencil.Pattern
module Boundary = Ccc_stencil.Boundary
module Compile = Ccc_compiler.Compile
module Exec = Ccc_runtime.Exec
module Stats = Ccc_runtime.Stats

type error =
  | Parse_error of string
  | Rejected of Ccc_frontend.Diagnostics.t list
  | Resource_error of (int * Ccc_analysis.Finding.t) list
  | Too_small of string
  | Invalid_batch of string

let error_to_string = function
  | Parse_error m -> "parse error: " ^ m
  | Rejected diags ->
      "not a recognizable stencil assignment:\n"
      ^ String.concat "\n"
          (List.map Ccc_frontend.Diagnostics.to_string diags)
  | Resource_error rejections ->
      "resource limits: " ^ Compile.no_workable rejections
  | Too_small m -> "array too small: " ^ m
  | Invalid_batch m -> "invalid batch: " ^ m

type entry = { compiled : Compile.t; mutable last_used : int }

type t = {
  config : Config.t;
  config_fp : string;
  machine : Machine.t;
  arena : Exec.Arena.t;
  capacity : int;
  cache : (string, entry) Hashtbl.t;
  mutable tick : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutable compiles : int;
  mutable runs : int;
  mutable batches : int;
  mutable comm_cycles : int;
  mutable compute_cycles : int;
  mutable frontend_s : float;
}

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  entries : int;
  capacity : int;
  compiles : int;
  runs : int;
  batches : int;
  arena_reuses : int;
  arena_rebuilds : int;
  comm_cycles : int;
  compute_cycles : int;
  frontend_s : float;
}

let create ?(capacity = 32) ?memory_words config =
  if capacity < 1 then invalid_arg "Engine.create: capacity < 1";
  let machine = Machine.create ?memory_words config in
  {
    config;
    config_fp = Fingerprint.config config;
    machine;
    arena = Exec.Arena.create machine;
    capacity;
    cache = Hashtbl.create 16;
    tick = 0;
    hits = 0;
    misses = 0;
    evictions = 0;
    compiles = 0;
    runs = 0;
    batches = 0;
    comm_cycles = 0;
    compute_cycles = 0;
    frontend_s = 0.0;
  }

let config t = t.config
let machine t = t.machine

let stats (t : t) : stats =
  {
    hits = t.hits;
    misses = t.misses;
    evictions = t.evictions;
    entries = Hashtbl.length t.cache;
    capacity = t.capacity;
    compiles = t.compiles;
    runs = t.runs;
    batches = t.batches;
    arena_reuses = Exec.Arena.reuses t.arena;
    arena_rebuilds = Exec.Arena.rebuilds t.arena;
    comm_cycles = t.comm_cycles;
    compute_cycles = t.compute_cycles;
    frontend_s = t.frontend_s;
  }

let pp_stats ppf (s : stats) =
  Format.fprintf ppf
    "plan cache: %d hits, %d misses, %d evictions (%d/%d entries)@\n\
     compiles: %d  runs: %d  batches: %d@\n\
     arena: %d reuses, %d rebuilds@\n\
     accumulated: comm %d cycles, compute %d cycles, front end %.6f s"
    s.hits s.misses s.evictions s.entries s.capacity s.compiles s.runs
    s.batches s.arena_reuses s.arena_rebuilds s.comm_cycles s.compute_cycles
    s.frontend_s

let evict_lru t =
  let victim =
    Hashtbl.fold
      (fun key entry acc ->
        match acc with
        | Some (_, best) when best.last_used <= entry.last_used -> acc
        | _ -> Some (key, entry))
      t.cache None
  in
  match victim with
  | Some (key, _) ->
      Hashtbl.remove t.cache key;
      t.evictions <- t.evictions + 1
  | None -> ()

let compile t pattern =
  let key = Fingerprint.pattern pattern ^ "|" ^ t.config_fp in
  match Hashtbl.find_opt t.cache key with
  | Some entry ->
      t.hits <- t.hits + 1;
      t.tick <- t.tick + 1;
      entry.last_used <- t.tick;
      (* A hit may carry different coefficient or variable names than
         the cached compilation; rebind retargets the plans without
         redoing any scheduling. *)
      Ok (Compile.rebind entry.compiled pattern)
  | None -> (
      t.misses <- t.misses + 1;
      match Compile.compile t.config pattern with
      | Error rejections -> Error (Resource_error rejections)
      | Ok compiled ->
          t.compiles <- t.compiles + 1;
          if Hashtbl.length t.cache >= t.capacity then evict_lru t;
          t.tick <- t.tick + 1;
          Hashtbl.add t.cache key { compiled; last_used = t.tick };
          Ok compiled)

let recognize_statement source =
  match Ccc_frontend.Parser.parse_statement source with
  | stmt -> (
      match Ccc_frontend.Recognize.statement stmt with
      | Ok pattern -> Ok pattern
      | Error diags -> Error (Rejected diags))
  | exception Ccc_frontend.Parser.Error { line; message } ->
      Error (Parse_error (Printf.sprintf "line %d: %s" line message))

let compile_statement t source =
  match recognize_statement source with
  | Ok pattern -> compile t pattern
  | Error _ as e -> e

let record (t : t) (s : Stats.t) =
  t.comm_cycles <- t.comm_cycles + s.Stats.comm_cycles;
  t.compute_cycles <- t.compute_cycles + s.Stats.compute_cycles;
  t.frontend_s <- t.frontend_s +. s.Stats.frontend_s

let run ?mode ?iterations t pattern env =
  match compile t pattern with
  | Error _ as e -> e
  | Ok compiled -> (
      match Exec.run_arena ?mode ?iterations t.arena compiled env with
      | result ->
          t.runs <- t.runs + 1;
          record t result.Exec.stats;
          Ok result
      | exception Exec.Too_small m -> Error (Too_small m))

let run_statement ?mode ?iterations t source env =
  match recognize_statement source with
  | Ok pattern -> run ?mode ?iterations t pattern env
  | Error _ as e -> e

let check_batch patterns =
  match patterns with
  | [] -> Error (Invalid_batch "a batch needs at least one statement")
  | first :: rest ->
      let source_var = Pattern.source_var first in
      let boundary = Pattern.boundary first in
      let rec check = function
        | [] -> Ok ()
        | p :: rest ->
            if Pattern.source_var p <> source_var then
              Error
                (Invalid_batch
                   (Printf.sprintf
                      "statements read %s and %s; a batch shares one source \
                       array behind one halo exchange"
                      source_var (Pattern.source_var p)))
            else if not (Boundary.equal (Pattern.boundary p) boundary) then
              Error
                (Invalid_batch
                   "statements mix boundary semantics; a batch shares one \
                    halo exchange")
            else check rest
      in
      check rest

let run_batch ?mode t patterns env =
  match check_batch patterns with
  | Error _ as e -> e
  | Ok () -> (
      let rec compile_all acc = function
        | [] -> Ok (List.rev acc)
        | p :: rest -> (
            match compile t p with
            | Ok compiled -> compile_all (compiled :: acc) rest
            | Error _ as e -> e)
      in
      match compile_all [] patterns with
      | Error _ as e -> e
      | Ok compileds -> (
          match Exec.run_batch_arena ?mode t.arena compileds env with
          | batch ->
              t.batches <- t.batches + 1;
              record t batch.Exec.batch_stats;
              Ok batch
          | exception Exec.Too_small m -> Error (Too_small m)))

let run_batch_statements ?mode t sources env =
  let rec recognize_all acc = function
    | [] -> Ok (List.rev acc)
    | s :: rest -> (
        match recognize_statement s with
        | Ok pattern -> recognize_all (pattern :: acc) rest
        | Error _ as e -> e)
  in
  match recognize_all [] sources with
  | Ok patterns -> run_batch ?mode t patterns env
  | Error _ as e -> e

let reset t =
  Hashtbl.reset t.cache;
  Exec.Arena.reset t.arena;
  t.tick <- 0;
  t.hits <- 0;
  t.misses <- 0;
  t.evictions <- 0;
  t.compiles <- 0;
  t.runs <- 0;
  t.batches <- 0;
  t.comm_cycles <- 0;
  t.compute_cycles <- 0;
  t.frontend_s <- 0.0
