(** The one structured answer shape of the service layer.

    The paper's compiler had a single caller and two answers: a
    compiled loop or a section-6 rejection message.  A serving layer
    (ROADMAP item 1) has many tenants and four:

    - {e completed} — the request ran on the simulated substrate and
      carries the run's statistics (section 7's accounting);
    - {e degraded} — {!Ccc_service.Engine.run_guarded}'s recovery
      ladder bottomed out on the host reference path: the output is
      correct but slow, and the findings say why (PR 5);
    - {e refused} — the request itself is unserveable (parse error,
      unrecognizable statement, the structured section-6 resource
      rejection, too-small array, ill-formed batch);
    - {e shed} — the request was fine but the service declined it
      (admission control, deadline, shutdown).

    Before PR 7 the first three lived in three overlapping shapes —
    [Ccc.error], [Engine.error], [Engine.outcome] — and the fourth did
    not exist.  This module is the single definition: [Engine.error]
    and [Ccc.error] are now deprecated aliases of {!reject},
    [Engine.degraded] of {!degraded}, and every arm carries the
    stencil fingerprint (when one was computed) plus cycle attribution
    so operators can bill simulated cycles per outcome. *)

type reject =
  | Parse_error of string
  | Rejected of Ccc_frontend.Diagnostics.t list
      (** the statement does not fit the stylized stencil form *)
  | Resource_error of (int * Ccc_analysis.Finding.t) list
      (** no multistencil width fits registers or scratch memory: the
          per-width rejection findings, widest first (the structured
          section-6 feedback) *)
  | Too_small of string
      (** the subgrid cannot accommodate the stencil's border *)
  | Invalid_batch of string
      (** the batch statements do not share a source array and
          boundary semantics *)

type shed =
  | Overloaded of { tenant : string; queued : int; limit : int }
      (** admission control: the tenant's queue (or the tenant table)
          holds [queued] of at most [limit] *)
  | Deadline_exceeded of { tenant : string; deadline_us : float; now_us : float }
      (** the request's deadline (microseconds on the scheduler's
          clock) had already passed at admission or at dispatch *)
  | Shutting_down  (** submitted to (or queued in) a stopping scheduler *)

type degraded = {
  output : Ccc_runtime.Grid.t;
      (** the reference evaluator's result — correct by construction *)
  findings : Ccc_analysis.Finding.t list;
      (** every detection and diagnosis gathered on the ladder *)
  retries : int;
  recompiled : bool;
}

type t =
  | Completed of { result : Ccc_runtime.Exec.result; fingerprint : string option }
  | Degraded of { detail : degraded; fingerprint : string option }
  | Refused of { reject : reject; fingerprint : string option }
  | Shed of { shed : shed; fingerprint : string option }

(** {1 Constructors} *)

val completed : ?fingerprint:string -> Ccc_runtime.Exec.result -> t
val degraded : ?fingerprint:string -> degraded -> t
val refused : ?fingerprint:string -> reject -> t
val shed : ?fingerprint:string -> shed -> t

(** {1 Accessors} *)

val fingerprint : t -> string option
(** The canonical stencil fingerprint ({!Fingerprint.pattern}), when
    the request got far enough to have one. *)

val is_success : t -> bool
(** [Completed] or [Degraded]: the caller holds a correct output grid. *)

val output : t -> Ccc_runtime.Grid.t option
(** The result grid of a successful outcome. *)

val compute_cycles : t -> int
val comm_cycles : t -> int
(** Cycle attribution: the simulated substrate cycles this outcome
    consumed.  [Degraded] ran on the host reference path and [Refused]
    / [Shed] never reached the substrate, so all three attribute 0. *)

val exit_code : t -> int
(** The single process-exit mapping shared by every [ccc] subcommand:
    0 for a success (including [Degraded] — the output is correct),
    1 for [Refused] (the historical rejection exit), 3 for [Shed]. *)

(** {1 Printing} *)

val reject_to_string : reject -> string
(** Renders exactly what [Engine.error_to_string] rendered before the
    unification, so pinned CLI output is unchanged. *)

val shed_to_string : shed -> string
val to_string : t -> string
val pp : Format.formatter -> t -> unit
