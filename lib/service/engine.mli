(** A persistent execution engine over one simulated machine.

    The paper's workflow is one subroutine at a time: compile, launch,
    release.  Section 7's sustained measurements instead loop the same
    stencil thousands of times, and there "the microcode loops are so
    fast that the front end computer is hard pressed to keep up" — the
    per-call costs (compilation, temporary allocation, launch
    overhead) dominate unless they are amortized.  The engine is that
    amortization layer:

    - a {e plan cache}, content-addressed by {!Fingerprint.key}, so a
      stencil recompiles only when its geometry, coefficient shape,
      boundary or the machine configuration actually changes —
      renamed coefficients and variables are served by
      {!Ccc_compiler.Compile.rebind} without rescheduling;
    - a standing {e arena} ({!Ccc_runtime.Exec.Arena}) of machine
      regions, so repeated same-shape calls skip the per-call
      allocate/release cycle of {!Ccc_runtime.Exec.run};
    - {!run_batch}, which executes several statements over the same
      source array behind a single halo exchange and a single
      front-end launch — the strength-reduced host loop of section 7.

    All entry points return [result] values; in particular a too-small
    array surfaces as [Error (Too_small _)], never as an escaping
    exception. *)

type t

(** {1 Errors}

    Deprecated alias: since PR 7 the one definition of the rejection
    shape is {!Outcome.reject}, shared by [Ccc.error], this alias and
    the serve scheduler.  Kept so existing callers (and their pattern
    matches) migrate in place. *)

type error = Outcome.reject =
  | Parse_error of string
  | Rejected of Ccc_frontend.Diagnostics.t list
      (** the statement does not fit the stylized stencil form *)
  | Resource_error of (int * Ccc_analysis.Finding.t) list
      (** no multistencil width fits registers or scratch memory: the
          per-width rejection findings, widest first (the structured
          section-6 feedback) *)
  | Too_small of string
      (** the subgrid cannot accommodate the stencil's border *)
  | Invalid_batch of string
      (** the batch statements do not share a source array and
          boundary semantics *)

val error_to_string : error -> string
(** Deprecated alias of {!Outcome.reject_to_string}. *)

(** {1 Engine lifecycle} *)

type settings = {
  capacity : int;  (** plan-cache entries (default 32) *)
  jobs : int;  (** resident pool size (default 1, fully sequential) *)
  memory_words : int option;  (** per-node memory ([None] = machine default) *)
  queue_depth : int;
      (** serving: per-tenant admission bound enforced by the PR-7
          scheduler above this engine (default 64) *)
  tenants : int;
      (** serving: distinct tenants the scheduler admits (default 16) *)
  tile : (int * int) option;
      (** kernel tile geometry ((rows, cols) per tile) forwarded to
          every run of this engine; [None] (the default) defers to
          {!Ccc_cm2.Config.t}[.tile].  Purely a host-side execution
          parameter: results are bit-identical at every geometry. *)
  backend : Ccc_runtime.Exec.backend;
      (** execution-path policy for {!run} and {!run_guarded}
          (default [Auto]): [Auto] picks compiled vs transform per
          request by predicted cycles
          ({!Ccc_runtime.Exec.select_backend}), with a stencil the
          compiler rejects falling through to the transform path
          instead of [Resource_error]; [Force_compiled] and
          [Force_fft] pin one path for ablation runs.  Batches are
          always compiled: the shared-halo-exchange contract of
          {!run_batch} has no transform analogue. *)
  widths : int list option;
      (** multistencil widths offered to the compiler; [None] (the
          default) defers to
          {!Ccc_compiler.Compile.candidate_widths}.  Restricting to
          [[8]] reproduces the paper's section-6 rejections (cross9,
          diamond13) inside a serving engine, where [Auto] then
          serves them from the transform path. *)
}

val default_settings : settings

val create :
  ?obs:Ccc_obs.Obs.t ->
  ?flight:Ccc_obs.Flight.t ->
  ?capacity:int ->
  ?jobs:int ->
  ?memory_words:int ->
  ?settings:settings ->
  Ccc_cm2.Config.t ->
  t
(** One machine, one arena, an empty plan cache holding up to
    [settings.capacity] compiled plans with least-recently-used
    eviction.  [settings.jobs] sizes the resident {!Ccc_runtime.Pool}
    spawned once here and threaded through every pooled per-node loop
    of every run — outputs and statistics are bit-identical for every
    jobs value.  Configuration arrives as the labeled [settings]
    record ({!default_settings} with [{ default_settings with ... }]
    overrides); the positional [?capacity]/[?jobs]/[?memory_words]
    optionals are deprecated spellings kept for existing callers and
    are ignored when [settings] is passed.  [obs] supplies the
    observability context the engine threads through every compile and
    run; by default the tracer is disabled and the engine keeps a
    private metrics registry.  [flight] attaches a
    {!Ccc_obs.Flight} ring (the serving shard's flight recorder):
    cache evictions, guard trips and degradations leave breadcrumbs
    there in addition to the log.  Cache hits, misses and evictions are
    also reported on the ["ccc.engine"] {!Logs} source (debug/info),
    and every rejection is a structured warning carrying the stencil
    fingerprint. *)

val settings_of : t -> settings
(** The resolved configuration record this engine was created with. *)

val config : t -> Ccc_cm2.Config.t
val machine : t -> Ccc_cm2.Machine.t

val pool : t -> Ccc_runtime.Pool.t
(** The resident domain pool (spawned once at {!create}, next to the
    arena). *)

val jobs : t -> int
(** The pool's size; [1] means fully sequential. *)

val shutdown : t -> unit
(** Join the pool's worker domains.  Call when the engine is no longer
    needed; OCaml caps live domains, so long-lived processes must not
    leak pools.  Idempotent and safe to repeat; a run attempted
    afterwards raises [Ccc_analysis.Finding.Failed] with a [Lifecycle]
    finding from {!Ccc_runtime.Pool.iter} rather than hanging on dead
    workers.

    {b Ownership.}  The engine handle itself is single-owner: the plan
    cache, LRU tick and arena are deliberately lock-free coordinator
    state (DESIGN.md section 8), so every entry point checks that the
    calling domain is the creating domain and raises
    [Ccc_analysis.Finding.Failed] with an [Ownership] finding
    otherwise.  Parallelism belongs {e inside} a run (the [jobs] pool),
    not across engine handles. *)

val obs : t -> Ccc_obs.Obs.t
(** The engine's observability context. *)

val metrics : t -> Ccc_obs.Metrics.t
(** The metrics registry behind {!stats}: every engine counter lives
    here under [engine.*] names (plan cache, compiles/runs/batches,
    accumulated cycles, per-call compute histogram, and the arena
    reuse/rebuild family, synced on each {!stats} call), alongside the
    [run.*] accounting {!Ccc_runtime.Stats.record} folds in. *)

val reset : t -> unit
(** Drop every cached plan, release the arena's standing regions and
    zero all counters (the entire metrics registry is reset). *)

(** {1 Compilation through the cache} *)

val compile : t -> Ccc_stencil.Pattern.t -> (Ccc_compiler.Compile.t, error) result
(** Compile through the plan cache: a hit reuses the cached schedules
    verbatim (rebound to the request's coefficient names); a miss
    compiles, caches, and evicts the least recently used entry when
    the cache is full.  Each cached entry also carries the statement's
    lowered {!Ccc_runtime.Kernel}, built and verified once at miss
    time (against both {!Ccc_runtime.Reference.apply} and the
    cycle-accurate interpreter) and served to every subsequent run —
    sound across rebinds, which retarget names but never tap offsets,
    stream count or bias arity.

    Since PR 10 rejections are cached too: a dense stencil no width
    fits is remembered with its per-width findings, so this still
    returns [Error (Resource_error _)] on every call but runs the
    scheduler only once; {!run} and {!run_guarded} serve such entries
    from the transform path under the [Auto] backend.  Each entry may
    additionally hold one standing {!Ccc_runtime.Fft.plan} for the
    transform path (one shape at a time, like the arena), counted
    under [engine.fft.builds] / [engine.fft.rebinds]. *)

val compile_statement : t -> string -> (Ccc_compiler.Compile.t, error) result
(** Parse and recognize one bare Fortran assignment, then {!compile}. *)

val recognize_statement :
  string -> (Ccc_stencil.Pattern.t, error) result
(** The front half of {!compile_statement}: parse and recognize one
    bare assignment without touching any engine (pure, callable from
    any domain).  The serve scheduler resolves [Request.Text] stencils
    through this before routing, so a malformed request is refused at
    admission rather than on a worker. *)

(** {1 Execution} *)

val run :
  ?mode:Ccc_runtime.Exec.mode ->
  ?iterations:int ->
  t ->
  Ccc_stencil.Pattern.t ->
  Ccc_runtime.Reference.env ->
  (Ccc_runtime.Exec.result, error) result
(** Compile through the cache and execute against the arena's standing
    regions.  The backend policy in {!settings} decides the path: on
    the compiled path the output is bit-identical to
    {!Ccc_runtime.Exec.run} on a fresh machine, and so are the
    statistics; on the transform path it is
    {!Ccc_runtime.Exec.run_fft} against the engine's machine and the
    entry's standing plan (1e-9-close to the direct paths,
    bit-identical across [jobs]; [mode] is ignored — there is no
    microcode to interpret).  A pattern with spatially-varying
    coefficients is not a convolution: the transform path refuses it
    and the engine falls back to the compiled plan when one exists,
    [Error (Resource_error _)] otherwise. *)

val run_statement :
  ?mode:Ccc_runtime.Exec.mode ->
  ?iterations:int ->
  t ->
  string ->
  Ccc_runtime.Reference.env ->
  (Ccc_runtime.Exec.result, error) result

(** {1 Guarded execution}

    {!run} trusts the substrate the way the paper trusted the CM-2's
    ECC memory and lock-step sequencer.  {!run_guarded} does not: it
    rides the {!Ccc_fault.Guard} self-checks on every run (halo
    integrity after the exchange, output against the reference
    evaluator) and climbs a recovery ladder when they fire —
    bounded same-kernel retries (transient faults are one-shot),
    then revalidation of the cached plan and kernel
    ({!Ccc_fault.Guard.check_kernel}, {!Ccc_fault.Guard.revalidate})
    with a from-scratch recompile replacing the cache entry, and
    finally graceful degradation to the host reference path.  A
    detected fault therefore never escapes as a wrong answer or an
    uncaught exception: the worst case is a slow, correct
    {!Degraded} result carrying every finding gathered on the way
    down.  The ladder counts under [engine.guard.*] and
    [engine.kernel.verifies] in the metrics registry. *)

type degraded = Outcome.degraded = {
  output : Ccc_runtime.Grid.t;
      (** the reference evaluator's result — correct by construction *)
  findings : Ccc_analysis.Finding.t list;
      (** every detection and diagnosis gathered on the ladder *)
  retries : int;
  recompiled : bool;
}
(** Deprecated alias of {!Outcome.degraded} (the shared definition
    since PR 7). *)

type outcome =
  | Completed of Ccc_runtime.Exec.result
      (** a guarded run came back clean (possibly after retries or a
          recompile — see the [engine.guard.*] counters) *)
  | Degraded of degraded
      (** Deprecated shape: prefer the unified {!Outcome.t}, which
          adds fingerprint and shed/refusal arms;
          {!outcome_of_guarded} converts. *)

val outcome_of_guarded :
  fingerprint:string -> (outcome, error) result -> Outcome.t
(** Fold a {!run_guarded} result into the unified {!Outcome.t}:
    [Ok (Completed r)] to [Outcome.Completed], [Ok (Degraded d)] to
    [Outcome.Degraded], [Error e] to [Outcome.Refused], each tagged
    with the request's [fingerprint]. *)

val run_guarded :
  ?mode:Ccc_runtime.Exec.mode ->
  ?iterations:int ->
  ?inject:Ccc_runtime.Exec.hooks ->
  ?max_retries:int ->
  t ->
  Ccc_stencil.Pattern.t ->
  Ccc_runtime.Reference.env ->
  (outcome, error) result
(** {!run} under the guards and the recovery ladder.  [inject]
    (default {!Ccc_runtime.Exec.no_hooks}) is the fault-injection
    seam — the conformance tests compose an {!Ccc_fault.Inject}
    injector here; [max_retries] (default 2) bounds the same-kernel
    rung of the ladder.  On a clean substrate the guarded run costs
    one halo recomputation and one reference evaluation per call and
    always returns [Completed].

    When the backend policy routes a request to the transform path,
    the ladder is mirrored rung for rung: bounded same-plan retries,
    then {!Ccc_runtime.Fft.verify} as the root-cause re-proof of the
    cached spectrum (a corrupted plan fails it and is replaced by a
    fresh {!Ccc_runtime.Fft.build}, counted under
    [engine.guard.recompiles] and [engine.fft.builds]), and finally
    the same degradation to the host reference evaluator. *)

val run_batch :
  ?mode:Ccc_runtime.Exec.mode ->
  t ->
  Ccc_stencil.Pattern.t list ->
  Ccc_runtime.Reference.env ->
  (Ccc_runtime.Exec.batch, error) result
(** Execute several statements over the same source array behind one
    halo exchange and one front-end launch; see
    {!Ccc_runtime.Exec.run_batch_arena} for the aggregate-statistics
    contract.  All statements must name the same source variable and
    boundary semantics ([Error (Invalid_batch _)] otherwise). *)

val run_batch_statements :
  ?mode:Ccc_runtime.Exec.mode ->
  t ->
  string list ->
  Ccc_runtime.Reference.env ->
  (Ccc_runtime.Exec.batch, error) result

(** {1 Counters} *)

type stats = {
  jobs : int;  (** the resident pool's size (settings echo) *)
  queue_depth : int;  (** serving admission bound (settings echo) *)
  tenants : int;  (** serving tenant limit (settings echo) *)
  hits : int;  (** cache hits (plans served without compilation) *)
  misses : int;  (** cache misses (including failed compilations) *)
  evictions : int;
  entries : int;  (** live cache entries *)
  capacity : int;
  compiles : int;  (** successful compilations = misses that compiled *)
  runs : int;  (** single-statement executions (either path) *)
  batches : int;  (** batched executions *)
  fft_runs : int;  (** executions served by the transform path *)
  fft_builds : int;
      (** transform plans built and sandbox-proved (misses, shape or
          renaming changes, and guard-ladder rebuilds) *)
  fft_rebinds : int;
      (** cache hits whose coefficient values changed, re-transforming
          only the coefficient image *)
  arena_reuses : int;  (** calls served from the standing regions *)
  arena_rebuilds : int;  (** first call and every shape change *)
  comm_cycles : int;  (** accumulated halo-exchange cycles *)
  compute_cycles : int;  (** accumulated microcode cycles *)
  frontend_s : float;  (** accumulated front-end seconds *)
  per_call_compute : (int * float * int) option;
      (** min, mean and max compute cycles per recorded run or batch
          ([None] before the first execution) — the summary of the
          [engine.compute_cycles_per_call] histogram *)
  per_call_quantiles : (float * float * float) option;
      (** p50, p95 and p99 compute cycles per recorded run or batch,
          estimated from the histogram's log-spaced buckets ([None]
          before the first execution) *)
}

val stats : t -> stats

val pp_stats : Format.formatter -> stats -> unit
(** Renders {!stats} in a stable field order — identity line (jobs,
    queue depth, tenants), plan cache, work counts, transform path,
    arena, accumulated cycles, per-call histogram — shared with the
    serve scheduler's stats printer, which prints its own
    identity/admission/work lines in the same discipline and embeds
    this table per shard. *)
