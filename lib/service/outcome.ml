module Compile = Ccc_compiler.Compile
module Stats = Ccc_runtime.Stats
module Exec = Ccc_runtime.Exec

type reject =
  | Parse_error of string
  | Rejected of Ccc_frontend.Diagnostics.t list
  | Resource_error of (int * Ccc_analysis.Finding.t) list
  | Too_small of string
  | Invalid_batch of string

type shed =
  | Overloaded of { tenant : string; queued : int; limit : int }
  | Deadline_exceeded of { tenant : string; deadline_us : float; now_us : float }
  | Shutting_down

type degraded = {
  output : Ccc_runtime.Grid.t;
  findings : Ccc_analysis.Finding.t list;
  retries : int;
  recompiled : bool;
}

type t =
  | Completed of { result : Ccc_runtime.Exec.result; fingerprint : string option }
  | Degraded of { detail : degraded; fingerprint : string option }
  | Refused of { reject : reject; fingerprint : string option }
  | Shed of { shed : shed; fingerprint : string option }

let completed ?fingerprint result = Completed { result; fingerprint }
let degraded ?fingerprint detail = Degraded { detail; fingerprint }
let refused ?fingerprint reject = Refused { reject; fingerprint }
let shed ?fingerprint s = Shed { shed = s; fingerprint }

let fingerprint = function
  | Completed { fingerprint; _ }
  | Degraded { fingerprint; _ }
  | Refused { fingerprint; _ }
  | Shed { fingerprint; _ } ->
      fingerprint

let is_success = function
  | Completed _ | Degraded _ -> true
  | Refused _ | Shed _ -> false

let output = function
  | Completed { result; _ } -> Some result.Exec.output
  | Degraded { detail; _ } -> Some detail.output
  | Refused _ | Shed _ -> None

let compute_cycles = function
  | Completed { result; _ } -> result.Exec.stats.Stats.compute_cycles
  | Degraded _ | Refused _ | Shed _ -> 0

let comm_cycles = function
  | Completed { result; _ } -> result.Exec.stats.Stats.comm_cycles
  | Degraded _ | Refused _ | Shed _ -> 0

let exit_code = function
  | Completed _ | Degraded _ -> 0
  | Refused _ -> 1
  | Shed _ -> 3

(* Exactly the text the pre-unification [Engine.error_to_string]
   produced: the cram suite pins it on every CLI rejection path. *)
let reject_to_string = function
  | Parse_error m -> "parse error: " ^ m
  | Rejected diags ->
      "not a recognizable stencil assignment:\n"
      ^ String.concat "\n"
          (List.map Ccc_frontend.Diagnostics.to_string diags)
  | Resource_error rejections ->
      "resource limits: " ^ Compile.no_workable rejections
  | Too_small m -> "array too small: " ^ m
  | Invalid_batch m -> "invalid batch: " ^ m

let shed_to_string = function
  | Overloaded { tenant; queued; limit } ->
      Printf.sprintf "overloaded: tenant %s holds %d of %d queue slots" tenant
        queued limit
  | Deadline_exceeded { tenant; deadline_us; now_us } ->
      Printf.sprintf
        "deadline exceeded: tenant %s asked for %.0f us, clock read %.0f us"
        tenant deadline_us now_us
  | Shutting_down -> "shutting down: the scheduler no longer admits requests"

let to_string = function
  | Completed { result; _ } ->
      Printf.sprintf "completed: compute %d cycles, comm %d cycles"
        result.Exec.stats.Stats.compute_cycles
        result.Exec.stats.Stats.comm_cycles
  | Degraded { detail; _ } ->
      Printf.sprintf
        "degraded to the reference path: %d findings, %d retries%s"
        (List.length detail.findings)
        detail.retries
        (if detail.recompiled then ", recompiled" else "")
  | Refused { reject; _ } -> reject_to_string reject
  | Shed { shed; _ } -> shed_to_string shed

let pp ppf t =
  (match t with
  | Completed _ -> Format.pp_print_string ppf "completed"
  | Degraded _ -> Format.pp_print_string ppf "degraded"
  | Refused _ -> Format.pp_print_string ppf "refused"
  | Shed _ -> Format.pp_print_string ppf "shed");
  (match fingerprint t with
  | Some fp -> Format.fprintf ppf " [%s]" fp
  | None -> ());
  Format.fprintf ppf ": %s" (to_string t)
