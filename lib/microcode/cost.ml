let slot_cycles config slots =
  List.fold_left (fun acc slot -> acc + Instr.cycles config slot) 0 slots

(* Phases differ only in register numbers, so any phase prices a line. *)
let representative_phase (plan : Plan.t) = plan.Plan.phases.(0)

let drain_cycles (config : Ccc_cm2.Config.t) =
  max 0 (config.madd_writeback_latency - config.pipe_reversal_cycles)

let line_cycles (config : Ccc_cm2.Config.t) plan =
  let phase = representative_phase plan in
  config.line_overhead_cycles
  + slot_cycles config phase.Plan.loads
  + config.pipe_reversal_cycles
  + slot_cycles config phase.Plan.madds
  + config.pipe_reversal_cycles + drain_cycles config
  + slot_cycles config phase.Plan.stores
  + config.loop_branch_cycles

let prologue_cycles config (plan : Plan.t) =
  Array.fold_left
    (fun acc loads -> acc + slot_cycles config loads)
    0 plan.Plan.prologue

let startup_cycles (config : Ccc_cm2.Config.t) =
  config.halfstrip_startup_cycles + config.static_issue_cycles
  + config.scratch_counter_reset_cycles

let halfstrip_cycles config plan ~lines =
  if lines < 0 then invalid_arg "Cost.halfstrip_cycles: negative line count";
  if lines = 0 then startup_cycles config
  else
    startup_cycles config + prologue_cycles config plan
    + (lines * line_cycles config plan)

let madds_per_line plan =
  let phase = representative_phase plan in
  List.length
    (List.filter
       (function Instr.Madd _ -> true | Instr.Load _ | Instr.Store _ | Instr.Nop -> false)
       phase.Plan.madds)

let slot_madds config slots =
  List.fold_left
    (fun acc slot ->
      acc
      +
      match slot with
      | Instr.Madd _ -> 1
      | Instr.Load _ | Instr.Store _ | Instr.Nop -> Instr.cycles config slot)
    0 slots

let line_madds_total config plan =
  let phase = representative_phase plan in
  slot_madds config phase.Plan.loads
  + slot_madds config phase.Plan.madds
  + slot_madds config phase.Plan.stores

let line_words (plan : Plan.t) =
  let phase = representative_phase plan in
  List.length phase.Plan.loads
  + List.length phase.Plan.madds
  + List.length phase.Plan.stores

let halfstrip_words (plan : Plan.t) ~lines =
  if lines <= 0 then 0
  else
    Array.fold_left
      (fun acc loads -> acc + List.length loads)
      0 plan.Plan.prologue
    + (lines * line_words plan)

let halfstrip_madds_total config (plan : Plan.t) ~lines =
  if lines <= 0 then 0
  else
    Array.fold_left
      (fun acc loads -> acc + slot_madds config loads)
      0 plan.Plan.prologue
    + (lines * line_madds_total config plan)

(* Transform-path cycle term (PR 10).  The formulas mirror the
   Ccc_runtime.Fft execution pipeline pass for pass: a forward row
   transform over the frame rows only (the zero rows of the padded
   buffer need no work), forward and inverse column transforms over the
   Hermitian half-plane (real input makes the row spectra conjugate
   symmetric, so only pcols/2 + 1 columns are computed), a pointwise
   spectral product per half-plane bin, and an inverse row transform
   over the output-window rows only. *)

let fft_next_pow2 n =
  let rec go p = if p >= n then p else go (p * 2) in
  go 1

let fft_padded ~n ~pad = fft_next_pow2 (n + (2 * pad))

let fft_log2 n =
  let rec go acc p = if p >= n then acc else go (acc + 1) (p * 2) in
  go 0 1

let fft_butterflies ~rows ~cols ~pad =
  let prows = fft_padded ~n:rows ~pad and pcols = fft_padded ~n:cols ~pad in
  let half = (pcols / 2) + 1 in
  let row_pass n = n * (pcols / 2) * fft_log2 pcols in
  let col_passes = 2 * half * (prows / 2) * fft_log2 prows in
  row_pass (rows + (2 * pad)) + col_passes + row_pass rows

let fft_pointwise_bins ~rows ~cols ~pad =
  let prows = fft_padded ~n:rows ~pad and pcols = fft_padded ~n:cols ~pad in
  prows * ((pcols / 2) + 1)

let fft_compute_cycles (config : Ccc_cm2.Config.t) ~rows ~cols ~pad =
  let nodes = float (Ccc_cm2.Config.node_count config) in
  let butterflies = float (fft_butterflies ~rows ~cols ~pad) in
  let bins = float (fft_pointwise_bins ~rows ~cols ~pad) in
  int_of_float
    (ceil
       (((butterflies *. config.fft_butterfly_cycles)
        +. (bins *. config.fft_pointwise_cycles))
        /. nodes
       +. config.fft_setup_cycles))

let fft_comm_cycles (config : Ccc_cm2.Config.t) ~rows ~cols ~pad =
  let nodes = float (Ccc_cm2.Config.node_count config) in
  let bins = float (fft_pointwise_bins ~rows ~cols ~pad) in
  config.fft_transpose_passes
  * int_of_float
      (ceil (bins /. nodes *. config.fft_transpose_cycles_per_word))

let fft_cycles config ~rows ~cols ~pad =
  fft_compute_cycles config ~rows ~cols ~pad
  + fft_comm_cycles config ~rows ~cols ~pad
