(** Closed-form cycle model for compiled plans.

    The interpreter and this module price the same instruction streams
    with the same configuration constants, so for any plan and line
    count they must agree exactly — a property test asserts it.  The
    benchmark harness uses this model to time runs that would be slow
    to simulate element by element (the paper's production runs cover
    10^13 flops). *)

val slot_cycles : Ccc_cm2.Config.t -> Instr.t list -> int
(** Sequencer cycles to issue a list of dynamic parts — the shared
    unit of account between this model, the interpreter, and the
    per-phase attribution in [Ccc_obs.Profiler]. *)

val drain_cycles : Ccc_cm2.Config.t -> int
(** Writeback-latency cycles not hidden by the trailing pipe reversal
    (section 5.3); zero when the reversal is at least as long. *)

val line_cycles : Ccc_cm2.Config.t -> Plan.t -> int
(** Sequencer cycles for one line of a half-strip: line overhead,
    leading-edge loads, pipe reversal, multiply-add issues, reversal
    and drain, stores, and the loop-end branch. *)

val prologue_cycles : Ccc_cm2.Config.t -> Plan.t -> int
val startup_cycles : Ccc_cm2.Config.t -> int

val halfstrip_cycles : Ccc_cm2.Config.t -> Plan.t -> lines:int -> int
(** Total for one half-strip of [lines] lines; zero lines still pay the
    startup (the run-time library does not invoke empty half-strips,
    but the identity keeps the algebra honest). *)

val madds_per_line : Plan.t -> int
(** Scheduled [Madd] dynamic parts per line — the useful chains only,
    not the discarded multiply-adds that accompany loads and stores. *)

val line_madds_total : Ccc_cm2.Config.t -> Plan.t -> int
(** All multiply-adds the FPU performs per line: the scheduled chains
    plus one discarded multiply-add per load/store/nop cycle ("there is
    no way not to store the result"). *)

val halfstrip_madds_total : Ccc_cm2.Config.t -> Plan.t -> lines:int -> int
(** Total multiply-adds for a half-strip, prologue included.  Matches
    {!Interp.outcome.madds} exactly (tested). *)

val line_words : Plan.t -> int
(** Dynamic-part words the sequencer streams per line (loads, madds,
    nops, stores).  This is also the unit of front-end preparation
    work: the host computes one parameter set per word. *)

val halfstrip_words : Plan.t -> lines:int -> int
(** Dynamic words for a whole half-strip, prologue included. *)
