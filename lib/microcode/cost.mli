(** Closed-form cycle model for compiled plans.

    The interpreter and this module price the same instruction streams
    with the same configuration constants, so for any plan and line
    count they must agree exactly — a property test asserts it.  The
    benchmark harness uses this model to time runs that would be slow
    to simulate element by element (the paper's production runs cover
    10^13 flops). *)

val slot_cycles : Ccc_cm2.Config.t -> Instr.t list -> int
(** Sequencer cycles to issue a list of dynamic parts — the shared
    unit of account between this model, the interpreter, and the
    per-phase attribution in [Ccc_obs.Profiler]. *)

val drain_cycles : Ccc_cm2.Config.t -> int
(** Writeback-latency cycles not hidden by the trailing pipe reversal
    (section 5.3); zero when the reversal is at least as long. *)

val line_cycles : Ccc_cm2.Config.t -> Plan.t -> int
(** Sequencer cycles for one line of a half-strip: line overhead,
    leading-edge loads, pipe reversal, multiply-add issues, reversal
    and drain, stores, and the loop-end branch. *)

val prologue_cycles : Ccc_cm2.Config.t -> Plan.t -> int
val startup_cycles : Ccc_cm2.Config.t -> int

val halfstrip_cycles : Ccc_cm2.Config.t -> Plan.t -> lines:int -> int
(** Total for one half-strip of [lines] lines; zero lines still pay the
    startup (the run-time library does not invoke empty half-strips,
    but the identity keeps the algebra honest). *)

val madds_per_line : Plan.t -> int
(** Scheduled [Madd] dynamic parts per line — the useful chains only,
    not the discarded multiply-adds that accompany loads and stores. *)

val line_madds_total : Ccc_cm2.Config.t -> Plan.t -> int
(** All multiply-adds the FPU performs per line: the scheduled chains
    plus one discarded multiply-add per load/store/nop cycle ("there is
    no way not to store the result"). *)

val halfstrip_madds_total : Ccc_cm2.Config.t -> Plan.t -> lines:int -> int
(** Total multiply-adds for a half-strip, prologue included.  Matches
    {!Interp.outcome.madds} exactly (tested). *)

val line_words : Plan.t -> int
(** Dynamic-part words the sequencer streams per line (loads, madds,
    nops, stores).  This is also the unit of front-end preparation
    work: the host computes one parameter set per word. *)

val halfstrip_words : Plan.t -> lines:int -> int
(** Dynamic words for a whole half-strip, prologue included. *)

(** {1 Transform-path cycle term (PR 10)}

    The closed-form price of the {!Ccc_runtime.Fft} execution path,
    the fifth backend: butterflies and spectral pointwise products
    spread across the nodes, plus transpose passes over the grid
    network.  [rows]/[cols] are the {e global} grid dimensions and
    [pad] the stencil's border ([Pattern.max_border]); the formulas
    mirror the implementation's Hermitian half-plane passes exactly.
    The planner compares {!fft_cycles} against the compiled
    multistencil's estimate per request (DESIGN.md section 12); the
    constants live in {!Ccc_cm2.Config} and are calibrated by
    [bench/main.exe fft]. *)

val fft_padded : n:int -> pad:int -> int
(** Per-dimension transform length: smallest power of two >=
    [n + 2 pad].  Equal to [Ccc_runtime.Fft.padded_size] by
    construction (a property test asserts it). *)

val fft_butterflies : rows:int -> cols:int -> pad:int -> int
(** Radix-2 butterflies for one convolution: forward row transforms
    over the [rows + 2 pad] frame rows, forward and inverse column
    transforms over the [pcols/2 + 1] half-plane columns, and inverse
    row transforms over the [rows] output rows. *)

val fft_pointwise_bins : rows:int -> cols:int -> pad:int -> int
(** Spectral bins of the Hermitian half-plane:
    [prows * (pcols/2 + 1)] — one complex multiply each, and the word
    count of each transpose pass. *)

val fft_compute_cycles : Ccc_cm2.Config.t -> rows:int -> cols:int -> pad:int -> int
(** Node-side cycles: butterflies and pointwise products divided
    across the nodes, plus the fixed per-call setup term. *)

val fft_comm_cycles : Ccc_cm2.Config.t -> rows:int -> cols:int -> pad:int -> int
(** Transpose traffic: [fft_transpose_passes] passes of one half-plane
    word per bin per node at [fft_transpose_cycles_per_word]. *)

val fft_cycles : Ccc_cm2.Config.t -> rows:int -> cols:int -> pad:int -> int
(** {!fft_compute_cycles} + {!fft_comm_cycles}: the number the planner
    weighs against the compiled path's comm + compute estimate. *)
