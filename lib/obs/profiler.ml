module Cost = Ccc_microcode.Cost
module Plan = Ccc_microcode.Plan

type compute = {
  startup : int;
  prologue : int;
  line_overhead : int;
  loads : int;
  pipe_reversal : int;
  madds : int;
  drain : int;
  stores : int;
  loop_branch : int;
}

let zero =
  {
    startup = 0;
    prologue = 0;
    line_overhead = 0;
    loads = 0;
    pipe_reversal = 0;
    madds = 0;
    drain = 0;
    stores = 0;
    loop_branch = 0;
  }

let add a b =
  {
    startup = a.startup + b.startup;
    prologue = a.prologue + b.prologue;
    line_overhead = a.line_overhead + b.line_overhead;
    loads = a.loads + b.loads;
    pipe_reversal = a.pipe_reversal + b.pipe_reversal;
    madds = a.madds + b.madds;
    drain = a.drain + b.drain;
    stores = a.stores + b.stores;
    loop_branch = a.loop_branch + b.loop_branch;
  }

let scale k c =
  {
    startup = k * c.startup;
    prologue = k * c.prologue;
    line_overhead = k * c.line_overhead;
    loads = k * c.loads;
    pipe_reversal = k * c.pipe_reversal;
    madds = k * c.madds;
    drain = k * c.drain;
    stores = k * c.stores;
    loop_branch = k * c.loop_branch;
  }

let total c =
  c.startup + c.prologue + c.line_overhead + c.loads + c.pipe_reversal
  + c.madds + c.drain + c.stores + c.loop_branch

(* Assembled from the same Cost terms the closed-form model sums, so
   [total (halfstrip config plan ~lines)] is Cost.halfstrip_cycles by
   construction; a property test re-checks it against Interp. *)
let halfstrip (config : Ccc_cm2.Config.t) (plan : Plan.t) ~lines =
  if lines < 0 then invalid_arg "Profiler.halfstrip: negative line count";
  let startup = Cost.startup_cycles config in
  if lines = 0 then { zero with startup }
  else
    let phase = plan.Plan.phases.(0) in
    {
      startup;
      prologue = Cost.prologue_cycles config plan;
      line_overhead = lines * config.line_overhead_cycles;
      loads = lines * Cost.slot_cycles config phase.Plan.loads;
      pipe_reversal = lines * 2 * config.pipe_reversal_cycles;
      madds = lines * Cost.slot_cycles config phase.Plan.madds;
      drain = lines * Cost.drain_cycles config;
      stores = lines * Cost.slot_cycles config phase.Plan.stores;
      loop_branch = lines * config.loop_branch_cycles;
    }

type breakdown = {
  comm_cycles : int;
  compute : compute;
  frontend_s : float;
}

let phases c =
  [
    ("startup", c.startup);
    ("prologue", c.prologue);
    ("line overhead", c.line_overhead);
    ("loads", c.loads);
    ("pipe reversal", c.pipe_reversal);
    ("madds", c.madds);
    ("drain", c.drain);
    ("stores", c.stores);
    ("loop branch", c.loop_branch);
  ]

let attr_key name =
  String.map (function ' ' -> '_' | c -> c) name

let compute_attrs c =
  List.filter_map
    (fun (name, cycles) ->
      if cycles = 0 then None else Some (attr_key name, Trace.Int cycles))
    (phases c)

let pp_compute ppf c =
  let t = total c in
  let pct cycles =
    if t = 0 then 0.0 else 100.0 *. float_of_int cycles /. float_of_int t
  in
  List.iter
    (fun (name, cycles) ->
      if cycles > 0 then
        Format.fprintf ppf "  %-14s %8d  %5.1f%%@." name cycles (pct cycles))
    (phases c);
  Format.fprintf ppf "  %-14s %8d  100.0%%@." "total" t

let pp_breakdown ppf b =
  let compute = total b.compute in
  Format.fprintf ppf "comm %d + compute %d cycles, front end %.0f us@."
    b.comm_cycles compute (b.frontend_s *. 1e6);
  pp_compute ppf b.compute
