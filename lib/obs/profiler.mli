(** Cycle-attribution profiler.

    Splits the analytic cycle model ({!Ccc_microcode.Cost}) phase by
    phase, so every simulated sequencer cycle of a half-strip is
    tagged with the pipeline stage that spends it: startup, ring
    prologue, per-line overhead, leading-edge loads, pipe reversals,
    multiply-add issue, writeback drain, stores, and the loop-end
    branch.  By construction {!total} of {!halfstrip} equals
    [Cost.halfstrip_cycles] for every plan and line count — both are
    assembled from the same [Cost] terms — which is what lets the
    paper's Table-1 comm/compute/front-end breakdown (section 7)
    become live telemetry cross-checked against the model, and a
    property test re-checks the sum against the cycle-accurate
    interpreter on random patterns. *)

type compute = {
  startup : int;  (** microcode entry, static part issue, scratch reset *)
  prologue : int;  (** ring-buffer warm-up loads *)
  line_overhead : int;  (** per-line fixed overhead *)
  loads : int;  (** leading-edge load slots *)
  pipe_reversal : int;  (** two reversals per line *)
  madds : int;  (** multiply-add issue slots *)
  drain : int;  (** writeback latency not hidden by the reversal *)
  stores : int;  (** store slots *)
  loop_branch : int;  (** loop-end branch *)
}
(** Compute cycles of one or more half-strips, attributed to the nine
    sequencer phases of section 5's microcode routine. *)

val zero : compute

val add : compute -> compute -> compute

val scale : int -> compute -> compute
(** [scale k c] multiplies every phase by [k] (e.g. iterations). *)

val total : compute -> int
(** Sum over all phases; equals [Cost.halfstrip_cycles] when the
    record came from {!halfstrip}. *)

val halfstrip :
  Ccc_cm2.Config.t -> Ccc_microcode.Plan.t -> lines:int -> compute
(** Attribution for one half-strip of [lines] lines, built from the
    same terms as [Cost.halfstrip_cycles] (zero lines pay startup
    only, like the cost model). *)

type breakdown = {
  comm_cycles : int;  (** NEWS-grid halo exchange cycles *)
  compute : compute;  (** per-phase compute attribution *)
  frontend_s : float;  (** host preparation + dispatch seconds *)
}
(** The paper's three-way sustained-time split, with the compute share
    opened up per phase. *)

val compute_attrs : compute -> (string * Trace.value) list
(** Non-zero phases as span attributes, declaration order. *)

val pp_compute : Format.formatter -> compute -> unit
(** A deterministic table: one line per non-zero phase with cycle
    count and percentage, then a total line. *)

val pp_breakdown : Format.formatter -> breakdown -> unit
(** The comm/compute/front-end split followed by the per-phase
    compute table. *)
