(** Prometheus-style text exposition over metrics registries.

    The serve plane's scrape surface: a deterministic plain-text
    rendering of one or more {!Metrics} registries in the Prometheus
    exposition format — [# TYPE] headers, [family{label="v"} value]
    samples, histograms as cumulative [_bucket]/[_sum]/[_count]
    series over the fixed log-spaced bucket layout plus estimated
    [_p50]/[_p95]/[_p99] quantile lines (0 when the histogram is
    empty).  [ccc stats] prints exactly this.

    Conventions: registry names are mangled to
    [<namespace>_<name-with-dots-as-underscores>]; names following the
    per-tenant pattern [serve.tenant.<tenant>.<field>] fold into one
    family per field ([<namespace>_serve_tenant_<field>]) with a
    [tenant] label, so a scraper can aggregate across tenants.  Output
    is fully deterministic: families sorted by name, samples within a
    family by label set. *)

val render :
  ?namespace:string -> ((string * string) list * Metrics.t) list -> string
(** [render sources] renders every registry in [sources]; each entry's
    label list is attached to all of that registry's samples (e.g.
    [("shard", "0")] on a shard engine's registry).  [namespace]
    defaults to ["ccc"]. *)
