(** Span tracer: nestable timed spans with structured attributes.

    The instrumentation layer of the unified telemetry subsystem.
    Every phase of the compile-and-execute pipeline (parse, pattern
    match, multistencil build, per-width allocation and scheduling,
    lint post-pass) and of the runtime (scatter, halo exchange,
    front-end dispatch, per-strip execution, gather) opens a span;
    spans nest, carry key/value attributes, and export either as a
    human-readable tree or as Chrome [trace_event] JSON loadable in
    [chrome://tracing] / Perfetto.

    A {!disabled} tracer is a shared no-op singleton: every operation
    returns immediately after one branch on the [enabled] flag, so a
    hot path instrumented against it performs no allocation and no
    bookkeeping.  Wall-clock timestamps come from an injectable clock
    (default {!Sys.time}); the simulated-machine phases additionally
    record their cycle counts as attributes, which is the number that
    matters on a simulated CM-2 — the paper's own methodology (section
    7) accounts in cycles, not host seconds. *)

type value = Str of string | Int of int | Float of float | Bool of bool

type attr = string * value

type span
(** One completed or open span: a name, attributes, a start timestamp
    and duration (both in microseconds of the tracer's clock), and
    child spans in start order. *)

type t
(** A tracer: either the {!disabled} singleton or a recording tracer
    with a stack of open spans and a list of completed roots. *)

val disabled : t
(** The no-op tracer.  [enabled disabled = false]; every mutator
    returns immediately and {!roots} is always empty. *)

val create : ?clock:(unit -> float) -> unit -> t
(** A recording tracer.  [clock] returns microseconds (monotonicity is
    the caller's business); the default is [Sys.time () *. 1e6]. *)

val enabled : t -> bool

val with_span : t -> ?attrs:attr list -> string -> (unit -> 'a) -> 'a
(** [with_span t name f] opens a span, runs [f], closes the span (also
    on exception, which is re-raised).  Nested calls attach to the
    innermost open span. *)

val emit : t -> ?attrs:attr list -> ?ts:float -> ?dur:float -> string -> unit
(** A complete (already-timed) child span under the innermost open
    span, for events whose extent is known analytically rather than
    measured — e.g. a half-strip priced by the cycle model.  [ts]
    defaults to the clock's now, [dur] to 0. *)

val add_attr : t -> string -> value -> unit
(** Attach an attribute to the innermost open span (no-op when
    disabled or when no span is open). *)

(** {1 Reading the recorded tree} *)

val roots : t -> span list
(** Completed top-level spans in start order.  Open spans appear only
    once closed. *)

val span_name : span -> string
val span_attrs : span -> attr list
val span_children : span -> span list
val span_ts : span -> float
val span_dur : span -> float
val find_attr : span -> string -> value option
val event_count : t -> int
(** Total recorded spans, including children. *)

(** {1 Export} *)

val pp_value : Format.formatter -> value -> unit

val pp_tree : ?timings:bool -> Format.formatter -> t -> unit
(** The recorded spans as an indented tree, attributes inline.  With
    [~timings:false] (default [true]) durations are suppressed, which
    makes the output deterministic for cycle-attributed spans — the
    form the CLI pins under cram. *)

val to_chrome_json : t -> string
(** The recorded spans as a Chrome [trace_event] JSON array of
    complete ("ph":"X") events, one per span, timestamps in
    microseconds, attributes under "args". *)

(** {1 Lanes: merging per-shard tracers into one trace}

    A serve session records spans on both sides of the domain boundary
    — the coordinator's admission spans and each shard worker's
    window/engine spans live in separate tracers (each tracer is
    single-writer; the coordinator reads a shard's tracer only after
    [Domain.join], which is the happens-before edge).  A {!lane}
    assigns one tracer's roots a pid/tid pair and a human label; the
    multi-lane export prepends Chrome ["thread_name"] metadata events
    so Perfetto shows one named track per shard. *)

type lane
(** One pid/tid track of a merged trace: a label plus the root spans
    attributed to that track. *)

val lane : ?pid:int -> tid:int -> label:string -> t -> lane
(** [lane ~tid ~label t] is a track holding [roots t].  [pid] defaults
    to 1 (all serve lanes share one process). *)

val lane_of_spans : ?pid:int -> tid:int -> label:string -> span list -> lane
(** A track over an explicit span list, for trees assembled by hand
    (tests, the qcheck well-formedness property). *)

val lane_label : lane -> string
val lane_tid : lane -> int
val lane_roots : lane -> span list

val lane_span_count : lane -> int
(** Total spans in the lane, including children. *)

val to_chrome_json_lanes : lane list -> string
(** The merged trace as Chrome [trace_event] JSON: first one
    ["thread_name"] metadata event ("ph":"M") per lane, then every
    lane's spans as complete ("ph":"X") events carrying that lane's
    pid/tid.  Single-lane output of {!lane}[ ~tid:1] matches
    {!to_chrome_json} span-for-span (plus the metadata event). *)
