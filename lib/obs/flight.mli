(** Flight recorder: a fixed-size ring buffer of structured events.

    The serve plane's incident memory.  Where the tracer (section 7's
    accounting, per request) answers "where did the cycles go", the
    flight recorder answers "what happened just before this went
    wrong": each serve shard keeps a small ring of admission, shed,
    window open/close, guard-trip, and cache-eviction events that
    costs two stores per record when nothing is wrong, and is dumped
    automatically whenever an outcome degrades or a fault-injection
    campaign fires — turning every conformance kill-matrix cell into a
    self-explaining incident report.

    Domain safety: one ring is written by two domains (the coordinator
    records admissions and sheds, the shard's worker records window
    and guard events), so every ring carries its own mutex.  The lock
    is instrumented for the domain-safety analyzer under the
    [flight.ring] family (per-index locks, like [metrics.metric]). *)

type kind =
  | Admission  (** request admitted to a tenant queue *)
  | Shed  (** request shed (queue full / overload / deadline) *)
  | Window_open  (** dispatch window opened on a shard *)
  | Window_close  (** dispatch window retired *)
  | Guard_trip  (** a runtime self-check fired during execution *)
  | Cache_evict  (** plan-cache LRU eviction *)
  | Fault  (** an injected fault armed or fired *)
  | Degraded  (** outcome degraded after the recovery ladder *)
  | Refused  (** request refused at admission *)
  | Info  (** anything else worth keeping *)

val kind_name : kind -> string
(** Stable kebab-case name, for dumps and tests. *)

type event = { seq : int; ts : float; kind : kind; detail : string }
(** [seq] is the record's global sequence number in this ring (total
    order, survives wrap-around); [ts] is the ring clock's
    microseconds at record time. *)

type t
(** A ring.  Holds the last [capacity] events; older events are
    overwritten, but {!recorded} keeps the true total. *)

val create : ?capacity:int -> ?clock:(unit -> float) -> unit -> t
(** A fresh ring.  [capacity] defaults to 64; [clock] returns
    microseconds and defaults to [Sys.time () *. 1e6] (inject the
    serve clock for deterministic dumps).  Raises [Invalid_argument]
    on non-positive capacity. *)

val capacity : t -> int

val record : t -> kind -> string -> unit
(** Append one event, overwriting the oldest when full.  Callable from
    any domain. *)

val recorded : t -> int
(** Total events ever recorded (≥ the number still held). *)

val events : t -> event list
(** The surviving events, oldest first. *)

val pp_event : Format.formatter -> event -> unit

val pp : Format.formatter -> t -> unit
(** A dump header (ring id, totals, drop count) followed by one line
    per surviving event. *)

val dump : t -> string
(** {!pp} to a string — the form logged when an outcome is
    [Degraded]/[Refused] or a fault fires. *)
