(* Metric name mangling: Prometheus names are [a-zA-Z0-9_:]; our
   registry names are dotted ("serve.queued_us",
   "engine.cycles.comm").  Per-tenant counters follow the
   "serve.tenant.<tenant>.<field>" convention, which the exposition
   folds into one family per field with a tenant label — the shape a
   scraper can aggregate across tenants. *)

let clean_char c =
  match c with
  | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> c
  | _ -> '_'

let mangle namespace name =
  let b = Buffer.create (String.length name + String.length namespace + 1) in
  Buffer.add_string b namespace;
  Buffer.add_char b '_';
  String.iter (fun c -> Buffer.add_char b (clean_char c)) name;
  Buffer.contents b

(* "serve.tenant.alice.served" -> ("serve.tenant.served",
   Some ("tenant", "alice")); anything else passes through. *)
let split_tenant name =
  let prefix = "serve.tenant." in
  let plen = String.length prefix in
  if String.length name > plen && String.sub name 0 plen = prefix then
    match String.index_from_opt name plen '.' with
    | Some dot ->
        let tenant = String.sub name plen (dot - plen) in
        let field =
          String.sub name (dot + 1) (String.length name - dot - 1)
        in
        ("serve.tenant." ^ field, Some ("tenant", tenant))
    | None -> (name, None)
  else (name, None)

let escape_label_value v =
  let b = Buffer.create (String.length v) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string b "\\\\"
      | '"' -> Buffer.add_string b "\\\""
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    v;
  Buffer.contents b

let render_labels labels =
  match labels with
  | [] -> ""
  | _ ->
      let parts =
        List.map
          (fun (k, v) -> Printf.sprintf "%s=\"%s\"" k (escape_label_value v))
          labels
      in
      "{" ^ String.concat "," parts ^ "}"

let num v =
  if Float.is_nan v then "NaN"
  else if v = Float.infinity then "+Inf"
  else if v = Float.neg_infinity then "-Inf"
  else if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%.6g" v

type sample = {
  family : string;  (* mangled family name *)
  kind : string;  (* "counter" | "gauge" | "histogram" *)
  labels : (string * string) list;
  value : Metrics.snapshot;
}

let sample_of namespace extra_labels (name, snap) =
  let logical, tenant = split_tenant name in
  let labels =
    extra_labels @ (match tenant with Some kv -> [ kv ] | None -> [])
  in
  let kind =
    match snap with
    | Metrics.Counter_v _ -> "counter"
    | Metrics.Gauge_v _ -> "gauge"
    | Metrics.Histogram_v _ -> "histogram"
  in
  { family = mangle namespace logical; kind; labels; value = snap }

let add_sample buf s =
  let lbl extra = render_labels (s.labels @ extra) in
  match s.value with
  | Metrics.Counter_v n ->
      Buffer.add_string buf
        (Printf.sprintf "%s%s %d\n" s.family (lbl []) n)
  | Metrics.Gauge_v v ->
      Buffer.add_string buf
        (Printf.sprintf "%s%s %s\n" s.family (lbl []) (num v))
  | Metrics.Histogram_v h ->
      (* Cumulative bucket counts at each occupied bound, then the
         mandatory +Inf bound, _sum and _count. *)
      let cum = ref 0 in
      List.iter
        (fun (upper, count) ->
          if upper < Float.infinity then begin
            cum := !cum + count;
            Buffer.add_string buf
              (Printf.sprintf "%s_bucket%s %d\n" s.family
                 (lbl [ ("le", num upper) ])
                 !cum)
          end)
        h.hbuckets;
      Buffer.add_string buf
        (Printf.sprintf "%s_bucket%s %d\n" s.family
           (lbl [ ("le", "+Inf") ])
           h.hcount);
      Buffer.add_string buf
        (Printf.sprintf "%s_sum%s %s\n" s.family (lbl []) (num h.hsum));
      Buffer.add_string buf
        (Printf.sprintf "%s_count%s %d\n" s.family (lbl []) h.hcount);
      (* latency quantiles, estimated from the bucket counts; the
         estimator reports 0 on an empty histogram, so these lines
         stay numeric for metrics that have not fired yet *)
      List.iter
        (fun (suffix, q) ->
          Buffer.add_string buf
            (Printf.sprintf "%s_%s%s %s\n" s.family suffix (lbl [])
               (num (h.hquantile q))))
        [ ("p50", 0.50); ("p95", 0.95); ("p99", 0.99) ]

let render ?(namespace = "ccc") sources =
  let samples =
    List.concat_map
      (fun (labels, registry) ->
        List.map (sample_of namespace labels) (Metrics.dump registry))
      sources
  in
  (* Group by family so the # TYPE header appears once, with every
     family's samples contiguous; deterministic: families sorted by
     name, samples within a family by label set. *)
  let samples =
    List.stable_sort
      (fun a b ->
        match String.compare a.family b.family with
        | 0 -> compare a.labels b.labels
        | c -> c)
      samples
  in
  let buf = Buffer.create 1024 in
  let last_family = ref "" in
  List.iter
    (fun s ->
      if s.family <> !last_family then begin
        last_family := s.family;
        Buffer.add_string buf
          (Printf.sprintf "# TYPE %s %s\n" s.family s.kind)
      end;
      add_sample buf s)
    samples;
  Buffer.contents buf
