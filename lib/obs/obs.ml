type t = {
  trace : Trace.t;
  metrics : Metrics.t;
}

let disabled = { trace = Trace.disabled; metrics = Metrics.create () }

let create ?clock () =
  { trace = Trace.create ?clock (); metrics = Metrics.create () }

let v ~trace ~metrics = { trace; metrics }

let tracing t = Trace.enabled t.trace

let span t ?attrs name f = Trace.with_span t.trace ?attrs name f
