(** Metrics registry: named counters, gauges, and histograms.

    One registry unifies the accounting that previously lived on three
    ad-hoc surfaces — the engine's cache counters, the arena
    reuse/rebuild counters, and the per-run [Stats.t] flop/cycle
    records (paper section 7's comm/compute/front-end split).  Handles
    are found-or-created by name; updates are single field mutations,
    so instrumented hot paths pay no allocation.

    Exports: a deterministic (name-sorted) pretty-printed table and a
    JSON object, both stable for tests.

    Domain safety: the registry table is guarded by the registry
    mutex, and every handle carries its own mutex (a histogram's four
    fields must describe the same sample set, which is why the handle
    holds a lock rather than four atomics), so registration {e and}
    updates may come from any domain — N domains hammering one counter
    lose no increments.  Both locks are instrumented for the
    domain-safety analyzer ([metrics.table] is guarded,
    [metrics.metric] is locked per index), and the uncontended cost
    stays a few tens of nanoseconds per update. *)

type t
(** A registry. *)

val create : unit -> t

val reset : t -> unit
(** Zero every registered metric (handles stay valid). *)

module Counter : sig
  type t

  val incr : ?by:int -> t -> unit
  val value : t -> int
end

module Gauge : sig
  type t

  val set : t -> float -> unit
  val add : t -> float -> unit
  val value : t -> float
end

(** Histograms keep, besides count/sum/min/max, a fixed layout of
    log-spaced buckets — bucket [k] counts samples in
    [(2{^k-1}, 2{^k}]], bucket 0 everything at or below 1, the last
    bucket the overflow — so latency quantiles (p50/p95/p99) can be
    estimated deterministically from any snapshot and every histogram
    exposes the same bucket boundaries to the Prometheus-style
    exposition ({!Expo}). *)
module Histogram : sig
  type t

  val create : unit -> t
  (** A standalone histogram outside any registry — the bucketed
      quantile machinery without a named metric. *)

  val observe : t -> float -> unit

  val count : t -> int
  val sum : t -> float

  val min : t -> float
  (** [nan] when empty. *)

  val max : t -> float
  (** [nan] when empty. *)

  val mean : t -> float
  (** [nan] when empty. *)

  val quantile : t -> float -> float
  (** [quantile h q] estimates the [q]-quantile ([0 <= q <= 1]) from
      the bucket counts: linear interpolation inside the bucket the
      rank lands in, clamped to the observed [\[min, max\]].  [0.0]
      when empty — unlike {!min}/{!mean}, the quantile feeds pinned
      text renderers where a [nan] would poison the output.
      Deterministic — a pure function of the sample set. *)

  val p50 : t -> float
  val p95 : t -> float
  val p99 : t -> float

  val buckets : t -> (float * int) list
  (** The non-empty buckets as [(upper_bound, count)] pairs in
      increasing bound order; the overflow bucket's bound is
      [infinity].  Counts are per bucket (not cumulative). *)
end

val counter : t -> string -> Counter.t
(** Find or register the counter [name].  Raises [Invalid_argument] if
    the name is already registered as a different kind. *)

val gauge : t -> string -> Gauge.t
val histogram : t -> string -> Histogram.t

(** A point-in-time value of one registered metric, for exporters that
    need more than {!pp} shows — notably the histogram's bucket layout
    and quantile estimator ({!Expo} renders these as Prometheus
    [_bucket] series). *)
type snapshot =
  | Counter_v of int
  | Gauge_v of float
  | Histogram_v of {
      hcount : int;
      hsum : float;
      hmin : float;
      hmax : float;
      hbuckets : (float * int) list;
      hquantile : float -> float;
    }

val dump : t -> (string * snapshot) list
(** Every registered metric with its current value, sorted by name. *)

val pp : Format.formatter -> t -> unit
(** All registered metrics, one per line, sorted by name. *)

val to_json : t -> string
(** A JSON object keyed by metric name; counters as integers, gauges
    as numbers, histograms as [{"count":..,"sum":..,"min":..,"max":..}]
    (min/max omitted when empty). *)
