(** Metrics registry: named counters, gauges, and histograms.

    One registry unifies the accounting that previously lived on three
    ad-hoc surfaces — the engine's cache counters, the arena
    reuse/rebuild counters, and the per-run [Stats.t] flop/cycle
    records (paper section 7's comm/compute/front-end split).  Handles
    are found-or-created by name; updates are single field mutations,
    so instrumented hot paths pay no allocation.

    Exports: a deterministic (name-sorted) pretty-printed table and a
    JSON object, both stable for tests.

    Domain safety: the registry table is guarded by a mutex, so
    find-or-register calls may come from any domain.  Metric {e
    updates} through a handle are deliberately unsynchronized single
    field mutations — the runtime's discipline (see DESIGN.md) is to
    record spans and metrics only from the coordinating domain,
    outside the pooled per-node loops. *)

type t
(** A registry. *)

val create : unit -> t

val reset : t -> unit
(** Zero every registered metric (handles stay valid). *)

module Counter : sig
  type t

  val incr : ?by:int -> t -> unit
  val value : t -> int
end

module Gauge : sig
  type t

  val set : t -> float -> unit
  val add : t -> float -> unit
  val value : t -> float
end

module Histogram : sig
  type t

  val observe : t -> float -> unit

  val count : t -> int
  val sum : t -> float

  val min : t -> float
  (** [nan] when empty. *)

  val max : t -> float
  (** [nan] when empty. *)

  val mean : t -> float
  (** [nan] when empty. *)
end

val counter : t -> string -> Counter.t
(** Find or register the counter [name].  Raises [Invalid_argument] if
    the name is already registered as a different kind. *)

val gauge : t -> string -> Gauge.t
val histogram : t -> string -> Histogram.t

val pp : Format.formatter -> t -> unit
(** All registered metrics, one per line, sorted by name. *)

val to_json : t -> string
(** A JSON object keyed by metric name; counters as integers, gauges
    as numbers, histograms as [{"count":..,"sum":..,"min":..,"max":..}]
    (min/max omitted when empty). *)
