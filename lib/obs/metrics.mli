(** Metrics registry: named counters, gauges, and histograms.

    One registry unifies the accounting that previously lived on three
    ad-hoc surfaces — the engine's cache counters, the arena
    reuse/rebuild counters, and the per-run [Stats.t] flop/cycle
    records (paper section 7's comm/compute/front-end split).  Handles
    are found-or-created by name; updates are single field mutations,
    so instrumented hot paths pay no allocation.

    Exports: a deterministic (name-sorted) pretty-printed table and a
    JSON object, both stable for tests.

    Domain safety: the registry table is guarded by the registry
    mutex, and every handle carries its own mutex (a histogram's four
    fields must describe the same sample set, which is why the handle
    holds a lock rather than four atomics), so registration {e and}
    updates may come from any domain — N domains hammering one counter
    lose no increments.  Both locks are instrumented for the
    domain-safety analyzer ([metrics.table] is guarded,
    [metrics.metric] is locked per index), and the uncontended cost
    stays a few tens of nanoseconds per update. *)

type t
(** A registry. *)

val create : unit -> t

val reset : t -> unit
(** Zero every registered metric (handles stay valid). *)

module Counter : sig
  type t

  val incr : ?by:int -> t -> unit
  val value : t -> int
end

module Gauge : sig
  type t

  val set : t -> float -> unit
  val add : t -> float -> unit
  val value : t -> float
end

module Histogram : sig
  type t

  val observe : t -> float -> unit

  val count : t -> int
  val sum : t -> float

  val min : t -> float
  (** [nan] when empty. *)

  val max : t -> float
  (** [nan] when empty. *)

  val mean : t -> float
  (** [nan] when empty. *)
end

val counter : t -> string -> Counter.t
(** Find or register the counter [name].  Raises [Invalid_argument] if
    the name is already registered as a different kind. *)

val gauge : t -> string -> Gauge.t
val histogram : t -> string -> Histogram.t

val pp : Format.formatter -> t -> unit
(** All registered metrics, one per line, sorted by name. *)

val to_json : t -> string
(** A JSON object keyed by metric name; counters as integers, gauges
    as numbers, histograms as [{"count":..,"sum":..,"min":..,"max":..}]
    (min/max omitted when empty). *)
