module Access = Ccc_analysis.Access

(* Every metric handle carries its own mutex plus a pre-rendered lock
   name ("metrics.metric#<id>") so the domain-safety probes never
   allocate on the update path.  Ids come off one global atomic
   counter: handles from different registries still get distinct
   [metrics.metric] slots in the access log. *)
let next_id = Atomic.make 0

let fresh_id () = Atomic.fetch_and_add next_id 1

let lock_name id = Printf.sprintf "metrics.metric#%d" id

module Counter = struct
  type t = { mutable n : int; id : int; lock : Mutex.t; lname : string }

  let make () =
    let id = fresh_id () in
    { n = 0; id; lock = Mutex.create (); lname = lock_name id }

  let incr ?(by = 1) c =
    Mutex.lock c.lock;
    Access.acquire c.lname;
    c.n <- c.n + by;
    Access.write "metrics.metric" c.id;
    Access.release c.lname;
    Mutex.unlock c.lock

  let value c =
    Mutex.lock c.lock;
    Access.acquire c.lname;
    let v = c.n in
    Access.read "metrics.metric" c.id;
    Access.release c.lname;
    Mutex.unlock c.lock;
    v

  let reset c =
    Mutex.lock c.lock;
    Access.acquire c.lname;
    c.n <- 0;
    Access.write "metrics.metric" c.id;
    Access.release c.lname;
    Mutex.unlock c.lock
end

module Gauge = struct
  type t = { mutable v : float; id : int; lock : Mutex.t; lname : string }

  let make () =
    let id = fresh_id () in
    { v = 0.0; id; lock = Mutex.create (); lname = lock_name id }

  let update g f =
    Mutex.lock g.lock;
    Access.acquire g.lname;
    g.v <- f g.v;
    Access.write "metrics.metric" g.id;
    Access.release g.lname;
    Mutex.unlock g.lock

  let set g v = update g (fun _ -> v)
  let add g v = update g (fun old -> old +. v)

  let value g =
    Mutex.lock g.lock;
    Access.acquire g.lname;
    let v = g.v in
    Access.read "metrics.metric" g.id;
    Access.release g.lname;
    Mutex.unlock g.lock;
    v

  let reset g = set g 0.0
end

module Histogram = struct
  (* Fixed log-spaced buckets: bucket [k] counts samples in
     (2^(k-1), 2^k] (bucket 0 is (-inf, 1]); the last bucket is the
     overflow.  Log spacing gives constant relative error across the
     microsecond-to-second range a serve latency can span, and a fixed
     layout keeps every histogram's buckets comparable in the
     Prometheus-style exposition. *)
  let nbuckets = 48

  let bucket_upper k =
    if k >= nbuckets - 1 then Float.infinity
    else Float.of_int (1 lsl k)

  let bucket_of v =
    if Float.is_nan v || v <= 1.0 then 0
    else begin
      let rec go k =
        if k >= nbuckets - 1 || v <= bucket_upper k then k else go (k + 1)
      in
      go 1
    end

  type t = {
    mutable count : int;
    mutable sum : float;
    mutable lo : float;
    mutable hi : float;
    counts : int array;  (* per-bucket sample counts *)
    id : int;
    lock : Mutex.t;
    lname : string;
  }

  let make () =
    let id = fresh_id () in
    {
      count = 0;
      sum = 0.0;
      lo = 0.0;
      hi = 0.0;
      counts = Array.make nbuckets 0;
      id;
      lock = Mutex.create ();
      lname = lock_name id;
    }

  (* The fields move together (count/sum/lo/hi/buckets must describe
     the same sample set), which is why the handle carries a mutex
     rather than a fistful of atomics. *)
  let observe h v =
    Mutex.lock h.lock;
    Access.acquire h.lname;
    if h.count = 0 then begin
      h.lo <- v;
      h.hi <- v
    end
    else begin
      if v < h.lo then h.lo <- v;
      if v > h.hi then h.hi <- v
    end;
    h.count <- h.count + 1;
    h.sum <- h.sum +. v;
    let k = bucket_of v in
    h.counts.(k) <- h.counts.(k) + 1;
    Access.write "metrics.metric" h.id;
    Access.release h.lname;
    Mutex.unlock h.lock

  let read h f =
    Mutex.lock h.lock;
    Access.acquire h.lname;
    let v = f h in
    Access.read "metrics.metric" h.id;
    Access.release h.lname;
    Mutex.unlock h.lock;
    v

  let count h = read h (fun h -> h.count)
  let sum h = read h (fun h -> h.sum)
  let min h = read h (fun h -> if h.count = 0 then Float.nan else h.lo)
  let max h = read h (fun h -> if h.count = 0 then Float.nan else h.hi)

  let mean h =
    read h (fun h ->
        if h.count = 0 then Float.nan else h.sum /. float_of_int h.count)

  let buckets h =
    read h (fun h ->
        let acc = ref [] in
        for k = nbuckets - 1 downto 0 do
          if h.counts.(k) > 0 then
            acc := (bucket_upper k, h.counts.(k)) :: !acc
        done;
        !acc)

  (* Quantile estimate from the bucket counts: find the bucket the
     rank lands in, interpolate linearly inside it, and clamp to the
     observed [lo, hi] so a one-bucket histogram reports exact
     extremes.  Deterministic: a pure function of the sample set. *)
  let quantile h q =
    read h (fun h ->
        (* an empty histogram reports 0, not NaN: renderers format the
           value straight into pinned text (stats tables, Expo lines)
           where a "nan" would poison the output *)
        if h.count = 0 then 0.0
        else begin
          let q = Float.max 0.0 (Float.min 1.0 q) in
          let rank =
            Stdlib.max 1
              (int_of_float (Float.ceil (q *. float_of_int h.count)))
          in
          let k = ref 0 and cum = ref h.counts.(0) in
          while !cum < rank do
            incr k;
            cum := !cum + h.counts.(!k)
          done;
          let upper = bucket_upper !k in
          let lower = if !k = 0 then 0.0 else bucket_upper (!k - 1) in
          let est =
            if Float.abs upper = Float.infinity then h.hi
            else begin
              let inside = h.counts.(!k) in
              let before = !cum - inside in
              let frac =
                float_of_int (rank - before) /. float_of_int inside
              in
              lower +. ((upper -. lower) *. frac)
            end
          in
          Float.max h.lo (Float.min h.hi est)
        end)

  let p50 h = quantile h 0.50
  let p95 h = quantile h 0.95
  let p99 h = quantile h 0.99

  let reset h =
    Mutex.lock h.lock;
    Access.acquire h.lname;
    h.count <- 0;
    h.sum <- 0.0;
    h.lo <- 0.0;
    h.hi <- 0.0;
    Array.fill h.counts 0 nbuckets 0;
    Access.write "metrics.metric" h.id;
    Access.release h.lname;
    Mutex.unlock h.lock
  (* A standalone (registry-less) histogram for callers that want the
     bucketed quantile machinery without a named metric — the bench
     traffic generator's sojourn accounting. *)
  let create () = make ()
end

type metric =
  | C of Counter.t
  | G of Gauge.t
  | H of Histogram.t

(* The Hashtbl is guarded by the registry mutex [m]; each metric's
   state is guarded by its own per-handle mutex, so updates may come
   from any domain (the domain-safety analyzer checks both
   disciplines: [metrics.table] is [Guarded "metrics.m"],
   [metrics.metric] is [Locked_per_index]). *)
type t = { table : (string, metric) Hashtbl.t; m : Mutex.t; uid : int }

(* Registries get globally-unique [metrics.table] slots for the same
   reason metric handles get globally-unique ids: several registries
   are alive at once (one per serve-shard engine since PR 7), and two
   registries' tables must not alias in the access log — each has its
   own real mutex, so aliased slots would look like races. *)
let registry_uids = Atomic.make 0

let create () =
  {
    table = Hashtbl.create 16;
    m = Mutex.create ();
    uid = Atomic.fetch_and_add registry_uids 1;
  }

let snapshot t =
  Mutex.lock t.m;
  Access.acquire "metrics.m";
  let ms = Hashtbl.fold (fun name m acc -> (name, m) :: acc) t.table [] in
  Access.read "metrics.table" t.uid;
  Access.release "metrics.m";
  Mutex.unlock t.m;
  ms

let reset t =
  List.iter
    (fun (_, m) ->
      match m with
      | C c -> Counter.reset c
      | G g -> Gauge.reset g
      | H h -> Histogram.reset h)
    (snapshot t)

let kind_name = function C _ -> "counter" | G _ -> "gauge" | H _ -> "histogram"

let find_or_register t name make match_kind =
  Mutex.lock t.m;
  Access.acquire "metrics.m";
  let result =
    match Hashtbl.find_opt t.table name with
    | Some m -> (
        Access.read "metrics.table" t.uid;
        match match_kind m with
        | Some handle -> Ok handle
        | None ->
            Error
              (Printf.sprintf "Metrics: %S already registered as a %s" name
                 (kind_name m)))
    | None ->
        let m = make () in
        Hashtbl.add t.table name m;
        Access.write "metrics.table" t.uid;
        (match match_kind m with Some h -> Ok h | None -> assert false)
  in
  Access.release "metrics.m";
  Mutex.unlock t.m;
  match result with Ok h -> h | Error msg -> invalid_arg msg

let counter t name =
  find_or_register t name
    (fun () -> C (Counter.make ()))
    (function C c -> Some c | _ -> None)

let gauge t name =
  find_or_register t name
    (fun () -> G (Gauge.make ()))
    (function G g -> Some g | _ -> None)

let histogram t name =
  find_or_register t name
    (fun () -> H (Histogram.make ()))
    (function H h -> Some h | _ -> None)

let sorted t =
  snapshot t |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let pp_num ppf v =
  if Float.is_integer v && Float.abs v < 1e15 then
    Format.fprintf ppf "%.0f" v
  else Format.fprintf ppf "%.6g" v

let pp ppf t =
  List.iter
    (fun (name, m) ->
      match m with
      | C c -> Format.fprintf ppf "%s: %d@." name (Counter.value c)
      | G g -> Format.fprintf ppf "%s: %a@." name pp_num (Gauge.value g)
      | H h ->
          if Histogram.count h = 0 then
            Format.fprintf ppf "%s: (empty)@." name
          else
            Format.fprintf ppf "%s: n=%d sum=%a min=%a mean=%a max=%a@." name
              (Histogram.count h) pp_num (Histogram.sum h) pp_num
              (Histogram.min h) pp_num (Histogram.mean h) pp_num
              (Histogram.max h))
    (sorted t)

(* A neutral, point-in-time enumeration of the registry, for exporters
   (the Prometheus-style text exposition) that need more than the
   pretty-printer shows — notably the histogram bucket layout. *)
type snapshot =
  | Counter_v of int
  | Gauge_v of float
  | Histogram_v of {
      hcount : int;
      hsum : float;
      hmin : float;
      hmax : float;
      hbuckets : (float * int) list;
      hquantile : float -> float;
    }

let dump t =
  List.map
    (fun (name, m) ->
      match m with
      | C c -> (name, Counter_v (Counter.value c))
      | G g -> (name, Gauge_v (Gauge.value g))
      | H h ->
          ( name,
            Histogram_v
              {
                hcount = Histogram.count h;
                hsum = Histogram.sum h;
                hmin = Histogram.min h;
                hmax = Histogram.max h;
                hbuckets = Histogram.buckets h;
                hquantile = Histogram.quantile h;
              } ))
    (sorted t)

let json_num v =
  if Float.is_nan v || Float.abs v = Float.infinity then "0"
  else if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%.6g" v

let json_escape buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

let to_json t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "{";
  List.iteri
    (fun i (name, m) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_char buf '"';
      json_escape buf name;
      Buffer.add_string buf "\":";
      match m with
      | C c -> Buffer.add_string buf (string_of_int (Counter.value c))
      | G g -> Buffer.add_string buf (json_num (Gauge.value g))
      | H h ->
          Buffer.add_string buf
            (if Histogram.count h = 0 then
               Printf.sprintf "{\"count\":0,\"sum\":0}"
             else
               Printf.sprintf "{\"count\":%d,\"sum\":%s,\"min\":%s,\"max\":%s}"
                 (Histogram.count h)
                 (json_num (Histogram.sum h))
                 (json_num (Histogram.min h))
                 (json_num (Histogram.max h))))
    (sorted t);
  Buffer.add_string buf "}";
  Buffer.contents buf
