module Counter = struct
  type t = { mutable n : int }

  let incr ?(by = 1) c = c.n <- c.n + by
  let value c = c.n
end

module Gauge = struct
  type t = { mutable v : float }

  let set g v = g.v <- v
  let add g v = g.v <- g.v +. v
  let value g = g.v
end

module Histogram = struct
  type t = {
    mutable count : int;
    mutable sum : float;
    mutable lo : float;
    mutable hi : float;
  }

  let observe h v =
    if h.count = 0 then begin
      h.lo <- v;
      h.hi <- v
    end
    else begin
      if v < h.lo then h.lo <- v;
      if v > h.hi then h.hi <- v
    end;
    h.count <- h.count + 1;
    h.sum <- h.sum +. v

  let count h = h.count
  let sum h = h.sum
  let min h = if h.count = 0 then Float.nan else h.lo
  let max h = if h.count = 0 then Float.nan else h.hi
  let mean h = if h.count = 0 then Float.nan else h.sum /. float_of_int h.count
end

type metric =
  | C of Counter.t
  | G of Gauge.t
  | H of Histogram.t

(* The Hashtbl is the only shared structure: registration (and the
   whole-table walks of reset/pp/to_json) lock [m]; updates through a
   handle are single field mutations on the coordinating domain and
   stay lock-free. *)
type t = { table : (string, metric) Hashtbl.t; m : Mutex.t }

let create () = { table = Hashtbl.create 16; m = Mutex.create () }

let reset t =
  Mutex.protect t.m (fun () ->
      Hashtbl.iter
        (fun _ m ->
          match m with
          | C c -> c.Counter.n <- 0
          | G g -> g.Gauge.v <- 0.0
          | H h ->
              h.Histogram.count <- 0;
              h.Histogram.sum <- 0.0;
              h.Histogram.lo <- 0.0;
              h.Histogram.hi <- 0.0)
        t.table)

let kind_name = function C _ -> "counter" | G _ -> "gauge" | H _ -> "histogram"

let find_or_register t name make match_kind =
  Mutex.protect t.m (fun () ->
      match Hashtbl.find_opt t.table name with
      | Some m -> (
          match match_kind m with
          | Some handle -> handle
          | None ->
              invalid_arg
                (Printf.sprintf "Metrics: %S already registered as a %s" name
                   (kind_name m)))
      | None ->
          let m = make () in
          Hashtbl.add t.table name m;
          (match match_kind m with Some h -> h | None -> assert false))

let counter t name =
  find_or_register t name
    (fun () -> C { Counter.n = 0 })
    (function C c -> Some c | _ -> None)

let gauge t name =
  find_or_register t name
    (fun () -> G { Gauge.v = 0.0 })
    (function G g -> Some g | _ -> None)

let histogram t name =
  find_or_register t name
    (fun () -> H { Histogram.count = 0; sum = 0.0; lo = 0.0; hi = 0.0 })
    (function H h -> Some h | _ -> None)

let sorted t =
  Mutex.protect t.m (fun () ->
      Hashtbl.fold (fun name m acc -> (name, m) :: acc) t.table [])
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let pp_num ppf v =
  if Float.is_integer v && Float.abs v < 1e15 then
    Format.fprintf ppf "%.0f" v
  else Format.fprintf ppf "%.6g" v

let pp ppf t =
  List.iter
    (fun (name, m) ->
      match m with
      | C c -> Format.fprintf ppf "%s: %d@." name (Counter.value c)
      | G g -> Format.fprintf ppf "%s: %a@." name pp_num (Gauge.value g)
      | H h ->
          if Histogram.count h = 0 then
            Format.fprintf ppf "%s: (empty)@." name
          else
            Format.fprintf ppf "%s: n=%d sum=%a min=%a mean=%a max=%a@." name
              (Histogram.count h) pp_num (Histogram.sum h) pp_num
              (Histogram.min h) pp_num (Histogram.mean h) pp_num
              (Histogram.max h))
    (sorted t)

let json_num v =
  if Float.is_nan v || Float.abs v = Float.infinity then "0"
  else if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%.6g" v

let json_escape buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

let to_json t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "{";
  List.iteri
    (fun i (name, m) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_char buf '"';
      json_escape buf name;
      Buffer.add_string buf "\":";
      match m with
      | C c -> Buffer.add_string buf (string_of_int (Counter.value c))
      | G g -> Buffer.add_string buf (json_num (Gauge.value g))
      | H h ->
          Buffer.add_string buf
            (if Histogram.count h = 0 then
               Printf.sprintf "{\"count\":0,\"sum\":0}"
             else
               Printf.sprintf "{\"count\":%d,\"sum\":%s,\"min\":%s,\"max\":%s}"
                 (Histogram.count h)
                 (json_num (Histogram.sum h))
                 (json_num (Histogram.min h))
                 (json_num (Histogram.max h))))
    (sorted t);
  Buffer.add_string buf "}";
  Buffer.contents buf
