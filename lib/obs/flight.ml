module Access = Ccc_analysis.Access

type kind =
  | Admission
  | Shed
  | Window_open
  | Window_close
  | Guard_trip
  | Cache_evict
  | Fault
  | Degraded
  | Refused
  | Info

let kind_name = function
  | Admission -> "admission"
  | Shed -> "shed"
  | Window_open -> "window-open"
  | Window_close -> "window-close"
  | Guard_trip -> "guard-trip"
  | Cache_evict -> "cache-evict"
  | Fault -> "fault"
  | Degraded -> "degraded"
  | Refused -> "refused"
  | Info -> "info"

type event = { seq : int; ts : float; kind : kind; detail : string }

(* One ring per shard; the coordinator records admission/shed events
   while the shard's worker domain records window/guard events, so the
   ring carries its own mutex.  Ids come off a global atomic counter
   so every ring gets a distinct [flight.ring] slot in the access log
   (the same per-index discipline as [metrics.metric]). *)
let next_id = Atomic.make 0

type t = {
  capacity : int;
  slots : event option array;
  mutable next_seq : int;  (* total events ever recorded *)
  clock : unit -> float;
  id : int;
  lock : Mutex.t;
  lname : string;
}

let () = Access.register "flight.ring" Locked_per_index

let default_clock () = Sys.time () *. 1e6

let create ?(capacity = 64) ?(clock = default_clock) () =
  if capacity <= 0 then invalid_arg "Flight.create: capacity must be positive";
  let id = Atomic.fetch_and_add next_id 1 in
  {
    capacity;
    slots = Array.make capacity None;
    next_seq = 0;
    clock;
    id;
    lock = Mutex.create ();
    lname = Printf.sprintf "flight.ring#%d" id;
  }

let capacity t = t.capacity

let record t kind detail =
  let ts = t.clock () in
  Mutex.lock t.lock;
  Access.acquire t.lname;
  let seq = t.next_seq in
  t.slots.(seq mod t.capacity) <- Some { seq; ts; kind; detail };
  t.next_seq <- seq + 1;
  Access.write "flight.ring" t.id;
  Access.release t.lname;
  Mutex.unlock t.lock

let read t f =
  Mutex.lock t.lock;
  Access.acquire t.lname;
  let v = f t in
  Access.read "flight.ring" t.id;
  Access.release t.lname;
  Mutex.unlock t.lock;
  v

let recorded t = read t (fun t -> t.next_seq)

let events t =
  read t (fun t ->
      (* Oldest surviving event first: walk the ring from the slot the
         next write would land in. *)
      let acc = ref [] in
      for i = t.capacity - 1 downto 0 do
        match t.slots.((t.next_seq + i) mod t.capacity) with
        | Some e -> acc := e :: !acc
        | None -> ()
      done;
      List.sort (fun a b -> compare a.seq b.seq) !acc)

let pp_event ppf e =
  Format.fprintf ppf "#%d @%.0f %-12s %s" e.seq e.ts (kind_name e.kind)
    e.detail

let pp ppf t =
  let es = events t in
  let total = recorded t in
  let dropped = total - List.length es in
  Format.fprintf ppf "flight ring %d: %d event%s recorded%s@." t.id total
    (if total = 1 then "" else "s")
    (if dropped > 0 then Printf.sprintf " (%d dropped)" dropped else "");
  List.iter (fun e -> Format.fprintf ppf "  %a@." pp_event e) es

let dump t = Format.asprintf "%a" pp t
