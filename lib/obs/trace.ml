type value = Str of string | Int of int | Float of float | Bool of bool

type attr = string * value

type span = {
  name : string;
  ts : float;
  mutable dur : float;
  mutable attrs : attr list; (* reverse order of addition *)
  mutable children : span list; (* reverse start order *)
}

type t = {
  enabled : bool;
  clock : unit -> float;
  mutable root_spans : span list; (* reverse start order *)
  mutable stack : span list; (* innermost open span first *)
}

let disabled =
  { enabled = false; clock = (fun () -> 0.0); root_spans = []; stack = [] }

let create ?(clock = fun () -> Sys.time () *. 1e6) () =
  { enabled = true; clock; root_spans = []; stack = [] }

let enabled t = t.enabled

let attach t span =
  match t.stack with
  | parent :: _ -> parent.children <- span :: parent.children
  | [] -> t.root_spans <- span :: t.root_spans

let with_span t ?attrs name f =
  if not t.enabled then f ()
  else begin
    let span =
      {
        name;
        ts = t.clock ();
        dur = -1.0;
        attrs = (match attrs with Some a -> List.rev a | None -> []);
        children = [];
      }
    in
    t.stack <- span :: t.stack;
    let close () =
      span.dur <- Float.max 0.0 (t.clock () -. span.ts);
      (match t.stack with
      | s :: rest when s == span -> t.stack <- rest
      | _ ->
          (* Unbalanced closes cannot happen through this interface,
             but keep the tracer sane if they somehow do. *)
          t.stack <- List.filter (fun s -> s != span) t.stack);
      attach t span
    in
    match f () with
    | v ->
        close ();
        v
    | exception e ->
        close ();
        raise e
  end

let emit t ?attrs ?ts ?(dur = 0.0) name =
  if t.enabled then begin
    let ts = match ts with Some ts -> ts | None -> t.clock () in
    let span =
      {
        name;
        ts;
        dur;
        attrs = (match attrs with Some a -> List.rev a | None -> []);
        children = [];
      }
    in
    attach t span
  end

let add_attr t key v =
  if t.enabled then
    match t.stack with
    | span :: _ -> span.attrs <- (key, v) :: span.attrs
    | [] -> ()

let roots t = List.rev t.root_spans
let span_name s = s.name
let span_attrs s = List.rev s.attrs
let span_children s = List.rev s.children
let span_ts s = s.ts
let span_dur s = s.dur
let find_attr s key = List.assoc_opt key (span_attrs s)

let event_count t =
  let rec count s = 1 + List.fold_left (fun a c -> a + count c) 0 s.children in
  List.fold_left (fun a s -> a + count s) 0 t.root_spans

let pp_value ppf = function
  | Str s -> Format.pp_print_string ppf s
  | Int i -> Format.pp_print_int ppf i
  | Float f -> Format.fprintf ppf "%.6g" f
  | Bool b -> Format.pp_print_bool ppf b

let pp_attrs ppf = function
  | [] -> ()
  | attrs ->
      Format.fprintf ppf "  (%a)"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
           (fun ppf (k, v) -> Format.fprintf ppf "%s=%a" k pp_value v))
        attrs

let pp_tree ?(timings = true) ppf t =
  let rec pp_span depth span =
    Format.fprintf ppf "%s%s%a" (String.make (2 * depth) ' ') span.name
      pp_attrs (span_attrs span);
    if timings then Format.fprintf ppf "  [%.1f us]" span.dur;
    Format.pp_print_newline ppf ();
    List.iter (pp_span (depth + 1)) (span_children span)
  in
  List.iter (pp_span 0) (roots t)

(* ------------------------------------------------------------------ *)
(* Chrome trace_event export *)

let json_escape buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

let json_float f =
  (* JSON has no nan/infinity; clamp degenerate values to 0. *)
  if Float.is_nan f || Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" (if Float.is_nan f then 0.0 else f)
  else if Float.abs f = Float.infinity then "0"
  else Printf.sprintf "%.6g" f


let add_args buf attrs =
  Buffer.add_string buf ",\"args\":{";
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_char buf '"';
      json_escape buf k;
      Buffer.add_string buf "\":";
      match v with
      | Str s ->
          Buffer.add_char buf '"';
          json_escape buf s;
          Buffer.add_char buf '"'
      | Int n -> Buffer.add_string buf (string_of_int n)
      | Float f -> Buffer.add_string buf (json_float f)
      | Bool b -> Buffer.add_string buf (string_of_bool b))
    attrs;
  Buffer.add_char buf '}'

let add_event buf first ~pid ~tid span =
  if !first then first := false else Buffer.add_string buf ",\n ";
  Buffer.add_string buf "{\"name\":\"";
  json_escape buf span.name;
  Buffer.add_string buf
    (Printf.sprintf "\",\"ph\":\"X\",\"pid\":%d,\"tid\":%d,\"ts\":" pid tid);
  Buffer.add_string buf (json_float span.ts);
  Buffer.add_string buf ",\"dur\":";
  Buffer.add_string buf (json_float span.dur);
  (match span_attrs span with
  | [] -> ()
  | attrs -> add_args buf attrs);
  Buffer.add_char buf '}'

let rec walk_spans buf first ~pid ~tid span =
  add_event buf first ~pid ~tid span;
  List.iter (walk_spans buf first ~pid ~tid) (span_children span)

let to_chrome_json t =
  let buf = Buffer.create 1024 in
  let first = ref true in
  Buffer.add_string buf "[";
  List.iter (walk_spans buf first ~pid:1 ~tid:1) (roots t);
  Buffer.add_string buf "]\n";
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Lanes: one pid/tid pair per execution context (the serve scheduler
   plus one lane per shard), labeled with Chrome thread_name metadata
   so Perfetto shows each shard's queue-wait and engine phases on its
   own track. *)

type lane = { pid : int; tid : int; label : string; lane_roots : span list }

let lane ?(pid = 1) ~tid ~label t =
  { pid; tid; label; lane_roots = roots t }

let lane_of_spans ?(pid = 1) ~tid ~label spans =
  { pid; tid; label; lane_roots = spans }

let lane_label l = l.label
let lane_tid l = l.tid
let lane_roots l = l.lane_roots

let lane_span_count l =
  let rec count s =
    1 + List.fold_left (fun a c -> a + count c) 0 s.children
  in
  List.fold_left (fun a s -> a + count s) 0 l.lane_roots

let to_chrome_json_lanes lanes =
  let buf = Buffer.create 4096 in
  let first = ref true in
  Buffer.add_string buf "[";
  List.iter
    (fun l ->
      if !first then first := false else Buffer.add_string buf ",\n ";
      Buffer.add_string buf
        (Printf.sprintf
           "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":%d,\"tid\":%d"
           l.pid l.tid);
      Buffer.add_string buf ",\"args\":{\"name\":\"";
      json_escape buf l.label;
      Buffer.add_string buf "\"}}")
    lanes;
  List.iter
    (fun l ->
      List.iter (walk_spans buf first ~pid:l.pid ~tid:l.tid) l.lane_roots)
    lanes;
  Buffer.add_string buf "]\n";
  Buffer.contents buf
