(** Observability context: one value bundling the span tracer and the
    metrics registry, threaded as an optional argument through the
    compiler ([Compile]), the runtime ([Exec]), the service layer
    ([Engine]) and the [Ccc] facade.

    The {!disabled} singleton makes instrumentation free when nobody
    is watching: its tracer is {!Trace.disabled} (one branch, no
    allocation) and its registry is a private scratch registry whose
    handles are single mutable cells.  Call sites that would allocate
    attribute lists must guard on {!tracing}. *)

type t = {
  trace : Trace.t;
  metrics : Metrics.t;
}

val disabled : t
(** The no-op context: disabled tracer, scratch metrics registry
    (never exported, bounded size). *)

val create : ?clock:(unit -> float) -> unit -> t
(** A recording context: fresh tracer (see {!Trace.create}) and fresh
    metrics registry. *)

val v : trace:Trace.t -> metrics:Metrics.t -> t

val tracing : t -> bool
(** [Trace.enabled t.trace] — guard for attribute construction on hot
    paths. *)

val span : t -> ?attrs:Trace.attr list -> string -> (unit -> 'a) -> 'a
(** [Trace.with_span] on the context's tracer. *)
