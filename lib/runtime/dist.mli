(** Distribution of arrays over the node grid (Figure 1).

    All arrays in a stencil computation have the same shape and are
    divided among the nodes the same way: the nodes form a
    two-dimensional grid, each holding a contiguous subgrid.  For a
    256 x 256 array on 16 nodes arranged 4 x 4, node (i, j) owns rows
    [64 i .. 64 i + 63] and columns [64 j .. 64 j + 63]. *)

type t = {
  machine : Ccc_cm2.Machine.t;
  region : Ccc_cm2.Memory.region;  (** identical on every node *)
  sub_rows : int;
  sub_cols : int;
}

val create : Ccc_cm2.Machine.t -> sub_rows:int -> sub_cols:int -> t
(** Allocate an undistributed array of [sub_rows] x [sub_cols] per
    node (global shape = node grid times subgrid). *)

val global_rows : t -> int
val global_cols : t -> int

val owner : t -> grow:int -> gcol:int -> int * int * int
(** [(node, local_row, local_col)] of a global position. *)

val scatter : ?pool:Pool.t -> Ccc_cm2.Machine.t -> Grid.t -> t
(** Allocate and fill from a host grid.  The grid's dimensions must be
    divisible by the node grid's; raises [Invalid_argument] otherwise
    (the run-time library handles ragged shapes by padding before the
    call, which our examples do explicitly). *)

val scatter_into : ?pool:Pool.t -> t -> Grid.t -> unit
(** Refill an already-allocated distribution from a host grid of the
    same global shape; raises [Invalid_argument] on a shape mismatch.
    The arena-reuse path: repeated stencil calls over same-shaped
    arrays rewrite the standing subgrid regions instead of
    reallocating them.  Data moves as per-node row blits; [pool]
    (default sequential) distributes the node loop — each node touches
    only its own memory and its own block of the host grid, so results
    are bit-identical for every jobs value. *)

val gather : ?pool:Pool.t -> t -> Grid.t
(** Collect the distributed array back to the host (per-node row
    blits, optionally pooled like {!scatter_into}). *)

val fill : ?pool:Pool.t -> t -> float -> unit
(** Set every element on every node (broadcast constant, used to
    materialize scalar coefficient streams). *)

val local_get : t -> node:int -> row:int -> col:int -> float
val local_set : t -> node:int -> row:int -> col:int -> float -> unit

val read_description : t -> string
(** Human-readable ownership map, regenerating Figure 1. *)

val probe_slot : Ccc_cm2.Machine.t -> int -> int
(** Access-log slot for a node-indexed domain-safety probe: the node
    index namespaced by {!Ccc_cm2.Machine.uid}, so the node-indexed
    regions of two machines alive at once (one resident engine per
    serve shard since PR 7) never alias in the log.  Shared by the
    [dist.node]/[gather.node] probes here and the
    [halo.node]/[exec.dst]/[exec.outcome] probes in {!Halo} and
    {!Exec}. *)
